package touchicg

// One benchmark per table and figure of the paper's evaluation (DESIGN.md
// experiments E1-E10) plus the design-choice ablations A1-A6. Each bench
// times the code that regenerates the artifact and logs a compact
// paper-vs-measured comparison once; `go test -bench=. -benchmem` with
// -v shows the tables.

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/bioimp"
	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/ecg"
	"repro/internal/hw/power"
	"repro/internal/hw/radio"
	"repro/internal/icg"
	"repro/internal/physio"
	"repro/internal/quality"
	"repro/internal/study"
	"repro/internal/wavelet"
)

var (
	studyOnce    sync.Once
	studyResults *study.Results
	studyErr     error
)

func sharedStudy(b *testing.B) *study.Results {
	b.Helper()
	studyOnce.Do(func() {
		studyResults, studyErr = study.Run(study.DefaultConfig())
	})
	if studyErr != nil {
		b.Fatalf("study: %v", studyErr)
	}
	return studyResults
}

// --- E1: Table I and the 106-hour battery-life claim. ---

func BenchmarkTableI_PowerBudget(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		budget := power.PaperScenario()
		avg = budget.AverageCurrentMA()
	}
	b.ReportMetric(avg, "mA-avg")
	b.Logf("Table I budget:\n%s", power.PaperScenario().Report())
}

func BenchmarkBatteryLife106h(b *testing.B) {
	var hours float64
	for i := 0; i < b.N; i++ {
		budget := power.PaperScenario()
		hours = power.DeviceBattery().LifetimeHours(budget.AverageCurrentMA())
	}
	b.ReportMetric(hours, "hours")
	b.Logf("battery life: measured %.1f h, paper 106 h", hours)
}

// --- E2: Fig 5, characteristic points on a beat train. ---

func BenchmarkFig5_CharacteristicPoints(b *testing.B) {
	sub, _ := physio.SubjectByID(1)
	cfg := physio.DefaultGenConfig()
	cfg.ICGNoiseStd = 0.005
	rec := sub.Generate(cfg)
	filt, err := icg.DefaultFilter(rec.FS).Apply(rec.ICG)
	if err != nil {
		b.Fatal(err)
	}
	tr := rec.Truth
	var dB, dC, dX float64
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dB, dC, dX = 0, 0, 0
		n = 0
		for k := 0; k+1 < tr.Beats(); k++ {
			pts, err := icg.DetectBeat(filt, tr.RPeaks[k], tr.RPeaks[k+1], -1, icg.DefaultDetect(rec.FS))
			if err != nil {
				continue
			}
			dB += float64(pts.B-tr.BPoints[k]) / rec.FS
			dC += float64(pts.C-tr.CPoints[k]) / rec.FS
			dX += float64(pts.X-tr.XPoints[k]) / rec.FS
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(dC/float64(n)*1000, "ms-C-bias")
		b.Logf("Fig 5 point biases over %d beats: B %+.1f ms, C %+.1f ms, X %+.1f ms",
			n, dB/float64(n)*1000, dC/float64(n)*1000, dX/float64(n)*1000)
	}
}

// --- E3/E4: Figs 6-7, bioimpedance vs frequency. ---

func BenchmarkFig6_ThoracicBioimpedance(b *testing.B) {
	sub, _ := physio.SubjectByID(1)
	gen := physio.DefaultGenConfig()
	rec := sub.Generate(gen)
	ins := bioimp.TraditionalInstrument()
	var z [4]float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for fi, f := range bioimp.StudyFrequencies() {
			z[fi] = bioimp.MeasureReference(&sub, rec, ins, f).MeanZ()
		}
	}
	b.StopTimer()
	res := sharedStudy(b)
	b.Logf("Fig 6 shape (subject 1): 2k=%.1f 10k=%.1f 50k=%.1f 100k=%.1f Ohm (paper: rise to 10 kHz, then fall)", z[0], z[1], z[2], z[3])
	b.Logf("\n%s", res.Fig6Table())
}

func BenchmarkFig7_DeviceBioimpedance(b *testing.B) {
	sub, _ := physio.SubjectByID(1)
	rec := sub.Generate(physio.DefaultGenConfig())
	ins := bioimp.TouchInstrument()
	var z float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pos := range bioimp.Positions() {
			for _, f := range bioimp.StudyFrequencies() {
				z = bioimp.MeasureDevice(&sub, rec, ins, f, pos).MeanZ()
			}
		}
	}
	b.StopTimer()
	_ = z
	res := sharedStudy(b)
	b.Logf("\n%s", res.Fig7Table())
}

// --- E5: Tables II-IV, correlations. ---

func BenchmarkTablesII_IV_Correlation(b *testing.B) {
	sub, _ := physio.SubjectByID(1)
	rec := sub.Generate(physio.DefaultGenConfig())
	ref := bioimp.MeasureReference(&sub, rec, bioimp.TraditionalInstrument(), 50e3)
	var r float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev := bioimp.MeasureDevice(&sub, rec, bioimp.TouchInstrument(), 50e3, bioimp.Position1)
		r = dsp.Pearson(ref.Z, dev.Z)
	}
	b.StopTimer()
	b.ReportMetric(r, "pearson-r")
	res := sharedStudy(b)
	for pos := 1; pos <= 3; pos++ {
		b.Logf("\n%s", res.CorrelationTable(pos))
	}
}

// --- E6: Fig 8, relative displacement errors. ---

func BenchmarkFig8_RelativeError(b *testing.B) {
	sub, _ := physio.SubjectByID(1)
	rec := sub.Generate(physio.DefaultGenConfig())
	ins := bioimp.TouchInstrument()
	var e21 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m1 := bioimp.MeasureDevice(&sub, rec, ins, 50e3, bioimp.Position1).MeanZ()
		m2 := bioimp.MeasureDevice(&sub, rec, ins, 50e3, bioimp.Position2).MeanZ()
		e21 = dsp.RelativeError(m2, m1)
	}
	b.StopTimer()
	b.ReportMetric(e21*100, "%err-e21")
	res := sharedStudy(b)
	b.Logf("\n%s", res.Fig8Table())
}

// --- E7: Fig 9, hemodynamic parameters. ---

func BenchmarkFig9_Hemodynamics(b *testing.B) {
	sub, _ := physio.SubjectByID(1)
	dev, err := core.NewDevice(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	var out *core.Output
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, out, err = dev.Run(&sub, 30)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(out.Summary.LVET.Mean*1000, "ms-LVET")
	b.ReportMetric(out.Summary.PEP.Mean*1000, "ms-PEP")
	res := sharedStudy(b)
	b.Logf("\n%s", res.Fig9Table())
}

// --- E8: the 40-50% CPU duty-cycle claim. ---

func BenchmarkDutyCycle(b *testing.B) {
	sub, _ := physio.SubjectByID(1)
	dev, err := core.NewDevice(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	acq, err := dev.Acquire(&sub, 30)
	if err != nil {
		b.Fatal(err)
	}
	var duty, raw float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := dev.Process(acq)
		if err != nil {
			b.Fatal(err)
		}
		duty = dev.DutyCycle(out, 30)
		raw = dev.RawDutyCycle(out, 30)
	}
	b.ReportMetric(duty*100, "%duty")
	b.Logf("CPU duty cycle: calibrated %.1f%% (paper: 40-50%%), algorithmic floor %.1f%%",
		duty*100, raw*100)
}

// --- E9: radio duty cycle for the beat-record stream. ---

func BenchmarkRadioDutyCycle(b *testing.B) {
	var duty float64
	for i := 0; i < b.N; i++ {
		duty = radio.BeatStreamDuty(72, radio.DefaultLink())
	}
	b.ReportMetric(duty*100, "%duty")
	b.Logf("radio duty at 72 bpm: %.4f%% (paper: ~0.1-1%%)", duty*100)
}

// --- E10: aggregate claims. ---

func BenchmarkOverallClaims(b *testing.B) {
	res := sharedStudy(b)
	var mean float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mean = res.MeanCorrelation()
	}
	b.ReportMetric(mean, "mean-r")
	b.Logf("\n%s", res.ClaimsSummary())
}

// --- A1: B-point rule ablation. ---

func BenchmarkAblationBPoint(b *testing.B) {
	sub, _ := physio.SubjectByID(1)
	rec := sub.Generate(physio.DefaultGenConfig())
	filt, _ := icg.DefaultFilter(rec.FS).Apply(rec.ICG)
	tr := rec.Truth
	rules := []struct {
		name string
		rule icg.BVariant
	}{{"paper", icg.BPaper}, {"zerocross", icg.BZeroCrossOnly}, {"linefit", icg.BLineFitOnly}}
	report := make([]string, 0, len(rules))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report = report[:0]
		for _, r := range rules {
			cfg := icg.DefaultDetect(rec.FS)
			cfg.BRule = r.rule
			bias, n := 0.0, 0
			for k := 0; k+1 < tr.Beats(); k++ {
				pts, err := icg.DetectBeat(filt, tr.RPeaks[k], tr.RPeaks[k+1], -1, cfg)
				if err != nil {
					continue
				}
				bias += math.Abs(float64(pts.B-tr.BPoints[k])) / rec.FS
				n++
			}
			if n > 0 {
				report = append(report, fmt.Sprintf("%s |B err| = %.1f ms", r.name, bias/float64(n)*1000))
			}
		}
	}
	b.StopTimer()
	for _, line := range report {
		b.Logf("A1 %s", line)
	}
}

// --- A2: X-point window ablation (paper rule vs Carvalho RT window). ---

func BenchmarkAblationXPoint(b *testing.B) {
	sub, _ := physio.SubjectByID(1)
	rec := sub.Generate(physio.DefaultGenConfig())
	filt, _ := icg.DefaultFilter(rec.FS).Apply(rec.ICG)
	tr := rec.Truth
	tPeaks := make([]int, tr.Beats())
	for i, r := range tr.RPeaks {
		tPeaks[i] = r + int(physio.TPeakOffset(tr.RR[i])*rec.FS)
	}
	var msPaper, msCarv float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msPaper, msCarv = 0, 0
		n := 0
		for k := 0; k+1 < tr.Beats(); k++ {
			cfgP := icg.DefaultDetect(rec.FS)
			p1, err1 := icg.DetectBeat(filt, tr.RPeaks[k], tr.RPeaks[k+1], -1, cfgP)
			cfgC := icg.DefaultDetect(rec.FS)
			cfgC.XRule = icg.XCarvalho
			p2, err2 := icg.DetectBeat(filt, tr.RPeaks[k], tr.RPeaks[k+1], tPeaks[k], cfgC)
			if err1 != nil || err2 != nil {
				continue
			}
			msPaper += math.Abs(float64(p1.X-tr.XPoints[k])) / rec.FS
			msCarv += math.Abs(float64(p2.X-tr.XPoints[k])) / rec.FS
			n++
		}
		if n > 0 {
			msPaper = msPaper / float64(n) * 1000
			msCarv = msCarv / float64(n) * 1000
		}
	}
	b.ReportMetric(msPaper, "ms-Xerr-paper")
	b.Logf("A2 |X err|: paper rule %.1f ms vs Carvalho RT window %.1f ms", msPaper, msCarv)
}

// --- A3: baseline-removal ablation (morphology vs wavelet vs FIR only). ---

func BenchmarkAblationBaseline(b *testing.B) {
	sub, _ := physio.SubjectByID(1)
	clean := physio.DefaultGenConfig()
	clean.ECGBaselineDrift = 0
	clean.ECGNoiseStd = 0
	clean.PowerlineAmp = 0
	recClean := sub.Generate(clean)
	drifted := clean
	drifted.ECGBaselineDrift = 0.5
	recDrift := sub.Generate(drifted)

	var rmseMorph, rmseWave, rmseFIR float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := ecg.RemoveBaseline(recDrift.ECG, ecg.DefaultBaseline(250))
		rmseMorph = dsp.RMSE(m, recClean.ECG)

		w, err := wavelet.RemoveBaseline(wavelet.Daubechies8(), recDrift.ECG, 8)
		if err != nil {
			b.Fatal(err)
		}
		rmseWave = dsp.RMSE(w, recClean.ECG)

		hp, err := dsp.DesignHighPass(250, 0.5, 250, dsp.WindowHamming)
		if err != nil {
			b.Fatal(err)
		}
		f := dsp.FiltFiltFIR(hp, recDrift.ECG)
		rmseFIR = dsp.RMSE(f, recClean.ECG)
	}
	b.ReportMetric(rmseMorph, "rmse-morph")
	b.Logf("A3 baseline removal RMSE vs clean ECG: morphology %.4f, wavelet %.4f, FIR high-pass %.4f",
		rmseMorph, rmseWave, rmseFIR)
}

// --- A4: morphology engine ablation (naive O(nk) vs deque O(n)). ---

func BenchmarkAblationMorphEngineNaive(b *testing.B) {
	sub, _ := physio.SubjectByID(1)
	rec := sub.Generate(physio.DefaultGenConfig())
	cfg := ecg.DefaultBaseline(250)
	cfg.Naive = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ecg.RemoveBaseline(rec.ECG, cfg)
	}
}

func BenchmarkAblationMorphEngineDeque(b *testing.B) {
	sub, _ := physio.SubjectByID(1)
	rec := sub.Generate(physio.DefaultGenConfig())
	cfg := ecg.DefaultBaseline(250)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ecg.RemoveBaseline(rec.ECG, cfg)
	}
}

// --- A5: zero-phase vs causal filtering ablation. ---

func BenchmarkAblationZeroPhase(b *testing.B) {
	sub, _ := physio.SubjectByID(1)
	mk := func(causal bool) (*core.Device, *core.Output) {
		cfg := core.DefaultConfig()
		cfg.CausalFilters = causal
		dev, err := core.NewDevice(cfg)
		if err != nil {
			b.Fatal(err)
		}
		_, out, err := dev.Run(&sub, 30)
		if err != nil {
			b.Fatal(err)
		}
		return dev, out
	}
	var pepZero, pepCausal float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, oz := mk(false)
		_, oc := mk(true)
		pepZero = oz.Summary.PEP.Mean
		pepCausal = oc.Summary.PEP.Mean
	}
	b.ReportMetric((pepCausal-pepZero)*1000, "ms-PEP-shift")
	b.Logf("A5 PEP: zero-phase %.1f ms vs causal %.1f ms (group delay leaks into timing)",
		pepZero*1000, pepCausal*1000)
}

// --- A6: PMU policy ablation. ---

func BenchmarkAblationPMU(b *testing.B) {
	var cont, eco, spot float64
	for i := 0; i < b.N; i++ {
		cont = core.LifetimeHours(core.ModeContinuous, 0.5)
		eco = core.LifetimeHours(core.ModeEco, 0.5)
		spot = core.LifetimeHours(core.ModeSpotCheck, 0.5)
	}
	b.ReportMetric(cont, "hours-continuous")
	b.Logf("A6 lifetimes: continuous %.0f h, eco %.0f h, spot-check %.0f h", cont, eco, spot)
}

// --- Component micro-benchmarks (pipeline hot paths). ---

func BenchmarkPanTompkins30s(b *testing.B) {
	sub, _ := physio.SubjectByID(1)
	rec := sub.Generate(physio.DefaultGenConfig())
	cond, err := ecg.Clean(rec.ECG, 250)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ecg.DetectQRS(cond, ecg.DefaultPT(250)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkECGConditioning30s(b *testing.B) {
	sub, _ := physio.SubjectByID(1)
	rec := sub.Generate(physio.DefaultGenConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ecg.Clean(rec.ECG, 250); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkICGFilter30s(b *testing.B) {
	sub, _ := physio.SubjectByID(1)
	rec := sub.Generate(physio.DefaultGenConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := icg.DefaultFilter(250).Apply(rec.ICG); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullPipeline30s(b *testing.B) {
	sub, _ := physio.SubjectByID(1)
	dev, err := core.NewDevice(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	acq, err := dev.Acquire(&sub, 30)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Process(acq); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullStudy(b *testing.B) {
	if testing.Short() {
		b.Skip("full study in short mode")
	}
	for i := 0; i < b.N; i++ {
		if _, err := study.Run(study.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBeatRecordCodec(b *testing.B) {
	rec := radio.BeatRecord{TimestampMs: 1234, Z0: 481.5, LVET: 0.295, PEP: 0.086, HR: 64.2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := rec.Marshal()
		if _, err := radio.UnmarshalBeat(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension benches: streaming engine, wavelet baseline, Cole fitting,
// connection-event scheduling. ---

func BenchmarkStreamer30s(b *testing.B) {
	sub, _ := physio.SubjectByID(1)
	dev, err := core.NewDevice(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	acq, err := dev.Acquire(&sub, 30)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := dev.NewStreamer(core.DefaultStreamConfig())
		total := 0
		for pos := 0; pos < len(acq.ECG); pos += 250 {
			end := pos + 250
			if end > len(acq.ECG) {
				end = len(acq.ECG)
			}
			total += len(st.Push(acq.ECG[pos:end], acq.Z[pos:end]))
		}
		total += len(st.Flush())
		if total == 0 {
			b.Fatal("no beats streamed")
		}
	}
}

func BenchmarkWaveletDenoise(b *testing.B) {
	sub, _ := physio.SubjectByID(1)
	rec := sub.Generate(physio.DefaultGenConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wavelet.Denoise(wavelet.Daubechies8(), rec.ICG, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColeFit(b *testing.B) {
	truth := bioimp.Cole{R0: 38, RInf: 21, Tau: 2.2e-6, Alpha: 0.66}
	freqs := bioimp.StudyFrequencies()
	mags := make([]float64, len(freqs))
	for i, f := range freqs {
		mags[i] = truth.Magnitude(f)
	}
	var res bioimp.FitResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bioimp.FitCole(freqs, mags)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Residual, "fit-residual")
}

func BenchmarkConnEventSchedule(b *testing.B) {
	var times []float64
	for i := 0; i < 120; i++ {
		times = append(times, float64(i)*0.937) // beats never on the event grid
	}
	cfg := radio.DefaultConn()
	var res radio.ScheduleResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = radio.Schedule(times, cfg)
	}
	b.ReportMetric(res.MeanLatency*1000, "ms-latency")
}

func BenchmarkQualityAssess(b *testing.B) {
	sub, _ := physio.SubjectByID(1)
	dev, err := core.NewDevice(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	_, out, err := dev.Run(&sub, 30)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := quality.Assess(out.CondECG, out.ICGTrack, out.RPeaks, 250)
		if !rep.Usable() {
			b.Fatal("session should be usable")
		}
	}
}
