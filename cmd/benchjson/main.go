// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON snapshot, so CI can archive the perf trajectory
// across PRs (BENCH_PR8.json and successors) without scraping logs.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchmem ./... | benchjson -o BENCH.json
//
// Input comes from stdin (or files named as arguments); output is a
// JSON document listing every benchmark line with its iteration count
// and every reported metric (ns/op, B/op, allocs/op, MB/s and any
// custom ReportMetric units), tagged with the package it ran in.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Bench is one benchmark result line.
type Bench struct {
	Package    string  `json:"package,omitempty"`
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op,omitempty"`
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	AllocsOp   float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds every value-unit pair of the line, including the
	// three above and any custom units.
	Metrics map[string]float64 `json:"metrics"`
}

// Snapshot is the emitted document.
type Snapshot struct {
	GoOS       string  `json:"goos,omitempty"`
	GoArch     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

// parse consumes `go test -bench` output and collects benchmark lines.
func parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{Benchmarks: []Bench{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "goos:"):
			snap.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			snap.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then value-unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		// Strip the trailing -N GOMAXPROCS suffix, as benchstat does.
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		b := Bench{
			Package:    pkg,
			Name:       name,
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			b.Metrics[unit] = v
			switch unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsOp = v
			}
		}
		snap.Benchmarks = append(snap.Benchmarks, b)
	}
	return snap, sc.Err()
}

func run(in io.Reader, out io.Writer) error {
	snap, err := parse(in)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

func main() {
	outPath := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if args := flag.Args(); len(args) > 0 {
		readers := make([]io.Reader, 0, len(args))
		for _, p := range args {
			f, err := os.Open(p)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			defer f.Close()
			readers = append(readers, f)
		}
		in = io.MultiReader(readers...)
	}
	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := run(in, out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
