package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/dsp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkZeroPhaseFIRStream30s-8         	   10000	    103195 ns/op	     512 B/op	       2 allocs/op
BenchmarkZeroPhaseFIRStream30sDirect-8   	    5000	    205582 ns/op	     512 B/op	       2 allocs/op
PASS
ok  	repro/internal/dsp	3.554s
pkg: repro/internal/icg
BenchmarkDetectBeat/movavg-8         	  349345	      6393 ns/op	       0 B/op	       0 allocs/op
BenchmarkThroughput 	     100	     12345 ns/op	       81.5 MB/s
garbage line that should be ignored
PASS
`

func TestParse(t *testing.T) {
	snap, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if snap.GoOS != "linux" || snap.GoArch != "amd64" || !strings.Contains(snap.CPU, "Xeon") {
		t.Errorf("header: %+v", snap)
	}
	if len(snap.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(snap.Benchmarks))
	}
	b := snap.Benchmarks[0]
	if b.Name != "BenchmarkZeroPhaseFIRStream30s" || b.Package != "repro/internal/dsp" {
		t.Errorf("first bench: %+v", b)
	}
	if b.Iterations != 10000 || b.NsPerOp != 103195 || b.BytesPerOp != 512 || b.AllocsOp != 2 {
		t.Errorf("first bench metrics: %+v", b)
	}
	sub := snap.Benchmarks[2]
	if sub.Name != "BenchmarkDetectBeat/movavg" || sub.Package != "repro/internal/icg" {
		t.Errorf("sub-bench name/pkg: %+v", sub)
	}
	if sub.AllocsOp != 0 || sub.Metrics["allocs/op"] != 0 {
		t.Errorf("sub-bench allocs: %+v", sub)
	}
	th := snap.Benchmarks[3]
	if th.Name != "BenchmarkThroughput" || th.Metrics["MB/s"] != 81.5 {
		t.Errorf("throughput bench: %+v", th)
	}
}

func TestRunEmitsValidJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(out.Bytes(), &snap); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(snap.Benchmarks) != 4 {
		t.Errorf("round-trip lost benchmarks: %d", len(snap.Benchmarks))
	}
}

func TestParseEmpty(t *testing.T) {
	snap, err := parse(strings.NewReader("no benchmarks here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 0 {
		t.Errorf("got %d benchmarks from empty input", len(snap.Benchmarks))
	}
}
