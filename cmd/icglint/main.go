// Command icglint runs the repo's invariant analyzers (internal/lint)
// over the module: the pinned conventions in ROADMAP.md — flat WAL
// events, deterministic packages, allocation-free hot paths,
// non-blocking sinks, pure stages, the unsafe safelist — enforced at
// lint time instead of by review.
//
// Standalone:
//
//	icglint [-json] [-list] [packages]
//
// packages default to ./... (every package in the enclosing module).
// Unsuppressed findings print as file:line:col: analyzer: message and
// exit 1; the //icg:allow inventory prints as a summary so CI logs show
// every live suppression and its reason.
//
// As a vet tool (go vet -vettool=$(which icglint) ./...), it speaks the
// unitchecker protocol: -V=full prints the content-addressed version,
// -flags prints the (empty) flag schema, and a *.cfg argument runs one
// unit the go command prepared. Unused-allow detection only runs in
// standalone mode — a vet unit sees one package, so it cannot tell a
// stale allow from one that fires in a neighbor.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(runMain(os.Args[1:], os.Stdout, os.Stderr))
}

func runMain(args []string, stdout, stderr io.Writer) int {
	// The go command probes the vettool before passing normal flags;
	// these two must be handled ahead of flag parsing because their
	// spellings (-V=full) collide with the standard flag package only
	// by luck.
	if len(args) == 1 {
		switch args[0] {
		case "-V=full", "--V=full":
			printVersion(stdout)
			return 0
		case "-flags", "--flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		}
	}

	fs := flag.NewFlagSet("icglint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listMode := fs.Bool("list", false, "list the analyzers and exit")
	jsonMode := fs.Bool("json", false, "emit findings, suppressions and the allow inventory as JSON")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: icglint [-list] [-json] [packages]\n       go vet -vettool=$(which icglint) ./...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listMode {
		if *jsonMode {
			type item struct {
				Name string `json:"name"`
				Doc  string `json:"doc"`
			}
			var items []item
			for _, a := range lint.Analyzers() {
				items = append(items, item{a.Name, a.Doc})
			}
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			enc.Encode(items)
			return 0
		}
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runUnit(rest[0], stderr)
	}
	return runStandalone(rest, *jsonMode, stdout, stderr)
}

// printVersion implements -V=full: the go command caches vet results
// keyed on this string, so it must change whenever the tool's behavior
// can — hashing the executable itself is the simplest sound key.
func printVersion(w io.Writer) {
	exe, err := os.Executable()
	if err == nil {
		if data, rerr := os.ReadFile(exe); rerr == nil {
			fmt.Fprintf(w, "icglint version devel buildID=%x\n", sha256.Sum256(data))
			return
		}
	}
	fmt.Fprintln(w, "icglint version devel buildID=unknown")
}

// runStandalone lints the named packages (./... by default) with the
// whole-module view: unused allows are findings, and the suppression
// inventory is printed for the CI summary.
func runStandalone(args []string, jsonMode bool, stdout, stderr io.Writer) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "icglint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fmt.Fprintf(stderr, "icglint: %v\n", err)
		return 2
	}
	paths, err := resolvePatterns(loader, wd, args)
	if err != nil {
		fmt.Fprintf(stderr, "icglint: %v\n", err)
		return 2
	}
	res, err := lint.Run(loader, paths, lint.Analyzers(), true)
	if err != nil {
		fmt.Fprintf(stderr, "icglint: %v\n", err)
		return 2
	}
	if jsonMode {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		enc.Encode(res)
		if len(res.Findings) > 0 {
			return 1
		}
		return 0
	}
	for _, te := range res.TypeErrors {
		fmt.Fprintf(stderr, "icglint: type error: %s\n", te)
	}
	for _, f := range res.Findings {
		fmt.Fprintf(stdout, "%s\n", f)
	}
	if len(res.Allows) > 0 {
		fmt.Fprintf(stdout, "icglint: %d active suppression(s):\n", len(res.Allows))
		for _, a := range res.Allows {
			fmt.Fprintf(stdout, "  %s:%d: //icg:allow %s -- %s\n",
				a.File, a.Line, strings.Join(a.Analyzers, ","), a.Reason)
		}
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(stdout, "icglint: %d finding(s)\n", len(res.Findings))
		return 1
	}
	return 0
}

// resolvePatterns maps command-line package patterns to import paths:
// "./..." expands to the module, relative directories resolve against
// the module path, anything else is taken as an import path.
func resolvePatterns(l *lint.Loader, wd string, args []string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var paths []string
	for _, a := range args {
		switch {
		case a == "./..." || a == "...":
			all, err := l.ModulePackages()
			if err != nil {
				return nil, err
			}
			paths = append(paths, all...)
		case strings.HasPrefix(a, "./") || a == ".":
			abs, err := filepath.Abs(filepath.Join(wd, a))
			if err != nil {
				return nil, err
			}
			rel, err := filepath.Rel(l.ModRoot, abs)
			if err != nil || strings.HasPrefix(rel, "..") {
				return nil, fmt.Errorf("directory %s is outside module %s", a, l.ModPath)
			}
			if rel == "." {
				paths = append(paths, l.ModPath)
			} else {
				paths = append(paths, l.ModPath+"/"+filepath.ToSlash(rel))
			}
		default:
			paths = append(paths, a)
		}
	}
	return paths, nil
}

// vetConfig is the subset of the go command's unit config (vet.cfg)
// icglint needs. The go command writes one per package and invokes the
// vettool with its path as the sole argument.
type vetConfig struct {
	ImportPath                string
	Dir                       string
	GoFiles                   []string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit lints one go-vet unit. Findings exit 2 (the unitchecker
// convention go vet maps to failure); test units and fact-only units
// succeed immediately — the laws govern production code, and icglint
// carries no cross-package facts.
func runUnit(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "icglint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "icglint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command expects the facts file regardless of outcome.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(stderr, "icglint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly || strings.Contains(cfg.ImportPath, " [") || strings.HasSuffix(cfg.ImportPath, ".test") {
		return 0
	}
	prod := cfg.GoFiles[:0:0]
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			prod = append(prod, f)
		}
	}
	if len(prod) == 0 {
		return 0
	}
	loader, err := lint.NewLoader(cfg.Dir)
	if err != nil {
		fmt.Fprintf(stderr, "icglint: %v\n", err)
		return 1
	}
	if _, err := loader.LoadFiles(cfg.ImportPath, cfg.Dir, prod); err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "icglint: %v\n", err)
		return 1
	}
	// Unit mode sees one package, so unused allows are not decidable
	// here; the standalone CI run owns that check.
	res, err := lint.Run(loader, []string{cfg.ImportPath}, lint.Analyzers(), false)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "icglint: %v\n", err)
		return 1
	}
	if len(res.TypeErrors) > 0 && cfg.SucceedOnTypecheckFailure {
		return 0
	}
	for _, f := range res.Findings {
		fmt.Fprintf(stderr, "%s\n", f)
	}
	if len(res.Findings) > 0 {
		return 2
	}
	return 0
}
