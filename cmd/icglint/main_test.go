package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module with one violating package:
// a deterministic-marked file that reads the wall clock.
func writeModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.24\n",
		"bad.go": `// Package tmpmod is a lint fixture.
//
//icg:deterministic
package tmpmod

import "time"

// Now reads the wall clock in a deterministic package.
func Now() time.Time { return time.Now() }
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestListMode(t *testing.T) {
	var out, errb strings.Builder
	if code := runMain([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errb.String())
	}
	for _, name := range []string{"eventflat", "nodeterm", "hotalloc", "sinksafe", "stagepure", "unsafeguard"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}

	out.Reset()
	if code := runMain([]string{"-list", "-json"}, &out, &errb); code != 0 {
		t.Fatalf("-list -json exited %d", code)
	}
	var items []struct{ Name, Doc string }
	if err := json.Unmarshal([]byte(out.String()), &items); err != nil {
		t.Fatalf("-list -json is not JSON: %v\n%s", err, out.String())
	}
	if len(items) != 6 {
		t.Fatalf("-list -json returned %d analyzers, want 6", len(items))
	}
}

func TestVettoolProbes(t *testing.T) {
	var out, errb strings.Builder
	if code := runMain([]string{"-V=full"}, &out, &errb); code != 0 {
		t.Fatalf("-V=full exited %d", code)
	}
	if !strings.HasPrefix(out.String(), "icglint version ") || !strings.Contains(out.String(), "buildID=") {
		t.Errorf("-V=full output not in vettool form: %q", out.String())
	}

	out.Reset()
	if code := runMain([]string{"-flags"}, &out, &errb); code != 0 {
		t.Fatalf("-flags exited %d", code)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("-flags printed %q, want []", out.String())
	}
}

func TestStandaloneFindsAndFails(t *testing.T) {
	dir := writeModule(t)
	t.Chdir(dir)

	var out, errb strings.Builder
	code := runMain(nil, &out, &errb)
	if code != 1 {
		t.Fatalf("standalone run on a dirty module exited %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "nodeterm") || !strings.Contains(out.String(), "bad.go:9") {
		t.Errorf("findings output missing the violation:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	code = runMain([]string{"-json"}, &out, &errb)
	if code != 1 {
		t.Fatalf("-json run exited %d, want 1", code)
	}
	var res struct {
		Findings []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(out.String()), &res); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, out.String())
	}
	if len(res.Findings) != 1 || res.Findings[0].Analyzer != "nodeterm" || res.Findings[0].Line != 9 {
		t.Errorf("-json findings = %+v, want one nodeterm at bad.go:9", res.Findings)
	}
}

func TestUnitMode(t *testing.T) {
	dir := writeModule(t)
	vetx := filepath.Join(dir, "unit.vetx")
	cfg := map[string]any{
		"ImportPath": "tmpmod",
		"Dir":        dir,
		"GoFiles":    []string{filepath.Join(dir, "bad.go")},
		"VetxOutput": vetx,
	}
	data, _ := json.Marshal(cfg)
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errb strings.Builder
	code := runMain([]string{cfgPath}, &out, &errb)
	if code != 2 {
		t.Fatalf("unit run exited %d, want 2 (findings)\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "nodeterm") {
		t.Errorf("unit diagnostics missing the finding:\n%s", errb.String())
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("unit run did not write the facts file: %v", err)
	}
}

func TestUnitModeSkipsTestUnits(t *testing.T) {
	dir := writeModule(t)
	vetx := filepath.Join(dir, "test.vetx")
	cfg := map[string]any{
		"ImportPath": "tmpmod [tmpmod.test]",
		"Dir":        dir,
		"GoFiles":    []string{filepath.Join(dir, "bad.go")},
		"VetxOutput": vetx,
	}
	data, _ := json.Marshal(cfg)
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errb strings.Builder
	if code := runMain([]string{cfgPath}, &out, &errb); code != 0 {
		t.Fatalf("test unit exited %d, want 0 (skipped)\nstderr: %s", code, errb.String())
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("skipped unit must still write the facts file: %v", err)
	}
}
