// Command icgplot renders the paper's waveform and sweep figures as ASCII
// charts: Fig 5 (one ICG beat with the R/B/C/X points over the ECG) and
// the Fig 6/7 Z0-vs-frequency curves.
//
// Usage:
//
//	icgplot [-subject 1] [-beat 3] [-fig 5|6|7]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bioimp"
	"repro/internal/dsp"
	"repro/internal/icg"
	"repro/internal/physio"
	"repro/internal/plot"
)

func main() {
	subjectID := flag.Int("subject", 1, "subject ID (1-5)")
	beat := flag.Int("beat", 3, "beat number for fig 5")
	fig := flag.Int("fig", 5, "figure to render: 5, 6 or 7")
	flag.Parse()

	sub, ok := physio.SubjectByID(*subjectID)
	if !ok {
		log.Fatalf("icgplot: no subject %d", *subjectID)
	}

	switch *fig {
	case 5:
		renderFig5(&sub, *beat)
	case 6:
		renderSweep(&sub, bioimp.TraditionalInstrument(), bioimp.PathThoracic,
			"Fig 6: thoracic bioimpedance vs injection frequency")
	case 7:
		renderSweep(&sub, bioimp.TouchInstrument(), bioimp.PathHandToHand,
			"Fig 7: device bioimpedance vs injection frequency (position 1)")
	default:
		log.Fatalf("icgplot: unknown figure %d", *fig)
	}
}

func renderFig5(sub *physio.Subject, beat int) {
	cfg := physio.DefaultGenConfig()
	cfg.ICGNoiseStd = 0.002
	rec := sub.Generate(cfg)
	tr := rec.Truth
	if beat < 0 || beat+1 >= tr.Beats() {
		log.Fatalf("icgplot: beat %d out of range (0-%d)", beat, tr.Beats()-2)
	}
	filt, err := icg.DefaultFilter(rec.FS).Apply(rec.ICG)
	if err != nil {
		log.Fatalf("icgplot: %v", err)
	}
	pts, err := icg.DetectBeat(filt, tr.RPeaks[beat], tr.RPeaks[beat+1], -1, icg.DefaultDetect(rec.FS))
	if err != nil {
		log.Fatalf("icgplot: %v", err)
	}
	lo := tr.RPeaks[beat] - int(0.1*rec.FS)
	hi := tr.RPeaks[beat+1]
	if lo < 0 {
		lo = 0
	}
	fmt.Printf("Fig 5 — subject %d, beat %d: ICG (-dZ/dt) with detected points\n\n", sub.ID, beat)
	markers := []plot.Marker{
		{Index: pts.R - lo, Label: 'R'},
		{Index: pts.B - lo, Label: 'B'},
		{Index: pts.C - lo, Label: 'C'},
		{Index: pts.X - lo, Label: 'X'},
	}
	fmt.Print(plot.Render(filt[lo:hi], markers, plot.DefaultConfig()))
	fmt.Println("\nECG of the same beat:")
	rMark := []plot.Marker{{Index: pts.R - lo, Label: 'R'}}
	fmt.Print(plot.Render(rec.ECG[lo:hi], rMark, plot.DefaultConfig()))
	pep := float64(pts.B-pts.R) / rec.FS
	lvet := float64(pts.X-pts.B) / rec.FS
	fmt.Printf("\nPEP = %.0f ms (truth %.0f), LVET = %.0f ms (truth %.0f)\n",
		pep*1000, tr.PEP[beat]*1000, lvet*1000, tr.LVET[beat]*1000)
}

func renderSweep(sub *physio.Subject, ins bioimp.Instrument, path bioimp.Path, title string) {
	freqs := dsp.Linspace(1e3, 120e3, 60)
	mags := make([]float64, len(freqs))
	for i, f := range freqs {
		mags[i] = bioimp.MeasuredZ0(sub, ins, path, f)
	}
	fmt.Printf("%s — subject %d\n\n", title, sub.ID)
	fmt.Print(plot.RenderSeries(freqs, mags, plot.DefaultConfig()))
	fmt.Println("x-axis: 1 kHz .. 120 kHz (the measured Z0 peaks near 10 kHz)")
	for _, f := range bioimp.StudyFrequencies() {
		fmt.Printf("  %6.0f kHz: %.2f Ohm\n", f/1000, bioimp.MeasuredZ0(sub, ins, path, f))
	}
}
