// Command icgpower reproduces the paper's power analysis: Table I
// (component currents), the battery-life computation (106 hours on
// 710 mAh with the MCU at 50% duty and the radio at 1%), the measured
// pipeline duty cycle on the STM32L151 model, and the PMU operating-point
// trade-offs.
//
// Usage:
//
//	icgpower [-sweep]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hw/mcu"
	"repro/internal/hw/power"
	"repro/internal/hw/radio"
	"repro/internal/physio"
)

func main() {
	sweep := flag.Bool("sweep", false, "print a battery-life sweep over MCU duty cycles")
	flag.Parse()

	fmt.Println("=== Table I: component current consumption ===")
	budget := power.PaperScenario()
	fmt.Println(budget.Report())

	bat := power.DeviceBattery()
	hours := bat.LifetimeHours(budget.AverageCurrentMA())
	fmt.Printf("battery life (710 mAh, MCU 50%%, radio 1%%): %.1f h (paper: 106 h)\n", hours)
	b01 := power.PaperScenario().Set(power.Radio, 0.001)
	fmt.Printf("battery life with 0.1%% radio duty:          %.1f h\n\n",
		bat.LifetimeHours(b01.AverageCurrentMA()))

	// Measured pipeline duty cycle.
	sub, _ := physio.SubjectByID(1)
	dev, err := core.NewDevice(core.DefaultConfig())
	if err != nil {
		log.Fatalf("icgpower: %v", err)
	}
	_, out, err := dev.Run(&sub, 30)
	if err != nil {
		log.Fatalf("icgpower: %v", err)
	}
	fmt.Println("=== Pipeline cycle budget (30 s window, Cortex-M3 soft float) ===")
	fmt.Println(out.Cost.Report(mcu.CortexM3SoftFloat(), dev.Config().MCU.ClockHz, 30))
	fmt.Printf("calibrated firmware duty cycle: %.1f%% (paper: 40-50%%)\n",
		dev.DutyCycle(out, 30)*100)
	fmt.Printf("radio duty for beat records at %.0f bpm: %.4f%% (paper: ~0.1-1%%)\n\n",
		out.Summary.HR.Mean, radio.BeatStreamDuty(out.Summary.HR.Mean, radio.DefaultLink())*100)

	fmt.Println("=== PMU operating points ===")
	duty := dev.DutyCycle(out, 30)
	for _, mode := range []core.PowerMode{core.ModeContinuous, core.ModeEco, core.ModeSpotCheck} {
		fmt.Printf("%-12s battery life %.0f h\n", mode, core.LifetimeHours(mode, duty))
	}

	if *sweep {
		fmt.Println("\n=== Battery-life sweep over MCU duty ===")
		fmt.Printf("%8s %12s\n", "duty", "hours")
		for d := 0.1; d <= 1.001; d += 0.1 {
			b := power.PaperScenario().Set(power.MCU, d)
			fmt.Printf("%7.0f%% %12.1f\n", d*100, bat.LifetimeHours(b.AverageCurrentMA()))
		}
	}
}
