// Command icgserve runs the network ingest gateway: a TCP server
// speaking the radio-framed chunk protocol (internal/gateway),
// multiplexing many device streams per connection into consistent-hashed
// session.Engine shards and fanning each session's typed event stream
// back out to its subscribers.
//
// Three modes:
//
//	icgserve [-addr HOST:PORT] [-shards N] [-workers N] [-evict-below R]
//	    serve until SIGINT/SIGTERM, then print the load summary
//
//	icgserve -drive HOST:PORT [-sessions N] [-conns N] [-chunk N]
//	         [-duration S] [-workers N] [-verify]
//	    client fleet driver: N sessions multiplexed over -conns TCP
//	    connections, each streaming -duration seconds of simulated touch
//	    signal in -chunk-sample pushes, every session subscribed to its
//	    event stream. With -verify it replays the exact same chunk-framed
//	    stream into an identically-configured in-process engine and
//	    demands hash-identical per-session event streams — the
//	    determinism law across the network hop (-workers must match the
//	    server's).
//
//	icgserve -selfcheck [-sessions N] [-shards N] [-workers N] [-chunk N]
//	    one-process loopback: serve on an ephemeral port, drive, verify.
//
// The driver's throughput figures (sessions, beats, samples/s, drops)
// are the BENCHMARKS.md gateway fleet numbers; backpressure engages in
// both directions — ingest blocks on each session's bounded backlog via
// TCP flow control, egress drops (counted) at each subscriber's bounded
// queue — so no load level can grow a queue without bound.
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/physio"
	"repro/internal/session"
	"repro/internal/wal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9750", "listen address (serve) ")
	drive := flag.String("drive", "", "drive a running gateway at this address instead of serving")
	selfcheck := flag.Bool("selfcheck", false, "serve on an ephemeral port, drive it, verify, exit")
	shards := flag.Int("shards", 1, "session engine shards (serve/selfcheck)")
	workers := flag.Int("workers", 0, "engine workers per shard (0 = GOMAXPROCS); drive -verify must match the server")
	sessions := flag.Int("sessions", 8, "driver: concurrent sessions")
	conns := flag.Int("conns", 4, "driver: TCP connections the sessions multiplex over")
	chunk := flag.Int("chunk", 50, "driver: samples per push (50 = 200 ms AFE DMA)")
	duration := flag.Float64("duration", 8, "driver: seconds of signal per session")
	verify := flag.Bool("verify", false, "driver: verify per-session event hashes against an in-process engine")
	evictBelow := flag.Float64("evict-below", 0, "serve: accept-rate EWMA eviction floor (0 = off)")
	flag.Parse()

	switch {
	case *selfcheck:
		scfg := session.Config{Workers: *workers, MaxPending: 64}
		g := gateway.New(mustDevice(), gateway.Config{Shards: *shards, Session: scfg})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("icgserve: %v", err)
		}
		go g.Serve(ln)
		ok := runDriver(ln.Addr().String(), *sessions, *conns, *chunk, *duration, *workers, true)
		printStats(g.Stats())
		if err := g.Close(); err != nil {
			log.Fatalf("icgserve: close: %v", err)
		}
		if !ok {
			os.Exit(1)
		}
	case *drive != "":
		if !runDriver(*drive, *sessions, *conns, *chunk, *duration, *workers, *verify) {
			os.Exit(1)
		}
	default:
		runServe(*addr, *shards, *workers, *evictBelow)
	}
}

func mustDevice() *core.Device {
	dev, err := core.NewDevice(core.DefaultConfig())
	if err != nil {
		log.Fatalf("icgserve: %v", err)
	}
	return dev
}

// runServe listens until SIGINT/SIGTERM, then prints the load summary.
func runServe(addr string, shards, workers int, evictBelow float64) {
	scfg := session.Config{Workers: workers, MaxPending: 64}
	if evictBelow > 0 {
		scfg.Health = session.HealthConfig{EvictBelowRate: evictBelow, EvictAfterS: 20}
	}
	g := gateway.New(mustDevice(), gateway.Config{Shards: shards, Session: scfg})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("icgserve: %v", err)
	}
	fmt.Printf("gateway listening on %s (%d shards)\n", ln.Addr(), shards)
	done := make(chan os.Signal, 1)
	signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		if err := g.Serve(ln); err != nil {
			log.Fatalf("icgserve: serve: %v", err)
		}
	}()
	<-done
	printStats(g.Stats())
	if err := g.Close(); err != nil {
		log.Fatalf("icgserve: close: %v", err)
	}
}

func printStats(st gateway.Stats) {
	fmt.Printf("gateway: %d conns served (%d open), %d chunk frames, %d sample pairs in\n",
		st.ConnsTotal, st.ConnsOpen, st.FramesIn, st.SamplesIn)
	fmt.Printf("gateway: %d events out, %d dropped at subscriber queues, %d protocol errors\n",
		st.EventsOut, st.EventsDropped, st.ProtocolErrs)
	for i, sh := range st.Shards {
		fmt.Printf("gateway shard %d: %d open, %d opened, %d finished, %d evicted\n",
			i, sh.Open, sh.Opened, sh.Finished, sh.Evicted)
	}
}

// baseInputs synthesizes a few base acquisitions the whole fleet
// shares; per-session variation comes from the chunk interleaving, not
// per-session copies, so a 10k-session fleet costs megabytes, not
// gigabytes, of input.
func baseInputs(dev *core.Device, seconds float64) [][2][]float64 {
	var base [][2][]float64
	for sid := 1; sid <= 3; sid++ {
		sub, _ := physio.SubjectByID(sid)
		acq, err := dev.Acquire(&sub, seconds)
		if err != nil {
			log.Fatalf("icgserve: acquire: %v", err)
		}
		base = append(base, [2][]float64{acq.ECG, acq.Z})
	}
	return base
}

// sessionHashes folds each session's events — in their canonical wal
// encoding, the exact bytes the gateway ships — into a per-session FNV
// chain.
type sessionHashes struct {
	mu    sync.Mutex
	h     map[uint64]uint64
	buf   []byte
	beats uint64
}

func newSessionHashes() *sessionHashes { return &sessionHashes{h: make(map[uint64]uint64)} }

func (r *sessionHashes) add(e *event.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.Kind == event.KindBeat {
		r.beats++
	}
	r.buf = wal.EncodeEvent(r.buf[:0], e)
	h := fnv.New64a()
	var seed [8]byte
	prev := r.h[e.Session]
	for i := 0; i < 8; i++ {
		seed[i] = byte(prev >> (8 * i))
	}
	h.Write(seed[:])
	h.Write(r.buf)
	r.h[e.Session] = h.Sum64()
}

// dialRetry dials the gateway, retrying while the server comes up (the
// CI smoke starts icgserve and the driver back-to-back).
func dialRetry(addr string, depth int) (*gateway.Client, error) {
	var lastErr error
	for i := 0; i < 100; i++ {
		c, err := gateway.Dial(addr, depth)
		if err == nil {
			return c, nil
		}
		lastErr = err
		time.Sleep(100 * time.Millisecond)
	}
	return nil, lastErr
}

// runDriver streams the fleet through a gateway at addr and returns
// whether the run (and, with verify, the determinism proof) passed.
func runDriver(addr string, sessions, conns, chunk int, duration float64, workers int, verify bool) bool {
	if conns < 1 {
		conns = 1
	}
	if conns > sessions {
		conns = sessions
	}
	dev := mustDevice()
	base := baseInputs(dev, duration)
	input := func(id uint64) ([]float64, []float64) {
		b := base[id%uint64(len(base))]
		return b[0], b[1]
	}

	got := newSessionHashes()
	clients := make([]*gateway.Client, conns)
	var consumers sync.WaitGroup
	for i := range clients {
		c, err := dialRetry(addr, 1024)
		if err != nil {
			log.Printf("icgserve: dial %s: %v", addr, err)
			return false
		}
		clients[i] = c
		consumers.Add(1)
		go func(c *gateway.Client) {
			defer consumers.Done()
			for e := range c.Events() {
				got.add(&e)
			}
		}(c)
	}

	// Open every stream first so the wall clock measures streaming, not
	// handshakes. Streams are distributed round-robin across the conns;
	// the per-connection stream id is the session's index on that conn.
	type lane struct {
		cs *gateway.ClientStream
		id uint64
	}
	lanes := make([]lane, 0, sessions)
	perConn := make([]uint16, conns)
	for i := 0; i < sessions; i++ {
		id := uint64(i + 1)
		ci := i % conns
		cs, err := clients[ci].Open(perConn[ci]+1, id, true)
		if err != nil {
			log.Printf("icgserve: open session %d: %v", id, err)
			return false
		}
		perConn[ci]++
		lanes = append(lanes, lane{cs, id})
	}

	start := time.Now()
	var push sync.WaitGroup
	var pushErrs sync.Map
	var samples int64
	var sampleMu sync.Mutex
	for _, l := range lanes {
		push.Add(1)
		go func(l lane) {
			defer push.Done()
			ecg, z := input(l.id)
			for pos := 0; pos < len(ecg); pos += chunk {
				end := pos + chunk
				if end > len(ecg) {
					end = len(ecg)
				}
				if err := l.cs.Push(ecg[pos:end], z[pos:end]); err != nil {
					pushErrs.Store(l.id, err)
					return
				}
			}
			if err := l.cs.Close(); err != nil {
				pushErrs.Store(l.id, err)
				return
			}
			sampleMu.Lock()
			samples += int64(len(ecg))
			sampleMu.Unlock()
		}(l)
	}
	push.Wait()
	elapsed := time.Since(start)
	for _, c := range clients {
		c.Close()
	}
	consumers.Wait()

	failed := 0
	pushErrs.Range(func(id, err any) bool {
		log.Printf("icgserve: session %v: %v", id, err)
		failed++
		return true
	})
	fmt.Printf("drive: %d sessions x %.0f s over %d conns in %.2f s wall (%.1fx realtime, %.0f sample pairs/s), %d beats\n",
		sessions, duration, conns, elapsed.Seconds(),
		float64(sessions)*duration/elapsed.Seconds(),
		float64(samples)/elapsed.Seconds(), got.beats)
	if failed > 0 {
		fmt.Printf("drive: %d sessions FAILED\n", failed)
		return false
	}

	if !verify {
		return true
	}
	want := referenceHashes(dev, session.Config{Workers: workers, MaxPending: 64}, sessions, chunk, input)
	bad := 0
	for i := 0; i < sessions; i++ {
		id := uint64(i + 1)
		g, w := got.h[id], want[id]
		if g != w || g == 0 {
			log.Printf("icgserve: session %d: gateway hash %x != in-process %x", id, g, w)
			bad++
		}
	}
	if bad > 0 {
		fmt.Printf("determinism proof FAILED for %d of %d sessions\n", bad, sessions)
		return false
	}
	fmt.Printf("determinism proof: %d sessions hash-identical to the in-process engine\n", sessions)
	return true
}

// referenceHashes replays the fleet in-process: the same chunk-framed
// stream (identical frame boundaries, identical bits — the codec is
// lossless and its packing depends only on the sample bits) delivered
// by PushOwned to an identically-configured engine.
func referenceHashes(dev *core.Device, scfg session.Config, sessions, chunk int, input func(uint64) ([]float64, []float64)) map[uint64]uint64 {
	eng := session.NewEngine(dev, scfg)
	hashes := newSessionHashes()
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		id := uint64(i + 1)
		s, err := eng.Subscribe(id, event.Func(func(e event.Event) { hashes.add(&e) }))
		if err != nil {
			log.Fatalf("icgserve: reference open %d: %v", id, err)
		}
		wg.Add(1)
		go func(s *session.Session, id uint64) {
			defer wg.Done()
			ecg, z := input(id)
			if err := gateway.ReplayChunks(s, ecg, z, chunk); err != nil {
				log.Fatalf("icgserve: reference session %d: %v", id, err)
			}
			if err := s.Close(); err != nil {
				log.Fatalf("icgserve: reference close %d: %v", id, err)
			}
		}(s, id)
	}
	wg.Wait()
	if err := eng.Close(); err != nil {
		log.Fatalf("icgserve: reference engine close: %v", err)
	}
	return hashes.h
}
