// Command icgsim generates a synthetic touch-device recording and writes
// it as CSV: time, the device ECG and impedance channels, the derived ICG,
// and the ground-truth beat annotations — useful for inspecting waveforms
// or feeding external tools. On stderr it reports the per-beat quality
// gate's verdict on the recording: the accept rate and the gated versus
// raw hemodynamic summaries.
//
// -events additionally replays the recording through the serving
// engine's typed event stream and prints every event (beats, health
// transitions, the session close) to stderr — the subscription-surface
// view of the same recording.
//
// Usage:
//
//	icgsim [-subject 1] [-duration 30] [-position 1] [-freq 50000] [-o out.csv]
//	       [-events]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/bioimp"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/physio"
	"repro/internal/session"
)

func main() {
	subjectID := flag.Int("subject", 1, "subject ID (1-5)")
	duration := flag.Float64("duration", 30, "duration (s)")
	position := flag.Int("position", 1, "arm position (1-3)")
	freq := flag.Float64("freq", 50e3, "injection frequency (Hz)")
	output := flag.String("o", "-", "output file (- for stdout)")
	events := flag.Bool("events", false, "print the typed event-stream replay to stderr")
	flag.Parse()

	sub, ok := physio.SubjectByID(*subjectID)
	if !ok {
		log.Fatalf("icgsim: no subject %d", *subjectID)
	}
	if *position < 1 || *position > 3 {
		log.Fatalf("icgsim: position must be 1-3")
	}

	cfg := core.DefaultConfig()
	cfg.Position = bioimp.Position(*position)
	cfg.InjectionFreq = *freq
	dev, err := core.NewDevice(cfg)
	if err != nil {
		log.Fatalf("icgsim: %v", err)
	}
	acq, err := dev.Acquire(&sub, *duration)
	if err != nil {
		log.Fatalf("icgsim: %v", err)
	}
	icgTrack := bioimp.ICGFromZ(acq.Z, acq.FS)

	// Per-beat quality report on stderr (the CSV goes to -o/stdout).
	if out, perr := dev.Process(acq); perr != nil {
		fmt.Fprintf(os.Stderr, "icgsim: pipeline: %v\n", perr)
	} else {
		g := out.Gated
		fmt.Fprintf(os.Stderr, "quality gate: %d/%d beats accepted (%.0f%%)\n",
			g.Gated.Beats, g.Raw.Beats, out.AcceptRate*100)
		fmt.Fprintf(os.Stderr, "  raw  : HR %5.1f bpm  PEP %5.1f ms  LVET %5.1f ms  SV %5.1f mL\n",
			g.Raw.HR.Mean, g.Raw.PEP.Mean*1000, g.Raw.LVET.Mean*1000, g.Raw.SVKub.Mean)
		fmt.Fprintf(os.Stderr, "  gated: HR %5.1f bpm  PEP %5.1f ms  LVET %5.1f ms  SV %5.1f mL\n",
			g.Gated.HR.Mean, g.Gated.PEP.Mean*1000, g.Gated.LVET.Mean*1000, g.Gated.SVKub.Mean)
		fmt.Fprintf(os.Stderr, "  quality-weighted: HR %5.1f bpm  PEP %5.1f ms  LVET %5.1f ms\n",
			g.WHR, g.WPEP*1000, g.WLVET*1000)
	}

	if *events {
		if err := replayEvents(dev, acq); err != nil {
			log.Fatalf("icgsim: events: %v", err)
		}
	}

	var w io.Writer = os.Stdout
	if *output != "-" {
		f, err := os.Create(*output)
		if err != nil {
			log.Fatalf("icgsim: %v", err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	// Beat annotation lookup.
	isR := map[int]bool{}
	for _, r := range acq.Rec.Truth.RPeaks {
		isR[r] = true
	}
	isB := map[int]bool{}
	for _, b := range acq.Rec.Truth.BPoints {
		isB[b] = true
	}
	isC := map[int]bool{}
	for _, c := range acq.Rec.Truth.CPoints {
		isC[c] = true
	}
	isX := map[int]bool{}
	for _, x := range acq.Rec.Truth.XPoints {
		isX[x] = true
	}

	fmt.Fprintln(bw, "t_s,ecg_mv,z_ohm,icg_ohm_per_s,truth_r,truth_b,truth_c,truth_x")
	for i := range acq.ECG {
		fmt.Fprintf(bw, "%.4f,%.6f,%.6f,%.6f,%d,%d,%d,%d\n",
			float64(i)/acq.FS, acq.ECG[i], acq.Z[i], icgTrack[i],
			b2i(isR[i]), b2i(isB[i]), b2i(isC[i]), b2i(isX[i]))
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// replayEvents pushes the recording through a subscribed serving-engine
// session in DMA-sized chunks and prints the full typed event stream —
// what a radio, dashboard or alerting consumer would see.
func replayEvents(dev *core.Device, acq *core.Acquisition) error {
	fmt.Fprintln(os.Stderr, "event stream (session 1, 200 ms chunks):")
	cfg := session.DefaultConfig()
	cfg.Health = session.HealthConfig{EvictBelowRate: 0.2}
	eng := session.NewEngine(dev, cfg)
	s, err := eng.Subscribe(1, event.Func(func(e event.Event) {
		switch e.Kind {
		case event.KindBeat:
			verdict := "ok"
			if !e.Params.Accepted {
				verdict = "REJ"
			}
			fmt.Fprintf(os.Stderr, "  %-14s beat %3d @ %6.2fs  HR %5.1f  PEP %5.1f ms  LVET %5.1f ms  q %.2f %s\n",
				e.Kind, e.Beat, e.TimeS, e.Params.HR, e.Params.PEP*1000,
				e.Params.LVET*1000, e.Params.Quality, verdict)
		case event.KindHealth:
			dir := ">="
			if e.Below {
				dir = "<"
			}
			fmt.Fprintf(os.Stderr, "  %-14s beat %3d @ %6.2fs  accept EWMA %.2f %s floor %.2f\n",
				e.Kind, e.Beat, e.TimeS, e.AcceptEWMA, dir, e.Floor)
		case event.KindMode:
			fmt.Fprintf(os.Stderr, "  %-14s beat %3d @ %6.2fs  %v -> %v\n",
				e.Kind, e.Beat, e.TimeS,
				core.PowerMode(e.PrevMode), core.PowerMode(e.Mode))
		case event.KindEviction, event.KindSessionClosed:
			fmt.Fprintf(os.Stderr, "  %-14s beat %3d @ %6.2fs  %v, %d/%d accepted\n",
				e.Kind, e.Beat, e.TimeS, session.CloseReason(e.Reason),
				e.Accepted, e.Emitted)
		}
	}))
	if err != nil {
		return err
	}
	chunk := 50
	for pos := 0; pos < len(acq.ECG); pos += chunk {
		end := min(pos+chunk, len(acq.ECG))
		if err := s.Push(acq.ECG[pos:end], acq.Z[pos:end]); err != nil {
			return err
		}
	}
	if err := s.Close(); err != nil {
		return err
	}
	return eng.Close()
}
