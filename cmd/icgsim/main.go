// Command icgsim generates a synthetic touch-device recording and writes
// it as CSV: time, the device ECG and impedance channels, the derived ICG,
// and the ground-truth beat annotations — useful for inspecting waveforms
// or feeding external tools. On stderr it reports the per-beat quality
// gate's verdict on the recording: the accept rate and the gated versus
// raw hemodynamic summaries.
//
// Usage:
//
//	icgsim [-subject 1] [-duration 30] [-position 1] [-freq 50000] [-o out.csv]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/bioimp"
	"repro/internal/core"
	"repro/internal/physio"
)

func main() {
	subjectID := flag.Int("subject", 1, "subject ID (1-5)")
	duration := flag.Float64("duration", 30, "duration (s)")
	position := flag.Int("position", 1, "arm position (1-3)")
	freq := flag.Float64("freq", 50e3, "injection frequency (Hz)")
	output := flag.String("o", "-", "output file (- for stdout)")
	flag.Parse()

	sub, ok := physio.SubjectByID(*subjectID)
	if !ok {
		log.Fatalf("icgsim: no subject %d", *subjectID)
	}
	if *position < 1 || *position > 3 {
		log.Fatalf("icgsim: position must be 1-3")
	}

	cfg := core.DefaultConfig()
	cfg.Position = bioimp.Position(*position)
	cfg.InjectionFreq = *freq
	dev, err := core.NewDevice(cfg)
	if err != nil {
		log.Fatalf("icgsim: %v", err)
	}
	acq, err := dev.Acquire(&sub, *duration)
	if err != nil {
		log.Fatalf("icgsim: %v", err)
	}
	icgTrack := bioimp.ICGFromZ(acq.Z, acq.FS)

	// Per-beat quality report on stderr (the CSV goes to -o/stdout).
	if out, perr := dev.Process(acq); perr != nil {
		fmt.Fprintf(os.Stderr, "icgsim: pipeline: %v\n", perr)
	} else {
		g := out.Gated
		fmt.Fprintf(os.Stderr, "quality gate: %d/%d beats accepted (%.0f%%)\n",
			g.Gated.Beats, g.Raw.Beats, out.AcceptRate*100)
		fmt.Fprintf(os.Stderr, "  raw  : HR %5.1f bpm  PEP %5.1f ms  LVET %5.1f ms  SV %5.1f mL\n",
			g.Raw.HR.Mean, g.Raw.PEP.Mean*1000, g.Raw.LVET.Mean*1000, g.Raw.SVKub.Mean)
		fmt.Fprintf(os.Stderr, "  gated: HR %5.1f bpm  PEP %5.1f ms  LVET %5.1f ms  SV %5.1f mL\n",
			g.Gated.HR.Mean, g.Gated.PEP.Mean*1000, g.Gated.LVET.Mean*1000, g.Gated.SVKub.Mean)
		fmt.Fprintf(os.Stderr, "  quality-weighted: HR %5.1f bpm  PEP %5.1f ms  LVET %5.1f ms\n",
			g.WHR, g.WPEP*1000, g.WLVET*1000)
	}

	var w io.Writer = os.Stdout
	if *output != "-" {
		f, err := os.Create(*output)
		if err != nil {
			log.Fatalf("icgsim: %v", err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	// Beat annotation lookup.
	isR := map[int]bool{}
	for _, r := range acq.Rec.Truth.RPeaks {
		isR[r] = true
	}
	isB := map[int]bool{}
	for _, b := range acq.Rec.Truth.BPoints {
		isB[b] = true
	}
	isC := map[int]bool{}
	for _, c := range acq.Rec.Truth.CPoints {
		isC[c] = true
	}
	isX := map[int]bool{}
	for _, x := range acq.Rec.Truth.XPoints {
		isX[x] = true
	}

	fmt.Fprintln(bw, "t_s,ecg_mv,z_ohm,icg_ohm_per_s,truth_r,truth_b,truth_c,truth_x")
	for i := range acq.ECG {
		fmt.Fprintf(bw, "%.4f,%.6f,%.6f,%.6f,%d,%d,%d,%d\n",
			float64(i)/acq.FS, acq.ECG[i], acq.Z[i], icgTrack[i],
			b2i(isR[i]), b2i(isB[i]), b2i(isC[i]), b2i(isX[i]))
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
