// Command icgsim generates a synthetic touch-device recording and writes
// it as CSV: time, the device ECG and impedance channels, the derived ICG,
// and the ground-truth beat annotations — useful for inspecting waveforms
// or feeding external tools.
//
// Usage:
//
//	icgsim [-subject 1] [-duration 30] [-position 1] [-freq 50000] [-o out.csv]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/bioimp"
	"repro/internal/core"
	"repro/internal/physio"
)

func main() {
	subjectID := flag.Int("subject", 1, "subject ID (1-5)")
	duration := flag.Float64("duration", 30, "duration (s)")
	position := flag.Int("position", 1, "arm position (1-3)")
	freq := flag.Float64("freq", 50e3, "injection frequency (Hz)")
	output := flag.String("o", "-", "output file (- for stdout)")
	flag.Parse()

	sub, ok := physio.SubjectByID(*subjectID)
	if !ok {
		log.Fatalf("icgsim: no subject %d", *subjectID)
	}
	if *position < 1 || *position > 3 {
		log.Fatalf("icgsim: position must be 1-3")
	}

	cfg := core.DefaultConfig()
	cfg.Position = bioimp.Position(*position)
	cfg.InjectionFreq = *freq
	dev, err := core.NewDevice(cfg)
	if err != nil {
		log.Fatalf("icgsim: %v", err)
	}
	acq, err := dev.Acquire(&sub, *duration)
	if err != nil {
		log.Fatalf("icgsim: %v", err)
	}
	icgTrack := bioimp.ICGFromZ(acq.Z, acq.FS)

	var w io.Writer = os.Stdout
	if *output != "-" {
		f, err := os.Create(*output)
		if err != nil {
			log.Fatalf("icgsim: %v", err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	// Beat annotation lookup.
	isR := map[int]bool{}
	for _, r := range acq.Rec.Truth.RPeaks {
		isR[r] = true
	}
	isB := map[int]bool{}
	for _, b := range acq.Rec.Truth.BPoints {
		isB[b] = true
	}
	isC := map[int]bool{}
	for _, c := range acq.Rec.Truth.CPoints {
		isC[c] = true
	}
	isX := map[int]bool{}
	for _, x := range acq.Rec.Truth.XPoints {
		isX[x] = true
	}

	fmt.Fprintln(bw, "t_s,ecg_mv,z_ohm,icg_ohm_per_s,truth_r,truth_b,truth_c,truth_x")
	for i := range acq.ECG {
		fmt.Fprintf(bw, "%.4f,%.6f,%.6f,%.6f,%d,%d,%d,%d\n",
			float64(i)/acq.FS, acq.ECG[i], acq.Z[i], icgTrack[i],
			b2i(isR[i]), b2i(isB[i]), b2i(isC[i]), b2i(isX[i]))
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
