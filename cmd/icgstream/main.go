// Command icgstream demonstrates the wireless path of the system: the
// device processes a touch recording beat by beat and streams the
// resulting records (Z0, LVET, PEP, HR — exactly the parameter set of
// Section V) over a TCP connection standing in for the BLE link; the
// monitor side decodes and prints them.
//
// Every beat carries its per-beat quality-gate verdict; only accepted
// beats are spent on the radio (rejected beats would waste airtime on
// artifact numbers), and the run reports the gate's accept rate.
//
// With -sessions N > 1 it instead exercises the multi-session serving
// layer: N concurrent simulated device streams run through one
// session.Engine on a bounded worker pool, session 0's accepted beats
// stream over the radio link live, and the run ends with aggregate
// throughput figures plus the per-session accept-rate spread.
//
// Usage:
//
//	icgstream [-subject 1] [-duration 30] [-loss 0.02] [-sessions 1] [-workers 0]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hemo"
	"repro/internal/hw/radio"
	"repro/internal/physio"
	"repro/internal/session"
)

func main() {
	subjectID := flag.Int("subject", 1, "subject ID (1-5)")
	duration := flag.Float64("duration", 30, "recording duration (s)")
	loss := flag.Float64("loss", 0.02, "simulated radio loss probability")
	sessions := flag.Int("sessions", 1, "concurrent device streams (multi-session mode when > 1)")
	workers := flag.Int("workers", 0, "session engine workers (0 = GOMAXPROCS)")
	flag.Parse()

	dev, err := core.NewDevice(core.DefaultConfig())
	if err != nil {
		log.Fatalf("icgstream: %v", err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("icgstream: %v", err)
	}
	defer ln.Close()
	fmt.Printf("monitor listening on %s\n", ln.Addr())

	var wg sync.WaitGroup
	wg.Add(1)
	// Monitor side.
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("monitor: %v", err)
			return
		}
		defer conn.Close()
		n := 0
		for {
			f, err := radio.ReadFrame(conn)
			if err != nil {
				break // device closed the link
			}
			if f.Type != radio.TypeBeat {
				continue
			}
			beat, err := radio.UnmarshalBeat(f.Payload)
			if err != nil {
				log.Printf("monitor: bad beat: %v", err)
				continue
			}
			n++
			fmt.Printf("beat %2d  t=%6.2fs  Z0=%7.2f Ohm  PEP=%5.1f ms  LVET=%5.1f ms  HR=%5.1f bpm\n",
				n, float64(beat.TimestampMs)/1000, beat.Z0,
				beat.PEP*1000, beat.LVET*1000, beat.HR)
		}
		fmt.Printf("monitor received %d beats\n", n)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatalf("icgstream: %v", err)
	}

	sub, ok := physio.SubjectByID(*subjectID)
	if !ok {
		log.Fatalf("icgstream: no subject %d", *subjectID)
	}
	link := radio.NewLink(radio.LinkConfig{
		LossProb: *loss, MaxRetries: 3, BitRate: 1e6, Overhead: 14,
	}, sub.Seed)

	if *sessions <= 1 {
		runSingle(dev, &sub, *duration, link, conn)
	} else {
		runFleet(dev, *sessions, *workers, *duration, link, conn)
	}
	conn.Close()
	wg.Wait()
	fmt.Printf("link: sent=%d delivered=%d dropped=%d retries=%d airtime=%.1f ms (duty %.4f%%)\n",
		link.Sent, link.Delivered, link.Dropped, link.Retries,
		link.AirtimeS*1000, link.DutyCycle(*duration)*100)
}

// runSingle is the classic path: acquire, process, transmit the beats
// that passed the quality gate.
func runSingle(dev *core.Device, sub *physio.Subject, duration float64, link *radio.Link, conn net.Conn) {
	_, out, err := dev.Run(sub, duration)
	if err != nil {
		log.Fatalf("icgstream: %v", err)
	}
	seq := byte(0)
	sent := 0
	for _, b := range out.Beats {
		if !b.Accepted {
			continue
		}
		transmit(link, conn, &seq, b)
		sent++
	}
	fmt.Printf("quality gate: %d/%d beats accepted and transmitted (%.0f%%)\n",
		sent, len(out.Beats), out.AcceptRate*100)
}

// runFleet multiplexes n simulated streams through the session engine.
// Session 0's beats go over the radio link as they are emitted; every
// other session counts toward the aggregate.
func runFleet(dev *core.Device, n, workers int, duration float64, link *radio.Link, conn net.Conn) {
	cfg := session.DefaultConfig()
	cfg.Workers = workers
	cfg.Seed = 1
	eng := session.NewEngine(dev, cfg)

	var radioMu sync.Mutex
	seq := byte(0)
	var totalBeats, acceptedBeats int64
	var countMu sync.Mutex
	rates := make([]float64, 0, n) // per-session accept rates at close

	start := time.Now()
	var push sync.WaitGroup
	for id := 0; id < n; id++ {
		s, err := eng.Open(uint64(id), func(b hemo.BeatParams) {
			countMu.Lock()
			totalBeats++
			if b.Accepted {
				acceptedBeats++
			}
			countMu.Unlock()
			if id == 0 && b.Accepted {
				radioMu.Lock()
				transmit(link, conn, &seq, b)
				radioMu.Unlock()
			}
		})
		if err != nil {
			log.Fatalf("icgstream: open session %d: %v", id, err)
		}
		push.Add(1)
		go func(s *session.Session) {
			defer push.Done()
			// Each session simulates its own subject, seeded from the
			// engine's deterministic per-session seed.
			sub, _ := physio.SubjectByID(1 + int(s.ID)%5)
			sub.Seed = s.Seed()
			acq, err := dev.Acquire(&sub, duration)
			if err != nil {
				log.Printf("icgstream: session %d acquire: %v", s.ID, err)
				return
			}
			chunk := 50 // 200 ms, as the AFE DMA would deliver
			for pos := 0; pos < len(acq.ECG); pos += chunk {
				end := pos + chunk
				if end > len(acq.ECG) {
					end = len(acq.ECG)
				}
				if err := s.Push(acq.ECG[pos:end], acq.Z[pos:end]); err != nil {
					log.Printf("icgstream: session %d push: %v", s.ID, err)
					return
				}
			}
			if err := s.Close(); err != nil {
				log.Printf("icgstream: session %d close: %v", s.ID, err)
				return
			}
			// Final per-session gate tally (stable after Close).
			acc, emitted := s.AcceptStats()
			if emitted > 0 {
				countMu.Lock()
				rates = append(rates, float64(acc)/float64(emitted))
				countMu.Unlock()
			}
		}(s)
	}
	push.Wait()
	if err := eng.Close(); err != nil {
		log.Fatalf("icgstream: engine close: %v", err)
	}
	elapsed := time.Since(start)
	fmt.Printf("fleet: %d sessions x %.0f s processed in %.2f s wall (%.0fx realtime), %d beats (%.0f beats/s)\n",
		n, duration, elapsed.Seconds(),
		float64(n)*duration/elapsed.Seconds(),
		totalBeats, float64(totalBeats)/elapsed.Seconds())
	if totalBeats > 0 {
		lo, hi := 1.0, 0.0
		sum := 0.0
		for _, r := range rates {
			if r < lo {
				lo = r
			}
			if r > hi {
				hi = r
			}
			sum += r
		}
		mean := 0.0
		if len(rates) > 0 {
			mean = sum / float64(len(rates))
		}
		fmt.Printf("fleet gate: %d/%d beats accepted (%.0f%%); per-session accept rate min %.0f%% mean %.0f%% max %.0f%%\n",
			acceptedBeats, totalBeats, 100*float64(acceptedBeats)/float64(totalBeats),
			lo*100, mean*100, hi*100)
	}
}

func transmit(link *radio.Link, conn net.Conn, seq *byte, b hemo.BeatParams) {
	rec := radio.BeatRecord{
		TimestampMs: uint32(b.TimeS * 1000),
		Z0:          b.Z0, LVET: b.LVET, PEP: b.PEP, HR: b.HR,
	}
	f := &radio.Frame{Type: radio.TypeBeat, Seq: *seq, Payload: rec.Marshal()}
	*seq++
	if !link.Send(f) {
		return // lost after retries: the beat is dropped
	}
	if err := radio.WriteFrame(conn, f); err != nil {
		log.Fatalf("icgstream: %v", err)
	}
}
