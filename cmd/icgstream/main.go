// Command icgstream demonstrates the wireless path of the system: the
// device processes a touch recording beat by beat through the serving
// engine's typed event stream and sends the resulting records (Z0,
// LVET, PEP, HR — exactly the parameter set of Section V) over a TCP
// connection standing in for the BLE link; the monitor side decodes and
// prints them.
//
// Every KindBeat event carries its per-beat quality-gate verdict; only
// accepted beats are spent on the radio (rejected beats would waste
// airtime on artifact numbers), and the run reports the gate's accept
// rate.
//
// With -sessions N > 1 it instead exercises the multi-session serving
// layer: N concurrent simulated device streams run through one
// session.Engine on a bounded worker pool, every session subscribed to
// its event stream, session 0's accepted beats stream over the radio
// link live, and the run ends with aggregate throughput figures plus
// the per-session accept-rate spread (from the KindSessionClosed
// tallies).
//
// -dead injects dead-contact streams (flat impedance, noise-only ECG —
// a lifted finger) into the fleet, and -evict-below arms the engine's
// session-health eviction (session.HealthConfig): dead sessions are cut
// once their accept-rate EWMA dwells below the floor — reported by
// their KindEviction events — shedding their remaining load, and the
// run reports how much work eviction saved.
//
// -wal-dir arms the crash-safe write-ahead event log (internal/wal):
// every session's typed events and periodic snapshots persist to the
// directory, evicted sessions are re-admitted through the durable
// restore path at the end of the fleet run (their KindReadmit events
// are on the log), and the summary reports per-session retained bytes,
// full-replay lag and re-admit counts. -replay DIR replays a log and
// prints its summary instead of running anything; with -prefix-of REF
// it additionally verifies the recovery prefix law — every session's
// replayed event stream must be a byte prefix of the same session's
// stream in REF — which is what the CI crash-restart step checks after
// a -kill-after run (the self-test flag SIGKILLs the process mid-run,
// exactly like a power cut).
//
// Usage:
//
//	icgstream [-subject 1] [-duration 30] [-loss 0.02] [-sessions 1] [-workers 0]
//	          [-dead 0] [-evict-below 0] [-evict-after 20]
//	          [-wal-dir DIR] [-kill-after 0] [-legacy-refilter] [-direct-fir]
//	          [-cpuprofile FILE] [-memprofile FILE]
//	icgstream -replay DIR [-prefix-of REF]
//
// -legacy-refilter selects the windowed per-beat zero-phase refilter
// instead of the delineator's rolling filtfilt cache in every session's
// streaming engine. The fleet summary reports per-hop ns and the
// realtime multiple, so running the same fleet with and without the
// flag demonstrates the cache win end-to-end. -direct-fir is the same
// kind of A/B switch for the streaming ECG band-pass: it pins the
// direct per-sample recurrence (the MCU deployment profile) instead of
// the block-carried overlap-save engine.
//
// -cpuprofile/-memprofile write standard pprof profiles of the run, so
// fleet-mode hot paths can be inspected with `go tool pprof` without a
// custom build.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/hemo"
	"repro/internal/hw/radio"
	"repro/internal/physio"
	"repro/internal/session"
	"repro/internal/wal"
)

func main() {
	subjectID := flag.Int("subject", 1, "subject ID (1-5)")
	duration := flag.Float64("duration", 30, "recording duration (s)")
	loss := flag.Float64("loss", 0.02, "simulated radio loss probability")
	sessions := flag.Int("sessions", 1, "concurrent device streams (multi-session mode when > 1)")
	workers := flag.Int("workers", 0, "session engine workers (0 = GOMAXPROCS)")
	dead := flag.Int("dead", 0, "dead-contact streams injected into the fleet")
	evictBelow := flag.Float64("evict-below", 0, "accept-rate EWMA eviction floor (0 = eviction off)")
	evictAfter := flag.Float64("evict-after", 20, "signal seconds below the floor before eviction")
	walDir := flag.String("wal-dir", "", "write-ahead event log directory (arms crash-safe durability)")
	replayDir := flag.String("replay", "", "replay a WAL directory and print its summary, then exit")
	prefixOf := flag.String("prefix-of", "", "with -replay: verify the log is a per-session event prefix of this reference WAL directory")
	killAfter := flag.Float64("kill-after", 0, "self-test: SIGKILL the process after this many wall seconds (models a power cut; use with -wal-dir)")
	legacyRefilter := flag.Bool("legacy-refilter", false, "use the windowed per-beat refilter instead of the rolling filtfilt cache (A/B baseline)")
	directFIR := flag.Bool("direct-fir", false, "pin the streaming ECG band-pass to the direct recurrence instead of overlap-save (MCU profile; A/B baseline)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("icgstream: -cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("icgstream: -cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				log.Printf("icgstream: -memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects so the profile shows retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("icgstream: -memprofile: %v", err)
			}
		}()
	}

	if *replayDir != "" {
		if err := replayMain(*replayDir, *prefixOf); err != nil {
			log.Fatalf("icgstream: %v", err)
		}
		return
	}

	dev, err := core.NewDevice(core.DefaultConfig())
	if err != nil {
		log.Fatalf("icgstream: %v", err)
	}

	var wlog *wal.Log
	if *walDir != "" {
		wlog, err = wal.Open(*walDir, wal.Config{})
		if err != nil {
			log.Fatalf("icgstream: %v", err)
		}
	}
	if *killAfter > 0 {
		go func() {
			time.Sleep(time.Duration(*killAfter * float64(time.Second)))
			// SIGKILL, not a graceful shutdown: no flush, no final
			// snapshots, no lifecycle events — the WAL's recovery laws are
			// exactly what makes the survivors usable.
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
		}()
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("icgstream: %v", err)
	}
	defer ln.Close()
	fmt.Printf("monitor listening on %s\n", ln.Addr())

	var wg sync.WaitGroup
	wg.Add(1)
	// Monitor side.
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("monitor: %v", err)
			return
		}
		defer conn.Close()
		n := 0
		for {
			f, err := radio.ReadFrame(conn)
			if err != nil {
				break // device closed the link
			}
			if f.Type != radio.TypeBeat {
				continue
			}
			beat, err := radio.UnmarshalBeat(f.Payload)
			if err != nil {
				log.Printf("monitor: bad beat: %v", err)
				continue
			}
			n++
			fmt.Printf("beat %2d  t=%6.2fs  Z0=%7.2f Ohm  PEP=%5.1f ms  LVET=%5.1f ms  HR=%5.1f bpm\n",
				n, float64(beat.TimestampMs)/1000, beat.Z0,
				beat.PEP*1000, beat.LVET*1000, beat.HR)
		}
		fmt.Printf("monitor received %d beats\n", n)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatalf("icgstream: %v", err)
	}

	sub, ok := physio.SubjectByID(*subjectID)
	if !ok {
		log.Fatalf("icgstream: no subject %d", *subjectID)
	}
	link := radio.NewLink(radio.LinkConfig{
		LossProb: *loss, MaxRetries: 3, BitRate: 1e6, Overhead: 14,
	}, sub.Seed)

	if *sessions <= 1 {
		runSingle(dev, &sub, *duration, link, conn, wlog, *legacyRefilter, *directFIR)
	} else {
		health := session.HealthConfig{EvictBelowRate: *evictBelow, EvictAfterS: *evictAfter}
		runFleet(dev, *sessions, *workers, *dead, *duration, health, link, conn, wlog, *legacyRefilter, *directFIR)
	}
	if wlog != nil {
		walSummary(wlog)
		if err := wlog.Close(); err != nil {
			log.Fatalf("icgstream: wal close: %v", err)
		}
	}
	conn.Close()
	wg.Wait()
	fmt.Printf("link: sent=%d delivered=%d dropped=%d retries=%d airtime=%.1f ms (duty %.4f%%)\n",
		link.Sent, link.Delivered, link.Dropped, link.Retries,
		link.AirtimeS*1000, link.DutyCycle(*duration)*100)
}

// runSingle is the classic path, on the serving surface: one session
// subscribed to the typed event stream, each accepted KindBeat spent on
// the radio as it is emitted, the KindSessionClosed tally reported at
// the end. The TCP write can block, so it lives on a consumer
// goroutine behind an event.Chan — the non-blocking Sink contract: the
// session worker never waits on the radio.
func runSingle(dev *core.Device, sub *physio.Subject, duration float64, link *radio.Link, conn net.Conn, wlog *wal.Log, legacyRefilter, directFIR bool) {
	acq, err := dev.Acquire(sub, duration)
	if err != nil {
		log.Fatalf("icgstream: %v", err)
	}
	cfg := session.DefaultConfig()
	cfg.WAL = wlog
	cfg.Stream.LegacyRefilter = legacyRefilter
	cfg.Stream.DirectFIR = directFIR
	eng := session.NewEngine(dev, cfg)
	ch := event.NewChan(1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		seq := byte(0)
		sent := 0
		for e := range ch.C {
			switch e.Kind {
			case event.KindBeat:
				if e.Params.Accepted {
					transmit(link, conn, &seq, e.Params)
					sent++
				}
			case event.KindSessionClosed:
				fmt.Printf("quality gate: %d/%d beats accepted, %d transmitted\n",
					e.Accepted, e.Emitted, sent)
			}
		}
	}()
	s, err := eng.Subscribe(0, ch)
	if err != nil {
		log.Fatalf("icgstream: %v", err)
	}
	chunk := 50 // 200 ms, as the AFE DMA would deliver
	for pos := 0; pos < len(acq.ECG); pos += chunk {
		end := min(pos+chunk, len(acq.ECG))
		if err := s.Push(acq.ECG[pos:end], acq.Z[pos:end]); err != nil {
			log.Fatalf("icgstream: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		log.Fatalf("icgstream: %v", err)
	}
	if err := eng.Close(); err != nil {
		log.Fatalf("icgstream: %v", err)
	}
	close(ch.C) // all events delivered (engine closed); drain and report
	<-done
	if n := ch.Dropped(); n > 0 {
		fmt.Printf("radio consumer lagged: %d events dropped at the sink\n", n)
	}
}

// runFleet multiplexes n simulated streams through the session engine;
// the last dead of them carry dead-contact input. Session 0's beats go
// over the radio link as they are emitted; every other session counts
// toward the aggregate. With health eviction armed the engine cuts the
// dead streams and the run reports the load it shed.
func runFleet(dev *core.Device, n, workers, dead int, duration float64, health session.HealthConfig, link *radio.Link, conn net.Conn, wlog *wal.Log, legacyRefilter, directFIR bool) {
	if dead > n {
		dead = n
	}
	cfg := session.DefaultConfig()
	cfg.Workers = workers
	cfg.Seed = 1
	cfg.Health = health
	cfg.WAL = wlog
	cfg.Stream.LegacyRefilter = legacyRefilter
	cfg.Stream.DirectFIR = directFIR

	var countMu sync.Mutex
	rates := make([]float64, 0, n) // per-session accept rates at close
	var evictions int
	var evictedIDs []uint64
	var evictedAtS float64 // summed eviction signal times
	var shedSamples int64
	// Every session is offered exactly duration seconds of signal, so
	// an evicted session's shed load is what the engine never consumed
	// (offered minus the signal clock at the cut) — computed from the
	// KindEviction event, which is deterministic per input order, so
	// the reported shed does not depend on how far the pusher had run
	// ahead of the worker.
	fs := dev.Config().FS
	perSession := int64(fs * duration)
	eng := session.NewEngine(dev, cfg)

	// Session 0's accepted beats go over the TCP radio link; the write
	// can block, so it runs on a consumer goroutine behind a
	// non-blocking event.Chan (the Sink contract: a slow radio must
	// never stall a session worker — the link's own loss model already
	// prices dropped records).
	radioCh := event.NewChan(1024)
	radioDone := make(chan struct{})
	go func() {
		defer close(radioDone)
		seq := byte(0)
		for e := range radioCh.C {
			transmit(link, conn, &seq, e.Params)
		}
	}()
	var totalBeats, acceptedBeats, offeredSamples, totalHops int64

	// Every pusher synthesizes its input first and then waits on the
	// start barrier, so the wall clock (and the per-hop figure derived
	// from it) measures the serving engine, not the signal simulator.
	startCh := make(chan struct{})
	var ready, push sync.WaitGroup
	for id := 0; id < n; id++ {
		sid := uint64(id)
		// One subscription carries everything the fleet driver needs:
		// beats (tally + radio), evictions (shed accounting) and the
		// final close tally (accept-rate spread of the surviving fleet).
		s, err := eng.Subscribe(sid, event.Func(func(e event.Event) {
			switch e.Kind {
			case event.KindBeat:
				countMu.Lock()
				totalBeats++
				if e.Params.Accepted {
					acceptedBeats++
				}
				countMu.Unlock()
				if sid == 0 && e.Params.Accepted {
					radioCh.Emit(e)
				}
			case event.KindEviction:
				countMu.Lock()
				evictions++
				evictedIDs = append(evictedIDs, e.Session)
				evictedAtS += e.TimeS
				shedSamples += perSession - int64(e.TimeS*fs+0.5)
				countMu.Unlock()
			case event.KindSessionClosed:
				// Evicted sessions are excluded from the accept-rate
				// spread — it describes the surviving fleet.
				if e.Reason == int(session.ReasonClient) && e.Emitted > 0 {
					countMu.Lock()
					rates = append(rates, float64(e.Accepted)/float64(e.Emitted))
					countMu.Unlock()
				}
			}
		}))
		if err != nil {
			log.Fatalf("icgstream: open session %d: %v", id, err)
		}
		push.Add(1)
		ready.Add(1)
		go func(s *session.Session, isDead bool) {
			defer push.Done()
			var ecg, z []float64
			if isDead {
				// The shared lifted-finger model (physio.DeadContact) —
				// identical to what the eviction tests pin.
				ecg, z = physio.DeadContact(s.Seed(), int(dev.Config().FS*duration))
			} else {
				// Each session simulates its own subject, seeded from
				// the engine's deterministic per-session seed.
				sub, _ := physio.SubjectByID(1 + int(s.ID)%5)
				sub.Seed = s.Seed()
				acq, err := dev.Acquire(&sub, duration)
				if err != nil {
					log.Printf("icgstream: session %d acquire: %v", s.ID, err)
					ready.Done()
					return
				}
				ecg, z = acq.ECG, acq.Z
			}
			countMu.Lock()
			offeredSamples += int64(len(ecg))
			countMu.Unlock()
			ready.Done()
			<-startCh
			hops := int64(0)
			defer func() {
				countMu.Lock()
				totalHops += hops
				countMu.Unlock()
			}()
			chunk := 50 // 200 ms, as the AFE DMA would deliver
			for pos := 0; pos < len(ecg); pos += chunk {
				end := pos + chunk
				if end > len(ecg) {
					end = len(ecg)
				}
				if err := s.Push(ecg[pos:end], z[pos:end]); err != nil {
					if err != session.ErrSessionEvicted {
						log.Printf("icgstream: session %d push: %v", s.ID, err)
					}
					// Evicted: the close event accounts the shed load.
					return
				}
				hops++
			}
			// Close reports an eviction even when it overtook the flush;
			// either way the session's KindSessionClosed event above
			// carries the final tally, reason-tagged.
			if err := s.Close(); err != nil && err != session.ErrSessionEvicted {
				log.Printf("icgstream: session %d close: %v", s.ID, err)
			}
		}(s, id >= n-dead)
	}
	ready.Wait()
	start := time.Now()
	close(startCh)
	push.Wait()
	// With the WAL armed, evicted sessions come back through the durable
	// re-admit path: each Reopen rehydrates the session from its newest
	// snapshot (clocks and governor continue; a quarantine-poisoned gate
	// re-locks cold) and logs a KindReadmit event — the same path a
	// post-crash restore takes, exercised here end-to-end.
	readmits := 0
	if wlog != nil {
		countMu.Lock()
		ids := append([]uint64(nil), evictedIDs...)
		countMu.Unlock()
		for _, id := range ids {
			s, err := eng.Reopen(id, event.Discard, session.ReopenOptions{})
			if err != nil {
				log.Printf("icgstream: reopen session %d: %v", id, err)
				continue
			}
			readmits++
			if err := s.Close(); err != nil && err != session.ErrSessionEvicted {
				log.Printf("icgstream: session %d close after re-admit: %v", id, err)
			}
		}
	}
	if err := eng.Close(); err != nil {
		log.Fatalf("icgstream: engine close: %v", err)
	}
	close(radioCh.C) // all events delivered (engine closed)
	<-radioDone
	elapsed := time.Since(start)
	engine := "rolling-cache refilter"
	if legacyRefilter {
		engine = "legacy windowed refilter"
	}
	if directFIR {
		engine += ", direct FIR"
	} else {
		engine += ", overlap-save FIR"
	}
	fmt.Printf("fleet: %d sessions x %.0f s processed in %.2f s wall (%.0fx realtime), %d beats (%.0f beats/s)\n",
		n, duration, elapsed.Seconds(),
		float64(n)*duration/elapsed.Seconds(),
		totalBeats, float64(totalBeats)/elapsed.Seconds())
	if totalHops > 0 {
		// Inputs are synthesized before the clock starts, so this is the
		// serving engine's cost per 200 ms hop — the A/B figure for
		// -legacy-refilter.
		fmt.Printf("fleet engine: %s, %d hops, %.0f ns/hop\n",
			engine, totalHops, float64(elapsed.Nanoseconds())/float64(totalHops))
	}
	if totalBeats > 0 {
		lo, hi := 1.0, 0.0
		sum := 0.0
		for _, r := range rates {
			if r < lo {
				lo = r
			}
			if r > hi {
				hi = r
			}
			sum += r
		}
		mean := 0.0
		if len(rates) > 0 {
			mean = sum / float64(len(rates))
		}
		fmt.Printf("fleet gate: %d/%d beats accepted (%.0f%%); per-session accept rate min %.0f%% mean %.0f%% max %.0f%%\n",
			acceptedBeats, totalBeats, 100*float64(acceptedBeats)/float64(totalBeats),
			lo*100, mean*100, hi*100)
	}
	if dead > 0 || health.Enabled() {
		meanCut := 0.0
		if evictions > 0 {
			meanCut = evictedAtS / float64(evictions)
		}
		fmt.Printf("fleet health: %d dead-contact streams injected, %d evicted (mean cut at %.1f s); shed %d of %d offered samples (%.0f%%)\n",
			dead, evictions, meanCut,
			shedSamples, offeredSamples, 100*float64(shedSamples)/float64(max(offeredSamples, 1)))
		if wlog != nil {
			fmt.Printf("fleet readmit: %d of %d evicted sessions re-admitted through the WAL restore path\n",
				readmits, evictions)
		}
	}
}

// walSummary reports what the run left on the log: per-session
// retained-byte spread, how long a full replay of the retained tail
// takes (the cost a restarting process pays before it is caught up),
// and the re-admit count the replay observed.
func walSummary(w *wal.Log) {
	if err := w.Sync(); err != nil {
		log.Printf("icgstream: wal sync: %v", err)
	}
	start := time.Now()
	events, readmits := 0, 0
	if err := w.ReplayAll(func(e event.Event) {
		events++
		if e.Kind == event.KindReadmit {
			readmits++
		}
	}); err != nil {
		log.Printf("icgstream: wal replay: %v", err)
		return
	}
	lag := time.Since(start)
	st := w.Stats()
	var minB, maxB, sumB int64
	minB = -1
	for _, s := range st.Sessions {
		if minB < 0 || s.Bytes < minB {
			minB = s.Bytes
		}
		if s.Bytes > maxB {
			maxB = s.Bytes
		}
		sumB += s.Bytes
	}
	if minB < 0 {
		minB = 0
	}
	meanB := sumB / int64(max(len(st.Sessions), 1))
	fmt.Printf("wal: %d sessions, %d segments, %d bytes retained (per-session bytes min %d mean %d max %d)\n",
		len(st.Sessions), st.Segments, st.RetainedBytes, minB, meanB, maxB)
	fmt.Printf("wal: replayed %d events in %.1f ms (%d re-admits); %d appends dropped\n",
		events, lag.Seconds()*1000, readmits, st.Dropped)
}

// replayMain is the -replay mode: open an existing WAL directory,
// replay its retained events, print the recovery summary, and — with
// -prefix-of — verify the recovery prefix law against a reference
// directory: every session's replayed event stream here must be a byte
// prefix of the same session's stream there. That is the contract a
// killed run's log holds against an uninterrupted run over the same
// input, and the CI crash-restart step fails the build if it breaks.
func replayMain(dir, refDir string) error {
	perSession, stats, lag, err := replayDirBytes(dir)
	if err != nil {
		return err
	}
	fmt.Printf("wal %s: %d sessions, %d segments, %d bytes retained; recovered %d records (%d bytes truncated)\n",
		dir, len(stats.Sessions), stats.Segments, stats.RetainedBytes, stats.Recovered, stats.TruncatedBytes)
	events := 0
	for _, b := range perSession {
		events += len(b) / wal.EventSize
	}
	fmt.Printf("wal %s: replayed %d events in %.1f ms\n", dir, events, lag.Seconds()*1000)
	if refDir == "" {
		return nil
	}
	refBytes, _, _, err := replayDirBytes(refDir)
	if err != nil {
		return err
	}
	for id, b := range perSession {
		if !bytes.HasPrefix(refBytes[id], b) {
			return fmt.Errorf("prefix law violated: session %d in %s is not an event prefix of %s", id, dir, refDir)
		}
	}
	fmt.Printf("prefix law holds: every session in %s is an event prefix of %s\n", dir, refDir)
	return nil
}

// replayDirBytes opens a WAL directory and returns each session's
// replayed event stream in canonical encoding, with the log's stats
// and the wall time the replay took.
func replayDirBytes(dir string) (map[uint64][]byte, wal.Stats, time.Duration, error) {
	w, err := wal.Open(dir, wal.Config{})
	if err != nil {
		return nil, wal.Stats{}, 0, err
	}
	defer w.Close()
	perSession := make(map[uint64][]byte)
	start := time.Now()
	if err := w.ReplayAll(func(e event.Event) {
		perSession[e.Session] = wal.EncodeEvent(perSession[e.Session], &e)
	}); err != nil {
		return nil, wal.Stats{}, 0, err
	}
	return perSession, w.Stats(), time.Since(start), nil
}

func transmit(link *radio.Link, conn net.Conn, seq *byte, b hemo.BeatParams) {
	rec := radio.BeatRecord{
		TimestampMs: uint32(b.TimeS * 1000),
		Z0:          b.Z0, LVET: b.LVET, PEP: b.PEP, HR: b.HR,
	}
	f := &radio.Frame{Type: radio.TypeBeat, Seq: *seq, Payload: rec.Marshal()}
	*seq++
	if !link.Send(f) {
		return // lost after retries: the beat is dropped
	}
	if err := radio.WriteFrame(conn, f); err != nil {
		log.Fatalf("icgstream: %v", err)
	}
}
