// Command icgstream demonstrates the wireless path of the system: the
// device processes a touch recording beat by beat and streams the
// resulting records (Z0, LVET, PEP, HR — exactly the parameter set of
// Section V) over a TCP connection standing in for the BLE link; the
// monitor side decodes and prints them.
//
// Usage:
//
//	icgstream [-subject 1] [-duration 30] [-loss 0.02]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/hw/radio"
	"repro/internal/physio"
)

func main() {
	subjectID := flag.Int("subject", 1, "subject ID (1-5)")
	duration := flag.Float64("duration", 30, "recording duration (s)")
	loss := flag.Float64("loss", 0.02, "simulated radio loss probability")
	flag.Parse()

	sub, ok := physio.SubjectByID(*subjectID)
	if !ok {
		log.Fatalf("icgstream: no subject %d", *subjectID)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("icgstream: %v", err)
	}
	defer ln.Close()
	fmt.Printf("monitor listening on %s\n", ln.Addr())

	var wg sync.WaitGroup
	wg.Add(1)
	// Monitor side.
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("monitor: %v", err)
			return
		}
		defer conn.Close()
		n := 0
		for {
			f, err := radio.ReadFrame(conn)
			if err != nil {
				break // device closed the link
			}
			if f.Type != radio.TypeBeat {
				continue
			}
			beat, err := radio.UnmarshalBeat(f.Payload)
			if err != nil {
				log.Printf("monitor: bad beat: %v", err)
				continue
			}
			n++
			fmt.Printf("beat %2d  t=%6.2fs  Z0=%7.2f Ohm  PEP=%5.1f ms  LVET=%5.1f ms  HR=%5.1f bpm\n",
				n, float64(beat.TimestampMs)/1000, beat.Z0,
				beat.PEP*1000, beat.LVET*1000, beat.HR)
		}
		fmt.Printf("monitor received %d beats\n", n)
	}()

	// Device side: acquire, process, transmit.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatalf("icgstream: %v", err)
	}
	dev, err := core.NewDevice(core.DefaultConfig())
	if err != nil {
		log.Fatalf("icgstream: %v", err)
	}
	_, out, err := dev.Run(&sub, *duration)
	if err != nil {
		log.Fatalf("icgstream: %v", err)
	}
	link := radio.NewLink(radio.LinkConfig{
		LossProb: *loss, MaxRetries: 3, BitRate: 1e6, Overhead: 14,
	}, sub.Seed)
	seq := byte(0)
	for _, b := range out.Beats {
		rec := radio.BeatRecord{
			TimestampMs: uint32(b.TimeS * 1000),
			Z0:          b.Z0, LVET: b.LVET, PEP: b.PEP, HR: b.HR,
		}
		f := &radio.Frame{Type: radio.TypeBeat, Seq: seq, Payload: rec.Marshal()}
		seq++
		if !link.Send(f) {
			continue // lost after retries: the beat is dropped
		}
		if err := radio.WriteFrame(conn, f); err != nil {
			log.Fatalf("icgstream: %v", err)
		}
	}
	conn.Close()
	wg.Wait()
	fmt.Printf("link: sent=%d delivered=%d dropped=%d retries=%d airtime=%.1f ms (duty %.4f%%)\n",
		link.Sent, link.Delivered, link.Dropped, link.Retries,
		link.AirtimeS*1000, link.DutyCycle(*duration)*100)
}
