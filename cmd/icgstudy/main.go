// Command icgstudy reproduces the full evaluation of the paper: it runs
// the 5-subject protocol and prints Tables II-IV, the data series behind
// Figs 6-9, and the aggregate claims of the conclusions section.
//
// Usage:
//
//	icgstudy [-duration 30] [-csv fig6|fig7|fig8|fig9|tables]
//
// Without -csv it prints every artifact as formatted text; with -csv it
// prints one machine-readable series to stdout.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/study"
)

func main() {
	duration := flag.Float64("duration", 30, "recording duration per condition (s)")
	csv := flag.String("csv", "", "emit one series as CSV: fig6|fig7|fig8|fig9|tables")
	flag.Parse()

	cfg := study.DefaultConfig()
	cfg.Duration = *duration
	res, err := study.Run(cfg)
	if err != nil {
		log.Fatalf("icgstudy: %v", err)
	}

	if *csv != "" {
		out := res.CSV(*csv)
		if out == "" {
			log.Fatalf("icgstudy: unknown figure %q", *csv)
		}
		fmt.Print(out)
		os.Exit(0)
	}

	fmt.Println("=== Touch-based ICG/ECG study (Sopic et al., DATE 2016) ===")
	fmt.Println()
	for pos := 1; pos <= 3; pos++ {
		fmt.Println(res.CorrelationTable(pos))
	}
	fmt.Println(res.Fig6Table())
	fmt.Println(res.Fig7Table())
	fmt.Println(res.Fig8Table())
	fmt.Println(res.Fig9Table())
	fmt.Println("=== Aggregate claims ===")
	fmt.Println(res.ClaimsSummary())
}
