package touchicg_test

import (
	"fmt"
	"log"

	touchicg "repro"
)

// The compiled twin of the package doc's batch quick start (and of
// examples/quickstart): if the facade drifts, this stops building and
// CI fails, instead of the doc comment rotting. No Output comment —
// the beat numbers are implementation-pinned, not doc-pinned.
func Example() {
	sub, ok := touchicg.SubjectByID(1)
	if !ok {
		log.Fatal("subject 1 missing")
	}
	dev, err := touchicg.NewDevice(touchicg.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	_, out, err := dev.Run(&sub, 30)
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range out.Beats {
		fmt.Printf("HR %.0f bpm  PEP %.0f ms  LVET %.0f ms\n",
			b.HR, b.PEP*1000, b.LVET*1000)
	}
}

// The compiled twin of the package doc's streaming quick start: one
// session subscribed to the unified typed event stream — beats, health
// transitions, mode changes and the final session-closed through one
// sink.
func ExampleEngine_Subscribe() {
	sub, _ := touchicg.SubjectByID(1)
	dev, err := touchicg.NewDevice(touchicg.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	acq, err := dev.Acquire(&sub, 10)
	if err != nil {
		log.Fatal(err)
	}
	eng := touchicg.NewEngine(dev, touchicg.DefaultEngineConfig())
	sess, err := eng.Subscribe(1, touchicg.EventFunc(func(e touchicg.Event) {
		switch e.Kind {
		case touchicg.KindBeat:
			fmt.Printf("beat @ %.2fs  HR %.0f bpm  accepted=%v\n",
				e.TimeS, e.Params.HR, e.Params.Accepted)
		case touchicg.KindSessionClosed:
			fmt.Printf("closed: %d/%d beats accepted\n", e.Accepted, e.Emitted)
		}
	}))
	if err != nil {
		log.Fatal(err)
	}
	for pos := 0; pos < len(acq.ECG); pos += 50 {
		end := min(pos+50, len(acq.ECG))
		if err := sess.Push(acq.ECG[pos:end], acq.Z[pos:end]); err != nil {
			log.Fatal(err)
		}
	}
	if err := sess.Close(); err != nil {
		log.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}
}
