// Fluid monitor: the CHF early-warning use case that motivates the paper.
// Congestive heart failure decompensation is preceded by thoracic fluid
// accumulation, which lowers the base impedance Z0 and raises the
// thoracic fluid content TFC = 1000/Z0. The example simulates two weeks
// of daily spot checks during which the subject's thoracic impedance
// drifts down 1.5% per day, runs each measurement through the device, and
// raises an alert when the TFC trend crosses the decompensation
// threshold.
package main

import (
	"fmt"
	"log"

	touchicg "repro"
	"repro/internal/dsp"
	"repro/internal/hemo"
)

func main() {
	base, ok := touchicg.SubjectByID(3)
	if !ok {
		log.Fatal("fluidmonitor: subject missing")
	}
	dev, err := touchicg.NewDevice(touchicg.DefaultConfig())
	if err != nil {
		log.Fatalf("fluidmonitor: %v", err)
	}

	days := 14
	decline := 0.985 // thoracic resistance multiplier per day
	var tfcs, zs []float64

	fmt.Println("day   Z0(Ohm)   TFC(1/kOhm)   trend(TFC/day)")
	for day := 0; day < days; day++ {
		sub := base
		// Fluid accumulation: thoracic (and to a lesser degree arm)
		// resistances fall as extracellular fluid builds up.
		f := pow(decline, day)
		sub.ThoraxR0 *= f
		sub.ThoraxRInf *= f
		sub.ArmR0 *= 1 - (1-f)*0.4
		sub.ArmRInf *= 1 - (1-f)*0.4
		sub.Seed = base.Seed + int64(day) // fresh noise each day

		_, out, err := dev.Run(&sub, 30)
		if err != nil {
			log.Fatalf("fluidmonitor day %d: %v", day, err)
		}
		// Track the calibrated thoracic-equivalent TFC of the session.
		tfc := out.Summary.MeanTFC
		if tfc == 0 {
			tfc = hemo.TFC(out.Z0)
		}
		tfcs = append(tfcs, tfc)
		zs = append(zs, out.Z0)

		trend := 0.0
		if len(tfcs) >= 4 {
			line, ok := dsp.FitLine(dsp.Linspace(0, float64(len(tfcs)-1), len(tfcs)), tfcs)
			if ok {
				trend = line.Slope
			}
		}
		status := ""
		if trend > 0.15 && len(tfcs) >= 6 {
			status = "  << ALERT: sustained fluid accumulation, notify physician"
		}
		fmt.Printf("%3d %9.2f %13.4f %14.5f%s\n", day, out.Z0, tfc, trend, status)
	}

	drop := (zs[0] - zs[len(zs)-1]) / zs[0] * 100
	fmt.Printf("\nZ0 declined %.1f%% over %d days; TFC rose from %.4f to %.4f\n",
		drop, days, tfcs[0], tfcs[len(tfcs)-1])
}

func pow(b float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= b
	}
	return out
}
