// Gateway: the network ingest path end-to-end — a TCP gateway server
// (internal/gateway) hosting sharded session engines, and a client that
// multiplexes two device streams over one connection using the
// radio-framed chunk protocol (lossless XOR-delta sample encoding),
// subscribing to each session's typed event stream coming back.
package main

import (
	"fmt"
	"log"
	"net"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/physio"
	"repro/internal/session"
)

func main() {
	dev, err := core.NewDevice(core.DefaultConfig())
	if err != nil {
		log.Fatalf("gateway: %v", err)
	}

	// Server side: two engine shards behind one TCP listener.
	g := gateway.New(dev, gateway.Config{
		Shards:  2,
		Session: session.Config{Workers: 2, MaxPending: 32},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("gateway: %v", err)
	}
	go g.Serve(ln)

	// Client side: one connection, two sessions multiplexed over it.
	c, err := gateway.Dial(ln.Addr().String(), 256)
	if err != nil {
		log.Fatalf("gateway: %v", err)
	}

	// Consume the merged event stream as it arrives.
	done := make(chan struct{})
	go func() {
		defer close(done)
		beats := map[uint64]int{}
		for e := range c.Events() {
			switch e.Kind {
			case event.KindBeat:
				beats[e.Session]++
				if e.Params.Accepted && beats[e.Session]%5 == 0 {
					fmt.Printf("session %d  beat %2d  t=%5.2fs  HR=%5.1f bpm  PEP=%5.1f ms  LVET=%5.1f ms\n",
						e.Session, beats[e.Session], e.Params.TimeS,
						e.Params.HR, e.Params.PEP*1000, e.Params.LVET*1000)
				}
			case event.KindSessionClosed:
				fmt.Printf("session %d closed: %d/%d beats accepted\n",
					e.Session, e.Accepted, e.Emitted)
			}
		}
	}()

	// Stream two subjects' recordings, 50-sample (200 ms) pushes — the
	// cadence an AFE DMA would deliver.
	for i, sid := range []int{2, 4} {
		sub, _ := physio.SubjectByID(sid)
		acq, err := dev.Acquire(&sub, 20)
		if err != nil {
			log.Fatalf("gateway: %v", err)
		}
		cs, err := c.Open(uint16(i+1), uint64(100+i), true)
		if err != nil {
			log.Fatalf("gateway: %v", err)
		}
		for pos := 0; pos < len(acq.ECG); pos += 50 {
			end := min(pos+50, len(acq.ECG))
			if err := cs.Push(acq.ECG[pos:end], acq.Z[pos:end]); err != nil {
				log.Fatalf("gateway: %v", err)
			}
		}
		if err := cs.Close(); err != nil {
			log.Fatalf("gateway: %v", err)
		}
	}
	c.Close()
	<-done

	st := g.Stats()
	if err := g.Close(); err != nil {
		log.Fatalf("gateway: %v", err)
	}
	fmt.Printf("gateway served %d chunk frames, %d sample pairs, %d events (%d dropped)\n",
		st.FramesIn, st.SamplesIn, st.EventsOut, st.EventsDropped)
}
