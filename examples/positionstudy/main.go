// Position study: reproduce the paper's susceptibility analysis for one
// subject — correlation of the device signal against the traditional
// thoracic setup in the three arm positions, plus the displacement
// relative errors e21/e23/e31 across the four injection frequencies.
package main

import (
	"fmt"
	"log"

	touchicg "repro"
	"repro/internal/bioimp"
	"repro/internal/dsp"
	"repro/internal/physio"
)

func main() {
	sub, ok := touchicg.SubjectByID(5) // the subject with the weakest position 3
	if !ok {
		log.Fatal("positionstudy: subject missing")
	}
	gen := physio.DefaultGenConfig()
	rec := sub.Generate(gen)
	refIns := bioimp.TraditionalInstrument()
	devIns := bioimp.TouchInstrument()

	fmt.Printf("subject %s, 30 s per condition\n\n", sub.Name)

	// Correlations at 50 kHz (the hemodynamic frequency).
	ref := bioimp.MeasureReference(&sub, rec, refIns, 50e3)
	fmt.Println("correlation vs thoracic reference at 50 kHz:")
	for pi, pos := range bioimp.Positions() {
		dev := bioimp.MeasureDevice(&sub, rec, devIns, 50e3, pos)
		r := dsp.Pearson(ref.Z, dev.Z)
		fmt.Printf("  %v: r = %.4f (paper: %.4f)\n", pos, r, sub.PosCorrTarget[pi])
	}

	// Mean impedance per position and frequency, and the relative errors.
	fmt.Println("\nmean device Z0 (Ohm) and displacement errors:")
	fmt.Printf("%10s %10s %10s %10s %8s %8s %8s\n",
		"freq", "pos1", "pos2", "pos3", "e21%", "e23%", "e31%")
	for _, f := range touchicg.StudyFrequencies() {
		var m [3]float64
		for pi, pos := range bioimp.Positions() {
			m[pi] = bioimp.MeasureDevice(&sub, rec, devIns, f, pos).MeanZ()
		}
		e21 := (m[1] - m[0]) / m[1] * 100
		e23 := (m[1] - m[2]) / m[1] * 100
		e31 := (m[2] - m[0]) / m[2] * 100
		fmt.Printf("%7.0fkHz %10.2f %10.2f %10.2f %8.2f %8.2f %8.2f\n",
			f/1000, m[0], m[1], m[2], e21, e23, e31)
	}
	fmt.Println("\nexpected shape: e21 largest, e31 smallest, all < 20% (paper Fig 8)")
}
