// Power budget: explore the battery-life trade-offs of the device — the
// paper's 106-hour headline number, how it moves with MCU and radio duty,
// what the adaptive PMU policy buys at low battery or bad skin contact,
// and how the governor's duty-cycle decisions surface as typed KindMode
// events on the streaming engine's unified event stream.
package main

import (
	"fmt"
	"log"

	touchicg "repro"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/hw/power"
)

func main() {
	sub, _ := touchicg.SubjectByID(2)
	dev, err := touchicg.NewDevice(touchicg.DefaultConfig())
	if err != nil {
		log.Fatalf("powerbudget: %v", err)
	}
	_, out, err := dev.Run(&sub, 30)
	if err != nil {
		log.Fatalf("powerbudget: %v", err)
	}
	duty := dev.DutyCycle(out, 30)
	bat := power.DeviceBattery()

	fmt.Printf("measured pipeline duty cycle: %.1f%% (paper assumes worst case 50%%)\n\n", duty*100)

	fmt.Println("battery life vs (MCU duty, radio duty):")
	fmt.Printf("%10s %10s %12s\n", "mcu duty", "radio duty", "hours")
	for _, md := range []float64{0.4, 0.5, duty} {
		for _, rd := range []float64{0.001, 0.01} {
			b := power.NewBudget().
				Set(power.ECGChip, 1).
				Set(power.ICGChip, 1).
				Set(power.MCU, md).
				Set(power.Radio, rd)
			fmt.Printf("%9.1f%% %9.1f%% %12.1f\n",
				md*100, rd*100, bat.LifetimeHours(b.AverageCurrentMA()))
		}
	}

	fmt.Println("\nadaptive PMU decisions (yield + quality-gate accept rate):")
	pmu := core.DefaultPMU()
	cases := []struct {
		batteryPct, yield, accept float64
		label                     string
	}{
		{90, 0.95, out.AcceptRate, "fresh battery, this recording"},
		{90, 0.95, 0.95, "fresh battery, good contact"},
		{90, 0.30, 0.95, "fresh battery, poor contact (yield)"},
		{90, 0.95, 0.30, "fresh battery, artifact-ridden (gate)"},
		{25, 0.95, 0.95, "low battery"},
		{8, 0.95, 0.95, "critical battery"},
	}
	for _, c := range cases {
		mode := pmu.DecideGated(c.batteryPct, c.yield, c.accept)
		fmt.Printf("  %-38s -> %-12s (%.0f h remaining at this rate)\n",
			c.label, mode, core.LifetimeHours(mode, duty)*c.batteryPct/100)
	}

	// Hysteresis: the stateless policy bounces on a flapping contact —
	// every marginal 10 s window flips the duty cycle, and every flip
	// costs radio/MCU mode-switch overhead. The governor smooths the
	// accept rate and holds each mode for a minimum dwell, so the same
	// trace produces at most one transition per sustained episode.
	fmt.Println("\nflapping contact (accept rate bounces 0.9/0.2 every 10 s window):")
	gov := pmu.NewGovernor()
	statelessFlips, governorFlips := 0, 0
	prev := core.ModeContinuous
	prevGov := core.ModeContinuous
	for i := 0; i < 30; i++ {
		rate := 0.9
		if i%2 == 1 {
			rate = 0.2
		}
		if m := pmu.DecideGated(90, 0.95, rate); m != prev {
			statelessFlips++
			prev = m
		}
		if m := gov.Decide(float64(i)*10, 90, 0.95, rate); m != prevGov {
			governorFlips++
			prevGov = m
		}
	}
	fmt.Printf("  stateless DecideGated: %2d mode flips in 300 s\n", statelessFlips)
	fmt.Printf("  hysteresis governor:   %2d mode flips (EWMA %.2f, enter<%.2f exit>=%.2f, dwell %.0f s)\n",
		governorFlips, gov.AcceptEWMA(), pmu.MinAcceptRate,
		pmu.ExitAcceptRate, pmu.MinDwellS)

	// The serving path: the same governor armed on a streamer, its
	// decisions delivered as typed KindMode events on the unified event
	// stream — here on a recording whose impedance contact drops out
	// mid-session (the gate rejects the dropout beats, the accept EWMA
	// collapses, the governor cuts the duty cycle).
	fmt.Println("\nmode events from a streamed recording with a mid-session contact dropout:")
	acq, err := dev.Acquire(&sub, 26)
	if err != nil {
		log.Fatalf("powerbudget: %v", err)
	}
	z := append([]float64(nil), acq.Z...)
	lo := int(10 * acq.FS)
	for i := lo; i < int(17*acq.FS); i++ {
		z[i] = z[lo-1] // finger off the ICG electrodes for 7 s
	}
	streamPMU := pmu
	streamPMU.MinDwellS = 4 // demo-scale dwell; serving default is 20 s
	streamPMU.RateBeta = 0.4
	st := dev.NewStreamer(core.DefaultStreamConfig())
	st.ArmGovernor(streamPMU)
	st.Emit(event.Func(func(e event.Event) {
		if e.Kind == event.KindMode {
			fmt.Printf("  @ %5.2fs beat %2d: %v -> %v (accept EWMA %.2f)\n",
				e.TimeS, e.Beat, core.PowerMode(e.PrevMode), core.PowerMode(e.Mode), e.AcceptEWMA)
		}
	}), 0)
	for pos := 0; pos < len(acq.ECG); pos += 50 {
		end := min(pos+50, len(acq.ECG))
		st.Push(acq.ECG[pos:end], z[pos:end])
	}
	st.Flush()
}
