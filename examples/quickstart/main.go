// Quickstart: acquire a 30-second touch measurement from a synthetic
// subject and print the beat-to-beat hemodynamic parameters — the
// shortest possible end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	touchicg "repro"
)

func main() {
	sub, ok := touchicg.SubjectByID(1)
	if !ok {
		log.Fatal("quickstart: subject 1 missing")
	}
	dev, err := touchicg.NewDevice(touchicg.DefaultConfig())
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}
	_, out, err := dev.Run(&sub, 30)
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	fmt.Printf("subject %s: %d beats analyzed (yield %.0f%%, gate accepted %.0f%%), Z0 = %.1f Ohm\n\n",
		sub.Name, len(out.Beats), out.Yield*100, out.AcceptRate*100, out.Z0)
	fmt.Printf("%6s %8s %9s %10s %9s %9s %6s\n", "t(s)", "HR(bpm)", "PEP(ms)", "LVET(ms)", "SV(mL)", "CO(L/m)", "gate")
	for _, b := range out.Beats {
		mark := "ok"
		if !b.Accepted {
			mark = "rej" // per-beat quality gate: excluded from the means
		}
		fmt.Printf("%6.2f %8.1f %9.1f %10.1f %9.1f %9.2f %6s\n",
			b.TimeS, b.HR, b.PEP*1000, b.LVET*1000, b.SVKub, b.CO, mark)
	}
	s := out.Summary
	fmt.Printf("\ngated means: HR %.1f bpm, PEP %.1f ms, LVET %.1f ms, SV %.1f mL, CO %.2f L/min\n",
		s.HR.Mean, s.PEP.Mean*1000, s.LVET.Mean*1000, s.SVKub.Mean, s.COKub.Mean)
}
