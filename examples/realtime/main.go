// Realtime: the firmware-style operating mode — samples arrive in small
// chunks (as the AFE DMA would deliver them), the incremental streaming
// engine emits each beat as soon as it is complete, the quality monitor
// grades the session, and the beats are scheduled onto BLE connection
// events. The chunks are pushed through the multi-session serving layer
// (session.Engine) the production path uses, here with a single session
// subscribed to the unified typed event stream — beats, health
// transitions, PMU mode changes and the session close all arrive
// through one sink, in order. The RAM budget printed at the end is why
// this mode is the one that fits the STM32L151's 48 KB.
package main

import (
	"fmt"
	"log"

	touchicg "repro"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/hw/mcu"
	"repro/internal/hw/radio"
	"repro/internal/quality"
	"repro/internal/session"
	"repro/internal/wal"
)

func main() {
	sub, _ := touchicg.SubjectByID(2)
	dev, err := touchicg.NewDevice(touchicg.DefaultConfig())
	if err != nil {
		log.Fatalf("realtime: %v", err)
	}
	acq, err := dev.Acquire(&sub, 30)
	if err != nil {
		log.Fatalf("realtime: %v", err)
	}

	// Health eviction armed with the serving defaults: a live recording
	// sails through, but the same engine would cut a dead-contact stream
	// (lifted finger) after ~30 s below the accept-rate floor. The PMU
	// policy arms a per-session governor, so quality-driven duty-cycle
	// decisions arrive on the same event stream as the beats.
	pmu := core.DefaultPMU()
	scfg := session.DefaultConfig()
	scfg.Health = session.HealthConfig{EvictBelowRate: 0.2}
	scfg.PMU = &pmu
	// Crash-safe durability: every event the session emits is appended
	// to a write-ahead log before delivery (here on an in-memory FS; a
	// real deployment passes a directory on disk — see cmd/icgstream
	// -wal-dir). The log is what lets a dashboard attach mid-session
	// with full history (SubscribeFrom below) and a crashed process
	// restore its sessions (Engine.Reopen).
	wlog, err := wal.Open("realtime-wal", wal.Config{FS: wal.NewMemFS()})
	if err != nil {
		log.Fatalf("realtime: %v", err)
	}
	scfg.WAL = wlog
	eng := session.NewEngine(dev, scfg)
	var beatTimes []float64
	count := 0
	sess, err := eng.Subscribe(1, event.Func(func(e event.Event) {
		switch e.Kind {
		case event.KindBeat:
			count++
			beatTimes = append(beatTimes, e.Params.TimeS)
			mark := ""
			if !e.Params.Accepted {
				mark = "  [gate: rejected]"
			}
			fmt.Printf("beat %2d @ %5.2fs  HR %5.1f  PEP %5.1f ms  LVET %5.1f ms  q %.2f%s\n",
				count, e.Params.TimeS, e.Params.HR, e.Params.PEP*1000,
				e.Params.LVET*1000, e.Params.Quality, mark)
		case event.KindHealth:
			dir := "recovered above"
			if e.Below {
				dir = "dropped below"
			}
			fmt.Printf("health @ %5.2fs  accept EWMA %.2f %s the %.2f eviction floor\n",
				e.TimeS, e.AcceptEWMA, dir, e.Floor)
		case event.KindMode:
			fmt.Printf("pmu    @ %5.2fs  %v -> %v (accept EWMA %.2f)\n",
				e.TimeS, core.PowerMode(e.PrevMode), core.PowerMode(e.Mode), e.AcceptEWMA)
		case event.KindSessionClosed:
			fmt.Printf("closed @ %5.2fs  %d/%d beats accepted (%v)\n",
				e.TimeS, e.Accepted, e.Emitted, session.CloseReason(e.Reason))
		}
	}))
	if err != nil {
		log.Fatalf("realtime: %v", err)
	}
	// Worst-case beat latency of the incremental engine, straight from
	// the stage lookaheads.
	fmt.Printf("streaming session, worst-case beat latency %.1f s after the closing R\n\n", sess.Latency())

	// Feed 200 ms chunks, as a DMA double buffer would. Halfway through,
	// a dashboard attaches late: SubscribeFrom replays the session's
	// retained WAL tail and splices into the live stream with no gap and
	// no duplicate, so the late subscriber ends up with the same event
	// count as the one attached from the start.
	chunk := 50
	half := (len(acq.ECG) / (2 * chunk)) * chunk
	late := 0
	for pos := 0; pos < len(acq.ECG); pos += chunk {
		if pos == half {
			err := eng.SubscribeFrom(1, event.Func(func(event.Event) { late++ }),
				session.SubscribeOptions{})
			if err != nil {
				log.Fatalf("realtime: %v", err)
			}
		}
		end := pos + chunk
		if end > len(acq.ECG) {
			end = len(acq.ECG)
		}
		if err := sess.Push(acq.ECG[pos:end], acq.Z[pos:end]); err != nil {
			log.Fatalf("realtime: %v", err)
		}
	}
	// Close flushes the stream and delivers the final events (including
	// KindSessionClosed above) before returning.
	if err := sess.Close(); err != nil {
		log.Fatalf("realtime: %v", err)
	}
	// Per-session health verdict: the gate's accept rate over the
	// emitted beats (exactly 1 before any beat — the pinned zero-beats
	// contract) and why the session ended.
	fmt.Printf("\nsession: accept rate %.0f%%, closed (%v), survived the dead-contact eviction policy\n",
		sess.AcceptRate()*100, sess.Reason())
	if err := eng.Close(); err != nil {
		log.Fatalf("realtime: %v", err)
	}
	// The late dashboard saw the whole history: backfilled events plus
	// the live tail, no gap, no duplicate.
	st := wlog.Stats()
	fmt.Printf("wal: late subscriber saw %d events (backfill + live); log retains %d bytes across %d segment(s)\n",
		late, st.RetainedBytes, st.Segments)
	if err := wlog.Close(); err != nil {
		log.Fatalf("realtime: %v", err)
	}

	// Quality assessment over the whole session.
	batch, err := dev.Process(acq)
	if err != nil {
		log.Fatalf("realtime: %v", err)
	}
	rep := quality.Assess(batch.CondECG, batch.ICGTrack, batch.RPeaks, acq.FS)
	fmt.Printf("\nquality: ECG SQI %.2f, ICG SQI %.2f, usable=%v\n", rep.ECG, rep.ICG, rep.Usable())

	// BLE connection-event scheduling for the emitted beats.
	sched := radio.Schedule(beatTimes, radio.DefaultConn())
	fmt.Printf("radio: %d beats over %d connection events, mean notification wait %.0f ms\n",
		sched.Records, sched.EventsUsed, sched.MeanLatency*1000)

	// RAM story: why this mode exists.
	m := mcu.DefaultSTM32L151()
	batchRAM := core.BatchRAM(acq.FS, 30)
	streamRAM := core.StreamingRAM(acq.FS, core.DefaultStreamConfig())
	fmt.Printf("\nRAM: batch %.1f KB (fits 48 KB: %v), streaming %.1f KB (fits: %v)\n",
		float64(batchRAM.Total())/1024, m.FitsRAM(batchRAM.Total()),
		float64(streamRAM.Total())/1024, m.FitsRAM(streamRAM.Total()))
}
