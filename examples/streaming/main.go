// Streaming: the end-to-end wireless path in-process — the device
// processes a touch recording and streams per-beat records through the
// lossy BLE link model over an in-memory pipe; the receiving side decodes
// and aggregates them, as a physician's gateway would.
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	touchicg "repro"
	"repro/internal/dsp"
	"repro/internal/hw/radio"
)

func main() {
	sub, _ := touchicg.SubjectByID(4)
	dev, err := touchicg.NewDevice(touchicg.DefaultConfig())
	if err != nil {
		log.Fatalf("streaming: %v", err)
	}
	_, out, err := dev.Run(&sub, 30)
	if err != nil {
		log.Fatalf("streaming: %v", err)
	}

	devSide, monSide := net.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)

	// Monitor goroutine: decode frames, aggregate the session.
	go func() {
		defer wg.Done()
		var hrs, peps, lvets []float64
		for {
			f, err := radio.ReadFrame(monSide)
			if err != nil {
				break
			}
			beat, err := radio.UnmarshalBeat(f.Payload)
			if err != nil {
				continue
			}
			hrs = append(hrs, beat.HR)
			peps = append(peps, beat.PEP*1000)
			lvets = append(lvets, beat.LVET*1000)
		}
		fmt.Printf("monitor: %d beats received\n", len(hrs))
		fmt.Printf("monitor: HR %.1f bpm, PEP %.1f ms, LVET %.1f ms (session means)\n",
			dsp.Mean(hrs), dsp.Mean(peps), dsp.Mean(lvets))
	}()

	// Device side: frame and send every gate-accepted beat through the
	// lossy link (out.Beats carries every analyzable beat flagged by
	// the per-beat quality gate; rejected beats would waste airtime on
	// artifact numbers).
	link := radio.NewLink(radio.DefaultLink(), sub.Seed)
	seq := byte(0)
	sent := 0
	for _, b := range out.Beats {
		if !b.Accepted {
			continue
		}
		rec := radio.BeatRecord{
			TimestampMs: uint32(b.TimeS * 1000),
			Z0:          b.Z0, LVET: b.LVET, PEP: b.PEP, HR: b.HR,
		}
		f := &radio.Frame{Type: radio.TypeBeat, Seq: seq, Payload: rec.Marshal()}
		seq++
		if !link.Send(f) {
			continue
		}
		if err := radio.WriteFrame(devSide, f); err != nil {
			log.Fatalf("streaming: %v", err)
		}
		sent++
	}
	devSide.Close()
	wg.Wait()
	fmt.Printf("device: %d of %d beats delivered, radio duty %.4f%%\n",
		sent, len(out.Beats), link.DutyCycle(30)*100)
}
