package bioimp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
	"repro/internal/physio"
)

func testSubject() *physio.Subject {
	s, _ := physio.SubjectByID(1)
	return &s
}

func TestColeLimits(t *testing.T) {
	c := Cole{R0: 40, RInf: 20, Tau: 2e-6, Alpha: 0.7}
	if got := c.Magnitude(0); math.Abs(got-40) > 1e-9 {
		t.Errorf("|Z(0)| = %g, want R0", got)
	}
	// At very high frequency the magnitude approaches RInf.
	if got := c.Magnitude(1e12); math.Abs(got-20) > 0.5 {
		t.Errorf("|Z(inf)| = %g, want ~RInf", got)
	}
}

func TestColeMonotoneMagnitude(t *testing.T) {
	c := Cole{R0: 40, RInf: 20, Tau: 2e-6, Alpha: 0.7}
	prev := math.Inf(1)
	for _, f := range dsp.Linspace(100, 1e6, 200) {
		m := c.Magnitude(f)
		if m > prev+1e-9 {
			t.Fatalf("|Z| not monotone at %g Hz", f)
		}
		prev = m
	}
}

func TestColeMonotoneProperty(t *testing.T) {
	// For any valid Cole parameters the magnitude decreases with
	// frequency (this is why the measured 10 kHz peak of Figs 6-7 must
	// come from the instrument chain, not the tissue).
	f := func(r0d, rinf, taud, alphad float64) bool {
		rInf := 5 + math.Abs(rinf)
		r0 := rInf + 1 + math.Abs(r0d)
		tau := 1e-7 + math.Abs(taud)*1e-6
		alpha := 0.3 + math.Mod(math.Abs(alphad), 0.69)
		c := Cole{R0: r0, RInf: rInf, Tau: tau, Alpha: alpha}
		if !c.Valid() {
			return false
		}
		prev := math.Inf(1)
		for _, fr := range []float64{1e2, 1e3, 1e4, 1e5, 1e6} {
			m := c.Magnitude(fr)
			if m > prev+1e-9 {
				return false
			}
			prev = m
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestColeCharacteristicFreq(t *testing.T) {
	c := Cole{R0: 40, RInf: 20, Tau: 2e-6, Alpha: 1}
	fc := c.CharacteristicFreq()
	want := 1 / (2 * math.Pi * 2e-6)
	if math.Abs(fc-want) > 1 {
		t.Errorf("fc = %g, want %g", fc, want)
	}
	// At fc with alpha=1, the reactance magnitude is maximal; the real
	// part is halfway between R0 and RInf.
	z := c.Impedance(fc)
	if math.Abs(real(z)-30) > 0.5 {
		t.Errorf("Re Z(fc) = %g, want ~30", real(z))
	}
	zero := Cole{}
	if zero.CharacteristicFreq() != 0 {
		t.Error("zero Tau should give 0")
	}
}

func TestColeValid(t *testing.T) {
	good := Cole{R0: 40, RInf: 20, Tau: 2e-6, Alpha: 0.7}
	if !good.Valid() {
		t.Error("good parameters rejected")
	}
	for _, bad := range []Cole{
		{R0: 20, RInf: 40, Tau: 2e-6, Alpha: 0.7},
		{R0: 40, RInf: 0, Tau: 2e-6, Alpha: 0.7},
		{R0: 40, RInf: 20, Tau: 0, Alpha: 0.7},
		{R0: 40, RInf: 20, Tau: 2e-6, Alpha: 0},
		{R0: 40, RInf: 20, Tau: 2e-6, Alpha: 1.2},
	} {
		if bad.Valid() {
			t.Errorf("bad parameters accepted: %+v", bad)
		}
	}
}

func TestElectrodeCPEFallsWithFrequency(t *testing.T) {
	e := ElectrodeCPE{K: 9e4, Beta: 0.78}
	lo := cmplx.Abs(e.Impedance(2e3))
	hi := cmplx.Abs(e.Impedance(100e3))
	if lo <= hi {
		t.Errorf("electrode impedance should fall with frequency: %g vs %g", lo, hi)
	}
	if e2 := (ElectrodeCPE{}); e2.Impedance(1e3) != 0 {
		t.Error("zero CPE should be 0")
	}
	// Phase is -Beta*90 degrees.
	z := e.Impedance(1e4)
	phase := math.Atan2(imag(z), real(z))
	if math.Abs(phase+0.78*math.Pi/2) > 1e-9 {
		t.Errorf("CPE phase = %g", phase)
	}
}

func TestInstrumentGainPeaksNear10kHz(t *testing.T) {
	for _, ins := range []Instrument{TraditionalInstrument(), TouchInstrument()} {
		peak := ins.PeakFrequency()
		if peak < 8e3 || peak > 13e3 {
			t.Errorf("%s: gain peak at %g Hz, want ~10 kHz", ins.Name, peak)
		}
		if g := ins.Gain(ins.CalFreq); math.Abs(g-1) > 1e-12 {
			t.Errorf("%s: calibration gain = %g, want 1", ins.Name, g)
		}
		if ins.Gain(0) != 0 {
			t.Errorf("%s: DC gain should be 0", ins.Name)
		}
	}
}

func TestMeasuredZ0ShapeMatchesFig6(t *testing.T) {
	// The defining shape of Figs 6-7: Z0 rises from 2 to 10 kHz, then
	// falls through 50 and 100 kHz — for both setups and all subjects.
	for _, sub := range physio.Subjects() {
		s := sub
		for _, tc := range []struct {
			ins  Instrument
			path Path
		}{
			{TraditionalInstrument(), PathThoracic},
			{TouchInstrument(), PathHandToHand},
		} {
			z2 := MeasuredZ0(&s, tc.ins, tc.path, 2e3)
			z10 := MeasuredZ0(&s, tc.ins, tc.path, 10e3)
			z50 := MeasuredZ0(&s, tc.ins, tc.path, 50e3)
			z100 := MeasuredZ0(&s, tc.ins, tc.path, 100e3)
			if !(z2 < z10 && z10 > z50 && z50 > z100) {
				t.Errorf("%s %s path %d: shape broken: %g %g %g %g",
					s.Name, tc.ins.Name, tc.path, z2, z10, z50, z100)
			}
		}
	}
}

func TestBodyImpedanceHandToHandLarger(t *testing.T) {
	s := testSubject()
	for _, f := range StudyFrequencies() {
		th := cmplx.Abs(BodyImpedance(s, PathThoracic, f))
		hh := cmplx.Abs(BodyImpedance(s, PathHandToHand, f))
		if hh <= th {
			t.Errorf("f=%g: hand-to-hand (%g) should exceed thoracic (%g)", f, hh, th)
		}
	}
}

func TestMeasureReferenceProperties(t *testing.T) {
	s := testSubject()
	rec := s.Generate(physio.DefaultGenConfig())
	m := MeasureReference(s, rec, TraditionalInstrument(), 50e3)
	if len(m.Z) != len(rec.DZ) {
		t.Fatalf("length mismatch")
	}
	// Mean close to the configured base impedance.
	if math.Abs(m.MeanZ()-m.BaseZ) > 0.3 {
		t.Errorf("mean Z = %g, base %g", m.MeanZ(), m.BaseZ)
	}
	// Cardiac ripple present: std well above instrument noise.
	if dsp.Std(m.Z) < 0.05 {
		t.Errorf("no physiological variation in reference Z")
	}
	if m.Path != PathThoracic || m.Subject != s.ID {
		t.Error("metadata wrong")
	}
}

func TestMeasureDeviceCorrelationCalibration(t *testing.T) {
	// The core calibration contract: the measured correlation between
	// the reference and device signals approximates the paper's Tables
	// II-IV targets.
	for _, id := range []int{1, 3, 5} {
		sub, _ := physio.SubjectByID(id)
		s := &sub
		rec := s.Generate(physio.DefaultGenConfig())
		ref := MeasureReference(s, rec, TraditionalInstrument(), 50e3)
		for pi, pos := range Positions() {
			dev := MeasureDevice(s, rec, TouchInstrument(), 50e3, pos)
			r := dsp.Pearson(ref.Z, dev.Z)
			target := s.PosCorrTarget[pi]
			// The artifact is narrow-band (0.05-0.9 Hz), so a 30 s
			// sample correlation carries +-0.05-0.08 of sampling
			// variance around the calibration target.
			if math.Abs(r-target) > 0.09 {
				t.Errorf("subject %d %v: r = %.4f, target %.4f", id, pos, r, target)
			}
		}
	}
}

func TestMeasureDeviceMeanShiftOrdering(t *testing.T) {
	// Mean impedance per position must reproduce the Fig 8 structure:
	// e21 largest, e31 smallest, all below 20%.
	for _, sub := range physio.Subjects() {
		s := sub
		rec := s.Generate(physio.DefaultGenConfig())
		means := make([]float64, 3)
		for pi, pos := range Positions() {
			m := MeasureDevice(&s, rec, TouchInstrument(), 50e3, pos)
			means[pi] = m.MeanZ()
		}
		e21 := (means[1] - means[0]) / means[1]
		e23 := (means[1] - means[2]) / means[1]
		e31 := (means[2] - means[0]) / means[2]
		if !(e21 > 0 && e21 < 0.20) {
			t.Errorf("%s: e21 = %g", s.Name, e21)
		}
		if math.Abs(e31) >= math.Abs(e21) {
			t.Errorf("%s: |e31| (%g) should be smaller than |e21| (%g)", s.Name, e31, e21)
		}
		if math.Abs(e23) >= math.Abs(e21) {
			t.Errorf("%s: |e23| (%g) should be below |e21| (%g)", s.Name, e23, e21)
		}
	}
}

func TestMeasureDeviceDeterministic(t *testing.T) {
	s := testSubject()
	rec := s.Generate(physio.DefaultGenConfig())
	a := MeasureDevice(s, rec, TouchInstrument(), 50e3, Position2)
	b := MeasureDevice(s, rec, TouchInstrument(), 50e3, Position2)
	for i := range a.Z {
		if a.Z[i] != b.Z[i] {
			t.Fatal("device measurement nondeterministic")
		}
	}
	c := MeasureDevice(s, rec, TouchInstrument(), 50e3, Position3)
	if dsp.Pearson(a.Z, c.Z) > 0.9999 {
		t.Error("positions should differ")
	}
}

func TestICGFromZRecoversCardiacSignal(t *testing.T) {
	// Differentiating the measured Z recovers an ICG whose C peaks align
	// with the ground-truth C points (low-noise reference measurement).
	s := testSubject()
	cfg := physio.DefaultGenConfig()
	rec := s.Generate(cfg)
	ins := TraditionalInstrument()
	ins.NoiseStd = 0
	m := MeasureReference(s, rec, ins, 50e3)
	icg := ICGFromZ(m.Z, m.FS)
	// Low-pass at 20 Hz as the device firmware does.
	sos, _ := dsp.DesignButterLowPass(4, 20, m.FS)
	icg = sos.FiltFilt(icg)
	hits := 0
	for _, c := range rec.Truth.CPoints {
		lo, hi := c-10, c+11
		peak := dsp.ArgMax(icg, lo, hi)
		if d := peak - c; d >= -5 && d <= 5 {
			hits++
		}
	}
	if frac := float64(hits) / float64(len(rec.Truth.CPoints)); frac < 0.9 {
		t.Errorf("C peaks recovered: %g, want >= 0.9", frac)
	}
}

func TestPositionStrings(t *testing.T) {
	if Position1.String() != "position-1" || Position3.String() != "position-3" {
		t.Error("position names")
	}
	if Position(9).String() != "position-?" {
		t.Error("unknown position name")
	}
	if len(Positions()) != 3 {
		t.Error("positions count")
	}
}

func TestStudyFrequencies(t *testing.T) {
	fs := StudyFrequencies()
	want := []float64{2e3, 10e3, 50e3, 100e3}
	if len(fs) != 4 {
		t.Fatal("frequency count")
	}
	for i := range want {
		if fs[i] != want[i] {
			t.Errorf("f[%d] = %g", i, fs[i])
		}
	}
}

func TestFitColeRecoversParameters(t *testing.T) {
	truth := Cole{R0: 38, RInf: 21, Tau: 2.2e-6, Alpha: 0.66}
	freqs := []float64{2e3, 10e3, 50e3, 100e3, 200e3, 500e3}
	mags := make([]float64, len(freqs))
	for i, f := range freqs {
		mags[i] = truth.Magnitude(f)
	}
	res, err := FitCole(freqs, mags)
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 0.01 {
		t.Errorf("residual = %g", res.Residual)
	}
	if math.Abs(res.Cole.R0-truth.R0)/truth.R0 > 0.05 {
		t.Errorf("R0 = %g, want %g", res.Cole.R0, truth.R0)
	}
	if math.Abs(res.Cole.RInf-truth.RInf)/truth.RInf > 0.10 {
		t.Errorf("RInf = %g, want %g", res.Cole.RInf, truth.RInf)
	}
	// The fitted model must reproduce magnitudes at unseen frequencies.
	for _, f := range []float64{5e3, 30e3, 150e3} {
		got := res.Cole.Magnitude(f)
		want := truth.Magnitude(f)
		if math.Abs(got-want)/want > 0.03 {
			t.Errorf("interpolation at %g Hz: %g vs %g", f, got, want)
		}
	}
}

func TestFitColeFourPointStudySweep(t *testing.T) {
	// The study's own 4-frequency sweep is the minimal input.
	truth := Cole{R0: 42, RInf: 24, Tau: 2.0e-6, Alpha: 0.68}
	freqs := StudyFrequencies()
	mags := make([]float64, len(freqs))
	for i, f := range freqs {
		mags[i] = truth.Magnitude(f)
	}
	res, err := FitCole(freqs, mags)
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 0.02 {
		t.Errorf("residual = %g", res.Residual)
	}
	if !res.Cole.Valid() {
		t.Error("fitted model invalid")
	}
}

func TestFitColeInputValidation(t *testing.T) {
	if _, err := FitCole([]float64{1, 2, 3}, []float64{1, 2, 3}); err != ErrFitInput {
		t.Errorf("too few points: %v", err)
	}
	if _, err := FitCole([]float64{1, 2, 3, 4}, []float64{1, 2, 3}); err != ErrFitInput {
		t.Errorf("length mismatch: %v", err)
	}
	if _, err := FitCole([]float64{0, 2, 3, 4}, []float64{1, 2, 3, 4}); err != ErrFitInput {
		t.Errorf("zero frequency: %v", err)
	}
}

func TestComposition(t *testing.T) {
	c := Cole{R0: 40, RInf: 20, Tau: 2e-6, Alpha: 0.7}
	bc, ok := Composition(c)
	if !ok {
		t.Fatal("valid model rejected")
	}
	// Ri = R0*RInf/(R0-RInf) = 40*20/20 = 40.
	if math.Abs(bc.RIntra-40) > 1e-9 {
		t.Errorf("RIntra = %g", bc.RIntra)
	}
	if math.Abs(bc.Ratio-1) > 1e-9 {
		t.Errorf("ratio = %g", bc.Ratio)
	}
	if _, ok := Composition(Cole{}); ok {
		t.Error("invalid model accepted")
	}
}
