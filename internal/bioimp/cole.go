// Package bioimp models the human body as a frequency-dependent impedance
// and synthesizes the bioimpedance measurements of the paper's two setups:
// the traditional 4-electrode thoracic configuration (Fig 1) and the
// touch-based hand-to-hand device (Fig 2).
//
// Tissue dispersion follows the Cole-Cole model. At low injection
// frequencies (< 50 kHz) current flows through extracellular fluid only;
// at high frequencies it also crosses cell membranes, so the magnitude of
// the body impedance decreases monotonically with frequency (Section V of
// the paper, citing Kyle et al. and Gupta et al.).
//
// The *measured* Z0-vs-frequency curves of the paper (Figs 6-7) are not
// monotone: they rise to a maximum at 10 kHz and fall beyond. Pure tissue
// dispersion cannot produce that shape; it is attributed here to the
// band-limited injection/demodulation chain shared by both instruments
// (AC-coupled current source, lock-in demodulator), modelled by the
// Instrument gain G(f) normalized at the 50 kHz calibration frequency.
// This substitution is documented per-experiment in EXPERIMENTS.md.
package bioimp

import (
	"math"
	"math/cmplx"
)

// Cole holds Cole-Cole dispersion parameters of one tissue segment:
//
//	Z(w) = RInf + (R0 - RInf) / (1 + (jw*Tau)^Alpha)
type Cole struct {
	R0    float64 // resistance at DC (Ohm)
	RInf  float64 // resistance at infinite frequency (Ohm)
	Tau   float64 // characteristic time constant (s)
	Alpha float64 // dispersion broadening exponent in (0, 1]
}

// Impedance returns the complex impedance at frequency f (Hz).
func (c Cole) Impedance(f float64) complex128 {
	if f < 0 {
		f = 0
	}
	w := 2 * math.Pi * f
	wt := w * c.Tau
	if wt == 0 {
		return complex(c.R0, 0)
	}
	// (j*wt)^alpha = wt^alpha * exp(j*alpha*pi/2)
	mag := math.Pow(wt, c.Alpha)
	arg := c.Alpha * math.Pi / 2
	jwta := complex(mag*math.Cos(arg), mag*math.Sin(arg))
	return complex(c.RInf, 0) + complex(c.R0-c.RInf, 0)/(1+jwta)
}

// Magnitude returns |Z(f)|.
func (c Cole) Magnitude(f float64) float64 {
	return cmplx.Abs(c.Impedance(f))
}

// CharacteristicFreq returns the dispersion center frequency 1/(2*pi*Tau).
func (c Cole) CharacteristicFreq() float64 {
	if c.Tau <= 0 {
		return 0
	}
	return 1 / (2 * math.Pi * c.Tau)
}

// Valid reports whether the parameters are physically meaningful.
func (c Cole) Valid() bool {
	return c.R0 > c.RInf && c.RInf > 0 && c.Tau > 0 && c.Alpha > 0 && c.Alpha <= 1
}

// ElectrodeCPE models electrode polarization as a constant-phase element
// Z(f) = K / (jw)^Beta: a dry finger contact has a much larger K than a
// gelled chest electrode, and its impedance falls with frequency.
type ElectrodeCPE struct {
	K    float64 // magnitude factor (Ohm * rad^Beta/s^Beta)
	Beta float64 // phase exponent in (0, 1]
}

// Impedance returns the complex electrode impedance at frequency f.
func (e ElectrodeCPE) Impedance(f float64) complex128 {
	if e.K == 0 {
		return 0
	}
	w := 2 * math.Pi * f
	if w <= 0 {
		w = 1 // avoid the DC singularity; DC is never injected
	}
	mag := e.K / math.Pow(w, e.Beta)
	arg := -e.Beta * math.Pi / 2
	return complex(mag*math.Cos(arg), mag*math.Sin(arg))
}
