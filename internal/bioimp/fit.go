package bioimp

import (
	"errors"
	"math"
)

// Cole-parameter estimation from multi-frequency magnitude measurements:
// the body-composition assessment use case of the paper's related work
// (bioimpedance analysis needs R0 for extracellular and RInf for total
// body water). The inverse problem is solved by a deterministic compass
// (pattern) search over (R0, RInf, Tau, Alpha), which is derivative-free
// and robust for this 4-parameter, smooth objective.

// FitResult carries the recovered model and the residual.
type FitResult struct {
	Cole     Cole
	Residual float64 // RMS relative magnitude error at the input points
	Iters    int
}

// ErrFitInput rejects unusable input.
var ErrFitInput = errors.New("bioimp: need >= 4 frequency/magnitude pairs with positive values")

// FitCole estimates Cole parameters from |Z| samples at the given
// frequencies (Hz). At least four points are required (the study's
// 2/10/50/100 kHz sweep is exactly enough).
func FitCole(freqs, mags []float64) (FitResult, error) {
	if len(freqs) != len(mags) || len(freqs) < 4 {
		return FitResult{}, ErrFitInput
	}
	for i := range freqs {
		if freqs[i] <= 0 || mags[i] <= 0 {
			return FitResult{}, ErrFitInput
		}
	}
	// Initial guess: R0 from the lowest frequency, RInf from the highest,
	// Tau from the geometric band center, Alpha mid-range.
	loI, hiI := 0, 0
	for i := range freqs {
		if freqs[i] < freqs[loI] {
			loI = i
		}
		if freqs[i] > freqs[hiI] {
			hiI = i
		}
	}
	r0 := mags[loI] * 1.05
	rInf := mags[hiI] * 0.95
	if rInf >= r0 {
		rInf = r0 * 0.5
	}
	fc := math.Sqrt(freqs[loI] * freqs[hiI])
	p := [4]float64{r0, rInf, 1 / (2 * math.Pi * fc), 0.7}

	objective := func(p [4]float64) float64 {
		c := Cole{R0: p[0], RInf: p[1], Tau: p[2], Alpha: p[3]}
		if !c.Valid() {
			return math.Inf(1)
		}
		var sum float64
		for i := range freqs {
			m := c.Magnitude(freqs[i])
			rel := (m - mags[i]) / mags[i]
			sum += rel * rel
		}
		return math.Sqrt(sum / float64(len(freqs)))
	}

	// Compass search with per-parameter scales.
	steps := [4]float64{p[0] * 0.2, p[1] * 0.2, p[2] * 0.5, 0.1}
	best := objective(p)
	iters := 0
	for round := 0; round < 200; round++ {
		improved := false
		for d := 0; d < 4; d++ {
			for _, sign := range []float64{1, -1} {
				iters++
				q := p
				q[d] += sign * steps[d]
				if v := objective(q); v < best {
					best = v
					p = q
					improved = true
				}
			}
		}
		if !improved {
			done := true
			for d := 0; d < 4; d++ {
				steps[d] /= 2
				if steps[d] > 1e-9 {
					done = false
				}
			}
			if done {
				break
			}
		}
	}
	return FitResult{
		Cole:     Cole{R0: p[0], RInf: p[1], Tau: p[2], Alpha: p[3]},
		Residual: best,
		Iters:    iters,
	}, nil
}

// BodyComposition derives the classic bioimpedance-analysis indices from a
// fitted Cole model: the extracellular resistance (R0), the intracellular
// resistance Ri = R0*RInf/(R0-RInf), and their ratio (a fluid-shift
// indicator).
type BodyComposition struct {
	RExtra float64 // extracellular fluid resistance (Ohm)
	RIntra float64 // intracellular fluid resistance (Ohm)
	Ratio  float64 // RExtra / RIntra
}

// Composition computes the indices; ok is false for an invalid model.
func Composition(c Cole) (BodyComposition, bool) {
	if !c.Valid() {
		return BodyComposition{}, false
	}
	ri := c.R0 * c.RInf / (c.R0 - c.RInf)
	return BodyComposition{RExtra: c.R0, RIntra: ri, Ratio: c.R0 / ri}, true
}
