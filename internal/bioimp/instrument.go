package bioimp

import "math"

// Instrument models the injection/demodulation chain of a bioimpedance
// meter: a first-order high-pass (AC coupling of the current source) and a
// first-order low-pass (demodulator bandwidth), normalized at the 50 kHz
// calibration frequency at which hemodynamic parameters are computed
// (Section IV-B of the paper). The product G(f) peaks near
// sqrt(FHP*FLP), which reproduces the measured Z0-vs-frequency maximum at
// 10 kHz seen in Figs 6-7 for both the traditional system and the device.
type Instrument struct {
	Name    string
	FHP     float64 // injection high-pass corner (Hz)
	FLP     float64 // demodulator low-pass corner (Hz)
	CalFreq float64 // calibration frequency (Hz); gain is 1 there
	// Electrode models for the two contact types.
	Electrode ElectrodeCPE
	// NoiseStd is the instrument noise on the demodulated Z (Ohm).
	NoiseStd float64
}

// TraditionalInstrument returns the reference hospital-style system with
// gelled chest electrodes.
func TraditionalInstrument() Instrument {
	return Instrument{
		Name:      "traditional",
		FHP:       3.2e3,
		FLP:       38e3,
		CalFreq:   50e3,
		Electrode: ElectrodeCPE{K: 2.0e4, Beta: 0.75},
		NoiseStd:  0.003,
	}
}

// TouchInstrument returns the hand-held device chain with dry finger
// contacts.
func TouchInstrument() Instrument {
	return Instrument{
		Name:      "touch",
		FHP:       3.6e3,
		FLP:       34e3,
		CalFreq:   50e3,
		Electrode: ElectrodeCPE{K: 9.0e4, Beta: 0.78},
		NoiseStd:  0.005,
	}
}

// rawGain returns the unnormalized chain gain at frequency f.
func (ins Instrument) rawGain(f float64) float64 {
	if f <= 0 {
		return 0
	}
	hp := (f / ins.FHP) / math.Sqrt(1+(f/ins.FHP)*(f/ins.FHP))
	lp := 1 / math.Sqrt(1+(f/ins.FLP)*(f/ins.FLP))
	return hp * lp
}

// Gain returns the chain gain normalized to 1 at the calibration
// frequency, so measured Z at CalFreq equals the physical |Z|.
func (ins Instrument) Gain(f float64) float64 {
	cal := ins.rawGain(ins.CalFreq)
	if cal == 0 {
		return 0
	}
	return ins.rawGain(f) / cal
}

// PeakFrequency returns the frequency at which the chain gain is maximal,
// sqrt(FHP*FLP) for the first-order sections used here.
func (ins Instrument) PeakFrequency() float64 {
	return math.Sqrt(ins.FHP * ins.FLP)
}

// StudyFrequencies returns the injected-current frequencies of the paper's
// protocol: 2, 10, 50 and 100 kHz.
func StudyFrequencies() []float64 {
	return []float64{2e3, 10e3, 50e3, 100e3}
}
