package bioimp

import (
	"math"
	"math/cmplx"

	"repro/internal/dsp"
	"repro/internal/physio"
)

// Position identifies the arm position of the measurement protocol
// (Section V): 1 = device held to the chest, 2 = arms stretched out
// parallel to the floor, 3 = arms down by the sides.
type Position int

// Protocol positions.
const (
	Position1 Position = iota + 1
	Position2
	Position3
)

// String returns "position-1" style names.
func (p Position) String() string {
	switch p {
	case Position1:
		return "position-1"
	case Position2:
		return "position-2"
	case Position3:
		return "position-3"
	default:
		return "position-?"
	}
}

// Positions lists the three protocol positions.
func Positions() []Position {
	return []Position{Position1, Position2, Position3}
}

// Path selects the current path through the body.
type Path int

// Measurement paths.
const (
	PathThoracic   Path = iota // traditional 4-electrode chest/thorax setup
	PathHandToHand             // touch device: finger-to-finger through the thorax
)

// ThoraxCole returns the subject's thoracic Cole model.
func ThoraxCole(s *physio.Subject) Cole {
	return Cole{R0: s.ThoraxR0, RInf: s.ThoraxRInf, Tau: s.ThoraxTau, Alpha: s.ThoraxAlph}
}

// ArmCole returns the subject's single-arm Cole model.
func ArmCole(s *physio.Subject) Cole {
	return Cole{R0: s.ArmR0, RInf: s.ArmRInf, Tau: s.ArmTau, Alpha: s.ArmAlpha}
}

// thoraxFraction is the fraction of the transverse thoracic impedance that
// appears in the hand-to-hand path.
const thoraxFraction = 0.55

// cardiacCoupling is the fraction of the thoracic cardiac impedance
// variation (dZ) that is visible in the hand-to-hand measurement.
const cardiacCoupling = 0.62

// BodyImpedance returns the complex body impedance (excluding electrodes)
// of the given path at frequency f.
func BodyImpedance(s *physio.Subject, path Path, f float64) complex128 {
	th := ThoraxCole(s).Impedance(f)
	if path == PathThoracic {
		return th
	}
	arm := ArmCole(s).Impedance(f)
	contact := complex(s.ContactR, 0)
	return 2*arm + complex(thoraxFraction, 0)*th + 2*contact
}

// MeasuredZ0 returns the apparent (instrument-gained) base impedance of a
// path at frequency f, including electrode polarization.
func MeasuredZ0(s *physio.Subject, ins Instrument, path Path, f float64) float64 {
	z := BodyImpedance(s, path, f) + ins.Electrode.Impedance(f)
	return cmplx.Abs(z) * ins.Gain(f)
}

// Measurement is a synthesized bioimpedance acquisition at one injection
// frequency.
type Measurement struct {
	Subject   int       // subject ID
	Freq      float64   // injection frequency (Hz)
	Position  Position  // arm position (device) or Position1 (reference)
	Path      Path      // current path
	FS        float64   // sampling rate (Hz)
	Z         []float64 // measured impedance time series (Ohm)
	ECG       []float64 // simultaneously acquired ECG (mV, lead-scaled)
	BaseZ     float64   // configured mean impedance (Ohm)
	ArtifactN float64   // calibrated artifact standard deviation (Ohm)
}

// MeanZ returns the time-average of the measured impedance.
func (m *Measurement) MeanZ() float64 { return dsp.Mean(m.Z) }

// MeasureReference synthesizes the traditional-setup acquisition for a
// subject at the given injection frequency: thoracic path, gelled
// electrodes, low instrument noise.
func MeasureReference(s *physio.Subject, rec *physio.Recording, ins Instrument, freq float64) *Measurement {
	n := len(rec.DZ)
	base := MeasuredZ0(s, ins, PathThoracic, freq)
	g := ins.Gain(freq)
	rng := physio.NewRNG(s.Seed*7907 + int64(freq))
	// The noise buffer is private; build the measured channel in it.
	z := physio.WhiteNoise(rng, n, ins.NoiseStd)
	for i := 0; i < n; i++ {
		z[i] += base + g*(rec.DZ[i]+rec.Resp[i])
	}
	return &Measurement{
		Subject: s.ID, Freq: freq, Position: Position1, Path: PathThoracic,
		FS: rec.FS, Z: z, ECG: dsp.Clone(rec.ECG), BaseZ: base,
	}
}

// MeasureDevice synthesizes the touch-device acquisition for a subject at
// the given injection frequency and arm position.
//
// The device sees (a) the hand-to-hand base impedance scaled by the
// position's mean-shift calibration, (b) an attenuated copy of the
// thoracic cardiac and respiratory impedance variations, and (c) a
// position-dependent artifact whose standard deviation is derived from the
// paper's correlation targets (Tables II-IV) via
// sigma_n = a*sigma_s*sqrt(1/r^2 - 1); the artifact lives in the
// 0.05-2 Hz respiratory/motion band cited in Section II, so it overlaps
// the signal band and genuinely degrades the measured correlation.
func MeasureDevice(s *physio.Subject, rec *physio.Recording, ins Instrument, freq float64, pos Position) *Measurement {
	n := len(rec.DZ)
	pi := int(pos) - 1
	if pi < 0 || pi > 2 {
		pi = 0
	}
	// The postural mean shift grows mildly with frequency: at higher
	// frequencies more of the current crosses intracellular paths whose
	// geometry the arm position changes, so the displacement error of
	// Fig 8 is not flat across the sweep.
	shift := s.PosMeanScale[pi] - 1
	kf := 1 + 0.15*math.Log10(freq/50e3)
	if kf < 0.5 {
		kf = 0.5
	}
	base := MeasuredZ0(s, ins, PathHandToHand, freq) * (1 + shift*kf)
	g := ins.Gain(freq)
	coupling := cardiacCoupling * g

	// Clean coupled physiological signal.
	signal := make([]float64, n)
	for i := 0; i < n; i++ {
		signal[i] = coupling * (rec.DZ[i] + rec.Resp[i])
	}
	sigmaS := dsp.Std(signal)

	// Artifact intensity from the calibration target.
	r := s.PosCorrTarget[pi]
	var sigmaN float64
	if r > 0 && r < 1 {
		sigmaN = sigmaS * math.Sqrt(1/(r*r)-1)
	}
	rng := physio.NewRNG(s.Seed*104729 + int64(freq)*31 + int64(pos))
	// The artifact occupies the respiratory/postural band (the dominant
	// part of the 0.04-2 Hz range cited in Section II): slow enough that
	// the beat detector's per-beat detrend can cope, yet fully inside
	// the band of the physiological signal, so it genuinely degrades the
	// measured correlation.
	artifact := physio.BandNoise(rng, n, rec.FS, 0.05, 0.9, sigmaN)
	// Small ICG-band contact noise that exercises the detector without
	// moving the correlation appreciably.
	contact := physio.BandNoise(rng, n, rec.FS, 2.0, 10.0, 0.004*s.PosMotion[pi])
	meas := physio.WhiteNoise(rng, n, ins.NoiseStd)

	// All component buffers are private to this call; sum the channel into
	// the signal buffer instead of allocating another full-length slice.
	z := signal
	for i := 0; i < n; i++ {
		z[i] = base + signal[i] + artifact[i] + contact[i] + meas[i]
	}

	// Touch ECG: lead-I-like, smaller than the chest lead, with extra
	// high-frequency (EMG-band) noise that grows with arm tension.
	ecg := physio.BandNoise(rng, n, rec.FS, 20, 95, 0.008*s.PosMotion[pi])
	for i := 0; i < n; i++ {
		ecg[i] += 0.6 * rec.ECG[i]
	}

	return &Measurement{
		Subject: s.ID, Freq: freq, Position: pos, Path: PathHandToHand,
		FS: rec.FS, Z: z, ECG: ecg, BaseZ: base, ArtifactN: sigmaN,
	}
}

// ICGFromZ derives the impedance cardiogram ICG = -dZ/dt (Ohm/s) from a
// measured impedance series, exactly as the device firmware does after
// demodulation (Section IV-B: "ICG = -dZ/dt").
func ICGFromZ(z []float64, fs float64) []float64 {
	if len(z) == 0 {
		return nil
	}
	return ICGFromZTo(make([]float64, len(z)), z, fs)
}

// ICGFromZTo is ICGFromZ writing into dst (grown when shorter than z; dst
// must not alias z).
func ICGFromZTo(dst, z []float64, fs float64) []float64 {
	dst = dsp.DerivativeTo(dst, z, fs)
	for i, v := range dst {
		dst[i] = -v
	}
	return dst
}
