package bioimp

import (
	"math"

	"repro/internal/dsp"
	"repro/internal/physio"
)

// NoiseBank pre-synthesizes the unit-std noise tracks of one subject's
// protocol sweep so measurement cells that share a band reuse one
// stream. The study protocol measures every subject at 4-5 injection
// frequencies per position, and the synthesized noise differs between
// those cells only by its calibrated standard deviation — the band
// shaping (ziggurat draws, SOS pass, exact-std rescale over a
// full-length buffer) is identical work repeated per cell. The bank
// extends the spirit of physio's bandDesignCache from the filter design
// to the filtered-noise state itself: 13 synthesized streams per
// subject (3 positions x 4 device tracks + 1 reference track) replace
// the ~65 per-cell syntheses of a full sweep, and each cell applies its
// exact sigma as a scalar multiply at mix time.
//
// Determinism: every track is seeded only from the subject seed and the
// position, so a bank is a pure function of the subject — independent
// of frequency order, worker count or how many cells consume it. The
// reference track and the device tracks come from disjoint seed streams
// (as the per-cell generators did), keeping the reference/device
// correlation free of shared-noise bias. Tracks are read-only after
// construction and safe to share across goroutines.
type NoiseBank struct {
	// RefWhite is the thoracic reference instrument noise at unit
	// nominal std.
	RefWhite []float64
	// Per-position device tracks, indexed by Position-1.
	Artifact [3][]float64 // respiratory/postural band (0.05-0.9 Hz), unit empirical std
	Contact  [3][]float64 // ICG-band contact noise (2-10 Hz), unit empirical std
	DevWhite [3][]float64 // device instrument noise, unit nominal std
	EMG      [3][]float64 // touch-ECG EMG band (20-95 Hz), unit empirical std
}

// NewNoiseBank synthesizes the shared tracks for one subject at the
// given recording length and sampling rate.
func NewNoiseBank(s *physio.Subject, n int, fs float64) *NoiseBank {
	b := &NoiseBank{
		RefWhite: physio.WhiteNoise(physio.NewRNG(s.Seed*7907), n, 1),
	}
	for pi := 0; pi < 3; pi++ {
		// One rng per position, drawing the four tracks in a fixed order,
		// mirrors the per-cell generators' single-rng draw sequence.
		rng := physio.NewRNG(s.Seed*104729 + int64(pi+1))
		b.Artifact[pi] = physio.BandNoise(rng, n, fs, 0.05, 0.9, 1)
		b.Contact[pi] = physio.BandNoise(rng, n, fs, 2.0, 10.0, 1)
		b.DevWhite[pi] = physio.WhiteNoise(rng, n, 1)
		b.EMG[pi] = physio.BandNoise(rng, n, fs, 20, 95, 1)
	}
	return b
}

// MeasureReferenceWith is MeasureReference drawing the instrument noise
// from the bank's shared reference track instead of synthesizing a
// fresh stream: one pass mixes base, gained physiology and scaled noise
// into the output buffer. MeasureReference itself is untouched (its
// per-cell draws are pinned by goldens); the bank variant is the study
// sweep's path.
func MeasureReferenceWith(bank *NoiseBank, s *physio.Subject, rec *physio.Recording, ins Instrument, freq float64) *Measurement {
	n := len(rec.DZ)
	base := MeasuredZ0(s, ins, PathThoracic, freq)
	g := ins.Gain(freq)
	z := make([]float64, n)
	w := bank.RefWhite
	for i := 0; i < n; i++ {
		z[i] = base + g*(rec.DZ[i]+rec.Resp[i]) + ins.NoiseStd*w[i]
	}
	return &Measurement{
		Subject: s.ID, Freq: freq, Position: Position1, Path: PathThoracic,
		FS: rec.FS, Z: z, ECG: dsp.Clone(rec.ECG), BaseZ: base,
	}
}

// MeasureDeviceWith is MeasureDevice drawing all four noise components
// from the bank's per-position shared tracks. The cell's calibration is
// unchanged — sigma_n still comes from the position's correlation
// target via sigma_n = sigma_s*sqrt(1/r^2-1), and the band tracks carry
// exactly unit empirical std, so the scalar mix reproduces the exact-std
// calibration of the per-cell path — but the synthesis cost is paid
// once per subject instead of once per (frequency, position) cell.
func MeasureDeviceWith(bank *NoiseBank, s *physio.Subject, rec *physio.Recording, ins Instrument, freq float64, pos Position) *Measurement {
	n := len(rec.DZ)
	pi := int(pos) - 1
	if pi < 0 || pi > 2 {
		pi = 0
	}
	shift := s.PosMeanScale[pi] - 1
	kf := 1 + 0.15*math.Log10(freq/50e3)
	if kf < 0.5 {
		kf = 0.5
	}
	base := MeasuredZ0(s, ins, PathHandToHand, freq) * (1 + shift*kf)
	g := ins.Gain(freq)
	coupling := cardiacCoupling * g

	// Clean coupled physiological signal; the buffer becomes Z after the
	// mix below.
	signal := make([]float64, n)
	for i := 0; i < n; i++ {
		signal[i] = coupling * (rec.DZ[i] + rec.Resp[i])
	}
	sigmaS := dsp.Std(signal)
	r := s.PosCorrTarget[pi]
	var sigmaN float64
	if r > 0 && r < 1 {
		sigmaN = sigmaS * math.Sqrt(1/(r*r)-1)
	}
	sigmaC := 0.004 * s.PosMotion[pi]
	art, con, w := bank.Artifact[pi], bank.Contact[pi], bank.DevWhite[pi]
	for i := 0; i < n; i++ {
		signal[i] += base + sigmaN*art[i] + sigmaC*con[i] + ins.NoiseStd*w[i]
	}

	sigmaE := 0.008 * s.PosMotion[pi]
	emg := bank.EMG[pi]
	ecg := make([]float64, n)
	for i := 0; i < n; i++ {
		ecg[i] = sigmaE*emg[i] + 0.6*rec.ECG[i]
	}

	return &Measurement{
		Subject: s.ID, Freq: freq, Position: pos, Path: PathHandToHand,
		FS: rec.FS, Z: signal, ECG: ecg, BaseZ: base, ArtifactN: sigmaN,
	}
}
