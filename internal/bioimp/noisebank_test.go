package bioimp

import (
	"math"
	"testing"

	"repro/internal/dsp"
	"repro/internal/physio"
)

func TestNoiseBankDeterministicAndUnitStd(t *testing.T) {
	s := testSubject()
	a := NewNoiseBank(s, 2000, 250)
	b := NewNoiseBank(s, 2000, 250)
	for i := range a.RefWhite {
		if a.RefWhite[i] != b.RefWhite[i] {
			t.Fatal("bank nondeterministic")
		}
	}
	for pi := 0; pi < 3; pi++ {
		for i := range a.Artifact[pi] {
			if a.Artifact[pi][i] != b.Artifact[pi][i] || a.EMG[pi][i] != b.EMG[pi][i] {
				t.Fatal("bank nondeterministic")
			}
		}
		// Band tracks carry exactly unit empirical std (rescaleStd), the
		// white tracks unit nominal std.
		for _, track := range [][]float64{a.Artifact[pi], a.Contact[pi], a.EMG[pi]} {
			if got := dsp.Std(track); math.Abs(got-1) > 1e-9 {
				t.Fatalf("band track std = %g, want exactly 1", got)
			}
		}
		if got := dsp.Std(a.DevWhite[pi]); math.Abs(got-1) > 0.1 {
			t.Fatalf("white track std = %g", got)
		}
		// Positions must not share a stream.
		if pi > 0 && dsp.Pearson(a.Artifact[pi], a.Artifact[0]) > 0.5 {
			t.Fatal("positions share artifact noise")
		}
	}
	// Reference and device noise must be uncorrelated: shared noise
	// would bias the reference/device Pearson targets upward.
	for pi := 0; pi < 3; pi++ {
		if r := dsp.Pearson(a.RefWhite, a.DevWhite[pi]); math.Abs(r) > 0.1 {
			t.Fatalf("ref/dev white correlated: %g", r)
		}
	}
}

// TestMeasureWithBankKeepsCalibration pins the bank variants to the
// same statistical contract as the per-cell generators: the measured
// reference/device correlation stays near the position's Tables II-IV
// target, and the artifact std matches the sigma_n calibration exactly.
func TestMeasureWithBankKeepsCalibration(t *testing.T) {
	for _, id := range []int{1, 4} {
		sub, _ := physio.SubjectByID(id)
		s := &sub
		rec := s.Generate(physio.DefaultGenConfig())
		bank := NewNoiseBank(s, len(rec.DZ), rec.FS)
		ref := MeasureReferenceWith(bank, s, rec, TraditionalInstrument(), 50e3)
		refCell := MeasureReference(s, rec, TraditionalInstrument(), 50e3)
		// Same base, same physiology: only the noise draws differ.
		if math.Abs(ref.MeanZ()-refCell.MeanZ()) > 0.1 {
			t.Errorf("subject %d: bank ref mean %g vs cell %g", id, ref.MeanZ(), refCell.MeanZ())
		}
		for pi, pos := range Positions() {
			dev := MeasureDeviceWith(bank, s, rec, TouchInstrument(), 50e3, pos)
			devCell := MeasureDevice(s, rec, TouchInstrument(), 50e3, pos)
			if dev.BaseZ != devCell.BaseZ || dev.ArtifactN != devCell.ArtifactN {
				t.Fatalf("subject %d %v: calibration drifted: base %g/%g sigmaN %g/%g",
					id, pos, dev.BaseZ, devCell.BaseZ, dev.ArtifactN, devCell.ArtifactN)
			}
			r := dsp.Pearson(ref.Z, dev.Z)
			target := s.PosCorrTarget[pi]
			if math.Abs(r-target) > 0.09 {
				t.Errorf("subject %d %v: r = %.4f, target %.4f", id, pos, r, target)
			}
		}
	}
}
