package core

import (
	"testing"

	"repro/internal/physio"
)

// Allocation regression tests for the steady-state Process path. The
// filter bank is designed once per Device and all full-length DSP
// intermediates live in the pooled scratch arena, so a warmed-up Process
// only allocates what the Output retains (per-beat records, the cloned
// conditioned traces) plus the small per-beat analysis slices. The seed
// implementation allocated ~2200 objects and ~2.6 MB per 30 s window;
// the budgets below lock in the reduction with headroom for noise.
func TestProcessSteadyStateAllocations(t *testing.T) {
	sub, _ := physio.SubjectByID(1)
	d := device(t, nil)
	acq, err := d.Acquire(&sub, 30)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the arena pool and the filter caches.
	if _, err := d.Process(acq); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := d.Process(acq); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1100 {
		t.Errorf("steady-state Process allocates %.0f objects/run, budget 1100 (seed: ~2200)", allocs)
	}
}

// The streaming engine re-analyzes a window every hop; with the shared
// filter bank and the streamer-owned arena, a steady-state hop must not
// allocate full-window buffers.
func TestStreamerSteadyStateAllocations(t *testing.T) {
	sub, _ := physio.SubjectByID(1)
	d := device(t, nil)
	acq, err := d.Acquire(&sub, 30)
	if err != nil {
		t.Fatal(err)
	}
	st := d.NewStreamer(DefaultStreamConfig())
	hop := 250
	pos := 0
	push := func() {
		end := pos + hop
		if end > len(acq.ECG) {
			pos = 0
			end = hop
		}
		st.Push(acq.ECG[pos:end], acq.Z[pos:end])
		pos = end
	}
	// Warm up: fill the window and run several analyses.
	for i := 0; i < 10; i++ {
		push()
	}
	allocs := testing.AllocsPerRun(10, push)
	// One hop triggers at most one window analysis; the budget covers the
	// emitted beats and per-beat detection scratch only.
	if allocs > 400 {
		t.Errorf("steady-state Push allocates %.0f objects/run, budget 400", allocs)
	}
}
