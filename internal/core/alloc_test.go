package core

import (
	"testing"

	"repro/internal/event"
	"repro/internal/physio"
)

// Allocation regression tests for the steady-state processing paths.
// The filter bank is designed once per Device, all full-length DSP
// intermediates live in the pooled scratch arena, the per-beat
// characteristic-point detector draws its intermediates from the same
// arena and writes its results into one block (icg.DetectBeatInto),
// the gate streams are pooled, and hemo.SeriesWith/SummarizeGated
// allocate exact-size or shared-scratch buffers — so a warmed-up
// Process only allocates what the Output retains. The seed
// implementation allocated ~2200 objects and ~2.6 MB per 30 s window;
// PR 1 brought that to ~1000, the incremental-engine PR to ~400, and
// the quality-gate PR to ~340 (with gating enabled). The budgets lock
// the reductions in with headroom for noise.
func TestProcessSteadyStateAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	sub, _ := physio.SubjectByID(1)
	d := device(t, nil)
	acq, err := d.Acquire(&sub, 30)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the arena pool and the filter caches.
	if _, err := d.Process(acq); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := d.Process(acq); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 350 {
		t.Errorf("steady-state Process allocates %.0f objects/run, budget 350 (seed: ~2200, PR 2: ~400)", allocs)
	}
}

// The incremental streaming engine conditions every sample exactly once
// and analyzes each beat exactly once, so a steady-state 1 s hop must
// allocate almost nothing: the emitted beat slice plus a handful of
// per-beat records. The rolling filtfilt cache (PR 7) cut the per-beat
// refilter scratch to ~14 objects/hop measured; the budget rides just
// above that. (The retained window-recompute engine spends ~50
// objects and ~43 KB per hop on the same input — the per-hop benchmarks
// in bench_test.go track the ratio, which must stay >= 3x.)
func TestStreamerSteadyStateAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	sub, _ := physio.SubjectByID(1)
	d := device(t, nil)
	acq, err := d.Acquire(&sub, 30)
	if err != nil {
		t.Fatal(err)
	}
	st := d.NewStreamer(DefaultStreamConfig())
	hop := 250
	pos := 0
	push := func() {
		end := pos + hop
		if end > len(acq.ECG) {
			pos = 0
			end = hop
		}
		st.Push(acq.ECG[pos:end], acq.Z[pos:end])
		pos = end
	}
	// Warm up: fill delay lines and settle the detectors.
	for i := 0; i < 10; i++ {
		push()
	}
	allocs := testing.AllocsPerRun(10, push)
	if allocs > 20 {
		t.Errorf("steady-state Push allocates %.0f objects/hop, budget 20 (window engine: ~50)", allocs)
	}
}

// Typed event delivery must add ZERO allocations per beat on the
// streaming hot path: an Event is a flat value built on the stack and
// copied into the Buffer sink's preallocated ring, so the armed path
// allocates no more than the legacy path (which pays for the returned
// beat slice the sink path does not build). Both streamers replay the
// identical hop schedule, so the comparison is exact, not statistical.
func TestStreamerEventDeliveryAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	sub, _ := physio.SubjectByID(1)
	d := device(t, nil)
	acq, err := d.Acquire(&sub, 30)
	if err != nil {
		t.Fatal(err)
	}
	hop := 250
	run := func(st *Streamer, push func(e, z []float64)) float64 {
		pos := 0
		step := func() {
			end := pos + hop
			if end > len(acq.ECG) {
				pos = 0
				end = hop
			}
			push(acq.ECG[pos:end], acq.Z[pos:end])
			pos = end
		}
		for i := 0; i < 10; i++ {
			step()
		}
		return testing.AllocsPerRun(10, step)
	}
	legacy := d.NewStreamer(DefaultStreamConfig())
	legacyAllocs := run(legacy, func(e, z []float64) { legacy.Push(e, z) })

	st := d.NewStreamer(DefaultStreamConfig())
	buf := event.NewBuffer(256)
	st.Emit(buf, 1)
	st.SetHealthFloor(0.2)
	dst := make([]event.Event, 0, 256)
	evAllocs := run(st, func(e, z []float64) {
		st.Push(e, z)
		dst = buf.Drain(dst[:0])
	})
	if evAllocs > legacyAllocs {
		t.Errorf("event-armed Push allocates %.0f objects/hop, legacy path %.0f — event delivery must be free",
			evAllocs, legacyAllocs)
	}
	if evAllocs > 20 {
		t.Errorf("event-armed Push allocates %.0f objects/hop, budget 20", evAllocs)
	}
}
