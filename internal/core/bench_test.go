package core

import (
	"testing"

	"repro/internal/event"
	"repro/internal/physio"
)

// Steady-state per-hop streaming benchmarks: the incremental engine
// versus the retained window-recompute baseline, at the default
// 6 s / 1 s configuration and at a doubled window. The headline claim
// is that incremental per-hop cost does not scale with WindowSeconds
// while the window engine's does; BENCHMARKS.md records the numbers.

func benchAcq(b *testing.B, d *Device) *Acquisition {
	b.Helper()
	sub, _ := physio.SubjectByID(1)
	acq, err := d.Acquire(&sub, 30)
	if err != nil {
		b.Fatal(err)
	}
	return acq
}

// benchHops drives an engine steady-state: one 1 s hop per iteration,
// cycling through a 30 s acquisition.
func benchHops(b *testing.B, acq *Acquisition, push func(ecg, z []float64) int) {
	hop := int(acq.FS)
	n := len(acq.ECG) - hop
	total := 0
	// Warm up: fill windows/delay lines before measuring.
	for i := 0; i < 8; i++ {
		pos := (i * hop) % n
		total += push(acq.ECG[pos:pos+hop], acq.Z[pos:pos+hop])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pos := ((i + 8) * hop) % n
		total += push(acq.ECG[pos:pos+hop], acq.Z[pos:pos+hop])
	}
	if b.N > 30 && total == 0 {
		b.Fatal("no beats emitted")
	}
}

func BenchmarkStreamHopIncremental(b *testing.B) {
	d, err := NewDevice(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	acq := benchAcq(b, d)
	st := d.NewStreamer(DefaultStreamConfig())
	benchHops(b, acq, func(e, z []float64) int { return len(st.Push(e, z)) })
}

// The same hop with per-beat quality gating disabled: the difference
// against BenchmarkStreamHopIncremental is the gate's per-hop cost
// (one ring append per sample plus one beat scoring per beat), which
// BENCHMARKS.md pins within 15% of the ungated PR-2 numbers.
func BenchmarkStreamHopIncrementalUngated(b *testing.B) {
	cfg := DefaultConfig()
	cfg.DisableGate = true
	d, err := NewDevice(cfg)
	if err != nil {
		b.Fatal(err)
	}
	acq := benchAcq(b, d)
	st := d.NewStreamer(DefaultStreamConfig())
	benchHops(b, acq, func(e, z []float64) int { return len(st.Push(e, z)) })
}

// The same steady-state hop delivered through the typed event path: a
// pooled ring Buffer sink armed via Emit, drained into a reused slice
// each hop (the serving pattern). BENCHMARKS.md compares this row
// against BenchmarkStreamHopIncremental — per-beat event delivery must
// cost nothing over the returned-slice path.
func BenchmarkStreamHopIncrementalEvents(b *testing.B) {
	d, err := NewDevice(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	acq := benchAcq(b, d)
	st := d.NewStreamer(DefaultStreamConfig())
	buf := event.NewBuffer(256)
	st.Emit(buf, 1)
	dst := make([]event.Event, 0, 256)
	benchHops(b, acq, func(e, z []float64) int {
		st.Push(e, z)
		dst = buf.Drain(dst[:0])
		return len(dst)
	})
}

func BenchmarkStreamHopWindowed(b *testing.B) {
	d, err := NewDevice(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	acq := benchAcq(b, d)
	st := d.NewWindowStreamer(DefaultStreamConfig())
	benchHops(b, acq, func(e, z []float64) int { return len(st.Push(e, z)) })
}

// Doubled analysis window: the incremental engine's per-hop cost must
// stay flat while the window engine's doubles.
func BenchmarkStreamHopIncremental12s(b *testing.B) {
	d, err := NewDevice(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	acq := benchAcq(b, d)
	sc := DefaultStreamConfig()
	sc.WindowSeconds = 12
	st := d.NewStreamer(sc)
	benchHops(b, acq, func(e, z []float64) int { return len(st.Push(e, z)) })
}

func BenchmarkStreamHopWindowed12s(b *testing.B) {
	d, err := NewDevice(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	acq := benchAcq(b, d)
	sc := DefaultStreamConfig()
	sc.WindowSeconds = 12
	st := d.NewWindowStreamer(sc)
	benchHops(b, acq, func(e, z []float64) int { return len(st.Push(e, z)) })
}
