// Package core assembles the paper's device (Fig 2, Fig 3, Fig 4): a
// touch-operated acquisition and processing pipeline that sets the
// injection frequency, acquires ECG and ICG simultaneously, runs the
// noise-cancellation and characteristic-point algorithms of Section IV in
// a form suitable for the STM32L151, estimates the hemodynamic parameters,
// and hands per-beat records to the radio. It also prices every stage in
// CPU cycles so the paper's 40-50% duty-cycle claim (experiment E8) can be
// reproduced.
package core

import (
	"errors"
	"sync"

	"repro/internal/bioimp"
	"repro/internal/dsp"
	"repro/internal/ecg"
	"repro/internal/hemo"
	"repro/internal/hw/afe"
	"repro/internal/hw/imu"
	"repro/internal/hw/mcu"
	"repro/internal/icg"
	"repro/internal/physio"
	"repro/internal/quality"
)

// Config selects the acquisition and processing options of Fig 3's
// flowchart ("set frequency of the current" is InjectionFreq).
type Config struct {
	FS            float64         // sampling rate (Hz); the study uses 250
	InjectionFreq float64         // carrier frequency (Hz); 50 kHz for STIs
	Position      bioimp.Position // arm position during the measurement
	XRule         icg.XVariant    // X-point rule (paper vs Carvalho)
	BRule         icg.BVariant    // B-point rule (ablation A1)
	NaiveMorph    bool            // O(n*k) morphology engine (ablation A4)
	CausalFilters bool            // single-pass filters (ablation A5)
	// Ensemble additionally averages all beats (R-aligned) and detects
	// the characteristic points on the averaged beat — the classic ICG
	// noise-reduction mode used when beat-to-beat output is not needed.
	Ensemble    bool
	Body        hemo.BodyConstants
	ECGFrontEnd afe.ECGConfig
	ICGFrontEnd afe.ICGConfig
	MCU         mcu.STM32L151
	OutlierK    float64 // MAD multiplier for beat rejection (default 4)
	// Gate configures the per-beat signal-quality gate both engines
	// route beats through (zero fields fall back to
	// quality.DefaultGate(FS)); DisableGate turns gating off, emitting
	// every analyzable beat as Accepted.
	Gate        quality.GateConfig
	DisableGate bool
}

// DefaultConfig returns the device configuration used throughout the
// paper's evaluation: 250 Hz sampling, 50 kHz injection, position 1.
func DefaultConfig() Config {
	return Config{
		FS:            250,
		InjectionFreq: 50e3,
		Position:      bioimp.Position1,
		XRule:         icg.XPaper,
		BRule:         icg.BPaper,
		Body:          hemo.DefaultBody(),
		ECGFrontEnd:   afe.DefaultECG(),
		ICGFrontEnd:   afe.DefaultICG(),
		MCU:           mcu.DefaultSTM32L151(),
		OutlierK:      4,
	}
}

// Device is the assembled touch system. The conditioning filters of Fig 3
// are designed once here — re-running the windowed-sinc and bilinear
// designs on every Process call is pure waste on an MCU and dominated the
// constant-rate allocation profile of the Go pipeline. A sync.Pool of
// scratch arenas makes concurrent Process calls (the parallel study
// engine) safe while keeping steady-state allocations near zero.
type Device struct {
	cfg   Config
	touch bioimp.Instrument
	bank  *filterBank
	// gate is the per-beat quality gate both engines share (nil when
	// Config.DisableGate); gateStreams pools its Reset streaming state
	// for concurrent batch Process calls.
	gate        *quality.BeatGate
	gateStreams sync.Pool

	// banks memoizes filter banks designed for acquisitions sampled at
	// a different rate than the device configuration, keyed by fs; the
	// whole bank design (windowed sinc, pole placement, bilinear
	// transforms, chain assembly) runs at most once per rate.
	banks sync.Map // float64 -> *filterBank

	arenas sync.Pool // *dsp.Arena
}

// filterBank holds every filter the pipeline applies, designed once for
// one sampling rate, plus the conditioning chains (stage.go) both
// engines share.
type filterBank struct {
	fs      float64
	ecgFIR  *dsp.FIR // 32nd-order 0.05-40 Hz band-pass (Section IV-A.1)
	icgLP   dsp.SOS  // 20 Hz Butterworth low-pass (Section IV-A.2)
	icgHP   dsp.SOS  // band-edge high-pass; nil when disabled
	twaveLP dsp.SOS  // 10 Hz T-wave low-pass (Carvalho X variant)
	ptSOS   dsp.SOS  // Pan-Tompkins QRS band-pass

	blCfg    ecg.BaselineConfig
	ecgChain Chain // baseline removal + FIR band-pass
	icgChain Chain // -dZ/dt + Butterworth conditioning
}

// designBank designs the full filter bank and conditioning chains for
// sampling rate fs under the device configuration. The FIR pre-builds
// its reversed-tap (and, when wide enough, FFT overlap-save) state so
// steady-state filtering never mutates shared data.
func designBank(cfg Config, fs float64) (*filterBank, error) {
	b := &filterBank{fs: fs}
	var err error
	if b.ecgFIR, err = ecg.DefaultBandPass(fs).Design(); err != nil {
		return nil, err
	}
	b.ecgFIR.Prepare()
	if b.icgLP, b.icgHP, err = icg.DefaultFilter(fs).Design(); err != nil {
		return nil, err
	}
	if b.twaveLP, err = ecg.DesignTWaveLowPass(fs); err != nil {
		return nil, err
	}
	if b.ptSOS, err = ecg.DesignPTBandPass(ecg.DefaultPT(fs)); err != nil {
		return nil, err
	}
	buildChains(cfg, fs, b)
	return b, nil
}

// bankFor returns the bank for sampling rate fs: the construction-time
// bank for the configured rate, or a memoized per-rate bank for
// off-rate acquisitions (designed on first use, then cached).
func (d *Device) bankFor(fs float64) (*filterBank, error) {
	if fs == d.bank.fs {
		return d.bank, nil
	}
	if cached, ok := d.banks.Load(fs); ok {
		return cached.(*filterBank), nil
	}
	b, err := designBank(d.cfg, fs)
	if err != nil {
		return nil, err
	}
	actual, _ := d.banks.LoadOrStore(fs, b)
	return actual.(*filterBank), nil
}

// getArena checks a reset scratch arena out of the device pool.
func (d *Device) getArena() *dsp.Arena {
	a := d.arenas.Get().(*dsp.Arena)
	a.Reset()
	return a
}

// Configuration errors.
var (
	ErrBadConfig = errors.New("core: invalid device configuration")
	ErrNoECG     = errors.New("core: no QRS complexes detected")
)

// NewDevice validates the configuration and builds a device.
func NewDevice(cfg Config) (*Device, error) {
	if cfg.FS <= 0 {
		return nil, ErrBadConfig
	}
	if cfg.InjectionFreq <= 0 {
		return nil, ErrBadConfig
	}
	if cfg.ECGFrontEnd.SampleRate == 0 {
		cfg.ECGFrontEnd = afe.DefaultECG()
	}
	if cfg.ICGFrontEnd.SampleRate == 0 {
		cfg.ICGFrontEnd = afe.DefaultICG()
	}
	cfg.ECGFrontEnd.SampleRate = cfg.FS
	cfg.ICGFrontEnd.SampleRate = cfg.FS
	cfg.ICGFrontEnd.CarrierFreq = cfg.InjectionFreq
	if err := cfg.ECGFrontEnd.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.ICGFrontEnd.Validate(); err != nil {
		return nil, err
	}
	if cfg.MCU.ClockHz == 0 {
		cfg.MCU = mcu.DefaultSTM32L151()
	}
	if cfg.Body.BloodResistivity == 0 {
		cfg.Body = hemo.DefaultBody()
	}
	if cfg.OutlierK == 0 {
		cfg.OutlierK = 4
	}
	d := &Device{cfg: cfg, touch: bioimp.TouchInstrument()}
	d.arenas.New = func() any { return new(dsp.Arena) }
	if !cfg.DisableGate {
		gcfg := cfg.Gate
		gcfg.FS = cfg.FS
		d.gate = quality.NewBeatGate(gcfg)
		d.cfg.Gate = d.gate.Config()
		d.gateStreams.New = func() any { return d.gate.NewStream() }
	}
	var err error
	if d.bank, err = designBank(cfg, cfg.FS); err != nil {
		return nil, err
	}
	return d, nil
}

// Gate returns the device's per-beat quality gate (nil when disabled).
func (d *Device) Gate() *quality.BeatGate { return d.gate }

// getGateStream checks a reset gate stream out of the device pool; it
// returns nil when gating is disabled.
func (d *Device) getGateStream() *quality.GateStream {
	if d.gate == nil {
		return nil
	}
	gs := d.gateStreams.Get().(*quality.GateStream)
	gs.Reset()
	return gs
}

// Config returns the resolved configuration.
func (d *Device) Config() Config { return d.cfg }

// Acquisition bundles the sampled channels of one touch session.
type Acquisition struct {
	FS   float64
	ECG  []float64 // quantized ECG (mV)
	Z    []float64 // quantized impedance (Ohm)
	IMU  []imu.Sample
	Meas *bioimp.Measurement
	// Rec is the generating ground truth; evaluation-only, never used by
	// Process.
	Rec *physio.Recording
}

// VerifyPosition classifies the arm position from the acquisition's IMU
// window (the accelerometer/gyroscope of Section III-A "distinguish
// different positions") and reports whether it matches the configured
// position. ok is false when the classifier is not confident.
func (d *Device) VerifyPosition(acq *Acquisition) (detected bioimp.Position, match, ok bool) {
	detected, ok = imu.Classify(acq.IMU)
	return detected, ok && detected == d.cfg.Position, ok
}

// Acquire simulates a touch measurement of the given duration: the subject
// model produces the physiology, the body model turns it into a measured
// impedance and touch-lead ECG at the configured injection frequency and
// position, and the front ends sample and quantize both channels.
func (d *Device) Acquire(sub *physio.Subject, duration float64) (*Acquisition, error) {
	gen := physio.DefaultGenConfig()
	gen.Duration = duration
	gen.FS = d.cfg.FS
	rec := sub.Generate(gen)
	meas := bioimp.MeasureDevice(sub, rec, d.touch, d.cfg.InjectionFreq, d.cfg.Position)
	rng := physio.NewRNG(sub.Seed*31 + int64(d.cfg.Position))
	ecgQ := d.cfg.ECGFrontEnd.Acquire(meas.ECG, rng)
	zQ := d.cfg.ICGFrontEnd.Acquire(meas.Z, rng)
	// Two seconds of IMU data for position verification, with the
	// subject's position-dependent motion level.
	imuCfg := imu.DefaultConfig()
	pi := int(d.cfg.Position) - 1
	if pi >= 0 && pi < 3 {
		imuCfg.MotionLevel = sub.PosMotion[pi] - 1
	}
	samples := imu.Synthesize(rng, imuCfg, d.cfg.Position, int(2*imuCfg.FS))
	return &Acquisition{FS: d.cfg.FS, ECG: ecgQ, Z: zQ, IMU: samples, Meas: meas, Rec: rec}, nil
}

// AcquireReference simulates the traditional thoracic-electrode
// acquisition used as the study's gold standard.
func (d *Device) AcquireReference(sub *physio.Subject, duration float64) (*Acquisition, error) {
	gen := physio.DefaultGenConfig()
	gen.Duration = duration
	gen.FS = d.cfg.FS
	rec := sub.Generate(gen)
	ins := bioimp.TraditionalInstrument()
	meas := bioimp.MeasureReference(sub, rec, ins, d.cfg.InjectionFreq)
	rng := physio.NewRNG(sub.Seed * 17)
	ecgQ := d.cfg.ECGFrontEnd.Acquire(meas.ECG, rng)
	zQ := d.cfg.ICGFrontEnd.Acquire(meas.Z, rng)
	return &Acquisition{FS: d.cfg.FS, ECG: ecgQ, Z: zQ, Meas: meas, Rec: rec}, nil
}

// Output is the result of processing one acquisition. Beats carries
// every analyzable beat with its Quality score and the gate's Accepted
// flag; Summary (and Gated.Gated) aggregate only the accepted beats.
// Accepted is the per-beat signal-quality decision alone: the residual
// k-MAD STI screen inside SummarizeGated narrows the Summary but never
// clears Accepted, because a series-level screen cannot be applied
// beat-by-beat and the batch and streaming flags must agree. Consumers
// filtering on Accepted (radio transmission) therefore match the
// streaming engine's behavior, not the pre-gate RejectOutliers batch
// behavior.
type Output struct {
	RPeaks []int
	TPeaks []int
	Beats  []hemo.BeatParams
	// Summary aggregates the accepted beats (with the residual k-MAD
	// STI screen); Gated pairs it with the ungated Raw view and the
	// quality-weighted means.
	Summary hemo.Summary
	Gated   hemo.GatedSummary
	// AcceptRate is the gate's acceptance over every delineated beat —
	// failed delineations count as rejected, exactly like
	// Streamer.AcceptRate, so both engines feed PMU.DecideGated the
	// same number (1 when gating is disabled). Gated.AcceptRate is the
	// narrower emitted-beat measure (accepted / analyzable).
	AcceptRate float64
	Yield      float64 // fraction of RR segments successfully analyzed
	Z0         float64 // mean measured base impedance (Ohm)
	Cost       *mcu.Counter
	CondECG    []float64 // conditioned ECG (after the Section IV-A chain)
	ICGTrack   []float64 // filtered ICG (-dZ/dt after 20 Hz low-pass)
	// Ensemble carries the parameters measured on the R-aligned averaged
	// beat when Config.Ensemble is set (RR and HR are session means).
	Ensemble *hemo.BeatParams
}

// DutyCycle prices the processing of this output's window on the device
// MCU, including the calibrated firmware overhead.
func (d *Device) DutyCycle(out *Output, windowSeconds float64) float64 {
	return d.cfg.MCU.DutyCycle(out.Cost.Cycles(mcu.CortexM3SoftFloat()), windowSeconds)
}

// RawDutyCycle is the purely algorithmic duty-cycle lower bound.
func (d *Device) RawDutyCycle(out *Output, windowSeconds float64) float64 {
	return d.cfg.MCU.RawDutyCycle(out.Cost.Cycles(mcu.CortexM3SoftFloat()), windowSeconds)
}

// Run acquires and processes in one call.
func (d *Device) Run(sub *physio.Subject, duration float64) (*Acquisition, *Output, error) {
	acq, err := d.Acquire(sub, duration)
	if err != nil {
		return nil, nil, err
	}
	out, err := d.Process(acq)
	if err != nil {
		return acq, nil, err
	}
	return acq, out, nil
}

// MeanZ returns the average impedance of an acquisition (the Z0 the device
// reports).
func (a *Acquisition) MeanZ() float64 { return dsp.Mean(a.Z) }
