package core

import (
	"math"
	"testing"

	"repro/internal/bioimp"
	"repro/internal/ecg"
	"repro/internal/hw/mcu"
	"repro/internal/icg"
	"repro/internal/physio"
)

func device(t *testing.T, mut func(*Config)) *Device {
	t.Helper()
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDeviceValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.FS = 0
	if _, err := NewDevice(bad); err != ErrBadConfig {
		t.Errorf("FS=0: %v", err)
	}
	bad2 := DefaultConfig()
	bad2.InjectionFreq = -1
	if _, err := NewDevice(bad2); err != ErrBadConfig {
		t.Errorf("freq<0: %v", err)
	}
	d := device(t, nil)
	if d.Config().OutlierK != 4 {
		t.Error("default outlier K")
	}
}

func TestRunEndToEndAllSubjects(t *testing.T) {
	d := device(t, nil)
	for _, sub := range physio.Subjects() {
		s := sub
		acq, out, err := d.Run(&s, 30)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		nb := len(out.Beats)
		truthBeats := acq.Rec.Truth.Beats()
		if float64(nb) < 0.65*float64(truthBeats) {
			t.Errorf("%s: only %d of %d beats produced parameters", s.Name, nb, truthBeats)
		}
		// HR within 5 bpm of the ground truth.
		if hr := out.Summary.HR.Mean; math.Abs(hr-acq.Rec.Truth.MeanHR()) > 5 {
			t.Errorf("%s: HR = %.1f, truth %.1f", s.Name, hr, acq.Rec.Truth.MeanHR())
		}
		// PEP / LVET near the truth on average, within two documented
		// systematic effects (EXPERIMENTS.md, E7): the paper's B-point
		// rule marks "Bnew" at the B notch, 10-20 ms before the upstroke
		// onset the truth annotates, and the touch channel's calibrated
		// contact artifact adds up to ~40 ms of late bias on the
		// fallback branch. Clean-channel accuracy is pinned tighter by
		// the icg package tests.
		truthPEP := mean(acq.Rec.Truth.PEP)
		truthLVET := mean(acq.Rec.Truth.LVET)
		if pep := out.Summary.PEP.Mean; math.Abs(pep-truthPEP) > 0.045 {
			t.Errorf("%s: PEP = %.4f, truth %.4f", s.Name, pep, truthPEP)
		}
		if lvet := out.Summary.LVET.Mean; math.Abs(lvet-truthLVET) > 0.05 {
			t.Errorf("%s: LVET = %.4f, truth %.4f", s.Name, lvet, truthLVET)
		}
		if pep := out.Summary.PEP.Mean; pep < 0.05 || pep > 0.18 {
			t.Errorf("%s: PEP = %.4f outside the physiological range", s.Name, pep)
		}
		if lvet := out.Summary.LVET.Mean; lvet < 0.2 || lvet > 0.42 {
			t.Errorf("%s: LVET = %.4f outside the physiological range", s.Name, lvet)
		}
		if out.Yield < 0.85 {
			t.Errorf("%s: yield = %.2f", s.Name, out.Yield)
		}
		if out.Z0 <= 0 {
			t.Errorf("%s: Z0 = %g", s.Name, out.Z0)
		}
	}
}

func mean(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	if len(x) == 0 {
		return 0
	}
	return s / float64(len(x))
}

func TestDutyCycleInPaperBand(t *testing.T) {
	// Experiment E8: the full pipeline at 250 Hz must land in the
	// paper's 40-50% duty band on the 32 MHz soft-float STM32L151 with
	// the calibrated overhead factor, and well below 100% raw.
	d := device(t, nil)
	s, _ := physio.SubjectByID(1)
	_, out, err := d.Run(&s, 30)
	if err != nil {
		t.Fatal(err)
	}
	duty := d.DutyCycle(out, 30)
	if duty < 0.30 || duty > 0.60 {
		t.Errorf("duty cycle = %.1f%%, want within 30-60%% (paper: 40-50%%)", duty*100)
	}
	raw := d.RawDutyCycle(out, 30)
	if raw <= 0 || raw >= duty {
		t.Errorf("raw duty %.3f should be positive and below calibrated %.3f", raw, duty)
	}
}

func TestNaiveMorphCostsMore(t *testing.T) {
	s, _ := physio.SubjectByID(2)
	fast := device(t, nil)
	slow := device(t, func(c *Config) { c.NaiveMorph = true })
	_, outF, err := fast.Run(&s, 30)
	if err != nil {
		t.Fatal(err)
	}
	_, outS, err := slow.Run(&s, 30)
	if err != nil {
		t.Fatal(err)
	}
	m := mcu.CortexM3SoftFloat()
	if outS.Cost.Cycles(m) <= outF.Cost.Cycles(m) {
		t.Error("naive morphology should cost more cycles")
	}
	// Results however must be identical (same math).
	if len(outF.Beats) != len(outS.Beats) {
		t.Errorf("beat counts differ: %d vs %d", len(outF.Beats), len(outS.Beats))
	}
}

func TestCausalFiltersAblation(t *testing.T) {
	// Ablation A5: causal (single-pass) filters halve the filter cost
	// but bias the point timing; PEP should show a visible shift.
	s, _ := physio.SubjectByID(3)
	zero := device(t, nil)
	causal := device(t, func(c *Config) { c.CausalFilters = true })
	_, outZ, err := zero.Run(&s, 30)
	if err != nil {
		t.Fatal(err)
	}
	_, outC, err := causal.Run(&s, 30)
	if err != nil {
		t.Fatal(err)
	}
	m := mcu.CortexM3SoftFloat()
	if outC.Cost.Cycles(m) >= outZ.Cost.Cycles(m) {
		t.Error("causal filtering should be cheaper")
	}
	if outC.Summary.Beats == 0 {
		t.Fatal("causal pipeline produced no beats")
	}
}

func TestPositionAffectsZ0(t *testing.T) {
	s, _ := physio.SubjectByID(1)
	d1 := device(t, nil)
	d2 := device(t, func(c *Config) { c.Position = bioimp.Position2 })
	a1, err := d1.Acquire(&s, 30)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := d2.Acquire(&s, 30)
	if err != nil {
		t.Fatal(err)
	}
	if a2.MeanZ() <= a1.MeanZ() {
		t.Errorf("position 2 Z0 (%.1f) should exceed position 1 (%.1f)",
			a2.MeanZ(), a1.MeanZ())
	}
}

func TestReferenceAcquisition(t *testing.T) {
	s, _ := physio.SubjectByID(4)
	d := device(t, nil)
	ref, err := d.AcquireReference(&s, 30)
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.Process(ref)
	if err != nil {
		t.Fatal(err)
	}
	// Thoracic Z0 is far smaller than hand-to-hand.
	if ref.MeanZ() > 100 {
		t.Errorf("thoracic Z0 = %.1f, expected tens of Ohm", ref.MeanZ())
	}
	if out.Summary.Beats == 0 {
		t.Fatal("no beats on the reference signal")
	}
	// The clean reference channel recovers the systolic time intervals
	// with at most the definitional offset of the paper's "Bnew" rule
	// (the 3rd-derivative B sits at the notch, 10-20 ms before the
	// upstroke onset annotated as truth).
	truthPEP := mean(ref.Rec.Truth.PEP)
	truthLVET := mean(ref.Rec.Truth.LVET)
	if pep := out.Summary.PEP.Mean; math.Abs(pep-truthPEP) > 0.025 {
		t.Errorf("reference PEP = %.4f, truth %.4f", pep, truthPEP)
	}
	if lvet := out.Summary.LVET.Mean; math.Abs(lvet-truthLVET) > 0.03 {
		t.Errorf("reference LVET = %.4f, truth %.4f", lvet, truthLVET)
	}
}

func TestCarvalhoVariantRuns(t *testing.T) {
	s, _ := physio.SubjectByID(1)
	d := device(t, func(c *Config) { c.XRule = icg.XCarvalho })
	_, out, err := d.Run(&s, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.TPeaks) == 0 {
		t.Error("Carvalho variant should compute T peaks")
	}
	if out.Summary.Beats == 0 {
		t.Error("no beats")
	}
}

func TestProcessFlatlineFails(t *testing.T) {
	d := device(t, nil)
	n := 250 * 10
	acq := &Acquisition{FS: 250, ECG: make([]float64, n), Z: make([]float64, n)}
	if _, err := d.Process(acq); err == nil {
		t.Error("flatline should fail")
	}
}

func TestPMUPolicy(t *testing.T) {
	p := DefaultPMU()
	if m := p.Decide(80, 0.9); m != ModeContinuous {
		t.Errorf("healthy: %v", m)
	}
	if m := p.Decide(20, 0.9); m != ModeEco {
		t.Errorf("low battery: %v", m)
	}
	if m := p.Decide(5, 0.9); m != ModeSpotCheck {
		t.Errorf("critical battery: %v", m)
	}
	if m := p.Decide(80, 0.2); m != ModeEco {
		t.Errorf("bad contact: %v", m)
	}
	if ModeContinuous.String() != "continuous" || PowerMode(9).String() != "mode-?" {
		t.Error("mode names")
	}
}

func TestPMULifetimes(t *testing.T) {
	// Eco must beat continuous, spot-check must beat both, and
	// continuous at 50% duty must land near the paper's 106 h.
	cont := LifetimeHours(ModeContinuous, 0.5)
	eco := LifetimeHours(ModeEco, 0.5)
	spot := LifetimeHours(ModeSpotCheck, 0.5)
	if !(spot > eco && eco > cont) {
		t.Errorf("lifetime ordering: cont=%.0f eco=%.0f spot=%.0f", cont, eco, spot)
	}
	if cont < 105 || cont > 108 {
		t.Errorf("continuous lifetime = %.1f h, want ~106", cont)
	}
}

func TestDeterministicRuns(t *testing.T) {
	s, _ := physio.SubjectByID(5)
	d := device(t, nil)
	_, o1, err := d.Run(&s, 20)
	if err != nil {
		t.Fatal(err)
	}
	_, o2, err := d.Run(&s, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(o1.Beats) != len(o2.Beats) {
		t.Fatal("nondeterministic beat count")
	}
	for i := range o1.Beats {
		if o1.Beats[i].PEP != o2.Beats[i].PEP || o1.Beats[i].LVET != o2.Beats[i].LVET {
			t.Fatal("nondeterministic parameters")
		}
	}
}

func TestEctopicRhythmRobustness(t *testing.T) {
	// An irregular rhythm (10% ectopics) must not break the pipeline:
	// beats still come out, HR tracks the (irregular) truth, and the
	// outlier rejection protects the STI means.
	s, _ := physio.SubjectByID(2)
	d := device(t, nil)
	gen := physio.DefaultGenConfig()
	gen.EctopicProb = 0.10
	rec := s.Generate(gen)
	meas := bioimp.MeasureDevice(&s, rec, bioimp.TouchInstrument(), 50e3, bioimp.Position1)
	acq := &Acquisition{FS: 250, ECG: meas.ECG, Z: meas.Z, Meas: meas, Rec: rec}
	out, err := d.Process(acq)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Beats) < 15 {
		t.Fatalf("only %d beats on ectopic rhythm", len(out.Beats))
	}
	if math.Abs(out.Summary.HR.Mean-rec.Truth.MeanHR()) > 8 {
		t.Errorf("HR = %.1f vs truth %.1f", out.Summary.HR.Mean, rec.Truth.MeanHR())
	}
	if out.Summary.PEP.Mean < 0.05 || out.Summary.PEP.Mean > 0.2 {
		t.Errorf("PEP = %.4f under ectopy", out.Summary.PEP.Mean)
	}
}

func TestRAMBudgets(t *testing.T) {
	m := mcu.DefaultSTM32L151()
	batch := BatchRAM(250, 30)
	streaming := StreamingRAM(250, DefaultStreamConfig())
	// The batch working set must NOT fit the STM32L151 (this is why the
	// firmware streams), while the rolling-window engine must fit.
	if m.FitsRAM(batch.Total()) {
		t.Errorf("batch %d bytes unexpectedly fits %d RAM", batch.Total(), m.RAMBytes)
	}
	if !m.FitsRAM(streaming.Total()) {
		t.Errorf("streaming %d bytes does not fit %d RAM", streaming.Total(), m.RAMBytes)
	}
	if batch.Total() <= streaming.Total() {
		t.Error("batch should dominate streaming")
	}
	if batch.Mode != "batch" || streaming.Mode != "streaming" {
		t.Error("mode labels")
	}
}

func TestNaiveQRSDegradesUnderDrift(t *testing.T) {
	// The ablation behind using Pan-Tompkins: on a drifting, noisy ECG
	// the fixed-threshold detector loses beats that PT keeps.
	s, _ := physio.SubjectByID(4)
	gen := physio.DefaultGenConfig()
	gen.ECGBaselineDrift = 0.6
	gen.ECGNoiseStd = 0.04
	rec := s.Generate(gen)
	cond, err := ecg.Clean(rec.ECG, 250)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := ecg.DetectQRS(cond, ecg.DefaultPT(250))
	if err != nil {
		t.Fatal(err)
	}
	// The naive detector runs on the raw (drifting) ECG, as a firmware
	// shortcut would.
	naive := ecg.DetectQRSNaive(rec.ECG, 250, 0.5)
	tol := 13
	tpPT, _, fnPT := ecg.MatchPeaks(pt.RPeaks, rec.Truth.RPeaks, tol)
	tpN, _, fnN := ecg.MatchPeaks(naive, rec.Truth.RPeaks, tol)
	sePT := ecg.Sensitivity(tpPT, fnPT)
	seN := ecg.Sensitivity(tpN, fnN)
	if sePT < 0.95 {
		t.Errorf("PT sensitivity = %.3f", sePT)
	}
	if seN >= sePT {
		t.Errorf("naive (%.3f) should not beat Pan-Tompkins (%.3f) under drift", seN, sePT)
	}
}

func TestVerifyPositionFromIMU(t *testing.T) {
	s, _ := physio.SubjectByID(1)
	for _, pos := range bioimp.Positions() {
		d := device(t, func(c *Config) { c.Position = pos })
		acq, err := d.Acquire(&s, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(acq.IMU) == 0 {
			t.Fatal("no IMU samples acquired")
		}
		detected, match, ok := d.VerifyPosition(acq)
		if !ok {
			t.Errorf("%v: classifier not confident", pos)
			continue
		}
		if !match || detected != pos {
			t.Errorf("%v detected as %v", pos, detected)
		}
	}
}

func TestSamplingRateRobustness(t *testing.T) {
	// The device spec allows 125 Hz - 16 kHz sampling; the pipeline is
	// rate-generic. Verify the full chain at 125 and 500 Hz.
	s, _ := physio.SubjectByID(1)
	for _, fs := range []float64{125, 500} {
		d := device(t, func(c *Config) { c.FS = fs })
		acq, out, err := d.Run(&s, 30)
		if err != nil {
			t.Fatalf("fs=%g: %v", fs, err)
		}
		if len(out.Beats) < 15 {
			t.Errorf("fs=%g: only %d beats", fs, len(out.Beats))
		}
		if hr := out.Summary.HR.Mean; math.Abs(hr-acq.Rec.Truth.MeanHR()) > 5 {
			t.Errorf("fs=%g: HR %.1f vs truth %.1f", fs, hr, acq.Rec.Truth.MeanHR())
		}
		if pep := out.Summary.PEP.Mean; pep < 0.05 || pep > 0.2 {
			t.Errorf("fs=%g: PEP %.4f", fs, pep)
		}
	}
}
