package core

import (
	"math"

	"repro/internal/ecg"
	"repro/internal/hw/mcu"
)

// costEstimator prices each pipeline stage in operation counts. The
// counts model a straightforward C implementation of each algorithm on
// the STM32L151 (soft-float Cortex-M3); mcu.CostModel converts them to
// cycles and mcu.STM32L151.DutyCycle applies the calibrated firmware
// overhead (experiment E8 in DESIGN.md).
type costEstimator struct {
	counter *mcu.Counter
	cfg     Config
}

func newCostEstimator(cfg Config) *costEstimator {
	return &costEstimator{counter: mcu.NewCounter(), cfg: cfg}
}

// baseline prices the morphological baseline estimation plus subtraction.
func (c *costEstimator) baseline(n int, cfg ecg.BaselineConfig) {
	l1 := int(cfg.L1Seconds*cfg.FS) | 1
	l2 := int(cfg.L1Seconds*cfg.L2Factor*cfg.FS) | 1
	nn := int64(n)
	if cfg.Naive {
		// Four sliding-window scans (erode+dilate, twice), each
		// comparing k samples per output.
		ops := nn * int64(2*l1+2*l2)
		c.counter.Add("ecg-baseline", mcu.OpFloatCmp, ops)
		c.counter.Add("ecg-baseline", mcu.OpMemory, ops)
	} else {
		// Monotonic deque: amortized ~3 comparisons/sample per scan.
		ops := nn * 4 * 3
		c.counter.Add("ecg-baseline", mcu.OpFloatCmp, ops)
		c.counter.Add("ecg-baseline", mcu.OpMemory, ops*2)
		c.counter.Add("ecg-baseline", mcu.OpBranch, ops)
	}
	// Subtraction pass.
	c.counter.Add("ecg-baseline", mcu.OpFloatAdd, nn)
	c.counter.Add("ecg-baseline", mcu.OpMemory, 2*nn)
}

// fir prices an FIR filter of the given tap count over n samples, passes
// = 1 (causal) or 2 (forward-backward), as direct-form MACs.
//
// The host DSP layer runs wide kernels through real-input FFT
// overlap-save instead (dsp.useFFTConv: one half-size transform pair
// per block, roughly 20*log2(N/2)+30 real flops per output at block
// size N against 2*taps direct, handicapped 1.5x — crossover a little
// above 32 taps), but the MCU model deliberately keeps direct-form
// pricing: the
// STM32L151 has no FPU, a soft-float radix-2 butterfly costs ~10x a
// soft-float MAC (function-call overhead per float op dwarfs the
// multiply-count saving), and the firmware's widest kernel — the 33-tap
// QRS band-pass — sits at the crossover where the transform bookkeeping
// erases the asymptotic win. E8's duty-cycle calibration therefore
// remains anchored to the direct implementation the paper's firmware
// ships.
func (c *costEstimator) fir(n, taps, passes int) {
	mac := int64(n) * int64(taps) * int64(passes)
	c.counter.Add("ecg-bandpass", mcu.OpFloatMul, mac)
	c.counter.Add("ecg-bandpass", mcu.OpFloatAdd, mac)
	c.counter.Add("ecg-bandpass", mcu.OpMemory, 2*mac)
}

// sos prices a biquad cascade: 5 multiplies and 4 adds per section per
// sample.
func (c *costEstimator) sos(n, sections, passes int) {
	per := int64(n) * int64(sections) * int64(passes)
	c.counter.Add("icg-lowpass", mcu.OpFloatMul, 5*per)
	c.counter.Add("icg-lowpass", mcu.OpFloatAdd, 4*per)
	c.counter.Add("icg-lowpass", mcu.OpMemory, 3*per)
}

// panTompkins prices the QRS detector stages.
func (c *costEstimator) panTompkins(n int) {
	nn := int64(n)
	// Band-pass: two biquads, causal.
	c.counter.Add("qrs-detect", mcu.OpFloatMul, 10*nn)
	c.counter.Add("qrs-detect", mcu.OpFloatAdd, 8*nn)
	// Derivative (4 adds, 2 muls), squaring (1 mul), integration
	// (2 adds, 1 div amortized via reciprocal multiply).
	c.counter.Add("qrs-detect", mcu.OpFloatAdd, 6*nn)
	c.counter.Add("qrs-detect", mcu.OpFloatMul, 4*nn)
	// Threshold logic.
	c.counter.Add("qrs-detect", mcu.OpFloatCmp, 4*nn)
	c.counter.Add("qrs-detect", mcu.OpBranch, 2*nn)
	c.counter.Add("qrs-detect", mcu.OpMemory, 6*nn)
}

// derivative prices the ICG = -dZ/dt stage.
func (c *costEstimator) derivative(n int) {
	nn := int64(n)
	c.counter.Add("icg-derivative", mcu.OpFloatAdd, nn)
	c.counter.Add("icg-derivative", mcu.OpFloatMul, nn)
	c.counter.Add("icg-derivative", mcu.OpMemory, 2*nn)
}

// pointDetect prices the per-beat B/C/X detection: median (insertion sort
// on the segment), moving average, three derivative passes, the 40-80%
// line fit and the directional scans.
func (c *costEstimator) pointDetect(beats, avgBeatLen int) {
	if beats <= 0 || avgBeatLen <= 0 {
		return
	}
	m := int64(avgBeatLen)
	b := int64(beats)
	sortOps := int64(float64(m) * math.Log2(float64(m)+1))
	c.counter.Add("icg-points", mcu.OpFloatCmp, b*(sortOps+4*m))
	c.counter.Add("icg-points", mcu.OpFloatAdd, b*5*m)
	c.counter.Add("icg-points", mcu.OpFloatMul, b*2*m)
	c.counter.Add("icg-points", mcu.OpFloatDiv, b*8)
	c.counter.Add("icg-points", mcu.OpMemory, b*8*m)
	c.counter.Add("icg-points", mcu.OpBranch, b*2*m)
}

// gate prices the per-beat quality gate: the running-extreme scan is
// one compare per raw sample (amortized here per beat at the mean RR),
// plus the segment resample-and-correlate against the 64-point ensemble
// template, the saturation count and the second-difference noise scan.
func (c *costEstimator) gate(beats int) {
	if beats <= 0 {
		return
	}
	b := int64(beats)
	seg := int64(c.cfg.FS) // ~one RR interval of samples per beat
	tmpl := int64(64)
	c.counter.Add("quality-gate", mcu.OpFloatCmp, b*(3*seg+tmpl))
	c.counter.Add("quality-gate", mcu.OpFloatAdd, b*(3*seg+6*tmpl))
	c.counter.Add("quality-gate", mcu.OpFloatMul, b*(2*seg+5*tmpl))
	c.counter.Add("quality-gate", mcu.OpMemory, b*(4*seg+4*tmpl))
	c.counter.Add("quality-gate", mcu.OpBranch, b*seg)
}

// hemo prices the parameter computation (a handful of float ops per beat).
func (c *costEstimator) hemo(beats int) {
	b := int64(beats)
	c.counter.Add("hemodynamics", mcu.OpFloatMul, 12*b)
	c.counter.Add("hemodynamics", mcu.OpFloatAdd, 8*b)
	c.counter.Add("hemodynamics", mcu.OpFloatDiv, 6*b)
}

// radio prices beat-record marshalling and frame CRC.
func (c *costEstimator) radio(beats int) {
	b := int64(beats)
	// CRC16 over ~20 bytes: 8 shifts/xors per byte.
	c.counter.Add("radio-frames", mcu.OpIntALU, 20*8*2*b)
	c.counter.Add("radio-frames", mcu.OpMemory, 40*b)
}

// ensemble prices R-aligned beat averaging: one resample (2 mul + 1 add
// per output sample) and one accumulate per beat.
func (c *costEstimator) ensemble(beats, length int) {
	ops := int64(beats) * int64(length)
	c.counter.Add("icg-ensemble", mcu.OpFloatMul, 2*ops)
	c.counter.Add("icg-ensemble", mcu.OpFloatAdd, 2*ops)
	c.counter.Add("icg-ensemble", mcu.OpMemory, 3*ops)
}
