package core

import (
	"testing"

	"repro/internal/event"
	"repro/internal/hemo"
	"repro/internal/physio"
)

// Event-layer laws at the streamer level:
//
//   - Event/legacy parity: every BeatParams the returned-slice path
//     yields appears exactly once as a KindBeat event with identical
//     fields, in identical order — for every chunking including
//     1-sample pushes.
//   - Event-sequence chunk invariance: the FULL typed stream (beats,
//     health-floor transitions, governor mode flips) is byte-identical
//     for any chunking, because every event is emitted at the beat
//     where it became true.
//   - Reset rewinds the per-session event state (sink, stamp, governor)
//     so pooled streamers carry no residue.

// pushAll drives a streamer over a whole two-channel recording in fixed
// chunks and returns whatever the legacy path emitted.
func pushAll(st *Streamer, ecg, z []float64, chunk int) []hemo.BeatParams {
	var out []hemo.BeatParams
	for pos := 0; pos < len(ecg); pos += chunk {
		end := pos + chunk
		if end > len(ecg) {
			end = len(ecg)
		}
		out = append(out, st.Push(ecg[pos:end], z[pos:end])...)
	}
	return append(out, st.Flush()...)
}

func TestStreamerEventLegacyParity(t *testing.T) {
	dev, err := NewDevice(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := physio.SubjectByID(1)
	acq, err := dev.Acquire(&sub, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 7, 50, 250, len(acq.ECG)} {
		legacy := dev.NewStreamer(StreamConfig{})
		want := pushAll(legacy, acq.ECG, acq.Z, chunk)

		buf := event.NewBuffer(4096)
		st := dev.NewStreamer(StreamConfig{})
		st.Emit(buf, 17)
		for pos := 0; pos < len(acq.ECG); pos += chunk {
			end := pos + chunk
			if end > len(acq.ECG) {
				end = len(acq.ECG)
			}
			if got := st.Push(acq.ECG[pos:end], acq.Z[pos:end]); got != nil {
				t.Fatalf("chunk %d: Push returned %d beats with a sink armed", chunk, len(got))
			}
		}
		if got := st.Flush(); got != nil {
			t.Fatalf("chunk %d: Flush returned %d beats with a sink armed", chunk, len(got))
		}
		evs := buf.Drain(nil)
		var beats []event.Event
		lastBeatIdx := 0
		for _, e := range evs {
			if e.Session != 17 {
				t.Fatalf("chunk %d: event stamped session %d, want 17", chunk, e.Session)
			}
			if e.Beat < lastBeatIdx {
				t.Fatalf("chunk %d: beat index went backwards (%d after %d)", chunk, e.Beat, lastBeatIdx)
			}
			lastBeatIdx = e.Beat
			if e.Kind == event.KindBeat {
				beats = append(beats, e)
			}
		}
		if len(beats) != len(want) {
			t.Fatalf("chunk %d: %d beat events, legacy path emitted %d beats", chunk, len(beats), len(want))
		}
		for i, e := range beats {
			if e.Params != want[i] {
				t.Fatalf("chunk %d beat %d: event params differ from legacy\nevent:  %+v\nlegacy: %+v",
					chunk, i, e.Params, want[i])
			}
			// The stamp: signal time of the closing R — strictly after
			// the beat's own (opening) R anchor.
			if e.TimeS <= e.Params.TimeS {
				t.Fatalf("chunk %d beat %d: stamp %.3f s not after beat anchor %.3f s", chunk, i, e.TimeS, e.Params.TimeS)
			}
		}
	}
}

// eventKey flattens an event for byte-comparison across runs.
func eventKey(e event.Event) [10]float64 {
	below := 0.0
	if e.Below {
		below = 1
	}
	return [10]float64{
		float64(e.Kind), float64(e.Session), float64(e.Beat), e.TimeS,
		e.Params.TimeS, e.AcceptEWMA, below, e.Floor,
		float64(e.Mode), float64(e.PrevMode),
	}
}

// dropoutTrace builds the event-layer stimulus: a live recording whose
// impedance channel flattens for a mid-session stretch (a finger
// lifting off the ICG electrodes while the ECG lead holds), so beats
// keep arriving but the gate rejects them — the accept EWMA decays
// below the floor, the governor drops to eco, and the EWMA recovers
// once contact returns.
func dropoutTrace(t *testing.T, dev *Device) (ecg, z []float64) {
	t.Helper()
	sub, _ := physio.SubjectByID(2)
	acq, err := dev.Acquire(&sub, 26)
	if err != nil {
		t.Fatal(err)
	}
	fs := dev.Config().FS
	z = append([]float64(nil), acq.Z...)
	lo, hi := int(10*fs), int(17*fs)
	for i := lo; i < hi; i++ {
		z[i] = z[lo-1]
	}
	return acq.ECG, z
}

// eventRun streams the trace with the health floor and governor armed
// and returns the full typed event sequence.
func eventRun(t *testing.T, dev *Device, ecg, z []float64, chunk int) []event.Event {
	t.Helper()
	st := dev.NewStreamer(StreamConfig{})
	st.SetHealthFloor(0.45)
	// A governor tight enough to flip inside the 26 s trace: short
	// dwell, fast smoothing (the default 20 s dwell is a serving-scale
	// setting).
	pmu := DefaultPMU()
	pmu.MinDwellS = 4
	pmu.RateBeta = 0.4
	st.ArmGovernor(pmu)
	buf := event.NewBuffer(1 << 14)
	st.Emit(buf, 1)
	for pos := 0; pos < len(ecg); pos += chunk {
		end := pos + chunk
		if end > len(ecg) {
			end = len(ecg)
		}
		st.Push(ecg[pos:end], z[pos:end])
	}
	st.Flush()
	return buf.Drain(nil)
}

func TestStreamerEventSequenceChunkInvariant(t *testing.T) {
	dev, err := NewDevice(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ecg, z := dropoutTrace(t, dev)

	ref := eventRun(t, dev, ecg, z, 125)
	var nBeat, nHealth, nMode int
	for _, e := range ref {
		switch e.Kind {
		case event.KindBeat:
			nBeat++
		case event.KindHealth:
			nHealth++
		case event.KindMode:
			nMode++
		}
	}
	if nBeat == 0 || nHealth == 0 || nMode == 0 {
		t.Fatalf("trace must exercise all streamer kinds: %d beats, %d health, %d mode", nBeat, nHealth, nMode)
	}
	// The dead tail must have produced a below-floor transition and a
	// continuous->eco governor flip, in that order within their beat.
	for _, chunk := range []int{1, 33, 250, 1000} {
		got := eventRun(t, dev, ecg, z, chunk)
		if len(got) != len(ref) {
			t.Fatalf("chunk %d: %d events, reference has %d", chunk, len(got), len(ref))
		}
		for i := range got {
			if eventKey(got[i]) != eventKey(ref[i]) || got[i].Params != ref[i].Params {
				t.Fatalf("chunk %d event %d deviates\ngot: %+v\nref: %+v", chunk, i, got[i], ref[i])
			}
		}
	}
}

// Per-attempt ordering law: KindBeat, then KindHealth, then KindMode —
// never interleaved otherwise within one beat index.
func TestStreamerEventOrderWithinBeat(t *testing.T) {
	dev, err := NewDevice(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ecg, z := dropoutTrace(t, dev)
	evs := eventRun(t, dev, ecg, z, 125)
	rank := map[event.Kind]int{event.KindBeat: 0, event.KindHealth: 1, event.KindMode: 2}
	for i := 1; i < len(evs); i++ {
		a, b := evs[i-1], evs[i]
		if a.Beat == b.Beat && rank[a.Kind] >= rank[b.Kind] {
			t.Fatalf("events %d,%d violate the per-beat order law: %v then %v at beat %d",
				i-1, i, a.Kind, b.Kind, a.Beat)
		}
	}
}

// Reset must clear the per-session event state (sink and stamp) and
// rewind the armed governor, so a pooled streamer replays its input to
// an identical event stream.
func TestStreamerEventStateAcrossReset(t *testing.T) {
	dev, err := NewDevice(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := physio.SubjectByID(1)
	acq, err := dev.Acquire(&sub, 8)
	if err != nil {
		t.Fatal(err)
	}
	st := dev.NewStreamer(StreamConfig{})
	st.SetHealthFloor(0.45)
	st.ArmGovernor(DefaultPMU())
	buf := event.NewBuffer(1024)
	st.Emit(buf, 5)
	st.Push(acq.ECG, acq.Z)
	st.Flush()
	first := buf.Drain(nil)

	st.Reset()
	// After Reset the sink is disarmed: the legacy path returns beats.
	if got := st.Push(acq.ECG, acq.Z); len(got) == 0 {
		t.Fatal("Reset did not restore the returned-slice path")
	}
	st.Flush()

	// Re-armed, the recycled streamer reproduces the event stream.
	st.Reset()
	st.Emit(buf, 5)
	st.Push(acq.ECG, acq.Z)
	st.Flush()
	second := buf.Drain(nil)
	if len(first) != len(second) {
		t.Fatalf("recycled streamer emitted %d events, first run %d", len(second), len(first))
	}
	for i := range first {
		if eventKey(first[i]) != eventKey(second[i]) || first[i].Params != second[i].Params {
			t.Fatalf("event %d differs across Reset\nfirst:  %+v\nsecond: %+v", i, first[i], second[i])
		}
	}
}
