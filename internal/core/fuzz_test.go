package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/ecg"
	"repro/internal/hemo"
	"repro/internal/icg"
	"repro/internal/physio"
)

// fuzzEnv lazily builds the shared device and base acquisitions the
// streamer fuzzer perturbs; acquisition is far too slow to run per
// fuzz iteration.
var fuzzEnv struct {
	once sync.Once
	dev  *Device
	base [][2][]float64 // {ecg, z} per subject
	rs   [][]int        // R peaks detected on each base ECG
	err  error
}

func fuzzSetup() error {
	fuzzEnv.once.Do(func() {
		dev, err := NewDevice(DefaultConfig())
		if err != nil {
			fuzzEnv.err = err
			return
		}
		fuzzEnv.dev = dev
		for sid := 1; sid <= 3; sid++ {
			sub, _ := physio.SubjectByID(sid)
			acq, err := dev.Acquire(&sub, 8)
			if err != nil {
				fuzzEnv.err = err
				return
			}
			fuzzEnv.base = append(fuzzEnv.base, [2][]float64{acq.ECG, acq.Z})
			pt, err := ecg.NewPTStream(ecg.DefaultPT(dev.cfg.FS))
			if err != nil {
				fuzzEnv.err = err
				return
			}
			fuzzEnv.rs = append(fuzzEnv.rs, pt.Flush(pt.Push(nil, acq.ECG)))
		}
	})
	return fuzzEnv.err
}

// FuzzStreamerPush pins the streaming engine's chunk invariance under
// fuzzing: for study-subject signals with fuzz-chosen gain/offset
// perturbations, any chunking of the input — including degenerate 1-
// sample and empty pushes — must produce exactly the beat stream of a
// single whole-recording push, never panic, and leave identical
// health/acceptance state.
func FuzzStreamerPush(f *testing.F) {
	f.Add(uint8(0), int64(1), []byte{125})
	f.Add(uint8(1), int64(42), []byte{1, 0, 7, 250})
	f.Add(uint8(2), int64(-3), []byte{40, 3, 90})
	f.Fuzz(func(t *testing.T, subject uint8, perturbSeed int64, chunks []byte) {
		if err := fuzzSetup(); err != nil {
			t.Skip("no device:", err)
		}
		base := fuzzEnv.base[int(subject)%len(fuzzEnv.base)]
		rng := physio.NewRNG(perturbSeed)
		gain := 1 + 0.02*(rng.Float64()-0.5)  // ±1% channel gain
		offset := 0.5 * (rng.Float64() - 0.5) // baseline shift (Ohm)
		n := len(base[0])
		ecg := make([]float64, n)
		z := make([]float64, n)
		for i := 0; i < n; i++ {
			ecg[i] = base[0][i] * gain
			z[i] = base[1][i]*gain + offset
		}

		run := func(chunked bool) ([]hemo.BeatParams, StreamHealth, float64) {
			st := fuzzEnv.dev.NewStreamer(StreamConfig{})
			var beats []hemo.BeatParams
			if !chunked {
				beats = append(beats, st.Push(ecg, z)...)
			} else {
				ci, pos := 0, 0
				for pos < n {
					c := 0 // empty pushes must be harmless
					if len(chunks) > 0 {
						c = int(chunks[ci%len(chunks)]) * 2
						ci++
					}
					if c == 0 && len(chunks) == 0 {
						c = 1
					}
					end := pos + c
					if end > n {
						end = n
					}
					beats = append(beats, st.Push(ecg[pos:end], z[pos:end])...)
					pos = end
					if c == 0 {
						// Still consume input eventually: alternate an
						// empty push with a 1-sample push.
						beats = append(beats, st.Push(ecg[pos:pos+min(1, n-pos)], z[pos:pos+min(1, n-pos)])...)
						pos += min(1, n-pos)
					}
				}
			}
			beats = append(beats, st.Flush()...)
			return beats, st.Health(), st.AcceptRate()
		}

		ref, refHealth, refRate := run(false)
		got, gotHealth, gotRate := run(true)
		if len(got) != len(ref) {
			t.Fatalf("chunked run emitted %d beats, whole-push %d", len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("beat %d differs: chunked %+v != whole %+v", i, got[i], ref[i])
			}
		}
		if gotHealth != refHealth {
			t.Fatalf("health differs: chunked %+v != whole %+v", gotHealth, refHealth)
		}
		if gotRate != refRate || math.IsNaN(gotRate) {
			t.Fatalf("accept rate differs: chunked %g != whole %g", gotRate, refRate)
		}
	})
}

// beatDiff reports the first field on which two beat analyses are not
// bit-identical ("" when they match exactly, float bits included).
func beatDiff(a, b icg.BeatAnalysis) string {
	if (a.Err == nil) != (b.Err == nil) {
		return "error presence"
	}
	if a.Err != nil {
		if a.Err.Error() != b.Err.Error() {
			return "error message"
		}
		return ""
	}
	p, q := a.Points, b.Points
	if (p == nil) != (q == nil) {
		return "points presence"
	}
	if p != nil {
		switch {
		case p.R != q.R || p.B != q.B || p.C != q.C || p.X != q.X || p.X0 != q.X0:
			return "R/B/C/X indexes"
		case math.Float64bits(p.B0) != math.Float64bits(q.B0):
			return "B0"
		case math.Float64bits(p.CAmp) != math.Float64bits(q.CAmp):
			return "CAmp"
		case p.Pattern != q.Pattern:
			return "Pattern"
		}
	}
	if math.Float64bits(a.Quality) != math.Float64bits(b.Quality) {
		return "Quality"
	}
	if a.ShapeOK != b.ShapeOK {
		return "ShapeOK"
	}
	for i := range a.Shape {
		if math.Float64bits(a.Shape[i]) != math.Float64bits(b.Shape[i]) {
			return "Shape"
		}
	}
	return ""
}

// FuzzDelineatorRefilterCache pins the rolling filtfilt cache's laws
// under fuzzing, on study-subject -dZ/dt streams with fuzz-chosen
// gain/offset perturbations and chunkings:
//
//  1. Bit identity for every chunking: in rolling-cache mode, pushing
//     the stream in any chunking — 1-sample, empty and fuzz-chosen
//     pushes included — yields a beat stream bit-identical (every int
//     and every float bit) to the whole-push full refilter of the same
//     stream. The same law is pinned for the legacy windowed engine.
//  2. Cache vs legacy full refilter: the two engines share the detected
//     beat count and success pattern, and every characteristic point
//     agrees within the detector's decision tolerance (±2 samples) —
//     the residual being the windowed engine's re-grown edge
//     transients, which the context absorbs below decision level.
func FuzzDelineatorRefilterCache(f *testing.F) {
	f.Add(uint8(0), int64(1), []byte{125})
	f.Add(uint8(1), int64(7), []byte{1})
	f.Add(uint8(2), int64(-9), []byte{3, 0, 40, 250})
	f.Fuzz(func(t *testing.T, subject uint8, perturbSeed int64, chunks []byte) {
		if err := fuzzSetup(); err != nil {
			t.Skip("no device:", err)
		}
		idx := int(subject) % len(fuzzEnv.base)
		baseZ := fuzzEnv.base[idx][1]
		rs := fuzzEnv.rs[idx]
		fs := fuzzEnv.dev.cfg.FS
		rng := physio.NewRNG(perturbSeed)
		gain := 1 + 0.02*(rng.Float64()-0.5)
		offset := 0.5 * (rng.Float64() - 0.5)
		z := make([]float64, len(baseZ))
		for i, v := range baseZ {
			z[i] = v*gain + offset
		}
		// The delineator consumes the derivative stage's output; the
		// chain's own chunk invariance is FuzzStreamerPush's law, so it
		// runs whole here and only the delineator input is re-chunked.
		deriv := Chain{icgDerivStage{fs: fs}}.NewStream()
		sig := deriv.Flush(deriv.Push(nil, z))

		dCfg := defaultDetectFor(fuzzEnv.dev.cfg, fs)
		lp, hp := fuzzEnv.dev.bank.icgLP, fuzzEnv.dev.bank.icgHP
		run := func(legacy, chunked bool) []icg.BeatAnalysis {
			d := icg.NewDelineator(dCfg, lp, hp, 0, icgCtxSeconds, 6)
			d.SetLegacyRefilter(legacy)
			var out []icg.BeatAnalysis
			if !chunked {
				// The 8 s acquisition fits the history ring whole, so
				// the full refilter can run with everything in view.
				out = d.PushICG(out, sig)
				for _, r := range rs {
					out = d.PushR(out, r)
				}
				return d.Flush(out)
			}
			ci, pos, nextR := 0, 0, 0
			for pos < len(sig) {
				c := 1
				if len(chunks) > 0 {
					c = int(chunks[ci%len(chunks)])
					ci++
				}
				end := pos + c
				if end > len(sig) {
					end = len(sig)
				}
				out = d.PushICG(out, sig[pos:end])
				pos = end
				if c == 0 && pos < len(sig) {
					out = d.PushICG(out, sig[pos:pos+1])
					pos++
				}
				for nextR < len(rs) && rs[nextR] < pos {
					out = d.PushR(out, rs[nextR])
					nextR++
				}
			}
			for ; nextR < len(rs); nextR++ {
				out = d.PushR(out, rs[nextR])
			}
			return d.Flush(out)
		}

		rollWhole := run(false, false)
		for _, mode := range []struct {
			name   string
			legacy bool
		}{{"rolling", false}, {"legacy", true}} {
			want := rollWhole
			if mode.legacy {
				want = run(true, false)
			}
			got := run(mode.legacy, true)
			if len(got) != len(want) {
				t.Fatalf("%s: chunked run emitted %d beats, whole-push %d", mode.name, len(got), len(want))
			}
			for i := range want {
				if d := beatDiff(got[i], want[i]); d != "" {
					t.Fatalf("%s beat %d: chunked differs from whole-push on %s", mode.name, i, d)
				}
			}
			if !mode.legacy {
				continue
			}
			// Law 2: cache vs the legacy full refilter, decision level.
			if len(want) != len(rollWhole) {
				t.Fatalf("legacy emitted %d beats, rolling cache %d", len(want), len(rollWhole))
			}
			for i := range want {
				l, r := want[i], rollWhole[i]
				if (l.Err == nil) != (r.Err == nil) {
					t.Fatalf("beat %d: legacy err %v, rolling err %v", i, l.Err, r.Err)
				}
				if l.Err != nil {
					continue
				}
				db, dc, dx := l.Points.B-r.Points.B, l.Points.C-r.Points.C, l.Points.X-r.Points.X
				if db < -2 || db > 2 || dc < -2 || dc > 2 || dx < -2 || dx > 2 {
					t.Fatalf("beat %d: legacy B/C/X %d/%d/%d vs rolling %d/%d/%d",
						i, l.Points.B, l.Points.C, l.Points.X, r.Points.B, r.Points.C, r.Points.X)
				}
			}
		}
	})
}
