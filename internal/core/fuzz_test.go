package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/hemo"
	"repro/internal/physio"
)

// fuzzEnv lazily builds the shared device and base acquisitions the
// streamer fuzzer perturbs; acquisition is far too slow to run per
// fuzz iteration.
var fuzzEnv struct {
	once sync.Once
	dev  *Device
	base [][2][]float64 // {ecg, z} per subject
	err  error
}

func fuzzSetup() error {
	fuzzEnv.once.Do(func() {
		dev, err := NewDevice(DefaultConfig())
		if err != nil {
			fuzzEnv.err = err
			return
		}
		fuzzEnv.dev = dev
		for sid := 1; sid <= 3; sid++ {
			sub, _ := physio.SubjectByID(sid)
			acq, err := dev.Acquire(&sub, 8)
			if err != nil {
				fuzzEnv.err = err
				return
			}
			fuzzEnv.base = append(fuzzEnv.base, [2][]float64{acq.ECG, acq.Z})
		}
	})
	return fuzzEnv.err
}

// FuzzStreamerPush pins the streaming engine's chunk invariance under
// fuzzing: for study-subject signals with fuzz-chosen gain/offset
// perturbations, any chunking of the input — including degenerate 1-
// sample and empty pushes — must produce exactly the beat stream of a
// single whole-recording push, never panic, and leave identical
// health/acceptance state.
func FuzzStreamerPush(f *testing.F) {
	f.Add(uint8(0), int64(1), []byte{125})
	f.Add(uint8(1), int64(42), []byte{1, 0, 7, 250})
	f.Add(uint8(2), int64(-3), []byte{40, 3, 90})
	f.Fuzz(func(t *testing.T, subject uint8, perturbSeed int64, chunks []byte) {
		if err := fuzzSetup(); err != nil {
			t.Skip("no device:", err)
		}
		base := fuzzEnv.base[int(subject)%len(fuzzEnv.base)]
		rng := physio.NewRNG(perturbSeed)
		gain := 1 + 0.02*(rng.Float64()-0.5)  // ±1% channel gain
		offset := 0.5 * (rng.Float64() - 0.5) // baseline shift (Ohm)
		n := len(base[0])
		ecg := make([]float64, n)
		z := make([]float64, n)
		for i := 0; i < n; i++ {
			ecg[i] = base[0][i] * gain
			z[i] = base[1][i]*gain + offset
		}

		run := func(chunked bool) ([]hemo.BeatParams, StreamHealth, float64) {
			st := fuzzEnv.dev.NewStreamer(StreamConfig{})
			var beats []hemo.BeatParams
			if !chunked {
				beats = append(beats, st.Push(ecg, z)...)
			} else {
				ci, pos := 0, 0
				for pos < n {
					c := 0 // empty pushes must be harmless
					if len(chunks) > 0 {
						c = int(chunks[ci%len(chunks)]) * 2
						ci++
					}
					if c == 0 && len(chunks) == 0 {
						c = 1
					}
					end := pos + c
					if end > n {
						end = n
					}
					beats = append(beats, st.Push(ecg[pos:end], z[pos:end])...)
					pos = end
					if c == 0 {
						// Still consume input eventually: alternate an
						// empty push with a 1-sample push.
						beats = append(beats, st.Push(ecg[pos:pos+min(1, n-pos)], z[pos:pos+min(1, n-pos)])...)
						pos += min(1, n-pos)
					}
				}
			}
			beats = append(beats, st.Flush()...)
			return beats, st.Health(), st.AcceptRate()
		}

		ref, refHealth, refRate := run(false)
		got, gotHealth, gotRate := run(true)
		if len(got) != len(ref) {
			t.Fatalf("chunked run emitted %d beats, whole-push %d", len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("beat %d differs: chunked %+v != whole %+v", i, got[i], ref[i])
			}
		}
		if gotHealth != refHealth {
			t.Fatalf("health differs: chunked %+v != whole %+v", gotHealth, refHealth)
		}
		if gotRate != refRate || math.IsNaN(gotRate) {
			t.Fatalf("accept rate differs: chunked %g != whole %g", gotRate, refRate)
		}
	})
}
