package core

import (
	"math"
	"testing"

	"repro/internal/dsp"
	"repro/internal/physio"
)

// injectContactArtifacts corrupts the impedance channel the way a bad
// touch session does: flatline dropouts (lost finger contact, the AFE
// holds its last sample) and saturation bursts (motion drives the
// carrier amplitude past the ADC rails, which clip). ECG is left alone
// so the beats still delimit and the corruption shows up purely in the
// ICG-derived parameters.
func injectContactArtifacts(z []float64, fs float64) {
	lo, hi := dsp.MinMax(z)
	mid := (lo + hi) / 2
	window := func(startS, durS float64) (int, int) {
		a := int(startS * fs)
		b := a + int(durS*fs)
		if b > len(z) {
			b = len(z)
		}
		return a, b
	}
	// Dropouts: hold the last live sample.
	for _, start := range []float64{6, 15.5, 20, 33} {
		a, b := window(start, 1.4)
		for i := a + 1; i < b; i++ {
			z[i] = z[a]
		}
	}
	// Saturation bursts: amplify and clip at the session rails.
	for _, start := range []float64{12, 26, 36.5, 40} {
		a, b := window(start, 1.2)
		for i := a; i < b; i++ {
			v := mid + (z[i]-mid)*40
			if v > hi {
				v = hi
			}
			if v < lo {
				v = lo
			}
			z[i] = v
		}
	}
}

// medAbsErr matches each emitted beat to the nearest ground-truth beat
// (by R-peak index, within tol samples) and returns the median absolute
// error of the extracted field.
func medAbsErr(t *testing.T, beats []hemoBeat, truthR []int, truth []float64, fs float64) float64 {
	t.Helper()
	var errs []float64
	for _, b := range beats {
		r := int(b.timeS*fs + 0.5)
		bestJ, bestD := -1, 1<<30
		for j, tr := range truthR {
			d := r - tr
			if d < 0 {
				d = -d
			}
			if d < bestD {
				bestD, bestJ = d, j
			}
		}
		if bestJ < 0 || bestD > 15 || bestJ >= len(truth) {
			continue
		}
		errs = append(errs, math.Abs(b.v-truth[bestJ]))
	}
	if len(errs) == 0 {
		t.Fatal("no beats matched ground truth")
	}
	return dsp.Median(errs)
}

type hemoBeat struct{ timeS, v float64 }

// The acceptance criterion of the quality-gate layer: on a recording
// with injected contact artifacts, the gated beat set estimates the
// systolic time intervals strictly better than the ungated set — the
// gate removes exactly the beats whose parameters are garbage.
func TestGatingImprovesSTIUnderArtifacts(t *testing.T) {
	sub, _ := physio.SubjectByID(3)
	d := device(t, nil)
	acq, err := d.Acquire(&sub, 45)
	if err != nil {
		t.Fatal(err)
	}
	injectContactArtifacts(acq.Z, acq.FS)
	out, err := d.Process(acq)
	if err != nil {
		t.Fatal(err)
	}
	if out.AcceptRate >= 0.97 {
		t.Fatalf("gate accepted %.2f of beats on an artifact-ridden recording", out.AcceptRate)
	}
	if out.AcceptRate < 0.4 {
		t.Fatalf("gate rejected almost everything: accept rate %.2f", out.AcceptRate)
	}
	truth := acq.Rec.Truth
	collect := func(accepted bool, get func(b int) float64) []hemoBeat {
		var set []hemoBeat
		for i, b := range out.Beats {
			if accepted && !b.Accepted {
				continue
			}
			set = append(set, hemoBeat{timeS: b.TimeS, v: get(i)})
		}
		return set
	}
	for _, c := range []struct {
		name     string
		get      func(i int) float64
		truthVal []float64
	}{
		{"LVET", func(i int) float64 { return out.Beats[i].LVET }, truth.LVET},
		{"PEP", func(i int) float64 { return out.Beats[i].PEP }, truth.PEP},
	} {
		raw := medAbsErr(t, collect(false, c.get), truth.RPeaks, c.truthVal, acq.FS)
		gated := medAbsErr(t, collect(true, c.get), truth.RPeaks, c.truthVal, acq.FS)
		t.Logf("%s median abs err: ungated %.1f ms, gated %.1f ms (accept %.2f)",
			c.name, raw*1000, gated*1000, out.AcceptRate)
		if gated >= raw {
			t.Errorf("%s: gated MAE %.4f not below ungated %.4f", c.name, gated, raw)
		}
	}
}

// Batch Process and the incremental Streamer must agree on the gate
// decisions beat for beat on the study subjects — they share one
// quality.BeatGate, so only sub-sample R-peak jitter between the
// engines could ever flip a decision, and on clean recordings none sits
// that close to a threshold.
func TestGatingBatchStreamAgreement(t *testing.T) {
	for sid := 1; sid <= 5; sid++ {
		sub, _ := physio.SubjectByID(sid)
		d := device(t, func(c *Config) { c.OutlierK = 1e9 })
		acq, err := d.Acquire(&sub, 30)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := d.Process(acq)
		if err != nil {
			t.Fatal(err)
		}
		got := streamBeats(d.NewStreamer(DefaultStreamConfig()), acq, 250)
		if len(got) != len(batch.Beats) {
			t.Fatalf("subject %d: %d stream beats vs %d batch", sid, len(got), len(batch.Beats))
		}
		for i := range got {
			if got[i].Accepted != batch.Beats[i].Accepted {
				t.Errorf("subject %d beat %d: stream accepted=%v batch=%v (q %.3f vs %.3f)",
					sid, i, got[i].Accepted, batch.Beats[i].Accepted,
					got[i].Quality, batch.Beats[i].Quality)
			}
			if math.Abs(got[i].Quality-batch.Beats[i].Quality) > 0.05 {
				t.Errorf("subject %d beat %d: quality %.4f vs %.4f",
					sid, i, got[i].Quality, batch.Beats[i].Quality)
			}
		}
	}
}

// Gating is on by default and off with DisableGate; the accept-rate
// plumbing reaches the Output and the Streamer either way.
func TestGateToggleAndAcceptRate(t *testing.T) {
	sub, _ := physio.SubjectByID(1)
	gatedDev := device(t, nil)
	rawDev := device(t, func(c *Config) { c.DisableGate = true })
	acq, err := gatedDev.Acquire(&sub, 20)
	if err != nil {
		t.Fatal(err)
	}
	if rawDev.Gate() != nil {
		t.Error("DisableGate device still has a gate")
	}
	if gatedDev.Gate() == nil {
		t.Fatal("default device has no gate")
	}
	outG, err := gatedDev.Process(acq)
	if err != nil {
		t.Fatal(err)
	}
	outR, err := rawDev.Process(acq)
	if err != nil {
		t.Fatal(err)
	}
	if outR.AcceptRate != 1 {
		t.Errorf("ungated accept rate %.3f, want 1", outR.AcceptRate)
	}
	for _, b := range outR.Beats {
		if !b.Accepted || b.Quality != 1 {
			t.Fatalf("ungated beat flagged: %+v", b)
		}
	}
	if outG.AcceptRate <= 0 || outG.AcceptRate > 1 {
		t.Errorf("gated accept rate %.3f", outG.AcceptRate)
	}
	if outG.Gated.Raw.Beats != len(outG.Beats) {
		t.Errorf("Gated.Raw covers %d of %d beats", outG.Gated.Raw.Beats, len(outG.Beats))
	}
	if outG.Gated.Gated.Beats > outG.Gated.Raw.Beats {
		t.Error("gated summary has more beats than raw")
	}
	st := gatedDev.NewStreamer(DefaultStreamConfig())
	if r := st.AcceptRate(); r != 1 {
		t.Errorf("fresh streamer accept rate %.3f, want 1", r)
	}
	streamBeats(st, acq, 250)
	acc, total := st.AcceptCounts()
	if total == 0 || acc > total {
		t.Errorf("streamer counts %d/%d", acc, total)
	}
	stR := rawDev.NewStreamer(DefaultStreamConfig())
	streamBeats(stR, acq, 250)
	if r := stR.AcceptRate(); r != 1 {
		t.Errorf("ungated streamer accept rate %.3f, want 1", r)
	}
}

// The PMU folds the gate's acceptance rate into its policy.
func TestPMUDecideGated(t *testing.T) {
	p := DefaultPMU()
	if m := p.DecideGated(80, 0.9, 0.9); m != ModeContinuous {
		t.Errorf("healthy gated: %v", m)
	}
	if m := p.DecideGated(80, 0.9, 0.3); m != ModeEco {
		t.Errorf("low accept rate: %v", m)
	}
	if m := p.DecideGated(5, 0.9, 0.9); m != ModeSpotCheck {
		t.Errorf("critical battery: %v", m)
	}
	// Decide remains the acceptRate-agnostic form.
	if m := p.Decide(80, 0.9); m != ModeContinuous {
		t.Errorf("Decide regressed: %v", m)
	}
}
