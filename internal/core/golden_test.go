package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/goldentest"
	"repro/internal/hemo"
	"repro/internal/physio"
)

// Golden per-beat traces: a compact committed file pins the exact beat
// stream (R, LVET, PEP, SV, Quality, Accepted) both engines produce for
// two seeded study subjects, so any change to conditioning, detection,
// delineation, gating or hemodynamics shows up as a byte diff instead
// of drifting silently. Regenerate intentionally with
//
//	go test ./internal/core/ -run TestGolden -update
//
// The file holds one block per engine: batch and streaming traces agree
// on every interval and gate decision but legitimately differ in the
// Z0-derived columns (batch uses the whole-recording mean impedance,
// streaming the causal prefix mean — see Streamer). The session layer
// is asserted byte-identical to the streaming block, driven through a
// session.Engine-equivalent chunk schedule.
var updateGolden = flag.Bool("update", false, "rewrite the golden beat-trace files")

const goldenSeconds = 12.0

// The line format and block reader live in internal/goldentest, shared
// with the session package's golden test so the two cannot drift.
func goldenBlock(name string, fs float64, beats []hemo.BeatParams) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %d\n", name, len(beats))
	for _, b := range beats {
		sb.WriteString(goldentest.Line(fs, b))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// goldenRun produces the batch and streaming beat traces for a subject.
// The streaming trace is produced twice — once through a bare Streamer
// pushed in 125-sample chunks, once in 250-sample chunks — and the two
// must agree byte for byte before the file is even consulted (chunk
// invariance is a precondition of a meaningful golden).
func goldenRun(t *testing.T, dev *Device, subjectID int) (batch, stream []hemo.BeatParams) {
	t.Helper()
	sub, ok := physio.SubjectByID(subjectID)
	if !ok {
		t.Fatalf("no subject %d", subjectID)
	}
	acq, err := dev.Acquire(&sub, goldenSeconds)
	if err != nil {
		t.Fatal(err)
	}
	out, err := dev.Process(acq)
	if err != nil {
		t.Fatal(err)
	}
	batch = out.Beats

	runStream := func(chunk int) []hemo.BeatParams {
		st := dev.NewStreamer(StreamConfig{})
		var beats []hemo.BeatParams
		for pos := 0; pos < len(acq.ECG); pos += chunk {
			end := pos + chunk
			if end > len(acq.ECG) {
				end = len(acq.ECG)
			}
			beats = append(beats, st.Push(acq.ECG[pos:end], acq.Z[pos:end])...)
		}
		return append(beats, st.Flush()...)
	}
	stream = runStream(125)
	alt := runStream(250)
	if len(alt) != len(stream) {
		t.Fatalf("subject %d: chunk 250 emitted %d beats, chunk 125 %d", subjectID, len(alt), len(stream))
	}
	for i := range stream {
		if alt[i] != stream[i] {
			t.Fatalf("subject %d beat %d: chunk invariance broken before golden comparison", subjectID, i)
		}
	}
	return batch, stream
}

func goldenPath(subjectID int) string {
	return filepath.Join("testdata", fmt.Sprintf("golden_subject%d.txt", subjectID))
}

func TestGoldenBeatTraces(t *testing.T) {
	dev, err := NewDevice(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, sid := range []int{1, 2} {
		batch, stream := goldenRun(t, dev, sid)
		if len(batch) == 0 || len(stream) == 0 {
			t.Fatalf("subject %d produced no beats", sid)
		}
		got := fmt.Sprintf("# golden beat trace: subject %d, %.0f s @ %g Hz\n# columns: R LVET PEP SVKub Quality Accepted (floats in Go %%x hex)\n",
			sid, goldenSeconds, dev.Config().FS) +
			goldenBlock("batch", dev.Config().FS, batch) +
			goldenBlock("stream", dev.Config().FS, stream)

		path := goldenPath(sid)
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d batch + %d stream beats)", path, len(batch), len(stream))
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden file (regenerate with -update): %v", err)
		}
		if got != string(want) {
			t.Fatalf("subject %d: beat trace deviates from %s\n%s\n(regenerate intentionally with -update)",
				sid, path, diffGolden(string(want), got))
		}
	}
}

// TestGoldenPooledStreamerPath replays subject 1 through a RECYCLED
// streamer — run, Reset, run again, exactly the pooled reuse cycle the
// session engine performs — and requires byte identity with the
// committed stream block. (The serving layer proper is pinned against
// the same block by the session package's golden test, which drives a
// real session.Engine; it cannot live here without an import cycle.)
func TestGoldenPooledStreamerPath(t *testing.T) {
	dev, err := NewDevice(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := goldentest.ReadBlock(goldenPath(1), "stream")
	if err != nil {
		t.Fatalf("golden stream block (regenerate with -update): %v", err)
	}
	sub, _ := physio.SubjectByID(1)
	acq, err := dev.Acquire(&sub, goldenSeconds)
	if err != nil {
		t.Fatal(err)
	}
	// The session engine pushes through a pooled, Reset streamer in
	// arrival-order chunks; emulate one pooled reuse cycle (run once,
	// Reset, run again) and check the SECOND pass — the recycled-state
	// path — against the golden.
	st := dev.NewStreamer(StreamConfig{})
	push := func() []hemo.BeatParams {
		var beats []hemo.BeatParams
		for pos := 0; pos < len(acq.ECG); pos += 50 {
			end := pos + 50
			if end > len(acq.ECG) {
				end = len(acq.ECG)
			}
			beats = append(beats, st.Push(acq.ECG[pos:end], acq.Z[pos:end])...)
		}
		return append(beats, st.Flush()...)
	}
	push()
	st.Reset()
	beats := push()
	if len(beats) != len(want) {
		t.Fatalf("session-path emitted %d beats, golden stream block has %d", len(beats), len(want))
	}
	for i, b := range beats {
		if line := goldentest.Line(dev.Config().FS, b); line != want[i] {
			t.Fatalf("beat %d: session path %q != golden %q", i, line, want[i])
		}
	}
}

// diffGolden points at the first deviating line.
func diffGolden(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("first difference at line %d:\n  want: %s\n  got:  %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("length differs: want %d lines, got %d", len(wl), len(gl))
}
