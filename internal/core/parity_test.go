package core

import (
	"math"
	"testing"

	"repro/internal/hemo"
	"repro/internal/physio"
)

// streamBeats feeds an acquisition through the incremental streamer in
// fixed-size chunks and returns every emitted beat.
func streamBeats(st *Streamer, acq *Acquisition, chunk int) []hemo.BeatParams {
	var out []hemo.BeatParams
	for pos := 0; pos < len(acq.ECG); pos += chunk {
		end := pos + chunk
		if end > len(acq.ECG) {
			end = len(acq.ECG)
		}
		out = append(out, st.Push(acq.ECG[pos:end], acq.Z[pos:end])...)
	}
	return append(out, st.Flush()...)
}

// The incremental engine must reproduce the batch pipeline beat for
// beat: same beat count and per-beat LVET/PEP/HR within tolerance, for
// every chunk size including 1-sample pushes. Outlier rejection is
// disabled in the batch run because it is a whole-series operation the
// per-beat stream cannot (and should not) apply.
func TestStreamingBatchParity(t *testing.T) {
	const (
		tolSTI = 0.008 // s: two samples at 250 Hz
		tolHR  = 1.0   // bpm
	)
	chunks := []int{1, 7, 50, 250, 1024}
	for sid := 1; sid <= 5; sid++ {
		sub, _ := physio.SubjectByID(sid)
		d := device(t, func(c *Config) { c.OutlierK = 1e9 })
		acq, err := d.Acquire(&sub, 30)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := d.Process(acq)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch.Beats) < 20 {
			t.Fatalf("subject %d: batch produced only %d beats", sid, len(batch.Beats))
		}
		for _, chunk := range chunks {
			st := d.NewStreamer(DefaultStreamConfig())
			got := streamBeats(st, acq, chunk)
			if len(got) != len(batch.Beats) {
				t.Fatalf("subject %d chunk %d: %d beats, batch %d",
					sid, chunk, len(got), len(batch.Beats))
			}
			for i, b := range got {
				want := batch.Beats[i]
				if math.Abs(b.TimeS-want.TimeS) > tolSTI {
					t.Errorf("subject %d chunk %d beat %d: TimeS %.3f vs %.3f",
						sid, chunk, i, b.TimeS, want.TimeS)
				}
				if math.Abs(b.LVET-want.LVET) > tolSTI {
					t.Errorf("subject %d chunk %d beat %d: LVET %.4f vs %.4f",
						sid, chunk, i, b.LVET, want.LVET)
				}
				if math.Abs(b.PEP-want.PEP) > tolSTI {
					t.Errorf("subject %d chunk %d beat %d: PEP %.4f vs %.4f",
						sid, chunk, i, b.PEP, want.PEP)
				}
				if math.Abs(b.HR-want.HR) > tolHR {
					t.Errorf("subject %d chunk %d beat %d: HR %.2f vs %.2f",
						sid, chunk, i, b.HR, want.HR)
				}
			}
		}
	}
}

// The emitted stream must be identical regardless of how the input is
// chunked — bit for bit, every field — because session replication and
// the multi-session engine rely on chunk-invariant output.
func TestStreamingChunkInvariance(t *testing.T) {
	sub, _ := physio.SubjectByID(2)
	d := device(t, nil)
	acq, err := d.Acquire(&sub, 20)
	if err != nil {
		t.Fatal(err)
	}
	ref := streamBeats(d.NewStreamer(DefaultStreamConfig()), acq, 250)
	if len(ref) == 0 {
		t.Fatal("no beats")
	}
	for _, chunk := range []int{1, 3, 77, 999} {
		got := streamBeats(d.NewStreamer(DefaultStreamConfig()), acq, chunk)
		if len(got) != len(ref) {
			t.Fatalf("chunk %d: %d beats vs %d", chunk, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("chunk %d beat %d differs: %+v vs %+v", chunk, i, got[i], ref[i])
			}
		}
	}
}

// A Reset streamer must reproduce a fresh streamer's output exactly —
// the session engine pools and reuses streamers across sessions.
func TestStreamerResetReuse(t *testing.T) {
	sub, _ := physio.SubjectByID(3)
	d := device(t, nil)
	acq, err := d.Acquire(&sub, 15)
	if err != nil {
		t.Fatal(err)
	}
	st := d.NewStreamer(DefaultStreamConfig())
	first := streamBeats(st, acq, 125)
	st.Reset()
	second := streamBeats(st, acq, 125)
	if len(first) != len(second) {
		t.Fatalf("Reset changes beat count: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("beat %d differs after Reset", i)
		}
	}
}

// The causal-filter ablation conditions its stream sample for sample
// like the batch causal path, so parity must hold there too.
func TestStreamingBatchParityCausalFilters(t *testing.T) {
	sub, _ := physio.SubjectByID(1)
	d := device(t, func(c *Config) {
		c.CausalFilters = true
		c.OutlierK = 1e9
	})
	acq, err := d.Acquire(&sub, 30)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := d.Process(acq)
	if err != nil {
		t.Fatal(err)
	}
	got := streamBeats(d.NewStreamer(DefaultStreamConfig()), acq, 125)
	if len(got) != len(batch.Beats) {
		t.Fatalf("%d beats, batch %d", len(got), len(batch.Beats))
	}
	for i, b := range got {
		want := batch.Beats[i]
		if math.Abs(b.LVET-want.LVET) > 0.008 || math.Abs(b.PEP-want.PEP) > 0.008 {
			t.Errorf("beat %d: LVET %.4f/%.4f PEP %.4f/%.4f",
				i, b.LVET, want.LVET, b.PEP, want.PEP)
		}
	}
}

// The retained window-recompute engine must still work (it is the
// benchmark baseline) and stay in rough agreement with the batch means.
func TestWindowStreamerStillWorks(t *testing.T) {
	sub, _ := physio.SubjectByID(1)
	d := device(t, nil)
	acq, err := d.Acquire(&sub, 30)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := d.Process(acq)
	if err != nil {
		t.Fatal(err)
	}
	st := d.NewWindowStreamer(DefaultStreamConfig())
	var beats []hemo.BeatParams
	for pos := 0; pos < len(acq.ECG); pos += 250 {
		end := pos + 250
		if end > len(acq.ECG) {
			end = len(acq.ECG)
		}
		beats = append(beats, st.Push(acq.ECG[pos:end], acq.Z[pos:end])...)
	}
	beats = append(beats, st.Flush()...)
	if len(beats) == 0 {
		t.Fatal("no beats from window streamer")
	}
	var hr float64
	for _, b := range beats {
		hr += b.HR
	}
	hr /= float64(len(beats))
	if math.Abs(hr-batch.Summary.HR.Mean) > 3 {
		t.Errorf("window streamer HR %.1f vs batch %.1f", hr, batch.Summary.HR.Mean)
	}
	if l := st.Latency(); l <= 0 || l > 5 {
		t.Errorf("window streamer latency %g", l)
	}
}
