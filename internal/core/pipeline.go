package core

import (
	"repro/internal/bioimp"
	"repro/internal/dsp"
	"repro/internal/ecg"
	"repro/internal/hemo"
	"repro/internal/icg"
	"repro/internal/quality"
)

// Process runs the embedded pipeline of Fig 3 on an acquisition:
//
//	ECG: morphological baseline removal -> 32nd-order FIR band-pass
//	     (zero-phase) -> Pan-Tompkins QRS detection
//	ICG: Z -> -dZ/dt -> 20 Hz Butterworth low-pass (zero-phase) ->
//	     beat segmentation at R peaks -> B/C/X detection
//	->   beat-to-beat hemodynamic parameters (Z0, LVET, PEP, HR, SV, CO)
//
// Every stage also records its operation counts so the MCU duty cycle can
// be priced (experiment E8).
//
// The filters were designed once at NewDevice, and all full-length
// intermediates live in a pooled scratch arena, so the steady-state path
// only heap-allocates what the Output retains. Process is safe for
// concurrent use on one Device.
func (d *Device) Process(acq *Acquisition) (*Output, error) {
	fs := acq.FS
	n := len(acq.ECG)
	cost := newCostEstimator(d.cfg)

	bank, err := d.bankFor(fs)
	if err != nil {
		return nil, err
	}
	ar := d.getArena()
	defer d.arenas.Put(ar)

	// --- ECG conditioning (the shared stage chain: morphological
	// baseline removal then the FIR band-pass).
	condECG := bank.ecgChain.Apply(ar, acq.ECG)
	cost.baseline(n, bank.blCfg)
	if d.cfg.CausalFilters {
		cost.fir(n, len(bank.ecgFIR.Taps), 1)
	} else {
		cost.fir(n, len(bank.ecgFIR.Taps), 2)
	}

	// --- QRS detection.
	ptCfg := ecg.DefaultPT(fs)
	ptCfg.BandSOS = bank.ptSOS
	ptRes, err := ecg.DetectQRSWith(ar, condECG, ptCfg)
	if err != nil {
		return nil, err
	}
	cost.panTompkins(n)
	if len(ptRes.RPeaks) < 2 {
		return nil, ErrNoECG
	}

	// --- ICG derivation and conditioning (the shared stage chain:
	// -dZ/dt then the Butterworth cascade).
	icgF := bank.icgChain.Apply(ar, acq.Z)
	cost.derivative(n)
	if d.cfg.CausalFilters {
		cost.sos(n, 3, 1)
	} else {
		cost.sos(n, 3, 2)
	}

	// --- T peaks (needed by the Carvalho X variant only).
	var tPeaks []int
	if d.cfg.XRule == icg.XCarvalho {
		tPeaks = ecg.TPeaksForBeatsWith(ar, bank.twaveLP, condECG, ptRes.RPeaks, fs)
		cost.sos(n, 2, 2) // the 10 Hz T-wave low-pass
	}

	// --- Beat-to-beat point detection.
	dCfg := icg.DefaultDetect(fs)
	dCfg.XRule = d.cfg.XRule
	dCfg.BRule = d.cfg.BRule
	beats := icg.DetectAllWith(ar, icgF, ptRes.RPeaks, tPeaks, dCfg)
	avgBeat := 0
	if len(ptRes.RPeaks) > 1 {
		avgBeat = (ptRes.RPeaks[len(ptRes.RPeaks)-1] - ptRes.RPeaks[0]) / (len(ptRes.RPeaks) - 1)
	}
	cost.pointDetect(len(beats), avgBeat)

	// --- Per-beat quality gating: the raw impedance channel and the
	// delineated beats run through the device gate in beat order — the
	// same gate chain the incremental Streamer drives, so batch and
	// streaming acceptance decisions share one definition.
	var sqis []quality.BeatSQI
	acceptRate := 1.0
	if gs := d.getGateStream(); gs != nil {
		sqis = gs.Apply(make([]quality.BeatSQI, 0, len(beats)), acq.Z, beats, ptRes.RPeaks)
		// Same definition as Streamer.AcceptRate: failed delineations
		// count as rejected, so both engines feed PMU.DecideGated the
		// same number for the same data.
		acceptRate = gs.AcceptRate()
		cost.gate(len(beats))
		d.gateStreams.Put(gs)
	}

	// --- Hemodynamic parameters. Touch-path acquisitions apply the
	// hand-to-hand -> thoracic calibration before the volume formulas.
	z0 := dsp.Mean(acq.Z)
	cal := hemo.IdentityCal()
	if acq.Meas == nil || acq.Meas.Path == bioimp.PathHandToHand {
		cal = hemo.TouchCal()
	}
	params, err := hemo.SeriesWith(nil, beats, sqis, ptRes.RPeaks, z0, fs, d.cfg.Body, cal)
	if err != nil {
		return nil, err
	}
	gated := hemo.SummarizeGated(params, d.cfg.OutlierK)
	cost.hemo(len(params))
	cost.radio(gated.Gated.Beats)

	out := &Output{
		RPeaks:     ptRes.RPeaks,
		TPeaks:     tPeaks,
		Beats:      params,
		Summary:    gated.Gated,
		Gated:      gated,
		AcceptRate: acceptRate,
		Yield:      icg.YieldRate(beats),
		Z0:         z0,
		Cost:       cost.counter,
		// The conditioned traces are arena-owned; the Output keeps copies.
		CondECG:  dsp.Clone(condECG),
		ICGTrack: dsp.Clone(icgF),
	}

	// --- Optional ensemble-averaged measurement: R-aligned averaging
	// without resampling, so the intervals on the averaged beat keep
	// their absolute time axis.
	if d.cfg.Ensemble {
		meanRR := dsp.Mean(ecg.RRIntervals(ptRes.RPeaks, fs))
		ensLen := int(0.9 * meanRR * fs)
		if maxLen := int(0.9 * fs); ensLen > maxLen {
			ensLen = maxLen
		}
		ens := icg.EnsembleAligned(icgF, ptRes.RPeaks, ensLen)
		cost.ensemble(len(ptRes.RPeaks), ensLen)
		if ens != nil {
			if pts, derr := icg.DetectBeat(ens, 0, len(ens), -1, dCfg); derr == nil {
				bp := hemo.FromPoints(pts, int(meanRR*fs), z0, fs, d.cfg.Body, cal)
				out.Ensemble = &bp
			}
		}
	}
	return out, nil
}
