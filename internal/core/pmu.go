package core

import "repro/internal/hw/power"

// Power management unit. Section III-A describes a PMU that "dynamically
// tunes the system to achieve the best trade-off between energy
// consumption and performance, taking into account the available energy in
// the battery and requirements of the target application". The paper does
// not specify the policy; this file implements a plausible one (and the
// ablation A6 compares it against a fixed-duty configuration).

// PowerMode is the PMU operating point.
type PowerMode int

// Operating points.
const (
	// ModeContinuous: full beat-to-beat processing and per-beat radio
	// transmission (the paper's worst case: MCU ~50%, radio 1%).
	ModeContinuous PowerMode = iota
	// ModeEco: processing is batched (the MCU sleeps between 10-second
	// analysis windows) and results are sent in bursts.
	ModeEco
	// ModeSpotCheck: the device idles and only measures on touch,
	// assuming one 30-second spot check per 30 minutes.
	ModeSpotCheck
)

// String names the mode.
func (m PowerMode) String() string {
	switch m {
	case ModeContinuous:
		return "continuous"
	case ModeEco:
		return "eco"
	case ModeSpotCheck:
		return "spot-check"
	default:
		return "mode-?"
	}
}

// PMU decides the operating mode from battery state and signal quality.
type PMU struct {
	// EcoBelowPct switches to ModeEco below this battery percentage.
	EcoBelowPct float64
	// SpotBelowPct switches to ModeSpotCheck below this percentage.
	SpotBelowPct float64
	// MinYield is the beat-analysis yield below which continuing to
	// process full waveforms is wasted energy (bad contact); the PMU
	// drops to ModeEco until contact improves.
	MinYield float64
	// MinAcceptRate is the quality-gate acceptance rate (internal/
	// quality, Output.AcceptRate / Streamer.AcceptRate) below which the
	// PMU treats the contact as unusable: beats are being delineated
	// but their signal quality is too poor to trust, so full per-beat
	// processing and radio are wasted energy.
	MinAcceptRate float64
}

// DefaultPMU returns the policy used by the examples.
func DefaultPMU() PMU {
	return PMU{EcoBelowPct: 30, SpotBelowPct: 10, MinYield: 0.5, MinAcceptRate: 0.5}
}

// Decide returns the operating mode for the given battery percentage
// (0-100) and recent beat-analysis yield (0-1).
func (p PMU) Decide(batteryPct, yield float64) PowerMode {
	return p.DecideGated(batteryPct, yield, 1)
}

// DecideGated is Decide additionally fed the per-beat quality gate's
// acceptance rate (0-1): a session whose beats delineate fine but fail
// the signal-quality gate drops to ModeEco just like a low-yield one.
func (p PMU) DecideGated(batteryPct, yield, acceptRate float64) PowerMode {
	switch {
	case batteryPct <= p.SpotBelowPct:
		return ModeSpotCheck
	case batteryPct <= p.EcoBelowPct:
		return ModeEco
	case yield < p.MinYield:
		return ModeEco
	case p.MinAcceptRate > 0 && acceptRate < p.MinAcceptRate:
		return ModeEco
	default:
		return ModeContinuous
	}
}

// ModeBudget maps an operating mode to a component duty-cycle budget,
// given the measured continuous-processing MCU duty.
func ModeBudget(mode PowerMode, mcuDuty float64) *power.Budget {
	switch mode {
	case ModeEco:
		// Batched processing roughly halves MCU activity; the radio
		// sends bursts at a tenth of the per-beat rate.
		return power.NewBudget().
			Set(power.ECGChip, 1).
			Set(power.ICGChip, 1).
			Set(power.MCU, mcuDuty*0.5).
			Set(power.Radio, 0.001)
	case ModeSpotCheck:
		// One 30 s measurement per 30 minutes: 1/60 activity.
		frac := 1.0 / 60
		return power.NewBudget().
			Set(power.ECGChip, frac).
			Set(power.ICGChip, frac).
			Set(power.MCU, mcuDuty*frac).
			Set(power.Radio, 0.0001)
	default:
		return power.NewBudget().
			Set(power.ECGChip, 1).
			Set(power.ICGChip, 1).
			Set(power.MCU, mcuDuty).
			Set(power.Radio, 0.01)
	}
}

// LifetimeHours estimates battery life in the given mode.
func LifetimeHours(mode PowerMode, mcuDuty float64) float64 {
	b := ModeBudget(mode, mcuDuty)
	return power.DeviceBattery().LifetimeHours(b.AverageCurrentMA())
}
