package core

import "repro/internal/hw/power"

// Power management unit. Section III-A describes a PMU that "dynamically
// tunes the system to achieve the best trade-off between energy
// consumption and performance, taking into account the available energy in
// the battery and requirements of the target application". The paper does
// not specify the policy; this file implements a plausible one (and the
// ablation A6 compares it against a fixed-duty configuration).

// PowerMode is the PMU operating point.
type PowerMode int

// Operating points.
const (
	// ModeContinuous: full beat-to-beat processing and per-beat radio
	// transmission (the paper's worst case: MCU ~50%, radio 1%).
	ModeContinuous PowerMode = iota
	// ModeEco: processing is batched (the MCU sleeps between 10-second
	// analysis windows) and results are sent in bursts.
	ModeEco
	// ModeSpotCheck: the device idles and only measures on touch,
	// assuming one 30-second spot check per 30 minutes.
	ModeSpotCheck
)

// String names the mode.
func (m PowerMode) String() string {
	switch m {
	case ModeContinuous:
		return "continuous"
	case ModeEco:
		return "eco"
	case ModeSpotCheck:
		return "spot-check"
	default:
		return "mode-?"
	}
}

// PMU decides the operating mode from battery state and signal quality.
type PMU struct {
	// EcoBelowPct switches to ModeEco below this battery percentage.
	EcoBelowPct float64
	// SpotBelowPct switches to ModeSpotCheck below this percentage.
	SpotBelowPct float64
	// MinYield is the beat-analysis yield below which continuing to
	// process full waveforms is wasted energy (bad contact); the PMU
	// drops to ModeEco until contact improves.
	MinYield float64
	// MinAcceptRate is the quality-gate acceptance rate (internal/
	// quality, Output.AcceptRate / Streamer.AcceptRate) below which the
	// PMU treats the contact as unusable: beats are being delineated
	// but their signal quality is too poor to trust, so full per-beat
	// processing and radio are wasted energy.
	MinAcceptRate float64

	// The three fields below configure the stateful Governor (NewGovernor):
	// the stateless Decide/DecideGated ignore them.
	//
	// ExitAcceptRate is the smoothed accept rate at or above which a
	// quality-driven ModeEco reverts to ModeContinuous. Keeping it above
	// MinAcceptRate (the enter threshold) opens a hysteresis band, so an
	// accept rate hovering at the threshold cannot bounce the mode.
	ExitAcceptRate float64
	// RateBeta is the EWMA weight each Observe/Decide reading of the
	// accept rate gets; the EWMA starts at 1 (the zero-beats contract of
	// the gate layer), so a cold governor begins in ModeContinuous.
	RateBeta float64
	// MinDwellS is the minimum time (seconds) the governor stays in a
	// mode before a *quality-driven* flip; battery transitions are
	// immediate (the battery does not bounce).
	MinDwellS float64
}

// DefaultPMU returns the policy used by the examples.
func DefaultPMU() PMU {
	return PMU{
		EcoBelowPct: 30, SpotBelowPct: 10, MinYield: 0.5, MinAcceptRate: 0.5,
		ExitAcceptRate: 0.65, RateBeta: 0.25, MinDwellS: 20,
	}
}

// withGovernorDefaults fills unset governor fields (the stateless
// Decide path never reads them, so zero values are common).
func (p PMU) withGovernorDefaults() PMU {
	d := DefaultPMU()
	if p.ExitAcceptRate <= 0 {
		p.ExitAcceptRate = p.MinAcceptRate + 0.15
	}
	if p.ExitAcceptRate < p.MinAcceptRate {
		p.ExitAcceptRate = p.MinAcceptRate
	}
	if p.RateBeta <= 0 || p.RateBeta > 1 {
		p.RateBeta = d.RateBeta
	}
	if p.MinDwellS <= 0 {
		p.MinDwellS = d.MinDwellS
	}
	return p
}

// Decide returns the operating mode for the given battery percentage
// (0-100) and recent beat-analysis yield (0-1).
func (p PMU) Decide(batteryPct, yield float64) PowerMode {
	return p.DecideGated(batteryPct, yield, 1)
}

// DecideGated is Decide additionally fed the per-beat quality gate's
// acceptance rate (0-1): a session whose beats delineate fine but fail
// the signal-quality gate drops to ModeEco just like a low-yield one.
func (p PMU) DecideGated(batteryPct, yield, acceptRate float64) PowerMode {
	switch {
	case batteryPct <= p.SpotBelowPct:
		return ModeSpotCheck
	case batteryPct <= p.EcoBelowPct:
		return ModeEco
	case yield < p.MinYield:
		return ModeEco
	case p.MinAcceptRate > 0 && acceptRate < p.MinAcceptRate:
		return ModeEco
	default:
		return ModeContinuous
	}
}

// Governor is the stateful form of DecideGated: it smooths the accept
// rate with an EWMA and applies enter/exit hysteresis plus a minimum
// dwell time to the quality-driven ModeContinuous<->ModeEco transitions,
// so one bad accept-rate window cannot flip the mode and no quality
// signal can flip it back and forth faster than once per MinDwellS.
// The yield input is taken at face value (a yield dip below MinYield
// enters eco as soon as the dwell allows — smooth yield upstream if
// your estimator is noisy); battery transitions stay immediate (the
// battery does not bounce).
//
// It is a single-goroutine object; feed Decide periodically with a
// monotonically non-decreasing session time.
type Governor struct {
	pmu PMU

	ewma    float64
	started bool

	// qMode is the quality-driven half of the decision (ModeContinuous
	// or ModeEco); the battery overlay is applied on top of it each
	// Decide and carries no state.
	qMode  PowerMode
	qSince float64 // session time qMode was entered
	flips  int
}

// NewGovernor builds a hysteresis governor over this policy, filling
// unset governor fields (ExitAcceptRate, RateBeta, MinDwellS) with
// defaults derived from DefaultPMU.
func (p PMU) NewGovernor() *Governor {
	return &Governor{pmu: p.withGovernorDefaults(), ewma: 1, qMode: ModeContinuous}
}

// Decide folds one accept-rate reading into the EWMA and returns the
// operating mode at session time tS (seconds). Quality-driven
// transitions obey the hysteresis band — enter ModeEco when the EWMA
// falls below MinAcceptRate (or yield below MinYield), return to
// ModeContinuous only once the EWMA reaches ExitAcceptRate and yield
// recovered — and the MinDwellS dwell: a mode entered at time t cannot
// be left for quality reasons before t+MinDwellS. Battery thresholds
// (EcoBelowPct, SpotBelowPct) override immediately, exactly like the
// stateless DecideGated.
func (g *Governor) Decide(tS, batteryPct, yield, acceptRate float64) PowerMode {
	p := g.pmu
	g.ewma = (1-p.RateBeta)*g.ewma + p.RateBeta*acceptRate
	if !g.started {
		g.started = true
		g.qSince = tS
	}
	// MinAcceptRate <= 0 disables the accept-rate criterion entirely
	// (matching DecideGated) — the exit path must ignore it too, or a
	// yield-driven eco could demand an accept-rate recovery the
	// configuration never asked for.
	bad := yield < p.MinYield || (p.MinAcceptRate > 0 && g.ewma < p.MinAcceptRate)
	good := yield >= p.MinYield && (p.MinAcceptRate <= 0 || g.ewma >= p.ExitAcceptRate)
	dwelled := tS-g.qSince >= p.MinDwellS
	switch g.qMode {
	case ModeContinuous:
		if bad && dwelled {
			g.qMode = ModeEco
			g.qSince = tS
			g.flips++
		}
	case ModeEco:
		if good && dwelled {
			g.qMode = ModeContinuous
			g.qSince = tS
			g.flips++
		}
	}
	switch {
	case batteryPct <= p.SpotBelowPct:
		return ModeSpotCheck
	case batteryPct <= p.EcoBelowPct:
		return ModeEco
	}
	return g.qMode
}

// AcceptEWMA returns the governor's smoothed accept rate (1 before any
// reading — the shared zero-beats contract).
func (g *Governor) AcceptEWMA() float64 { return g.ewma }

// Reset returns the governor to its initial state — EWMA 1, quality
// mode continuous, no flips — keeping the policy, so a pooled streamer
// can carry its armed governor across sessions without residue.
func (g *Governor) Reset() {
	g.ewma = 1
	g.started = false
	g.qMode = ModeContinuous
	g.qSince = 0
	g.flips = 0
}

// Flips returns how many quality-driven mode transitions the governor
// has made (battery-forced overlays do not count).
func (g *Governor) Flips() int { return g.flips }

// GovernorSnapshot is the compact durable state of a Governor: the
// smoothed accept rate, the quality-driven mode and the dwell anchor.
// QSince is on the same session-time axis the governor is fed, so a
// restored governor continues its dwell window rather than restarting
// it — the restoring layer must keep the time axis monotonic across
// the restore (core.Streamer does, via its restored clock bases).
type GovernorSnapshot struct {
	EWMA    float64
	Started bool
	QMode   PowerMode
	QSince  float64
	Flips   int
}

// Snapshot captures the governor's durable state (the policy is
// configuration, not state, and is not captured).
func (g *Governor) Snapshot() GovernorSnapshot {
	return GovernorSnapshot{EWMA: g.ewma, Started: g.started, QMode: g.qMode, QSince: g.qSince, Flips: g.flips}
}

// Restore rehydrates a fresh (or Reset) governor from a snapshot.
func (g *Governor) Restore(s GovernorSnapshot) {
	g.ewma = s.EWMA
	g.started = s.Started
	g.qMode = s.QMode
	g.qSince = s.QSince
	g.flips = s.Flips
}

// ModeBudget maps an operating mode to a component duty-cycle budget,
// given the measured continuous-processing MCU duty.
func ModeBudget(mode PowerMode, mcuDuty float64) *power.Budget {
	switch mode {
	case ModeEco:
		// Batched processing roughly halves MCU activity; the radio
		// sends bursts at a tenth of the per-beat rate.
		return power.NewBudget().
			Set(power.ECGChip, 1).
			Set(power.ICGChip, 1).
			Set(power.MCU, mcuDuty*0.5).
			Set(power.Radio, 0.001)
	case ModeSpotCheck:
		// One 30 s measurement per 30 minutes: 1/60 activity.
		frac := 1.0 / 60
		return power.NewBudget().
			Set(power.ECGChip, frac).
			Set(power.ICGChip, frac).
			Set(power.MCU, mcuDuty*frac).
			Set(power.Radio, 0.0001)
	default:
		return power.NewBudget().
			Set(power.ECGChip, 1).
			Set(power.ICGChip, 1).
			Set(power.MCU, mcuDuty).
			Set(power.Radio, 0.01)
	}
}

// LifetimeHours estimates battery life in the given mode.
func LifetimeHours(mode PowerMode, mcuDuty float64) float64 {
	b := ModeBudget(mode, mcuDuty)
	return power.DeviceBattery().LifetimeHours(b.AverageCurrentMA())
}
