package core

import (
	"math"
	"testing"
)

// govPMU returns a policy with round governor numbers so the table
// tests can pin exact threshold and dwell edges: enter eco below EWMA
// 0.5, exit at 0.7, 10 s dwell, and beta 1 so the EWMA equals the last
// reading (threshold edges are then exact).
func govPMU() PMU {
	return PMU{
		EcoBelowPct: 30, SpotBelowPct: 10, MinYield: 0.5, MinAcceptRate: 0.5,
		ExitAcceptRate: 0.7, RateBeta: 1, MinDwellS: 10,
	}
}

// Table-driven hysteresis semantics: each step feeds one reading at a
// time and expects a mode, exercising enter/exit threshold edges and
// dwell-time boundaries.
func TestGovernorHysteresisTable(t *testing.T) {
	type step struct {
		t, battery, yield, rate float64
		want                    PowerMode
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{
			// Rates exactly AT the enter threshold do not enter (strict <);
			// just below does — but only after the initial dwell.
			name: "enter-threshold-edge",
			steps: []step{
				{0, 100, 1, 0.50, ModeContinuous}, // at threshold: stays
				{5, 100, 1, 0.49, ModeContinuous}, // below, but dwell (10 s from t=0) not met
				{10, 100, 1, 0.49, ModeEco},       // dwell met exactly at boundary
				{12, 100, 1, 0.49, ModeEco},       // stays
			},
		},
		{
			// Exit requires the EWMA to REACH ExitAcceptRate; the band
			// between enter and exit holds the current mode.
			name: "exit-threshold-edge",
			steps: []step{
				{0, 100, 1, 0.4, ModeContinuous},
				{10, 100, 1, 0.4, ModeEco},         // entered after dwell
				{21, 100, 1, 0.69, ModeEco},        // inside the band: holds eco
				{22, 100, 1, 0.70, ModeContinuous}, // at exit threshold: leaves
			},
		},
		{
			// Dwell boundary on the way out: a recovery one instant
			// before the dwell elapses must not flip.
			name: "exit-dwell-boundary",
			steps: []step{
				{0, 100, 1, 0.4, ModeContinuous},
				{10, 100, 1, 0.4, ModeEco},        // eco entered at t=10
				{19.9, 100, 1, 0.9, ModeEco},      // good again, 9.9 s dwelled: holds
				{20, 100, 1, 0.9, ModeContinuous}, // 10 s dwelled: flips
			},
		},
		{
			// Yield is part of the same state machine: low yield enters
			// eco, and exit requires BOTH yield and rate recovered.
			name: "yield-enter-and-joint-exit",
			steps: []step{
				{0, 100, 0.2, 1, ModeContinuous},
				{10, 100, 0.2, 1, ModeEco},
				{25, 100, 0.9, 0.6, ModeEco}, // yield back, rate in band: holds
				{26, 100, 0.9, 0.95, ModeContinuous},
			},
		},
		{
			// Battery thresholds override immediately in both directions
			// and do not count as quality flips.
			name: "battery-immediate",
			steps: []step{
				{0, 100, 1, 1, ModeContinuous},
				{1, 25, 1, 1, ModeEco},        // battery eco, no dwell needed
				{2, 8, 1, 1, ModeSpotCheck},   // battery spot-check
				{3, 80, 1, 1, ModeContinuous}, // recharged: quality state was never eco
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := govPMU().NewGovernor()
			for i, st := range tc.steps {
				if got := g.Decide(st.t, st.battery, st.yield, st.rate); got != st.want {
					t.Fatalf("step %d (t=%g): got %v, want %v", i, st.t, got, st.want)
				}
			}
		})
	}
}

// A synthetic bouncing accept-rate trace — alternating good and bad
// windows around the thresholds — must produce at most one mode flip
// through the governor, while the stateless DecideGated bounces on
// every window.
func TestGovernorBouncingTraceOneFlip(t *testing.T) {
	p := DefaultPMU() // beta 0.25, enter <0.5, exit >=0.65, dwell 20 s
	g := p.NewGovernor()
	statelessFlips := 0
	prev := ModeContinuous
	// 5 s windows for 300 s, accept rate bouncing 0.2 / 0.9.
	for i := 0; i < 60; i++ {
		rate := 0.9
		if i%2 == 1 {
			rate = 0.2
		}
		tS := float64(i) * 5
		g.Decide(tS, 100, 1, rate)
		m := p.DecideGated(100, 1, rate)
		if m != prev {
			statelessFlips++
			prev = m
		}
	}
	if g.Flips() > 1 {
		t.Fatalf("governor flipped %d times on the bouncing trace, want <= 1", g.Flips())
	}
	if statelessFlips < 10 {
		t.Fatalf("stateless baseline only flipped %d times; trace not actually bouncing", statelessFlips)
	}
}

// A sustained dead contact must still flip the governor to eco (the
// hysteresis delays, it does not suppress), and a sustained recovery
// must bring it back: exactly two flips across the whole episode.
func TestGovernorSustainedEpisode(t *testing.T) {
	g := DefaultPMU().NewGovernor()
	var modes []PowerMode
	for i := 0; i < 120; i++ {
		tS := float64(i) * 5
		rate := 0.9
		if i >= 20 && i < 70 {
			rate = 0.1 // 250 s of dead contact
		}
		modes = append(modes, g.Decide(tS, 100, 1, rate))
	}
	if g.Flips() != 2 {
		t.Fatalf("sustained bad episode: %d flips, want exactly 2 (down, up)", g.Flips())
	}
	if modes[0] != ModeContinuous || modes[len(modes)-1] != ModeContinuous {
		t.Fatalf("episode must start and end continuous: %v ... %v", modes[0], modes[len(modes)-1])
	}
	sawEco := false
	for _, m := range modes {
		if m == ModeEco {
			sawEco = true
		}
	}
	if !sawEco {
		t.Fatal("dead-contact episode never reached eco")
	}
}

// Governor defaults: zero governor fields resolve from the policy, the
// EWMA honors the zero-beats contract, and an exit threshold below the
// enter threshold is clamped (the band may collapse, never invert).
func TestGovernorDefaults(t *testing.T) {
	p := PMU{EcoBelowPct: 30, SpotBelowPct: 10, MinYield: 0.5, MinAcceptRate: 0.5}
	g := p.NewGovernor()
	if g.AcceptEWMA() != 1 {
		t.Fatalf("cold governor EWMA %g, want 1", g.AcceptEWMA())
	}
	if g.pmu.ExitAcceptRate <= g.pmu.MinAcceptRate {
		t.Fatalf("default exit %g must sit above enter %g", g.pmu.ExitAcceptRate, g.pmu.MinAcceptRate)
	}
	if g.pmu.RateBeta <= 0 || g.pmu.MinDwellS <= 0 {
		t.Fatalf("governor defaults unresolved: %+v", g.pmu)
	}
	inverted := PMU{MinAcceptRate: 0.8, ExitAcceptRate: 0.2}.withGovernorDefaults()
	if inverted.ExitAcceptRate < inverted.MinAcceptRate {
		t.Fatalf("inverted band survived: enter %g exit %g", inverted.MinAcceptRate, inverted.ExitAcceptRate)
	}
	// EWMA actually smooths.
	g2 := DefaultPMU().NewGovernor()
	g2.Decide(0, 100, 1, 0)
	if e := g2.AcceptEWMA(); math.Abs(e-0.75) > 1e-12 {
		t.Fatalf("EWMA after one 0 reading with beta 0.25: %g, want 0.75", e)
	}
}
