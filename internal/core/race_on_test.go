//go:build race

package core

// raceEnabled reports whether the race detector is instrumenting this
// build; its write barriers and shadow state add heap allocations, so
// the allocation-budget tests skip themselves under -race.
const raceEnabled = true
