package core

// RAM budgeting. The STM32L151 of Table I has 48 KB of RAM; a 30-second
// two-channel acquisition at 250 Hz held as 32-bit samples already needs
// 60 KB, so the firmware cannot process sessions in batch. The
// incremental streaming engine (stream.go), whose history rings are
// bounded by detector horizons rather than a recording length, is what
// actually fits — this file quantifies both, and the tests pin the
// conclusion.

// RAMBudget itemizes the working set of a processing mode.
type RAMBudget struct {
	Mode        string
	SampleBytes int // bytes per stored sample (firmware uses float32)
	Items       []RAMItem
}

// RAMItem is one buffer of the working set.
type RAMItem struct {
	Name  string
	Bytes int
}

// Total sums the working set.
func (r RAMBudget) Total() int {
	t := 0
	for _, it := range r.Items {
		t += it.Bytes
	}
	return t
}

// BatchRAM returns the working set of whole-session batch processing:
// both raw channels plus the conditioned ECG and filtered ICG tracks.
func BatchRAM(fs, seconds float64) RAMBudget {
	const sampleBytes = 4 // float32 on the MCU
	n := int(fs * seconds)
	buf := n * sampleBytes
	return RAMBudget{
		Mode:        "batch",
		SampleBytes: sampleBytes,
		Items: []RAMItem{
			{Name: "ecg-raw", Bytes: buf},
			{Name: "z-raw", Bytes: buf},
			{Name: "ecg-conditioned", Bytes: buf},
			{Name: "icg-filtered", Bytes: buf},
			{Name: "detector-state", Bytes: 2 * 1024},
		},
	}
}

// StreamingRAM returns the working set of the incremental streaming
// engine: no rolling windows are re-analyzed, but the detectors keep
// bounded history rings (QRS search-back and refinement, ICG beat
// history plus the per-beat refiltering context) whose sizes follow the
// stream.go implementation at firmware float32 widths.
//
// The model describes the MCU deployment profile, which pins the ECG
// band-pass to the direct recurrence (StreamConfig.DirectFIR): the
// server-side overlap-save engine adds an FFT working set (~10 KB of
// carry block, spectra and twiddles per stream) that buys 2x throughput
// on wide kernels but has no place in a 48 KB budget.
func StreamingRAM(fs float64, sc StreamConfig) RAMBudget {
	const sampleBytes = 4
	sc = sc.withDefaults()
	sec := func(s float64) int { return int(s*fs) * sampleBytes }
	return RAMBudget{
		Mode:        "streaming",
		SampleBytes: sampleBytes,
		Items: []RAMItem{
			// Delay lines, monotonic deques and biquad registers of the
			// conditioning chains and the QRS band-pass.
			{Name: "filter-state", Bytes: 2 * 1024},
			// Incremental Pan-Tompkins history (conditioned, band-passed,
			// integrated) over the 6 s search-back horizon.
			{Name: "qrs-history", Bytes: 3 * sec(6)},
			// Raw -dZ/dt history: longest analyzable beat plus the
			// refiltering context on both sides.
			{Name: "icg-history", Bytes: sec(sc.WindowSeconds + 2*icgCtxSeconds)},
			// Per-beat zero-phase refiltering scratch.
			{Name: "refilter-scratch", Bytes: sec(3 + 2*icgCtxSeconds)},
			// Base-impedance prefix sums for the causal Z0 estimate.
			{Name: "z-prefix", Bytes: sec(8)},
			{Name: "beat-queue", Bytes: 512},
		},
	}
}
