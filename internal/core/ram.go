package core

// RAM budgeting. The STM32L151 of Table I has 48 KB of RAM; a 30-second
// two-channel acquisition at 250 Hz held as 32-bit samples already needs
// 60 KB, so the firmware cannot process sessions in batch. The streaming
// engine (stream.go) with its 6-second rolling window is what actually
// fits — this file quantifies both, and the tests pin the conclusion.

// RAMBudget itemizes the working set of a processing mode.
type RAMBudget struct {
	Mode        string
	SampleBytes int // bytes per stored sample (firmware uses float32)
	Items       []RAMItem
}

// RAMItem is one buffer of the working set.
type RAMItem struct {
	Name  string
	Bytes int
}

// Total sums the working set.
func (r RAMBudget) Total() int {
	t := 0
	for _, it := range r.Items {
		t += it.Bytes
	}
	return t
}

// BatchRAM returns the working set of whole-session batch processing:
// both raw channels plus the conditioned ECG and filtered ICG tracks.
func BatchRAM(fs, seconds float64) RAMBudget {
	const sampleBytes = 4 // float32 on the MCU
	n := int(fs * seconds)
	buf := n * sampleBytes
	return RAMBudget{
		Mode:        "batch",
		SampleBytes: sampleBytes,
		Items: []RAMItem{
			{Name: "ecg-raw", Bytes: buf},
			{Name: "z-raw", Bytes: buf},
			{Name: "ecg-conditioned", Bytes: buf},
			{Name: "icg-filtered", Bytes: buf},
			{Name: "detector-state", Bytes: 2 * 1024},
		},
	}
}

// StreamingRAM returns the working set of the rolling-window engine.
func StreamingRAM(fs float64, sc StreamConfig) RAMBudget {
	const sampleBytes = 4
	if sc.WindowSeconds <= 0 {
		sc = DefaultStreamConfig()
	}
	n := int(fs * sc.WindowSeconds)
	buf := n * sampleBytes
	return RAMBudget{
		Mode:        "streaming",
		SampleBytes: sampleBytes,
		Items: []RAMItem{
			{Name: "ecg-window", Bytes: buf},
			{Name: "z-window", Bytes: buf},
			{Name: "work-track", Bytes: buf},
			{Name: "filter-state", Bytes: 1 * 1024},
			{Name: "detector-state", Bytes: 2 * 1024},
			{Name: "beat-queue", Bytes: 512},
		},
	}
}
