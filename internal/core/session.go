package core

import "repro/internal/hw/power"

// Session simulation: the PMU policy driven hour by hour against the
// battery model, reproducing the trade-off the paper's PMU is meant to
// manage. SimulateSession runs until the battery is empty or the horizon
// is reached and reports the mode timeline.

// SessionStep is one simulated hour.
type SessionStep struct {
	Hour       float64
	Mode       PowerMode
	BatteryPct float64
	Yield      float64
}

// SessionResult summarizes a simulated deployment.
type SessionResult struct {
	Steps      []SessionStep
	TotalHours float64
	ModeHours  map[PowerMode]float64
}

// SimulateSession runs the PMU against the discharge model. mcuDuty is
// the measured continuous-processing duty cycle; yieldAt returns the
// expected beat-analysis yield at a given hour (contact quality over
// time); horizonHours bounds the simulation.
func SimulateSession(pmu PMU, mcuDuty float64, yieldAt func(hour float64) float64, horizonHours float64) SessionResult {
	d := power.NewDischarge(power.DeviceBattery())
	res := SessionResult{ModeHours: make(map[PowerMode]float64)}
	const step = 1.0 // hours
	for h := 0.0; h < horizonHours && !d.Empty(); h += step {
		y := 1.0
		if yieldAt != nil {
			y = yieldAt(h)
		}
		mode := pmu.Decide(d.Percent(), y)
		budget := ModeBudget(mode, mcuDuty)
		d.Step(budget, step)
		res.Steps = append(res.Steps, SessionStep{
			Hour: h, Mode: mode, BatteryPct: d.Percent(), Yield: y,
		})
		res.ModeHours[mode] += step
		res.TotalHours = h + step
	}
	return res
}
