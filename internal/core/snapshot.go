package core

import "repro/internal/quality"

// Compact session snapshot/restore — the durability layer's view of a
// Streamer. A snapshot deliberately captures only the state that makes
// a restarted session *warm* rather than bit-identical: the gate's
// ensemble template and acceptance EWMA (the PR-4 fast re-lock path),
// the governor's mode and dwell anchor, and the session clocks that
// keep the restored event stream monotonic. The sample-sized DSP state
// — filter delay lines, detector thresholds, the raw-history ring — is
// rebuilt from new samples after the restore, exactly like a fresh
// stream, so snapshots stay a few hundred bytes regardless of session
// length and the recovery laws are about the *event log* (a recovered
// prefix of the true stream) plus a warm continuation, never about
// replaying raw samples.

// StreamSnapshot is the compact durable state of a Streamer.
type StreamSnapshot struct {
	// Beat and TimeS are the session clocks at the snapshot — the
	// beat-attempt count and signal time (Clock), which become the
	// restored streamer's stamp bases.
	Beat  int
	TimeS float64
	// LastMode is the armed governor's last delivered mode (meaningful
	// with HasGov).
	LastMode PowerMode
	// Gate is the quality gate's durable state (HasGate guards it —
	// gating may be disabled).
	HasGate bool
	Gate    quality.GateSnapshot
	// Gov is the armed governor's durable state (HasGov guards it).
	HasGov bool
	Gov    GovernorSnapshot
}

// Clock returns the session clocks: the beat-attempt count and the
// signal time (seconds) pushed so far, both including any restored
// base — the monotonic per-session axes every emitted event is stamped
// with. Health() is deliberately epoch-local (its windows measure the
// current process's feed, so a restored session gets a fresh health
// grace period); Clock is the cross-restart one.
func (s *Streamer) Clock() (beat int, timeS float64) {
	return s.beatBase + s.nBeats, s.timeBase + float64(s.nSamples)/s.fs
}

// Snapshot captures the streamer's durable state.
func (s *Streamer) Snapshot() StreamSnapshot {
	snap := StreamSnapshot{LastMode: s.lastMode}
	snap.Beat, snap.TimeS = s.Clock()
	if s.gate != nil {
		snap.Gate, snap.HasGate = s.gate.Snapshot(), true
	}
	if s.gov != nil {
		snap.Gov, snap.HasGov = s.gov.Snapshot(), true
	}
	return snap
}

// Restore rehydrates a fresh (or Reset) streamer from a snapshot: the
// event stamps continue from the snapshot clocks, the gate scores new
// beats against the restored template immediately (warm re-lock), and
// the governor resumes its mode and dwell on the continued time axis.
// Call it before the first Push of the restored session; health
// windows restart (see Clock).
func (s *Streamer) Restore(snap StreamSnapshot) {
	s.beatBase = snap.Beat
	s.timeBase = snap.TimeS
	if s.gate != nil && snap.HasGate {
		s.gate.Restore(snap.Gate)
	}
	if s.gov != nil && snap.HasGov {
		s.gov.Restore(snap.Gov)
		s.lastMode = snap.LastMode
	}
}
