package core

import (
	"math"

	"repro/internal/bioimp"
	"repro/internal/dsp"
	"repro/internal/ecg"
)

// The conditioning chains of Fig 3 expressed as composable stages that
// both engines share: batch Process applies each stage over the whole
// acquisition (Stage.Apply), while the incremental Streamer drives the
// same chain sample by sample through the stateful form returned by
// Stage.NewStream. Keeping one chain definition guarantees the two
// engines compute the same conditioning, and pins down the state rules:
//
//   - A Stage itself is immutable after construction (it may hold
//     designed filters) and safe for concurrent Apply calls.
//   - All mutable per-stream state (delay lines, deques, registers)
//     lives in the StageStream, one instance per stream; StageStreams
//     are single-goroutine objects, reusable across sessions via Reset.

// Stage is one conditioning step usable by both engines.
type Stage interface {
	// Apply runs the stage over a complete signal; full-length
	// intermediates come from the arena (nil falls back to the heap),
	// and the result is arena-owned when a is non-nil. Apply is safe
	// for concurrent use.
	Apply(a *dsp.Arena, x []float64) []float64
	// NewStream returns fresh streaming state for this stage.
	NewStream() StageStream
}

// StageStream is the stateful streaming form of a Stage. Push appends
// the newly computable outputs for a chunk (output index t corresponds
// to input index t), Flush drains outputs waiting on future samples
// with the batch edge treatment, Lookahead is the pipeline latency in
// samples, and Shift is the morphological delay of the output waveform
// relative to the input timeline (non-zero only for causal IIR stages).
type StageStream interface {
	Push(dst, x []float64) []float64
	Flush(dst []float64) []float64
	Lookahead() int
	Shift() int
	Reset()
}

// Chain is an ordered stage sequence.
type Chain []Stage

// Apply runs the whole chain over x.
func (c Chain) Apply(a *dsp.Arena, x []float64) []float64 {
	for _, st := range c {
		x = st.Apply(a, x)
	}
	return x
}

// NewStream builds the streaming form of the chain.
func (c Chain) NewStream() *ChainStream {
	cs := &ChainStream{stages: make([]StageStream, len(c))}
	for i, st := range c {
		cs.stages[i] = st.NewStream()
	}
	return cs
}

// ChainStream pipes chunks through the stage streams, ping-ponging
// between two persistent scratch buffers so steady state allocates
// nothing once the buffers have grown to the chunk size.
type ChainStream struct {
	stages []StageStream
	b1, b2 []float64
}

// Push consumes a chunk and appends the conditioned samples to dst.
func (cs *ChainStream) Push(dst, x []float64) []float64 {
	cur := x
	useA := true
	a, b := cs.b1, cs.b2
	for _, st := range cs.stages {
		if useA {
			a = st.Push(a[:0], cur)
			cur = a
		} else {
			b = st.Push(b[:0], cur)
			cur = b
		}
		useA = !useA
	}
	cs.b1, cs.b2 = a, b
	if len(cs.stages) == 0 {
		return append(dst, x...)
	}
	return append(dst, cur...)
}

// Flush drains every stage in order, piping each stage's tail through
// the rest of the chain, and appends the final samples to dst.
func (cs *ChainStream) Flush(dst []float64) []float64 {
	for i := range cs.stages {
		tail := cs.stages[i].Flush(nil)
		for j := i + 1; j < len(cs.stages); j++ {
			tail = cs.stages[j].Push(nil, tail)
		}
		dst = append(dst, tail...)
	}
	return dst
}

// Lookahead returns the chain's total pipeline latency in samples.
func (cs *ChainStream) Lookahead() int {
	n := 0
	for _, st := range cs.stages {
		n += st.Lookahead()
	}
	return n
}

// Shift returns the chain's total morphological delay in samples.
func (cs *ChainStream) Shift() int {
	n := 0
	for _, st := range cs.stages {
		n += st.Shift()
	}
	return n
}

// Reset returns every stage to its initial state, keeping buffers.
func (cs *ChainStream) Reset() {
	for _, st := range cs.stages {
		st.Reset()
	}
}

// --- Concrete stages of the paper's chains. ---

// baselineStage removes the morphological baseline estimate
// (Section IV-A.1). The naive-engine ablation flag affects only the
// batch cost model; both engines compute identical sliding extrema.
type baselineStage struct{ cfg ecg.BaselineConfig }

func (st baselineStage) Apply(a *dsp.Arena, x []float64) []float64 {
	return ecg.RemoveBaselineWith(a, x, st.cfg)
}
func (st baselineStage) NewStream() StageStream { return ecg.NewBaselineStream(st.cfg) }

// firZeroPhaseStage applies the pre-designed FIR forward-backward
// (zero phase), the paper's default ECG band-pass application.
type firZeroPhaseStage struct{ f *dsp.FIR }

func (st firZeroPhaseStage) Apply(a *dsp.Arena, x []float64) []float64 {
	return dsp.FiltFiltFIRWith(a, st.f, x)
}
func (st firZeroPhaseStage) NewStream() StageStream { return dsp.NewZeroPhaseFIRStream(st.f) }

// firZeroPhaseDirectStage is firZeroPhaseStage with the streaming
// engine pinned to the direct per-sample recurrence
// (StreamConfig.DirectFIR): the MCU deployment profile and the A/B
// baseline for the streaming overlap-save crossover. The batch form is
// identical.
type firZeroPhaseDirectStage struct{ f *dsp.FIR }

func (st firZeroPhaseDirectStage) Apply(a *dsp.Arena, x []float64) []float64 {
	return dsp.FiltFiltFIRWith(a, st.f, x)
}
func (st firZeroPhaseDirectStage) NewStream() StageStream {
	return dsp.NewZeroPhaseFIRStreamDirect(st.f)
}

// firSameStage applies the FIR once with centered group-delay
// compensation (the single-pass ablation A5).
type firSameStage struct{ f *dsp.FIR }

func (st firSameStage) Apply(a *dsp.Arena, x []float64) []float64 {
	if a != nil {
		return st.f.ApplyTo(a.F64(len(x)), x)
	}
	return st.f.Apply(x)
}
func (st firSameStage) NewStream() StageStream { return dsp.NewFIRSameStream(st.f) }

// icgDerivStage derives ICG = -dZ/dt from the impedance channel
// (Section IV-B).
type icgDerivStage struct{ fs float64 }

func (st icgDerivStage) Apply(a *dsp.Arena, x []float64) []float64 {
	var dst []float64
	if a != nil {
		dst = a.F64(len(x))
	} else {
		dst = make([]float64, len(x))
	}
	return bioimp.ICGFromZTo(dst, x, st.fs)
}
func (st icgDerivStage) NewStream() StageStream { return dsp.NewDerivStream(st.fs, -1) }

// sosZeroPhaseStage applies the biquad cascade forward-backward in
// batch; its stream is the causal cascade with steady-state priming,
// whose in-band group delay is declared as the stream's Shift so
// downstream consumers re-align the waveform.
type sosZeroPhaseStage struct {
	s     dsp.SOS
	shift int
}

func (st sosZeroPhaseStage) Apply(a *dsp.Arena, x []float64) []float64 {
	return st.s.FiltFiltWith(a, x)
}
func (st sosZeroPhaseStage) NewStream() StageStream { return dsp.NewSOSStream(st.s, st.shift, true) }

// sosCausalStage applies the cascade once, causally, in both engines
// (ablation A5); batch and stream match sample for sample.
type sosCausalStage struct{ s dsp.SOS }

func (st sosCausalStage) Apply(a *dsp.Arena, x []float64) []float64 {
	if a != nil {
		return st.s.FilterTo(a.F64(len(x)), x)
	}
	return st.s.Filter(x)
}
func (st sosCausalStage) NewStream() StageStream { return dsp.NewSOSStream(st.s, 0, false) }

// icgAlignHz is the reference frequency for the causal ICG cascade's
// group-delay compensation: the systolic B-C-X complex concentrates its
// energy around a few hertz.
const icgAlignHz = 4.0

// buildChains assembles the conditioning chains for a designed bank.
func buildChains(cfg Config, fs float64, b *filterBank) {
	blCfg := ecg.DefaultBaseline(fs)
	blCfg.Naive = cfg.NaiveMorph
	b.blCfg = blCfg
	if cfg.CausalFilters {
		b.ecgChain = Chain{baselineStage{cfg: blCfg}, firSameStage{f: b.ecgFIR}}
		b.icgChain = Chain{icgDerivStage{fs: fs}, sosCausalStage{s: b.icgLP}}
		if b.icgHP != nil {
			b.icgChain = append(b.icgChain, sosCausalStage{s: b.icgHP})
		}
		return
	}
	b.ecgChain = Chain{baselineStage{cfg: blCfg}, firZeroPhaseStage{f: b.ecgFIR}}
	// Zero-phase cascades commute, so the high-pass runs first: the
	// incremental delineator exploits that order (the slow band-edge
	// high-pass over the full settling context, the fast low-pass over a
	// short guard), and keeping batch and stream on the same order keeps
	// them numerically identical beat for beat.
	//
	// The chains' streaming forms are causal with steady-state priming;
	// compensate the cascade's combined in-band group delay with one
	// integer shift (rounded once, on the low-pass stage).
	gd := b.icgLP.GroupDelaySamples(icgAlignHz, fs)
	if b.icgHP != nil {
		gd += b.icgHP.GroupDelaySamples(icgAlignHz, fs)
	}
	shift := int(math.Round(gd))
	if shift < 0 {
		shift = 0
	}
	b.icgChain = Chain{icgDerivStage{fs: fs}}
	if b.icgHP != nil {
		b.icgChain = append(b.icgChain, sosZeroPhaseStage{s: b.icgHP, shift: 0})
	}
	b.icgChain = append(b.icgChain, sosZeroPhaseStage{s: b.icgLP, shift: shift})
}
