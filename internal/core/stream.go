package core

import (
	"repro/internal/dsp"
	"repro/internal/ecg"
	"repro/internal/event"
	"repro/internal/hemo"
	"repro/internal/icg"
	"repro/internal/quality"
)

// Streamer processes the two channels incrementally, the way streaming
// firmware must: every sample passes through the stateful conditioning
// chains exactly once (stage.go), the incremental Pan-Tompkins detector
// confirms R peaks as they appear, and the beat delineator analyzes
// each completed RR segment exactly once. Steady-state cost is O(1) per
// sample plus O(beat) per beat — it does not depend on any analysis
// window — and beats are emitted exactly once, in order, with absolute
// session TimeS.
//
// Reporting latency: a beat is emitted once its *closing* R peak is
// confirmed and its ICG refiltering context has arrived, which happens
// Latency() seconds after that R peak entered Push; the Latency method
// computes the same per-stage sum the emission path implements, so the
// value and the behavior cannot drift apart. End-to-end, a beat is
// reported one RR interval plus Latency() after its own R peak — the
// ICG side's 2.5 s settling context dominates at the paper's 250 Hz
// configuration, matching the legacy engine's hop+margin worst case
// while emitting per beat instead of per hop.
type Streamer struct {
	dev *Device
	fs  float64

	ecgStream *ChainStream // baseline removal + zero-phase FIR
	icgStream *ChainStream // -dZ/dt + Butterworth conditioning
	pt        *ecg.PTStream
	delin     *icg.Delineator
	// gate is the per-beat quality gate state (nil when gating is
	// disabled): the same quality.BeatGate the batch Process applies,
	// in streaming form, scoring each beat as its delineation completes.
	gate *quality.GateStream

	// Per-push scratch, reused across pushes.
	condBuf, icgBuf []float64
	rsBuf           []int
	beatsBuf        []icg.BeatAnalysis

	// Confirmed R peaks not yet consumed as beat boundaries: beat k is
	// delimited by rHist[beatIdx], rHist[beatIdx+1].
	rHist   []int
	beatIdx int

	// Contact-health signals (Health): the sample clock, the number of
	// beat attempts consumed (scored and failed), and the closing R of
	// the last one. All three advance deterministically with the input,
	// never with the chunking.
	nSamples    int
	nBeats      int
	lastBeatEnd int
	// beatBase/timeBase offset the *stamps* of emitted events after a
	// snapshot Restore: detector-local indices restart at zero (the DSP
	// state is rebuilt from new samples), but the session's beat count
	// and signal clock continue where the snapshot left them, so the
	// restored event stream and the governor's dwell axis stay
	// monotonic. Zero for a never-restored streamer; Reset clears them.
	beatBase int
	timeBase float64
	// healthFloor, when > 0, makes emit track the onset of the gate
	// EWMA sitting below it (belowSince, a sample index; -1 while at or
	// above). The onset is updated exactly where the EWMA changes — per
	// beat — so a recovery between two beats inside one push chunk is
	// never missed and the below-floor window is chunking-invariant.
	healthFloor float64
	belowSince  int

	// Typed event delivery (Emit): when sink is non-nil, Push/Flush
	// deliver beats, floor transitions and governor mode changes as
	// event.Events instead of returning beat slices. The sink and
	// session stamp are per-session state (cleared by Reset); the armed
	// governor, like healthFloor, is an engine-lifetime policy that
	// survives Reset with its mutable state rewound.
	sink     event.Sink
	sess     uint64
	gov      *Governor
	lastMode PowerMode

	// Causal base-impedance estimate: cumulative sums of the raw Z
	// channel, so each beat reports the mean impedance of the session up
	// to its closing R peak (deterministic regardless of chunking).
	zPrefix *dsp.Ring
	zSum    float64

	body hemo.BodyConstants
	cal  hemo.Calibration
}

// StreamConfig tunes the streaming engines.
type StreamConfig struct {
	// WindowSeconds bounds the analysis history of the incremental
	// engine (the longest analyzable RR segment) and is the rolling
	// window of the legacy WindowStreamer (default 6 s).
	WindowSeconds float64
	// HopSeconds is the re-analysis period of the legacy WindowStreamer
	// (default 1 s); the incremental engine emits per beat and ignores it.
	HopSeconds float64
	// MarginSeconds is the legacy engine's trailing settling margin
	// (default 1.5 s); the incremental engine has no unstable window
	// tail and ignores it.
	MarginSeconds float64
	// Thoracic selects the identity calibration (direct thoracic
	// measurement) instead of the touch-path calibration.
	Thoracic bool
	// LegacyRefilter selects the windowed per-beat high-pass filtfilt in
	// the incremental delineator instead of the rolling forward-pass
	// cache (icg.Delineator.SetLegacyRefilter) — the benchmark baseline
	// for the cache, kept for A/B comparison.
	LegacyRefilter bool
	// DirectFIR pins the streaming zero-phase ECG band-pass to the
	// direct per-sample recurrence instead of the block-carried
	// overlap-save engine (dsp.NewZeroPhaseFIRStreamDirect): the MCU
	// deployment profile, which has no FFT working set in its RAM model
	// (see StreamingRAM), and the A/B baseline for the crossover.
	DirectFIR bool
}

// DefaultStreamConfig returns the firmware defaults.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{WindowSeconds: 6, HopSeconds: 1, MarginSeconds: 1.5}
}

func (sc StreamConfig) withDefaults() StreamConfig {
	if sc.WindowSeconds <= 0 {
		sc.WindowSeconds = 6
	}
	if sc.HopSeconds <= 0 {
		sc.HopSeconds = 1
	}
	if sc.MarginSeconds <= 0 {
		sc.MarginSeconds = 1.5
	}
	return sc
}

// defaultDetectFor builds the beat-detector configuration the device's
// engines share.
func defaultDetectFor(cfg Config, fs float64) icg.DetectConfig {
	dCfg := icg.DefaultDetect(fs)
	dCfg.XRule = cfg.XRule
	dCfg.BRule = cfg.BRule
	return dCfg
}

// NewStreamer builds the incremental streaming front end for the device.
func (d *Device) NewStreamer(sc StreamConfig) *Streamer {
	sc = sc.withDefaults()
	fs := d.cfg.FS
	cal := hemo.TouchCal()
	if sc.Thoracic {
		cal = hemo.IdentityCal()
	}
	bank := d.bank
	ptCfg := ecg.DefaultPT(fs)
	ptCfg.BandSOS = bank.ptSOS
	pt, err := ecg.NewPTStream(ptCfg)
	if err != nil {
		// The cached band-pass always exists; reaching here means the
		// device configuration was tampered with after construction.
		panic("core: streaming QRS detector: " + err.Error())
	}
	dCfg := defaultDetectFor(d.cfg, fs)
	var icgStream *ChainStream
	var delin *icg.Delineator
	if d.cfg.CausalFilters {
		// The causal ablation conditions the stream itself: the chain's
		// streaming form equals its batch form sample for sample.
		icgStream = bank.icgChain.NewStream()
		delin = icg.NewDelineator(dCfg, nil, nil, icgStream.Shift(), 0, sc.WindowSeconds)
	} else {
		// Zero-phase conditioning cannot be streamed causally; only the
		// derivative runs per sample, and the delineator applies the
		// Butterworth cascade forward-backward per beat segment with a
		// settling context (see icg.Delineator).
		icgStream = Chain{icgDerivStage{fs: fs}}.NewStream()
		delin = icg.NewDelineator(dCfg, bank.icgLP, bank.icgHP, 0, icgCtxSeconds, sc.WindowSeconds)
		delin.SetLegacyRefilter(sc.LegacyRefilter)
	}
	var gate *quality.GateStream
	if d.gate != nil {
		gate = d.gate.NewStream()
	}
	ecgStream := bank.ecgChain.NewStream()
	if sc.DirectFIR && !d.cfg.CausalFilters {
		// MCU profile / A/B baseline: same chain, FIR stage pinned to the
		// direct engine. The chain definition still lives in buildChains;
		// only the engine choice differs, never the alignment or edges.
		ecgStream = Chain{baselineStage{cfg: bank.blCfg}, firZeroPhaseDirectStage{f: bank.ecgFIR}}.NewStream()
	}
	return &Streamer{
		belowSince: -1,
		dev:        d,
		fs:         fs,
		ecgStream:  ecgStream,
		icgStream:  icgStream,
		pt:         pt,
		delin:      delin,
		gate:       gate,
		zPrefix:    dsp.NewRing(int(8 * fs)),
		body:       d.cfg.Body,
		cal:        cal,
	}
}

// icgCtxSeconds is the per-beat refiltering context. The zero-phase
// cascade's slowest mode (the 0.5 Hz band-edge high-pass) decays by
// ~250x over 2.5 s, which empirically makes the per-beat conditioning
// bit-exact against the batch whole-recording filtfilt on the study
// subjects; shorter contexts leave occasional rule-boundary flips of
// the B/X points on single beats.
const icgCtxSeconds = 2.5

// Push appends simultaneously sampled ECG and impedance samples (equal
// lengths) and returns the beats completed by this push, in order.
// When an event sink is armed (Emit) the beats are delivered as
// KindBeat events instead and Push returns nil — the two delivery paths
// carry byte-identical parameters in identical order (the event/legacy
// parity law).
func (s *Streamer) Push(ecgSamples, zSamples []float64) []hemo.BeatParams {
	if len(ecgSamples) != len(zSamples) {
		panic("core: Streamer.Push requires equal-length channels")
	}
	s.nSamples += len(zSamples)
	for _, v := range zSamples {
		s.zSum += v
		s.zPrefix.Push(s.zSum)
	}
	if s.gate != nil {
		s.gate.Push(zSamples)
	}
	s.condBuf = s.ecgStream.Push(s.condBuf[:0], ecgSamples)
	s.icgBuf = s.icgStream.Push(s.icgBuf[:0], zSamples)

	s.rsBuf = s.pt.Push(s.rsBuf[:0], s.condBuf)
	s.beatsBuf = s.delin.PushICG(s.beatsBuf[:0], s.icgBuf)
	for _, r := range s.rsBuf {
		s.rHist = append(s.rHist, r)
		s.beatsBuf = s.delin.PushR(s.beatsBuf, r)
	}
	return s.emit(s.beatsBuf)
}

// Flush ends the session: the conditioning chains drain their lookahead
// with the batch edge treatment, the detector confirms its tail peaks,
// and the final completed beats are returned.
func (s *Streamer) Flush() []hemo.BeatParams {
	s.condBuf = s.ecgStream.Flush(s.condBuf[:0])
	s.rsBuf = s.pt.Push(s.rsBuf[:0], s.condBuf)
	s.rsBuf = s.pt.Flush(s.rsBuf)

	s.icgBuf = s.icgStream.Flush(s.icgBuf[:0])
	s.beatsBuf = s.delin.PushICG(s.beatsBuf[:0], s.icgBuf)
	for _, r := range s.rsBuf {
		s.rHist = append(s.rHist, r)
		s.beatsBuf = s.delin.PushR(s.beatsBuf, r)
	}
	s.beatsBuf = s.delin.Flush(s.beatsBuf)
	return s.emit(s.beatsBuf)
}

// emit converts completed beat analyses into hemodynamic parameters,
// each scored by the quality gate as it completes. Beat k corresponds
// to the R pair (rHist[beatIdx], rHist[beatIdx+1]); failed beats
// consume their pair without emitting, exactly once (the gate counts
// them against the acceptance rate).
//
// Event ordering law (pinned by the parity tests): per beat attempt the
// sink receives at most one KindBeat, then at most one KindHealth
// (floor transition), then at most one KindMode (governor flip) — all
// stamped with the attempt index and the closing R's signal time, all
// pure functions of the samples pushed so far.
func (s *Streamer) emit(beats []icg.BeatAnalysis) []hemo.BeatParams {
	var out []hemo.BeatParams
	for i := range beats {
		b := &beats[i]
		rLo, rHi := s.rHist[s.beatIdx], s.rHist[s.beatIdx+1]
		s.beatIdx++
		s.nBeats++
		s.lastBeatEnd = rHi
		if b.Err != nil || b.Points == nil {
			if s.gate != nil {
				s.gate.PushFailed()
			}
			s.afterBeat(rHi)
			continue
		}
		// Causal base impedance: session mean up to the closing R.
		z0 := s.zPrefix.At(rHi-1) / float64(rHi)
		bp := hemo.FromPoints(b.Points, rHi, z0, s.fs, s.body, s.cal)
		if s.gate != nil {
			sqi := s.gate.PushBeat(rLo, rHi, b)
			bp.Quality = sqi.Score
			bp.Accepted = sqi.Accepted
		}
		if s.sink != nil {
			s.sink.Emit(event.Event{
				Kind:    event.KindBeat,
				Session: s.sess,
				Beat:    s.beatBase + s.nBeats,
				TimeS:   s.timeBase + float64(rHi)/s.fs,
				Params:  bp,
			})
		} else {
			out = append(out, bp)
		}
		s.afterBeat(rHi)
	}
	// Compact the consumed R history so a long session stays O(1).
	if s.beatIdx > 256 {
		s.rHist = append(s.rHist[:0], s.rHist[s.beatIdx:]...)
		s.beatIdx = 0
	}
	return out
}

// afterBeat runs once per consumed beat attempt, after the gate state
// advanced: health-floor tracking (with its transition event) and the
// armed governor's per-beat step (with its mode-change event). These
// are the only points where the EWMA — and hence either decision — can
// change, so the resulting event stream is chunking-invariant.
func (s *Streamer) afterBeat(rHi int) {
	wasBelow := s.belowSince >= 0
	s.observeHealth(rHi)
	isBelow := s.belowSince >= 0
	tS := s.timeBase + float64(rHi)/s.fs
	if s.sink != nil && isBelow != wasBelow {
		s.sink.Emit(event.Event{
			Kind:       event.KindHealth,
			Session:    s.sess,
			Beat:       s.beatBase + s.nBeats,
			TimeS:      tS,
			AcceptEWMA: s.acceptEWMA(),
			Below:      isBelow,
			Floor:      s.healthFloor,
		})
	}
	if s.gov != nil {
		// Quality-only governor step: full battery and full yield, so
		// the mode is a pure function of the pushed samples (the gate's
		// per-beat accept EWMA). Battery-aware policies belong to the
		// caller, who has the battery state the stream does not.
		mode := s.gov.Decide(tS, 100, 1, s.acceptEWMA())
		if mode != s.lastMode {
			if s.sink != nil {
				s.sink.Emit(event.Event{
					Kind:       event.KindMode,
					Session:    s.sess,
					Beat:       s.beatBase + s.nBeats,
					TimeS:      tS,
					AcceptEWMA: s.gov.AcceptEWMA(),
					Mode:       int(mode),
					PrevMode:   int(s.lastMode),
				})
			}
			s.lastMode = mode
		}
	}
}

// acceptEWMA is the gate's per-beat accept-rate EWMA, honoring the
// zero-beats contract when gating is disabled.
func (s *Streamer) acceptEWMA() float64 {
	if s.gate == nil {
		return 1
	}
	return s.gate.AcceptEWMA()
}

// Emit arms typed event delivery: subsequent Push and Flush calls
// return nil and instead deliver each completed beat as a KindBeat
// event to sink, along with KindHealth floor transitions (when
// SetHealthFloor armed a floor) and KindMode governor flips (when
// ArmGovernor armed a policy) — at the point they become true, in
// per-beat order, synchronously on the pushing goroutine. session
// stamps every event (0 for a bare streamer). Passing a nil sink
// disarms delivery and restores the returned-slice behavior. The sink
// is per-session state: Reset clears it.
func (s *Streamer) Emit(sink event.Sink, session uint64) {
	s.sink = sink
	s.sess = session
}

// ArmGovernor attaches a PMU policy whose hysteresis governor is
// stepped once per beat attempt on the gate's accept-rate EWMA (battery
// and yield pinned to their best case — the stream has no battery);
// quality-driven mode changes are delivered as KindMode events when a
// sink is armed. Like the health floor, the policy is engine-lifetime
// configuration: it survives Reset with its mutable state rewound.
func (s *Streamer) ArmGovernor(p PMU) {
	s.gov = p.NewGovernor()
	s.lastMode = ModeContinuous
}

// Latency returns the worst-case delay in seconds from a beat's closing
// R peak entering Push to the beat being emitted: the conditioning
// chains' lookahead plus the QRS detector's confirmation-and-refinement
// lookahead on the ECG side, or the ICG chain's lookahead plus its
// group-delay re-alignment on the impedance side, whichever is larger.
// (End-to-end latency from the beat's own R peak adds one RR interval,
// since the beat is delimited by the next R.) This is the same formula
// the engine's emission path implements, so the value and the behavior
// cannot drift apart.
func (s *Streamer) Latency() float64 {
	ecgSide := s.ecgStream.Lookahead() + s.pt.Lookahead()
	icgSide := s.icgStream.Lookahead() + s.icgStream.Shift() + s.delin.Lookahead()
	n := ecgSide
	if icgSide > n {
		n = icgSide
	}
	return float64(n) / s.fs
}

// AcceptRate returns the quality gate's acceptance rate over the beats
// processed so far — failed delineations count as rejected — or 1 when
// gating is disabled. Feed it to PMU.DecideGated: sustained low
// acceptance means bad contact is wasting processing energy.
//
// Zero-beats contract: before any beat has been processed the rate is
// exactly 1 — never 0 or NaN — matching quality.GateStream.AcceptRate,
// Output.AcceptRate and session.Session.AcceptRate. A fresh stream has
// shown no evidence of bad contact; the optimistic default keeps PMU
// policies in ModeContinuous through warmup.
func (s *Streamer) AcceptRate() float64 {
	if s.gate == nil {
		return 1
	}
	return s.gate.AcceptRate()
}

// SetHealthFloor arms per-beat tracking of the accept-rate EWMA
// sitting below floor (StreamHealth.RateBelowSinceS); 0 disarms it.
// The session engine sets it from HealthConfig.EvictBelowRate when a
// streamer enters its pool; it survives Reset (the floor is an
// engine-lifetime constant, not per-stream state). Changing the floor
// discards any tracked onset — it was measured against the old floor
// and would otherwise report a stale (or, after re-arming, instantly
// evictable) window.
func (s *Streamer) SetHealthFloor(floor float64) {
	s.healthFloor = floor
	s.belowSince = -1
}

// observeHealth runs once per consumed beat attempt, right after the
// gate state advanced: the only points where the EWMA can change, so
// the below-floor onset is exact regardless of chunking.
func (s *Streamer) observeHealth(rHi int) {
	if s.healthFloor <= 0 || s.gate == nil {
		return
	}
	if s.gate.AcceptEWMA() < s.healthFloor {
		if s.belowSince < 0 {
			s.belowSince = rHi
		}
	} else {
		s.belowSince = -1
	}
}

// StreamHealth is a snapshot of a streamer's contact-health signals.
// Every field is a pure function of the samples pushed so far — the
// EWMA advances per beat, the clocks per sample — so two streamers fed
// the same input under any chunking report identical snapshots at the
// same sample position (the gate parity law lifted to the health layer).
type StreamHealth struct {
	// AcceptEWMA is the per-beat accept-rate EWMA
	// (quality.GateStream.AcceptEWMA); 1 before any beat or when gating
	// is disabled.
	AcceptEWMA float64
	// Beats counts beat attempts consumed so far, scored and failed.
	Beats int
	// Samples is the exact sample count pushed (SignalS is this divided
	// by the rate; consumers needing integers should use Samples rather
	// than re-deriving them from seconds, which truncates).
	Samples int
	// LastBeatS is the signal time (seconds) of the last consumed
	// beat's closing R peak; 0 before any beat.
	LastBeatS float64
	// SignalS is the total signal time pushed (seconds).
	SignalS float64
	// RateBelowSinceS is the signal time (seconds) of the beat at which
	// the EWMA last dropped below the armed health floor
	// (SetHealthFloor) and has stayed below since — updated per beat,
	// the only points where the EWMA changes, so an intra-chunk
	// recovery always resets it. -1 while at/above the floor, when no
	// floor is armed, or when gating is disabled.
	RateBelowSinceS float64
}

// Health reports the streamer's contact-health signals; the session
// engine's eviction policy (session.HealthConfig) is built on it.
func (s *Streamer) Health() StreamHealth {
	h := StreamHealth{
		AcceptEWMA:      1,
		Beats:           s.nBeats,
		Samples:         s.nSamples,
		LastBeatS:       float64(s.lastBeatEnd) / s.fs,
		SignalS:         float64(s.nSamples) / s.fs,
		RateBelowSinceS: -1,
	}
	if s.gate != nil {
		h.AcceptEWMA = s.gate.AcceptEWMA()
	}
	if s.belowSince >= 0 {
		h.RateBelowSinceS = float64(s.belowSince) / s.fs
	}
	return h
}

// AcceptCounts returns how many beats the gate accepted out of all it
// saw (0, 0 when gating is disabled).
func (s *Streamer) AcceptCounts() (accepted, total int) {
	if s.gate == nil {
		return 0, 0
	}
	return s.gate.Counts()
}

// Reset returns the streamer to its initial state, keeping every buffer
// and filter allocation, so pooled engines can reuse it across sessions.
func (s *Streamer) Reset() {
	s.ecgStream.Reset()
	s.icgStream.Reset()
	s.pt.Reset()
	s.delin.Reset()
	if s.gate != nil {
		s.gate.Reset()
	}
	s.rHist = s.rHist[:0]
	s.beatIdx = 0
	s.nSamples = 0
	s.nBeats = 0
	s.lastBeatEnd = 0
	s.beatBase = 0
	s.timeBase = 0
	s.belowSince = -1 // healthFloor deliberately survives Reset
	s.zPrefix.Reset()
	s.zSum = 0
	s.sink = nil // the sink and stamp are per-session; the armed
	s.sess = 0   // governor POLICY survives, its state rewinds
	if s.gov != nil {
		s.gov.Reset()
		s.lastMode = ModeContinuous
	}
}
