package core

import (
	"repro/internal/bioimp"
	"repro/internal/dsp"
	"repro/internal/ecg"
	"repro/internal/hemo"
	"repro/internal/icg"
)

// Streamer processes the two channels sample by sample, the way the
// firmware runs: samples accumulate in a rolling window, the window is
// re-analyzed on every hop, and beats are emitted exactly once as soon as
// their full RR segment (plus a settling margin for the zero-phase
// filters) is available. End-to-end latency is WindowSeconds —
// HopSeconds of buffering plus the margin; with the defaults a beat is
// reported roughly two seconds after its X point, which is what
// "real-time beat-to-beat" means for a hand-held spot-check device.
type Streamer struct {
	dev *Device

	winN, hopN, marginN int
	ecgBuf, zBuf        []float64
	consumed            int // absolute index of ecgBuf[0]
	lastEmittedR        int // absolute index of the last emitted beat's R
	pushedTotal         int

	body hemo.BodyConstants
	cal  hemo.Calibration

	// A Streamer is driven from a single goroutine (sample-by-sample
	// firmware semantics), so it owns its scratch arena directly and
	// reuses the device's pre-designed filter bank: re-analyzing a window
	// every hop allocates nothing beyond the beats it emits.
	arena dsp.Arena
}

// StreamConfig tunes the rolling-window analysis.
type StreamConfig struct {
	WindowSeconds float64 // analysis window (default 6 s)
	HopSeconds    float64 // re-analysis period (default 1 s)
	MarginSeconds float64 // trailing settling margin (default 1.5 s)
	// Thoracic selects the identity calibration (direct thoracic
	// measurement) instead of the touch-path calibration.
	Thoracic bool
}

// DefaultStreamConfig returns the firmware defaults.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{WindowSeconds: 6, HopSeconds: 1, MarginSeconds: 1.5}
}

// NewStreamer builds a streaming front end for the device.
func (d *Device) NewStreamer(sc StreamConfig) *Streamer {
	if sc.WindowSeconds <= 0 {
		sc.WindowSeconds = 6
	}
	if sc.HopSeconds <= 0 {
		sc.HopSeconds = 1
	}
	if sc.MarginSeconds <= 0 {
		sc.MarginSeconds = 1.5
	}
	fs := d.cfg.FS
	cal := hemo.TouchCal()
	if sc.Thoracic {
		cal = hemo.IdentityCal()
	}
	return &Streamer{
		dev:          d,
		winN:         int(sc.WindowSeconds * fs),
		hopN:         int(sc.HopSeconds * fs),
		marginN:      int(sc.MarginSeconds * fs),
		lastEmittedR: -1,
		body:         d.cfg.Body,
		cal:          cal,
	}
}

// Push appends simultaneously sampled ECG and impedance samples (equal
// lengths) and returns the beats completed by this push, in order.
func (s *Streamer) Push(ecgSamples, zSamples []float64) []hemo.BeatParams {
	if len(ecgSamples) != len(zSamples) {
		panic("core: Streamer.Push requires equal-length channels")
	}
	s.ecgBuf = append(s.ecgBuf, ecgSamples...)
	s.zBuf = append(s.zBuf, zSamples...)
	s.pushedTotal += len(ecgSamples)

	var out []hemo.BeatParams
	for len(s.ecgBuf) >= s.winN {
		out = append(out, s.analyzeWindow(false)...)
		// Advance by one hop, keeping window-minus-hop samples of history.
		drop := s.hopN
		if drop > len(s.ecgBuf) {
			drop = len(s.ecgBuf)
		}
		s.ecgBuf = s.ecgBuf[drop:]
		s.zBuf = s.zBuf[drop:]
		s.consumed += drop
	}
	return out
}

// Flush analyzes whatever remains in the buffer (end of session) and
// returns the final beats.
func (s *Streamer) Flush() []hemo.BeatParams {
	if len(s.ecgBuf) < int(s.dev.cfg.FS) {
		return nil
	}
	return s.analyzeWindow(true)
}

// Latency returns the worst-case reporting latency in seconds.
func (s *Streamer) Latency() float64 {
	return float64(s.hopN+s.marginN) / s.dev.cfg.FS
}

// analyzeWindow runs the batch pipeline on the current buffer and emits
// beats that are complete, inside the stable region, and not yet emitted.
func (s *Streamer) analyzeWindow(last bool) []hemo.BeatParams {
	fs := s.dev.cfg.FS
	n := len(s.ecgBuf)
	window := n
	if !last && window > s.winN {
		window = s.winN
	}
	ecgW := s.ecgBuf[:window]
	zW := s.zBuf[:window]

	ar := &s.arena
	ar.Reset()
	bank := s.dev.bank

	blCfg := ecg.DefaultBaseline(fs)
	blCfg.Naive = s.dev.cfg.NaiveMorph
	cond := ecg.RemoveBaselineWith(ar, ecgW, blCfg)
	cond = dsp.FiltFiltFIRWith(ar, bank.ecgFIR, cond)
	ptCfg := ecg.DefaultPT(fs)
	ptCfg.BandSOS = bank.ptSOS
	pt, err := ecg.DetectQRSWith(ar, cond, ptCfg)
	if err != nil || len(pt.RPeaks) < 2 {
		return nil
	}
	icgRaw := bioimp.ICGFromZTo(ar.F64(len(zW)), zW, fs)
	icgF := icg.ApplyDesigned(ar, bank.icgLP, bank.icgHP, icgRaw)
	dCfg := icg.DefaultDetect(fs)
	dCfg.XRule = s.dev.cfg.XRule
	dCfg.BRule = s.dev.cfg.BRule
	z0 := dsp.Mean(zW)

	limit := window - s.marginN
	if last {
		limit = window
	}
	var out []hemo.BeatParams
	for i := 0; i+1 < len(pt.RPeaks); i++ {
		rAbs := s.consumed + pt.RPeaks[i]
		if rAbs <= s.lastEmittedR {
			continue // already emitted by an earlier window
		}
		if pt.RPeaks[i+1] >= limit {
			break // next window will see this beat in the stable region
		}
		pts, err := icg.DetectBeat(icgF, pt.RPeaks[i], pt.RPeaks[i+1], -1, dCfg)
		if err != nil {
			s.lastEmittedR = rAbs // do not retry a truly bad beat forever
			continue
		}
		bp := hemo.FromPoints(pts, pt.RPeaks[i+1], z0, fs, s.body, s.cal)
		bp.TimeS = float64(rAbs) / fs // absolute session time
		out = append(out, bp)
		s.lastEmittedR = rAbs
	}
	return out
}
