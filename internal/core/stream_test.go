package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hemo"
	"repro/internal/physio"
)

func TestStreamerMatchesBatch(t *testing.T) {
	s, _ := physio.SubjectByID(1)
	d := device(t, nil)
	acq, err := d.Acquire(&s, 30)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := d.Process(acq)
	if err != nil {
		t.Fatal(err)
	}

	// Feed the same samples in randomly sized chunks.
	st := d.NewStreamer(DefaultStreamConfig())
	rng := rand.New(rand.NewSource(42))
	var streamed []hemo.BeatParams
	for pos := 0; pos < len(acq.ECG); {
		n := 50 + rng.Intn(400)
		if pos+n > len(acq.ECG) {
			n = len(acq.ECG) - pos
		}
		streamed = append(streamed, st.Push(acq.ECG[pos:pos+n], acq.Z[pos:pos+n])...)
		pos += n
	}
	streamed = append(streamed, st.Flush()...)

	if len(streamed) == 0 {
		t.Fatal("no streamed beats")
	}
	// Beat count within a few beats of the batch pipeline (window edges
	// may cost a beat or two).
	if math.Abs(float64(len(streamed)-len(batch.Beats))) > 6 {
		t.Errorf("streamed %d beats, batch %d", len(streamed), len(batch.Beats))
	}
	// Beats must be strictly ordered in time, with physiological values.
	for i, b := range streamed {
		if i > 0 && b.TimeS <= streamed[i-1].TimeS {
			t.Fatalf("beats out of order at %d", i)
		}
		if b.HR < 40 || b.HR > 140 {
			t.Errorf("beat %d: HR %g", i, b.HR)
		}
		if b.PEP <= 0 || b.LVET <= 0 {
			t.Errorf("beat %d: non-positive STI", i)
		}
	}
	// Session means close to the batch pipeline.
	var hrS, pepS []float64
	for _, b := range streamed {
		hrS = append(hrS, b.HR)
		pepS = append(pepS, b.PEP)
	}
	if math.Abs(mean(hrS)-batch.Summary.HR.Mean) > 3 {
		t.Errorf("streamed HR %.1f vs batch %.1f", mean(hrS), batch.Summary.HR.Mean)
	}
	if math.Abs(mean(pepS)-batch.Summary.PEP.Mean) > 0.02 {
		t.Errorf("streamed PEP %.4f vs batch %.4f", mean(pepS), batch.Summary.PEP.Mean)
	}
}

func TestStreamerNoDuplicateBeats(t *testing.T) {
	s, _ := physio.SubjectByID(2)
	d := device(t, nil)
	acq, err := d.Acquire(&s, 20)
	if err != nil {
		t.Fatal(err)
	}
	st := d.NewStreamer(DefaultStreamConfig())
	var all []hemo.BeatParams
	// Single-sample pushes: the worst case for deduplication.
	chunk := 25
	for pos := 0; pos < len(acq.ECG); pos += chunk {
		end := pos + chunk
		if end > len(acq.ECG) {
			end = len(acq.ECG)
		}
		all = append(all, st.Push(acq.ECG[pos:end], acq.Z[pos:end])...)
	}
	all = append(all, st.Flush()...)
	seen := map[int]bool{}
	for _, b := range all {
		key := int(b.TimeS * 250)
		for k := key - 3; k <= key+3; k++ {
			if seen[k] {
				t.Fatalf("duplicate beat near t=%.2f", b.TimeS)
			}
		}
		seen[key] = true
	}
}

func TestStreamerLatency(t *testing.T) {
	d := device(t, nil)
	st := d.NewStreamer(DefaultStreamConfig())
	if l := st.Latency(); l <= 0 || l > 5 {
		t.Errorf("latency = %g s", l)
	}
}

// TestStreamerDirectFIRParity pins the DirectFIR A/B switch: the direct
// recurrence and the overlap-save engine compute the same conditioning
// to FFT rounding, so the two configurations must deliver the same
// beats; and the overlap-save engine's block-emission lag on the ECG
// side must stay hidden behind the ICG delineation context, leaving the
// reported Latency unchanged.
func TestStreamerDirectFIRParity(t *testing.T) {
	s, _ := physio.SubjectByID(3)
	d := device(t, nil)
	acq, err := d.Acquire(&s, 20)
	if err != nil {
		t.Fatal(err)
	}
	run := func(direct bool) []hemo.BeatParams {
		sc := DefaultStreamConfig()
		sc.DirectFIR = direct
		st := d.NewStreamer(sc)
		var out []hemo.BeatParams
		for pos := 0; pos < len(acq.ECG); pos += 200 {
			end := pos + 200
			if end > len(acq.ECG) {
				end = len(acq.ECG)
			}
			out = append(out, st.Push(acq.ECG[pos:end], acq.Z[pos:end])...)
		}
		return append(out, st.Flush()...)
	}
	os, direct := run(false), run(true)
	if len(os) == 0 || len(os) != len(direct) {
		t.Fatalf("overlap-save %d beats, direct %d", len(os), len(direct))
	}
	for i := range os {
		if math.Abs(os[i].TimeS-direct[i].TimeS) > 1e-9 ||
			math.Abs(os[i].PEP-direct[i].PEP) > 1e-9 ||
			math.Abs(os[i].LVET-direct[i].LVET) > 1e-9 {
			t.Fatalf("beat %d differs between engines: %+v vs %+v", i, os[i], direct[i])
		}
	}
	scD := DefaultStreamConfig()
	scD.DirectFIR = true
	if lo, ld := d.NewStreamer(DefaultStreamConfig()).Latency(), d.NewStreamer(scD).Latency(); lo != ld {
		t.Errorf("overlap-save changed Latency: %g vs direct %g", lo, ld)
	}
}

func TestStreamerPanicsOnLengthMismatch(t *testing.T) {
	d := device(t, nil)
	st := d.NewStreamer(DefaultStreamConfig())
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	st.Push(make([]float64, 3), make([]float64, 4))
}

func TestStreamerFlushShortBuffer(t *testing.T) {
	d := device(t, nil)
	st := d.NewStreamer(DefaultStreamConfig())
	st.Push(make([]float64, 10), make([]float64, 10))
	if got := st.Flush(); got != nil {
		t.Errorf("flush of tiny buffer should be nil, got %d beats", len(got))
	}
}

func TestSimulateSessionPMUExtendsLife(t *testing.T) {
	duty := 0.45
	// Continuous-only policy: thresholds that never trigger.
	always := PMU{EcoBelowPct: -1, SpotBelowPct: -2, MinYield: -1}
	cont := SimulateSession(always, duty, nil, 400)
	// Adaptive policy.
	adaptive := DefaultPMU()
	adapt := SimulateSession(adaptive, duty, nil, 400)
	if adapt.TotalHours <= cont.TotalHours {
		t.Errorf("adaptive (%.0f h) should outlast continuous (%.0f h)",
			adapt.TotalHours, cont.TotalHours)
	}
	// Continuous at 45% duty should die near 710/6.15 ~ 115 h.
	if cont.TotalHours < 100 || cont.TotalHours > 135 {
		t.Errorf("continuous lifetime = %.0f h", cont.TotalHours)
	}
	// The adaptive run must actually visit eco and spot-check modes.
	if adapt.ModeHours[ModeEco] == 0 || adapt.ModeHours[ModeSpotCheck] == 0 {
		t.Errorf("mode hours: %v", adapt.ModeHours)
	}
}

func TestSimulateSessionYieldDriven(t *testing.T) {
	// Poor contact in the first 10 hours forces eco mode even on a full
	// battery.
	pmu := DefaultPMU()
	res := SimulateSession(pmu, 0.45, func(h float64) float64 {
		if h < 10 {
			return 0.2
		}
		return 0.95
	}, 24)
	if res.Steps[0].Mode != ModeEco {
		t.Errorf("hour 0 mode = %v, want eco (bad contact)", res.Steps[0].Mode)
	}
	if res.Steps[12].Mode != ModeContinuous {
		t.Errorf("hour 12 mode = %v, want continuous", res.Steps[12].Mode)
	}
}

func TestEnsembleMode(t *testing.T) {
	s, _ := physio.SubjectByID(3)
	d := device(t, func(c *Config) { c.Ensemble = true })
	_, out, err := d.Run(&s, 30)
	if err != nil {
		t.Fatal(err)
	}
	if out.Ensemble == nil {
		t.Fatal("ensemble mode produced no averaged beat")
	}
	// The ensemble measurement should agree with the beat-to-beat means.
	if math.Abs(out.Ensemble.PEP-out.Summary.PEP.Mean) > 0.025 {
		t.Errorf("ensemble PEP %.4f vs mean %.4f", out.Ensemble.PEP, out.Summary.PEP.Mean)
	}
	if math.Abs(out.Ensemble.LVET-out.Summary.LVET.Mean) > 0.04 {
		t.Errorf("ensemble LVET %.4f vs mean %.4f", out.Ensemble.LVET, out.Summary.LVET.Mean)
	}
	// Without the flag there is no ensemble output.
	d2 := device(t, nil)
	_, out2, err := d2.Run(&s, 30)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Ensemble != nil {
		t.Error("ensemble output without the flag")
	}
}

// The zero-beats contract: a streamer that has processed no beats —
// fresh, or fed samples that complete none — reports AcceptRate exactly
// 1 (never 0 or NaN) and an optimistic health snapshot, gated or not.
func TestStreamerAcceptRateZeroBeats(t *testing.T) {
	for _, disable := range []bool{false, true} {
		d := device(t, func(c *Config) { c.DisableGate = disable })
		st := d.NewStreamer(StreamConfig{})
		if r := st.AcceptRate(); r != 1 {
			t.Fatalf("fresh streamer (gate disabled=%v) AcceptRate %g, want exactly 1", disable, r)
		}
		h := st.Health()
		if h.AcceptEWMA != 1 || h.Beats != 0 || h.SignalS != 0 || h.LastBeatS != 0 {
			t.Fatalf("fresh health snapshot not zeroed/optimistic: %+v", h)
		}
		// A short beatless push keeps the contract and advances only the
		// sample clock.
		buf := make([]float64, 100)
		st.Push(buf, buf)
		if r := st.AcceptRate(); r != 1 {
			t.Fatalf("beatless streamer AcceptRate %g, want exactly 1", r)
		}
		h = st.Health()
		if h.Beats != 0 || h.AcceptEWMA != 1 {
			t.Fatalf("beatless health snapshot changed: %+v", h)
		}
		if want := 100 / d.Config().FS; h.SignalS != want {
			t.Fatalf("SignalS %g, want %g", h.SignalS, want)
		}
		st.Reset()
		if h := st.Health(); h.SignalS != 0 || h.AcceptEWMA != 1 {
			t.Fatalf("Reset did not clear health: %+v", h)
		}
	}
}
