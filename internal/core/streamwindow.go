package core

import (
	"repro/internal/dsp"
	"repro/internal/ecg"
	"repro/internal/hemo"
	"repro/internal/icg"
)

// WindowStreamer is the original rolling-window streaming engine: every
// HopSeconds it re-runs the whole batch pipeline (baseline removal,
// zero-phase FIR, Pan-Tompkins, ICG conditioning) over the last
// WindowSeconds of samples and emits the beats that became stable. Its
// steady-state cost is therefore O(WindowSeconds) per hop.
//
// It is retained as the measurable baseline for the incremental
// Streamer (stream.go) — the per-hop benchmarks compare the two — and
// as a window-recompute reference implementation. New code should use
// Device.NewStreamer.
type WindowStreamer struct {
	dev *Device

	winN, hopN, marginN int
	ecgBuf, zBuf        []float64
	consumed            int // absolute index of ecgBuf[0]
	lastEmittedR        int // absolute index of the last emitted beat's R
	pushedTotal         int

	body hemo.BodyConstants
	cal  hemo.Calibration

	// A WindowStreamer is driven from a single goroutine, so it owns its
	// scratch arena directly and reuses the device's pre-designed filter
	// bank: re-analyzing a window every hop allocates nothing beyond the
	// beats it emits.
	arena dsp.Arena
}

// NewWindowStreamer builds the window-recompute streaming front end.
func (d *Device) NewWindowStreamer(sc StreamConfig) *WindowStreamer {
	sc = sc.withDefaults()
	fs := d.cfg.FS
	cal := hemo.TouchCal()
	if sc.Thoracic {
		cal = hemo.IdentityCal()
	}
	return &WindowStreamer{
		dev:          d,
		winN:         int(sc.WindowSeconds * fs),
		hopN:         int(sc.HopSeconds * fs),
		marginN:      int(sc.MarginSeconds * fs),
		lastEmittedR: -1,
		body:         d.cfg.Body,
		cal:          cal,
	}
}

// Push appends simultaneously sampled ECG and impedance samples (equal
// lengths) and returns the beats completed by this push, in order.
func (s *WindowStreamer) Push(ecgSamples, zSamples []float64) []hemo.BeatParams {
	if len(ecgSamples) != len(zSamples) {
		panic("core: WindowStreamer.Push requires equal-length channels")
	}
	s.ecgBuf = append(s.ecgBuf, ecgSamples...)
	s.zBuf = append(s.zBuf, zSamples...)
	s.pushedTotal += len(ecgSamples)

	var out []hemo.BeatParams
	for len(s.ecgBuf) >= s.winN {
		out = append(out, s.analyzeWindow(false)...)
		// Advance by one hop, keeping window-minus-hop samples of history.
		drop := s.hopN
		if drop > len(s.ecgBuf) {
			drop = len(s.ecgBuf)
		}
		s.ecgBuf = s.ecgBuf[drop:]
		s.zBuf = s.zBuf[drop:]
		s.consumed += drop
	}
	return out
}

// Flush analyzes whatever remains in the buffer (end of session) and
// returns the final beats.
func (s *WindowStreamer) Flush() []hemo.BeatParams {
	if len(s.ecgBuf) < int(s.dev.cfg.FS) {
		return nil
	}
	return s.analyzeWindow(true)
}

// Latency returns the worst-case reporting latency in seconds: a beat
// completing right after a hop waits HopSeconds for the next analysis
// plus MarginSeconds for its RR segment to leave the unstable window
// tail.
func (s *WindowStreamer) Latency() float64 {
	return float64(s.hopN+s.marginN) / s.dev.cfg.FS
}

// analyzeWindow runs the batch pipeline on the current buffer and emits
// beats that are complete, inside the stable region, and not yet emitted.
func (s *WindowStreamer) analyzeWindow(last bool) []hemo.BeatParams {
	fs := s.dev.cfg.FS
	n := len(s.ecgBuf)
	window := n
	if !last && window > s.winN {
		window = s.winN
	}
	ecgW := s.ecgBuf[:window]
	zW := s.zBuf[:window]

	ar := &s.arena
	ar.Reset()
	bank := s.dev.bank

	cond := bank.ecgChain.Apply(ar, ecgW)
	ptCfg := ecg.DefaultPT(fs)
	ptCfg.BandSOS = bank.ptSOS
	pt, err := ecg.DetectQRSWith(ar, cond, ptCfg)
	if err != nil || len(pt.RPeaks) < 2 {
		return nil
	}
	icgF := bank.icgChain.Apply(ar, zW)
	dCfg := defaultDetectFor(s.dev.cfg, fs)
	z0 := dsp.Mean(zW)

	limit := window - s.marginN
	if last {
		limit = window
	}
	var out []hemo.BeatParams
	for i := 0; i+1 < len(pt.RPeaks); i++ {
		rAbs := s.consumed + pt.RPeaks[i]
		if rAbs <= s.lastEmittedR {
			continue // already emitted by an earlier window
		}
		if pt.RPeaks[i+1] >= limit {
			break // next window will see this beat in the stable region
		}
		pts, err := icg.DetectBeat(icgF, pt.RPeaks[i], pt.RPeaks[i+1], -1, dCfg)
		if err != nil {
			s.lastEmittedR = rAbs // do not retry a truly bad beat forever
			continue
		}
		bp := hemo.FromPoints(pts, pt.RPeaks[i+1], z0, fs, s.body, s.cal)
		bp.TimeS = float64(rAbs) / fs // absolute session time
		out = append(out, bp)
		s.lastEmittedR = rAbs
	}
	return out
}
