package dsp

// Arena is a checkout-style scratch allocator for the in-place DSP
// variants (the *With functions and the FIR/SOS *To methods). Each call to
// F64/C128/Ints hands out the next buffer in sequence, growing it to the
// requested length; Reset makes every buffer available again without
// freeing it. Because a processing pipeline checks buffers out in the same
// order on every run, the arena converges to the pipeline's peak footprint
// after the first call and steady-state processing allocates nothing.
//
// Buffers returned by an arena are valid only until the next Reset, and
// their contents are uninitialized. An Arena is not safe for concurrent
// use; use one arena per goroutine (core.Device keeps a sync.Pool of
// them).
//
// All arena-taking functions in this package accept a nil *Arena, in which
// case they allocate from the heap exactly like their classic
// counterparts.
type Arena struct {
	f64  [][]float64
	c128 [][]complex128
	ints [][]int
	nf   int
	nc   int
	ni   int
}

// Reset returns every checked-out buffer to the arena. Previously returned
// slices must no longer be used.
func (a *Arena) Reset() {
	a.nf, a.nc, a.ni = 0, 0, 0
}

// F64 checks out a float64 buffer of length n (contents undefined).
func (a *Arena) F64(n int) []float64 {
	if a.nf == len(a.f64) {
		a.f64 = append(a.f64, make([]float64, n))
	} else if cap(a.f64[a.nf]) < n {
		a.f64[a.nf] = make([]float64, n)
	}
	buf := a.f64[a.nf][:n]
	a.nf++
	return buf
}

// C128 checks out a complex128 buffer of length n (contents undefined).
func (a *Arena) C128(n int) []complex128 {
	if a.nc == len(a.c128) {
		a.c128 = append(a.c128, make([]complex128, n))
	} else if cap(a.c128[a.nc]) < n {
		a.c128[a.nc] = make([]complex128, n)
	}
	buf := a.c128[a.nc][:n]
	a.nc++
	return buf
}

// Ints checks out an int buffer of length n (contents undefined).
func (a *Arena) Ints(n int) []int {
	if a.ni == len(a.ints) {
		a.ints = append(a.ints, make([]int, n))
	} else if cap(a.ints[a.ni]) < n {
		a.ints[a.ni] = make([]int, n)
	}
	buf := a.ints[a.ni][:n]
	a.ni++
	return buf
}

// arenaF64 allocates from a when non-nil and from the heap otherwise.
func arenaF64(a *Arena, n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	return a.F64(n)
}

// arenaInts allocates from a when non-nil and from the heap otherwise.
func arenaInts(a *Arena, n int) []int {
	if a == nil {
		return make([]int, n)
	}
	return a.Ints(n)
}
