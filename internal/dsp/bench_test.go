package dsp

import (
	"math"
	"testing"
)

// Kernel-level benchmarks for the convolution engines, the biquad
// cascades and the zero-phase wrappers. The 30 s / 250 Hz working size
// (n = 7500) matches the paper's protocol window; 251 taps is the wide
// baseline-removal FIR that exercises the FFT overlap-save path, 33
// taps the paper's ECG band-pass that stays on the direct path.

func benchSignal(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		t := float64(i) / 250
		x[i] = math.Sin(2*math.Pi*1.1*t) + 0.4*math.Sin(2*math.Pi*17*t) + 0.1*math.Sin(2*math.Pi*49*t)
	}
	return x
}

func benchFIR(b *testing.B, taps int) *FIR {
	b.Helper()
	f, err := DesignLowPass(taps-1, 30, 250, WindowHamming)
	if err != nil {
		b.Fatal(err)
	}
	f.Prepare()
	return f
}

// BenchmarkConvWide251 is the wide-filter convolution headliner: a
// 251-tap FIR over a 30 s window on the FFT overlap-save engine.
func BenchmarkConvWide251(b *testing.B) {
	f := benchFIR(b, 251)
	x := benchSignal(7500)
	dst := make([]float64, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.plan().convFFTInto(dst, x, 125)
	}
}

// BenchmarkConvECG33 pins the paper's 33-tap band-pass on the direct
// three-region engine (the cost model's choice at this width).
func BenchmarkConvECG33(b *testing.B) {
	f := benchFIR(b, 33)
	x := benchSignal(7500)
	dst := make([]float64, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		convDirectInto(dst, x, f.reversed(), 16)
	}
}

// BenchmarkZeroPhaseFIRStream30s is the streaming zero-phase ECG
// band-pass exactly as the session path runs it: the 33-tap design's
// 65-tap composite kernel, fed in 1 s hops.
func BenchmarkZeroPhaseFIRStream30s(b *testing.B) {
	f := benchFIR(b, 33)
	x := benchSignal(7500)
	s := NewZeroPhaseFIRStream(f)
	dst := make([]float64, 0, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		dst = dst[:0]
		for pos := 0; pos < len(x); pos += 250 {
			dst = s.Push(dst, x[pos:pos+250])
		}
		dst = s.Flush(dst)
	}
}

// BenchmarkZeroPhaseFIRStream30sDirect is the same path pinned to the
// direct per-sample recurrence (the pre-PR-8 engine and the MCU
// profile): the A/B baseline for the streaming overlap-save crossover.
func BenchmarkZeroPhaseFIRStream30sDirect(b *testing.B) {
	f := benchFIR(b, 33)
	x := benchSignal(7500)
	s := NewZeroPhaseFIRStreamDirect(f)
	dst := make([]float64, 0, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		dst = dst[:0]
		for pos := 0; pos < len(x); pos += 250 {
			dst = s.Push(dst, x[pos:pos+250])
		}
		dst = s.Flush(dst)
	}
}

// BenchmarkFiltFiltWide251 is the zero-phase double pass over the wide
// filter — two overlap-save convolutions plus the reflection padding.
func BenchmarkFiltFiltWide251(b *testing.B) {
	f := benchFIR(b, 251)
	x := benchSignal(7500)
	var a Arena
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Reset()
		FiltFiltFIRWith(&a, f, x)
	}
}

func benchSOS(b *testing.B) SOS {
	b.Helper()
	s, err := DesignButterLowPass(4, 20, 250)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkSOSFilterTo is the causal order-4 (two-section) Butterworth
// cascade over a 30 s window.
func BenchmarkSOSFilterTo(b *testing.B) {
	s := benchSOS(b)
	x := benchSignal(7500)
	dst := make([]float64, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.FilterTo(dst, x)
	}
}

// BenchmarkSOSFilterTo4 is the four-section cascade (the band-noise
// band-pass shape) — the deepest pipeline the designs produce.
func BenchmarkSOSFilterTo4(b *testing.B) {
	s, err := DesignButterBandPass(4, 0.5, 30, 250)
	if err != nil {
		b.Fatal(err)
	}
	x := benchSignal(7500)
	dst := make([]float64, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.FilterTo(dst, x)
	}
}

// BenchmarkSOSFiltFilt is the zero-phase forward-backward cascade (the
// ICG conditioning shape) over a 30 s window.
func BenchmarkSOSFiltFilt(b *testing.B) {
	s := benchSOS(b)
	x := benchSignal(7500)
	var a Arena
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Reset()
		s.FiltFiltWith(&a, x)
	}
}

// BenchmarkSOSStream30s streams the order-4 cascade in 250-sample
// chunks — the per-hop shape of the incremental engine.
func BenchmarkSOSStream30s(b *testing.B) {
	s := benchSOS(b)
	x := benchSignal(7500)
	st := NewSOSStream(s, 0, true)
	dst := make([]float64, 0, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Reset()
		out := dst
		for lo := 0; lo < len(x); lo += 250 {
			out = st.Push(out[:0], x[lo:lo+250])
		}
	}
}
