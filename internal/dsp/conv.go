package dsp

import (
	"math/bits"
	"sync"
)

// Fast linear convolution engines behind FIR filtering.
//
// Two paths are provided and selected automatically by an n*k cost model:
//
//   - a direct path that splits the output into three regions — a left
//     edge, a boundary-free middle and a right edge — so the middle (all
//     of the signal, in practice) runs as a branch-free dot product with
//     four accumulators instead of the classic per-tap bounds test;
//   - an FFT overlap-save path that processes two real blocks per complex
//     transform (signal in the real part, the next block in the imaginary
//     part) against the cached spectrum of the taps.
//
// Both compute the zero-padded linear convolution
//
//	z[m] = sum_j taps[j] * x[m-j],  x[i] = 0 outside [0, len(x)),
//
// for m in [off, off+len(dst)); off = (k-1)/2 gives the group-delay
// compensated "same" output of FIR.Apply, off = 0 the causal output.

// dot4 returns the dot product of equal-length a and b using four
// accumulators, which breaks the floating-point add dependency chain and
// roughly triples throughput on superscalar cores.
func dot4(a, b []float64) float64 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// convEdge computes dst[i] for i in [i0, i1) with full zero-padding
// clamps; rev holds the taps in reversed order.
func convEdge(dst, x, rev []float64, off, i0, i1 int) {
	n, k := len(x), len(rev)
	for i := i0; i < i1; i++ {
		base := off + i - k + 1
		jLo := 0
		if base < 0 {
			jLo = -base
		}
		jHi := k
		if base+k > n {
			jHi = n - base
		}
		acc := 0.0
		for j := jLo; j < jHi; j++ {
			acc += rev[j] * x[base+j]
		}
		dst[i] = acc
	}
}

// convDirectInto fills dst with the direct three-region convolution.
func convDirectInto(dst, x, rev []float64, off int) {
	n, k := len(x), len(rev)
	cnt := len(dst)
	// Middle region: every tap index in bounds, no clamping needed.
	midLo := ClampInt(k-1-off, 0, cnt)
	midHi := ClampInt(n-off, midLo, cnt)
	convEdge(dst, x, rev, off, 0, midLo)
	for i := midLo; i < midHi; i++ {
		base := off + i - k + 1
		dst[i] = dot4(x[base:base+k], rev)
	}
	convEdge(dst, x, rev, off, midHi, cnt)
}

// fftSizeForTaps picks the overlap-save block size for k taps: long enough
// that the k-1 overlap is a small fraction of each block, capped so blocks
// stay cache-resident.
func fftSizeForTaps(k int) int {
	n := NextPow2(8 * (k - 1))
	if n < 128 {
		n = 128
	}
	if n > 1<<15 {
		n = 1 << 15
	}
	if min := NextPow2(2 * k); n < min {
		n = min
	}
	return n
}

// useFFTConv is the crossover heuristic: it compares the estimated
// per-output flop counts of the two engines (with a 1.5x handicap on the
// FFT path for its index arithmetic and cache behavior) and reports
// whether overlap-save is expected to win for n outputs with k taps. The
// paper's 33-tap ECG band-pass stays on the direct path; the wide FIRs
// used for baseline-removal ablations (hundreds of taps) switch to FFT.
func useFFTConv(n, k int) bool {
	if k < 32 || n < 2*k {
		return false
	}
	N := fftSizeForTaps(k)
	lg := bits.Len(uint(N)) - 1
	step := N - (k - 1)
	// Two real blocks per complex forward+inverse transform pair.
	fftPerOut := float64(10*N*lg+8*N) / float64(2*step)
	directPerOut := float64(2 * k)
	return fftPerOut*1.5 < directPerOut
}

// convPlan caches everything the overlap-save engine needs for one tap
// set: the block spectrum of the taps and a reusable block buffer. A plan
// is built lazily by the first FFT-path filtering call (or eagerly by
// FIR.Prepare) and reused afterwards. The block buffer is guarded by mu so
// a prepared FIR can be shared between goroutines regardless of which
// engine the cost model picks; the lock costs nothing next to the
// transforms it protects.
type convPlan struct {
	fftN int
	step int // fresh output samples per block: fftN - (k-1)
	km1  int // len(taps) - 1
	h    []complex128
	w    []complex128

	mu  sync.Mutex
	blk []complex128
}

func newConvPlan(taps []float64) *convPlan {
	k := len(taps)
	fftN := fftSizeForTaps(k)
	p := &convPlan{
		fftN: fftN,
		step: fftN - (k - 1),
		km1:  k - 1,
		h:    make([]complex128, fftN),
		blk:  make([]complex128, fftN),
		w:    twiddlesFor(fftN),
	}
	for i, t := range taps {
		p.h[i] = complex(t, 0)
	}
	fftWith(p.h, p.w)
	return p
}

// clampLoad returns the t-range [lo, hi) of block positions whose source
// index start+t falls inside [0, n).
func clampLoad(start, n, fftN int) (lo, hi int) {
	lo = ClampInt(-start, 0, fftN)
	hi = ClampInt(n-start, lo, fftN)
	return lo, hi
}

// convFFTInto fills dst with the overlap-save convolution. Two
// consecutive blocks share each transform: block A rides the real part,
// block B the imaginary part, and by linearity the inverse transform's
// real/imaginary parts are their respective convolutions with the real
// taps.
func (p *convPlan) convFFTInto(dst, x []float64, off int) {
	n := len(x)
	cnt := len(dst)
	p.mu.Lock()
	defer p.mu.Unlock()
	for b0 := 0; b0 < cnt; b0 += 2 * p.step {
		b1 := b0 + p.step
		startA := off + b0 - p.km1
		startB := off + b1 - p.km1
		blk := p.blk
		for i := range blk {
			blk[i] = 0
		}
		lo, hi := clampLoad(startA, n, p.fftN)
		for t := lo; t < hi; t++ {
			blk[t] = complex(x[startA+t], 0)
		}
		if b1 < cnt {
			lo, hi = clampLoad(startB, n, p.fftN)
			for t := lo; t < hi; t++ {
				blk[t] = complex(real(blk[t]), x[startB+t])
			}
		}
		fftWith(blk, p.w)
		for i := range blk {
			blk[i] *= p.h[i]
		}
		ifftWith(blk, p.w)
		// Valid outputs occupy block positions [k-1, fftN).
		tEndA := ClampInt(cnt-b0, 0, p.step)
		for t := 0; t < tEndA; t++ {
			dst[b0+t] = real(blk[p.km1+t])
		}
		tEndB := ClampInt(cnt-b1, 0, p.step)
		for t := 0; t < tEndB; t++ {
			dst[b1+t] = imag(blk[p.km1+t])
		}
	}
}
