package dsp

import (
	"math/bits"
	"sync"
)

// Fast linear convolution engines behind FIR filtering.
//
// Two paths are provided and selected automatically by an n*k cost model:
//
//   - a direct path that splits the output into three regions — a left
//     edge, a boundary-free middle and a right edge — so the middle (all
//     of the signal, in practice) runs as a branch-free dot product with
//     four accumulators instead of the classic per-tap bounds test;
//   - an FFT overlap-save path on the real-input split kernels of
//     rfft.go: each real block is packed into a half-size complex
//     transform, and the spectrum product with the cached tap
//     half-spectrum is fused into the split/merge recombination pass, so
//     a block costs one forward and one inverse transform of size
//     fftN/2 plus a single O(fftN/2) pass — half the working set and
//     none of the zero-fill/read-modify-write traffic of a full complex
//     transform over real data.
//
// Both compute the zero-padded linear convolution
//
//	z[m] = sum_j taps[j] * x[m-j],  x[i] = 0 outside [0, len(x)),
//
// for m in [off, off+len(dst)); off = (k-1)/2 gives the group-delay
// compensated "same" output of FIR.Apply, off = 0 the causal output.

// dot4 returns the dot product of equal-length a and b using four
// accumulators, which breaks the floating-point add dependency chain and
// roughly triples throughput on superscalar cores.
func dot4(a, b []float64) float64 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// convEdge computes dst[i] for i in [i0, i1) with full zero-padding
// clamps; rev holds the taps in reversed order.
func convEdge(dst, x, rev []float64, off, i0, i1 int) {
	n, k := len(x), len(rev)
	for i := i0; i < i1; i++ {
		base := off + i - k + 1
		jLo := 0
		if base < 0 {
			jLo = -base
		}
		jHi := k
		if base+k > n {
			jHi = n - base
		}
		acc := 0.0
		for j := jLo; j < jHi; j++ {
			acc += rev[j] * x[base+j]
		}
		dst[i] = acc
	}
}

// convDirectInto fills dst with the direct three-region convolution.
func convDirectInto(dst, x, rev []float64, off int) {
	n, k := len(x), len(rev)
	cnt := len(dst)
	// Middle region: every tap index in bounds, no clamping needed.
	midLo := ClampInt(k-1-off, 0, cnt)
	midHi := ClampInt(n-off, midLo, cnt)
	convEdge(dst, x, rev, off, 0, midLo)
	for i := midLo; i < midHi; i++ {
		base := off + i - k + 1
		dst[i] = dot4(x[base:base+k], rev)
	}
	convEdge(dst, x, rev, off, midHi, cnt)
}

// fftSizeForTaps picks the overlap-save real block size for k taps: long
// enough that the k-1 overlap is a small fraction of each block, capped
// so blocks stay cache-resident (the complex working set is half this).
func fftSizeForTaps(k int) int {
	n := NextPow2(8 * (k - 1))
	if n < 128 {
		n = 128
	}
	if n > 1<<15 {
		n = 1 << 15
	}
	if min := NextPow2(2 * k); n < min {
		n = min
	}
	return n
}

// useFFTConv is the crossover heuristic: it compares the estimated
// per-output flop counts of the two engines (with a 1.5x handicap on the
// FFT path for its index arithmetic and cache behavior) and reports
// whether overlap-save is expected to win for n outputs with k taps. The
// paper's 33-tap ECG band-pass stays on the direct path; the wide FIRs
// used for baseline-removal ablations (hundreds of taps) switch to FFT.
func useFFTConv(n, k int) bool {
	if k < 32 || n < 2*k {
		return false
	}
	N := fftSizeForTaps(k)
	M := N / 2 // half-size complex transform per real block
	lg := bits.Len(uint(M)) - 1
	step := N - (k - 1)
	// One half-size forward+inverse transform pair per block (~10*M*lg(M)
	// flops each at radix 2) plus the fused pack/split-multiply-merge
	// passes (~30*M) for step fresh outputs.
	fftPerOut := float64(20*M*lg+30*M) / float64(step)
	directPerOut := float64(2 * k)
	return fftPerOut*1.5 < directPerOut
}

// streamFFTSizeForTaps picks the overlap-save block size for the
// STREAMING engine. It is deliberately smaller than the batch
// fftSizeForTaps: a streaming block is only computed once step =
// fftN-(k-1) input samples have accumulated, so the block size bounds
// the kernel's worst-case emission lag (Lookahead grows by step-1).
// 4x the overlap keeps that lag under a second at the paper's rate
// while giving up only ~10% of the larger block's per-output savings.
func streamFFTSizeForTaps(k int) int {
	n := NextPow2(4 * (k - 1))
	if n < 128 {
		n = 128
	}
	if n > 1<<11 {
		n = 1 << 11
	}
	if min := NextPow2(2 * k); n < min {
		n = min
	}
	return n
}

// useFFTStream is the streaming-engine crossover. Unlike useFFTConv it
// carries no handicap on the FFT path: the streaming direct engine
// already pays a history+chunk copy into its work buffer per push, and
// measurement (BENCHMARKS.md, PR 8) shows the packed-real block engine
// sustains a higher flop rate than the model's batch handicap assumed —
// the 65-tap zero-phase ECG composite kernel, right at the batch
// model's crossover, runs 1.5x faster under streaming overlap-save.
func useFFTStream(k int) bool {
	if k < 48 {
		return false
	}
	N := streamFFTSizeForTaps(k)
	M := N / 2
	lg := bits.Len(uint(M)) - 1
	step := N - (k - 1)
	fftPerOut := float64(20*M*lg+30*M) / float64(step)
	return fftPerOut < float64(2*k)
}

// convPlan caches everything the overlap-save engine needs for one tap
// set: the half-spectrum of the taps and a reusable half-size block
// buffer. A plan is built lazily by the first FFT-path filtering call (or
// eagerly by FIR.Prepare) and reused afterwards. The block buffer is
// guarded by mu so a prepared FIR can be shared between goroutines
// regardless of which engine the cost model picks; the lock costs nothing
// next to the transforms it protects.
type convPlan struct {
	fftN int          // real block length
	half int          // fftN/2: complex transform size
	step int          // fresh output samples per block: fftN - (k-1)
	km1  int          // len(taps) - 1
	h    []complex128 // tap half-spectrum H[0..half]
	w    []complex128 // butterfly twiddles for the half-size FFT
	wr   []complex128 // split twiddles exp(-2*pi*i*k/fftN)

	mu  sync.Mutex
	blk []complex128 // half+1 scratch: spectrum workspace per block
}

func newConvPlan(taps []float64) *convPlan {
	k := len(taps)
	fftN := fftSizeForTaps(k)
	rp, _ := NewRFFTPlan(fftN) // fftN is a power of two by construction
	p := &convPlan{
		fftN: fftN,
		half: fftN / 2,
		step: fftN - (k - 1),
		km1:  k - 1,
		h:    make([]complex128, fftN/2+1),
		blk:  make([]complex128, fftN/2+1),
		w:    rp.w,
		wr:   rp.wr,
	}
	padded := make([]float64, fftN)
	copy(padded, taps)
	rp.Forward(p.h, padded)
	// Fold the inverse transform's 1/N normalization into the cached tap
	// spectrum: the per-block inverse then runs without its scaling pass.
	inv := 1 / float64(p.half)
	for i := range p.h {
		p.h[i] = scaleC(p.h[i], inv)
	}
	return p
}

// clampLoad returns the t-range [lo, hi) of block positions whose source
// index start+t falls inside [0, n).
func clampLoad(start, n, fftN int) (lo, hi int) {
	lo = ClampInt(-start, 0, fftN)
	hi = ClampInt(n-start, lo, fftN)
	return lo, hi
}

// packReal loads the real block starting at source index start into the
// complex buffer blk (adjacent pairs per complex sample), zero-padding
// positions that fall outside x. Every element is written exactly once.
func packReal(blk []complex128, x []float64, start int) {
	m := len(blk)
	lo, hi := clampLoad(start, len(x), 2*m)
	cLo := lo >> 1       // first complex index holding any valid sample
	cHi := (hi + 1) >> 1 // one past the last
	for c := 0; c < cLo; c++ {
		blk[c] = 0
	}
	for c := cHi; c < m; c++ {
		blk[c] = 0
	}
	// Interior: both halves of the pair in bounds.
	cA := ClampInt((lo+1)>>1, cLo, cHi)
	cB := ClampInt(hi>>1, cA, cHi)
	for c := cLo; c < cA; c++ {
		blk[c] = packEdge(x, start+2*c)
	}
	base := start + 2*cA
	for c := cA; c < cB; c++ {
		blk[c] = complex(x[base], x[base+1])
		base += 2
	}
	for c := cB; c < cHi; c++ {
		blk[c] = packEdge(x, start+2*c)
	}
}

// packEdge builds one boundary pair with per-sample clamps.
func packEdge(x []float64, p0 int) complex128 {
	n := len(x)
	re, im := 0.0, 0.0
	if p0 >= 0 && p0 < n {
		re = x[p0]
	}
	if p0+1 >= 0 && p0+1 < n {
		im = x[p0+1]
	}
	return complex(re, im)
}

// mulSpectrum multiplies the packed block's implicit half-spectrum by the
// tap half-spectrum h, entirely in the packed domain: for each bin pair
// it disentangles X[k], X[m-k] from the half-size transform (the split of
// rfft.go), applies Y = X*H, and folds the result straight back (the
// merge), so the spectrum is never materialized and the whole product is
// one pass over half the bins.
func (p *convPlan) mulSpectrum(blk []complex128) {
	mulSpectrumPacked(blk, p.h, p.wr, p.half)
}

// mulSpectrumPacked is the engine behind mulSpectrum, shared with the
// streaming overlap-save kernel (FIRStream's block engine): blk is the
// packed half-size transform of a real block, h the tap half-spectrum
// (inverse normalization folded in), wr the split twiddles, m = fftN/2.
func mulSpectrumPacked(blk, h, wr []complex128, m int) {
	// DC and Nyquist bins are real; z[0] carries both.
	x0 := real(blk[0]) + imag(blk[0])
	xm := real(blk[0]) - imag(blk[0])
	y0 := x0 * real(h[0])
	ym := xm * real(h[m])
	blk[0] = complex((y0+ym)*0.5, (y0-ym)*0.5)
	for k := 1; k <= m/2; k++ {
		a, b := blk[k], conjC(blk[m-k])
		fe := scaleC(a+b, 0.5)
		fo := scaleC(mulNegI(a-b), 0.5)
		wk := wr[k]
		t := wk * fo
		xk := fe + t
		xmk := conjC(fe - t)
		yk := xk * h[k]
		ymk := xmk * h[m-k]
		// Fold back (merge): Zy[k] = Ey + i Oy with the W^{-k} unrotation.
		fey := scaleC(yk+conjC(ymk), 0.5)
		foy := scaleC(yk-conjC(ymk), 0.5) * conjC(wk)
		blk[k] = fey + mulI(foy)
		blk[m-k] = conjC(fey) + mulI(conjC(foy))
	}
}

// convFFTInto fills dst with the overlap-save convolution: per block, one
// half-size forward transform of the packed real samples, the fused
// spectrum product, and one half-size inverse transform; the valid
// outputs occupy real block positions [k-1, fftN).
func (p *convPlan) convFFTInto(dst, x []float64, off int) {
	cnt := len(dst)
	p.mu.Lock()
	defer p.mu.Unlock()
	blk := p.blk[:p.half]
	for b0 := 0; b0 < cnt; b0 += p.step {
		packReal(blk, x, off+b0-p.km1)
		fftWith(blk, p.w)
		p.mulSpectrum(blk)
		ifftNoScale(blk, p.w)
		// Unpack real positions [km1, km1+tEnd) from the complex pairs.
		tEnd := ClampInt(cnt-b0, 0, p.step)
		pos := p.km1
		t := 0
		if pos&1 == 1 {
			dst[b0] = imag(blk[pos>>1])
			t = 1
		}
		for ; t+1 < tEnd; t += 2 {
			c := blk[(pos+t)>>1]
			dst[b0+t] = real(c)
			dst[b0+t+1] = imag(c)
		}
		if t < tEnd {
			dst[b0+t] = real(blk[(pos+t)>>1])
		}
	}
}
