package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// Property tests for the convolution engines: the FFT overlap-save path
// must agree with the direct three-region path to floating-point rounding
// on every shape the pipeline can produce, and both must agree with the
// naive reference convolution.

// naiveSame is the textbook zero-padded "same" convolution with
// group-delay alignment, kept as an oracle.
func naiveSame(taps, x []float64) []float64 {
	n, k := len(x), len(taps)
	if n == 0 || k == 0 {
		return nil
	}
	delay := (k - 1) / 2
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		ci := i + delay
		acc := 0.0
		for j := 0; j < k; j++ {
			if xi := ci - j; xi >= 0 && xi < n {
				acc += taps[j] * x[xi]
			}
		}
		y[i] = acc
	}
	return y
}

func randomTaps(rng *rand.Rand, k int) []float64 {
	taps := make([]float64, k)
	for i := range taps {
		taps[i] = rng.NormFloat64()
	}
	return taps
}

// maxRelDiff returns the maximum |a[i]-b[i]| scaled by the peak of b.
func maxRelDiff(t *testing.T, a, b []float64) float64 {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("length mismatch: %d vs %d", len(a), len(b))
	}
	scale := 0.0
	for _, v := range b {
		if av := math.Abs(v); av > scale {
			scale = av
		}
	}
	if scale == 0 {
		scale = 1
	}
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i]-b[i]) / scale; d > worst {
			worst = d
		}
	}
	return worst
}

func TestApplyFFTMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Odd and even tap counts, signals shorter than the filter, signals
	// around block boundaries of the overlap-save engine, and long
	// signals spanning many blocks.
	tapCounts := []int{1, 2, 3, 8, 33, 64, 129, 251, 256}
	sigLens := []int{1, 2, 7, 32, 100, 255, 256, 257, 1000, 4096}
	for _, k := range tapCounts {
		f := &FIR{Taps: randomTaps(rng, k)}
		for _, n := range sigLens {
			x := randomSignal(rng, n)
			direct := f.ApplyDirect(x)
			fft := f.ApplyFFT(x)
			if d := maxRelDiff(t, fft, direct); d > 1e-9 {
				t.Errorf("k=%d n=%d: |fft-direct| = %g relative", k, n, d)
			}
			if d := maxRelDiff(t, direct, naiveSame(f.Taps, x)); d > 1e-12 {
				t.Errorf("k=%d n=%d: |direct-naive| = %g relative", k, n, d)
			}
		}
	}
}

func TestApplyFFTEmptyAndDegenerate(t *testing.T) {
	f := &FIR{Taps: []float64{1, 2, 1}}
	if f.ApplyFFT(nil) != nil {
		t.Error("empty input should return nil")
	}
	if f.ApplyDirect(nil) != nil {
		t.Error("empty input should return nil (direct)")
	}
	empty := &FIR{}
	if empty.Apply([]float64{1, 2, 3}) != nil {
		t.Error("empty taps should return nil")
	}
}

func TestApplyCrossoverConsistent(t *testing.T) {
	// Apply must give the same answer whichever engine the cost model
	// picks. 251 taps on a long signal exercises the FFT side.
	rng := rand.New(rand.NewSource(11))
	f := &FIR{Taps: randomTaps(rng, 251)}
	x := randomSignal(rng, 7500)
	if !useFFTConv(len(x), 251) {
		t.Fatal("expected cost model to pick FFT for k=251, n=7500")
	}
	if useFFTConv(7500, 33) {
		t.Fatal("expected cost model to keep the 33-tap ECG filter direct")
	}
	if d := maxRelDiff(t, f.Apply(x), f.ApplyDirect(x)); d > 1e-9 {
		t.Errorf("crossover changed Apply output by %g relative", d)
	}
}

func TestApplyToReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := &FIR{Taps: randomTaps(rng, 33)}
	x := randomSignal(rng, 500)
	dst := make([]float64, 500)
	got := f.ApplyTo(dst, x)
	if &got[0] != &dst[0] {
		t.Error("ApplyTo should reuse a sufficiently large dst")
	}
	want := f.Apply(x)
	if d := maxRelDiff(t, got, want); d != 0 {
		t.Errorf("ApplyTo differs from Apply by %g", d)
	}
}

func TestFiltFiltFIRFastPathMatchesGeneric(t *testing.T) {
	// The convolution-based fast path must reproduce the generic
	// state-recurrence FiltFilt bit-for-bit up to rounding, including at
	// short signal lengths where it falls back to the generic path.
	rng := rand.New(rand.NewSource(5))
	for _, k := range []int{3, 9, 33, 65} {
		f := &FIR{Taps: randomTaps(rng, k)}
		for _, n := range []int{2, 5, k - 1, k, 3 * k, 1000} {
			if n < 1 {
				continue
			}
			x := randomSignal(rng, n)
			fast := FiltFiltFIR(f, x)
			generic := FiltFilt(f.Taps, []float64{1}, x)
			if d := maxRelDiff(t, fast, generic); d > 1e-9 {
				t.Errorf("k=%d n=%d: fast filtfilt deviates by %g relative", k, n, d)
			}
		}
	}
}

func TestFiltFiltFIRWithArena(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := &FIR{Taps: randomTaps(rng, 33)}
	x := randomSignal(rng, 800)
	want := FiltFiltFIR(f, x)
	var a Arena
	for round := 0; round < 3; round++ {
		a.Reset()
		got := FiltFiltFIRWith(&a, f, x)
		if d := maxRelDiff(t, got, want); d != 0 {
			t.Fatalf("round %d: arena result deviates by %g", round, d)
		}
	}
}

func TestSOSFilterToMatchesFilter(t *testing.T) {
	sos, err := DesignButterLowPass(4, 20, 250)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	x := randomSignal(rng, 600)
	want := sos.Filter(x)
	dst := make([]float64, 600)
	got := sos.FilterTo(dst, x)
	if d := maxRelDiff(t, got, want); d != 0 {
		t.Errorf("FilterTo deviates by %g", d)
	}
	// In-place aliasing.
	inPlace := Clone(x)
	sos.FilterTo(inPlace, inPlace)
	if d := maxRelDiff(t, inPlace, want); d != 0 {
		t.Errorf("aliased FilterTo deviates by %g", d)
	}
}

func TestSOSFiltFiltWithMatchesFiltFilt(t *testing.T) {
	sos, err := DesignButterLowPass(4, 20, 250)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	x := randomSignal(rng, 700)
	want := sos.FiltFilt(x)
	var a Arena
	got := sos.FiltFiltWith(&a, x)
	if d := maxRelDiff(t, got, want); d != 0 {
		t.Errorf("FiltFiltWith deviates by %g", d)
	}
}

func TestMorphWithMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	x := randomSignal(rng, 400)
	var a Arena
	for _, k := range []int{3, 7, 50, 51} {
		wantO, wantC := Open(x, k), Close(x, k)
		a.Reset()
		gotO := OpenWith(&a, x, k)
		gotC := CloseWith(&a, x, k)
		if d := maxRelDiff(t, gotO, wantO); d != 0 {
			t.Errorf("k=%d: OpenWith deviates by %g", k, d)
		}
		if d := maxRelDiff(t, gotC, wantC); d != 0 {
			t.Errorf("k=%d: CloseWith deviates by %g", k, d)
		}
	}
}

func TestFFTPlanRoundTrip(t *testing.T) {
	p, err := NewFFTPlan(256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFFTPlan(100); err != ErrNotPow2 {
		t.Errorf("non-pow2 plan: %v", err)
	}
	rng := rand.New(rand.NewSource(23))
	x := make([]complex128, 256)
	orig := make([]complex128, 256)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		orig[i] = x[i]
	}
	if err := p.Forward(x); err != nil {
		t.Fatal(err)
	}
	if err := p.Inverse(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if d := x[i] - orig[i]; math.Hypot(real(d), imag(d)) > 1e-10 {
			t.Fatalf("round trip error at %d: %v", i, d)
		}
	}
	if err := p.Forward(make([]complex128, 128)); err != ErrBadLength {
		t.Errorf("wrong-size transform: %v", err)
	}
}

func TestSelectKthAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		x := make([]float64, n)
		for i := range x {
			// Duplicates on purpose.
			x[i] = float64(rng.Intn(20))
		}
		sorted := Clone(x)
		Reverse(sorted) // arbitrary pre-state
		k := rng.Intn(n)
		got := SelectKth(Clone(x), k)
		ref := Clone(x)
		insertionSortAll(ref)
		if got != ref[k] {
			t.Fatalf("n=%d k=%d: SelectKth=%g want %g", n, k, got, ref[k])
		}
	}
}

func insertionSortAll(x []float64) {
	for i := 1; i < len(x); i++ {
		v := x[i]
		j := i - 1
		for j >= 0 && x[j] > v {
			x[j+1] = x[j]
			j--
		}
		x[j+1] = v
	}
}

func TestPercentileInPlaceMatchesPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for _, p := range []float64{0, 10, 50, 60, 90, 100} {
			want := Percentile(x, p)
			got := PercentileInPlace(Clone(x), p)
			if got != want {
				t.Fatalf("n=%d p=%g: in-place %g vs %g", n, p, got, want)
			}
		}
	}
}

func TestMedianInPlaceMatchesMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(64)
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(rng.Intn(9))
		}
		if got, want := MedianInPlace(Clone(x)), Median(x); got != want {
			t.Fatalf("n=%d: MedianInPlace %g vs %g", n, got, want)
		}
	}
}

// The steady-state DSP kernels must be allocation-free once the arena has
// warmed up.
func TestArenaKernelsAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	x := randomSignal(rng, 1500)
	fir := &FIR{Taps: randomTaps(rng, 33)}
	fir.Prepare()
	sos, err := DesignButterLowPass(4, 20, 250)
	if err != nil {
		t.Fatal(err)
	}
	var a Arena
	run := func() {
		a.Reset()
		y := OpenWith(&a, x, 51)
		y = CloseWith(&a, y, 77)
		y = FiltFiltFIRWith(&a, fir, y)
		y = sos.FiltFiltWith(&a, y)
		_ = fir.ApplyTo(a.F64(len(y)), y)
	}
	run() // warm the arena
	if allocs := testing.AllocsPerRun(20, run); allocs > 0 {
		t.Errorf("steady-state arena kernels allocate %.1f objects/run, want 0", allocs)
	}
}
