package dsp

// Derivative estimators. The paper's B- and X-point rules use the 1st, 2nd
// and 3rd derivatives of the ICG signal; these are computed by repeated
// central differences.

// Derivative returns the first derivative of x (units per second) using
// central differences, with one-sided differences at the edges.
func Derivative(x []float64, fs float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	return DerivativeTo(make([]float64, len(x)), x, fs)
}

// DerivativeTo is Derivative writing into dst (grown when shorter than x;
// dst must not alias x). It returns the derivative slice.
func DerivativeTo(dst, x []float64, fs float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	if n == 1 {
		dst[0] = 0
		return dst
	}
	dst[0] = (x[1] - x[0]) * fs
	dst[n-1] = (x[n-1] - x[n-2]) * fs
	half := fs / 2
	for i := 1; i < n-1; i++ {
		dst[i] = (x[i+1] - x[i-1]) * half
	}
	return dst
}

// DerivativeN returns the order-th derivative of x by repeated application
// of Derivative. order must be >= 1.
func DerivativeN(x []float64, fs float64, order int) []float64 {
	y := x
	for i := 0; i < order; i++ {
		y = Derivative(y, fs)
	}
	return y
}

// Diff returns the first difference x[i+1]-x[i] (length len(x)-1).
func Diff(x []float64) []float64 {
	if len(x) < 2 {
		return nil
	}
	y := make([]float64, len(x)-1)
	for i := range y {
		y[i] = x[i+1] - x[i]
	}
	return y
}

// CumSum returns the cumulative sum of x.
func CumSum(x []float64) []float64 {
	y := make([]float64, len(x))
	acc := 0.0
	for i, v := range x {
		acc += v
		y[i] = acc
	}
	return y
}

// Integrate returns the cumulative trapezoidal integral of x sampled at fs
// (same length as x; first element is 0).
func Integrate(x []float64, fs float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	y := make([]float64, n)
	dt := 1 / fs
	for i := 1; i < n; i++ {
		y[i] = y[i-1] + (x[i]+x[i-1])*dt/2
	}
	return y
}

// MovingAverage returns the centered moving average of x over windows of
// length k (edges use the available samples).
func MovingAverage(x []float64, k int) []float64 {
	return MovingAverageWith(nil, x, k)
}

// MovingAverageWith is MovingAverage drawing its prefix-sum scratch and
// result from an arena (nil falls back to the heap); the result is
// arena-owned when a is non-nil.
func MovingAverageWith(a *Arena, x []float64, k int) []float64 {
	n := len(x)
	if n == 0 || k < 1 {
		return nil
	}
	// Prefix sums for O(n).
	ps := arenaF64(a, n+1)
	ps[0] = 0
	for i, v := range x {
		ps[i+1] = ps[i] + v
	}
	y := arenaF64(a, n)
	for i := 0; i < n; i++ {
		lo, hi := windowBounds(i, n, k)
		y[i] = (ps[hi+1] - ps[lo]) / float64(hi-lo+1)
	}
	return y
}

// SmoothedDerivative returns the derivative of x after smoothing with a
// centered moving average of length k; this stabilizes the high-order
// derivatives used by the characteristic-point rules on noisy beats.
func SmoothedDerivative(x []float64, fs float64, k int) []float64 {
	return Derivative(MovingAverage(x, k), fs)
}
