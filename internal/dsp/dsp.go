// Package dsp provides the digital signal processing substrate used by the
// touch-based ICG/ECG acquisition pipeline: FIR and IIR filter design,
// zero-phase filtering, morphological operators, derivatives, peak
// detection, spectral analysis and elementary statistics.
//
// Everything is implemented from scratch on float64 slices so that the
// embedded pipeline of Sopic et al. (DATE 2016) can be reproduced without
// external dependencies. Functions never modify their inputs unless the
// name says so (e.g. Scale vs ScaleInPlace).
package dsp

import (
	"errors"
	"math"
)

// Common errors returned by the design and filtering routines.
var (
	ErrEmptyInput   = errors.New("dsp: empty input")
	ErrBadCutoff    = errors.New("dsp: cutoff must lie in (0, fs/2)")
	ErrBadOrder     = errors.New("dsp: order must be positive")
	ErrBadLength    = errors.New("dsp: bad length")
	ErrNotPow2      = errors.New("dsp: length is not a power of two")
	ErrShortSignal  = errors.New("dsp: signal too short for requested operation")
	ErrBadParameter = errors.New("dsp: bad parameter")
)

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	if x == nil {
		return nil
	}
	y := make([]float64, len(x))
	copy(y, x)
	return y
}

// Scale returns x scaled by k.
func Scale(x []float64, k float64) []float64 {
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = v * k
	}
	return y
}

// Offset returns x shifted by c.
func Offset(x []float64, c float64) []float64 {
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = v + c
	}
	return y
}

// Add returns the element-wise sum of a and b, which must have equal length.
func Add(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("dsp: Add length mismatch")
	}
	y := make([]float64, len(a))
	for i := range a {
		y[i] = a[i] + b[i]
	}
	return y
}

// Sub returns the element-wise difference a-b of two equal-length slices.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("dsp: Sub length mismatch")
	}
	return SubTo(make([]float64, len(a)), a, b)
}

// SubTo writes the element-wise difference a-b into dst (grown when
// shorter than a; dst may alias a or b) and returns it.
func SubTo(dst, a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("dsp: Sub length mismatch")
	}
	if cap(dst) < len(a) {
		dst = make([]float64, len(a))
	}
	dst = dst[:len(a)]
	for i := range a {
		dst[i] = a[i] - b[i]
	}
	return dst
}

// Mul returns the element-wise product of a and b.
func Mul(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("dsp: Mul length mismatch")
	}
	y := make([]float64, len(a))
	for i := range a {
		y[i] = a[i] * b[i]
	}
	return y
}

// Reverse reverses x in place and returns it.
func Reverse(x []float64) []float64 {
	for i, j := 0, len(x)-1; i < j; i, j = i+1, j-1 {
		x[i], x[j] = x[j], x[i]
	}
	return x
}

// Reversed returns a reversed copy of x.
func Reversed(x []float64) []float64 {
	return Reverse(Clone(x))
}

// Linspace returns n evenly spaced samples from a to b inclusive.
func Linspace(a, b float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{a}
	}
	y := make([]float64, n)
	step := (b - a) / float64(n-1)
	for i := range y {
		y[i] = a + float64(i)*step
	}
	y[n-1] = b
	return y
}

// TimeVector returns n sample instants at sampling rate fs starting at 0.
func TimeVector(n int, fs float64) []float64 {
	t := make([]float64, n)
	for i := range t {
		t[i] = float64(i) / fs
	}
	return t
}

// Sinc computes the normalized sinc function sin(pi x)/(pi x).
func Sinc(x float64) float64 {
	if x == 0 {
		return 1
	}
	px := math.Pi * x
	return math.Sin(px) / px
}

// NextPow2 returns the smallest power of two >= n (n >= 1).
func NextPow2(n int) int {
	if n < 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// Clamp limits v to the interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampInt limits v to the interval [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// HasNaN reports whether x contains a NaN or Inf value.
func HasNaN(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}
