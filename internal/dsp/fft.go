package dsp

import (
	"math"
	"math/cmplx"
)

// Radix-2 FFT used for spectral inspection of the acquired signals (the
// paper inspects the ICG spectrum to justify the 20 Hz low-pass) and for
// the spectral synthesis of RR tachograms.

// FFT computes the in-place decimation-in-time radix-2 FFT of x, whose
// length must be a power of two. It returns x for convenience. Twiddle
// factors come from the process-wide plan cache (see fftplan.go), so
// repeated transforms of the same size pay only the butterflies.
func FFT(x []complex128) ([]complex128, error) {
	n := len(x)
	if !IsPow2(n) {
		return nil, ErrNotPow2
	}
	fftWith(x, twiddlesFor(n))
	return x, nil
}

// IFFT computes the inverse FFT of x (length must be a power of two).
func IFFT(x []complex128) ([]complex128, error) {
	n := len(x)
	if !IsPow2(n) {
		return nil, ErrNotPow2
	}
	ifftWith(x, twiddlesFor(n))
	return x, nil
}

// FFTReal computes the FFT of a real signal, zero-padding to the next
// power of two. It returns the complex spectrum and the padded length.
func FFTReal(x []float64) ([]complex128, int) {
	n := NextPow2(len(x))
	c := make([]complex128, n)
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	out, _ := FFT(c) // length is a power of two by construction
	return out, n
}

// PowerSpectrum estimates the one-sided power spectrum of x sampled at fs
// using a Hann window and zero padding to the next power of two. It
// returns parallel slices of frequencies (Hz) and power values.
func PowerSpectrum(x []float64, fs float64) (freqs, power []float64) {
	if len(x) == 0 {
		return nil, nil
	}
	w := ApplyWindow(WindowHann, x)
	spec, n := FFTReal(w)
	half := n/2 + 1
	freqs = make([]float64, half)
	power = make([]float64, half)
	for i := 0; i < half; i++ {
		freqs[i] = float64(i) * fs / float64(n)
		m := cmplx.Abs(spec[i])
		power[i] = m * m / float64(n)
	}
	return freqs, power
}

// DominantFrequency returns the frequency (Hz) of the largest spectral
// peak of x above minFreq.
func DominantFrequency(x []float64, fs, minFreq float64) float64 {
	freqs, power := PowerSpectrum(x, fs)
	best, bestP := 0.0, math.Inf(-1)
	for i, f := range freqs {
		if f < minFreq {
			continue
		}
		if power[i] > bestP {
			bestP = power[i]
			best = f
		}
	}
	return best
}

// BandPower integrates the power spectrum of x between f1 and f2 (Hz).
func BandPower(x []float64, fs, f1, f2 float64) float64 {
	freqs, power := PowerSpectrum(x, fs)
	sum := 0.0
	for i, f := range freqs {
		if f >= f1 && f <= f2 {
			sum += power[i]
		}
	}
	return sum
}

// Goertzel evaluates the power of x at a single frequency f (Hz) for
// sampling rate fs using the Goertzel recurrence; this is how a
// microcontroller can monitor one carrier bin without a full FFT.
func Goertzel(x []float64, f, fs float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	w := 2 * math.Pi * f / fs
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	power := s1*s1 + s2*s2 - coeff*s1*s2
	return power / float64(n)
}
