package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestFFTKnownDFT(t *testing.T) {
	// DFT of [1, 0, 0, 0] is [1, 1, 1, 1].
	x := []complex128{1, 0, 0, 0}
	y, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range y {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTSinusoidBin(t *testing.T) {
	// A sinusoid at exactly bin k concentrates energy in bins k and n-k.
	n := 256
	k := 10
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Sin(2*math.Pi*float64(k)*float64(i)/float64(n)), 0)
	}
	y, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range y {
		mag := cmplx.Abs(v)
		if i == k || i == n-k {
			if math.Abs(mag-float64(n)/2) > 1e-6 {
				t.Errorf("bin %d magnitude = %g, want %g", i, mag, float64(n)/2)
			}
		} else if mag > 1e-6 {
			t.Errorf("leakage at bin %d: %g", i, mag)
		}
	}
}

func TestFFTRejectsNonPow2(t *testing.T) {
	if _, err := FFT(make([]complex128, 100)); err != ErrNotPow2 {
		t.Errorf("err = %v, want ErrNotPow2", err)
	}
	if _, err := IFFT(make([]complex128, 3)); err != ErrNotPow2 {
		t.Errorf("err = %v, want ErrNotPow2", err)
	}
}

func TestFFTIFFTRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	x := make([]complex128, 128)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	orig := make([]complex128, len(x))
	copy(orig, x)
	if _, err := FFT(x); err != nil {
		t.Fatal(err)
	}
	if _, err := IFFT(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
			t.Fatalf("round trip error at %d: %v vs %v", i, x[i], orig[i])
		}
	}
}

func TestParsevalProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n := 64
	x := make([]complex128, n)
	var timeEnergy float64
	for i := range x {
		v := r.NormFloat64()
		x[i] = complex(v, 0)
		timeEnergy += v * v
	}
	y, _ := FFT(x)
	var freqEnergy float64
	for _, v := range y {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= float64(n)
	if math.Abs(timeEnergy-freqEnergy) > 1e-9*timeEnergy {
		t.Errorf("Parseval violated: %g vs %g", timeEnergy, freqEnergy)
	}
}

func TestDominantFrequency(t *testing.T) {
	fs := 250.0
	x := sine(17, fs, 2048)
	got := DominantFrequency(x, fs, 1)
	if math.Abs(got-17) > fs/2048*2 {
		t.Errorf("dominant = %g, want ~17", got)
	}
}

func TestBandPowerConcentration(t *testing.T) {
	fs := 250.0
	x := sine(10, fs, 4096)
	in := BandPower(x, fs, 8, 12)
	out := BandPower(x, fs, 30, 60)
	if in < 100*out {
		t.Errorf("band power not concentrated: in=%g out=%g", in, out)
	}
}

func TestGoertzelMatchesFFTBin(t *testing.T) {
	fs := 256.0
	n := 256
	x := sine(10, fs, n) // exactly bin 10
	p := Goertzel(x, 10, fs)
	// Expected Goertzel power for unit sinusoid at an exact bin:
	// |X[k]|^2/n = (n/2)^2/n = n/4.
	want := float64(n) / 4
	if math.Abs(p-want) > 1e-6*want {
		t.Errorf("goertzel power = %g, want %g", p, want)
	}
	// Off-bin frequency sees almost nothing.
	if off := Goertzel(x, 60, fs); off > p/1000 {
		t.Errorf("off-bin power = %g too large vs %g", off, p)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 1023: 1024, 1024: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
	if !IsPow2(64) || IsPow2(0) || IsPow2(3) {
		t.Error("IsPow2 misbehaves")
	}
}

func TestPowerSpectrumEmpty(t *testing.T) {
	f, p := PowerSpectrum(nil, 250)
	if f != nil || p != nil {
		t.Error("empty input should return nil")
	}
}
