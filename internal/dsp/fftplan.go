package dsp

import (
	"math"
	"sync"
)

// Cached FFT plans. The radix-2 transform spends a surprising share of its
// time recomputing twiddle factors (cmplx.Exp plus the w *= wl recurrence,
// which also accumulates rounding error). A plan precomputes the twiddle
// table once per size and shares it process-wide, so repeated transforms —
// spectral estimates on every streaming window, overlap-save convolution
// blocks — pay only the butterflies.

// twiddleCache maps a power-of-two size n to its forward twiddle table
// (length n/2, w[k] = exp(-2*pi*i*k/n)). Tables are immutable after
// construction and therefore safe to share between goroutines.
var twiddleCache sync.Map

// twiddlesFor returns the cached forward twiddle table for size n, which
// must be a power of two.
func twiddlesFor(n int) []complex128 {
	if v, ok := twiddleCache.Load(n); ok {
		return v.([]complex128)
	}
	w := make([]complex128, n/2)
	for k := range w {
		ang := -2 * math.Pi * float64(k) / float64(n)
		w[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	v, _ := twiddleCache.LoadOrStore(n, w)
	return v.([]complex128)
}

// fftWith computes the in-place decimation-in-time radix-2 FFT of x using
// the precomputed twiddle table w (len(x)/2 entries). len(x) must be a
// power of two.
func fftWith(x, w []complex128) {
	n := len(x)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		half := length >> 1
		stride := n / length
		for start := 0; start < n; start += length {
			ti := 0
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w[ti]
				x[start+k] = u + v
				x[start+k+half] = u - v
				ti += stride
			}
		}
	}
}

// ifftWith computes the in-place inverse FFT of x using the forward
// twiddle table w, via the conjugation identity IFFT(x) = conj(FFT(conj(x)))/n.
func ifftWith(x, w []complex128) {
	n := len(x)
	for i := range x {
		x[i] = complex(real(x[i]), -imag(x[i]))
	}
	fftWith(x, w)
	inv := 1 / float64(n)
	for i := range x {
		x[i] = complex(real(x[i])*inv, -imag(x[i])*inv)
	}
}

// FFTPlan is a reusable transform plan for one power-of-two size: the
// twiddle table is fetched from the process-wide cache at construction and
// the transforms run allocation-free.
type FFTPlan struct {
	n int
	w []complex128
}

// NewFFTPlan builds (or fetches the cached tables for) a plan of size n.
func NewFFTPlan(n int) (*FFTPlan, error) {
	if !IsPow2(n) {
		return nil, ErrNotPow2
	}
	return &FFTPlan{n: n, w: twiddlesFor(n)}, nil
}

// Size returns the transform size.
func (p *FFTPlan) Size() int { return p.n }

// Forward computes the in-place FFT of x, which must have the plan's size.
func (p *FFTPlan) Forward(x []complex128) error {
	if len(x) != p.n {
		return ErrBadLength
	}
	fftWith(x, p.w)
	return nil
}

// Inverse computes the in-place inverse FFT of x (the plan's size).
func (p *FFTPlan) Inverse(x []complex128) error {
	if len(x) != p.n {
		return ErrBadLength
	}
	ifftWith(x, p.w)
	return nil
}
