package dsp

import (
	"math"
	"math/bits"
	"sync"
)

// Cached FFT plans. The radix-2 transform spends a surprising share of its
// time recomputing twiddle factors (cmplx.Exp plus the w *= wl recurrence,
// which also accumulates rounding error). A plan precomputes the twiddle
// table once per size and shares it process-wide, so repeated transforms —
// spectral estimates on every streaming window, overlap-save convolution
// blocks — pay only the butterflies.

// twiddleCache maps a power-of-two size n to its forward twiddle table
// (length n/2, w[k] = exp(-2*pi*i*k/n)). Tables are immutable after
// construction and therefore safe to share between goroutines.
var twiddleCache sync.Map

// twiddlesFor returns the cached forward twiddle table for size n, which
// must be a power of two.
func twiddlesFor(n int) []complex128 {
	if v, ok := twiddleCache.Load(n); ok {
		return v.([]complex128)
	}
	w := make([]complex128, n/2)
	for k := range w {
		ang := -2 * math.Pi * float64(k) / float64(n)
		w[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	v, _ := twiddleCache.LoadOrStore(n, w)
	return v.([]complex128)
}

// invTwiddleCache holds the conjugated (inverse) twiddle tables, so the
// inverse transform can run the same branch-free butterfly kernel as the
// forward one instead of paying two full conjugation passes over the
// data (the old conj/transform/conj identity).
var invTwiddleCache sync.Map

// invTwiddlesFor returns the cached inverse twiddle table for size n
// (w[k] = exp(+2*pi*i*k/n)), the elementwise conjugate of twiddlesFor.
func invTwiddlesFor(n int) []complex128 {
	if v, ok := invTwiddleCache.Load(n); ok {
		return v.([]complex128)
	}
	fwd := twiddlesFor(n)
	w := make([]complex128, len(fwd))
	for k, c := range fwd {
		w[k] = complex(real(c), -imag(c))
	}
	v, _ := invTwiddleCache.LoadOrStore(n, w)
	return v.([]complex128)
}

// bitrev applies the bit-reversal permutation in place.
func bitrev(x []complex128) {
	n := len(x)
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
}

// butterflies runs the decimation-in-time radix-2 stages over
// bit-reversed input. The first two stages carry only trivial twiddles
// (1 and -i — or +i when w is an inverse table, selected by s = -imag of
// the quarter twiddle), so they run as dedicated multiply-free loops;
// the generic stages read the table with stride indexing.
func butterflies(x, w []complex128) {
	n := len(x)
	for i := 0; i+1 < n; i += 2 {
		u, v := x[i], x[i+1]
		x[i], x[i+1] = u+v, u-v
	}
	if n < 4 {
		return
	}
	// Quarter-turn sign: -1 for the forward table (twiddle -i), +1 for
	// the inverse table (+i). Using the exact unit value instead of the
	// table's cos/sin pair costs nothing and loses no accuracy.
	s := 1.0
	if imag(w[len(w)/2]) < 0 {
		s = -1
	}
	for i := 0; i+3 < n; i += 4 {
		u0, u1 := x[i], x[i+2]
		x[i], x[i+2] = u0+u1, u0-u1
		u2, u3 := x[i+1], x[i+3]
		t := complex(-s*imag(u3), s*real(u3)) // s*i * u3
		x[i+1], x[i+3] = u2+t, u2-t
	}
	// Remaining stages, fused two at a time into radix-4 quads: one pass
	// over the data per stage pair instead of two, which matters more
	// than the flop count — the kernel is bound by loop and memory
	// overhead per butterfly, not multiplies.
	length := 8
	if stages := bits.Len(uint(n)) - 3; stages&1 == 1 {
		// Odd stage count past the specials: burn one plain radix-2
		// stage so the fused loop ends exactly at n.
		half, stride := 4, n/8
		for start := 0; start < n; start += 8 {
			ti := 0
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w[ti]
				x[start+k] = u + v
				x[start+k+half] = u - v
				ti += stride
			}
		}
		length = 16
	}
	for L := length; 2*L <= n; L <<= 2 {
		h := L >> 1
		quad := L << 1
		strideA := n / L
		strideB := strideA >> 1
		for start := 0; start < n; start += quad {
			tA, tB := 0, 0
			for j := start; j < start+h; j++ {
				w1, w2 := w[tA], w[tB]
				a, b := x[j], x[j+h]
				c, d := x[j+2*h], x[j+3*h]
				vb := b * w1
				vd := d * w1
				a0, b0 := a+vb, a-vb
				c0, d0 := c+vd, c-vd
				vc := c0 * w2
				vd2 := d0 * w2
				rd := complex(-s*imag(vd2), s*real(vd2)) // s*i * (w2*d0)
				x[j], x[j+2*h] = a0+vc, a0-vc
				x[j+h], x[j+3*h] = b0+rd, b0-rd
				tA += strideA
				tB += strideB
			}
		}
	}
}

// fftWith computes the in-place decimation-in-time radix-2 FFT of x using
// the precomputed twiddle table w (len(x)/2 entries). len(x) must be a
// power of two.
func fftWith(x, w []complex128) {
	bitrev(x)
	butterflies(x, w)
}

// ifftWith computes the in-place inverse FFT of x using the forward
// twiddle table w: the butterflies run on the cached conjugate table and
// a single pass applies the 1/n normalization.
func ifftWith(x, w []complex128) {
	n := len(x)
	ifftNoScale(x, w)
	inv := 1 / float64(n)
	for i := range x {
		x[i] = complex(real(x[i])*inv, imag(x[i])*inv)
	}
}

// ifftNoScale is the inverse transform without the 1/n normalization,
// for callers (the overlap-save engine) that fold the scale into a
// spectrum they multiply by anyway.
func ifftNoScale(x, w []complex128) {
	n := len(x)
	_ = w
	bitrev(x)
	butterflies(x, invTwiddlesFor(n))
}

// FFTPlan is a reusable transform plan for one power-of-two size: the
// twiddle table is fetched from the process-wide cache at construction and
// the transforms run allocation-free.
type FFTPlan struct {
	n int
	w []complex128
}

// NewFFTPlan builds (or fetches the cached tables for) a plan of size n.
func NewFFTPlan(n int) (*FFTPlan, error) {
	if !IsPow2(n) {
		return nil, ErrNotPow2
	}
	return &FFTPlan{n: n, w: twiddlesFor(n)}, nil
}

// Size returns the transform size.
func (p *FFTPlan) Size() int { return p.n }

// Forward computes the in-place FFT of x, which must have the plan's size.
func (p *FFTPlan) Forward(x []complex128) error {
	if len(x) != p.n {
		return ErrBadLength
	}
	fftWith(x, p.w)
	return nil
}

// Inverse computes the in-place inverse FFT of x (the plan's size).
func (p *FFTPlan) Inverse(x []complex128) error {
	if len(x) != p.n {
		return ErrBadLength
	}
	ifftWith(x, p.w)
	return nil
}
