package dsp

import "math"

// FIR filter design by the windowed-sinc method. The paper's ECG chain uses
// a 32nd-order (33-tap) band-pass with cut-offs 0.05 Hz and 40 Hz applied
// forward-backward for zero phase; DesignBandPass reproduces exactly that
// design style.

// FIR is a finite impulse response filter described by its taps.
//
// The filtering methods lazily cache derived state (reversed taps for the
// direct convolution engine, the overlap-save plan for the FFT engine), so
// Taps must not be modified after the first filtering call. A FIR is not
// safe for concurrent use until Prepare has been called; afterwards the
// cost-model-driven methods (Apply, ApplyTo, ApplyCausal, FiltFiltFIR)
// are safe — the direct engine is read-only and the FFT engine serializes
// on its plan's internal block buffer. Forcing ApplyFFT on a filter
// narrow enough that Prepare skipped the plan still builds state lazily
// and needs external synchronization.
type FIR struct {
	Taps []float64

	rev []float64 // taps reversed, for the branch-free dot-product engine
	cp  *convPlan // overlap-save state, built on first FFT-path use
}

// Order returns the filter order (len(taps)-1).
func (f *FIR) Order() int { return len(f.Taps) - 1 }

// reversed returns the cached reversed-tap table, building it on first
// use.
func (f *FIR) reversed() []float64 {
	if len(f.rev) != len(f.Taps) {
		f.rev = make([]float64, len(f.Taps))
		for i, t := range f.Taps {
			f.rev[len(f.Taps)-1-i] = t
		}
	}
	return f.rev
}

// plan returns the cached overlap-save plan, building it on first use.
func (f *FIR) plan() *convPlan {
	if f.cp == nil {
		f.cp = newConvPlan(f.Taps)
	}
	return f.cp
}

// Prepare eagerly builds the cached filtering state (reversed taps and,
// for filters wide enough to use the FFT path, the overlap-save plan).
// Call it once at construction when the filter will be applied from a
// steady-state hot path or shared between goroutines.
func (f *FIR) Prepare() {
	f.reversed()
	if useFFTConv(1<<20, len(f.Taps)) {
		f.plan()
	}
}

// lowpassKernel returns an (order+1)-tap windowed-sinc low-pass kernel with
// normalized DC gain of exactly 1.
func lowpassKernel(order int, fc, fs float64, kind WindowKind) []float64 {
	n := order + 1
	taps := make([]float64, n)
	w := Window(kind, n)
	m := float64(order) / 2
	// Normalized cutoff in cycles/sample.
	nu := fc / fs
	sum := 0.0
	for i := 0; i < n; i++ {
		x := float64(i) - m
		taps[i] = 2 * nu * Sinc(2*nu*x) * w[i]
		sum += taps[i]
	}
	// Normalize so the DC gain (sum of taps) is 1.
	if sum != 0 {
		for i := range taps {
			taps[i] /= sum
		}
	}
	return taps
}

// DesignLowPass designs a windowed-sinc low-pass FIR of the given order
// (order+1 taps) with cutoff fc at sampling rate fs.
func DesignLowPass(order int, fc, fs float64, kind WindowKind) (*FIR, error) {
	if order < 1 {
		return nil, ErrBadOrder
	}
	if fc <= 0 || fc >= fs/2 {
		return nil, ErrBadCutoff
	}
	return &FIR{Taps: lowpassKernel(order, fc, fs, kind)}, nil
}

// DesignHighPass designs a windowed-sinc high-pass FIR by spectral
// inversion of the complementary low-pass. order must be even so that the
// filter has a well-defined center tap.
func DesignHighPass(order int, fc, fs float64, kind WindowKind) (*FIR, error) {
	if order < 2 || order%2 != 0 {
		return nil, ErrBadOrder
	}
	if fc <= 0 || fc >= fs/2 {
		return nil, ErrBadCutoff
	}
	lp := lowpassKernel(order, fc, fs, kind)
	taps := make([]float64, len(lp))
	for i := range lp {
		taps[i] = -lp[i]
	}
	taps[order/2] += 1
	return &FIR{Taps: taps}, nil
}

// DesignBandPass designs a windowed-sinc band-pass FIR as the difference of
// two low-pass kernels (pass band [f1, f2]). order must be even. This is
// the design used for the paper's 32nd-order 0.05-40 Hz ECG band-pass.
func DesignBandPass(order int, f1, f2, fs float64, kind WindowKind) (*FIR, error) {
	if order < 2 || order%2 != 0 {
		return nil, ErrBadOrder
	}
	if f1 <= 0 || f2 <= f1 || f2 >= fs/2 {
		return nil, ErrBadCutoff
	}
	lo := lowpassKernel(order, f1, fs, kind)
	hi := lowpassKernel(order, f2, fs, kind)
	taps := make([]float64, len(lo))
	for i := range taps {
		taps[i] = hi[i] - lo[i]
	}
	f := &FIR{Taps: taps}
	// Normalize the gain at the passband center to exactly 1 (the same
	// scaling scipy.signal.firwin applies), so that short filters such as
	// the paper's 33-tap design keep unity in-band gain.
	center := (f1 + f2) / 2
	if g := f.FrequencyResponse(center, fs); g > 0 {
		for i := range f.Taps {
			f.Taps[i] /= g
		}
	}
	return f, nil
}

// Apply filters x with f using zero-padded ("same") convolution so that the
// output is aligned with the input and compensated for the group delay of a
// linear-phase filter. The convolution engine — direct three-region dot
// products or FFT overlap-save — is chosen automatically by the n*k cost
// model of useFFTConv.
func (f *FIR) Apply(x []float64) []float64 {
	if len(x) == 0 || len(f.Taps) == 0 {
		return nil
	}
	return f.ApplyTo(make([]float64, len(x)), x)
}

// ApplyTo is Apply writing into dst, which must not alias x and is grown
// when shorter than x. It returns the filtered slice (dst or its
// replacement) and allocates nothing when dst has sufficient capacity.
func (f *FIR) ApplyTo(dst, x []float64) []float64 {
	n := len(x)
	k := len(f.Taps)
	if n == 0 || k == 0 {
		return nil
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	delay := (k - 1) / 2
	if useFFTConv(n, k) {
		f.plan().convFFTInto(dst, x, delay)
	} else {
		convDirectInto(dst, x, f.reversed(), delay)
	}
	return dst
}

// ApplyDirect is Apply pinned to the direct three-region engine,
// regardless of the cost model. It exists so the FFT path can be verified
// against it.
func (f *FIR) ApplyDirect(x []float64) []float64 {
	n := len(x)
	k := len(f.Taps)
	if n == 0 || k == 0 {
		return nil
	}
	y := make([]float64, n)
	convDirectInto(y, x, f.reversed(), (k-1)/2)
	return y
}

// ApplyFFT is Apply pinned to the FFT overlap-save engine: identical
// output to ApplyDirect up to floating-point rounding (~1e-12 relative),
// asymptotically cheaper for wide filters.
func (f *FIR) ApplyFFT(x []float64) []float64 {
	n := len(x)
	k := len(f.Taps)
	if n == 0 || k == 0 {
		return nil
	}
	y := make([]float64, n)
	f.plan().convFFTInto(y, x, (k-1)/2)
	return y
}

// ApplyCausal filters x with f as a causal FIR (no group-delay
// compensation), matching what streaming firmware computes sample by
// sample.
func (f *FIR) ApplyCausal(x []float64) []float64 {
	n := len(x)
	k := len(f.Taps)
	if n == 0 || k == 0 {
		return nil
	}
	y := make([]float64, n)
	convDirectInto(y, x, f.reversed(), 0)
	return y
}

// applyCausalTo writes the causal (off = 0) convolution into dst (length
// len(x), no aliasing), choosing the engine by cost. It is the kernel both
// passes of the zero-phase FiltFiltFIR run on.
func (f *FIR) applyCausalTo(dst, x []float64) {
	if useFFTConv(len(x), len(f.Taps)) {
		f.plan().convFFTInto(dst, x, 0)
	} else {
		convDirectInto(dst, x, f.reversed(), 0)
	}
}

// FrequencyResponse evaluates the magnitude response |H(f)| of the filter
// at frequency f (Hz) for sampling rate fs.
func (f *FIR) FrequencyResponse(freq, fs float64) float64 {
	re, im := 0.0, 0.0
	w := 2 * math.Pi * freq / fs
	for n, tap := range f.Taps {
		re += tap * math.Cos(w*float64(n))
		im -= tap * math.Sin(w*float64(n))
	}
	return math.Hypot(re, im)
}

// Convolve returns the full linear convolution of a and b
// (length len(a)+len(b)-1).
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	y := make([]float64, len(a)+len(b)-1)
	for i, av := range a {
		for j, bv := range b {
			y[i+j] += av * bv
		}
	}
	return y
}
