package dsp

import (
	"math"
	"testing"
)

func sine(f, fs float64, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * f * float64(i) / fs)
	}
	return x
}

func TestDesignLowPassDCGain(t *testing.T) {
	f, err := DesignLowPass(32, 40, 250, WindowHamming)
	if err != nil {
		t.Fatalf("DesignLowPass: %v", err)
	}
	sum := 0.0
	for _, tap := range f.Taps {
		sum += tap
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("DC gain = %g, want 1", sum)
	}
	if got := f.FrequencyResponse(0, 250); math.Abs(got-1) > 1e-9 {
		t.Errorf("H(0) = %g, want 1", got)
	}
}

func TestDesignLowPassAttenuation(t *testing.T) {
	f, err := DesignLowPass(64, 20, 250, WindowHamming)
	if err != nil {
		t.Fatalf("DesignLowPass: %v", err)
	}
	pass := f.FrequencyResponse(5, 250)
	stop := f.FrequencyResponse(60, 250)
	if pass < 0.9 {
		t.Errorf("passband gain at 5 Hz = %g, want > 0.9", pass)
	}
	if stop > 0.05 {
		t.Errorf("stopband gain at 60 Hz = %g, want < 0.05", stop)
	}
}

func TestDesignHighPass(t *testing.T) {
	f, err := DesignHighPass(64, 20, 250, WindowHamming)
	if err != nil {
		t.Fatalf("DesignHighPass: %v", err)
	}
	if dc := f.FrequencyResponse(0, 250); dc > 0.01 {
		t.Errorf("DC gain = %g, want ~0", dc)
	}
	if hi := f.FrequencyResponse(80, 250); hi < 0.9 {
		t.Errorf("gain at 80 Hz = %g, want > 0.9", hi)
	}
}

func TestDesignBandPassPaperFilter(t *testing.T) {
	// The paper's ECG filter: 32nd order, 0.05-40 Hz at 250 Hz.
	f, err := DesignBandPass(32, 0.05, 40, 250, WindowHamming)
	if err != nil {
		t.Fatalf("DesignBandPass: %v", err)
	}
	if len(f.Taps) != 33 {
		t.Fatalf("taps = %d, want 33", len(f.Taps))
	}
	if f.Order() != 32 {
		t.Fatalf("order = %d, want 32", f.Order())
	}
	// The design is normalized at the band center (20.025 Hz).
	center := f.FrequencyResponse((0.05+40)/2, 250)
	if math.Abs(center-1) > 1e-9 {
		t.Errorf("gain at band center = %g, want 1", center)
	}
	// With only 33 taps the lower transition band is wide (a faithful
	// property of the paper's under-specified design); 10 Hz sits in it.
	mid := f.FrequencyResponse(10, 250)
	if mid < 0.7 {
		t.Errorf("gain at 10 Hz = %g, want > 0.7", mid)
	}
	stop := f.FrequencyResponse(100, 250)
	if stop > 0.15 {
		t.Errorf("gain at 100 Hz = %g, want small", stop)
	}
}

func TestDesignBandPassRejectsBadParams(t *testing.T) {
	if _, err := DesignBandPass(31, 0.05, 40, 250, WindowHamming); err == nil {
		t.Error("odd order accepted")
	}
	if _, err := DesignBandPass(32, 40, 0.05, 250, WindowHamming); err == nil {
		t.Error("inverted band accepted")
	}
	if _, err := DesignBandPass(32, 0.05, 130, 250, WindowHamming); err == nil {
		t.Error("cutoff above Nyquist accepted")
	}
	if _, err := DesignLowPass(0, 10, 250, WindowHamming); err == nil {
		t.Error("zero order accepted")
	}
	if _, err := DesignHighPass(3, 10, 250, WindowHamming); err == nil {
		t.Error("odd high-pass order accepted")
	}
}

func TestFIRApplySinusoidGain(t *testing.T) {
	f, err := DesignBandPass(64, 1, 40, 250, WindowHamming)
	if err != nil {
		t.Fatal(err)
	}
	// A 10 Hz sinusoid should pass nearly unchanged.
	x := sine(10, 250, 1000)
	y := f.Apply(x)
	// Compare RMS over the central region (edges have transients).
	rx := RMS(x[200:800])
	ry := RMS(y[200:800])
	if math.Abs(ry/rx-1) > 0.05 {
		t.Errorf("10 Hz gain = %g, want ~1", ry/rx)
	}
	// A 90 Hz sinusoid should be strongly attenuated.
	x2 := sine(90, 250, 1000)
	y2 := f.Apply(x2)
	if r := RMS(y2[200:800]) / RMS(x2[200:800]); r > 0.1 {
		t.Errorf("90 Hz gain = %g, want < 0.1", r)
	}
}

func TestFIRApplyGroupDelayCompensation(t *testing.T) {
	// A linear-phase filter applied with Apply should keep a slow pulse
	// centered at the same location.
	f, err := DesignLowPass(32, 30, 250, WindowHamming)
	if err != nil {
		t.Fatal(err)
	}
	n := 500
	x := make([]float64, n)
	for i := range x {
		d := float64(i - 250)
		x[i] = math.Exp(-d * d / (2 * 20 * 20))
	}
	y := f.Apply(x)
	if got := ArgMax(y, 0, n); got < 248 || got > 252 {
		t.Errorf("pulse peak moved to %d, want ~250", got)
	}
}

func TestFIRApplyCausalDelaysSignal(t *testing.T) {
	f, err := DesignLowPass(32, 30, 250, WindowHamming)
	if err != nil {
		t.Fatal(err)
	}
	n := 500
	x := make([]float64, n)
	for i := range x {
		d := float64(i - 250)
		x[i] = math.Exp(-d * d / (2 * 20 * 20))
	}
	y := f.ApplyCausal(x)
	want := 250 + f.Order()/2
	if got := ArgMax(y, 0, n); got < want-2 || got > want+2 {
		t.Errorf("causal peak at %d, want ~%d", got, want)
	}
}

func TestConvolve(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{0, 1, 0.5}
	got := Convolve(a, b)
	want := []float64{0, 1, 2.5, 4, 1.5}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("conv[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if Convolve(nil, b) != nil {
		t.Error("nil input should give nil")
	}
}

func TestConvolveCommutative(t *testing.T) {
	a := []float64{1, -2, 0.5, 3}
	b := []float64{2, 0, -1}
	ab := Convolve(a, b)
	ba := Convolve(b, a)
	for i := range ab {
		if math.Abs(ab[i]-ba[i]) > 1e-12 {
			t.Fatalf("convolution not commutative at %d: %g vs %g", i, ab[i], ba[i])
		}
	}
}
