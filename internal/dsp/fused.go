package dsp

import "sync"

// Fused smooth + triple-derivative kernels for the beat delineator.
//
// The characteristic-point rules consume the 1st, 2nd and 3rd central
// differences of a smoothed beat segment. Composed naively that is four
// full passes (smooth, d1, d2, d3) over four arena buffers, with the
// smoothed track materialized only to be differentiated. The kernels
// here collapse the chain into a single pass: smoothed samples are
// produced on the fly (prefix-sum window for the moving average, cached
// kernels for Savitzky-Golay) and each derivative order is written as
// soon as its inputs exist, software-pipelined three indices deep.
//
// Bit-exactness contract: both kernels reproduce the legacy chain
//
//	sm := MovingAverageWith(a, x, k)        // or SavGolSmooth(x, m)
//	d1 := DerivativeTo(buf1, sm, fs)
//	d2 := DerivativeTo(buf2, d1, fs)
//	d3 := DerivativeTo(buf3, d2, fs)
//
// bit for bit: every smoothed value is computed by the same expression
// in the same accumulation order, and every derivative entry by the
// same one-sided/central expression, so reordering the writes cannot
// change a ULP. The fuzz target in internal/icg pins this law against
// the literal composition.

// savgolKernels caches SavGolKernel results by half-width. The kernels
// are pure functions of m, so a racing double-compute stores identical
// values; entries must be treated as read-only.
var savgolKernels sync.Map // int -> []float64

func cachedSavGolKernel(m int) []float64 {
	if v, ok := savgolKernels.Load(m); ok {
		return v.([]float64)
	}
	k := SavGolKernel(m)
	savgolKernels.Store(m, k)
	return k
}

// SmoothDeriv3MovAvgWith returns the first three derivatives of the
// centered length-k moving average of x, fused into one pass. The
// prefix-sum scratch and results come from the arena (nil falls back to
// the heap). Matches the legacy MovingAverageWith + DerivativeTo chain
// bit for bit without materializing the smoothed track: 4n+1 arena
// floats instead of 5n+1, one traversal instead of four.
func SmoothDeriv3MovAvgWith(a *Arena, x []float64, k int, fs float64) (d1, d2, d3 []float64) {
	n := len(x)
	if n == 0 || k < 1 {
		return nil, nil, nil
	}
	ps := arenaF64(a, n+1)
	ps[0] = 0
	for i, v := range x {
		ps[i+1] = ps[i] + v
	}
	if n < 4 {
		return smoothDeriv3(a, n, fs, func(i int) float64 { return movAvgAt(ps, i, n, k) }) //icg:allow hotalloc -- n<4 degenerate path: one closure per call, off the pipelined steady state
	}
	// Specialized pipelined pass: same schedule as smoothDeriv3, but the
	// smoothing accessor is a static inlinable call — an indirect
	// per-sample closure call costs more than the fusion saves.
	d1 = arenaF64(a, n)
	d2 = arenaF64(a, n)
	d3 = arenaF64(a, n)
	half := fs / 2
	pm2 := movAvgAt(ps, 0, n, k)
	s := movAvgAt(ps, 1, n, k)
	d1[0] = (s - pm2) * fs
	pm1 := s
	s = movAvgAt(ps, 2, n, k)
	d1[1] = (s - pm2) * half
	d2[0] = (d1[1] - d1[0]) * fs
	pm2, pm1 = pm1, s
	s = movAvgAt(ps, 3, n, k)
	d1[2] = (s - pm2) * half
	d2[1] = (d1[2] - d1[0]) * half
	d3[0] = (d2[1] - d2[0]) * fs
	pm2, pm1 = pm1, s
	for i := 4; i < n; i++ {
		s = movAvgAt(ps, i, n, k)
		d1[i-1] = (s - pm2) * half
		d2[i-2] = (d1[i-1] - d1[i-3]) * half
		d3[i-3] = (d2[i-2] - d2[i-4]) * half
		pm2, pm1 = pm1, s
	}
	d1[n-1] = (pm1 - pm2) * fs
	d2[n-2] = (d1[n-1] - d1[n-3]) * half
	d2[n-1] = (d1[n-1] - d1[n-2]) * fs
	d3[n-3] = (d2[n-2] - d2[n-4]) * half
	d3[n-2] = (d2[n-1] - d2[n-3]) * half
	d3[n-1] = (d2[n-1] - d2[n-2]) * fs
	return
}

// movAvgAt returns the i-th centered moving-average sample from the
// prefix sums, by the MovingAverageWith expression verbatim; kept small
// so it inlines into the pipelined loop.
func movAvgAt(ps []float64, i, n, k int) float64 {
	lo, hi := windowBounds(i, n, k)
	return (ps[hi+1] - ps[lo]) / float64(hi-lo+1)
}

// SmoothDeriv3SavGolWith is SmoothDeriv3MovAvgWith with quadratic
// Savitzky-Golay smoothing of half-width m (shrinking symmetric windows
// at the edges, exactly as SavGolSmooth). Edge kernels come from a
// process-wide cache, removing the per-beat kernel allocations of the
// legacy chain.
func SmoothDeriv3SavGolWith(a *Arena, x []float64, m int, fs float64) (d1, d2, d3 []float64) {
	n := len(x)
	if n == 0 {
		return nil, nil, nil
	}
	if m < 1 {
		// SavGolSmooth degenerates to the identity.
		return smoothDeriv3(a, n, fs, func(i int) float64 { return x[i] }) //icg:allow hotalloc -- m<1 identity degenerate path: one closure per call
	}
	km := cachedSavGolKernel(m)
	return smoothDeriv3(a, n, fs, func(i int) float64 { //icg:allow hotalloc -- one accessor closure per recording, amortized over n samples; the kernel cache already removed the per-beat allocations
		if i >= m && i+m < n {
			acc := 0.0
			for j := -m; j <= m; j++ {
				acc += km[j+m] * x[i+j]
			}
			return acc
		}
		mm := i
		if n-1-i < mm {
			mm = n - 1 - i
		}
		if mm < 1 {
			return x[i]
		}
		ke := cachedSavGolKernel(mm)
		acc := 0.0
		for j := -mm; j <= mm; j++ {
			acc += ke[j+mm] * x[i+j]
		}
		return acc
	})
}

// smoothDeriv3 drives the pipelined pass: sm(i) yields the i-th
// smoothed sample (called exactly once per index, in order), and the
// three derivative buffers fill with a lag of one, two and three
// indices behind the smoothing front. Each entry uses the DerivativeTo
// expressions verbatim — one-sided fs-scaled differences at the ends,
// centered half-scaled differences inside — and every operand is final
// when read, so the interleaving is bit-identical to three serial
// passes.
func smoothDeriv3(a *Arena, n int, fs float64, sm func(int) float64) (d1, d2, d3 []float64) {
	d1 = arenaF64(a, n)
	d2 = arenaF64(a, n)
	d3 = arenaF64(a, n)
	if n == 1 {
		d1[0], d2[0], d3[0] = 0, 0, 0
		return
	}
	half := fs / 2
	s0, s1 := sm(0), sm(1)
	d1[0] = (s1 - s0) * fs
	if n == 2 {
		d1[1] = (s1 - s0) * fs
		d2[0] = (d1[1] - d1[0]) * fs
		d2[1] = (d1[1] - d1[0]) * fs
		d3[0] = (d2[1] - d2[0]) * fs
		d3[1] = (d2[1] - d2[0]) * fs
		return
	}
	if n == 3 {
		s2 := sm(2)
		d1[1] = (s2 - s0) * half
		d1[2] = (s2 - s1) * fs
		d2[0] = (d1[1] - d1[0]) * fs
		d2[1] = (d1[2] - d1[0]) * half
		d2[2] = (d1[2] - d1[1]) * fs
		d3[0] = (d2[1] - d2[0]) * fs
		d3[1] = (d2[2] - d2[0]) * half
		d3[2] = (d2[2] - d2[1]) * fs
		return
	}
	// n >= 4: prologue fills the pipeline, the steady-state loop writes
	// one entry of each order per iteration, the epilogue drains the
	// one-sided tail entries.
	pm2, pm1 := s0, s1
	s := sm(2)
	d1[1] = (s - pm2) * half
	d2[0] = (d1[1] - d1[0]) * fs
	pm2, pm1 = pm1, s
	s = sm(3)
	d1[2] = (s - pm2) * half
	d2[1] = (d1[2] - d1[0]) * half
	d3[0] = (d2[1] - d2[0]) * fs
	pm2, pm1 = pm1, s
	for i := 4; i < n; i++ {
		s = sm(i)
		d1[i-1] = (s - pm2) * half
		d2[i-2] = (d1[i-1] - d1[i-3]) * half
		d3[i-3] = (d2[i-2] - d2[i-4]) * half
		pm2, pm1 = pm1, s
	}
	d1[n-1] = (pm1 - pm2) * fs
	d2[n-2] = (d1[n-1] - d1[n-3]) * half
	d2[n-1] = (d1[n-1] - d1[n-2]) * fs
	d3[n-3] = (d2[n-2] - d2[n-4]) * half
	d3[n-2] = (d2[n-1] - d2[n-3]) * half
	d3[n-1] = (d2[n-1] - d2[n-2]) * fs
	return
}
