package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// legacySmoothDeriv3 is the literal four-pass composition the fused
// kernels replace; the parity tests hold them bit-identical.
func legacySmoothDeriv3(x []float64, fs float64, savgol bool, kOrM int) (d1, d2, d3 []float64) {
	var sm []float64
	if savgol {
		sm = SavGolSmooth(x, kOrM)
	} else {
		sm = MovingAverageWith(nil, x, kOrM)
	}
	if len(sm) == 0 {
		return nil, nil, nil
	}
	d1 = DerivativeTo(make([]float64, len(sm)), sm, fs)
	d2 = DerivativeTo(make([]float64, len(d1)), d1, fs)
	d3 = DerivativeTo(make([]float64, len(d2)), d2, fs)
	return
}

func cmpBits(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d, want %d", name, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d]: %v != %v", name, i, got[i], want[i])
		}
	}
}

func TestSmoothDeriv3FusedMatchesLegacyBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	a := new(Arena)
	fss := []float64{250, 173.5}
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 12, 31, 75, 300} {
		x := make([]float64, n)
		for i := range x {
			x[i] = 2*rng.Float64() - 1
		}
		for _, fs := range fss {
			for _, k := range []int{1, 2, 3, 4, 5, 9, 16} {
				w1, w2, w3 := legacySmoothDeriv3(x, fs, false, k)
				a.Reset()
				g1, g2, g3 := SmoothDeriv3MovAvgWith(a, x, k, fs)
				cmpBits(t, "movavg d1", g1, w1)
				cmpBits(t, "movavg d2", g2, w2)
				cmpBits(t, "movavg d3", g3, w3)
				// Heap path too.
				h1, h2, h3 := SmoothDeriv3MovAvgWith(nil, x, k, fs)
				cmpBits(t, "movavg heap d1", h1, w1)
				cmpBits(t, "movavg heap d2", h2, w2)
				cmpBits(t, "movavg heap d3", h3, w3)
			}
			for _, m := range []int{0, 1, 2, 3, 5, 8} {
				w1, w2, w3 := legacySmoothDeriv3(x, fs, true, m)
				a.Reset()
				g1, g2, g3 := SmoothDeriv3SavGolWith(a, x, m, fs)
				cmpBits(t, "savgol d1", g1, w1)
				cmpBits(t, "savgol d2", g2, w2)
				cmpBits(t, "savgol d3", g3, w3)
			}
		}
	}
	// Degenerate inputs mirror the legacy chain's nil results.
	if d1, d2, d3 := SmoothDeriv3MovAvgWith(nil, nil, 3, 250); d1 != nil || d2 != nil || d3 != nil {
		t.Error("empty input should yield nils")
	}
	if d1, _, _ := SmoothDeriv3MovAvgWith(nil, []float64{1, 2}, 0, 250); d1 != nil {
		t.Error("k<1 should yield nils")
	}
}

func BenchmarkSmoothDeriv3(b *testing.B) {
	const n = 300 // a beat segment plus margin at 250 Hz
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, n)
	for i := range x {
		x[i] = 2*rng.Float64() - 1
	}
	a := new(Arena)
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a.Reset()
			sm := MovingAverageWith(a, x, 4)
			d1 := DerivativeTo(a.F64(n), sm, 250)
			d2 := DerivativeTo(a.F64(n), d1, 250)
			d3 := DerivativeTo(a.F64(n), d2, 250)
			_ = d3
		}
	})
	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a.Reset()
			_, _, d3 := SmoothDeriv3MovAvgWith(a, x, 4, 250)
			_ = d3
		}
	})
	b.Run("fused-savgol", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a.Reset()
			_, _, d3 := SmoothDeriv3SavGolWith(a, x, 3, 250)
			_ = d3
		}
	})
}
