package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzDSPStreamChunkInvariance pins the streaming kernels' chunk
// invariance under fuzzing: for fuzz-chosen filter designs, signals and
// chunkings — including degenerate 1-sample and empty pushes — the
// batched fast paths must be bit-identical to their per-sample / whole-
// push references. This covers the three kernels with dedicated batch
// engines: SOSStream.Push (the 4-lane software-pipelined sosPipeRun vs
// the scalar PushSample recurrence), FIRStream (the blocked convSeqInto
// group kernel across arbitrary chunk boundaries, via the zero-phase
// composite), and MovExtStream (the hoisted-deque batch loop vs the
// admit/emit reference path Flush still uses).
func FuzzDSPStreamChunkInvariance(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(20), true, []byte{7, 1, 250})
	f.Add(int64(-42), uint8(2), uint8(3), false, []byte{1})
	f.Add(int64(9), uint8(8), uint8(77), true, []byte{0, 64, 3})
	f.Fuzz(func(t *testing.T, seed int64, orderSel, widthSel uint8, prime bool, chunks []byte) {
		rng := rand.New(rand.NewSource(seed))
		n := 600 + rng.Intn(600)
		x := make([]float64, n)
		for i := range x {
			x[i] = 2*rng.Float64() - 1
		}

		cmpExact := func(name string, got, want []float64) {
			t.Helper()
			if len(got) != len(want) {
				t.Fatalf("%s: %d samples, want %d", name, len(got), len(want))
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%s: sample %d differs: %x != %x", name,
						i, math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
		}

		// chunked drives a stream through the fuzz-chosen chunking. A
		// zero byte becomes an empty push (which must be harmless),
		// followed by a 1-sample push so the loop still consumes input.
		chunked := func(push func(dst, c []float64) []float64) []float64 {
			var out []float64
			ci, pos := 0, 0
			for pos < n {
				c := 1
				if len(chunks) > 0 {
					c = int(chunks[ci%len(chunks)])
					ci++
				}
				end := pos + c
				if end > n {
					end = n
				}
				out = push(out, x[pos:end])
				pos = end
				if c == 0 && pos < n {
					out = push(out, x[pos:pos+1])
					pos++
				}
			}
			return out
		}

		// SOS cascade: 1-4 sections at a fuzz-chosen cutoff.
		order := 2 + int(orderSel)%7
		cutoff := 1 + float64(widthSel%100)
		sos, err := DesignButterLowPass(order, cutoff, 250)
		if err != nil {
			t.Fatalf("lowpass design(%d, %g): %v", order, cutoff, err)
		}
		ref := NewSOSStream(sos, 0, prime)
		scalar := make([]float64, n)
		for i, v := range x {
			scalar[i] = ref.PushSample(v)
		}
		whole := NewSOSStream(sos, 0, prime)
		cmpExact("sos whole-push vs per-sample", whole.Push(nil, x), scalar)
		st := NewSOSStream(sos, 0, prime)
		cmpExact("sos chunked vs per-sample", chunked(st.Push), scalar)

		// Zero-phase FIR: odd tap count 9-65, whole-push vs chunked
		// (both finished by Flush, which drains the composite lookahead).
		taps := 9 + 2*(int(orderSel)%29)
		fir, err := DesignLowPass(taps-1, 30, 250, WindowHamming)
		if err != nil {
			t.Fatalf("FIR design(%d): %v", taps, err)
		}
		zw := NewZeroPhaseFIRStream(fir)
		wantFIR := zw.Flush(zw.Push(nil, x))
		zc := NewZeroPhaseFIRStream(fir)
		cmpExact("fir chunked vs whole-push", zc.Flush(chunked(zc.Push)), wantFIR)

		// Moving extremum: fuzz-chosen asymmetric window, both polarities
		// via prime.
		left, right := int(widthSel)%30, int(orderSel)%30
		mw := NewMovExtStream(left, right, prime)
		wantExt := mw.Flush(mw.Push(nil, x))
		mc := NewMovExtStream(left, right, prime)
		cmpExact("movext chunked vs whole-push", mc.Flush(chunked(mc.Push)), wantExt)
	})
}
