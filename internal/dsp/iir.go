package dsp

import (
	"math"
	"math/cmplx"
)

// IIR Butterworth design via analog prototype poles and the bilinear
// transform, emitted as a cascade of second-order sections (biquads) for
// numerical robustness. The paper's ICG chain uses a zero-phase low-pass
// Butterworth with 20 Hz cutoff.

// Biquad is one second-order section of an IIR cascade with transfer
// function (B0 + B1 z^-1 + B2 z^-2) / (1 + A1 z^-1 + A2 z^-2).
type Biquad struct {
	B0, B1, B2 float64
	A1, A2     float64
}

// SOS is a cascade of second-order sections.
type SOS []Biquad

// butterPoles returns the left-half-plane poles of an analog Butterworth
// low-pass prototype of order n with cutoff wc (rad/s).
func butterPoles(n int, wc float64) []complex128 {
	poles := make([]complex128, 0, n)
	for k := 1; k <= n; k++ {
		theta := math.Pi * float64(2*k+n-1) / float64(2*n)
		p := complex(wc*math.Cos(theta), wc*math.Sin(theta))
		poles = append(poles, p)
	}
	return poles
}

// bilinear maps an analog pole/zero s to the z-plane using sampling rate fs.
func bilinear(s complex128, fs float64) complex128 {
	k := complex(2*fs, 0)
	return (k + s) / (k - s)
}

// DesignButterLowPass designs an order-n digital Butterworth low-pass with
// cutoff fc (Hz) at sampling rate fs (Hz), returned as second-order
// sections with unity DC gain.
func DesignButterLowPass(n int, fc, fs float64) (SOS, error) {
	if n < 1 {
		return nil, ErrBadOrder
	}
	if fc <= 0 || fc >= fs/2 {
		return nil, ErrBadCutoff
	}
	// Pre-warp the cutoff for the bilinear transform.
	wc := 2 * fs * math.Tan(math.Pi*fc/fs)
	analog := butterPoles(n, wc)
	digital := make([]complex128, len(analog))
	for i, p := range analog {
		digital[i] = bilinear(p, fs)
	}
	return sosFromPoles(digital, -1.0, +1.0), nil
}

// DesignButterHighPass designs an order-n digital Butterworth high-pass
// with cutoff fc (Hz) at sampling rate fs, returned as second-order
// sections with unity gain at the Nyquist frequency.
func DesignButterHighPass(n int, fc, fs float64) (SOS, error) {
	if n < 1 {
		return nil, ErrBadOrder
	}
	if fc <= 0 || fc >= fs/2 {
		return nil, ErrBadCutoff
	}
	wc := 2 * fs * math.Tan(math.Pi*fc/fs)
	lp := butterPoles(n, 1) // normalized prototype
	digital := make([]complex128, len(lp))
	for i, p := range lp {
		// Low-pass to high-pass transform: s -> wc / s.
		hp := complex(wc, 0) / p
		digital[i] = bilinear(hp, fs)
	}
	return sosFromPoles(digital, +1.0, -1.0), nil
}

// DesignButterBandPass designs a band-pass as a cascade of an order-n
// high-pass at f1 and an order-n low-pass at f2. This mirrors common
// embedded practice (and Pan-Tompkins' cascaded integer filters).
func DesignButterBandPass(n int, f1, f2, fs float64) (SOS, error) {
	if f1 <= 0 || f2 <= f1 || f2 >= fs/2 {
		return nil, ErrBadCutoff
	}
	hp, err := DesignButterHighPass(n, f1, fs)
	if err != nil {
		return nil, err
	}
	lp, err := DesignButterLowPass(n, f2, fs)
	if err != nil {
		return nil, err
	}
	return append(hp, lp...), nil
}

// sosFromPoles groups digital poles into biquads. zeroAt is the location of
// the transfer-function zeros (-1 for low-pass, +1 for high-pass);
// normAt = +1 normalizes gain at DC (z=1), normAt = -1 at Nyquist (z=-1).
func sosFromPoles(poles []complex128, zeroAt, normAt float64) SOS {
	// Separate real poles from complex-conjugate pairs. The Butterworth
	// prototype yields conjugate pairs plus at most one real pole (odd n).
	var real1 []complex128
	var pairs []complex128
	for _, p := range poles {
		if math.Abs(imag(p)) < 1e-12 {
			real1 = append(real1, p)
		} else if imag(p) > 0 {
			pairs = append(pairs, p)
		}
	}
	var sos SOS
	for _, p := range pairs {
		a1 := -2 * real(p)
		a2 := real(p * cmplx.Conj(p))
		// Numerator (1 - zeroAt*z^-1)^2.
		b0, b1, b2 := 1.0, -2*zeroAt, 1.0
		bq := Biquad{B0: b0, B1: b1, B2: b2, A1: a1, A2: a2}
		sos = append(sos, normalizeBiquad(bq, normAt))
	}
	for _, p := range real1 {
		a1 := -real(p)
		// First-order section (1 - zeroAt*z^-1) / (1 + a1 z^-1).
		bq := Biquad{B0: 1, B1: -zeroAt, B2: 0, A1: a1, A2: 0}
		sos = append(sos, normalizeBiquad(bq, normAt))
	}
	return sos
}

// normalizeBiquad scales the numerator so the section has unit gain at
// z = normAt (+1 for DC, -1 for Nyquist).
func normalizeBiquad(bq Biquad, normAt float64) Biquad {
	z := normAt
	num := bq.B0 + bq.B1*z + bq.B2*z*z
	den := 1 + bq.A1*z + bq.A2*z*z
	if num == 0 {
		return bq
	}
	g := den / num
	bq.B0 *= g
	bq.B1 *= g
	bq.B2 *= g
	return bq
}

// Filter applies the biquad cascade causally (direct form II transposed).
func (s SOS) Filter(x []float64) []float64 {
	if x == nil {
		return nil
	}
	return s.FilterTo(make([]float64, len(x)), x)
}

// FilterTo is Filter writing into dst (grown when shorter than x; dst may
// alias x, in which case the filtering happens fully in place). It returns
// the filtered slice and allocates nothing when dst has sufficient
// capacity.
func (s SOS) FilterTo(dst, x []float64) []float64 {
	n := len(x)
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	// The copy makes the pipelined kernels run fully in place on dst,
	// which is alias-safe for any dst/x overlap (writes trail reads).
	copy(dst, x)
	sosPipeRun(dst, dst, s, nil, nil, false)
	return dst
}

// Order returns the total filter order of the cascade.
func (s SOS) Order() int {
	n := 0
	for _, bq := range s {
		if bq.A2 != 0 || bq.B2 != 0 {
			n += 2
		} else {
			n++
		}
	}
	return n
}

// FrequencyResponse evaluates |H(f)| of the cascade at frequency f for
// sampling rate fs.
func (s SOS) FrequencyResponse(f, fs float64) float64 {
	w := 2 * math.Pi * f / fs
	z1 := cmplx.Exp(complex(0, -w))
	z2 := z1 * z1
	h := complex(1, 0)
	for _, bq := range s {
		num := complex(bq.B0, 0) + complex(bq.B1, 0)*z1 + complex(bq.B2, 0)*z2
		den := complex(1, 0) + complex(bq.A1, 0)*z1 + complex(bq.A2, 0)*z2
		h *= num / den
	}
	return cmplx.Abs(h)
}

// IsStable reports whether all section poles are strictly inside the unit
// circle.
func (s SOS) IsStable() bool {
	for _, bq := range s {
		// For denominator z^2 + A1 z + A2 the stability triangle is
		// |A2| < 1 and |A1| < 1 + A2.
		if math.Abs(bq.A2) >= 1 {
			return false
		}
		if math.Abs(bq.A1) >= 1+bq.A2 {
			return false
		}
	}
	return true
}

// Lfilter applies the rational filter with numerator b and denominator a
// (a[0] must be non-zero; coefficients are normalized by a[0]) to x using
// the direct form II transposed structure.
func Lfilter(b, a, x []float64) []float64 {
	if len(a) == 0 || a[0] == 0 {
		panic("dsp: Lfilter requires a[0] != 0")
	}
	nb, na := len(b), len(a)
	order := nb
	if na > order {
		order = na
	}
	bb := make([]float64, order)
	aa := make([]float64, order)
	for i := 0; i < nb; i++ {
		bb[i] = b[i] / a[0]
	}
	for i := 0; i < na; i++ {
		aa[i] = a[i] / a[0]
	}
	z := make([]float64, order) // z[order-1] stays zero
	y := make([]float64, len(x))
	for i, v := range x {
		out := bb[0]*v + z[0]
		for j := 1; j < order; j++ {
			z[j-1] = bb[j]*v + z[j] - aa[j]*out
		}
		y[i] = out
	}
	return y
}
