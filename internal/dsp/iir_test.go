package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestButterLowPassDCUnity(t *testing.T) {
	for _, order := range []int{1, 2, 3, 4, 5, 8} {
		sos, err := DesignButterLowPass(order, 20, 250)
		if err != nil {
			t.Fatalf("order %d: %v", order, err)
		}
		if got := sos.FrequencyResponse(0, 250); math.Abs(got-1) > 1e-9 {
			t.Errorf("order %d: H(0) = %g, want 1", order, got)
		}
		if !sos.IsStable() {
			t.Errorf("order %d: unstable design", order)
		}
		if sos.Order() != order {
			t.Errorf("order %d: Order() = %d", order, sos.Order())
		}
	}
}

func TestButterLowPassHalfPowerAtCutoff(t *testing.T) {
	// Butterworth magnitude at the cutoff frequency is 1/sqrt(2)
	// regardless of order.
	for _, order := range []int{1, 2, 4, 6} {
		sos, err := DesignButterLowPass(order, 20, 250)
		if err != nil {
			t.Fatal(err)
		}
		got := sos.FrequencyResponse(20, 250)
		if math.Abs(got-1/math.Sqrt2) > 1e-6 {
			t.Errorf("order %d: |H(fc)| = %g, want %g", order, got, 1/math.Sqrt2)
		}
	}
}

func TestButterLowPassMonotoneRolloff(t *testing.T) {
	sos, err := DesignButterLowPass(4, 20, 250)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for f := 1.0; f < 125; f += 1 {
		g := sos.FrequencyResponse(f, 250)
		if g > prev+1e-9 {
			t.Fatalf("magnitude not monotone at %g Hz: %g > %g", f, g, prev)
		}
		prev = g
	}
}

func TestButterHighPass(t *testing.T) {
	sos, err := DesignButterHighPass(4, 5, 250)
	if err != nil {
		t.Fatal(err)
	}
	if dc := sos.FrequencyResponse(0, 250); dc > 1e-9 {
		t.Errorf("DC gain = %g, want 0", dc)
	}
	if ny := sos.FrequencyResponse(125, 250); math.Abs(ny-1) > 1e-9 {
		t.Errorf("Nyquist gain = %g, want 1", ny)
	}
	if got := sos.FrequencyResponse(5, 250); math.Abs(got-1/math.Sqrt2) > 1e-6 {
		t.Errorf("|H(fc)| = %g, want %g", got, 1/math.Sqrt2)
	}
	if !sos.IsStable() {
		t.Error("unstable high-pass")
	}
}

func TestButterBandPass(t *testing.T) {
	sos, err := DesignButterBandPass(2, 5, 15, 250)
	if err != nil {
		t.Fatal(err)
	}
	mid := sos.FrequencyResponse(9, 250)
	if mid < 0.8 {
		t.Errorf("mid-band gain = %g, want > 0.8", mid)
	}
	if lo := sos.FrequencyResponse(0.5, 250); lo > 0.1 {
		t.Errorf("low stopband gain = %g", lo)
	}
	if hi := sos.FrequencyResponse(60, 250); hi > 0.1 {
		t.Errorf("high stopband gain = %g", hi)
	}
}

func TestButterDesignErrors(t *testing.T) {
	if _, err := DesignButterLowPass(0, 20, 250); err == nil {
		t.Error("order 0 accepted")
	}
	if _, err := DesignButterLowPass(4, 0, 250); err == nil {
		t.Error("zero cutoff accepted")
	}
	if _, err := DesignButterLowPass(4, 125, 250); err == nil {
		t.Error("Nyquist cutoff accepted")
	}
	if _, err := DesignButterHighPass(4, -1, 250); err == nil {
		t.Error("negative cutoff accepted")
	}
	if _, err := DesignButterBandPass(2, 15, 5, 250); err == nil {
		t.Error("inverted band accepted")
	}
}

func TestSOSFilterAttenuatesStopband(t *testing.T) {
	sos, err := DesignButterLowPass(4, 20, 250)
	if err != nil {
		t.Fatal(err)
	}
	x := sine(60, 250, 2000)
	y := sos.Filter(x)
	if r := RMS(y[500:1500]) / RMS(x[500:1500]); r > 0.05 {
		t.Errorf("60 Hz residual = %g, want < 0.05", r)
	}
	x2 := sine(5, 250, 2000)
	y2 := sos.Filter(x2)
	if r := RMS(y2[500:1500]) / RMS(x2[500:1500]); math.Abs(r-1) > 0.05 {
		t.Errorf("5 Hz gain = %g, want ~1", r)
	}
}

func TestLfilterMovingAverage(t *testing.T) {
	// b = [0.5, 0.5] is a 2-point moving average.
	x := []float64{1, 3, 5, 7}
	y := Lfilter([]float64{0.5, 0.5}, []float64{1}, x)
	want := []float64{0.5, 2, 4, 6}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Errorf("y[%d] = %g, want %g", i, y[i], want[i])
		}
	}
}

func TestLfilterLeakyIntegrator(t *testing.T) {
	// y[n] = x[n] + 0.5 y[n-1]  ->  b=[1], a=[1,-0.5]; impulse response
	// 1, 0.5, 0.25, ...
	x := make([]float64, 6)
	x[0] = 1
	y := Lfilter([]float64{1}, []float64{1, -0.5}, x)
	for i := range y {
		want := math.Pow(0.5, float64(i))
		if math.Abs(y[i]-want) > 1e-12 {
			t.Errorf("impulse[%d] = %g, want %g", i, y[i], want)
		}
	}
}

func TestLfilterNormalizesA0(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y1 := Lfilter([]float64{1, 1}, []float64{1}, x)
	y2 := Lfilter([]float64{2, 2}, []float64{2}, x)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatalf("a0 normalization broken at %d", i)
		}
	}
}

func TestLfilterPanicsOnZeroA0(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for a[0] == 0")
		}
	}()
	Lfilter([]float64{1}, []float64{0, 1}, []float64{1, 2})
}

func TestSOSFilterMatchesLfilterForBiquad(t *testing.T) {
	// A single biquad must behave identically through SOS.Filter and
	// Lfilter with expanded coefficients.
	bq := Biquad{B0: 0.2, B1: 0.3, B2: 0.1, A1: -0.4, A2: 0.2}
	sos := SOS{bq}
	x := sine(7, 250, 300)
	y1 := sos.Filter(x)
	y2 := Lfilter([]float64{bq.B0, bq.B1, bq.B2}, []float64{1, bq.A1, bq.A2}, x)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-9 {
			t.Fatalf("SOS vs Lfilter mismatch at %d: %g vs %g", i, y1[i], y2[i])
		}
	}
}

func TestButterStabilityProperty(t *testing.T) {
	// Any valid design must be stable (quick-checked over random orders
	// and cutoffs).
	f := func(orderSeed uint8, cutFrac float64) bool {
		order := int(orderSeed%8) + 1
		frac := math.Abs(cutFrac)
		frac -= math.Floor(frac)
		fc := 0.01 + frac*0.97*125 // within (0, Nyquist)
		if fc >= 125 {
			fc = 124.9
		}
		sos, err := DesignButterLowPass(order, fc, 250)
		if err != nil {
			return false
		}
		return sos.IsStable()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
