package dsp

import "math"

// Least-squares line fitting. The paper's initial B-point estimate B0 is
// the intersection of the line fitted to the ICG samples between 40% and
// 80% of the C-point amplitude with the horizontal axis.

// Line is y = Slope*x + Intercept.
type Line struct {
	Slope     float64
	Intercept float64
}

// FitLine fits a least-squares line to the points (xs[i], ys[i]). It
// returns ok=false when fewer than two points are given or the xs are all
// identical (vertical line).
func FitLine(xs, ys []float64) (Line, bool) {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return Line{}, false
	}
	var sx, sy, sxx, sxy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if math.Abs(den) < 1e-300 {
		return Line{}, false
	}
	slope := (fn*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / fn
	return Line{Slope: slope, Intercept: intercept}, true
}

// FitLineIndices fits a line to (float64(idx[i]), y[idx[i]]).
func FitLineIndices(y []float64, idx []int) (Line, bool) {
	return FitLineIndicesWith(nil, y, idx)
}

// FitLineIndicesWith is FitLineIndices drawing the coordinate scratch
// from an arena (nil falls back to the heap). This runs on every beat
// of the delineator's B rule.
func FitLineIndicesWith(a *Arena, y []float64, idx []int) (Line, bool) {
	buf := arenaF64(a, 2*len(idx))
	xs, ys := buf[:len(idx)], buf[len(idx):]
	for i, j := range idx {
		xs[i] = float64(j)
		ys[i] = y[j]
	}
	return FitLine(xs, ys)
}

// XAtY returns the x value at which the line reaches the given y. ok is
// false for horizontal lines.
func (l Line) XAtY(y float64) (float64, bool) {
	if l.Slope == 0 {
		return 0, false
	}
	return (y - l.Intercept) / l.Slope, true
}

// YAt evaluates the line at x.
func (l Line) YAt(x float64) float64 {
	return l.Slope*x + l.Intercept
}

// Quad is y = A*x^2 + B*x + C.
type Quad struct {
	A, B, C float64
}

// YAt evaluates the parabola at x.
func (q Quad) YAt(x float64) float64 {
	return (q.A*x+q.B)*x + q.C
}

// FitQuad fits a least-squares parabola to the points (xs[i], ys[i]). It
// returns ok=false when fewer than three points are given or the system
// is singular.
func FitQuad(xs, ys []float64) (Quad, bool) {
	n := len(xs)
	if n != len(ys) || n < 3 {
		return Quad{}, false
	}
	// Normal equations for [A B C] with moments s0..s4 and t0..t2.
	var s0, s1, s2, s3, s4, t0, t1, t2 float64
	for i := 0; i < n; i++ {
		x := xs[i]
		x2 := x * x
		s0++
		s1 += x
		s2 += x2
		s3 += x2 * x
		s4 += x2 * x2
		t0 += ys[i]
		t1 += ys[i] * x
		t2 += ys[i] * x2
	}
	// Solve the 3x3 system by Cramer's rule:
	// | s4 s3 s2 | |A|   |t2|
	// | s3 s2 s1 | |B| = |t1|
	// | s2 s1 s0 | |C|   |t0|
	det := s4*(s2*s0-s1*s1) - s3*(s3*s0-s1*s2) + s2*(s3*s1-s2*s2)
	if math.Abs(det) < 1e-200 {
		return Quad{}, false
	}
	detA := t2*(s2*s0-s1*s1) - s3*(t1*s0-t0*s1) + s2*(t1*s1-t0*s2)
	detB := s4*(t1*s0-t0*s1) - t2*(s3*s0-s1*s2) + s2*(s3*t0-s2*t1)
	detC := s4*(s2*t0-s1*t1) - s3*(s3*t0-s2*t1) + t2*(s3*s1-s2*s2)
	return Quad{A: detA / det, B: detB / det, C: detC / det}, true
}
