package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestDerivativeOfLine(t *testing.T) {
	// d/dt of 3t+1 sampled at fs=100 is 3 everywhere.
	fs := 100.0
	x := make([]float64, 50)
	for i := range x {
		x[i] = 3*float64(i)/fs + 1
	}
	d := Derivative(x, fs)
	for i, v := range d {
		if math.Abs(v-3) > 1e-9 {
			t.Fatalf("d[%d] = %g, want 3", i, v)
		}
	}
}

func TestDerivativeOfSine(t *testing.T) {
	fs := 1000.0
	f := 2.0
	x := sine(f, fs, 1000)
	d := Derivative(x, fs)
	// Peak of derivative is 2*pi*f.
	want := 2 * math.Pi * f
	_, hi := MinMax(d[10 : len(d)-10])
	if math.Abs(hi-want)/want > 0.01 {
		t.Errorf("max derivative = %g, want %g", hi, want)
	}
}

func TestDerivativeNOrders(t *testing.T) {
	fs := 500.0
	x := make([]float64, 100)
	for i := range x {
		ti := float64(i) / fs
		x[i] = ti * ti // second derivative = 2
	}
	d2 := DerivativeN(x, fs, 2)
	for i := 5; i < len(d2)-5; i++ {
		if math.Abs(d2[i]-2) > 1e-6 {
			t.Fatalf("d2[%d] = %g, want 2", i, d2[i])
		}
	}
}

func TestIntegrateInvertsDerivative(t *testing.T) {
	fs := 250.0
	x := sine(3, fs, 500)
	d := Derivative(x, fs)
	xi := Integrate(d, fs)
	// Integration recovers x up to the initial value; compare interior.
	for i := 5; i < len(x)-5; i++ {
		if math.Abs((xi[i]+x[0])-x[i]) > 0.01 {
			t.Fatalf("reconstruction error at %d: %g vs %g", i, xi[i]+x[0], x[i])
		}
	}
}

func TestMovingAverageFlattens(t *testing.T) {
	x := []float64{1, 1, 1, 10, 1, 1, 1}
	y := MovingAverage(x, 3)
	if y[3] != 4 {
		t.Errorf("center = %g, want 4", y[3])
	}
	if y[0] != 1 {
		t.Errorf("edge = %g, want 1", y[0])
	}
}

func TestCumSumDiff(t *testing.T) {
	x := []float64{1, 2, 3}
	cs := CumSum(x)
	if cs[2] != 6 {
		t.Errorf("cumsum = %v", cs)
	}
	d := Diff(cs)
	if d[0] != 2 || d[1] != 3 {
		t.Errorf("diff = %v", d)
	}
	if Diff([]float64{1}) != nil {
		t.Error("short diff should be nil")
	}
}

func TestFindPeaksBasic(t *testing.T) {
	x := []float64{0, 1, 0, 2, 0, 3, 0}
	peaks := FindPeaks(x, 0.5, 1)
	want := []int{1, 3, 5}
	if len(peaks) != len(want) {
		t.Fatalf("peaks = %v, want %v", peaks, want)
	}
	for i := range want {
		if peaks[i] != want[i] {
			t.Errorf("peaks[%d] = %d, want %d", i, peaks[i], want[i])
		}
	}
}

func TestFindPeaksMinDistance(t *testing.T) {
	x := []float64{0, 5, 0, 6, 0, 0, 0, 1, 0}
	// Peaks at 1 (5), 3 (6) and 7 (1). With minDist=3 the peak at 1 is
	// suppressed by the higher peak at 3; the peak at 7 is 4 away and
	// survives.
	peaks := FindPeaks(x, 0.5, 3)
	if len(peaks) != 2 || peaks[0] != 3 || peaks[1] != 7 {
		t.Fatalf("peaks = %v, want [3 7]", peaks)
	}
}

func TestFindPeaksPlateau(t *testing.T) {
	x := []float64{0, 1, 1, 1, 0}
	peaks := FindPeaks(x, 0.5, 1)
	if len(peaks) != 1 || peaks[0] != 1 {
		t.Fatalf("plateau peaks = %v, want [1]", peaks)
	}
}

func TestFindPeaksMinHeight(t *testing.T) {
	x := []float64{0, 1, 0, 5, 0}
	peaks := FindPeaks(x, 2, 1)
	if len(peaks) != 1 || peaks[0] != 3 {
		t.Fatalf("peaks = %v, want [3]", peaks)
	}
}

func TestFindTroughs(t *testing.T) {
	x := []float64{0, -3, 0, -1, 0}
	tr := FindTroughs(x, -0.5, 1)
	if len(tr) != 2 || tr[0] != 1 || tr[1] != 3 {
		t.Fatalf("troughs = %v, want [1 3]", tr)
	}
}

func TestArgMaxArgMin(t *testing.T) {
	x := []float64{1, 9, 2, -4, 5}
	if i := ArgMax(x, 0, len(x)); i != 1 {
		t.Errorf("argmax = %d", i)
	}
	if i := ArgMin(x, 0, len(x)); i != 3 {
		t.Errorf("argmin = %d", i)
	}
	if i := ArgMax(x, 2, 2); i != -1 {
		t.Errorf("empty range should be -1, got %d", i)
	}
	if i := ArgMax(x, 2, 5); i != 4 {
		t.Errorf("ranged argmax = %d", i)
	}
}

func TestZeroCrossings(t *testing.T) {
	x := []float64{1, -1, -2, 3, 0, 5}
	zc := ZeroCrossings(x)
	// Crossings between 0-1, 2-3 and at 4 (exact zero).
	want := []int{0, 2, 4}
	if len(zc) != len(want) {
		t.Fatalf("zc = %v, want %v", zc, want)
	}
	for i := range want {
		if zc[i] != want[i] {
			t.Errorf("zc[%d] = %d, want %d", i, zc[i], want[i])
		}
	}
}

func TestPrevZeroCrossingAndMinimum(t *testing.T) {
	x := []float64{1, -1, 2, 4, 3}
	if i := PrevZeroCrossing(x, 3); i != 1 {
		t.Errorf("prev zc = %d, want 1", i)
	}
	if i := PrevZeroCrossing(x, 1); i != 0 {
		t.Errorf("prev zc = %d, want 0", i)
	}
	y := []float64{5, 1, 4, 2, 6, 7}
	if i := PrevLocalMinimum(y, 5); i != 3 {
		t.Errorf("prev min = %d, want 3", i)
	}
	if i := PrevLocalMinimum(y, 3); i != 1 {
		t.Errorf("prev min = %d, want 1", i)
	}
	if i := PrevLocalMinimum(y, 1); i != -1 {
		t.Errorf("prev min = %d, want -1", i)
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x+1
	l, ok := FitLine(xs, ys)
	if !ok {
		t.Fatal("fit failed")
	}
	if math.Abs(l.Slope-2) > 1e-12 || math.Abs(l.Intercept-1) > 1e-12 {
		t.Errorf("line = %+v", l)
	}
	x0, ok := l.XAtY(0)
	if !ok || math.Abs(x0+0.5) > 1e-12 {
		t.Errorf("x at y=0: %g", x0)
	}
	if y := l.YAt(2); math.Abs(y-5) > 1e-12 {
		t.Errorf("YAt(2) = %g", y)
	}
}

func TestFitLineDegenerate(t *testing.T) {
	if _, ok := FitLine([]float64{1}, []float64{2}); ok {
		t.Error("single point should fail")
	}
	if _, ok := FitLine([]float64{2, 2, 2}, []float64{1, 2, 3}); ok {
		t.Error("vertical line should fail")
	}
	l, ok := FitLine([]float64{0, 1}, []float64{3, 3})
	if !ok {
		t.Fatal("horizontal fit failed")
	}
	if _, ok := l.XAtY(0); ok {
		t.Error("horizontal line has no x intercept")
	}
}

func TestFitLineIndices(t *testing.T) {
	y := []float64{0, 10, 20, 30, 40}
	l, ok := FitLineIndices(y, []int{1, 2, 3})
	if !ok || math.Abs(l.Slope-10) > 1e-12 {
		t.Errorf("line = %+v ok=%v", l, ok)
	}
}

func TestResampleLinear(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := ResampleLinear(x, 100, 200)
	if len(y) < 9 {
		t.Fatalf("len = %d", len(y))
	}
	if math.Abs(y[1]-0.5) > 1e-12 {
		t.Errorf("y[1] = %g, want 0.5", y[1])
	}
	same := ResampleLinear(x, 100, 100)
	for i := range x {
		if same[i] != x[i] {
			t.Error("identity resample broken")
		}
	}
}

func TestResampleN(t *testing.T) {
	x := []float64{0, 2, 4}
	y := ResampleN(x, 5)
	want := []float64{0, 1, 2, 3, 4}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Errorf("y[%d] = %g, want %g", i, y[i], want[i])
		}
	}
	if got := ResampleN([]float64{7}, 3); len(got) != 3 || got[1] != 7 {
		t.Errorf("constant expansion = %v", got)
	}
}

func TestDecimatePreservesSlowSignal(t *testing.T) {
	fs := 1000.0
	x := sine(2, fs, 4000)
	y := Decimate(x, fs, 4)
	if len(y) != 1000 {
		t.Fatalf("len = %d, want 1000", len(y))
	}
	// Still a 2 Hz sine at 250 Hz; check amplitude is preserved.
	if r := RMS(y[200:800]); math.Abs(r-1/math.Sqrt2) > 0.05 {
		t.Errorf("rms = %g", r)
	}
}

func TestLinspaceAndTimeVector(t *testing.T) {
	l := Linspace(0, 1, 5)
	if l[0] != 0 || l[4] != 1 || math.Abs(l[2]-0.5) > 1e-12 {
		t.Errorf("linspace = %v", l)
	}
	if len(Linspace(0, 1, 0)) != 0 {
		t.Error("n=0 should be empty")
	}
	if got := Linspace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("n=1 linspace = %v", got)
	}
	tv := TimeVector(3, 100)
	if tv[2] != 0.02 {
		t.Errorf("time vector = %v", tv)
	}
}

func TestCloneAndArithmetic(t *testing.T) {
	x := []float64{1, 2}
	y := Clone(x)
	y[0] = 99
	if x[0] != 1 {
		t.Error("clone aliases input")
	}
	if Clone(nil) != nil {
		t.Error("clone of nil")
	}
	if got := Add([]float64{1, 2}, []float64{3, 4}); got[1] != 6 {
		t.Errorf("add = %v", got)
	}
	if got := Sub([]float64{5, 5}, []float64{2, 1}); got[0] != 3 || got[1] != 4 {
		t.Errorf("sub = %v", got)
	}
	if got := Mul([]float64{2, 3}, []float64{4, 5}); got[0] != 8 || got[1] != 15 {
		t.Errorf("mul = %v", got)
	}
	if got := Reversed([]float64{1, 2, 3}); got[0] != 3 || got[2] != 1 {
		t.Errorf("reversed = %v", got)
	}
}

func TestAddPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Add([]float64{1}, []float64{1, 2})
}

func TestHasNaN(t *testing.T) {
	if HasNaN([]float64{1, 2, 3}) {
		t.Error("clean slice flagged")
	}
	if !HasNaN([]float64{1, math.NaN()}) {
		t.Error("NaN missed")
	}
	if !HasNaN([]float64{math.Inf(1)}) {
		t.Error("Inf missed")
	}
}

func TestClampHelpers(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp broken")
	}
	if ClampInt(5, 0, 3) != 3 || ClampInt(-1, 0, 3) != 0 {
		t.Error("ClampInt broken")
	}
}

func TestWindowShapes(t *testing.T) {
	for _, kind := range []WindowKind{WindowRect, WindowHamming, WindowHann, WindowBlackman, WindowBartlett} {
		w := Window(kind, 33)
		if len(w) != 33 {
			t.Fatalf("%v: len = %d", kind, len(w))
		}
		// Symmetry.
		for i := 0; i < 16; i++ {
			if math.Abs(w[i]-w[32-i]) > 1e-12 {
				t.Errorf("%v: asymmetric at %d", kind, i)
			}
		}
		// Peak at center for tapered windows.
		if kind != WindowRect && ArgMax(w, 0, 33) != 16 {
			t.Errorf("%v: peak not centered", kind)
		}
	}
	if w := Window(WindowHann, 1); w[0] != 1 {
		t.Error("single-point window should be 1")
	}
	if name := WindowHamming.String(); name != "hamming" {
		t.Errorf("name = %q", name)
	}
}

func TestSmoothedDerivative(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	fs := 250.0
	x := sine(5, fs, 1000)
	noisy := make([]float64, len(x))
	for i := range x {
		noisy[i] = x[i] + 0.01*r.NormFloat64()
	}
	raw := Derivative(noisy, fs)
	smooth := SmoothedDerivative(noisy, fs, 5)
	clean := Derivative(x, fs)
	if RMSE(smooth[20:980], clean[20:980]) >= RMSE(raw[20:980], clean[20:980]) {
		t.Error("smoothing did not reduce derivative noise")
	}
}
