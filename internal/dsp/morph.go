package dsp

// Morphological operators on 1-D signals with flat structuring elements.
// The ECG baseline-wander estimator of Sun, Chan and Krishnan (2002), used
// by the paper, is built from these: an opening (erosion then dilation)
// removes peaks, a closing (dilation then erosion) removes pits, and the
// result estimates the baseline drift.
//
// Two engines are provided: a naive O(n*k) scan, which is what a
// straightforward firmware implementation computes, and a van Herk-style
// monotonic-deque engine in O(n), used to benchmark the duty-cycle impact
// of the implementation choice (ablation A4 in DESIGN.md).

// windowBounds returns the inclusive window [lo, hi] for output index i
// with a structuring element of length k centered at i. For even k the
// window extends one sample further to the right. Bounds are clamped to
// the signal, which is equivalent to replicate padding for min/max.
func windowBounds(i, n, k int) (lo, hi int) {
	left := (k - 1) / 2
	right := k / 2
	lo = i - left
	hi = i + right
	if lo < 0 {
		lo = 0
	}
	if hi > n-1 {
		hi = n - 1
	}
	return lo, hi
}

// ErodeNaive computes the flat erosion (sliding-window minimum) of x with
// a structuring element of length k using the O(n*k) scan.
func ErodeNaive(x []float64, k int) []float64 {
	if k < 1 {
		return nil
	}
	return slideNaive(x, (k-1)/2, k/2, true)
}

// DilateNaive computes the flat dilation (sliding-window maximum) of x
// with a structuring element of length k using the O(n*k) scan.
func DilateNaive(x []float64, k int) []float64 {
	if k < 1 {
		return nil
	}
	return slideNaive(x, (k-1)/2, k/2, false)
}

func slideNaive(x []float64, left, right int, min bool) []float64 {
	n := len(x)
	if n == 0 || left < 0 || right < 0 || left+right+1 < 1 {
		return nil
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := ClampInt(i-left, 0, n-1)
		hi := ClampInt(i+right, 0, n-1)
		v := x[lo]
		for j := lo + 1; j <= hi; j++ {
			if min {
				if x[j] < v {
					v = x[j]
				}
			} else if x[j] > v {
				v = x[j]
			}
		}
		y[i] = v
	}
	return y
}

// Erode computes the flat erosion of x with a structuring element of
// length k in O(n) using a monotonic deque.
func Erode(x []float64, k int) []float64 {
	if k < 1 {
		return nil
	}
	return slideDeque(x, (k-1)/2, k/2, true)
}

// Dilate computes the flat dilation of x with a structuring element of
// length k in O(n) using a monotonic deque.
func Dilate(x []float64, k int) []float64 {
	if k < 1 {
		return nil
	}
	return slideDeque(x, (k-1)/2, k/2, false)
}

func slideDeque(x []float64, left, right int, min bool) []float64 {
	return slideDequeWith(nil, x, left, right, min)
}

// slideDequeWith is slideDeque drawing its output and deque storage from
// an arena (nil falls back to the heap).
func slideDequeWith(a *Arena, x []float64, left, right int, min bool) []float64 {
	n := len(x)
	if n == 0 || left < 0 || right < 0 || left+right+1 < 1 {
		return nil
	}
	y := arenaF64(a, n)
	slideDequeInto(y, x, left, right, min, arenaInts(a, NextPow2(left+right+2)))
	return y
}

// slideDequeInto runs the monotonic-deque sliding min/max into dst. The
// live deque never exceeds the window length, so dq is a power-of-two
// ring buffer of at least left+right+2 entries.
func slideDequeInto(dst, x []float64, left, right int, min bool, dq []int) {
	n := len(x)
	mask := len(dq) - 1
	head, tail, size := 0, 0, 0 // front index, next write index, entries
	j := 0                      // next signal index to push
	for i := 0; i < n; i++ {
		hi := i + right
		if hi > n-1 {
			hi = n - 1
		}
		lo := i - left
		if lo < 0 {
			lo = 0
		}
		for ; j <= hi; j++ {
			if min {
				for size > 0 && x[j] <= x[dq[(tail-1)&mask]] {
					tail = (tail - 1) & mask
					size--
				}
			} else {
				for size > 0 && x[j] >= x[dq[(tail-1)&mask]] {
					tail = (tail - 1) & mask
					size--
				}
			}
			dq[tail] = j
			tail = (tail + 1) & mask
			size++
		}
		for size > 0 && dq[head] < lo {
			head = (head + 1) & mask
			size--
		}
		dst[i] = x[dq[head]]
	}
}

// Open computes the morphological opening (erosion then dilation with the
// transposed structuring element), which suppresses peaks narrower than
// the element. Using the transposed element in the second stage keeps the
// anti-extensivity property opening(x) <= x for even element lengths.
func Open(x []float64, k int) []float64 {
	return OpenWith(nil, x, k)
}

// OpenWith is Open drawing its buffers from an arena (nil falls back to
// the heap); the returned slice is arena-owned when a is non-nil.
func OpenWith(a *Arena, x []float64, k int) []float64 {
	if k < 1 {
		return nil
	}
	left, right := (k-1)/2, k/2
	return slideDequeWith(a, slideDequeWith(a, x, left, right, true), right, left, false)
}

// Close computes the morphological closing (dilation then erosion with the
// transposed structuring element), which suppresses pits narrower than the
// element and satisfies closing(x) >= x.
func Close(x []float64, k int) []float64 {
	return CloseWith(nil, x, k)
}

// CloseWith is Close drawing its buffers from an arena (nil falls back to
// the heap); the returned slice is arena-owned when a is non-nil.
func CloseWith(a *Arena, x []float64, k int) []float64 {
	if k < 1 {
		return nil
	}
	left, right := (k-1)/2, k/2
	return slideDequeWith(a, slideDequeWith(a, x, left, right, false), right, left, true)
}

// OpenNaive is the O(n*k) variant of Open.
func OpenNaive(x []float64, k int) []float64 {
	if k < 1 {
		return nil
	}
	left, right := (k-1)/2, k/2
	return slideNaive(slideNaive(x, left, right, true), right, left, false)
}

// CloseNaive is the O(n*k) variant of Close.
func CloseNaive(x []float64, k int) []float64 {
	if k < 1 {
		return nil
	}
	left, right := (k-1)/2, k/2
	return slideNaive(slideNaive(x, left, right, false), right, left, true)
}
