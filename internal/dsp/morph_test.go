package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSignal(r *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	return x
}

func TestErodeDilateSmallExample(t *testing.T) {
	x := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	er := Erode(x, 3)
	wantEr := []float64{1, 1, 1, 1, 1, 2, 2, 2}
	for i := range wantEr {
		if er[i] != wantEr[i] {
			t.Errorf("erode[%d] = %g, want %g", i, er[i], wantEr[i])
		}
	}
	di := Dilate(x, 3)
	wantDi := []float64{3, 4, 4, 5, 9, 9, 9, 6}
	for i := range wantDi {
		if di[i] != wantDi[i] {
			t.Errorf("dilate[%d] = %g, want %g", i, di[i], wantDi[i])
		}
	}
}

func TestDequeMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 5, 64, 257} {
		for _, k := range []int{1, 2, 3, 4, 7, 50, 75} {
			x := randomSignal(r, n)
			for i := range x {
				a := Erode(x, k)
				b := ErodeNaive(x, k)
				if a[i] != b[i] {
					t.Fatalf("erode mismatch n=%d k=%d i=%d: %g vs %g", n, k, i, a[i], b[i])
				}
				c := Dilate(x, k)
				d := DilateNaive(x, k)
				if c[i] != d[i] {
					t.Fatalf("dilate mismatch n=%d k=%d i=%d: %g vs %g", n, k, i, c[i], d[i])
				}
			}
		}
	}
}

func TestDequeMatchesNaiveQuick(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%100 + 1
		k := int(kRaw)%80 + 1
		r := rand.New(rand.NewSource(seed))
		x := randomSignal(r, n)
		a, b := Erode(x, k), ErodeNaive(x, k)
		c, d := Dilate(x, k), DilateNaive(x, k)
		for i := range x {
			if a[i] != b[i] || c[i] != d[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestMorphologyOrderingProperty(t *testing.T) {
	// erosion <= signal <= dilation, and opening <= signal <= closing.
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw)%60 + 1
		r := rand.New(rand.NewSource(seed))
		x := randomSignal(r, 120)
		er, di := Erode(x, k), Dilate(x, k)
		op, cl := Open(x, k), Close(x, k)
		for i := range x {
			if er[i] > x[i] || di[i] < x[i] {
				return false
			}
			if op[i] > x[i]+1e-12 || cl[i] < x[i]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestOpeningIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	x := randomSignal(r, 300)
	for _, k := range []int{3, 9, 25} {
		once := Open(x, k)
		twice := Open(once, k)
		for i := range once {
			if math.Abs(once[i]-twice[i]) > 1e-12 {
				t.Fatalf("opening not idempotent k=%d i=%d", k, i)
			}
		}
		onceC := Close(x, k)
		twiceC := Close(onceC, k)
		for i := range onceC {
			if math.Abs(onceC[i]-twiceC[i]) > 1e-12 {
				t.Fatalf("closing not idempotent k=%d i=%d", k, i)
			}
		}
	}
}

func TestOpeningRemovesNarrowPeak(t *testing.T) {
	// A 3-sample-wide spike on a flat baseline must vanish under opening
	// with a 7-sample element, while the baseline is preserved.
	x := make([]float64, 50)
	for i := range x {
		x[i] = 1
	}
	x[20], x[21], x[22] = 5, 8, 5
	y := Open(x, 7)
	for i, v := range y {
		if v != 1 {
			t.Errorf("opening left %g at %d", v, i)
		}
	}
}

func TestClosingFillsNarrowPit(t *testing.T) {
	x := make([]float64, 50)
	for i := range x {
		x[i] = 1
	}
	x[30], x[31] = -4, -2
	y := Close(x, 7)
	for i, v := range y {
		if v != 1 {
			t.Errorf("closing left %g at %d", v, i)
		}
	}
}

func TestMorphEdgeCases(t *testing.T) {
	if Erode(nil, 3) != nil {
		t.Error("nil input")
	}
	if Erode([]float64{1, 2}, 0) != nil {
		t.Error("k=0 should return nil")
	}
	one := Erode([]float64{5}, 3)
	if len(one) != 1 || one[0] != 5 {
		t.Errorf("single sample: %v", one)
	}
	// k=1 is the identity.
	x := []float64{2, 7, 1}
	y := Erode(x, 1)
	for i := range x {
		if y[i] != x[i] {
			t.Errorf("k=1 not identity at %d", i)
		}
	}
}

func TestMorphDuality(t *testing.T) {
	// Erosion of -x equals -dilation of x (flat element duality).
	r := rand.New(rand.NewSource(5))
	x := randomSignal(r, 200)
	neg := Scale(x, -1)
	a := Erode(neg, 11)
	b := Scale(Dilate(x, 11), -1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("duality broken at %d", i)
		}
	}
}
