package dsp

import "math"

// DesignNotch returns a biquad notch filter (RBJ audio-EQ cookbook form)
// centered at f0 with the given quality factor Q. A 50 Hz notch is the
// classic alternative to relying on the band-pass roll-off for powerline
// suppression; it is exposed for the conditioning ablations.
func DesignNotch(f0, q, fs float64) (SOS, error) {
	if f0 <= 0 || f0 >= fs/2 {
		return nil, ErrBadCutoff
	}
	if q <= 0 {
		return nil, ErrBadParameter
	}
	w0 := 2 * math.Pi * f0 / fs
	alpha := math.Sin(w0) / (2 * q)
	cosw := math.Cos(w0)
	a0 := 1 + alpha
	bq := Biquad{
		B0: 1 / a0,
		B1: -2 * cosw / a0,
		B2: 1 / a0,
		A1: -2 * cosw / a0,
		A2: (1 - alpha) / a0,
	}
	return SOS{bq}, nil
}
