package dsp

import (
	"math"
	"testing"
)

func TestNotchKillsCenterFrequency(t *testing.T) {
	sos, err := DesignNotch(50, 30, 250)
	if err != nil {
		t.Fatal(err)
	}
	if !sos.IsStable() {
		t.Fatal("unstable notch")
	}
	if g := sos.FrequencyResponse(50, 250); g > 1e-6 {
		t.Errorf("gain at 50 Hz = %g, want ~0", g)
	}
	// Pass nearby content.
	if g := sos.FrequencyResponse(10, 250); math.Abs(g-1) > 0.05 {
		t.Errorf("gain at 10 Hz = %g, want ~1", g)
	}
	if g := sos.FrequencyResponse(90, 250); math.Abs(g-1) > 0.05 {
		t.Errorf("gain at 90 Hz = %g, want ~1", g)
	}
	// Unity at DC and Nyquist.
	if g := sos.FrequencyResponse(0, 250); math.Abs(g-1) > 1e-9 {
		t.Errorf("DC gain = %g", g)
	}
}

func TestNotchTimeDomain(t *testing.T) {
	sos, _ := DesignNotch(50, 30, 250)
	mix := make([]float64, 4000)
	for i := range mix {
		ti := float64(i) / 250
		mix[i] = math.Sin(2*math.Pi*10*ti) + math.Sin(2*math.Pi*50*ti)
	}
	y := sos.FiltFilt(mix)
	if p := BandPower(y, 250, 48, 52); p > 0.01*BandPower(mix, 250, 48, 52) {
		t.Errorf("50 Hz power not removed: %g", p)
	}
	if p := BandPower(y, 250, 8, 12); p < 0.9*BandPower(mix, 250, 8, 12) {
		t.Errorf("10 Hz content damaged")
	}
}

func TestNotchValidation(t *testing.T) {
	if _, err := DesignNotch(0, 30, 250); err != ErrBadCutoff {
		t.Errorf("f0=0: %v", err)
	}
	if _, err := DesignNotch(125, 30, 250); err != ErrBadCutoff {
		t.Errorf("f0=Nyquist: %v", err)
	}
	if _, err := DesignNotch(50, 0, 250); err != ErrBadParameter {
		t.Errorf("Q=0: %v", err)
	}
}
