package dsp

import (
	"slices"
	"sort"
)

// Peak and landmark detection helpers used by the QRS detector and the
// ICG characteristic-point rules.

// Peak describes a local extremum found in a signal.
type Peak struct {
	Index int
	Value float64
}

// FindPeaks returns the indices of local maxima of x that are at least
// minHeight high and at least minDist samples apart. Plateaus report their
// first sample. When two peaks are closer than minDist the higher one is
// kept.
func FindPeaks(x []float64, minHeight float64, minDist int) []int {
	n := len(x)
	if n < 3 {
		return nil
	}
	var cands []Peak
	for i := 1; i < n-1; i++ {
		if x[i] < minHeight {
			continue
		}
		if x[i] > x[i-1] {
			// Walk plateaus: find the end of a run of equal values.
			j := i
			for j < n-1 && x[j+1] == x[i] {
				j++
			}
			if j < n-1 && x[j+1] < x[i] {
				cands = append(cands, Peak{Index: i, Value: x[i]})
			}
			i = j
		}
	}
	if minDist <= 1 || len(cands) < 2 {
		idx := make([]int, len(cands))
		for i, p := range cands {
			idx[i] = p.Index
		}
		return idx
	}
	// Greedy selection by descending height, suppressing neighbours.
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		pa, pb := cands[a], cands[b]
		if pa.Value != pb.Value {
			if pa.Value > pb.Value {
				return -1
			}
			return 1
		}
		return pa.Index - pb.Index
	})
	kept := make([]bool, len(cands))
	removed := make([]bool, len(cands))
	for _, oi := range order {
		if removed[oi] {
			continue
		}
		kept[oi] = true
		// cands is index-sorted, so the suppression neighbourhood is a
		// contiguous window located by binary search instead of a full
		// scan (the scan made QRS detection quadratic in the peak count).
		ci := cands[oi].Index
		lo := sort.Search(len(cands), func(j int) bool { return cands[j].Index > ci-minDist })
		for j := lo; j < len(cands) && cands[j].Index < ci+minDist; j++ {
			if j == oi || kept[j] {
				continue
			}
			removed[j] = true
		}
	}
	var idx []int
	for i, p := range cands {
		if kept[i] {
			idx = append(idx, p.Index)
		}
	}
	sort.Ints(idx)
	return idx
}

// FindTroughs returns the indices of local minima of x that are at most
// maxHeight deep and at least minDist samples apart.
func FindTroughs(x []float64, maxHeight float64, minDist int) []int {
	neg := make([]float64, len(x))
	for i, v := range x {
		neg[i] = -v
	}
	return FindPeaks(neg, -maxHeight, minDist)
}

// ArgMax returns the index of the maximum of x[lo:hi] (hi exclusive) in
// absolute coordinates; it returns -1 for an empty range.
func ArgMax(x []float64, lo, hi int) int {
	lo = ClampInt(lo, 0, len(x))
	hi = ClampInt(hi, 0, len(x))
	if lo >= hi {
		return -1
	}
	best := lo
	for i := lo + 1; i < hi; i++ {
		if x[i] > x[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the minimum of x[lo:hi] (hi exclusive) in
// absolute coordinates; it returns -1 for an empty range.
func ArgMin(x []float64, lo, hi int) int {
	lo = ClampInt(lo, 0, len(x))
	hi = ClampInt(hi, 0, len(x))
	if lo >= hi {
		return -1
	}
	best := lo
	for i := lo + 1; i < hi; i++ {
		if x[i] < x[best] {
			best = i
		}
	}
	return best
}

// LocalMinima returns all indices i in [lo, hi) that are local minima of x
// (strictly smaller than both neighbours).
func LocalMinima(x []float64, lo, hi int) []int {
	lo = ClampInt(lo, 1, len(x))
	hi = ClampInt(hi, 0, len(x)-1)
	var out []int
	for i := lo; i < hi; i++ {
		if x[i] < x[i-1] && x[i] < x[i+1] {
			out = append(out, i)
		}
	}
	return out
}

// LocalMaxima returns all indices i in [lo, hi) that are local maxima of x.
func LocalMaxima(x []float64, lo, hi int) []int {
	lo = ClampInt(lo, 1, len(x))
	hi = ClampInt(hi, 0, len(x)-1)
	var out []int
	for i := lo; i < hi; i++ {
		if x[i] > x[i-1] && x[i] > x[i+1] {
			out = append(out, i)
		}
	}
	return out
}

// ZeroCrossings returns the indices i where x crosses zero between i and
// i+1 (sign change or exact zero at i).
func ZeroCrossings(x []float64) []int {
	var out []int
	for i := 0; i+1 < len(x); i++ {
		if x[i] == 0 || x[i]*x[i+1] < 0 {
			out = append(out, i)
		}
	}
	return out
}

// PrevZeroCrossing scans left from index start (exclusive) and returns the
// last index i < start where x[i] and x[i+1] straddle zero, or -1.
func PrevZeroCrossing(x []float64, start int) int {
	start = ClampInt(start, 0, len(x)-1)
	for i := start - 1; i >= 0; i-- {
		if x[i] == 0 || x[i]*x[i+1] < 0 {
			return i
		}
	}
	return -1
}

// PrevLocalMinimum scans left from index start (exclusive) and returns the
// nearest local-minimum index of x, or -1.
func PrevLocalMinimum(x []float64, start int) int {
	start = ClampInt(start, 0, len(x))
	for i := start - 1; i >= 1 && i < len(x)-1; i-- {
		if x[i] < x[i-1] && x[i] < x[i+1] {
			return i
		}
	}
	return -1
}
