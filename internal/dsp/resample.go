package dsp

// Resampling helpers. The device supports sampling rates from 125 Hz to
// 16 kHz; the study runs at 250 Hz, so recordings at other rates are
// resampled before processing.

// ResampleLinear resamples x from rate fsIn to rate fsOut using linear
// interpolation. The output covers the same time span.
func ResampleLinear(x []float64, fsIn, fsOut float64) []float64 {
	n := len(x)
	if n == 0 || fsIn <= 0 || fsOut <= 0 {
		return nil
	}
	if fsIn == fsOut {
		return Clone(x)
	}
	dur := float64(n-1) / fsIn
	m := int(dur*fsOut) + 1
	if m < 1 {
		m = 1
	}
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		t := float64(i) / fsOut
		pos := t * fsIn
		lo := int(pos)
		if lo >= n-1 {
			y[i] = x[n-1]
			continue
		}
		frac := pos - float64(lo)
		y[i] = x[lo]*(1-frac) + x[lo+1]*frac
	}
	return y
}

// ResampleN resamples x to exactly n samples spanning the same interval,
// using linear interpolation. Used to align beats of different lengths
// before ensemble averaging.
func ResampleN(x []float64, n int) []float64 {
	if len(x) == 0 || n < 1 {
		return nil
	}
	if len(x) == 1 {
		y := make([]float64, n)
		for i := range y {
			y[i] = x[0]
		}
		return y
	}
	y := make([]float64, n)
	scale := float64(len(x)-1) / float64(maxInt(n-1, 1))
	for i := 0; i < n; i++ {
		pos := float64(i) * scale
		lo := int(pos)
		if lo >= len(x)-1 {
			y[i] = x[len(x)-1]
			continue
		}
		frac := pos - float64(lo)
		y[i] = x[lo]*(1-frac) + x[lo+1]*frac
	}
	return y
}

// Decimate returns every k-th sample of x after low-pass filtering at
// 0.8*fs/(2k) to limit aliasing.
func Decimate(x []float64, fs float64, k int) []float64 {
	if k <= 1 {
		return Clone(x)
	}
	if len(x) == 0 {
		return nil
	}
	cutoff := 0.8 * fs / (2 * float64(k))
	sos, err := DesignButterLowPass(4, cutoff, fs)
	var filtered []float64
	if err != nil {
		filtered = Clone(x)
	} else {
		filtered = sos.FiltFilt(x)
	}
	m := (len(filtered) + k - 1) / k
	y := make([]float64, 0, m)
	for i := 0; i < len(filtered); i += k {
		y = append(y, filtered[i])
	}
	return y
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
