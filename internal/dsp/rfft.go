package dsp

// Real-input FFT. A real signal's spectrum is conjugate-symmetric, so
// only the half-spectrum X[0..n/2] carries information; computing it
// through a complex transform wastes half the butterflies. RFFTPlan uses
// the classic split trick instead: pack adjacent real pairs
// x[2k], x[2k+1] into one complex sample, run a half-size complex FFT,
// and disentangle the even/odd sub-spectra with one O(n) recombination
// pass. Both twiddle tables (the half-size butterfly table and the
// length-n split table) come from the process-wide cache in fftplan.go,
// so a warm plan allocates nothing and plans are free to construct.
//
// The overlap-save convolution engine (conv.go) runs on the same split
// kernels with the spectrum product fused into the recombination pass,
// which is where the half-size transforms pay off on wide FIR filters.

// RFFTPlan is a reusable real-input transform plan for one power-of-two
// size n >= 2. Plans are stateless after construction and safe for
// concurrent use; the caller owns all buffers.
type RFFTPlan struct {
	n    int          // real transform length
	half int          // n/2: size of the underlying complex transform
	w    []complex128 // butterfly twiddles for the half-size complex FFT
	wr   []complex128 // split twiddles exp(-2*pi*i*k/n), k in [0, n/2)
}

// NewRFFTPlan builds (or fetches the cached tables for) a real-input
// plan of size n, which must be a power of two >= 2.
func NewRFFTPlan(n int) (*RFFTPlan, error) {
	if !IsPow2(n) || n < 2 {
		return nil, ErrNotPow2
	}
	return &RFFTPlan{n: n, half: n / 2, w: twiddlesFor(n / 2), wr: twiddlesFor(n)}, nil
}

// Size returns the real transform length n.
func (p *RFFTPlan) Size() int { return p.n }

// SpectrumLen returns the half-spectrum length n/2 + 1.
func (p *RFFTPlan) SpectrumLen() int { return p.half + 1 }

// Forward computes the half-spectrum X[0..n/2] of the real signal x
// (length n) into dst (length >= n/2+1) and returns dst[:n/2+1]. The
// remaining bins follow from conjugate symmetry: X[n-k] = conj(X[k]).
// Allocation-free; dst doubles as the transform workspace.
func (p *RFFTPlan) Forward(dst []complex128, x []float64) ([]complex128, error) {
	m := p.half
	if len(x) != p.n || len(dst) < m+1 {
		return nil, ErrBadLength
	}
	dst = dst[:m+1]
	for k := 0; k < m; k++ {
		dst[k] = complex(x[2*k], x[2*k+1])
	}
	fftWith(dst[:m], p.w)
	p.split(dst)
	return dst, nil
}

// split disentangles the half-size transform Z (in z[:half]) into the
// real signal's half-spectrum X[0..half], in place. With E and O the
// sub-spectra of the even and odd samples, Z[k] = E[k] + i O[k], so
//
//	E[k] = (Z[k] + conj(Z[m-k]))/2, O[k] = -i (Z[k] - conj(Z[m-k]))/2,
//	X[k] = E[k] + W^k O[k],         W = exp(-2*pi*i/n),
//
// and the upper half follows as X[m-k] = conj(E[k] - W^k O[k]).
func (p *RFFTPlan) split(z []complex128) {
	m := p.half
	re0, im0 := real(z[0]), imag(z[0])
	z[0] = complex(re0+im0, 0)
	z[m] = complex(re0-im0, 0)
	for k := 1; k <= m/2; k++ {
		a, b := z[k], conjC(z[m-k])
		fe := scaleC(a+b, 0.5)
		fo := mulNegI(a - b) // -i (a-b); the 1/2 is folded into fe/fo below
		fo = scaleC(fo, 0.5)
		t := p.wr[k] * fo
		z[k] = fe + t
		z[m-k] = conjC(fe - t)
	}
}

// Inverse reconstructs the real signal from the half-spectrum spec
// (length n/2+1) into dst (length n). spec is used as the transform
// workspace and is destroyed. The imaginary parts of spec[0] and
// spec[n/2] are ignored (they are zero for any real signal's spectrum).
// Allocation-free.
func (p *RFFTPlan) Inverse(dst []float64, spec []complex128) error {
	m := p.half
	if len(dst) != p.n || len(spec) < m+1 {
		return ErrBadLength
	}
	p.merge(spec)
	ifftWith(spec[:m], p.w)
	for k := 0; k < m; k++ {
		dst[2*k] = real(spec[k])
		dst[2*k+1] = imag(spec[k])
	}
	return nil
}

// merge is the inverse of split: it folds the half-spectrum X[0..half]
// back into the half-size transform Z[0..half), in place, so one
// half-size inverse FFT reproduces the packed real pairs.
func (p *RFFTPlan) merge(x []complex128) {
	m := p.half
	x0, xm := real(x[0]), real(x[m])
	x[0] = complex((x0+xm)*0.5, (x0-xm)*0.5)
	for k := 1; k <= m/2; k++ {
		a, b := x[k], conjC(x[m-k])
		fe := scaleC(a+b, 0.5)
		fo := scaleC(a-b, 0.5) * conjC(p.wr[k]) // W^{-k} undoes the split rotation
		x[k] = fe + mulI(fo)
		x[m-k] = conjC(fe) + mulI(conjC(fo))
	}
}

// RFFT computes the half-spectrum X[0..n/2] of the real signal x, whose
// length must be a power of two >= 2.
func RFFT(x []float64) ([]complex128, error) {
	p, err := NewRFFTPlan(len(x))
	if err != nil {
		return nil, err
	}
	return p.Forward(make([]complex128, p.SpectrumLen()), x)
}

// IRFFT reconstructs the length-2*(len(spec)-1) real signal from a
// half-spectrum produced by RFFT. spec is not modified.
func IRFFT(spec []complex128) ([]float64, error) {
	n := 2 * (len(spec) - 1)
	p, err := NewRFFTPlan(n)
	if err != nil {
		return nil, err
	}
	dst := make([]float64, n)
	work := make([]complex128, len(spec))
	copy(work, spec)
	if err := p.Inverse(dst, work); err != nil {
		return nil, err
	}
	return dst, nil
}

// Small complex helpers, inlined by the compiler; cmplx.Conj and friends
// go through float64 function calls that the hot split/merge loops cannot
// afford.

func conjC(c complex128) complex128             { return complex(real(c), -imag(c)) }
func scaleC(c complex128, s float64) complex128 { return complex(real(c)*s, imag(c)*s) }
func mulI(c complex128) complex128              { return complex(-imag(c), real(c)) }
func mulNegI(c complex128) complex128           { return complex(imag(c), -real(c)) }
