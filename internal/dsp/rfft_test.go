package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// relTol compares against the spectrum's largest magnitude so the
// tolerance is meaningful for bins near zero.
func specMaxAbs(s []complex128) float64 {
	m := 0.0
	for _, c := range s {
		if a := cmplx.Abs(c); a > m {
			m = a
		}
	}
	if m == 0 {
		return 1
	}
	return m
}

// TestRFFTMatchesFFT pins the half-spectrum against the full complex
// transform to 1e-12 relative across sizes, including the degenerate
// n = 2 plan.
func TestRFFTMatchesFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{2, 4, 8, 16, 64, 256, 1024, 4096} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got, err := RFFT(x)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got) != n/2+1 {
			t.Fatalf("n=%d: half-spectrum length %d, want %d", n, len(got), n/2+1)
		}
		c := make([]complex128, n)
		for i, v := range x {
			c[i] = complex(v, 0)
		}
		want, _ := FFT(c)
		scale := specMaxAbs(want)
		for k := 0; k <= n/2; k++ {
			if d := cmplx.Abs(got[k]-want[k]) / scale; d > 1e-12 {
				t.Fatalf("n=%d bin %d: rfft %v, fft %v (rel %g)", n, k, got[k], want[k], d)
			}
		}
	}
}

// TestIRFFTRoundTrip pins forward-then-inverse reconstruction to 1e-12
// relative.
func TestIRFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 4, 32, 512, 2048} {
		x := make([]float64, n)
		maxAbs := 0.0
		for i := range x {
			x[i] = rng.NormFloat64()
			if a := math.Abs(x[i]); a > maxAbs {
				maxAbs = a
			}
		}
		spec, err := RFFT(x)
		if err != nil {
			t.Fatal(err)
		}
		back, err := IRFFT(spec)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if d := math.Abs(back[i]-x[i]) / maxAbs; d > 1e-12 {
				t.Fatalf("n=%d sample %d: %g back as %g (rel %g)", n, i, x[i], back[i], d)
			}
		}
	}
}

// TestRFFTNonWarmPlan exercises a plan size no other test (or the
// overlap-save engine) uses, so construction runs the full twiddle
// build rather than a cache hit — the parity must not depend on a warm
// process-wide cache.
func TestRFFTNonWarmPlan(t *testing.T) {
	const n = 1 << 16
	rng := rand.New(rand.NewSource(99))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got, err := RFFT(x)
	if err != nil {
		t.Fatal(err)
	}
	c := make([]complex128, n)
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	want, _ := FFT(c)
	scale := specMaxAbs(want)
	for k := 0; k <= n/2; k++ {
		if d := cmplx.Abs(got[k]-want[k]) / scale; d > 1e-12 {
			t.Fatalf("bin %d: rel error %g", k, d)
		}
	}
}

// TestIFFTRoundTripExact pins the conjugate-table inverse against the
// forward transform: IFFT(FFT(x)) must reconstruct to 1e-12.
func TestIFFTRoundTripExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{4, 64, 1024} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		orig := append([]complex128(nil), x...)
		FFT(x)
		IFFT(x)
		for i := range x {
			if d := cmplx.Abs(x[i] - orig[i]); d > 1e-12*float64(n) {
				t.Fatalf("n=%d sample %d: %v back as %v", n, i, orig[i], x[i])
			}
		}
	}
}

// TestRFFTPlanWarmAllocFree is the CI alloc guard for the plan's warm
// path: Forward and Inverse with caller-owned buffers must not allocate.
func TestRFFTPlanWarmAllocFree(t *testing.T) {
	const n = 1024
	p, err := NewRFFTPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i) / 9)
	}
	spec := make([]complex128, p.SpectrumLen())
	dst := make([]float64, n)
	if allocs := testing.AllocsPerRun(100, func() {
		p.Forward(spec, x)
		p.Inverse(dst, spec)
	}); allocs != 0 {
		t.Fatalf("warm RFFT plan allocated %v times per round trip, want 0", allocs)
	}
	// Warm plan construction itself must be allocation-light: the
	// tables come from the process-wide cache.
	if allocs := testing.AllocsPerRun(100, func() {
		NewRFFTPlan(n)
	}); allocs > 1 {
		t.Fatalf("warm NewRFFTPlan allocated %v times, want <= 1", allocs)
	}
}

// TestRFFTBadSizes pins the error contract.
func TestRFFTBadSizes(t *testing.T) {
	if _, err := NewRFFTPlan(0); err == nil {
		t.Fatal("NewRFFTPlan(0) should fail")
	}
	if _, err := NewRFFTPlan(1); err == nil {
		t.Fatal("NewRFFTPlan(1) should fail")
	}
	if _, err := NewRFFTPlan(12); err == nil {
		t.Fatal("NewRFFTPlan(12) should fail")
	}
	if _, err := RFFT(make([]float64, 6)); err == nil {
		t.Fatal("RFFT of non-power-of-two length should fail")
	}
	p, _ := NewRFFTPlan(8)
	if _, err := p.Forward(make([]complex128, 4), make([]float64, 8)); err == nil {
		t.Fatal("short dst should fail")
	}
	if err := p.Inverse(make([]float64, 4), make([]complex128, 5)); err == nil {
		t.Fatal("short dst should fail")
	}
}
