package dsp

// Savitzky-Golay smoothing: least-squares polynomial fitting over a
// sliding window, the standard way to stabilize the high-order
// derivatives the characteristic-point rules consume. Coefficients are
// derived from the closed-form quadratic/cubic fits for symmetric
// windows, which is the case used in practice.

// SavGolKernel returns the smoothing kernel for a symmetric window of
// half-width m (window length 2m+1) fitting a quadratic polynomial. The
// kernel is normalized to unit sum.
func SavGolKernel(m int) []float64 {
	if m < 1 {
		return []float64{1}
	}
	n := 2*m + 1
	// Closed form for quadratic/cubic SG smoothing:
	// c_i = (3*(3m^2+3m-1) - 15*i^2) / ((2m+3)*(2m+1)*(2m-1)) for i=-m..m
	denom := float64((2*m + 3) * (2*m + 1) * (2*m - 1))
	k := make([]float64, n)
	sum := 0.0
	for i := -m; i <= m; i++ {
		v := (3*float64(3*m*m+3*m-1) - 15*float64(i*i)) / denom
		k[i+m] = v
		sum += v
	}
	// Normalize against accumulated rounding.
	for i := range k {
		k[i] /= sum
	}
	return k
}

// SavGolSmooth applies quadratic Savitzky-Golay smoothing with half-width
// m, handling edges by shrinking the window.
func SavGolSmooth(x []float64, m int) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if m < 1 {
		return Clone(x)
	}
	k := SavGolKernel(m)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		if i >= m && i+m < n {
			acc := 0.0
			for j := -m; j <= m; j++ {
				acc += k[j+m] * x[i+j]
			}
			y[i] = acc
			continue
		}
		// Edge: shrink to the largest symmetric window that fits.
		mm := i
		if n-1-i < mm {
			mm = n - 1 - i
		}
		if mm < 1 {
			y[i] = x[i]
			continue
		}
		ke := SavGolKernel(mm)
		acc := 0.0
		for j := -mm; j <= mm; j++ {
			acc += ke[j+mm] * x[i+j]
		}
		y[i] = acc
	}
	return y
}

// SavGolDerivative estimates the first derivative (units per second) with
// the quadratic Savitzky-Golay derivative kernel c_i = i / (sum of i^2),
// which is the least-squares slope over the window.
func SavGolDerivative(x []float64, fs float64, m int) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if m < 1 {
		return Derivative(x, fs)
	}
	var s2 float64
	for i := -m; i <= m; i++ {
		s2 += float64(i * i)
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		if i < m || i+m >= n {
			// Edges: fall back to simple differences.
			if i == 0 && n > 1 {
				y[i] = (x[1] - x[0]) * fs
			} else if i == n-1 && n > 1 {
				y[i] = (x[n-1] - x[n-2]) * fs
			} else if n > 2 {
				y[i] = (x[minIntSG(i+1, n-1)] - x[maxIntSG(i-1, 0)]) * fs / 2
			}
			continue
		}
		acc := 0.0
		for j := -m; j <= m; j++ {
			acc += float64(j) * x[i+j]
		}
		y[i] = acc / s2 * fs
	}
	return y
}

func minIntSG(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxIntSG(a, b int) int {
	if a > b {
		return a
	}
	return b
}
