package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestSavGolKernelProperties(t *testing.T) {
	for _, m := range []int{1, 2, 4, 8} {
		k := SavGolKernel(m)
		if len(k) != 2*m+1 {
			t.Fatalf("m=%d: len %d", m, len(k))
		}
		sum := 0.0
		for i := range k {
			sum += k[i]
			// Symmetry.
			if math.Abs(k[i]-k[len(k)-1-i]) > 1e-12 {
				t.Errorf("m=%d: asymmetric at %d", m, i)
			}
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("m=%d: sum = %g", m, sum)
		}
		// Center weight is the largest.
		if ArgMax(k, 0, len(k)) != m {
			t.Errorf("m=%d: peak not centered", m)
		}
	}
	if k := SavGolKernel(0); len(k) != 1 || k[0] != 1 {
		t.Error("m=0 should be identity")
	}
}

func TestSavGolPreservesQuadratic(t *testing.T) {
	// A quadratic signal passes through SG smoothing unchanged (that is
	// the defining property of the quadratic fit).
	n := 100
	x := make([]float64, n)
	for i := range x {
		ti := float64(i)
		x[i] = 0.02*ti*ti - 1.5*ti + 3
	}
	y := SavGolSmooth(x, 5)
	for i := 5; i < n-5; i++ {
		if math.Abs(y[i]-x[i]) > 1e-9 {
			t.Fatalf("quadratic distorted at %d: %g vs %g", i, y[i], x[i])
		}
	}
}

func TestSavGolSmoothReducesNoise(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	fs := 250.0
	clean := sine(3, fs, 1000)
	noisy := make([]float64, len(clean))
	for i := range clean {
		noisy[i] = clean[i] + 0.05*r.NormFloat64()
	}
	sm := SavGolSmooth(noisy, 4)
	if RMSE(sm[20:980], clean[20:980]) >= RMSE(noisy[20:980], clean[20:980]) {
		t.Error("smoothing did not reduce noise")
	}
}

func TestSavGolDerivativeOfLine(t *testing.T) {
	fs := 100.0
	x := make([]float64, 60)
	for i := range x {
		x[i] = 2.5*float64(i)/fs - 1
	}
	d := SavGolDerivative(x, fs, 3)
	for i := 3; i < len(d)-3; i++ {
		if math.Abs(d[i]-2.5) > 1e-9 {
			t.Fatalf("slope at %d = %g", i, d[i])
		}
	}
}

func TestSavGolDerivativeNoisier(t *testing.T) {
	// On a noisy sine the SG derivative must beat plain central
	// differences.
	r := rand.New(rand.NewSource(9))
	fs := 250.0
	clean := sine(4, fs, 1200)
	noisy := make([]float64, len(clean))
	for i := range clean {
		noisy[i] = clean[i] + 0.02*r.NormFloat64()
	}
	ref := Derivative(clean, fs)
	plain := Derivative(noisy, fs)
	sg := SavGolDerivative(noisy, fs, 4)
	if RMSE(sg[30:1170], ref[30:1170]) >= RMSE(plain[30:1170], ref[30:1170]) {
		t.Error("SG derivative not better than central differences")
	}
}

func TestSavGolEdges(t *testing.T) {
	if SavGolSmooth(nil, 3) != nil {
		t.Error("nil input")
	}
	one := SavGolSmooth([]float64{7}, 3)
	if len(one) != 1 || one[0] != 7 {
		t.Error("single sample")
	}
	same := SavGolSmooth([]float64{1, 2, 3}, 0)
	if same[1] != 2 {
		t.Error("m=0 identity")
	}
	if SavGolDerivative(nil, 100, 2) != nil {
		t.Error("nil derivative")
	}
}
