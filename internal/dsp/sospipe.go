package dsp

// Software-pipelined biquad cascade kernels. The direct-form-II-transposed
// recurrence
//
//	out = B0*v + z1; z1 = B1*v - A1*out + z2; z2 = B2*v - A2*out
//
// is a serial dependence chain through z1/z2: section-major filtering
// (one section over all samples, then the next) exposes no instruction
// parallelism, so each sample costs the full multiply-add latency chain.
// The kernels below run the whole cascade sample-major with a skewed
// pipeline — lane j processes sample i-j, so every iteration of the
// steady-state loop executes len(s) independent biquad updates that the
// core can overlap.
//
// Bit-identity: each (sample, section) update performs exactly the same
// operations on exactly the same operands as the section-major loop —
// the lanes only reorder independent nodes of the same dataflow graph —
// so FilterTo, filterZiInPlace and SOSStream.Push keep their outputs
// bit-identical to the scalar reference (pinned by tests). Cascades
// deeper than four sections run in groups of <= 4, which preserves the
// same graph.
//
// prime mirrors filterZiInPlace: each lane's state starts at the
// steady-state zi scaled by that lane's first input (the first output of
// the previous lane — the identical dataflow node the scalar code uses).

// sosPipeRun drives the cascade over x into dst in pipelined groups of
// up to four sections. dst and x must have equal length and either be
// the same slice or disjoint: every kernel's writes trail its reads, so
// fully in-place operation is safe by construction. z1/z2 (len(s) each)
// carry persistent per-section state in and out; nil means zero initial
// state with the final state discarded. prime overrides z1/z2 with the
// scaled steady-state zi at each section's first input (filterZiInPlace
// semantics).
func sosPipeRun(dst, x []float64, s SOS, z1, z2 []float64, prime bool) {
	src := x
	for off := 0; off < len(s); {
		g := len(s) - off
		if g > 4 {
			g = 4
		}
		switch g {
		case 1:
			var st [2]float64
			if z1 != nil {
				st[0], st[1] = z1[off], z2[off]
			}
			sosRun1(dst, src, s[off], &st, prime)
			if z1 != nil {
				z1[off], z2[off] = st[0], st[1]
			}
		case 2:
			var st [2][2]float64
			for j := 0; z1 != nil && j < 2; j++ {
				st[j][0], st[j][1] = z1[off+j], z2[off+j]
			}
			sosRun2(dst, src, s[off], s[off+1], &st, prime)
			for j := 0; z1 != nil && j < 2; j++ {
				z1[off+j], z2[off+j] = st[j][0], st[j][1]
			}
		case 3:
			var st [3][2]float64
			for j := 0; z1 != nil && j < 3; j++ {
				st[j][0], st[j][1] = z1[off+j], z2[off+j]
			}
			sosRun3(dst, src, s[off], s[off+1], s[off+2], &st, prime)
			for j := 0; z1 != nil && j < 3; j++ {
				z1[off+j], z2[off+j] = st[j][0], st[j][1]
			}
		default:
			var st [4][2]float64
			for j := 0; z1 != nil && j < 4; j++ {
				st[j][0], st[j][1] = z1[off+j], z2[off+j]
			}
			sosRun4(dst, src, s[off], s[off+1], s[off+2], s[off+3], &st, prime)
			for j := 0; z1 != nil && j < 4; j++ {
				z1[off+j], z2[off+j] = st[j][0], st[j][1]
			}
		}
		off += g
		src = dst
	}
}

// sosRun1 is the single-section loop (nothing to pipeline).
func sosRun1(dst, x []float64, bq Biquad, z *[2]float64, prime bool) {
	n := len(x)
	if n == 0 {
		return
	}
	z1, z2 := z[0], z[1]
	if prime {
		zi1, zi2 := biquadZi(bq)
		z1, z2 = zi1*x[0], zi2*x[0]
	}
	b0, b1, b2, a1, a2 := bq.B0, bq.B1, bq.B2, bq.A1, bq.A2
	for i := 0; i < n; i++ {
		v := x[i]
		out := b0*v + z1
		z1 = b1*v - a1*out + z2
		z2 = b2*v - a2*out
		dst[i] = out
	}
	z[0], z[1] = z1, z2
}

// sosRun2 pipelines a two-section cascade.
func sosRun2(dst, x []float64, q0, q1 Biquad, z *[2][2]float64, prime bool) {
	n := len(x)
	if n == 0 {
		return
	}
	b00, b01, b02, a01, a02 := q0.B0, q0.B1, q0.B2, q0.A1, q0.A2
	b10, b11, b12, a11, a12 := q1.B0, q1.B1, q1.B2, q1.A1, q1.A2
	z10, z20 := z[0][0], z[0][1]
	z11, z21 := z[1][0], z[1][1]

	// Prologue: lane 0 consumes x[0]; lane 1 is idle this step.
	v := x[0]
	if prime {
		zi1, zi2 := biquadZi(q0)
		z10, z20 = zi1*v, zi2*v
	}
	p0 := b00*v + z10
	z10 = b01*v - a01*p0 + z20
	z20 = b02*v - a02*p0
	if prime {
		zi1, zi2 := biquadZi(q1)
		z11, z21 = zi1*p0, zi2*p0
	}
	// Steady state: both lanes busy; lane 1 trails by one sample.
	for t := 1; t < n; t++ {
		v := x[t]
		w := p0
		o0 := b00*v + z10
		z10 = b01*v - a01*o0 + z20
		z20 = b02*v - a02*o0
		o1 := b10*w + z11
		z11 = b11*w - a11*o1 + z21
		z21 = b12*w - a12*o1
		dst[t-1] = o1
		p0 = o0
	}
	// Epilogue: drain lane 1.
	o1 := b10*p0 + z11
	z11 = b11*p0 - a11*o1 + z21
	z21 = b12*p0 - a12*o1
	dst[n-1] = o1

	z[0][0], z[0][1] = z10, z20
	z[1][0], z[1][1] = z11, z21
}

// sosRun3 pipelines a three-section cascade.
func sosRun3(dst, x []float64, q0, q1, q2 Biquad, z *[3][2]float64, prime bool) {
	n := len(x)
	if n == 0 {
		return
	}
	b00, b01, b02, a01, a02 := q0.B0, q0.B1, q0.B2, q0.A1, q0.A2
	b10, b11, b12, a11, a12 := q1.B0, q1.B1, q1.B2, q1.A1, q1.A2
	b20, b21, b22, a21, a22 := q2.B0, q2.B1, q2.B2, q2.A1, q2.A2
	z10, z20 := z[0][0], z[0][1]
	z11, z21 := z[1][0], z[1][1]
	z12, z22 := z[2][0], z[2][1]

	step0 := func(v float64) float64 {
		o := b00*v + z10
		z10 = b01*v - a01*o + z20
		z20 = b02*v - a02*o
		return o
	}
	step1 := func(v float64) float64 {
		o := b10*v + z11
		z11 = b11*v - a11*o + z21
		z21 = b12*v - a12*o
		return o
	}
	step2 := func(v float64) float64 {
		o := b20*v + z12
		z12 = b21*v - a21*o + z22
		z22 = b22*v - a22*o
		return o
	}

	v := x[0]
	if prime {
		zi1, zi2 := biquadZi(q0)
		z10, z20 = zi1*v, zi2*v
	}
	p0 := step0(v)
	if prime {
		zi1, zi2 := biquadZi(q1)
		z11, z21 = zi1*p0, zi2*p0
	}
	var p1 float64
	if n > 1 {
		v = x[1]
		w := p0
		p0 = step0(v)
		p1 = step1(w)
		if prime {
			zi1, zi2 := biquadZi(q2)
			z12, z22 = zi1*p1, zi2*p1
		}
	} else {
		p1 = step1(p0)
		if prime {
			zi1, zi2 := biquadZi(q2)
			z12, z22 = zi1*p1, zi2*p1
		}
		dst[0] = step2(p1)
		z[0][0], z[0][1] = z10, z20
		z[1][0], z[1][1] = z11, z21
		z[2][0], z[2][1] = z12, z22
		return
	}
	// The closures above capture the z vars, which would pin them to
	// stack slots inside the hot loop; run the steady state on fresh
	// uncaptured locals so they live in registers.
	{
		y10, y20, y11, y21, y12, y22 := z10, z20, z11, z21, z12, z22
		for t := 2; t < n; t++ {
			v := x[t]
			w0, w1 := p0, p1
			o0 := b00*v + y10
			y10 = b01*v - a01*o0 + y20
			y20 = b02*v - a02*o0
			o1 := b10*w0 + y11
			y11 = b11*w0 - a11*o1 + y21
			y21 = b12*w0 - a12*o1
			o2 := b20*w1 + y12
			y12 = b21*w1 - a21*o2 + y22
			y22 = b22*w1 - a22*o2
			dst[t-2] = o2
			p0, p1 = o0, o1
		}
		z10, z20, z11, z21, z12, z22 = y10, y20, y11, y21, y12, y22
	}
	// Epilogue: drain lane 1 then lane 2 on the in-flight values.
	o1 := step1(p0)
	dst[n-2] = step2(p1)
	dst[n-1] = step2(o1)

	z[0][0], z[0][1] = z10, z20
	z[1][0], z[1][1] = z11, z21
	z[2][0], z[2][1] = z12, z22
}

// sosRun4 pipelines a four-section cascade.
func sosRun4(dst, x []float64, q0, q1, q2, q3 Biquad, z *[4][2]float64, prime bool) {
	n := len(x)
	if n == 0 {
		return
	}
	b00, b01, b02, a01, a02 := q0.B0, q0.B1, q0.B2, q0.A1, q0.A2
	b10, b11, b12, a11, a12 := q1.B0, q1.B1, q1.B2, q1.A1, q1.A2
	b20, b21, b22, a21, a22 := q2.B0, q2.B1, q2.B2, q2.A1, q2.A2
	b30, b31, b32, a31, a32 := q3.B0, q3.B1, q3.B2, q3.A1, q3.A2
	z10, z20 := z[0][0], z[0][1]
	z11, z21 := z[1][0], z[1][1]
	z12, z22 := z[2][0], z[2][1]
	z13, z23 := z[3][0], z[3][1]

	step0 := func(v float64) float64 {
		o := b00*v + z10
		z10 = b01*v - a01*o + z20
		z20 = b02*v - a02*o
		return o
	}
	step1 := func(v float64) float64 {
		o := b10*v + z11
		z11 = b11*v - a11*o + z21
		z21 = b12*v - a12*o
		return o
	}
	step2 := func(v float64) float64 {
		o := b20*v + z12
		z12 = b21*v - a21*o + z22
		z22 = b22*v - a22*o
		return o
	}
	step3 := func(v float64) float64 {
		o := b30*v + z13
		z13 = b31*v - a31*o + z23
		z23 = b32*v - a32*o
		return o
	}
	prime1 := func(u float64, q Biquad, s1, s2 *float64) {
		zi1, zi2 := biquadZi(q)
		*s1, *s2 = zi1*u, zi2*u
	}

	// Short inputs: fill and drain the pipeline step by step.
	if n < 4 {
		var lanes [3]float64 // in-flight values for lanes 1..3
		emit := 0
		for t := 0; t < n+3; t++ {
			var o0 float64
			if t < n {
				v := x[t]
				if t == 0 && prime {
					prime1(v, q0, &z10, &z20)
				}
				o0 = step0(v)
			}
			// Advance deeper lanes on the values produced 1..3 steps ago.
			if t >= 1 && t-1 < n {
				if t-1 == 0 && prime {
					prime1(lanes[0], q1, &z11, &z21)
				}
				lanes[0] = step1(lanes[0])
			}
			if t >= 2 && t-2 < n {
				if t-2 == 0 && prime {
					prime1(lanes[1], q2, &z12, &z22)
				}
				lanes[1] = step2(lanes[1])
			}
			if t >= 3 && t-3 < n {
				if t-3 == 0 && prime {
					prime1(lanes[2], q3, &z13, &z23)
				}
				dst[emit] = step3(lanes[2])
				emit++
			}
			// Shift the pipeline: lane j+1 consumes lane j's output next step.
			lanes[2], lanes[1], lanes[0] = lanes[1], lanes[0], o0
		}
		z[0][0], z[0][1] = z10, z20
		z[1][0], z[1][1] = z11, z21
		z[2][0], z[2][1] = z12, z22
		z[3][0], z[3][1] = z13, z23
		return
	}

	// Prologue (n >= 4): three fill steps.
	v := x[0]
	if prime {
		prime1(v, q0, &z10, &z20)
	}
	p0 := step0(v)
	if prime {
		prime1(p0, q1, &z11, &z21)
	}
	w := p0
	p0 = step0(x[1])
	p1 := step1(w)
	if prime {
		prime1(p1, q2, &z12, &z22)
	}
	w0, w1 := p0, p1
	p0 = step0(x[2])
	p1 = step1(w0)
	p2 := step2(w1)
	if prime {
		prime1(p2, q3, &z13, &z23)
	}
	// Steady state: four lanes busy, lane 3 trails by three samples. The
	// closures above capture the z vars, which would pin them to stack
	// slots inside the hot loop; run it on fresh uncaptured locals so
	// they live in registers.
	{
		y10, y20, y11, y21 := z10, z20, z11, z21
		y12, y22, y13, y23 := z12, z22, z13, z23
		for t := 3; t < n; t++ {
			v := x[t]
			u0, u1, u2 := p0, p1, p2
			o0 := b00*v + y10
			y10 = b01*v - a01*o0 + y20
			y20 = b02*v - a02*o0
			o1 := b10*u0 + y11
			y11 = b11*u0 - a11*o1 + y21
			y21 = b12*u0 - a12*o1
			o2 := b20*u1 + y12
			y12 = b21*u1 - a21*o2 + y22
			y22 = b22*u1 - a22*o2
			o3 := b30*u2 + y13
			y13 = b31*u2 - a31*o3 + y23
			y23 = b32*u2 - a32*o3
			dst[t-3] = o3
			p0, p1, p2 = o0, o1, o2
		}
		z10, z20, z11, z21 = y10, y20, y11, y21
		z12, z22, z13, z23 = y12, y22, y13, y23
	}
	// Epilogue: drain the three in-flight values.
	o1 := step1(p0)
	o2 := step2(p1)
	dst[n-3] = step3(p2)
	o2b := step2(o1)
	dst[n-2] = step3(o2)
	dst[n-1] = step3(o2b)

	z[0][0], z[0][1] = z10, z20
	z[1][0], z[1][1] = z11, z21
	z[2][0], z[2][1] = z12, z22
	z[3][0], z[3][1] = z13, z23
}
