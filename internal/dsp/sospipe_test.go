package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// scalarCascade is the pre-pipeline section-major reference: one section
// over all samples, then the next. The pipelined kernels must match it
// bit for bit.
func scalarCascade(x []float64, s SOS, z1, z2 []float64, prime bool) []float64 {
	y := append([]float64(nil), x...)
	for si, bq := range s {
		var a, b float64
		if z1 != nil {
			a, b = z1[si], z2[si]
		}
		if prime {
			zi1, zi2 := biquadZi(bq)
			u := 0.0
			if len(y) > 0 {
				u = y[0]
			}
			a, b = zi1*u, zi2*u
		}
		for i, v := range y {
			out := bq.B0*v + a
			a = bq.B1*v - bq.A1*out + b
			b = bq.B2*v - bq.A2*out
			y[i] = out
		}
		if z1 != nil {
			z1[si], z2[si] = a, b
		}
	}
	return y
}

// testCascades returns stable cascades of 1..6 sections built from the
// repo's own designs, exercising every kernel width plus the >4 grouping.
func testCascades(t *testing.T) []SOS {
	t.Helper()
	lp2, err := DesignButterLowPass(2, 20, 250) // 1 section
	if err != nil {
		t.Fatal(err)
	}
	lp4, err := DesignButterLowPass(4, 20, 250) // 2 sections
	if err != nil {
		t.Fatal(err)
	}
	bp3, err := DesignButterBandPass(3, 0.5, 30, 250) // 3 sections
	if err != nil {
		t.Fatal(err)
	}
	bp4, err := DesignButterBandPass(4, 0.5, 30, 250) // 4 sections
	if err != nil {
		t.Fatal(err)
	}
	five := append(append(SOS{}, bp4...), lp2...) // 5 sections
	six := append(append(SOS{}, bp3...), bp3...)  // 6 sections
	return []SOS{lp2, lp4, bp3, bp4, five, six}
}

// TestSOSPipelineBitIdentical pins FilterTo and filterZiInPlace against
// the section-major scalar reference, bit for bit, across cascade depths
// 1..6 and lengths from empty through pipeline-fill edge cases to long.
func TestSOSPipelineBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	lengths := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 17, 100, 1001}
	for ci, s := range testCascades(t) {
		for _, n := range lengths {
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			// FilterTo (zero state).
			want := scalarCascade(x, s, nil, nil, false)
			got := s.FilterTo(make([]float64, n), x)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("cascade %d n=%d FilterTo sample %d: %g != %g",
						ci, n, i, got[i], want[i])
				}
			}
			// In-place aliasing must give the same bits.
			inPlace := append([]float64(nil), x...)
			s.FilterTo(inPlace, inPlace)
			for i := range want {
				if inPlace[i] != want[i] {
					t.Fatalf("cascade %d n=%d in-place sample %d: %g != %g",
						ci, n, i, inPlace[i], want[i])
				}
			}
			// filterZiInPlace (primed state).
			wantZi := scalarCascade(x, s, nil, nil, true)
			gotZi := append([]float64(nil), x...)
			s.filterZiInPlace(gotZi)
			for i := range wantZi {
				if gotZi[i] != wantZi[i] {
					t.Fatalf("cascade %d n=%d zi sample %d: %g != %g",
						ci, n, i, gotZi[i], wantZi[i])
				}
			}
		}
	}
}

// TestSOSStreamPushBitIdentical pins the pipelined chunk path against the
// per-sample PushSample loop for every chunking, including 1-sample
// chunks, with and without zi priming, carrying state across chunks.
func TestSOSStreamPushBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n = 257
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for ci, s := range testCascades(t) {
		for _, prime := range []bool{false, true} {
			ref := NewSOSStream(s, 0, prime)
			var want []float64
			for _, v := range x {
				want = append(want, ref.PushSample(v))
			}
			for _, chunk := range []int{1, 2, 3, 4, 5, 7, 16, 64, 250, n} {
				st := NewSOSStream(s, 0, prime)
				var got []float64
				for lo := 0; lo < n; lo += chunk {
					hi := lo + chunk
					if hi > n {
						hi = n
					}
					got = st.Push(got, x[lo:hi])
				}
				if len(got) != n {
					t.Fatalf("cascade %d chunk %d: %d outputs, want %d", ci, chunk, len(got), n)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("cascade %d prime=%v chunk %d sample %d: %g != %g",
							ci, prime, chunk, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestSOSPipelineStateCarry pins the persistent-register contract: after
// any split of the input, the carried z1/z2 must put the second half on
// exactly the same trajectory as one uninterrupted run.
func TestSOSPipelineStateCarry(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const n = 101
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for ci, s := range testCascades(t) {
		z1 := make([]float64, len(s))
		z2 := make([]float64, len(s))
		whole := make([]float64, n)
		sosPipeRun(whole, x, s, z1, z2, false)
		endZ1 := append([]float64(nil), z1...)
		endZ2 := append([]float64(nil), z2...)
		for _, cut := range []int{1, 3, 4, 50, n - 1} {
			for i := range z1 {
				z1[i], z2[i] = 0, 0
			}
			out := make([]float64, n)
			sosPipeRun(out[:cut], x[:cut], s, z1, z2, false)
			sosPipeRun(out[cut:], x[cut:], s, z1, z2, false)
			for i := range whole {
				if out[i] != whole[i] {
					t.Fatalf("cascade %d cut %d sample %d: %g != %g", ci, cut, i, out[i], whole[i])
				}
			}
			for i := range z1 {
				if z1[i] != endZ1[i] || z2[i] != endZ2[i] {
					t.Fatalf("cascade %d cut %d: final state drifted", ci, cut)
				}
			}
		}
	}
}

// TestSOSFilterToStillFinite guards the kernels against NaN leaks from
// uninitialized lanes on degenerate inputs.
func TestSOSFilterToStillFinite(t *testing.T) {
	s, err := DesignButterBandPass(4, 0.5, 30, 250)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3} {
		x := make([]float64, n)
		for i := range x {
			x[i] = 1
		}
		y := s.Filter(x)
		for i, v := range y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("n=%d sample %d not finite: %g", n, i, v)
			}
		}
	}
}
