package dsp

import (
	"math"
	"sort"
)

// Elementary statistics used throughout the study harness: the evaluation
// correlates device and reference bioimpedance signals (Tables II-IV) and
// compares per-position means (Fig 8).

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the unbiased sample variance of x (0 for n < 2).
func Variance(x []float64) float64 {
	n := len(x)
	if n < 2 {
		return 0
	}
	m := Mean(x)
	s := 0.0
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(n-1)
}

// Std returns the unbiased sample standard deviation of x.
func Std(x []float64) float64 {
	return math.Sqrt(Variance(x))
}

// RMS returns the root-mean-square of x.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s / float64(len(x)))
}

// MinMax returns the minimum and maximum of x; it returns (0, 0) for an
// empty slice.
func MinMax(x []float64) (lo, hi float64) {
	if len(x) == 0 {
		return 0, 0
	}
	lo, hi = x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Median returns the median of x (0 for empty input). x is not modified.
func Median(x []float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	s := Clone(x)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Pearson returns the Pearson correlation coefficient between equal-length
// slices a and b. It returns 0 when either input is constant or empty.
func Pearson(a, b []float64) float64 {
	n := len(a)
	if n == 0 || n != len(b) {
		return 0
	}
	ma, mb := Mean(a), Mean(b)
	var sab, saa, sbb float64
	for i := 0; i < n; i++ {
		da := a[i] - ma
		db := b[i] - mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}

// RMSE returns the root-mean-square error between equal-length a and b.
func RMSE(a, b []float64) float64 {
	n := len(a)
	if n == 0 || n != len(b) {
		return 0
	}
	s := 0.0
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(n))
}

// MAE returns the mean absolute error between equal-length a and b.
func MAE(a, b []float64) float64 {
	n := len(a)
	if n == 0 || n != len(b) {
		return 0
	}
	s := 0.0
	for i := 0; i < n; i++ {
		s += math.Abs(a[i] - b[i])
	}
	return s / float64(n)
}

// RelativeError returns (a-b)/a, the paper's displacement-error criterion
// (equations 1-3). It returns NaN when a is 0.
func RelativeError(a, b float64) float64 {
	if a == 0 {
		return math.NaN()
	}
	return (a - b) / a
}

// Percentile returns the p-th percentile (0..100) of x by linear
// interpolation. x is not modified.
func Percentile(x []float64, p float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	s := Clone(x)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[n-1]
	}
	pos := p / 100 * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return s[n-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Summary bundles descriptive statistics of a series.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics of x.
func Summarize(x []float64) Summary {
	lo, hi := MinMax(x)
	return Summary{
		N:      len(x),
		Mean:   Mean(x),
		Std:    Std(x),
		Min:    lo,
		Max:    hi,
		Median: Median(x),
	}
}
