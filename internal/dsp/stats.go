package dsp

import "math"

// Elementary statistics used throughout the study harness: the evaluation
// correlates device and reference bioimpedance signals (Tables II-IV) and
// compares per-position means (Fig 8).

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the unbiased sample variance of x (0 for n < 2).
func Variance(x []float64) float64 {
	n := len(x)
	if n < 2 {
		return 0
	}
	m := Mean(x)
	s := 0.0
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(n-1)
}

// Std returns the unbiased sample standard deviation of x.
func Std(x []float64) float64 {
	return math.Sqrt(Variance(x))
}

// RMS returns the root-mean-square of x.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s / float64(len(x)))
}

// MinMax returns the minimum and maximum of x; it returns (0, 0) for an
// empty slice.
func MinMax(x []float64) (lo, hi float64) {
	if len(x) == 0 {
		return 0, 0
	}
	lo, hi = x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Median returns the median of x (0 for empty input). x is not modified.
func Median(x []float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	return MedianInPlace(Clone(x))
}

// MedianInPlace is Median reordering x in place: quickselect for the
// middle order statistic(s) instead of a full sort.
func MedianInPlace(x []float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	m := SelectKth(x, n/2)
	if n%2 == 1 {
		return m
	}
	// The (n/2-1)-th order statistic is the maximum of the left partition
	// SelectKth leaves behind.
	_, below := MinMax(x[:n/2])
	return (below + m) / 2
}

// Pearson returns the Pearson correlation coefficient between equal-length
// slices a and b. It returns 0 when either input is constant or empty.
func Pearson(a, b []float64) float64 {
	n := len(a)
	if n == 0 || n != len(b) {
		return 0
	}
	ma, mb := Mean(a), Mean(b)
	var sab, saa, sbb float64
	for i := 0; i < n; i++ {
		da := a[i] - ma
		db := b[i] - mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}

// RMSE returns the root-mean-square error between equal-length a and b.
func RMSE(a, b []float64) float64 {
	n := len(a)
	if n == 0 || n != len(b) {
		return 0
	}
	s := 0.0
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(n))
}

// MAE returns the mean absolute error between equal-length a and b.
func MAE(a, b []float64) float64 {
	n := len(a)
	if n == 0 || n != len(b) {
		return 0
	}
	s := 0.0
	for i := 0; i < n; i++ {
		s += math.Abs(a[i] - b[i])
	}
	return s / float64(n)
}

// RelativeError returns (a-b)/a, the paper's displacement-error criterion
// (equations 1-3). It returns NaN when a is 0.
func RelativeError(a, b float64) float64 {
	if a == 0 {
		return math.NaN()
	}
	return (a - b) / a
}

// Percentile returns the p-th percentile (0..100) of x by linear
// interpolation. x is not modified.
func Percentile(x []float64, p float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return PercentileInPlace(Clone(x), p)
}

// PercentileInPlace is Percentile reordering x in place, avoiding the
// defensive copy on hot per-beat paths. A percentile needs only two order
// statistics, so it runs on quickselect (expected O(n)) rather than a full
// sort; the value is identical to Percentile's.
func PercentileInPlace(x []float64, p float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		lo, _ := MinMax(x)
		return lo
	}
	if p >= 100 {
		_, hi := MinMax(x)
		return hi
	}
	pos := p / 100 * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	v1 := SelectKth(x, lo)
	if lo+1 >= n {
		return v1
	}
	if frac == 0 {
		return v1
	}
	// After SelectKth, x[lo+1:] holds only values >= v1, so the next
	// order statistic is its minimum.
	v2, _ := MinMax(x[lo+1:])
	return v1*(1-frac) + v2*frac
}

// SelectKth reorders x in place so that x[k] holds the k-th smallest
// value, everything before it is <= x[k] and everything after is >= x[k]
// (the nth_element contract), and returns x[k]. Expected O(n) via
// median-of-three quickselect with an insertion-sort tail.
func SelectKth(x []float64, k int) float64 {
	lo, hi := 0, len(x)-1
	for hi-lo > 12 {
		// Median-of-three pivot, stored at x[lo].
		mid := lo + (hi-lo)/2
		if x[mid] < x[lo] {
			x[mid], x[lo] = x[lo], x[mid]
		}
		if x[hi] < x[lo] {
			x[hi], x[lo] = x[lo], x[hi]
		}
		if x[hi] < x[mid] {
			x[hi], x[mid] = x[mid], x[hi]
		}
		x[lo], x[mid] = x[mid], x[lo]
		pivot := x[lo]
		// Hoare partition.
		i, j := lo, hi+1
		for {
			for {
				i++
				if i > hi || x[i] >= pivot {
					break
				}
			}
			for {
				j--
				if x[j] <= pivot {
					break
				}
			}
			if i >= j {
				break
			}
			x[i], x[j] = x[j], x[i]
		}
		x[lo], x[j] = x[j], x[lo]
		switch {
		case j == k:
			return x[k]
		case j < k:
			lo = j + 1
		default:
			hi = j - 1
		}
	}
	// Insertion sort the remaining small range: cheap, and it leaves the
	// full nth_element contract intact.
	for i := lo + 1; i <= hi; i++ {
		v := x[i]
		j := i - 1
		for j >= lo && x[j] > v {
			x[j+1] = x[j]
			j--
		}
		x[j+1] = v
	}
	return x[k]
}

// Summary bundles descriptive statistics of a series.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics of x.
func Summarize(x []float64) Summary {
	lo, hi := MinMax(x)
	return Summary{
		N:      len(x),
		Mean:   Mean(x),
		Std:    Std(x),
		Min:    lo,
		Max:    hi,
		Median: Median(x),
	}
}
