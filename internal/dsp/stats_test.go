package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanStdMedian(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(x); math.Abs(m-5) > 1e-12 {
		t.Errorf("mean = %g, want 5", m)
	}
	// Sample std with n-1: var = 32/7.
	if s := Std(x); math.Abs(s-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("std = %g", s)
	}
	if md := Median(x); md != 4.5 {
		t.Errorf("median = %g, want 4.5", md)
	}
	if md := Median([]float64{3, 1, 2}); md != 2 {
		t.Errorf("odd median = %g, want 2", md)
	}
	if Mean(nil) != 0 || Std(nil) != 0 || Median(nil) != 0 {
		t.Error("empty input should give 0")
	}
}

func TestPearsonKnownValues(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if r := Pearson(a, a); math.Abs(r-1) > 1e-12 {
		t.Errorf("self correlation = %g", r)
	}
	b := []float64{5, 4, 3, 2, 1}
	if r := Pearson(a, b); math.Abs(r+1) > 1e-12 {
		t.Errorf("anti correlation = %g", r)
	}
	c := []float64{1, 1, 1, 1, 1}
	if r := Pearson(a, c); r != 0 {
		t.Errorf("constant input correlation = %g, want 0", r)
	}
	if r := Pearson(a, []float64{1, 2}); r != 0 {
		t.Errorf("length mismatch should give 0, got %g", r)
	}
}

func TestPearsonAffineInvarianceProperty(t *testing.T) {
	f := func(seed int64, scaleRaw, offset float64) bool {
		scale := math.Abs(scaleRaw)
		if scale < 1e-6 || scale > 1e6 || math.Abs(offset) > 1e6 {
			return true // skip degenerate scales
		}
		r := rand.New(rand.NewSource(seed))
		a := randomSignal(r, 50)
		b := randomSignal(r, 50)
		r1 := Pearson(a, b)
		b2 := Offset(Scale(b, scale), offset)
		r2 := Pearson(a, b2)
		return math.Abs(r1-r2) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPearsonBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSignal(r, 30)
		b := randomSignal(r, 30)
		rho := Pearson(a, b)
		return rho >= -1-1e-12 && rho <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPearsonNoiseDegradation(t *testing.T) {
	// The calibration identity used by the study harness: for independent
	// noise, r ~= 1/sqrt(1 + sigma_n^2/sigma_s^2).
	r := rand.New(rand.NewSource(99))
	n := 40000
	s := make([]float64, n)
	for i := range s {
		s[i] = math.Sin(2 * math.Pi * float64(i) / 97)
	}
	sigmaS := Std(s)
	target := 0.9
	sigmaN := sigmaS * math.Sqrt(1/(target*target)-1)
	noisy := make([]float64, n)
	for i := range noisy {
		noisy[i] = s[i] + r.NormFloat64()*sigmaN
	}
	got := Pearson(s, noisy)
	if math.Abs(got-target) > 0.02 {
		t.Errorf("correlation = %g, want ~%g", got, target)
	}
}

func TestRelativeError(t *testing.T) {
	if e := RelativeError(10, 8); math.Abs(e-0.2) > 1e-12 {
		t.Errorf("e = %g, want 0.2", e)
	}
	if e := RelativeError(10, 12); math.Abs(e+0.2) > 1e-12 {
		t.Errorf("e = %g, want -0.2", e)
	}
	if !math.IsNaN(RelativeError(0, 1)) {
		t.Error("division by zero should be NaN")
	}
}

func TestRMSEAndMAE(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 3}
	if RMSE(a, b) != 0 || MAE(a, b) != 0 {
		t.Error("identical slices should give 0 error")
	}
	c := []float64{2, 3, 4}
	if got := RMSE(a, c); math.Abs(got-1) > 1e-12 {
		t.Errorf("RMSE = %g, want 1", got)
	}
	if got := MAE(a, c); math.Abs(got-1) > 1e-12 {
		t.Errorf("MAE = %g, want 1", got)
	}
}

func TestPercentile(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if p := Percentile(x, 0); p != 1 {
		t.Errorf("p0 = %g", p)
	}
	if p := Percentile(x, 100); p != 5 {
		t.Errorf("p100 = %g", p)
	}
	if p := Percentile(x, 50); p != 3 {
		t.Errorf("p50 = %g", p)
	}
	if p := Percentile(x, 25); p != 2 {
		t.Errorf("p25 = %g", p)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 || s.Median != 2.5 {
		t.Errorf("summary = %+v", s)
	}
}

func TestMinMaxRMS(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Errorf("minmax = %g, %g", lo, hi)
	}
	if r := RMS([]float64{3, 4}); math.Abs(r-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("rms = %g", r)
	}
}
