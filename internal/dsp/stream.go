package dsp

import "math"

// Streaming (stateful) counterparts of the batch kernels. The batch
// pipeline re-runs every filter over the whole rolling window on each
// hop; these kernels instead carry their state — delay lines, biquad
// registers, monotonic deques — across pushes, so conditioning costs
// O(1) per sample regardless of the analysis window. They are the
// foundation of the incremental streaming engine in internal/core.
//
// Conventions shared by every kernel:
//
//   - Push(dst, x) consumes the next chunk of the input stream and
//     appends the newly computable outputs to dst, returning the
//     extended slice. Output index t always corresponds to input index
//     t; a kernel that needs lookahead simply emits output t later.
//   - Flush(dst) ends the stream: it appends the outputs that were
//     waiting for future samples, using the same edge treatment as the
//     batch kernel.
//   - Lookahead reports how many future input samples the kernel needs
//     before it can emit output t (its pipeline latency in samples).
//   - Shift reports the morphological delay of the output waveform
//     relative to the input timeline (0 for aligned/zero-phase kernels,
//     the group delay for causal IIR kernels).
//   - Reset returns the kernel to its initial state without freeing
//     its buffers, so pooled engines can reuse it across sessions.
//   - Kernels are single-stream state machines: not safe for concurrent
//     use; use one instance per stream.

// Ring retains the most recent samples of a stream, addressed by
// absolute sample index. It backs the history-dependent streaming
// stages (R-peak refinement, beat delineation) with O(1) memory.
//
// Aliasing invariant: r.buf is allocated once and never reallocated or
// resized, so the power-of-two index masking in At/CopyTo/ArgMax always
// lands inside the same backing array for the life of the ring; Reset
// rewinds the logical stream without touching the storage, which is
// what lets pooled engines hand rings across sessions while old
// absolute indices go stale rather than dangle. Any future widening of
// this contract — e.g. unsafe reinterpretation of the ring storage as
// raw bytes for WAL spills — is confined to this file: it is one of the
// two files on the unsafeguard analyzer's safelist, and the invariant
// it would lean on (stable, never-reallocated backing array) is the one
// stated here.
type Ring struct {
	buf  []float64
	mask int
	n    int // total samples pushed
}

// NewRing returns a ring that retains at least capacity samples
// (rounded up to a power of two).
func NewRing(capacity int) *Ring {
	if capacity < 2 {
		capacity = 2
	}
	size := NextPow2(capacity)
	return &Ring{buf: make([]float64, size), mask: size - 1}
}

// Push appends one sample.
func (r *Ring) Push(v float64) {
	r.buf[r.n&r.mask] = v
	r.n++
}

// Append appends a chunk with at most two bulk copies per ring lap.
func (r *Ring) Append(xs []float64) {
	for len(xs) > 0 {
		p := r.n & r.mask
		n := copy(r.buf[p:], xs)
		r.n += n
		xs = xs[n:]
	}
}

// N returns the total number of samples pushed so far.
func (r *Ring) N() int { return r.n }

// Start returns the oldest absolute index still retained.
func (r *Ring) Start() int {
	s := r.n - len(r.buf)
	if s < 0 {
		s = 0
	}
	return s
}

// At returns the sample at absolute index i, which must be in
// [Start(), N()).
func (r *Ring) At(i int) float64 { return r.buf[i&r.mask] }

// CopyTo appends the samples of [lo, hi) to dst with at most two bulk
// copies. The range must be retained.
func (r *Ring) CopyTo(dst []float64, lo, hi int) []float64 {
	for lo < hi {
		p := lo & r.mask
		end := p + (hi - lo)
		if end > len(r.buf) {
			end = len(r.buf)
		}
		dst = append(dst, r.buf[p:end]...)
		lo += end - p
	}
	return dst
}

// ArgMax returns the absolute index of the maximum over [lo, hi)
// clamped to the retained window, mirroring dsp.ArgMax's clamp-to-signal
// semantics for a stream whose ring covers the requested range; it
// returns -1 for an empty range.
func (r *Ring) ArgMax(lo, hi int) int {
	lo = ClampInt(lo, r.Start(), r.n)
	hi = ClampInt(hi, r.Start(), r.n)
	if lo >= hi {
		return -1
	}
	best := lo
	for i := lo + 1; i < hi; i++ {
		if r.buf[i&r.mask] > r.buf[best&r.mask] {
			best = i
		}
	}
	return best
}

// Reset forgets all samples, keeping the allocation.
func (r *Ring) Reset() { r.n = 0 }

// FIRStream applies an FIR filter one sample at a time, carrying the
// delay line across pushes. The alignment of the emitted outputs is
// controlled at construction:
//
//   - NewFIRStream: plain causal filtering (y[t] = sum h[j] x[t-j]),
//     matching FIR.ApplyCausal. Lookahead 0.
//   - NewFIRSameStream: centered "same" convolution with zero padding,
//     matching FIR.ApplyTo / Apply sample for sample. Lookahead (k-1)/2.
//   - NewZeroPhaseFIRStream: the forward-backward (zero-phase) response
//     of FiltFiltFIR, computed causally through the squared kernel
//     h*reverse(h) with the same odd-reflection edge treatment, so the
//     streamed output matches dsp.FiltFiltFIR exactly on the full
//     signal. Lookahead k-1 (direct engine).
//
// Wide kernels switch the inner engine from the direct valid-mode
// correlation to block-carried overlap-save on the packed real-input
// FFT (see osState); the engine choice never affects WHICH outputs a
// push emits being a pure function of the cumulative sample count, so
// every chunking of a stream — including 1-sample pushes — produces a
// bit-identical output sequence.
type FIRStream struct {
	taps []float64 // effective kernel
	rev  []float64 // kernel reversed, for the valid-mode correlation
	hist []float64 // the last k-1 fed samples (zero-initialized)
	work []float64 // scratch: hist ++ chunk, reused across pushes

	skip    int       // leading raw outputs dropped (alignment)
	tailN   int       // trailing outputs recovered by Flush
	reflect int       // odd-reflection preamble/postamble length (0 = zero pad)
	pre     []float64 // first samples buffered until the preamble is known
	preNeed int
	primed  bool

	fed int // samples fed through the filter (including synthetic ones)

	os *osState // overlap-save engine for wide kernels (nil = direct)
}

// osState is the streaming overlap-save engine: a carry buffer holding
// the k-1 sample overlap followed by the pending (not yet transformed)
// input, processed one fixed-size block at a time on an ABSOLUTE block
// grid — block b always covers raw output indices [b*step, (b+1)*step),
// regardless of how the input was chunked. A block runs exactly when
// its last input sample arrives, so which block computes a given output
// (and hence its floating-point value) is a pure function of the
// cumulative input count: chunk boundaries cannot perturb the stream.
// The final partial block (run by Flush) zero-pads the unfilled tail,
// which is exact for the outputs it emits — a causal convolution output
// never reads past its own index.
type osState struct {
	fftN int          // real block length
	half int          // fftN/2: complex transform size
	step int          // fresh outputs per block: fftN - (k-1)
	km1  int          // len(taps) - 1
	h    []complex128 // tap half-spectrum, inverse normalization folded in
	w    []complex128 // butterfly twiddles for the half-size FFT
	wr   []complex128 // split twiddles exp(-2*pi*i*k/fftN)
	blk  []complex128 // half-size block workspace

	carry []float64 // fftN: [0,km1) overlap, [km1,km1+pend) pending input
	pend  int       // pending samples not yet transformed
	base  int       // raw output index of the next block's first output
}

// enableOS switches the stream's inner engine to overlap-save. Must be
// called at construction time, before any samples are pushed.
func (s *FIRStream) enableOS() {
	k := len(s.taps)
	fftN := streamFFTSizeForTaps(k)
	rp, _ := NewRFFTPlan(fftN) // power of two by construction
	o := &osState{
		fftN:  fftN,
		half:  fftN / 2,
		step:  fftN - (k - 1),
		km1:   k - 1,
		h:     make([]complex128, fftN/2+1),
		blk:   make([]complex128, fftN/2),
		w:     rp.w,
		wr:    rp.wr,
		carry: make([]float64, fftN),
	}
	padded := make([]float64, fftN)
	copy(padded, s.taps)
	rp.Forward(o.h, padded)
	inv := 1 / float64(o.half)
	for i := range o.h {
		o.h[i] = scaleC(o.h[i], inv)
	}
	s.os = o
}

// NewFIRStream returns the causal streaming form of f.
func NewFIRStream(f *FIR) *FIRStream { return newFIRStream(f.Taps, 0, 0, 0) }

// NewFIRSameStream returns the streaming form of the centered
// zero-padded convolution FIR.Apply; output t is emitted once input
// t+(k-1)/2 has arrived.
func NewFIRSameStream(f *FIR) *FIRStream {
	k := len(f.Taps)
	return newFIRStream(f.Taps, (k-1)/2, (k-1)/2, 0)
}

// NewZeroPhaseFIRStream returns a streaming filter whose output equals
// dsp.FiltFiltFIR(f, x) exactly: the causal squared kernel delayed by
// k-1 samples, with the batch path's odd-reflection padding synthesized
// at the stream edges. Output t is emitted once input t+k-1 has arrived.
func NewZeroPhaseFIRStream(f *FIR) *FIRStream {
	s := newZeroPhaseFIRStream(f)
	if useFFTStream(len(s.taps)) {
		s.enableOS()
	}
	return s
}

// NewZeroPhaseFIRStreamDirect is NewZeroPhaseFIRStream pinned to the
// direct (per-sample recurrence) engine regardless of kernel width: the
// MCU deployment profile (no FFT working set, see core's RAM model) and
// the -direct-fir A/B baseline in cmd/icgstream.
func NewZeroPhaseFIRStreamDirect(f *FIR) *FIRStream {
	return newZeroPhaseFIRStream(f)
}

func newZeroPhaseFIRStream(f *FIR) *FIRStream {
	h := f.Taps
	k := len(h)
	// g = h convolved with reverse(h): the zero-phase composite kernel.
	g := make([]float64, 2*k-1)
	for i, a := range h {
		for j, b := range h {
			g[i+(k-1-j)] += a * b
		}
	}
	return newFIRStream(g, 2*(k-1), k-1, k-1)
}

func newFIRStream(taps []float64, skip, tail, reflect int) *FIRStream {
	k := len(taps)
	rev := make([]float64, k)
	for i, t := range taps {
		rev[k-1-i] = t
	}
	s := &FIRStream{
		taps:    taps,
		rev:     rev,
		hist:    make([]float64, k-1),
		skip:    skip,
		tailN:   tail,
		reflect: reflect,
		preNeed: reflect + 1,
	}
	if reflect == 0 {
		s.primed = true
	}
	return s
}

// Lookahead returns the number of future input samples needed before
// output t can be emitted. The overlap-save engine emits in blocks, so
// its worst-case lag adds the block advance: output t waits for its
// block's last input, up to step-1 samples past the direct engine's
// requirement.
func (s *FIRStream) Lookahead() int {
	if s.os != nil {
		la := s.os.step + s.skip - s.reflect - 1
		if la > s.tailN {
			return la
		}
	}
	return s.tailN
}

// Shift returns 0: every FIRStream alignment emits outputs on the input
// timeline (causal alignment included — its group delay is compensated
// by the caller's choice of constructor).
func (s *FIRStream) Shift() int { return 0 }

// run feeds a batch of samples through the filter: a linear work buffer
// (the k-1 sample history followed by the chunk) turns the delay line
// into valid-mode correlations over contiguous memory, which the
// four-accumulator dot product chews through at full speed.
func (s *FIRStream) run(dst []float64, xs []float64) []float64 {
	m := len(xs)
	if m == 0 {
		return dst
	}
	if s.os != nil {
		return s.osRun(dst, xs)
	}
	k := len(s.rev)
	s.work = append(append(s.work[:0], s.hist...), xs...)
	start := 0
	if s.fed < s.skip {
		start = s.skip - s.fed
		if start > m {
			start = m
		}
	}
	base := len(dst)
	mm := m - start
	if cap(dst)-base < mm {
		grown := make([]float64, base, base+mm+base/2)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:base+mm]
	convSeqInto(dst[base:], s.rev, s.work[start:])
	s.fed += m
	s.hist = append(s.hist[:0], s.work[len(s.work)-(k-1):]...)
	return dst
}

// osRun feeds samples into the overlap-save carry buffer, running one
// block each time step pending samples have accumulated. Raw output
// index == raw input index (causal alignment), so the absolute block
// grid is a pure function of the cumulative fed count.
func (s *FIRStream) osRun(dst []float64, xs []float64) []float64 {
	o := s.os
	for len(xs) > 0 {
		n := copy(o.carry[o.km1+o.pend:], xs)
		o.pend += n
		xs = xs[n:]
		s.fed += n
		if o.pend == o.step {
			dst = s.osBlock(dst, o.step)
			// Slide: the block's last km1 inputs become the next overlap.
			copy(o.carry[:o.km1], o.carry[o.step:])
			o.base += o.step
			o.pend = 0
		}
	}
	return dst
}

// osBlock transforms the current carry block and appends its first
// emitN fresh outputs (raw indices [base, base+emitN)), dropping those
// below the alignment skip. The carry buffer is left untouched.
func (s *FIRStream) osBlock(dst []float64, emitN int) []float64 {
	o := s.os
	blk := o.blk
	carry := o.carry
	for c := range blk {
		blk[c] = complex(carry[2*c], carry[2*c+1])
	}
	fftWith(blk, o.w)
	mulSpectrumPacked(blk, o.h, o.wr, o.half)
	ifftNoScale(blk, o.w)
	lo := o.base
	if lo < s.skip {
		lo = s.skip
	}
	cnt := o.base + emitN - lo
	if cnt <= 0 {
		return dst
	}
	base := len(dst)
	if cap(dst)-base < cnt {
		grown := make([]float64, base, base+cnt+base/2)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:base+cnt]
	out := dst[base:]
	// Valid outputs sit at real block positions [km1, fftN); unpack the
	// complex pairs for raw indices [lo, lo+cnt).
	p := o.km1 + (lo - o.base)
	t := 0
	if p&1 == 1 {
		out[0] = imag(blk[p>>1])
		t = 1
	}
	for ; t+1 < cnt; t += 2 {
		c := blk[(p+t)>>1]
		out[t] = real(c)
		out[t+1] = imag(c)
	}
	if t < cnt {
		out[t] = real(blk[(p+t)>>1])
	}
	return dst
}

// convSeqInto computes out[t] = sum_j rev[j]*w[t+j] for every t. Outputs
// run four at a time so each tap is loaded once per group instead of once
// per output; the trailing <4 outputs use the scalar dotSeq. Both paths
// accumulate each output in the same two-lane order (even taps, odd taps,
// then one combine), so a given output's value is bit-identical no matter
// which path produced it — chunk boundaries cannot perturb the stream.
func convSeqInto(out, rev, w []float64) {
	k := len(rev)
	n4 := len(out) &^ 3
	for t := 0; t < n4; t += 4 {
		ww := w[t : t+k+3]
		var a0, b0, a1, b1, a2, b2, a3, b3 float64
		j := 0
		for ; j+2 <= k; j += 2 {
			h0, h1 := rev[j], rev[j+1]
			w0, w1, w2, w3, w4 := ww[j], ww[j+1], ww[j+2], ww[j+3], ww[j+4]
			a0 += h0 * w0
			b0 += h1 * w1
			a1 += h0 * w1
			b1 += h1 * w2
			a2 += h0 * w2
			b2 += h1 * w3
			a3 += h0 * w3
			b3 += h1 * w4
		}
		if j < k {
			h := rev[j]
			a0 += h * ww[j]
			a1 += h * ww[j+1]
			a2 += h * ww[j+2]
			a3 += h * ww[j+3]
		}
		out[t] = a0 + b0
		out[t+1] = a1 + b1
		out[t+2] = a2 + b2
		out[t+3] = a3 + b3
	}
	for t := n4; t < len(out); t++ {
		out[t] = dotSeq(rev, w[t:t+k])
	}
}

// dotSeq is the scalar counterpart of convSeqInto's group kernel: even
// taps into one accumulator, odd taps into another, one final combine —
// the exact accumulation order each grouped output uses.
func dotSeq(rev, w []float64) float64 {
	var a, b float64
	j := 0
	for ; j+2 <= len(rev); j += 2 {
		a += rev[j] * w[j]
		b += rev[j+1] * w[j+1]
	}
	if j < len(rev) {
		a += rev[j] * w[j]
	}
	return a + b
}

// Push consumes a chunk and appends the newly computable outputs to dst.
func (s *FIRStream) Push(dst, x []float64) []float64 {
	if s.primed {
		return s.run(dst, x)
	}
	for len(x) > 0 && !s.primed {
		take := s.preNeed - len(s.pre)
		if take > len(x) {
			take = len(x)
		}
		s.pre = append(s.pre, x[:take]...)
		x = x[take:]
		if len(s.pre) < s.preNeed {
			return dst
		}
		// Synthesize the odd-reflection preamble ext[-reflect..-1]
		// (ext[-i] = 2 x[0] - x[i]) and run it plus the buffered head.
		pre := make([]float64, s.reflect)
		for i := 1; i <= s.reflect; i++ {
			pre[s.reflect-i] = 2*s.pre[0] - s.pre[i]
		}
		dst = s.run(dst, pre)
		dst = s.run(dst, s.pre)
		s.primed = true
	}
	return s.run(dst, x)
}

// Flush ends the stream, appending the outputs that were waiting on
// future samples using the batch kernel's edge treatment (odd
// reflection for the zero-phase alignment, zero padding otherwise).
func (s *FIRStream) Flush(dst []float64) []float64 {
	if !s.primed {
		// Degenerate stream shorter than the reflection preamble (only
		// possible for the zero-phase alignment): approximate with the
		// centered squared kernel on the buffered head.
		if len(s.pre) == 0 {
			return dst
		}
		f := &FIR{Taps: s.taps}
		y := f.Apply(s.pre)
		return append(dst, y...)
	}
	if s.tailN == 0 {
		return dst
	}
	post := make([]float64, s.tailN)
	if s.reflect > 0 {
		// ext[n+i] = 2 x[n-1] - x[n-2-i]; the raw tail is the history
		// buffer's suffix. Under overlap-save the last k-1 fed samples
		// live in the carry buffer (overlap ++ pending, both zero-backed
		// at the stream start, exactly like hist).
		h := s.hist
		if o := s.os; o != nil {
			h = o.carry[o.pend : o.pend+o.km1]
		}
		last := h[len(h)-1]
		for i := 0; i < s.tailN; i++ {
			post[i] = 2*last - h[len(h)-2-i]
		}
	}
	dst = s.run(dst, post)
	if o := s.os; o != nil && o.pend > 0 {
		// Final partial block: zero-pad the unfilled tail (exact for the
		// pend outputs emitted — causal outputs never read past their own
		// index) and emit the stragglers.
		for i := o.km1 + o.pend; i < len(o.carry); i++ {
			o.carry[i] = 0
		}
		dst = s.osBlock(dst, o.pend)
		o.base += o.pend
		o.pend = 0
	}
	return dst
}

// Reset returns the stream to its initial state.
func (s *FIRStream) Reset() {
	s.fed = 0
	s.pre = s.pre[:0]
	s.primed = s.reflect == 0
	for i := range s.hist {
		s.hist[i] = 0
	}
	if o := s.os; o != nil {
		for i := range o.carry {
			o.carry[i] = 0
		}
		o.pend = 0
		o.base = 0
	}
}

// SOSStream applies a biquad cascade causally one sample at a time with
// persistent direct-form-II-transposed registers, matching SOS.Filter /
// SOS.FilterTo sample for sample when started from the zero state.
//
// With prime enabled, the registers are initialized on the first sample
// to the steady state of a constant input (the lfilter_zi treatment),
// which suppresses the start-up transient of the causal pass; shift
// records the cascade's in-band group delay so downstream consumers can
// re-align the output waveform with the input timeline.
type SOSStream struct {
	sos    SOS
	z1, z2 []float64
	prime  bool
	shift  int
	n      int
}

// NewSOSStream returns the causal streaming form of s. shift is the
// morphological delay (samples) the caller wants reported by Shift —
// use s.GroupDelaySamples at the band of interest, or 0 when the
// output is consumed as-is.
func NewSOSStream(s SOS, shift int, prime bool) *SOSStream {
	return &SOSStream{sos: s, z1: make([]float64, len(s)), z2: make([]float64, len(s)), prime: prime, shift: shift}
}

// Lookahead returns 0: a causal IIR emits output t at input t.
func (s *SOSStream) Lookahead() int { return 0 }

// Shift returns the declared group delay of the cascade in samples.
func (s *SOSStream) Shift() int { return s.shift }

// PushSample advances the cascade by one sample.
func (s *SOSStream) PushSample(v float64) float64 {
	if s.n == 0 && s.prime {
		u := v
		for i, bq := range s.sos {
			zi1, zi2 := biquadZi(bq)
			s.z1[i], s.z2[i] = zi1*u, zi2*u
			// A constant u produces u*Gdc from the first sample with the
			// zi state; propagate the level to the next section.
			den := 1 + bq.A1 + bq.A2
			if den != 0 {
				u *= (bq.B0 + bq.B1 + bq.B2) / den
			}
		}
	}
	s.n++
	for i, bq := range s.sos {
		out := bq.B0*v + s.z1[i]
		s.z1[i] = bq.B1*v - bq.A1*out + s.z2[i]
		s.z2[i] = bq.B2*v - bq.A2*out
		v = out
	}
	return v
}

// Push consumes a chunk and appends the filtered samples to dst.
func (s *SOSStream) Push(dst, x []float64) []float64 {
	if len(x) == 0 {
		return dst
	}
	// The zi priming on the very first sample touches every section at
	// once; route it through PushSample, then run the pipelined kernels
	// with the persistent registers for the rest of the chunk.
	if s.n == 0 && s.prime {
		dst = append(dst, s.PushSample(x[0]))
		x = x[1:]
		if len(x) == 0 {
			return dst
		}
	}
	base := len(dst)
	dst = append(dst, x...)
	out := dst[base:]
	sosPipeRun(out, out, s.sos, s.z1, s.z2, false)
	s.n += len(x)
	return dst
}

// Flush is a no-op for a causal IIR: there is no pending output.
func (s *SOSStream) Flush(dst []float64) []float64 { return dst }

// Reset zeroes the filter registers.
func (s *SOSStream) Reset() {
	s.n = 0
	for i := range s.z1 {
		s.z1[i], s.z2[i] = 0, 0
	}
}

// GroupDelaySamples estimates the cascade's group delay at frequency f
// (Hz) for sampling rate fs, in samples, by numeric differentiation of
// the unwrapped phase response. Streaming consumers round it to an
// integer shift to re-align causally filtered waveforms with the input
// timeline.
func (s SOS) GroupDelaySamples(f, fs float64) float64 {
	const dfRel = 1e-3
	df := f * dfRel
	if df == 0 {
		df = 1e-6 * fs
	}
	p1 := s.phaseAt(f-df, fs)
	p2 := s.phaseAt(f+df, fs)
	dphi := p2 - p1
	// The two phases are evaluated close together; fold the difference
	// into (-pi, pi] to avoid wrap artifacts.
	for dphi > math.Pi {
		dphi -= 2 * math.Pi
	}
	for dphi <= -math.Pi {
		dphi += 2 * math.Pi
	}
	dw := 2 * math.Pi * (2 * df) / fs // rad/sample
	return -dphi / dw
}

// phaseAt returns the phase of the cascade's frequency response at f.
func (s SOS) phaseAt(f, fs float64) float64 {
	w := 2 * math.Pi * f / fs
	re, im := 1.0, 0.0
	c1, s1 := math.Cos(w), -math.Sin(w)
	c2, s2 := math.Cos(2*w), -math.Sin(2*w)
	for _, bq := range s {
		nr := bq.B0 + bq.B1*c1 + bq.B2*c2
		ni := bq.B1*s1 + bq.B2*s2
		dr := 1 + bq.A1*c1 + bq.A2*c2
		di := bq.A1*s1 + bq.A2*s2
		// (nr + i ni) / (dr + i di)
		den := dr*dr + di*di
		hr := (nr*dr + ni*di) / den
		hi := (ni*dr - nr*di) / den
		re, im = re*hr-im*hi, re*hi+im*hr
	}
	return math.Atan2(im, re)
}

// DerivStream is the streaming form of DerivativeTo scaled by gain:
// central differences in the interior with one-sided differences at the
// stream edges. With gain = -1 it computes the ICG derivation
// ICG = -dZ/dt exactly as bioimp.ICGFromZ does. Lookahead 1.
type DerivStream struct {
	fs, gain float64
	x1, x2   float64 // last two inputs (x1 most recent)
	n        int
}

// NewDerivStream returns a streaming derivative at sampling rate fs
// with output scaled by gain.
func NewDerivStream(fs, gain float64) *DerivStream {
	return &DerivStream{fs: fs, gain: gain}
}

// Lookahead returns 1 (the central difference needs the next sample).
func (s *DerivStream) Lookahead() int { return 1 }

// Shift returns 0 (central differences are aligned).
func (s *DerivStream) Shift() int { return 0 }

// Push consumes a chunk and appends the computable derivatives to dst.
func (s *DerivStream) Push(dst, x []float64) []float64 {
	i := 0
	if s.n == 0 && i < len(x) {
		s.x1 = x[i]
		s.n++
		i++
	}
	if s.n == 1 && i < len(x) {
		// First output: forward difference.
		dst = append(dst, s.gain*(x[i]-s.x1)*s.fs)
		s.x2, s.x1 = s.x1, x[i]
		s.n++
		i++
	}
	// Interior: central differences in a branch-free loop.
	half := s.gain * s.fs / 2
	p2, p1 := s.x2, s.x1
	s.n += len(x) - i
	for ; i < len(x); i++ {
		v := x[i]
		dst = append(dst, (v-p2)*half)
		p2, p1 = p1, v
	}
	s.x2, s.x1 = p2, p1
	return dst
}

// Flush appends the final one-sided difference.
func (s *DerivStream) Flush(dst []float64) []float64 {
	switch s.n {
	case 0:
		return dst
	case 1:
		return append(dst, 0)
	}
	return append(dst, s.gain*(s.x1-s.x2)*s.fs)
}

// Reset returns the stream to its initial state.
func (s *DerivStream) Reset() { s.n = 0; s.x1, s.x2 = 0, 0 }

// MovExtStream is the streaming sliding-window extremum (flat erosion or
// dilation): output t is the min or max of the inputs in
// [t-left, t+right] clamped to the stream, exactly matching the batch
// monotonic-deque engine (dsp.Erode / dsp.Dilate) including its edge
// clamping. Amortized O(1) per sample; lookahead right.
type MovExtStream struct {
	left, right int
	min         bool

	// Monotonic deque carrying (index, value) pairs in parallel rings,
	// so neither admission nor emission chases a second buffer.
	idx              []int
	val              []float64
	mask             int
	head, tail, size int

	in, out int
}

// NewMovExtStream returns a streaming sliding extremum over windows
// [t-left, t+right]; min selects erosion, otherwise dilation.
func NewMovExtStream(left, right int, min bool) *MovExtStream {
	size := NextPow2(left + right + 2)
	return &MovExtStream{
		left: left, right: right, min: min,
		idx: make([]int, size), val: make([]float64, size), mask: size - 1,
	}
}

// Lookahead returns the window's right extent.
func (s *MovExtStream) Lookahead() int { return s.right }

// Shift returns 0 (the window is centered by construction).
func (s *MovExtStream) Shift() int { return 0 }

func (s *MovExtStream) admit(v float64) {
	if s.min {
		for s.size > 0 && v <= s.val[(s.tail-1)&s.mask] {
			s.tail = (s.tail - 1) & s.mask
			s.size--
		}
	} else {
		for s.size > 0 && v >= s.val[(s.tail-1)&s.mask] {
			s.tail = (s.tail - 1) & s.mask
			s.size--
		}
	}
	s.idx[s.tail] = s.in
	s.val[s.tail] = v
	s.tail = (s.tail + 1) & s.mask
	s.size++
	s.in++
}

func (s *MovExtStream) emit(dst []float64) []float64 {
	lo := s.out - s.left
	for s.size > 0 && s.idx[s.head] < lo {
		s.head = (s.head + 1) & s.mask
		s.size--
	}
	s.out++
	return append(dst, s.val[s.head])
}

// Push consumes a chunk and appends the outputs whose full (clamped)
// window has arrived. The deque state lives in locals for the whole
// chunk — the admit/emit helpers reload their fields through the
// pointer on every call, which costs ~30% of the cascade's time at
// this call rate — with the exact same operation sequence.
func (s *MovExtStream) Push(dst, x []float64) []float64 {
	idx, val, mask := s.idx, s.val, s.mask
	head, tail, size := s.head, s.tail, s.size
	in, out := s.in, s.out
	for _, v := range x {
		if s.min {
			for size > 0 && v <= val[(tail-1)&mask] {
				tail = (tail - 1) & mask
				size--
			}
		} else {
			for size > 0 && v >= val[(tail-1)&mask] {
				tail = (tail - 1) & mask
				size--
			}
		}
		idx[tail] = in
		val[tail] = v
		tail = (tail + 1) & mask
		size++
		in++
		for out+s.right < in {
			lo := out - s.left
			for size > 0 && idx[head] < lo {
				head = (head + 1) & mask
				size--
			}
			out++
			dst = append(dst, val[head])
		}
	}
	s.head, s.tail, s.size = head, tail, size
	s.in, s.out = in, out
	return dst
}

// Flush appends the trailing outputs, whose windows clamp at the
// stream's end.
func (s *MovExtStream) Flush(dst []float64) []float64 {
	for s.out < s.in {
		dst = s.emit(dst)
	}
	return dst
}

// Reset returns the stream to its initial state.
func (s *MovExtStream) Reset() {
	s.head, s.tail, s.size = 0, 0, 0
	s.in, s.out = 0, 0
}
