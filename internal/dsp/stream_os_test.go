package dsp

import (
	"math"
	"testing"
)

// The streaming overlap-save engine must (1) engage for the paper's
// 65-tap zero-phase ECG composite, (2) stay BIT-identical across every
// chunking of the same stream — the absolute block grid makes the block
// that computes a given output a pure function of the cumulative sample
// count — and (3) agree with both the direct streaming engine and the
// batch forward-backward filter to FFT rounding (~1e-12), the same
// relationship FIR.ApplyFFT has to ApplyDirect.

func TestZeroPhaseFIRStreamOverlapSaveEngages(t *testing.T) {
	f, err := DesignBandPass(32, 0.05, 40, 250, WindowHamming)
	if err != nil {
		t.Fatal(err)
	}
	if s := NewZeroPhaseFIRStream(f); s.os == nil {
		t.Fatalf("65-tap composite kernel did not engage overlap-save")
	}
	if s := NewZeroPhaseFIRStreamDirect(f); s.os != nil {
		t.Fatalf("Direct constructor engaged overlap-save")
	}
	// Narrow kernels stay on the direct engine: the 9-tap design's
	// 17-tap composite is far below the crossover.
	nf, err := DesignLowPass(8, 30, 250, WindowHamming)
	if err != nil {
		t.Fatal(err)
	}
	if s := NewZeroPhaseFIRStream(nf); s.os != nil {
		t.Fatalf("17-tap composite kernel engaged overlap-save")
	}
}

func TestZeroPhaseFIRStreamOverlapSaveChunkInvariantBitwise(t *testing.T) {
	f, err := DesignBandPass(32, 0.05, 40, 250, WindowHamming)
	if err != nil {
		t.Fatal(err)
	}
	// Lengths chosen to leave every flavor of final partial block: less
	// than one block, exactly block-aligned, one sample past a block
	// boundary, and a long stream; 33 is the priming threshold itself.
	for _, n := range []int{33, 40, 192, 255, 256, 257, 448, 449, 1500, 7500} {
		x := randSignal(n, int64(n))
		s := NewZeroPhaseFIRStream(f)
		if s.os == nil {
			t.Fatal("overlap-save not engaged")
		}
		ref := pushChunked(t, n, n, s.Push, s.Flush, x)
		if len(ref) != n {
			t.Fatalf("n=%d: %d outputs from whole-stream push", n, len(ref))
		}
		for _, chunk := range chunkSizes {
			s.Reset()
			got := pushChunked(t, n, chunk, s.Push, s.Flush, x)
			if len(got) != n {
				t.Fatalf("n=%d chunk %d: %d outputs", n, chunk, len(got))
			}
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
					t.Fatalf("n=%d chunk %d: output %d differs: %g vs %g", n, chunk, i, got[i], ref[i])
				}
			}
		}
	}
}

func TestZeroPhaseFIRStreamOverlapSaveMatchesDirect(t *testing.T) {
	f, err := DesignBandPass(32, 0.05, 40, 250, WindowHamming)
	if err != nil {
		t.Fatal(err)
	}
	x := randSignal(3000, 11)
	sd := NewZeroPhaseFIRStreamDirect(f)
	want := pushChunked(t, len(x), 250, sd.Push, sd.Flush, x)
	so := NewZeroPhaseFIRStream(f)
	got := pushChunked(t, len(x), 250, so.Push, so.Flush, x)
	if len(got) != len(want) {
		t.Fatalf("%d outputs, want %d", len(got), len(want))
	}
	if d := maxAbsDiff(got, want); d > 1e-9 {
		t.Errorf("overlap-save vs direct: max diff %g", d)
	}
	// Both engines must also report a Lookahead that bounds their true
	// worst-case emission lag over a 1-sample-push stream.
	for _, s := range []*FIRStream{NewZeroPhaseFIRStream(f), NewZeroPhaseFIRStreamDirect(f)} {
		la := s.Lookahead()
		emitted := 0
		for i := 0; i < 1200; i++ {
			out := s.Push(nil, x[i:i+1])
			emitted += len(out)
			if need := i + 1 - la; emitted < need {
				t.Fatalf("after input %d only %d outputs emitted; Lookahead %d promises >= %d", i, emitted, la, need)
			}
		}
	}
}
