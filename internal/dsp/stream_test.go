package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// chunkings exercised by every streaming-parity test, including the
// worst case of 1-sample pushes.
var chunkSizes = []int{1, 3, 17, 250, 4096}

func pushChunked(t *testing.T, n, chunk int, push func(dst, x []float64) []float64, flush func(dst []float64) []float64, x []float64) []float64 {
	t.Helper()
	var out []float64
	for pos := 0; pos < n; pos += chunk {
		end := pos + chunk
		if end > n {
			end = n
		}
		out = push(out, x[pos:end])
	}
	return flush(out)
}

func randSignal(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	phase := 0.0
	for i := range x {
		phase += 0.02 + 0.01*rng.Float64()
		x[i] = math.Sin(phase) + 0.3*rng.NormFloat64() + 0.2
	}
	return x
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

func TestFIRStreamCausalMatchesBatch(t *testing.T) {
	f, err := DesignBandPass(32, 0.05, 40, 250, WindowHamming)
	if err != nil {
		t.Fatal(err)
	}
	x := randSignal(1200, 1)
	want := f.ApplyCausal(x)
	for _, chunk := range chunkSizes {
		s := NewFIRStream(f)
		got := pushChunked(t, len(x), chunk, s.Push, s.Flush, x)
		if len(got) != len(want) {
			t.Fatalf("chunk %d: %d outputs, want %d", chunk, len(got), len(want))
		}
		if d := maxAbsDiff(got, want); d > 1e-12 {
			t.Errorf("chunk %d: max diff %g", chunk, d)
		}
	}
}

func TestFIRStreamSameMatchesBatch(t *testing.T) {
	f, err := DesignLowPass(24, 20, 250, WindowHamming)
	if err != nil {
		t.Fatal(err)
	}
	x := randSignal(900, 2)
	want := f.Apply(x)
	for _, chunk := range chunkSizes {
		s := NewFIRSameStream(f)
		got := pushChunked(t, len(x), chunk, s.Push, s.Flush, x)
		if len(got) != len(want) {
			t.Fatalf("chunk %d: %d outputs, want %d", chunk, len(got), len(want))
		}
		if d := maxAbsDiff(got, want); d > 1e-12 {
			t.Errorf("chunk %d: max diff %g", chunk, d)
		}
	}
}

func TestZeroPhaseFIRStreamMatchesFiltFilt(t *testing.T) {
	f, err := DesignBandPass(32, 0.05, 40, 250, WindowHamming)
	if err != nil {
		t.Fatal(err)
	}
	x := randSignal(1500, 3)
	want := FiltFiltFIR(f, x)
	for _, chunk := range chunkSizes {
		s := NewZeroPhaseFIRStream(f)
		got := pushChunked(t, len(x), chunk, s.Push, s.Flush, x)
		if len(got) != len(want) {
			t.Fatalf("chunk %d: %d outputs, want %d", chunk, len(got), len(want))
		}
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Errorf("chunk %d: max diff %g", chunk, d)
		}
	}
	// Reset reuses the stream for a second identical pass.
	s := NewZeroPhaseFIRStream(f)
	_ = pushChunked(t, len(x), 7, s.Push, s.Flush, x)
	s.Reset()
	got := pushChunked(t, len(x), 7, s.Push, s.Flush, x)
	if d := maxAbsDiff(got, want); d > 1e-9 {
		t.Errorf("after Reset: max diff %g", d)
	}
}

func TestSOSStreamMatchesFilter(t *testing.T) {
	sos, err := DesignButterLowPass(4, 20, 250)
	if err != nil {
		t.Fatal(err)
	}
	x := randSignal(1000, 4)
	want := sos.Filter(x)
	for _, chunk := range chunkSizes {
		s := NewSOSStream(sos, 0, false)
		got := pushChunked(t, len(x), chunk, s.Push, s.Flush, x)
		if len(got) != len(want) {
			t.Fatalf("chunk %d: %d outputs, want %d", chunk, len(got), len(want))
		}
		if d := maxAbsDiff(got, want); d > 1e-12 {
			t.Errorf("chunk %d: max diff %g", chunk, d)
		}
	}
}

func TestSOSStreamPrimeSuppressesTransient(t *testing.T) {
	sos, err := DesignButterLowPass(4, 20, 250)
	if err != nil {
		t.Fatal(err)
	}
	// A constant input must pass through a primed DC-unity low-pass
	// exactly from the very first sample.
	s := NewSOSStream(sos, 0, true)
	x := make([]float64, 50)
	for i := range x {
		x[i] = 3.7
	}
	got := s.Push(nil, x)
	for i, v := range got {
		if math.Abs(v-3.7) > 1e-9 {
			t.Fatalf("sample %d: %g, want 3.7", i, v)
		}
	}
}

func TestGroupDelaySamples(t *testing.T) {
	sos, err := DesignButterLowPass(4, 20, 250)
	if err != nil {
		t.Fatal(err)
	}
	gd := sos.GroupDelaySamples(5, 250)
	if gd <= 0 || gd > 30 {
		t.Fatalf("group delay %g samples out of range", gd)
	}
	// Empirical check: a narrow-band tone shifted by the group delay
	// should align with the causal filter output.
	fs, f0 := 250.0, 5.0
	n := 2000
	x := make([]float64, n)
	for i := range x {
		env := math.Exp(-sq(float64(i)-1000) / (2 * 150 * 150))
		x[i] = env * math.Sin(2*math.Pi*f0*float64(i)/fs)
	}
	y := sos.Filter(x)
	// Locate envelope peaks via energy centroid.
	cx, cy, wx, wy := 0.0, 0.0, 0.0, 0.0
	for i := range x {
		cx += float64(i) * x[i] * x[i]
		wx += x[i] * x[i]
		cy += float64(i) * y[i] * y[i]
		wy += y[i] * y[i]
	}
	shift := cy/wy - cx/wx
	if math.Abs(shift-gd) > 3 {
		t.Errorf("measured shift %.2f vs group delay %.2f", shift, gd)
	}
}

func sq(v float64) float64 { return v * v }

func TestDerivStreamMatchesBatch(t *testing.T) {
	x := randSignal(700, 5)
	fs := 250.0
	want := Derivative(x, fs)
	for i := range want {
		want[i] = -want[i]
	}
	for _, chunk := range chunkSizes {
		s := NewDerivStream(fs, -1)
		got := pushChunked(t, len(x), chunk, s.Push, s.Flush, x)
		if len(got) != len(want) {
			t.Fatalf("chunk %d: %d outputs, want %d", chunk, len(got), len(want))
		}
		if d := maxAbsDiff(got, want); d > 1e-12 {
			t.Errorf("chunk %d: max diff %g", chunk, d)
		}
	}
}

func TestMovExtStreamMatchesDeque(t *testing.T) {
	x := randSignal(800, 6)
	for _, k := range []int{3, 25, 51, 76} {
		left, right := (k-1)/2, k/2
		wantMin := Erode(x, k)
		wantMax := Dilate(x, k)
		for _, chunk := range chunkSizes {
			smin := NewMovExtStream(left, right, true)
			gotMin := pushChunked(t, len(x), chunk, smin.Push, smin.Flush, x)
			if d := maxAbsDiff(gotMin, wantMin); len(gotMin) != len(wantMin) || d > 0 {
				t.Errorf("k=%d chunk %d erode: len %d/%d diff %g", k, chunk, len(gotMin), len(wantMin), d)
			}
			smax := NewMovExtStream(left, right, false)
			gotMax := pushChunked(t, len(x), chunk, smax.Push, smax.Flush, x)
			if d := maxAbsDiff(gotMax, wantMax); len(gotMax) != len(wantMax) || d > 0 {
				t.Errorf("k=%d chunk %d dilate: len %d/%d diff %g", k, chunk, len(gotMax), len(wantMax), d)
			}
		}
	}
}

func TestRingBasics(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 20; i++ {
		r.Push(float64(i))
	}
	if r.N() != 20 {
		t.Fatalf("N=%d", r.N())
	}
	if r.Start() > 12 {
		t.Fatalf("Start=%d retains too little", r.Start())
	}
	for i := r.Start(); i < r.N(); i++ {
		if r.At(i) != float64(i) {
			t.Fatalf("At(%d)=%g", i, r.At(i))
		}
	}
	got := r.CopyTo(nil, 15, 19)
	if len(got) != 4 || got[0] != 15 || got[3] != 18 {
		t.Fatalf("CopyTo: %v", got)
	}
	if m := r.ArgMax(13, 20); m != 19 {
		t.Fatalf("ArgMax=%d", m)
	}
}
