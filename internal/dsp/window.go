package dsp

import "math"

// WindowKind selects a tapering window for FIR design and spectral analysis.
type WindowKind int

// Supported window functions.
const (
	WindowRect WindowKind = iota
	WindowHamming
	WindowHann
	WindowBlackman
	WindowBartlett
)

// String returns the conventional name of the window.
func (w WindowKind) String() string {
	switch w {
	case WindowRect:
		return "rect"
	case WindowHamming:
		return "hamming"
	case WindowHann:
		return "hann"
	case WindowBlackman:
		return "blackman"
	case WindowBartlett:
		return "bartlett"
	default:
		return "unknown"
	}
}

// Window returns the n-point window of the given kind. The window is
// symmetric (suitable for FIR design). n must be >= 1.
func Window(kind WindowKind, n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	den := float64(n - 1)
	for i := 0; i < n; i++ {
		x := float64(i) / den
		switch kind {
		case WindowRect:
			w[i] = 1
		case WindowHamming:
			w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*x)
		case WindowHann:
			w[i] = 0.5 - 0.5*math.Cos(2*math.Pi*x)
		case WindowBlackman:
			w[i] = 0.42 - 0.5*math.Cos(2*math.Pi*x) + 0.08*math.Cos(4*math.Pi*x)
		case WindowBartlett:
			w[i] = 1 - math.Abs(2*x-1)
		default:
			w[i] = 1
		}
	}
	return w
}

// ApplyWindow multiplies x by the window of the given kind and returns a new
// slice.
func ApplyWindow(kind WindowKind, x []float64) []float64 {
	w := Window(kind, len(x))
	return Mul(x, w)
}
