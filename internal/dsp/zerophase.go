package dsp

// Zero-phase (forward-backward) filtering. The paper applies both its ECG
// FIR band-pass and its ICG Butterworth low-pass as zero-phase filters so
// that the characteristic-point timings (B, C, X, R) are not biased by
// filter group delay.
//
// Each pass is started from steady-state initial conditions scaled by the
// first sample (the lfilter_zi treatment used by scipy.signal.filtfilt),
// combined with odd-reflection padding; together these suppress start-up
// transients so constant signals pass through exactly.

// oddReflectPad extends x by pad samples on each side using odd reflection
// about the end points.
func oddReflectPad(x []float64, pad int) []float64 {
	return oddReflectPadWith(nil, x, pad)
}

// oddReflectPadWith is oddReflectPad drawing the padded buffer from an
// arena (nil falls back to the heap).
func oddReflectPadWith(a *Arena, x []float64, pad int) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if pad > n-1 {
		pad = n - 1
	}
	if pad < 0 {
		pad = 0
	}
	y := arenaF64(a, n+2*pad)
	for i := 0; i < pad; i++ {
		y[i] = 2*x[0] - x[pad-i]
	}
	copy(y[pad:], x)
	for i := 0; i < pad; i++ {
		y[pad+n+i] = 2*x[n-1] - x[n-2-i]
	}
	return y
}

// lfilterZi returns the steady-state direct-form-II-transposed state for a
// constant unit input: filtering a constant signal u with initial state
// u*zi produces u*G from the very first sample (G = DC gain). The DF2T
// state update is triangular in the state index, so the steady state
// follows from a single backward accumulation.
func lfilterZi(b, a []float64) []float64 {
	order := len(b)
	if len(a) > order {
		order = len(a)
	}
	bb := make([]float64, order)
	aa := make([]float64, order)
	for i := range b {
		bb[i] = b[i] / a[0]
	}
	for i := range a {
		aa[i] = a[i] / a[0]
	}
	var sb, sa float64
	for i := 0; i < order; i++ {
		sb += bb[i]
		sa += aa[i]
	}
	g := 0.0
	if sa != 0 {
		g = sb / sa
	}
	zi := make([]float64, order) // zi[order-1] stays 0
	acc := 0.0
	for j := order - 1; j >= 1; j-- {
		acc += bb[j] - aa[j]*g
		zi[j-1] = acc
	}
	return zi
}

// lfilterWith applies (b, a) with the DF2T structure starting from state
// z (which is modified in place). z must have length max(len(a),len(b)).
func lfilterWith(b, a, x, z []float64) []float64 {
	order := len(b)
	if len(a) > order {
		order = len(a)
	}
	bb := make([]float64, order)
	aa := make([]float64, order)
	for i := range b {
		bb[i] = b[i] / a[0]
	}
	for i := range a {
		aa[i] = a[i] / a[0]
	}
	y := make([]float64, len(x))
	for i, v := range x {
		out := bb[0]*v + z[0]
		for j := 1; j < order; j++ {
			z[j-1] = bb[j]*v + z[j] - aa[j]*out
		}
		y[i] = out
	}
	return y
}

// filtOnceZi filters x once with steady-state initial conditions scaled by
// x[0].
func filtOnceZi(b, a, x []float64) []float64 {
	zi := lfilterZi(b, a)
	z := make([]float64, len(zi))
	for i, v := range zi {
		z[i] = v * x[0]
	}
	return lfilterWith(b, a, x, z)
}

// FiltFilt applies the rational filter (b, a) forward and backward with
// odd-reflection padding and steady-state initial conditions, producing
// zero phase distortion and the squared magnitude response.
func FiltFilt(b, a, x []float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	if len(a) == 0 || a[0] == 0 {
		panic("dsp: FiltFilt requires a[0] != 0")
	}
	order := len(b)
	if len(a) > order {
		order = len(a)
	}
	pad := 3 * (order - 1)
	if pad < 1 {
		pad = 1
	}
	ext := oddReflectPad(x, pad)
	realPad := (len(ext) - len(x)) / 2
	y := filtOnceZi(b, a, ext)
	Reverse(y)
	y = filtOnceZi(b, a, y)
	Reverse(y)
	return y[realPad : realPad+len(x)]
}

// FiltFiltFIR applies an FIR filter zero-phase via forward-backward
// filtering with odd-reflection padding.
func FiltFiltFIR(f *FIR, x []float64) []float64 {
	return FiltFiltFIRWith(nil, f, x)
}

// FiltFiltFIRWith is FiltFiltFIR drawing every temporary from an arena
// (nil falls back to the heap).
//
// Fast path: with the standard pad of 3*(k-1) samples, the first k-1
// outputs of each causal pass — the only ones where the steady-state
// initial conditions of the generic FiltFilt differ from plain zero-padded
// convolution (a FIR has only k-1 samples of memory) — lie entirely inside
// the padding that the final slice discards. Both passes therefore run on
// the fast convolution engines (three-region direct or FFT overlap-save by
// the n*k cost model) instead of the order-k direct-form state recurrence,
// with identical output up to rounding. Signals too short to pad that far
// fall back to the generic path.
func FiltFiltFIRWith(a *Arena, f *FIR, x []float64) []float64 {
	n := len(x)
	k := len(f.Taps)
	if n == 0 {
		return nil
	}
	pad := 3 * (k - 1)
	if pad < 1 {
		pad = 1
	}
	realPad := pad
	if realPad > n-1 {
		realPad = n - 1
	}
	if k == 0 || realPad < k-1 {
		return FiltFilt(f.Taps, []float64{1}, x)
	}
	ext := oddReflectPadWith(a, x, pad)
	buf := arenaF64(a, len(ext))
	f.applyCausalTo(buf, ext) // forward pass
	Reverse(buf)
	f.applyCausalTo(ext, buf) // backward pass, reusing ext as output
	Reverse(ext)
	y := arenaF64(a, n)
	copy(y, ext[realPad:realPad+n])
	return y
}

// biquadZi returns the steady-state DF2T state (z1, z2) of one section for
// a constant unit input.
func biquadZi(bq Biquad) (z1, z2 float64) {
	den := 1 + bq.A1 + bq.A2
	g := 0.0
	if den != 0 {
		g = (bq.B0 + bq.B1 + bq.B2) / den
	}
	z2 = bq.B2 - bq.A2*g
	z1 = bq.B1 - bq.A1*g + z2
	return z1, z2
}

// filterZiInPlace applies the cascade in place with per-section
// steady-state initial conditions scaled by the first sample of each
// section's input.
func (s SOS) filterZiInPlace(y []float64) {
	if len(y) == 0 {
		return
	}
	sosPipeRun(y, y, s, nil, nil, true)
}

// FilterZiInPlace applies the cascade causally in place with per-section
// steady-state initial conditions scaled by each section's first input —
// one directional pass of FiltFilt. The streaming delineator uses it
// (after a Reverse) as the backward half of its split zero-phase scheme,
// where the forward half is a persistent causal stream.
func (s SOS) FilterZiInPlace(y []float64) { s.filterZiInPlace(y) }

// filterZi applies the cascade with per-section steady-state initial
// conditions scaled by the first sample of each section's input.
func (s SOS) filterZi(x []float64) []float64 {
	y := Clone(x)
	s.filterZiInPlace(y)
	return y
}

// FiltFilt applies a biquad cascade zero-phase via forward-backward
// filtering with odd-reflection padding and steady-state initial
// conditions.
func (s SOS) FiltFilt(x []float64) []float64 {
	return s.FiltFiltWith(nil, x)
}

// FiltFiltWith is SOS.FiltFilt drawing every temporary from an arena
// (nil falls back to the heap). The result is a sub-slice of the padded
// filtering scratch — arena-owned when a is non-nil, private otherwise —
// so no trailing copy is paid; callers that need the buffer to outlive
// the arena must copy it themselves.
func (s SOS) FiltFiltWith(a *Arena, x []float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	pad := 3 * (2*len(s) + 1)
	ext := oddReflectPadWith(a, x, pad)
	realPad := (len(ext) - len(x)) / 2
	s.filterZiInPlace(ext)
	Reverse(ext)
	s.filterZiInPlace(ext)
	Reverse(ext)
	return ext[realPad : realPad+len(x)]
}
