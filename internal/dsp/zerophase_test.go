package dsp

import (
	"math"
	"testing"
)

// crossCorrLag returns the lag (in samples) of the peak cross-correlation
// between a and b over lags -maxLag..maxLag.
func crossCorrLag(a, b []float64, maxLag int) int {
	bestLag, best := 0, math.Inf(-1)
	for lag := -maxLag; lag <= maxLag; lag++ {
		s := 0.0
		for i := range a {
			j := i + lag
			if j >= 0 && j < len(b) {
				s += a[i] * b[j]
			}
		}
		if s > best {
			best = s
			bestLag = lag
		}
	}
	return bestLag
}

func TestFiltFiltZeroPhaseSOS(t *testing.T) {
	sos, err := DesignButterLowPass(4, 20, 250)
	if err != nil {
		t.Fatal(err)
	}
	x := sine(10, 250, 2000)
	y := sos.FiltFilt(x)
	// Zero-phase: no lag between input and output.
	if lag := crossCorrLag(x[500:1500], y[500:1500], 10); lag != 0 {
		t.Errorf("filtfilt lag = %d samples, want 0", lag)
	}
	// Compare against causal filtering, which must show the group delay:
	// the output is delayed, so the peak correlation sits at positive lag.
	yc := sos.Filter(x)
	if lag := crossCorrLag(x[500:1500], yc[500:1500], 20); lag <= 0 {
		t.Errorf("causal filter lag = %d, want positive (delayed output)", lag)
	}
}

func TestFiltFiltSquaredMagnitude(t *testing.T) {
	// Forward-backward filtering applies |H|^2: a tone at the cutoff
	// (|H| = 1/sqrt2) comes out at amplitude ~0.5.
	sos, err := DesignButterLowPass(4, 20, 250)
	if err != nil {
		t.Fatal(err)
	}
	x := sine(20, 250, 4000)
	y := sos.FiltFilt(x)
	r := RMS(y[1000:3000]) / RMS(x[1000:3000])
	if math.Abs(r-0.5) > 0.02 {
		t.Errorf("gain at cutoff after filtfilt = %g, want ~0.5", r)
	}
}

func TestFiltFiltFIRZeroPhase(t *testing.T) {
	f, err := DesignBandPass(32, 0.05, 40, 250, WindowHamming)
	if err != nil {
		t.Fatal(err)
	}
	x := sine(10, 250, 2000)
	y := FiltFiltFIR(f, x)
	if lag := crossCorrLag(x[500:1500], y[500:1500], 16); lag != 0 {
		t.Errorf("FIR filtfilt lag = %d, want 0", lag)
	}
}

func TestFiltFiltPreservesLength(t *testing.T) {
	sos, _ := DesignButterLowPass(4, 20, 250)
	for _, n := range []int{5, 10, 100, 1001} {
		x := sine(5, 250, n)
		y := sos.FiltFilt(x)
		if len(y) != n {
			t.Errorf("n=%d: output length %d", n, len(y))
		}
	}
	if sos.FiltFilt(nil) != nil {
		t.Error("nil input should return nil")
	}
}

func TestFiltFiltConstantSignal(t *testing.T) {
	// A DC signal through a unity-DC-gain low-pass must pass unchanged
	// (edges included, thanks to odd reflection padding).
	sos, _ := DesignButterLowPass(4, 20, 250)
	x := make([]float64, 400)
	for i := range x {
		x[i] = 3.25
	}
	y := sos.FiltFilt(x)
	for i, v := range y {
		if math.Abs(v-3.25) > 1e-6 {
			t.Fatalf("DC not preserved at %d: %g", i, v)
		}
	}
}

func TestOddReflectPad(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := oddReflectPad(x, 2)
	want := []float64{-1, 0, 1, 2, 3, 4, 5, 6}
	if len(y) != len(want) {
		t.Fatalf("len = %d, want %d", len(y), len(want))
	}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("pad[%d] = %g, want %g", i, y[i], want[i])
		}
	}
}

func TestOddReflectPadClampsPad(t *testing.T) {
	x := []float64{1, 2}
	y := oddReflectPad(x, 10) // pad is clamped to n-1 = 1
	if len(y) != 4 {
		t.Fatalf("len = %d, want 4", len(y))
	}
	if y[0] != 0 || y[3] != 3 {
		t.Errorf("got %v", y)
	}
}

func TestFiltFiltRationalForm(t *testing.T) {
	// FiltFilt with (b, a) form on a simple one-pole filter: check DC
	// preservation and zero lag.
	b := []float64{0.25}
	a := []float64{1, -0.75}
	x := sine(2, 250, 1500)
	y := FiltFilt(b, a, x)
	if len(y) != len(x) {
		t.Fatalf("length mismatch")
	}
	if lag := crossCorrLag(x[300:1200], y[300:1200], 20); lag != 0 {
		t.Errorf("lag = %d, want 0", lag)
	}
}
