package ecg

import "repro/internal/dsp"

// The paper's high-frequency noise and artifact filter: a 32nd-order FIR
// band-pass with cut-offs 0.05 Hz and 40 Hz applied zero-phase
// (Section IV-A.1).

// BandPassConfig parameterizes the FIR stage.
type BandPassConfig struct {
	FS     float64
	Order  int     // filter order (taps-1); the paper uses 32
	LowHz  float64 // lower cut-off; the paper uses 0.05 Hz
	HighHz float64 // upper cut-off; the paper uses 40 Hz
	Window dsp.WindowKind
}

// DefaultBandPass returns the paper's configuration.
func DefaultBandPass(fs float64) BandPassConfig {
	return BandPassConfig{FS: fs, Order: 32, LowHz: 0.05, HighHz: 40, Window: dsp.WindowHamming}
}

// Design builds the FIR filter.
func (c BandPassConfig) Design() (*dsp.FIR, error) {
	return dsp.DesignBandPass(c.Order, c.LowHz, c.HighHz, c.FS, c.Window)
}

// Apply filters x zero-phase with the configured band-pass.
func (c BandPassConfig) Apply(x []float64) ([]float64, error) {
	f, err := c.Design()
	if err != nil {
		return nil, err
	}
	return dsp.FiltFiltFIR(f, x), nil
}

// Clean runs the full paper ECG conditioning chain: morphological
// baseline removal followed by the zero-phase FIR band-pass.
func Clean(x []float64, fs float64) ([]float64, error) {
	y := RemoveBaseline(x, DefaultBaseline(fs))
	return DefaultBandPass(fs).Apply(y)
}
