// Package ecg implements the paper's embedded ECG chain (Section IV-A):
// morphological baseline-wander removal after Sun, Chan and Krishnan
// (2002), the 32nd-order zero-phase FIR band-pass (0.05-40 Hz), the
// Pan-Tompkins QRS detector used to anchor the beat-to-beat ICG analysis,
// and T-wave localization for the Carvalho X-point variant.
package ecg

import (
	"repro/internal/dsp"
)

// BaselineConfig controls the morphological baseline estimator.
type BaselineConfig struct {
	FS float64 // sampling rate (Hz)
	// L1Seconds is the structuring-element length used by the opening,
	// chosen wider than the QRS complex (default 0.2 s).
	L1Seconds float64
	// L2Factor scales the closing element relative to L1 (default 1.5),
	// following Sun et al.
	L2Factor float64
	// Naive selects the O(n*k) morphology engine, modelling a
	// straightforward firmware implementation (ablation A4).
	Naive bool
}

// DefaultBaseline returns the paper's configuration at the given rate.
func DefaultBaseline(fs float64) BaselineConfig {
	return BaselineConfig{FS: fs, L1Seconds: 0.2, L2Factor: 1.5}
}

// elementLengths converts the configuration to odd structuring-element
// sample counts.
func (c BaselineConfig) elementLengths() (l1, l2 int) {
	if c.L1Seconds <= 0 {
		c.L1Seconds = 0.2
	}
	if c.L2Factor <= 0 {
		c.L2Factor = 1.5
	}
	l1 = int(c.L1Seconds*c.FS) | 1 // force odd
	if l1 < 3 {
		l1 = 3
	}
	l2 = int(c.L1Seconds*c.L2Factor*c.FS) | 1
	if l2 < l1 {
		l2 = l1
	}
	return l1, l2
}

// EstimateBaseline returns the baseline-drift estimate of x: an opening
// (erosion then dilation, removing peaks) followed by a closing (dilation
// then erosion, removing pits), exactly the sequence described in Section
// IV-A.1 of the paper.
func EstimateBaseline(x []float64, cfg BaselineConfig) []float64 {
	return EstimateBaselineWith(nil, x, cfg)
}

// EstimateBaselineWith is EstimateBaseline drawing its buffers from an
// arena (nil falls back to the heap); the result is arena-owned when a is
// non-nil. The naive engine is exempt from arena reuse — it models the
// straightforward firmware implementation for ablation A4 and is never on
// the steady-state path.
func EstimateBaselineWith(a *dsp.Arena, x []float64, cfg BaselineConfig) []float64 {
	l1, l2 := cfg.elementLengths()
	if cfg.Naive {
		return dsp.CloseNaive(dsp.OpenNaive(x, l1), l2)
	}
	return dsp.CloseWith(a, dsp.OpenWith(a, x, l1), l2)
}

// RemoveBaseline subtracts the morphological baseline estimate from x.
func RemoveBaseline(x []float64, cfg BaselineConfig) []float64 {
	return RemoveBaselineWith(nil, x, cfg)
}

// RemoveBaselineWith is RemoveBaseline drawing its buffers from an arena
// (nil falls back to the heap); the result is arena-owned when a is
// non-nil.
func RemoveBaselineWith(a *dsp.Arena, x []float64, cfg BaselineConfig) []float64 {
	est := EstimateBaselineWith(a, x, cfg)
	if est == nil {
		return nil
	}
	var dst []float64
	if a != nil {
		dst = a.F64(len(x))
	} else {
		dst = make([]float64, len(x))
	}
	return dsp.SubTo(dst, x, est)
}
