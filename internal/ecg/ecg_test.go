package ecg

import (
	"math"
	"testing"

	"repro/internal/dsp"
	"repro/internal/physio"
)

func cleanRecording(t *testing.T, id int, cfg physio.GenConfig) *physio.Recording {
	t.Helper()
	s, ok := physio.SubjectByID(id)
	if !ok {
		t.Fatalf("no subject %d", id)
	}
	return s.Generate(cfg)
}

func TestEstimateBaselineTracksDrift(t *testing.T) {
	// A pure slow drift must be recovered almost exactly.
	fs := 250.0
	n := 5000
	drift := make([]float64, n)
	for i := range drift {
		drift[i] = 0.8 * math.Sin(2*math.Pi*0.2*float64(i)/fs)
	}
	est := EstimateBaseline(drift, DefaultBaseline(fs))
	if e := dsp.RMSE(est[500:n-500], drift[500:n-500]); e > 0.15 {
		t.Errorf("baseline rmse on pure drift = %g", e)
	}
}

func TestRemoveBaselinePreservesQRS(t *testing.T) {
	s, _ := physio.SubjectByID(1)
	cfg := physio.DefaultGenConfig()
	cfg.ECGBaselineDrift = 0
	cfg.ECGNoiseStd = 0
	cfg.PowerlineAmp = 0
	clean := s.Generate(cfg)

	cfg2 := cfg
	cfg2.ECGBaselineDrift = 0.5
	s2, _ := physio.SubjectByID(1)
	drifted := s2.Generate(cfg2)

	corrected := RemoveBaseline(drifted.ECG, DefaultBaseline(250))
	// After correction the signal should be much closer to the clean one
	// than before.
	before := dsp.RMSE(drifted.ECG, clean.ECG)
	after := dsp.RMSE(corrected, clean.ECG)
	if after >= before/2 {
		t.Errorf("baseline removal weak: before=%g after=%g", before, after)
	}
	// R-peak amplitudes must survive: check each annotated R value.
	for _, r := range clean.Truth.RPeaks {
		if corrected[r] < 0.6 {
			t.Errorf("R peak at %d flattened to %g", r, corrected[r])
		}
	}
}

func TestNaiveAndDequeBaselineAgree(t *testing.T) {
	s, _ := physio.SubjectByID(2)
	rec := s.Generate(physio.DefaultGenConfig())
	cfg := DefaultBaseline(250)
	fast := EstimateBaseline(rec.ECG, cfg)
	cfg.Naive = true
	naive := EstimateBaseline(rec.ECG, cfg)
	for i := range fast {
		if fast[i] != naive[i] {
			t.Fatalf("engines disagree at %d", i)
		}
	}
}

func TestBandPassRemovesPowerline(t *testing.T) {
	fs := 250.0
	n := 4096
	sig := make([]float64, n)
	for i := range sig {
		ti := float64(i) / fs
		sig[i] = math.Sin(2*math.Pi*10*ti) + 0.5*math.Sin(2*math.Pi*50*ti)
	}
	out, err := DefaultBandPass(fs).Apply(sig)
	if err != nil {
		t.Fatal(err)
	}
	p50before := dsp.BandPower(sig, fs, 48, 52)
	p50after := dsp.BandPower(out, fs, 48, 52)
	if p50after > 0.35*p50before {
		t.Errorf("50 Hz power only reduced from %g to %g", p50before, p50after)
	}
	// 10 Hz content survives. Note the forward-backward application
	// squares the magnitude response, and with only 33 taps the gain at
	// 10 Hz is ~0.77, so ~0.6 amplitude (0.36 power) is the faithful
	// passband behaviour of the paper's filter.
	p10before := dsp.BandPower(sig, fs, 8, 12)
	p10after := dsp.BandPower(out, fs, 8, 12)
	if p10after < 0.3*p10before {
		t.Errorf("10 Hz content lost: %g -> %g", p10before, p10after)
	}
	// And 50 Hz must be attenuated much more strongly than 10 Hz.
	if p50after/p50before > 0.5*(p10after/p10before) {
		t.Error("50 Hz not preferentially attenuated")
	}
}

func TestCleanChain(t *testing.T) {
	rec := cleanRecording(t, 1, physio.DefaultGenConfig())
	out, err := Clean(rec.ECG, 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(rec.ECG) {
		t.Fatal("length changed")
	}
	if dsp.HasNaN(out) {
		t.Fatal("NaN in cleaned ECG")
	}
	// Drift strongly attenuated.
	if p := dsp.BandPower(out, 250, 0.05, 0.4); p > 0.5*dsp.BandPower(rec.ECG, 250, 0.05, 0.4) {
		t.Error("baseline band not attenuated")
	}
}

func TestDetectQRSCleanSignal(t *testing.T) {
	for _, id := range []int{1, 2, 3, 4, 5} {
		rec := cleanRecording(t, id, physio.DefaultGenConfig())
		cond, err := Clean(rec.ECG, 250)
		if err != nil {
			t.Fatal(err)
		}
		res, err := DetectQRS(cond, DefaultPT(250))
		if err != nil {
			t.Fatal(err)
		}
		tol := int(0.04 * 250) // 40 ms
		tp, fp, fn := MatchPeaks(res.RPeaks, rec.Truth.RPeaks, tol)
		se := Sensitivity(tp, fn)
		ppv := PPV(tp, fp)
		if se < 0.99 {
			t.Errorf("subject %d: sensitivity = %.4f (tp=%d fn=%d)", id, se, tp, fn)
		}
		if ppv < 0.99 {
			t.Errorf("subject %d: PPV = %.4f (tp=%d fp=%d)", id, ppv, tp, fp)
		}
	}
}

func TestDetectQRSRefinedPeaksAligned(t *testing.T) {
	rec := cleanRecording(t, 3, physio.DefaultGenConfig())
	cond, _ := Clean(rec.ECG, 250)
	res, err := DetectQRS(cond, DefaultPT(250))
	if err != nil {
		t.Fatal(err)
	}
	// Refined peaks should be within ~2 samples (8 ms) of the truth:
	// PEP depends on this accuracy.
	tol := 3
	matched := 0
	for _, tr := range rec.Truth.RPeaks {
		for _, d := range res.RPeaks {
			diff := d - tr
			if diff < 0 {
				diff = -diff
			}
			if diff <= tol {
				matched++
				break
			}
		}
	}
	if frac := float64(matched) / float64(len(rec.Truth.RPeaks)); frac < 0.95 {
		t.Errorf("only %.2f of R peaks within %d samples", frac, tol)
	}
}

func TestDetectQRSNoisySignal(t *testing.T) {
	cfg := physio.DefaultGenConfig()
	cfg.ECGNoiseStd = 0.05
	cfg.ECGBaselineDrift = 0.4
	cfg.PowerlineAmp = 0.1
	cfg.MotionBurstRate = 2
	cfg.MotionBurstAmp = 0.3
	rec := cleanRecording(t, 4, cfg)
	cond, _ := Clean(rec.ECG, 250)
	res, err := DetectQRS(cond, DefaultPT(250))
	if err != nil {
		t.Fatal(err)
	}
	tp, fp, fn := MatchPeaks(res.RPeaks, rec.Truth.RPeaks, 13)
	if se := Sensitivity(tp, fn); se < 0.93 {
		t.Errorf("noisy sensitivity = %.3f", se)
	}
	if ppv := PPV(tp, fp); ppv < 0.93 {
		t.Errorf("noisy PPV = %.3f", ppv)
	}
}

func TestDetectQRSTooShort(t *testing.T) {
	if _, err := DetectQRS(make([]float64, 10), DefaultPT(250)); err != ErrTooShort {
		t.Errorf("err = %v, want ErrTooShort", err)
	}
}

func TestDetectQRSFlatline(t *testing.T) {
	res, err := DetectQRS(make([]float64, 5000), DefaultPT(250))
	if err != nil {
		t.Fatalf("flatline should not error: %v", err)
	}
	if len(res.RPeaks) > 2 {
		t.Errorf("flatline produced %d peaks", len(res.RPeaks))
	}
}

func TestRRAndHR(t *testing.T) {
	fs := 250.0
	rPeaks := []int{0, 250, 500, 750} // exactly 1 s apart -> 60 bpm
	rr := RRIntervals(rPeaks, fs)
	if len(rr) != 3 {
		t.Fatal("rr count")
	}
	for _, v := range rr {
		if math.Abs(v-1) > 1e-12 {
			t.Errorf("rr = %g", v)
		}
	}
	if hr := MeanHR(rPeaks, fs); math.Abs(hr-60) > 1e-9 {
		t.Errorf("hr = %g", hr)
	}
	if RRIntervals([]int{5}, fs) != nil {
		t.Error("single peak should give nil")
	}
	if MeanHR(nil, fs) != 0 {
		t.Error("empty should be 0")
	}
}

func TestMatchPeaksAccounting(t *testing.T) {
	truth := []int{100, 200, 300}
	det := []int{101, 205, 400}
	tp, fp, fn := MatchPeaks(det, truth, 10)
	if tp != 2 || fp != 1 || fn != 1 {
		t.Errorf("tp=%d fp=%d fn=%d", tp, fp, fn)
	}
	if Sensitivity(0, 0) != 0 || PPV(0, 0) != 0 {
		t.Error("empty guards")
	}
}

func TestTPeakLocalization(t *testing.T) {
	s, _ := physio.SubjectByID(1)
	cfg := physio.DefaultGenConfig()
	cfg.ECGBaselineDrift = 0
	cfg.ECGNoiseStd = 0
	cfg.PowerlineAmp = 0
	rec := s.Generate(cfg)
	tPeaks := TPeaksForBeats(rec.ECG, rec.Truth.RPeaks, 250)
	// The synthetic T apex sits at ~0.30*sqrt(RR) after R.
	okCount := 0
	for i, r := range rec.Truth.RPeaks {
		if tPeaks[i] < 0 {
			continue
		}
		rr := 0.8
		if i < len(rec.Truth.RR) {
			rr = rec.Truth.RR[i]
		}
		want := r + int(physio.TPeakOffset(rr)*250)
		d := tPeaks[i] - want
		if d < 0 {
			d = -d
		}
		if d <= int(0.06*250) {
			okCount++
		}
	}
	if frac := float64(okCount) / float64(len(rec.Truth.RPeaks)); frac < 0.9 {
		t.Errorf("T peaks within 60 ms: %.2f", frac)
	}
}

func TestTPeakDegenerate(t *testing.T) {
	x := make([]float64, 100)
	if got := TPeak(x, 95, 0.8, 250); got != -1 {
		t.Errorf("window beyond end should return -1, got %d", got)
	}
}
