package ecg

import "repro/internal/dsp"

// Heart-rate utilities on detected R peaks. The paper computes HR from
// the ECG acquired by the device (Section V, Fig 9).

// RRIntervals converts R-peak indices into RR intervals in seconds.
func RRIntervals(rPeaks []int, fs float64) []float64 {
	if len(rPeaks) < 2 || fs <= 0 {
		return nil
	}
	rr := make([]float64, len(rPeaks)-1)
	for i := 1; i < len(rPeaks); i++ {
		rr[i-1] = float64(rPeaks[i]-rPeaks[i-1]) / fs
	}
	return rr
}

// HeartRateSeries converts R peaks into per-beat instantaneous heart rate
// (bpm).
func HeartRateSeries(rPeaks []int, fs float64) []float64 {
	rr := RRIntervals(rPeaks, fs)
	hr := make([]float64, len(rr))
	for i, v := range rr {
		if v > 0 {
			hr[i] = 60 / v
		}
	}
	return hr
}

// MeanHR returns the average heart rate in bpm over the detected beats.
func MeanHR(rPeaks []int, fs float64) float64 {
	hr := HeartRateSeries(rPeaks, fs)
	if len(hr) == 0 {
		return 0
	}
	return dsp.Mean(hr)
}

// MatchPeaks compares detected R peaks against a reference annotation with
// the given tolerance (samples) and returns true positives, false
// positives and false negatives. Each reference peak matches at most one
// detection.
func MatchPeaks(detected, truth []int, tol int) (tp, fp, fn int) {
	used := make([]bool, len(detected))
	for _, tr := range truth {
		found := false
		for i, d := range detected {
			if used[i] {
				continue
			}
			diff := d - tr
			if diff < 0 {
				diff = -diff
			}
			if diff <= tol {
				used[i] = true
				found = true
				break
			}
		}
		if found {
			tp++
		} else {
			fn++
		}
	}
	for _, u := range used {
		if !u {
			fp++
		}
	}
	return tp, fp, fn
}

// Sensitivity returns tp/(tp+fn), guarding empty inputs.
func Sensitivity(tp, fn int) float64 {
	if tp+fn == 0 {
		return 0
	}
	return float64(tp) / float64(tp+fn)
}

// PPV returns tp/(tp+fp), guarding empty inputs.
func PPV(tp, fp int) float64 {
	if tp+fp == 0 {
		return 0
	}
	return float64(tp) / float64(tp+fp)
}
