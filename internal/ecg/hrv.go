package ecg

import (
	"math"

	"repro/internal/dsp"
)

// Heart-rate-variability metrics over the detected RR series. The paper's
// introduction lists irregular heartbeat among the CHF symptoms; HRV
// indices are the standard way to quantify it from the same R peaks the
// pipeline already produces.

// HRV bundles the classic time-domain indices.
type HRV struct {
	MeanRR float64 // mean RR interval (s)
	SDNN   float64 // standard deviation of RR intervals (s)
	RMSSD  float64 // root mean square of successive differences (s)
	PNN50  float64 // fraction of successive differences > 50 ms
	Beats  int
}

// ComputeHRV derives time-domain HRV from R peaks.
func ComputeHRV(rPeaks []int, fs float64) HRV {
	rr := RRIntervals(rPeaks, fs)
	if len(rr) == 0 {
		return HRV{}
	}
	h := HRV{MeanRR: dsp.Mean(rr), SDNN: dsp.Std(rr), Beats: len(rr)}
	if len(rr) < 2 {
		return h
	}
	var sumSq float64
	over := 0
	for i := 1; i < len(rr); i++ {
		d := rr[i] - rr[i-1]
		sumSq += d * d
		if math.Abs(d) > 0.050 {
			over++
		}
	}
	h.RMSSD = math.Sqrt(sumSq / float64(len(rr)-1))
	h.PNN50 = float64(over) / float64(len(rr)-1)
	return h
}

// SpectralHRV carries the frequency-domain balance of the tachogram.
type SpectralHRV struct {
	LF   float64 // power in 0.04-0.15 Hz
	HF   float64 // power in 0.15-0.40 Hz
	LFHF float64 // sympathovagal balance
}

// ComputeSpectralHRV estimates LF/HF power by resampling the RR series to
// 4 Hz and integrating its spectrum (the standard short-term protocol).
func ComputeSpectralHRV(rPeaks []int, fs float64) SpectralHRV {
	rr := RRIntervals(rPeaks, fs)
	if len(rr) < 8 {
		return SpectralHRV{}
	}
	// Beat times and linear resampling of RR(t) onto a uniform 4 Hz grid.
	times := make([]float64, len(rr))
	t := 0.0
	for i, v := range rr {
		t += v
		times[i] = t
	}
	const fsT = 4.0
	dur := times[len(times)-1]
	n := int(dur * fsT)
	if n < 16 {
		return SpectralHRV{}
	}
	uniform := make([]float64, n)
	j := 0
	for i := 0; i < n; i++ {
		ti := float64(i) / fsT
		for j+1 < len(times) && times[j] < ti {
			j++
		}
		uniform[i] = rr[j]
	}
	mean := dsp.Mean(uniform)
	for i := range uniform {
		uniform[i] -= mean
	}
	lf := dsp.BandPower(uniform, fsT, 0.04, 0.15)
	hf := dsp.BandPower(uniform, fsT, 0.15, 0.40)
	out := SpectralHRV{LF: lf, HF: hf}
	if hf > 0 {
		out.LFHF = lf / hf
	}
	return out
}
