package ecg

import (
	"math"
	"testing"

	"repro/internal/physio"
)

func TestComputeHRVRegularRhythm(t *testing.T) {
	// Perfectly regular 1 s RR: SDNN = RMSSD = pNN50 = 0.
	fs := 250.0
	peaks := []int{0, 250, 500, 750, 1000}
	h := ComputeHRV(peaks, fs)
	if math.Abs(h.MeanRR-1) > 1e-12 {
		t.Errorf("mean RR = %g", h.MeanRR)
	}
	if h.SDNN != 0 || h.RMSSD != 0 || h.PNN50 != 0 {
		t.Errorf("regular rhythm should have zero variability: %+v", h)
	}
	if h.Beats != 4 {
		t.Errorf("beats = %d", h.Beats)
	}
}

func TestComputeHRVAlternans(t *testing.T) {
	// RR alternating 0.9/1.1 s: every successive difference is 200 ms.
	fs := 1000.0
	peaks := []int{0, 900, 2000, 2900, 4000, 4900}
	h := ComputeHRV(peaks, fs)
	if math.Abs(h.MeanRR-0.98) > 1e-9 {
		t.Errorf("mean RR = %g", h.MeanRR)
	}
	if h.PNN50 != 1 {
		t.Errorf("pNN50 = %g, want 1", h.PNN50)
	}
	if math.Abs(h.RMSSD-0.2) > 1e-9 {
		t.Errorf("RMSSD = %g, want 0.2", h.RMSSD)
	}
}

func TestComputeHRVEmpty(t *testing.T) {
	if h := ComputeHRV(nil, 250); h.Beats != 0 {
		t.Error("empty input")
	}
	if h := ComputeHRV([]int{10, 260}, 250); h.RMSSD != 0 {
		t.Error("single interval has no successive differences")
	}
}

func TestComputeHRVOnSyntheticSubject(t *testing.T) {
	// The synthesized tachogram has configured variability; detected HRV
	// should land in the same ballpark as the ground truth RR std.
	s, _ := physio.SubjectByID(3)
	cfg := physio.DefaultGenConfig()
	cfg.Duration = 60
	rec := s.Generate(cfg)
	h := ComputeHRV(rec.Truth.RPeaks, rec.FS)
	if math.Abs(h.MeanRR-s.MeanRR()) > 0.05 {
		t.Errorf("mean RR = %g, subject %g", h.MeanRR, s.MeanRR())
	}
	if h.SDNN < s.HRStd/2 || h.SDNN > s.HRStd*2 {
		t.Errorf("SDNN = %g, configured %g", h.SDNN, s.HRStd)
	}
}

func TestSpectralHRVBalance(t *testing.T) {
	// A subject generated with high LF/HF should show LF-dominant
	// spectral HRV and vice versa.
	mk := func(lfhf float64) SpectralHRV {
		rng := physio.NewRNG(11)
		cfg := physio.TachogramConfig{MeanRR: 0.8, StdRR: 0.05, LFHF: lfhf}
		rr := physio.RRTachogram(rng, cfg, 512)
		peaks := make([]int, len(rr)+1)
		tAcc := 0.0
		for i, v := range rr {
			tAcc += v
			peaks[i+1] = int(tAcc * 250)
		}
		return ComputeSpectralHRV(peaks, 250)
	}
	hi := mk(5)
	lo := mk(0.2)
	if hi.LFHF <= lo.LFHF {
		t.Errorf("LF/HF ordering broken: %g vs %g", hi.LFHF, lo.LFHF)
	}
}

func TestSpectralHRVDegenerate(t *testing.T) {
	if got := ComputeSpectralHRV([]int{0, 250}, 250); got.LF != 0 || got.HF != 0 {
		t.Error("too few beats should give zeros")
	}
}
