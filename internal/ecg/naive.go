package ecg

import "repro/internal/dsp"

// DetectQRSNaive is the fixed-threshold baseline detector used by the
// ablation benches: peaks above a fraction of the global maximum with a
// refractory period, no adaptation, no search-back, no T-wave
// discrimination. It works on clean signals and degrades under drift and
// amplitude variation — quantifying what the Pan-Tompkins machinery buys.
func DetectQRSNaive(x []float64, fs, thresholdFrac float64) []int {
	if len(x) < int(fs) {
		return nil
	}
	if thresholdFrac <= 0 || thresholdFrac >= 1 {
		thresholdFrac = 0.5
	}
	_, hi := dsp.MinMax(x)
	if hi <= 0 {
		return nil
	}
	refractory := int(0.2 * fs)
	return dsp.FindPeaks(x, hi*thresholdFrac, refractory)
}
