package ecg

import (
	"errors"

	"repro/internal/dsp"
)

// Pan-Tompkins QRS detection (Pan & Tompkins, IEEE TBME 1985), the
// detector the paper uses to anchor its beat-to-beat ICG analysis
// (Section IV-C). The implementation follows the original stages —
// band-pass, derivative, squaring, moving-window integration, dual
// adaptive thresholds with search-back and T-wave discrimination — in a
// sampling-rate-generic form.

// PTConfig parameterizes the detector.
type PTConfig struct {
	FS          float64
	BandLow     float64 // QRS band lower edge (Hz), default 5
	BandHigh    float64 // QRS band upper edge (Hz), default 15
	WindowMs    float64 // moving integration window (ms), default 150
	RefractMs   float64 // refractory period (ms), default 200
	TWaveMs     float64 // T-wave discrimination window (ms), default 360
	SearchBack  bool    // enable missed-beat search-back
	RefineOnRaw bool    // refine R locations on the conditioned ECG
	// BandSOS, when non-nil, is the pre-designed QRS band-pass cascade;
	// it overrides BandLow/BandHigh and saves the per-call filter design
	// on steady-state paths (core.Device caches it at construction).
	BandSOS dsp.SOS
}

// normalized returns cfg with every zero field replaced by the classic
// Pan-Tompkins default — the single source of truth for both the
// detector and the cacheable band-pass design.
func (cfg PTConfig) normalized() PTConfig {
	if cfg.FS <= 0 {
		cfg.FS = 250
	}
	if cfg.BandLow == 0 {
		cfg.BandLow = 5
	}
	if cfg.BandHigh == 0 {
		cfg.BandHigh = 15
	}
	if cfg.WindowMs == 0 {
		cfg.WindowMs = 150
	}
	if cfg.RefractMs == 0 {
		cfg.RefractMs = 200
	}
	if cfg.TWaveMs == 0 {
		cfg.TWaveMs = 360
	}
	return cfg
}

// DesignPTBandPass designs the detector's QRS band-pass for cfg, suitable
// for caching in PTConfig.BandSOS.
func DesignPTBandPass(cfg PTConfig) (dsp.SOS, error) {
	cfg = cfg.normalized()
	return dsp.DesignButterBandPass(2, cfg.BandLow, cfg.BandHigh, cfg.FS)
}

// DefaultPT returns the classic configuration.
func DefaultPT(fs float64) PTConfig {
	return PTConfig{
		FS: fs, BandLow: 5, BandHigh: 15,
		WindowMs: 150, RefractMs: 200, TWaveMs: 360,
		SearchBack: true, RefineOnRaw: true,
	}
}

// Result carries the detection output.
type Result struct {
	RPeaks     []int     // R-peak sample indices (refined)
	Integrated []float64 // moving-window-integrated feature signal
	Filtered   []float64 // band-passed ECG used by the detector
	SearchBack int       // beats recovered by search-back
	TWavesVeto int       // candidates rejected as T waves
}

// ErrTooShort is returned for signals shorter than the detector warm-up.
var ErrTooShort = errors.New("ecg: signal too short for QRS detection")

// DetectQRS runs Pan-Tompkins on a conditioned ECG.
func DetectQRS(x []float64, cfg PTConfig) (*Result, error) {
	return DetectQRSWith(nil, x, cfg)
}

// DetectQRSWith is DetectQRS drawing its full-length stage buffers
// (band-passed, derivative, squared, integrated) from an arena; nil falls
// back to the heap. When a is non-nil the Filtered and Integrated fields
// of the Result are arena-owned and valid only until the arena resets.
func DetectQRSWith(a *dsp.Arena, x []float64, cfg PTConfig) (*Result, error) {
	cfg = cfg.normalized()
	fs := cfg.FS
	if len(x) < int(fs) {
		return nil, ErrTooShort
	}

	// Stage 1: band-pass to the QRS band.
	sos := cfg.BandSOS
	if sos == nil {
		var err error
		sos, err = dsp.DesignButterBandPass(2, cfg.BandLow, cfg.BandHigh, fs)
		if err != nil {
			return nil, err
		}
	}
	var filtered []float64
	if a != nil {
		filtered = sos.FilterTo(a.F64(len(x)), x)
	} else {
		filtered = sos.Filter(x)
	}

	// Stage 2: five-point derivative.
	deriv := fivePointDerivative(arenaBuf(a, len(filtered)), filtered, fs)

	// Stage 3: squaring (in place on the derivative, which is not needed
	// downstream).
	squared := deriv
	for i, v := range deriv {
		squared[i] = v * v
	}

	// Stage 4: moving-window integration (causal).
	win := int(cfg.WindowMs / 1000 * fs)
	if win < 1 {
		win = 1
	}
	integrated := causalMovingAverage(arenaBuf(a, len(squared)), squared, win)

	// Stage 5: adaptive thresholding on the integrated signal.
	res := &Result{Integrated: integrated, Filtered: filtered}
	refractory := int(cfg.RefractMs / 1000 * fs)
	tWaveWin := int(cfg.TWaveMs / 1000 * fs)

	peaks := dsp.FindPeaks(integrated, 0, refractory)
	if len(peaks) == 0 {
		return res, nil
	}

	// Initialize thresholds from the first two seconds.
	initWin := int(2 * fs)
	if initWin > len(integrated) {
		initWin = len(integrated)
	}
	_, maxInit := dsp.MinMax(integrated[:initWin])
	spki := 0.25 * maxInit // running signal-peak estimate
	npki := 0.5 * dsp.Mean(integrated[:initWin])
	threshold1 := npki + 0.25*(spki-npki)

	// Every accepted QRS is one of the candidate peaks, so len(peaks)
	// bounds the result: one exact allocation, no append growth.
	qrs := make([]int, 0, len(peaks))
	var rrIntervals []float64
	lastQRS := -refractory
	lastSlope := 0.0

	acceptPeak := func(p int) { //icg:allow hotalloc -- one closure per recording holding the detector's accumulator state, amortized over every beat
		if len(qrs) > 0 {
			rrIntervals = append(rrIntervals, float64(p-lastQRS)/fs) //icg:allow hotalloc -- 8-entry RR sliding window: grows to cap once per recording, then slides
			if len(rrIntervals) > 8 {
				rrIntervals = rrIntervals[1:]
			}
		}
		qrs = append(qrs, p)
		lastQRS = p
		lastSlope = maxSlopeAround(filtered, p, int(0.075*fs))
	}

	for _, p := range peaks {
		pk := integrated[p]
		if p-lastQRS < refractory {
			npki = 0.125*pk + 0.875*npki
			threshold1 = npki + 0.25*(spki-npki)
			continue
		}
		if pk > threshold1 {
			// T-wave discrimination: a candidate close to the previous
			// QRS with less than half its slope is a T wave.
			if len(qrs) > 0 && p-lastQRS < tWaveWin {
				slope := maxSlopeAround(filtered, p, int(0.075*fs))
				if slope < 0.5*lastSlope {
					res.TWavesVeto++
					npki = 0.125*pk + 0.875*npki
					threshold1 = npki + 0.25*(spki-npki)
					continue
				}
			}
			acceptPeak(p)
			spki = 0.125*pk + 0.875*spki
		} else {
			npki = 0.125*pk + 0.875*npki
		}
		threshold1 = npki + 0.25*(spki-npki)

		// Search-back: if no QRS for 1.66x the average RR, accept the
		// largest peak above half threshold inside the gap.
		if cfg.SearchBack && len(rrIntervals) >= 2 && len(qrs) > 0 {
			avgRR := dsp.Mean(rrIntervals)
			if float64(p-lastQRS)/fs > 1.66*avgRR {
				lo := lastQRS + refractory
				hi := p
				best, bestV := -1, threshold1*0.5
				for _, q := range peaks {
					if q <= lo || q >= hi {
						continue
					}
					if integrated[q] > bestV {
						best, bestV = q, integrated[q]
					}
				}
				if best > 0 {
					// Insert in order.
					acceptPeakInOrder(&qrs, best)
					lastQRS = qrs[len(qrs)-1]
					spki = 0.25*integrated[best] + 0.75*spki
					res.SearchBack++
				}
			}
		}
	}

	// Refine R locations on the conditioned input: the integrated signal
	// lags by roughly half the integration window plus filter delay.
	if cfg.RefineOnRaw {
		half := int(0.10 * fs)
		for i, p := range qrs {
			lo := p - win - half
			hi := p + half
			if m := dsp.ArgMax(x, lo, hi); m >= 0 {
				qrs[i] = m
			}
		}
		qrs = dedupeSorted(qrs, refractory)
	}
	res.RPeaks = qrs
	return res, nil
}

// arenaBuf checks a buffer out of a (heap when a is nil).
func arenaBuf(a *dsp.Arena, n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	return a.F64(n)
}

// fivePointDerivative implements the Pan-Tompkins derivative
// y(n) = (2x(n) + x(n-1) - x(n-3) - 2x(n-4)) / 8 * fs, written into y
// (length len(x), must not alias x).
func fivePointDerivative(y, x []float64, fs float64) []float64 {
	n := len(x)
	y = y[:n]
	for i := 0; i < 4 && i < n; i++ {
		y[i] = 0
	}
	for i := 4; i < n; i++ {
		y[i] = (2*x[i] + x[i-1] - x[i-3] - 2*x[i-4]) / 8 * fs
	}
	return y
}

// causalMovingAverage averages the last win samples into y (length
// len(x), must not alias x: trailing-edge subtraction re-reads x[i-win]).
func causalMovingAverage(y, x []float64, win int) []float64 {
	n := len(x)
	y = y[:n]
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += x[i]
		if i >= win {
			acc -= x[i-win]
		}
		den := win
		if i+1 < win {
			den = i + 1
		}
		y[i] = acc / float64(den)
	}
	return y
}

// maxSlopeAround returns the maximum absolute first difference of x in a
// window of +-r samples around p.
func maxSlopeAround(x []float64, p, r int) float64 {
	lo := dsp.ClampInt(p-r, 1, len(x)-1)
	hi := dsp.ClampInt(p+r, 1, len(x)-1)
	best := 0.0
	for i := lo; i <= hi; i++ {
		d := x[i] - x[i-1]
		if d < 0 {
			d = -d
		}
		if d > best {
			best = d
		}
	}
	return best
}

// acceptPeakInOrder inserts p into the sorted slice qrs.
func acceptPeakInOrder(qrs *[]int, p int) {
	s := *qrs
	i := len(s)
	for i > 0 && s[i-1] > p {
		i--
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = p
	*qrs = s
}

// dedupeSorted removes peaks closer than minDist, keeping the first.
func dedupeSorted(qrs []int, minDist int) []int {
	if len(qrs) == 0 {
		return qrs
	}
	out := qrs[:1]
	for _, p := range qrs[1:] {
		if p-out[len(out)-1] >= minDist {
			out = append(out, p)
		}
	}
	return out
}
