package ecg

import "repro/internal/dsp"

// Streaming forms of the ECG conditioning and detection stages. The
// batch pipeline recomputes morphology, filtering and Pan-Tompkins over
// the whole rolling window on every hop; these carry their state across
// pushes so each sample is conditioned exactly once.

// BaselineStream is the streaming form of RemoveBaseline: the
// morphological opening-then-closing baseline estimate subtracted from
// the (delayed) input. Its output matches RemoveBaseline sample for
// sample, including the window clamping at both stream edges. The
// four cascaded erosion/dilation stages need l1-1 + l2-1 samples of
// lookahead (about 0.5 s at the paper's configuration).
type BaselineStream struct {
	stages [4]*dsp.MovExtStream
	raw    *dsp.Ring
	b1, b2 []float64 // inter-stage scratch, reused across pushes
	out    int       // conditioned samples emitted
	la     int
}

// NewBaselineStream builds the streaming baseline remover for cfg.
// The naive-engine flag only selects the cost model of the batch path;
// both engines compute the same sliding extrema, so the stream always
// uses the O(1)-amortized deque kernels.
func NewBaselineStream(cfg BaselineConfig) *BaselineStream {
	l1, l2 := cfg.elementLengths()
	h1l, h1r := (l1-1)/2, l1/2
	h2l, h2r := (l2-1)/2, l2/2
	s := &BaselineStream{}
	// Opening: erosion then dilation with the transposed element.
	s.stages[0] = dsp.NewMovExtStream(h1l, h1r, true)
	s.stages[1] = dsp.NewMovExtStream(h1r, h1l, false)
	// Closing: dilation then erosion with the transposed element.
	s.stages[2] = dsp.NewMovExtStream(h2l, h2r, false)
	s.stages[3] = dsp.NewMovExtStream(h2r, h2l, true)
	for _, st := range s.stages {
		s.la += st.Lookahead()
	}
	s.raw = dsp.NewRing(s.la + baselineSubChunk + 2)
	return s
}

// baselineSubChunk bounds how many samples travel through the cascade
// per inner iteration, so the raw-history ring stays a fixed size no
// matter how large a chunk the caller pushes.
const baselineSubChunk = 256

// Lookahead returns the total pipeline latency in samples.
func (s *BaselineStream) Lookahead() int { return s.la }

// Shift returns 0: the baseline estimate is centered.
func (s *BaselineStream) Shift() int { return 0 }

// Push consumes raw ECG samples and appends the baseline-removed
// samples whose estimate is complete. The two scratch buffers ping-pong
// through the cascade: each stage fully consumes its input before the
// buffer is rewritten two stages later, so steady state allocates
// nothing once the buffers have grown to the chunk size.
func (s *BaselineStream) Push(dst, x []float64) []float64 {
	for len(x) > 0 {
		sub := x
		if len(sub) > baselineSubChunk {
			sub = x[:baselineSubChunk]
		}
		x = x[len(sub):]
		s.raw.Append(sub)
		a := s.stages[0].Push(s.b1[:0], sub)
		b := s.stages[1].Push(s.b2[:0], a)
		a = s.stages[2].Push(a[:0], b)
		b = s.stages[3].Push(b[:0], a)
		dst = s.subtract(dst, b)
		s.b1, s.b2 = a, b
	}
	return dst
}

// Flush drains the morphology cascade (end-of-stream window clamping)
// and appends the final conditioned samples.
func (s *BaselineStream) Flush(dst []float64) []float64 {
	for i := range s.stages {
		est := s.stages[i].Flush(nil)
		for j := i + 1; j < len(s.stages); j++ {
			est = s.stages[j].Push(nil, est)
		}
		dst = s.subtract(dst, est)
	}
	return dst
}

// subtract emits raw[t] - baseline[t] for each newly available estimate.
func (s *BaselineStream) subtract(dst []float64, est []float64) []float64 {
	for _, b := range est {
		dst = append(dst, s.raw.At(s.out)-b)
		s.out++
	}
	return dst
}

// Reset returns the stream to its initial state.
func (s *BaselineStream) Reset() {
	for _, st := range s.stages {
		st.Reset()
	}
	s.raw.Reset()
	s.out = 0
}

// PTStream is the incremental Pan-Tompkins QRS detector: the band-pass,
// five-point derivative, squaring and moving-window integration run as
// per-sample state machines, and the dual adaptive thresholds, T-wave
// discrimination, search-back and R-refinement operate on short ring
// buffers. It replicates the stages of DetectQRS on the conditioned
// stream, so the R peaks it emits agree with the batch detector away
// from pathological peak chains.
//
// R peaks are emitted exactly once, in strictly increasing order, as
// soon as they are confirmed (accepted or recovered by search-back) and
// the refinement window has arrived: about RefractMs + 100 ms after the
// integrated-signal peak.
type PTStream struct {
	cfg  PTConfig
	fs   float64
	band *dsp.SOSStream
	fbuf []float64 // per-chunk band-pass scratch, reused across pushes

	// Five-point derivative + squaring + moving integration state.
	d0, d1, d2, d3 float64 // last four band-passed samples
	sqRing         []float64
	win            int
	acc            float64

	// Short histories for slope checks, refinement and search-back.
	filt  *dsp.Ring // band-passed
	raw   *dsp.Ring // conditioned input
	integ *dsp.Ring // integrated

	n int // samples consumed

	// Candidate detection on the integrated signal (plateau-aware local
	// maxima with refractory suppression, the streaming counterpart of
	// dsp.FindPeaks).
	candStart  int // start of the current rising plateau, -1 when none
	candVal    float64
	pending    int // finalized-candidate-in-waiting
	pendingVal float64
	hasPending bool

	// Threshold initialization from the first two seconds.
	initN            int
	initMax, initSum float64
	inited           bool
	early            []int // candidates finalized before initialization

	// Adaptive threshold state.
	spki, npki, th1 float64
	refractory      int
	tWaveWin        int
	slopeR          int
	halfRefine      int
	nQRS            int
	lastQRS         int
	lastSlope       float64
	rr              [8]float64
	rrLen           int

	// Finalized candidate peaks retained for search-back.
	hist []histPeak

	// Accepted peaks awaiting refinement, and emission bookkeeping.
	accepted    []int
	lastRefined int

	// Counters mirroring Result.
	SearchBack int
	TWaveVeto  int
}

type histPeak struct {
	idx int
	val float64
}

// NewPTStream builds the incremental detector. cfg.BandSOS, when set,
// is used directly (the core device caches it); otherwise the band-pass
// is designed here.
func NewPTStream(cfg PTConfig) (*PTStream, error) {
	cfg = cfg.normalized()
	sos := cfg.BandSOS
	if sos == nil {
		var err error
		if sos, err = DesignPTBandPass(cfg); err != nil {
			return nil, err
		}
	}
	fs := cfg.FS
	win := int(cfg.WindowMs / 1000 * fs)
	if win < 1 {
		win = 1
	}
	// Six seconds of history covers the search-back horizon (1.66x the
	// slowest physiological RR) plus the refinement window; one extra
	// sub-chunk absorbs the batched band-pass lookahead.
	histN := int(6*fs) + ptSubChunk
	s := &PTStream{
		cfg:         cfg,
		fs:          fs,
		band:        dsp.NewSOSStream(sos, 0, false),
		sqRing:      make([]float64, win),
		win:         win,
		filt:        dsp.NewRing(histN),
		raw:         dsp.NewRing(histN),
		integ:       dsp.NewRing(histN),
		candStart:   -1,
		initN:       int(2 * fs),
		refractory:  int(cfg.RefractMs / 1000 * fs),
		tWaveWin:    int(cfg.TWaveMs / 1000 * fs),
		slopeR:      int(0.075 * fs),
		halfRefine:  int(0.10 * fs),
		lastQRS:     -int(cfg.RefractMs / 1000 * fs),
		lastRefined: -1 << 30,
	}
	return s, nil
}

// Lookahead returns the worst-case confirmation delay in samples: an
// integrated-signal peak is finalized one refractory period after it
// occurs and refined once the +100 ms window has arrived.
func (s *PTStream) Lookahead() int { return s.refractory + s.halfRefine }

// Push consumes conditioned ECG samples and returns the R peaks
// confirmed by this chunk (absolute indices into the conditioned
// stream), appended to rs.
//
// The band-pass runs over the whole chunk through the pipelined SOS
// kernel before the per-sample detection loop; a chunked causal Push is
// bit-identical to the per-sample recurrence, so detection sees exactly
// the samples it would have one at a time.
func (s *PTStream) Push(rs []int, x []float64) []int {
	if len(x) == 0 {
		return rs
	}
	for len(x) > 0 {
		sub := x
		if len(sub) > ptSubChunk {
			sub = x[:ptSubChunk]
		}
		x = x[len(sub):]
		s.fbuf = s.band.Push(s.fbuf[:0], sub)
		s.raw.Append(sub)
		s.filt.Append(s.fbuf)
		for k := range sub {
			rs = s.pushSample(rs, s.fbuf[k])
		}
	}
	return rs
}

// ptSubChunk bounds how far the raw/filtered rings run ahead of the
// per-sample detection loop; the rings are sized for the search-back
// horizon plus this lookahead, so batching never overwrites history the
// detector can still read.
const ptSubChunk = 256

// pushSample advances the per-sample detection state machines with one
// band-passed sample f (the raw and filtered rings were already extended
// by Push).
func (s *PTStream) pushSample(rs []int, f float64) []int {
	i := s.n

	// Five-point derivative (zero for the first four samples), squared.
	var d float64
	if i >= 4 {
		d = (2*f + s.d0 - s.d2 - 2*s.d3) / 8 * s.fs
	}
	s.d3, s.d2, s.d1, s.d0 = s.d2, s.d1, s.d0, f
	sqv := d * d

	// Causal moving-window integration with warm-up denominator.
	s.acc += sqv
	if i >= s.win {
		s.acc -= s.sqRing[i%s.win]
	}
	s.sqRing[i%s.win] = sqv
	den := s.win
	if i+1 < s.win {
		den = i + 1
	}
	gi := s.acc / float64(den)
	s.integ.Push(gi)
	s.n++

	// Threshold initialization statistics over the first two seconds.
	if i < s.initN {
		if i == 0 || gi > s.initMax {
			s.initMax = gi
		}
		s.initSum += gi
		if i == s.initN-1 {
			s.initThresholds(s.initN)
			for _, p := range s.early {
				s.processPeak(p)
			}
			s.early = s.early[:0]
		}
	}

	// Candidate local-max detection on the integrated signal.
	if i >= 1 {
		prev := s.integ.At(i - 1)
		if s.candStart >= 0 {
			switch {
			case gi == s.candVal:
				// plateau continues
			case gi < s.candVal:
				s.offerCandidate(s.candStart, s.candVal)
				s.candStart = -1
			default:
				s.candStart, s.candVal = i, gi
			}
		} else if gi > prev && gi >= 0 {
			s.candStart, s.candVal = i, gi
		}
	}
	// Refractory finalization of the pending candidate: once no future
	// candidate can start within minDist, the pending peak is decided.
	if s.hasPending {
		barrier := i
		if s.candStart >= 0 {
			barrier = s.candStart
		}
		if barrier >= s.pending+s.refractory {
			s.finalize(s.pending, s.pendingVal)
			s.hasPending = false
		}
	}

	return s.drainRefined(rs, false)
}

// offerCandidate applies the minDist suppression of dsp.FindPeaks
// incrementally: within a refractory distance the higher peak wins.
func (s *PTStream) offerCandidate(idx int, val float64) {
	if s.hasPending {
		if idx-s.pending < s.refractory {
			if val > s.pendingVal {
				s.pending, s.pendingVal = idx, val
			}
			return
		}
		s.finalize(s.pending, s.pendingVal)
	}
	s.pending, s.pendingVal = idx, val
	s.hasPending = true
}

// finalize records a suppressed-peak survivor and runs it through the
// adaptive thresholds (or queues it until initialization completes).
func (s *PTStream) finalize(idx int, val float64) {
	s.hist = append(s.hist, histPeak{idx: idx, val: val})
	s.prune()
	if !s.inited {
		s.early = append(s.early, idx)
		return
	}
	s.processPeak(idx)
}

// prune drops history peaks older than the search-back horizon.
func (s *PTStream) prune() {
	horizon := s.n - int(6*s.fs)
	keep := 0
	for keep < len(s.hist) && s.hist[keep].idx < horizon {
		keep++
	}
	if keep > 0 {
		s.hist = append(s.hist[:0], s.hist[keep:]...)
	}
}

func (s *PTStream) initThresholds(n int) {
	mean := 0.0
	if n > 0 {
		mean = s.initSum / float64(n)
	}
	s.spki = 0.25 * s.initMax
	s.npki = 0.5 * mean
	s.th1 = s.npki + 0.25*(s.spki-s.npki)
	s.inited = true
}

// maxSlope mirrors maxSlopeAround on the band-passed ring.
func (s *PTStream) maxSlope(p int) float64 {
	lo := p - s.slopeR
	hi := p + s.slopeR
	if lo < 1 {
		lo = 1
	}
	if m := s.filt.N() - 1; hi > m {
		hi = m
	}
	if min := s.filt.Start() + 1; lo < min {
		lo = min
	}
	best := 0.0
	for i := lo; i <= hi; i++ {
		d := s.filt.At(i) - s.filt.At(i-1)
		if d < 0 {
			d = -d
		}
		if d > best {
			best = d
		}
	}
	return best
}

// accept mirrors the batch acceptPeak: RR bookkeeping, slope capture.
func (s *PTStream) accept(p int) {
	if s.nQRS > 0 {
		rrv := float64(p-s.lastQRS) / s.fs
		if s.rrLen < len(s.rr) {
			s.rr[s.rrLen] = rrv
			s.rrLen++
		} else {
			copy(s.rr[:], s.rr[1:])
			s.rr[len(s.rr)-1] = rrv
		}
	}
	s.nQRS++
	s.lastQRS = p
	s.lastSlope = s.maxSlope(p)
	s.accepted = append(s.accepted, p)
}

// processPeak replicates one iteration of the batch threshold loop.
func (s *PTStream) processPeak(p int) {
	pk := s.integ.At(p)
	if p-s.lastQRS < s.refractory {
		s.npki = 0.125*pk + 0.875*s.npki
		s.th1 = s.npki + 0.25*(s.spki-s.npki)
		return
	}
	if pk > s.th1 {
		if s.nQRS > 0 && p-s.lastQRS < s.tWaveWin {
			slope := s.maxSlope(p)
			if slope < 0.5*s.lastSlope {
				s.TWaveVeto++
				s.npki = 0.125*pk + 0.875*s.npki
				s.th1 = s.npki + 0.25*(s.spki-s.npki)
				return
			}
		}
		s.accept(p)
		s.spki = 0.125*pk + 0.875*s.spki
	} else {
		s.npki = 0.125*pk + 0.875*s.npki
	}
	s.th1 = s.npki + 0.25*(s.spki-s.npki)

	// Search-back: recover the largest missed peak in a long RR gap.
	if s.cfg.SearchBack && s.rrLen >= 2 && s.nQRS > 0 {
		avg := 0.0
		for i := 0; i < s.rrLen; i++ {
			avg += s.rr[i]
		}
		avg /= float64(s.rrLen)
		if float64(p-s.lastQRS)/s.fs > 1.66*avg {
			lo := s.lastQRS + s.refractory
			hi := p
			best, bestV := -1, s.th1*0.5
			for _, hp := range s.hist {
				if hp.idx <= lo || hp.idx >= hi {
					continue
				}
				if hp.val > bestV {
					best, bestV = hp.idx, hp.val
				}
			}
			if best > 0 {
				s.accepted = append(s.accepted, best)
				s.lastQRS = best
				s.spki = 0.25*s.integ.At(best) + 0.75*s.spki
				s.SearchBack++
			}
		}
	}
}

// drainRefined refines and emits every accepted peak whose refinement
// window has arrived (or everything, at flush).
func (s *PTStream) drainRefined(rs []int, flush bool) []int {
	emitted := 0
	for _, p := range s.accepted {
		if !flush && p+s.halfRefine >= s.n {
			break
		}
		r := p
		if s.cfg.RefineOnRaw {
			lo := p - s.win - s.halfRefine
			hi := p + s.halfRefine
			if m := s.raw.ArgMax(lo, hi); m >= 0 {
				r = m
			}
			if r-s.lastRefined < s.refractory {
				emitted++
				continue // duplicate after refinement: drop (dedupeSorted)
			}
			s.lastRefined = r
		}
		rs = append(rs, r)
		emitted++
	}
	if emitted > 0 {
		s.accepted = append(s.accepted[:0], s.accepted[emitted:]...)
	}
	return rs
}

// Flush ends the stream: the pending candidate is decided, a
// shorter-than-2-s stream initializes from what arrived, and the
// remaining accepted peaks are refined against the final samples.
func (s *PTStream) Flush(rs []int) []int {
	if s.hasPending {
		s.finalize(s.pending, s.pendingVal)
		s.hasPending = false
	}
	if !s.inited {
		s.initThresholds(s.n)
		for _, p := range s.early {
			s.processPeak(p)
		}
		s.early = s.early[:0]
	}
	return s.drainRefined(rs, true)
}

// Reset returns the detector to its initial state, keeping allocations.
func (s *PTStream) Reset() {
	s.band.Reset()
	s.d0, s.d1, s.d2, s.d3 = 0, 0, 0, 0
	for i := range s.sqRing {
		s.sqRing[i] = 0
	}
	s.acc = 0
	s.filt.Reset()
	s.raw.Reset()
	s.integ.Reset()
	s.n = 0
	s.candStart = -1
	s.hasPending = false
	s.initMax, s.initSum = 0, 0
	s.inited = false
	s.early = s.early[:0]
	s.spki, s.npki, s.th1 = 0, 0, 0
	s.nQRS = 0
	s.lastQRS = -s.refractory
	s.lastSlope = 0
	s.rrLen = 0
	s.hist = s.hist[:0]
	s.accepted = s.accepted[:0]
	s.lastRefined = -1 << 30
	s.SearchBack, s.TWaveVeto = 0, 0
}
