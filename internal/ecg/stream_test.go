package ecg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dsp"
)

func synthECG(n int, fs float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	// Spiky quasi-periodic train over a wandering baseline: enough QRS
	// structure for the detector without pulling in the physio package.
	period := int(0.8 * fs)
	for i := range x {
		ph := i % period
		v := 0.05 * math.Sin(2*math.Pi*float64(i)/fs*0.3) // drift
		if ph == period/2 {
			v += 1.0 // R spike
		}
		if d := ph - period/2; d == -1 || d == 1 {
			v += 0.4
		}
		v += 0.15 * math.Sin(2*math.Pi*float64(ph)/float64(period)) // P/T-ish
		v += 0.02 * rng.NormFloat64()
		x[i] = v
	}
	return x
}

func TestBaselineStreamMatchesBatch(t *testing.T) {
	fs := 250.0
	cfg := DefaultBaseline(fs)
	x := synthECG(3000, fs, 7)
	want := RemoveBaseline(x, cfg)
	for _, chunk := range []int{1, 13, 250, 997, 3000} {
		s := NewBaselineStream(cfg)
		var got []float64
		for pos := 0; pos < len(x); pos += chunk {
			end := pos + chunk
			if end > len(x) {
				end = len(x)
			}
			got = s.Push(got, x[pos:end])
		}
		got = s.Flush(got)
		if len(got) != len(want) {
			t.Fatalf("chunk %d: %d outputs, want %d", chunk, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("chunk %d: sample %d differs: %g vs %g", chunk, i, got[i], want[i])
			}
		}
	}
}

func TestBaselineStreamReset(t *testing.T) {
	fs := 250.0
	cfg := DefaultBaseline(fs)
	x := synthECG(1500, fs, 8)
	s := NewBaselineStream(cfg)
	first := s.Flush(s.Push(nil, x))
	s.Reset()
	second := s.Flush(s.Push(nil, x))
	if len(first) != len(second) {
		t.Fatalf("lengths differ after Reset: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("sample %d differs after Reset", i)
		}
	}
}

// streamRPeaks runs the incremental detector over x in the given chunk
// size and returns all confirmed R peaks.
func streamRPeaks(t *testing.T, cfg PTConfig, x []float64, chunk int) []int {
	t.Helper()
	s, err := NewPTStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rs []int
	for pos := 0; pos < len(x); pos += chunk {
		end := pos + chunk
		if end > len(x) {
			end = len(x)
		}
		rs = s.Push(rs, x[pos:end])
	}
	return s.Flush(rs)
}

func TestPTStreamMatchesBatch(t *testing.T) {
	fs := 250.0
	x := synthECG(int(40*fs), fs, 9)
	cfg := DefaultPT(fs)
	batch, err := DetectQRS(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.RPeaks) < 30 {
		t.Fatalf("batch found only %d peaks", len(batch.RPeaks))
	}
	for _, chunk := range []int{1, 50, 250, 1024, len(x)} {
		rs := streamRPeaks(t, cfg, x, chunk)
		if len(rs) != len(batch.RPeaks) {
			t.Fatalf("chunk %d: %d peaks, batch %d", chunk, len(rs), len(batch.RPeaks))
		}
		for i := range rs {
			if d := rs[i] - batch.RPeaks[i]; d < -1 || d > 1 {
				t.Errorf("chunk %d: peak %d at %d, batch %d", chunk, i, rs[i], batch.RPeaks[i])
			}
		}
	}
}

func TestPTStreamOrderingAndUniqueness(t *testing.T) {
	fs := 250.0
	x := synthECG(int(30*fs), fs, 10)
	rs := streamRPeaks(t, DefaultPT(fs), x, 37)
	for i := 1; i < len(rs); i++ {
		if rs[i] <= rs[i-1] {
			t.Fatalf("peaks not strictly increasing at %d: %d after %d", i, rs[i], rs[i-1])
		}
	}
}

func TestPTStreamUsesCachedBandSOS(t *testing.T) {
	fs := 250.0
	cfg := DefaultPT(fs)
	sos, err := DesignPTBandPass(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.BandSOS = sos
	x := synthECG(int(20*fs), fs, 11)
	with := streamRPeaks(t, cfg, x, 100)
	cfg.BandSOS = nil
	without := streamRPeaks(t, cfg, x, 100)
	if len(with) != len(without) {
		t.Fatalf("cached band SOS changes detection: %d vs %d", len(with), len(without))
	}
}

func TestPTStreamReset(t *testing.T) {
	fs := 250.0
	x := synthECG(int(15*fs), fs, 12)
	s, err := NewPTStream(DefaultPT(fs))
	if err != nil {
		t.Fatal(err)
	}
	first := s.Flush(s.Push(nil, x))
	s.Reset()
	second := s.Flush(s.Push(nil, x))
	if len(first) != len(second) {
		t.Fatalf("Reset changes peak count: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("peak %d differs after Reset", i)
		}
	}
}

// The streaming band-pass must agree with the batch causal filter the
// detector runs on (same cascade, same zero state).
func TestPTBandPassStreamConsistency(t *testing.T) {
	fs := 250.0
	cfg := DefaultPT(fs)
	sos, err := DesignPTBandPass(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := synthECG(2000, fs, 13)
	want := sos.Filter(x)
	st := dsp.NewSOSStream(sos, 0, false)
	got := st.Push(nil, x)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("sample %d differs", i)
		}
	}
}
