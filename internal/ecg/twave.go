package ecg

import "repro/internal/dsp"

// T-wave localization. The Carvalho et al. X-point variant searches the
// ICG minimum inside [RT, 1.75*RT], where RT is the R-to-T interval; the
// paper notes that the end of the T wave is an unreliable marker, which is
// exactly why it replaces this rule (Section IV-C). Both variants are
// implemented; this file provides the T peak the baseline variant needs.

// TPeak locates the T-wave apex after the R peak at rIdx: the maximum of
// the low-pass-filtered ECG inside the physiological T window
// [0.12 s, min(0.55*RR, 0.45 s)] after R.
func TPeak(x []float64, rIdx int, rr, fs float64) int {
	if rr <= 0 {
		rr = 0.8
	}
	lo := rIdx + int(0.12*fs)
	hiOff := 0.55 * rr
	if hiOff > 0.45 {
		hiOff = 0.45
	}
	hi := rIdx + int(hiOff*fs)
	if hi > len(x) {
		hi = len(x)
	}
	if lo >= hi {
		return -1
	}
	return dsp.ArgMax(x, lo, hi)
}

// DesignTWaveLowPass designs the 10 Hz zero-phase low-pass that isolates
// the T wave from QRS residue, suitable for caching at device
// construction. A nil cascade (design failure at exotic sampling rates)
// makes TPeaksForBeatsWith fall back to the unfiltered signal.
func DesignTWaveLowPass(fs float64) (dsp.SOS, error) {
	return dsp.DesignButterLowPass(4, 10, fs)
}

// TPeaksForBeats locates T peaks for every detected beat. The input
// should be the conditioned ECG; a 10 Hz zero-phase low-pass isolates the
// T wave from QRS residue. Returns -1 where no T wave was found.
func TPeaksForBeats(x []float64, rPeaks []int, fs float64) []int {
	sos, _ := DesignTWaveLowPass(fs)
	return TPeaksForBeatsWith(nil, sos, x, rPeaks, fs)
}

// TPeaksForBeatsWith is TPeaksForBeats with a pre-designed low-pass (nil
// skips smoothing) and an arena for the filtering scratch. The returned
// index slice is always heap-allocated — callers retain it.
func TPeaksForBeatsWith(a *dsp.Arena, sos dsp.SOS, x []float64, rPeaks []int, fs float64) []int {
	sm := x
	if sos != nil {
		sm = sos.FiltFiltWith(a, x)
	}
	out := make([]int, len(rPeaks))
	for i, r := range rPeaks {
		rr := 0.8
		if i+1 < len(rPeaks) {
			rr = float64(rPeaks[i+1]-r) / fs
		} else if i > 0 {
			rr = float64(r-rPeaks[i-1]) / fs
		}
		out[i] = TPeak(sm, r, rr, fs)
	}
	return out
}
