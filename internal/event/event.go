// Package event is the unified typed event-stream surface of the
// serving stack. Everything the system discovers asynchronously — a
// delineated beat, a contact-health transition, a PMU mode change, a
// session eviction, a session end — is delivered as one Event value
// through one Sink interface, instead of the historical four-way split
// (returned beat slices, per-beat callbacks, engine-global close hooks,
// and polled health accessors).
//
// Design rules, pinned by the tests in this package and the parity
// tests in core and session:
//
//   - Event is a compact tagged union: one flat struct, no pointers, no
//     interfaces, so a Sink can buffer events in a preallocated ring
//     with zero per-event allocations. The Kind tag says which payload
//     fields are meaningful; every event is stamped with the session ID,
//     the source's beat-attempt index and the signal time at which it
//     became true.
//   - Producers emit events at the point they become true, as pure
//     functions of the samples pushed so far — never of wall time or
//     chunking — so an event sequence is deterministic and byte-identical
//     for any chunking and any worker count (the parity and determinism
//     laws of the streaming layers, lifted to events).
//   - Sink.Emit is synchronous and must not block: producers call it on
//     their processing goroutine (the session's worker). Slow or remote
//     consumers sit behind a bounded, drop-counting sink (Buffer, Chan)
//     rather than stalling the hot path. A sink must copy the Event if
//     it retains it beyond the call (it is a value — assignment copies).
package event

import (
	"sync"
	"sync/atomic"

	"repro/internal/hemo"
)

// Kind tags the event union.
type Kind uint8

// Event kinds.
const (
	// KindBeat: a delineated beat completed; Params carries the full
	// hemodynamic parameter set, including the quality gate's verdict.
	KindBeat Kind = 1 + iota
	// KindHealth: the accept-rate EWMA crossed the armed health floor
	// (Below reports the direction; AcceptEWMA and Floor the values).
	// Emitted only at transitions — per beat, the only points where the
	// EWMA changes — never periodically.
	KindHealth
	// KindMode: the PMU governor changed operating mode (Mode/PrevMode
	// hold core.PowerMode values).
	KindMode
	// KindEviction: the serving engine evicted the session for dead
	// contact (Reason holds session.ReasonDeadContact); always followed
	// by the session's KindSessionClosed.
	KindEviction
	// KindSessionClosed: the session finished — client close and
	// eviction alike; the final event of every session's stream.
	KindSessionClosed
	// KindReadmit: an evicted session was re-admitted after its
	// quarantine cool-down (session.Engine.Reopen); the first event of
	// the re-admitted stream. Restored reports whether the session was
	// rehydrated from a durable snapshot (warm template fast re-lock)
	// or cold-started; Beat/TimeS carry the restored clocks, AcceptEWMA
	// the restored contact-health reading.
	KindReadmit
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindBeat:
		return "beat"
	case KindHealth:
		return "health"
	case KindMode:
		return "mode"
	case KindEviction:
		return "eviction"
	case KindSessionClosed:
		return "session-closed"
	case KindReadmit:
		return "readmit"
	default:
		return "kind-?"
	}
}

// Event is the compact tagged union delivered through every Sink. Only
// the stamp (Kind, Session, Beat, TimeS) is meaningful for all kinds;
// the payload fields are grouped by the kinds that set them and are
// zero otherwise. It is a plain value — copy freely, never shared.
//
// The icg:wal marker pins the WAL codec contract: Event (and every
// type it embeds) must stay flat — fixed-size, pointer-free — so the
// fixed-width codec in internal/wal can encode it without indirection.
// The eventflat analyzer enforces this structurally at lint time.
//
//icg:wal
type Event struct {
	Kind Kind
	// Session is the serving-layer session ID (0 for a bare
	// core.Streamer that was armed without one).
	Session uint64
	// Beat is the producer's beat-attempt count (scored and failed
	// delineations alike) as of this event — the per-session event
	// clock. Lifecycle events carry the final count.
	Beat int
	// TimeS is the signal time (seconds of samples pushed, never wall
	// time) at which the event became true; for beats, the closing R
	// peak of the beat (Params.TimeS anchors the opening R).
	TimeS float64

	// Params is the beat's hemodynamic parameter set (KindBeat).
	Params hemo.BeatParams

	// AcceptEWMA is the per-beat accept-rate EWMA at the event
	// (KindHealth; also stamped on KindEviction/KindSessionClosed as
	// the final contact-health reading).
	AcceptEWMA float64
	// Below reports the transition direction of a KindHealth event:
	// true when the EWMA dropped below the floor, false on recovery.
	Below bool
	// Floor is the armed health floor the EWMA crossed (KindHealth).
	Floor float64

	// Mode and PrevMode are core.PowerMode values (KindMode).
	Mode, PrevMode int

	// Reason is a session.CloseReason value (KindEviction,
	// KindSessionClosed).
	Reason int
	// Accepted and Emitted are the session's final gate tally
	// (KindEviction, KindSessionClosed).
	Accepted, Emitted int
	// Dropped counts beats the session's bounded Drain ring discarded
	// (KindSessionClosed; 0 for subscribed and callback sessions).
	Dropped uint64

	// Restored reports whether a re-admitted session was rehydrated
	// from a durable snapshot rather than cold-started (KindReadmit).
	Restored bool
}

// Sink receives events. Emit is synchronous, must not block, and must
// not call back into the producer (the streamer, session or engine that
// emitted the event); implementations that retain the event must copy
// it. The producer guarantees per-source FIFO order and single-threaded
// delivery: a given session's events arrive one at a time, in order, on
// that session's worker goroutine.
type Sink interface {
	Emit(e Event)
}

// Func adapts a function to the Sink interface.
type Func func(Event)

// Emit calls f.
func (f Func) Emit(e Event) { f(e) }

// Tee fans every event out to each sink in order.
type Tee []Sink

// Emit delivers e to every sink in order.
func (t Tee) Emit(e Event) {
	for _, s := range t {
		s.Emit(e)
	}
}

// Discard is the sink that drops everything.
var Discard Sink = Func(func(Event) {})

// Buffer is a bounded ring sink: the newest Cap events are retained,
// older ones are overwritten and counted in Dropped. Emit and Drain
// never allocate after construction, so it is the zero-allocation
// delivery path of the streaming hot loop; it is internally locked, so
// one goroutine may Emit while another Drains. Pool and recycle Buffers
// with Reset — the ring keeps its allocation.
type Buffer struct {
	mu      sync.Mutex
	ring    []Event
	start   int // index of the oldest buffered event
	n       int // buffered events
	dropped uint64
}

// NewBuffer returns a ring sink retaining up to capacity events
// (minimum 1).
func NewBuffer(capacity int) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	return &Buffer{ring: make([]Event, capacity)}
}

// Emit buffers e, overwriting the oldest event (and counting it
// dropped) when the ring is full.
func (b *Buffer) Emit(e Event) {
	b.mu.Lock()
	if b.n == len(b.ring) {
		b.ring[b.start] = e
		b.start++
		if b.start == len(b.ring) {
			b.start = 0
		}
		b.dropped++
	} else {
		i := b.start + b.n
		if i >= len(b.ring) {
			i -= len(b.ring)
		}
		b.ring[i] = e
		b.n++
	}
	b.mu.Unlock()
}

// Drain appends the buffered events to dst in arrival order and empties
// the ring; it allocates only if dst lacks capacity.
func (b *Buffer) Drain(dst []Event) []Event {
	b.mu.Lock()
	for i := 0; i < b.n; i++ {
		j := b.start + i
		if j >= len(b.ring) {
			j -= len(b.ring)
		}
		dst = append(dst, b.ring[j])
	}
	b.start, b.n = 0, 0
	b.mu.Unlock()
	return dst
}

// Len returns the number of buffered events.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// Cap returns the ring capacity.
func (b *Buffer) Cap() int { return len(b.ring) }

// Dropped returns how many events were overwritten before being
// drained.
func (b *Buffer) Dropped() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Reset empties the ring and clears the drop counter, keeping the
// allocation, so pooled Buffers carry no residue between sessions.
func (b *Buffer) Reset() {
	b.mu.Lock()
	b.start, b.n, b.dropped = 0, 0, 0
	b.mu.Unlock()
}

// Chan is the non-blocking bridge to a consumer goroutine: Emit sends
// to C when there is room and counts the event dropped otherwise, so a
// slow consumer can never stall the producer's worker. Close C yourself
// (or abandon it) when the producer is done; the producer never does.
type Chan struct {
	C       chan Event
	dropped atomic.Uint64
}

// NewChan returns a channel sink with the given buffer depth
// (minimum 1).
func NewChan(depth int) *Chan {
	if depth < 1 {
		depth = 1
	}
	return &Chan{C: make(chan Event, depth)}
}

// Emit sends e without blocking, counting it dropped when C is full.
func (c *Chan) Emit(e Event) {
	select {
	case c.C <- e:
	default:
		c.dropped.Add(1)
	}
}

// Dropped returns how many events were discarded because C was full.
func (c *Chan) Dropped() uint64 { return c.dropped.Load() }
