package event

import (
	"testing"

	"repro/internal/hemo"
)

func beat(i int) Event {
	return Event{Kind: KindBeat, Beat: i, TimeS: float64(i), Params: hemo.BeatParams{TimeS: float64(i)}}
}

func TestBufferFIFO(t *testing.T) {
	b := NewBuffer(8)
	for i := 0; i < 5; i++ {
		b.Emit(beat(i))
	}
	if b.Len() != 5 || b.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", b.Len(), b.Dropped())
	}
	got := b.Drain(nil)
	if len(got) != 5 {
		t.Fatalf("drained %d", len(got))
	}
	for i, e := range got {
		if e.Beat != i {
			t.Fatalf("event %d: beat %d out of order", i, e.Beat)
		}
	}
	if b.Len() != 0 {
		t.Fatal("drain did not empty")
	}
	// Refill after drain: the ring restarts cleanly.
	b.Emit(beat(9))
	if got := b.Drain(got[:0]); len(got) != 1 || got[0].Beat != 9 {
		t.Fatalf("after refill: %+v", got)
	}
}

func TestBufferOverwritesOldest(t *testing.T) {
	b := NewBuffer(4)
	for i := 0; i < 10; i++ {
		b.Emit(beat(i))
	}
	if b.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", b.Dropped())
	}
	got := b.Drain(nil)
	if len(got) != 4 {
		t.Fatalf("drained %d, want 4", len(got))
	}
	// The NEWEST events survive, in order.
	for i, e := range got {
		if e.Beat != 6+i {
			t.Fatalf("slot %d: beat %d, want %d", i, e.Beat, 6+i)
		}
	}
	b.Reset()
	if b.Len() != 0 || b.Dropped() != 0 {
		t.Fatal("Reset left residue")
	}
}

func TestBufferMinimumCapacity(t *testing.T) {
	b := NewBuffer(0)
	if b.Cap() != 1 {
		t.Fatalf("cap = %d", b.Cap())
	}
	b.Emit(beat(1))
	b.Emit(beat(2))
	if got := b.Drain(nil); len(got) != 1 || got[0].Beat != 2 {
		t.Fatalf("got %+v", got)
	}
}

// Emit and Drain must be allocation-free after construction — the
// property the streaming hot path's zero-allocation budget rests on.
func TestBufferEmitDoesNotAllocate(t *testing.T) {
	b := NewBuffer(16)
	dst := make([]Event, 0, 16)
	e := beat(1)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 8; i++ {
			b.Emit(e)
		}
		dst = b.Drain(dst[:0])
	})
	if allocs != 0 {
		t.Fatalf("Emit+Drain allocates %.1f objects/run, want 0", allocs)
	}
}

func TestFuncAndTee(t *testing.T) {
	var a, b []int
	tee := Tee{
		Func(func(e Event) { a = append(a, e.Beat) }),
		Func(func(e Event) { b = append(b, e.Beat) }),
	}
	tee.Emit(beat(1))
	tee.Emit(beat(2))
	if len(a) != 2 || len(b) != 2 || a[1] != 2 || b[0] != 1 {
		t.Fatalf("tee fan-out broken: a=%v b=%v", a, b)
	}
	Discard.Emit(beat(3)) // must not panic
}

func TestChanDropsWhenFull(t *testing.T) {
	c := NewChan(2)
	c.Emit(beat(1))
	c.Emit(beat(2))
	c.Emit(beat(3)) // full: dropped, not blocked
	if c.Dropped() != 1 {
		t.Fatalf("dropped = %d", c.Dropped())
	}
	if e := <-c.C; e.Beat != 1 {
		t.Fatalf("first = %d", e.Beat)
	}
	c.Emit(beat(4)) // room again
	if e := <-c.C; e.Beat != 2 {
		t.Fatalf("second = %d", e.Beat)
	}
	if e := <-c.C; e.Beat != 4 {
		t.Fatalf("third = %d", e.Beat)
	}
	if c.Dropped() != 1 {
		t.Fatalf("dropped = %d after recovery", c.Dropped())
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindBeat: "beat", KindHealth: "health", KindMode: "mode",
		KindEviction: "eviction", KindSessionClosed: "session-closed",
		Kind(99): "kind-?",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
