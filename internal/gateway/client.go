package gateway

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/event"
	"repro/internal/hw/radio"
	"repro/internal/wal"
)

// Client is the device side of the gateway protocol: it multiplexes
// many sample streams over one TCP connection and surfaces the
// subscribed sessions' event streams on Events. A background reader
// dispatches acks and events; Events delivery is blocking, so the
// caller must drain Events (or not subscribe to anything).
type Client struct {
	nc net.Conn

	wMu  sync.Mutex // serializes frame writes across streams
	wbuf []byte

	mu      sync.Mutex
	streams map[uint16]*ClientStream
	subAcks map[uint64]chan byte
	err     error // fatal connection error, set once
	closed  bool

	events chan event.Event
	done   chan struct{}
}

// ClientStream is one open session stream on a Client.
type ClientStream struct {
	c   *Client
	id  uint16
	enc chunkEncoder

	ack     chan byte // HelloAck / CloseAck codes, in order
	mu      sync.Mutex
	dead    error // set by a TypeErr stream notice (eviction)
	closing bool
}

// Dial connects a client to a gateway address. eventDepth sizes the
// Events channel (minimum 1).
func Dial(addr string, eventDepth int) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc, eventDepth), nil
}

// NewClient wraps an established connection. The client owns nc.
func NewClient(nc net.Conn, eventDepth int) *Client {
	if eventDepth < 1 {
		eventDepth = 1
	}
	c := &Client{
		nc:      nc,
		streams: make(map[uint16]*ClientStream),
		subAcks: make(map[uint64]chan byte),
		events:  make(chan event.Event, eventDepth),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// Events is the merged event stream of every session this client
// subscribed to (HelloSubscribe or Subscribe). The channel closes when
// the connection dies.
func (c *Client) Events() <-chan event.Event { return c.events }

// Err returns the fatal connection error, if any.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close tears the connection down. Open sessions are flush-closed by
// the gateway on disconnect.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.nc.Close()
	<-c.done
	return err
}

// writeFrame frames and writes one message (seq is per-stream and
// stamped by the caller for chunks; control frames carry seq 0).
func (c *Client) writeFrame(typ, seq byte, payload []byte) error {
	c.wMu.Lock()
	defer c.wMu.Unlock()
	c.wbuf = c.wbuf[:0]
	f := radio.Frame{Type: typ, Seq: seq, Payload: payload}
	var err error
	c.wbuf, err = f.AppendTo(c.wbuf)
	if err != nil {
		return err
	}
	_, err = c.nc.Write(c.wbuf)
	return err
}

// writeRaw writes pre-framed bytes (the chunk fast path).
func (c *Client) writeRaw(b []byte) error {
	c.wMu.Lock()
	defer c.wMu.Unlock()
	_, err := c.nc.Write(b)
	return err
}

// codeErr maps a non-OK ack code to an error.
func codeErr(code byte) error {
	if code == CodeOK {
		return nil
	}
	return fmt.Errorf("%w (code %d)", ErrRejected, code)
}

// Open opens session id as stream (a client-chosen per-connection
// handle; 0xFFFF is reserved). With subscribe set, the session's events
// arrive on Events.
func (c *Client) Open(stream uint16, id uint64, subscribe bool) (*ClientStream, error) {
	if stream == fatalStream {
		return nil, errors.New("gateway: stream id 0xFFFF is reserved")
	}
	cs := &ClientStream{c: c, id: stream, ack: make(chan byte, 1)}
	cs.enc.stream = stream
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	if _, dup := c.streams[stream]; dup {
		c.mu.Unlock()
		return nil, errors.New("gateway: stream id already open on this client")
	}
	c.streams[stream] = cs
	c.mu.Unlock()

	var flags byte
	if subscribe {
		flags = HelloSubscribe
	}
	payload := make([]byte, 0, 12)
	payload = append(payload, ProtocolVersion, flags)
	payload = putU16(payload, stream)
	payload = putU64(payload, id)
	if err := c.writeFrame(TypeHello, 0, payload); err != nil {
		c.dropStream(stream)
		return nil, err
	}
	code, err := c.waitAck(cs.ack)
	if err != nil {
		c.dropStream(stream)
		return nil, err
	}
	if err := codeErr(code); err != nil {
		c.dropStream(stream)
		return nil, err
	}
	return cs, nil
}

// Subscribe joins a live session's event stream without owning it.
func (c *Client) Subscribe(id uint64) error {
	ack := make(chan byte, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.subAcks[id] = ack
	c.mu.Unlock()
	if err := c.writeFrame(TypeSub, 0, putU64(nil, id)); err != nil {
		return err
	}
	code, err := c.waitAck(ack)
	if err != nil {
		return err
	}
	return codeErr(code)
}

func (c *Client) waitAck(ack chan byte) (byte, error) {
	select {
	case code := <-ack:
		return code, nil
	case <-c.done:
		if err := c.Err(); err != nil {
			return 0, err
		}
		return 0, io.ErrUnexpectedEOF
	}
}

func (c *Client) dropStream(stream uint16) {
	c.mu.Lock()
	delete(c.streams, stream)
	c.mu.Unlock()
}

// Push encodes the sample pairs into chunk frames (delta chains
// continuous with every previous Push on this stream) and writes them.
func (s *ClientStream) Push(ecg, z []float64) error {
	if len(ecg) != len(z) {
		return errors.New("gateway: push requires equal-length ecg/z channels")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead != nil {
		return s.dead
	}
	if s.closing {
		return ErrStreamClosed
	}
	if len(ecg) == 0 {
		return nil
	}
	frames, err := s.enc.appendChunks(nil, ecg, z)
	if err != nil {
		return err
	}
	return s.c.writeRaw(frames)
}

// Close flush-closes the stream's session and waits for the gateway's
// ack, which the server queues strictly after the session's final
// event.
func (s *ClientStream) Close() error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return ErrStreamClosed
	}
	s.closing = true
	s.mu.Unlock()
	if err := s.c.writeFrame(TypeCloseStream, 0, putU16(nil, s.id)); err != nil {
		return err
	}
	code, err := s.c.waitAck(s.ack)
	s.c.dropStream(s.id)
	if err != nil {
		return err
	}
	return codeErr(code)
}

// readLoop dispatches inbound frames: ack codes to their waiters,
// events to the Events channel (blocking — the merged stream is the
// client's to drain), stream notices onto their streams.
func (c *Client) readLoop() {
	sc := radio.NewScannerLimit(c.nc, radio.MaxPayloadExt)
	var err error
	for {
		var f *radio.Frame
		f, err = sc.Next()
		if err != nil {
			break
		}
		switch f.Type {
		case TypeHelloAck, TypeCloseAck:
			if len(f.Payload) != 3 {
				err = ErrBadPayload
			} else {
				c.mu.Lock()
				cs := c.streams[getU16(f.Payload)]
				c.mu.Unlock()
				if cs != nil {
					select {
					case cs.ack <- f.Payload[2]:
					default:
					}
				}
			}
		case TypeSubAck:
			if len(f.Payload) != 9 {
				err = ErrBadPayload
			} else {
				id := getU64(f.Payload)
				c.mu.Lock()
				ack := c.subAcks[id]
				delete(c.subAcks, id)
				c.mu.Unlock()
				if ack != nil {
					select {
					case ack <- f.Payload[8]:
					default:
					}
				}
			}
		case TypeEvent:
			ev, ok := wal.DecodeEvent(f.Payload)
			if !ok {
				err = ErrBadPayload
			} else {
				c.events <- ev
			}
		case TypeErr:
			if len(f.Payload) != 3 {
				err = ErrBadPayload
				break
			}
			stream := getU16(f.Payload)
			if stream == fatalStream {
				err = fmt.Errorf("gateway: connection condemned: %w", codeErr(f.Payload[2]))
			} else {
				c.mu.Lock()
				cs := c.streams[stream]
				c.mu.Unlock()
				if cs != nil {
					cs.mu.Lock()
					cs.dead = fmt.Errorf("gateway: stream closed by server: %w", codeErr(f.Payload[2]))
					cs.mu.Unlock()
				}
			}
		default:
			err = ErrBadPayload
		}
		if err != nil {
			break
		}
	}
	c.mu.Lock()
	if c.err == nil && !errors.Is(err, io.EOF) && !c.closed {
		c.err = err
	}
	c.mu.Unlock()
	c.nc.Close()
	close(c.events)
	close(c.done)
}
