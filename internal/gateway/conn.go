package gateway

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/event"
	"repro/internal/hw/radio"
	"repro/internal/session"
	"repro/internal/wal"
)

// writeTimeout bounds every frame write to a subscriber so one dead
// peer cannot wedge a writer goroutine (and through it, Close).
const writeTimeout = 30 * time.Second

// outMsg is one unframed outgoing message; the writer goroutine frames
// it (stamping the connection's egress seq) and writes it.
type outMsg struct {
	typ     byte
	payload []byte
}

// srvStream is one live ingest stream on a connection: its session and
// the receiving half of the delta codec.
type srvStream struct {
	sess *session.Session
	dec  chunkDecoder
}

// conn is one gateway connection: a reader goroutine owning all ingest
// state (streams table, decoders) and a writer goroutine draining the
// bounded out queue. Session workers touch the connection only through
// sendEvent, which never blocks.
type conn struct {
	g  *Gateway
	nc net.Conn

	streams map[uint16]*srvStream // reader-owned
	subs    map[uint64]*fanout    // every fanout this conn is a target of

	outMu     sync.RWMutex
	out       chan outMsg
	outClosed bool

	writerDone chan struct{}
}

func newConn(g *Gateway, nc net.Conn) *conn {
	return &conn{
		g:          g,
		nc:         nc,
		streams:    make(map[uint16]*srvStream),
		subs:       make(map[uint64]*fanout),
		out:        make(chan outMsg, g.cfg.EventQueue),
		writerDone: make(chan struct{}),
	}
}

// sendEvent queues one event for this subscriber. Called synchronously
// from session workers (the Sink contract), so it must never block: a
// full queue drops the event and counts it.
func (c *conn) sendEvent(e event.Event) {
	payload := make([]byte, 0, wal.EventSize)
	payload = wal.EncodeEvent(payload, &e)
	c.outMu.RLock()
	defer c.outMu.RUnlock()
	if c.outClosed {
		c.g.eventsDropped.Add(1)
		return
	}
	select {
	case c.out <- outMsg{typ: TypeEvent, payload: payload}:
		c.g.eventsOut.Add(1)
	default:
		c.g.eventsDropped.Add(1)
	}
}

// send queues a control frame from the reader goroutine. Blocking is
// deliberate: a peer that won't drain its acks gets TCP backpressure,
// never an unbounded queue.
func (c *conn) send(typ byte, payload []byte) {
	c.out <- outMsg{typ: typ, payload: payload}
}

func (c *conn) sendAck(typ byte, stream uint16, code byte) {
	c.send(typ, []byte{byte(stream >> 8), byte(stream), code})
}

// writer drains the out queue, framing each message with the
// connection's egress seq counter into one reused buffer.
func (c *conn) writer() {
	defer close(c.writerDone)
	bw := bufio.NewWriterSize(c.nc, 4096)
	var seq byte
	var scratch []byte
	dead := false
	flush := func() {
		if dead {
			return
		}
		c.nc.SetWriteDeadline(time.Now().Add(writeTimeout))
		if bw.Flush() != nil {
			dead = true // drain the queue without writing from here on
		}
	}
	for m := range c.out {
		if !dead {
			scratch = scratch[:0]
			f := radio.Frame{Type: m.typ, Seq: seq, Payload: m.payload}
			var err error
			scratch, err = f.AppendTo(scratch)
			if err == nil {
				seq++
				if _, werr := bw.Write(scratch); werr != nil {
					dead = true
				}
			}
		}
		// Coalesce: only flush when the queue has gone idle.
		if len(c.out) == 0 {
			flush()
		}
	}
	flush()
}

// serve runs the connection: reader loop, then teardown. Any framing or
// protocol violation is fatal — TCP is reliable, so corruption means a
// broken peer.
func (c *conn) serve() {
	go c.writer()
	err := c.readLoop()
	if err != nil && !errors.Is(err, io.EOF) {
		c.g.protocolErrs.Add(1)
	}
	c.teardown()
}

// fatal notifies the peer the connection is condemned and returns the
// error that kills the read loop.
func (c *conn) fatal(code byte, err error) error {
	c.sendAck(TypeErr, fatalStream, code)
	return err
}

// readLoop drains frames off the wire and dispatches them.
//
// Aliasing invariant: every frame returned by sc.Next aliases the
// scanner's internal read buffer and is valid ONLY until the following
// Next call. The handlers below run synchronously inside this loop and
// must fully consume f.Payload (decode it, or copy the bytes) before
// returning; retaining a sub-slice of f.Payload past the handler is a
// use-after-overwrite bug that no test can catch deterministically.
// This zero-copy ingest path is why this file is on the unsafeguard
// analyzer's safelist: if pinned-buffer tricks (unsafe casts of the
// payload into sample slices) ever become necessary, they live here,
// under this invariant, and nowhere else.
func (c *conn) readLoop() error {
	sc := radio.NewScannerLimit(c.nc, radio.MaxPayloadExt)
	for {
		f, err := sc.Next()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return io.EOF
			}
			if errors.Is(err, radio.ErrBadCRC) || errors.Is(err, radio.ErrPayloadTooLarge) {
				return c.fatal(CodeProtocol, err)
			}
			return err // transport error
		}
		var herr error
		switch f.Type {
		case TypeHello:
			herr = c.handleHello(f)
		case TypeChunk:
			herr = c.handleChunk(f)
		case TypeCloseStream:
			herr = c.handleCloseStream(f)
		case TypeSub:
			herr = c.handleSub(f)
		default:
			herr = ErrBadPayload
		}
		if herr != nil {
			return c.fatal(CodeProtocol, herr)
		}
	}
}

// errCode maps a session error to its wire code.
func errCode(err error) byte {
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, session.ErrDuplicateID):
		return CodeDuplicate
	case errors.Is(err, session.ErrQuarantined):
		return CodeQuarantined
	case errors.Is(err, session.ErrEngineClosed):
		return CodeEngineClosed
	case errors.Is(err, session.ErrSessionEvicted):
		return CodeEvicted
	case errors.Is(err, session.ErrSessionClosed):
		return CodeEvicted
	default:
		return CodeProtocol
	}
}

func (c *conn) handleHello(f *radio.Frame) error {
	if len(f.Payload) != 12 {
		return ErrBadPayload
	}
	ver, flags := f.Payload[0], f.Payload[1]
	stream := getU16(f.Payload[2:])
	id := getU64(f.Payload[4:])
	if ver != ProtocolVersion {
		c.sendAck(TypeHelloAck, stream, CodeBadVersion)
		return nil
	}
	if stream == fatalStream {
		return ErrBadPayload
	}
	if _, dup := c.streams[stream]; dup {
		return ErrBadPayload // stream ids are the client's to keep unique
	}
	if len(c.streams) >= c.g.cfg.MaxStreams {
		c.sendAck(TypeHelloAck, stream, CodeLimit)
		return nil
	}

	// Register the fan-out before the session exists so no early event
	// can slip past it; back out if the engine rejects the open.
	fo := &fanout{g: c.g, id: id}
	if flags&HelloSubscribe != 0 {
		fo.targets = append(fo.targets, &subTarget{c: c, stream: stream})
	}
	c.g.subMu.Lock()
	if _, live := c.g.subs[id]; live {
		c.g.subMu.Unlock()
		c.sendAck(TypeHelloAck, stream, CodeDuplicate)
		return nil
	}
	c.g.subs[id] = fo
	c.g.subMu.Unlock()

	sess, err := c.g.shardFor(id).Subscribe(id, fo)
	if err != nil {
		c.g.dropFanout(id, fo)
		c.sendAck(TypeHelloAck, stream, errCode(err))
		return nil
	}
	c.streams[stream] = &srvStream{sess: sess}
	if flags&HelloSubscribe != 0 {
		c.subs[id] = fo
	}
	c.sendAck(TypeHelloAck, stream, CodeOK)
	return nil
}

func (c *conn) handleChunk(f *radio.Frame) error {
	if len(f.Payload) < chunkHeader {
		return ErrBadPayload
	}
	stream := getU16(f.Payload)
	st, ok := c.streams[stream]
	if !ok {
		return ErrBadPayload // chunk for a stream that was never opened
	}
	ecg, z, err := st.dec.decodeChunk(f)
	if err != nil {
		return err // seq gap or malformed payload: delta chain unsafe
	}
	c.g.framesIn.Add(1)
	c.g.samplesIn.Add(uint64(len(ecg)))
	if len(ecg) == 0 {
		return nil
	}
	// The blocking ingest path: PushOwned parks here when the session's
	// bounded backlog is full, which stalls this reader and lets TCP
	// flow control reach the device. Zero-copy: the decoder's buffer is
	// handed to the engine outright.
	if err := st.sess.PushOwned(ecg, z); err != nil {
		// Evicted or engine-closed mid-stream: a per-stream notice, not
		// a connection error. The stream is dead; drop it.
		delete(c.streams, stream)
		c.sendAck(TypeErr, stream, errCode(err))
	}
	return nil
}

func (c *conn) handleCloseStream(f *radio.Frame) error {
	if len(f.Payload) != 2 {
		return ErrBadPayload
	}
	stream := getU16(f.Payload)
	st, ok := c.streams[stream]
	if !ok {
		c.sendAck(TypeCloseAck, stream, CodeUnknownStream)
		return nil
	}
	delete(c.streams, stream)
	// Blocks until the flush has run and the final events (lookahead
	// tail beats, KindSessionClosed) have been emitted — so the
	// CloseAck is queued strictly after the session's last event.
	err := st.sess.Close()
	c.sendAck(TypeCloseAck, stream, errCode(err))
	return nil
}

func (c *conn) handleSub(f *radio.Frame) error {
	if len(f.Payload) != 8 {
		return ErrBadPayload
	}
	id := getU64(f.Payload)
	fo, live := c.g.lookup(id)
	if !live {
		c.send(TypeSubAck, append(putU64(nil, id), CodeNotFound))
		return nil
	}
	if _, dup := c.subs[id]; !dup {
		fo.add(&subTarget{c: c, stream: subStream})
		c.subs[id] = fo
	}
	c.send(TypeSubAck, append(putU64(nil, id), CodeOK))
	return nil
}

// teardown runs when the read loop exits: detach from every fan-out
// first (no more events queued for this peer), flush-close the sessions
// this connection owned, then stop the writer.
func (c *conn) teardown() {
	for id, fo := range c.subs {
		fo.removeConn(c)
		delete(c.subs, id)
	}
	for stream, st := range c.streams {
		delete(c.streams, stream)
		st.sess.Close() // flush; remaining subscribers get final events
	}
	c.outMu.Lock()
	c.outClosed = true
	close(c.out)
	c.outMu.Unlock()
	<-c.writerDone
	c.nc.Close()
}
