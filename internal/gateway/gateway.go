package gateway

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/session"
)

// Config tunes the gateway.
type Config struct {
	// Shards is the number of session.Engine shards session IDs are
	// consistent-hashed across (default 1). Each shard has its own
	// bounded worker pool, so shards scale the serving layer across
	// cores and — with snapshot/WAL handoff, ROADMAP item 2 — across
	// processes.
	Shards int
	// Session configures every shard's engine (workers PER SHARD,
	// backpressure depth, health eviction, WAL, ...). The per-session
	// determinism law is indifferent to sharding: a session's events
	// are a pure function of its own chunk order on whichever shard
	// the hash picks.
	Session session.Config
	// EventQueue bounds each connection's outgoing event queue
	// (default 1024). Egress never blocks a session worker: when a
	// subscriber's connection falls this far behind, further events
	// are dropped and counted (Stats.EventsDropped) — the bounded-sink
	// event contract at the network edge.
	EventQueue int
	// MaxStreams caps live streams per connection (default 4096).
	MaxStreams int
}

// Gateway is the TCP ingest server: radio-framed chunk streams in,
// typed event streams out.
type Gateway struct {
	dev    *core.Device
	cfg    Config
	shards []*session.Engine

	subMu sync.RWMutex
	subs  map[uint64]*fanout // live session ID → event fan-out

	connMu sync.Mutex
	conns  map[*conn]struct{}
	closed bool

	lnMu sync.Mutex
	lns  map[net.Listener]struct{}

	wg sync.WaitGroup

	// Atomic load tallies behind Stats.
	connsTotal    atomic.Uint64
	connsOpen     atomic.Int64
	framesIn      atomic.Uint64
	samplesIn     atomic.Uint64
	eventsOut     atomic.Uint64
	eventsDropped atomic.Uint64
	protocolErrs  atomic.Uint64
}

// New starts a gateway serving streams of dev across consistent-hashed
// engine shards. Call Serve with one or more listeners, then Close.
func New(dev *core.Device, cfg Config) *Gateway {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.EventQueue <= 0 {
		cfg.EventQueue = 1024
	}
	if cfg.MaxStreams <= 0 {
		cfg.MaxStreams = 4096
	}
	g := &Gateway{
		dev:   dev,
		cfg:   cfg,
		subs:  make(map[uint64]*fanout),
		conns: make(map[*conn]struct{}),
		lns:   make(map[net.Listener]struct{}),
	}
	g.shards = make([]*session.Engine, cfg.Shards)
	for i := range g.shards {
		g.shards[i] = session.NewEngine(dev, cfg.Session)
	}
	return g
}

// splitmix64 whitens a session ID before the jump hash: IDs are often
// sequential, and the jump hash wants uniform keys.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// shardFor consistent-hashes a session ID to its engine shard
// (Lamping–Veach jump hash): when the shard count grows from K to K+1,
// only ~1/(K+1) of the IDs move — the property that will let the
// snapshot+WAL handoff (ROADMAP item 2) rebalance live fleets without
// reshuffling everything.
func (g *Gateway) shardFor(id uint64) *session.Engine {
	return g.shards[jumpHash(splitmix64(id), len(g.shards))]
}

// jumpHash is Lamping & Veach's consistent hash into buckets.
func jumpHash(key uint64, buckets int) int {
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// fanout is a live session's event fan-out: the single sink the session
// was opened with, delivering to every subscribed connection. Emit runs
// on the session's worker, so it must never block — each target is a
// bounded queue that drops (counted) when full. On the final
// KindSessionClosed the fanout unregisters itself.
type fanout struct {
	g  *Gateway
	id uint64

	mu      sync.RWMutex
	targets []*subTarget
}

// subTarget is one subscriber connection's slot in a fanout.
type subTarget struct {
	c      *conn
	stream uint16 // owner's stream id, or subStream for TypeSub joins
}

// subStream marks a TypeSub subscription (no owning stream).
const subStream = 0xFFFF

// Emit implements event.Sink on the session's worker.
func (f *fanout) Emit(e event.Event) {
	f.mu.RLock()
	for _, t := range f.targets {
		t.c.sendEvent(e)
	}
	f.mu.RUnlock()
	if e.Kind == event.KindSessionClosed {
		f.g.dropFanout(f.id, f)
	}
}

func (f *fanout) add(t *subTarget) {
	f.mu.Lock()
	f.targets = append(f.targets, t)
	f.mu.Unlock()
}

// removeConn detaches every slot of a tearing-down connection.
func (f *fanout) removeConn(c *conn) {
	f.mu.Lock()
	kept := f.targets[:0]
	for _, t := range f.targets {
		if t.c != c {
			kept = append(kept, t)
		}
	}
	f.targets = kept
	f.mu.Unlock()
}

// register installs a fanout for a session about to be opened.
func (g *Gateway) register(id uint64) *fanout {
	f := &fanout{g: g, id: id}
	g.subMu.Lock()
	g.subs[id] = f
	g.subMu.Unlock()
	return f
}

// dropFanout unregisters a finished session's fanout (worker-called; it
// must still be the registered one — a re-admitted session may have
// re-registered).
func (g *Gateway) dropFanout(id uint64, f *fanout) {
	g.subMu.Lock()
	if g.subs[id] == f {
		delete(g.subs, id)
	}
	g.subMu.Unlock()
}

// lookup returns the live session's fanout, if any.
func (g *Gateway) lookup(id uint64) (*fanout, bool) {
	g.subMu.RLock()
	f, ok := g.subs[id]
	g.subMu.RUnlock()
	return f, ok
}

// Serve accepts connections on ln until the listener or the gateway is
// closed. It may be called on several listeners concurrently.
func (g *Gateway) Serve(ln net.Listener) error {
	g.lnMu.Lock()
	g.lns[ln] = struct{}{}
	g.lnMu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			g.connMu.Lock()
			closed := g.closed
			g.connMu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		c := newConn(g, nc)
		g.connMu.Lock()
		if g.closed {
			g.connMu.Unlock()
			nc.Close()
			return nil
		}
		g.conns[c] = struct{}{}
		g.connMu.Unlock()
		g.connsTotal.Add(1)
		g.connsOpen.Add(1)
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			c.serve()
			g.connMu.Lock()
			delete(g.conns, c)
			g.connMu.Unlock()
			g.connsOpen.Add(-1)
		}()
	}
}

// Close stops accepting, tears down every connection (open sessions are
// flushed and closed), and closes the engine shards. The configured WAL
// (if any) is the caller's to close afterwards, per the session
// contract.
func (g *Gateway) Close() error {
	g.connMu.Lock()
	if g.closed {
		g.connMu.Unlock()
		return errors.New("gateway: already closed")
	}
	g.closed = true
	open := make([]*conn, 0, len(g.conns))
	for c := range g.conns {
		open = append(open, c)
	}
	g.connMu.Unlock()
	g.lnMu.Lock()
	for ln := range g.lns {
		ln.Close()
	}
	g.lnMu.Unlock()
	for _, c := range open {
		c.nc.Close()
	}
	g.wg.Wait()
	var firstErr error
	for _, e := range g.shards {
		if err := e.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Stats is the gateway's load snapshot.
type Stats struct {
	ConnsOpen     int64
	ConnsTotal    uint64
	FramesIn      uint64 // chunk frames ingested
	SamplesIn     uint64 // sample pairs ingested
	EventsOut     uint64 // events delivered to subscriber queues
	EventsDropped uint64 // events dropped at full subscriber queues
	ProtocolErrs  uint64 // connections killed for protocol violations
	Shards        []session.EngineStats
}

// Stats returns the gateway's load snapshot, one engine tally per
// shard.
func (g *Gateway) Stats() Stats {
	s := Stats{
		ConnsOpen:     g.connsOpen.Load(),
		ConnsTotal:    g.connsTotal.Load(),
		FramesIn:      g.framesIn.Load(),
		SamplesIn:     g.samplesIn.Load(),
		EventsOut:     g.eventsOut.Load(),
		EventsDropped: g.eventsDropped.Load(),
		ProtocolErrs:  g.protocolErrs.Load(),
		Shards:        make([]session.EngineStats, len(g.shards)),
	}
	for i, e := range g.shards {
		s.Shards[i] = e.Stats()
	}
	return s
}

// SessionsOpen sums open sessions across shards.
func (g *Gateway) SessionsOpen() int {
	n := 0
	for _, e := range g.shards {
		n += e.Len()
	}
	return n
}
