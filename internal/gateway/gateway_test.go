package gateway

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/hw/radio"
	"repro/internal/physio"
	"repro/internal/session"
	"repro/internal/wal"
)

// testDevice builds the shared device model.
func testDevice(t testing.TB) *core.Device {
	t.Helper()
	dev, err := core.NewDevice(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

// testStreams acquires per-session input channels: a few base physio
// acquisitions, scaled per session ID so every stream is distinct.
func testStreams(t testing.TB, dev *core.Device, ids []uint64, seconds float64) map[uint64][2][]float64 {
	t.Helper()
	var base [][2][]float64
	for sid := 1; sid <= 2; sid++ {
		sub, _ := physio.SubjectByID(sid)
		acq, err := dev.Acquire(&sub, seconds)
		if err != nil {
			t.Fatal(err)
		}
		base = append(base, [2][]float64{acq.ECG, acq.Z})
	}
	out := make(map[uint64][2][]float64, len(ids))
	for _, id := range ids {
		b := base[id%uint64(len(base))]
		scale := 1 + float64(id%97)/97e3
		ecg := make([]float64, len(b[0]))
		z := make([]float64, len(b[1]))
		for i := range ecg {
			ecg[i] = b[0][i] * scale
			z[i] = b[1][i] * scale
		}
		out[id] = [2][]float64{ecg, z}
	}
	return out
}

// evHash folds an event's canonical wal encoding into a session hash —
// the same 204 bytes the gateway puts on the wire, so two event streams
// hash equal iff they are field-identical in the same order.
type evHash struct {
	h   map[uint64]uint64
	buf []byte
}

func newEvHash() *evHash { return &evHash{h: make(map[uint64]uint64)} }

func (r *evHash) add(e *event.Event) {
	r.buf = wal.EncodeEvent(r.buf[:0], e)
	h := fnv.New64a()
	var seed [8]byte
	prev := r.h[e.Session]
	for i := 0; i < 8; i++ {
		seed[i] = byte(prev >> (8 * i))
	}
	h.Write(seed[:])
	h.Write(r.buf)
	r.h[e.Session] = h.Sum64()
}

// startGateway serves g on an ephemeral loopback port.
func startGateway(t testing.TB, g *Gateway) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go g.Serve(ln)
	return ln.Addr().String()
}

// referenceHashes computes the in-process ground truth: the same
// chunk-framed sample stream — identical frame boundaries, identical
// bits, delivered by PushOwned to an identically-configured local
// engine — hashed per session with the canonical event codec.
func referenceHashes(t *testing.T, dev *core.Device, cfg session.Config,
	ids []uint64, streams map[uint64][2][]float64, chunk int) map[uint64]uint64 {
	t.Helper()
	eng := session.NewEngine(dev, cfg)
	hashes := newEvHash()
	var mu sync.Mutex
	sessions := make(map[uint64]*session.Session, len(ids))
	for _, id := range ids {
		id := id
		s, err := eng.Subscribe(id, event.Func(func(e event.Event) {
			mu.Lock()
			hashes.add(&e)
			mu.Unlock()
		}))
		if err != nil {
			t.Fatal(err)
		}
		sessions[id] = s
	}
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			in := streams[id]
			if err := ReplayChunks(sessions[id], in[0], in[1], chunk); err != nil {
				t.Error(err)
				return
			}
			if err := sessions[id].Close(); err != nil {
				t.Error(err)
			}
		}(id)
	}
	wg.Wait()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	return hashes.h
}

// TestLoopbackDeterminism is the tentpole proof: a fleet of sessions
// driven over real TCP through the gateway produces, per session, an
// event stream hash-identical to the same chunks pushed in-process —
// for every chunking (including 1-sample) and any shard/worker count.
func TestLoopbackDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback fleet in -short")
	}
	dev := testDevice(t)
	ids := []uint64{11, 12, 13, 14, 15, 16}
	streams := testStreams(t, dev, ids, 6.0)

	for _, tc := range []struct {
		chunk, shards, workers int
	}{
		{1, 1, 1},
		{7, 3, 4},
		{50, 2, 2},
	} {
		t.Run(fmt.Sprintf("chunk%d_shards%d_workers%d", tc.chunk, tc.shards, tc.workers), func(t *testing.T) {
			scfg := session.Config{Workers: tc.workers, MaxPending: 8}
			want := referenceHashes(t, dev, scfg, ids, streams, tc.chunk)

			g := New(dev, Config{Shards: tc.shards, Session: scfg})
			addr := startGateway(t, g)
			c, err := Dial(addr, 256)
			if err != nil {
				t.Fatal(err)
			}

			got := newEvHash()
			closed := make(chan struct{})
			go func() {
				defer close(closed)
				for e := range c.Events() {
					got.add(&e)
				}
			}()

			var wg sync.WaitGroup
			for i, id := range ids {
				cs, err := c.Open(uint16(i+1), id, true)
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(cs *ClientStream, id uint64) {
					defer wg.Done()
					in := streams[id]
					for i := 0; i < len(in[0]); i += tc.chunk {
						end := i + tc.chunk
						if end > len(in[0]) {
							end = len(in[0])
						}
						if err := cs.Push(in[0][i:end], in[1][i:end]); err != nil {
							t.Error(err)
							return
						}
					}
					if err := cs.Close(); err != nil {
						t.Error(err)
					}
				}(cs, id)
			}
			wg.Wait()
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			<-closed

			st := g.Stats()
			if err := g.Close(); err != nil {
				t.Fatal(err)
			}
			if st.EventsDropped != 0 {
				t.Fatalf("determinism run dropped %d events; queue was undersized for the proof", st.EventsDropped)
			}
			if len(got.h) != len(ids) {
				t.Fatalf("events for %d sessions, want %d", len(got.h), len(ids))
			}
			for _, id := range ids {
				if got.h[id] != want[id] {
					t.Errorf("session %d: gateway hash %x != in-process %x", id, got.h[id], want[id])
				}
			}
			if st.FramesIn == 0 || st.SamplesIn == 0 {
				t.Fatalf("stats recorded no ingest: %+v", st)
			}
		})
	}
}

// TestCrossConnSubscriber proves fan-out: a second connection joining a
// live session's event stream sees exactly the owner's events.
func TestCrossConnSubscriber(t *testing.T) {
	dev := testDevice(t)
	ids := []uint64{42}
	streams := testStreams(t, dev, ids, 4.0)
	g := New(dev, Config{Session: session.Config{Workers: 2, MaxPending: 8}})
	defer g.Close()
	addr := startGateway(t, g)

	owner, err := Dial(addr, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	watcher, err := Dial(addr, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer watcher.Close()

	cs, err := owner.Open(1, 42, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := watcher.Subscribe(42); err != nil {
		t.Fatal(err)
	}
	if err := watcher.Subscribe(42); err != nil {
		t.Fatal(err) // idempotent re-subscribe
	}

	// collect hashes a connection's events; sessionDone closes when the
	// final KindSessionClosed of session 42 has been folded in.
	collect := func(c *Client) (*evHash, chan struct{}, chan struct{}) {
		h := newEvHash()
		done := make(chan struct{})
		sessionDone := make(chan struct{})
		go func() {
			defer close(done)
			for e := range c.Events() {
				h.add(&e)
				if e.Kind == event.KindSessionClosed && e.Session == 42 {
					close(sessionDone)
				}
			}
		}()
		return h, done, sessionDone
	}
	oh, odone, _ := collect(owner)
	wh, wdone, wclosed := collect(watcher)

	in := streams[42]
	for i := 0; i < len(in[0]); i += 25 {
		end := i + 25
		if end > len(in[0]) {
			end = len(in[0])
		}
		if err := cs.Push(in[0][i:end], in[1][i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	owner.Close()
	<-odone
	// The watcher's KindSessionClosed is its stream end; wait for it.
	select {
	case <-wclosed:
	case <-time.After(10 * time.Second):
		t.Fatal("watcher never saw the session close")
	}
	watcher.Close()
	<-wdone
	if oh.h[42] == 0 {
		t.Fatal("owner saw no events")
	}
	if wh.h[42] != oh.h[42] {
		t.Fatalf("watcher hash %x != owner hash %x", wh.h[42], oh.h[42])
	}
}

// TestDuplicateAndNotFound pins the ack codes: opening a live ID twice
// is rejected, subscribing to a dead ID is rejected.
func TestDuplicateAndNotFound(t *testing.T) {
	dev := testDevice(t)
	g := New(dev, Config{Session: session.Config{Workers: 1, MaxPending: 4}})
	defer g.Close()
	addr := startGateway(t, g)

	a, err := Dial(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if _, err := a.Open(1, 7, false); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Open(1, 7, false); !errors.Is(err, ErrRejected) {
		t.Fatalf("duplicate open: err=%v, want ErrRejected", err)
	}
	if err := b.Subscribe(999); !errors.Is(err, ErrRejected) {
		t.Fatalf("subscribe to dead id: err=%v, want ErrRejected", err)
	}
	if err := b.Subscribe(7); err != nil {
		t.Fatalf("subscribe to live id: %v", err)
	}
}

// TestSeqGapKillsConnection pins the strict transport stance: a chunk
// arriving out of sequence condemns the connection (the delta chain is
// broken; resyncing would corrupt samples silently).
func TestSeqGapKillsConnection(t *testing.T) {
	dev := testDevice(t)
	g := New(dev, Config{Session: session.Config{Workers: 1, MaxPending: 4}})
	defer g.Close()
	addr := startGateway(t, g)

	c, err := Dial(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cs, err := c.Open(1, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Push([]float64{1, 2}, []float64{40, 41}); err != nil {
		t.Fatal(err)
	}
	cs.enc.seq++ // simulate a lost frame
	if err := cs.Push([]float64{3}, []float64{42}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.done:
	case <-time.After(10 * time.Second):
		t.Fatal("connection survived a sequence gap")
	}
	if err := c.Err(); err == nil {
		t.Fatal("client recorded no fatal error")
	}
	if g.Stats().ProtocolErrs == 0 {
		t.Fatal("gateway did not count the protocol error")
	}
}

// TestGarbageKillsConnection pins the same stance one layer down: a
// framing-level CRC error on the reliable transport is fatal, and the
// peer is told so with a condemned-connection notice.
func TestGarbageKillsConnection(t *testing.T) {
	dev := testDevice(t)
	g := New(dev, Config{Session: session.Config{Workers: 1}})
	defer g.Close()
	addr := startGateway(t, g)

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	f := radio.Frame{Type: TypeHello, Seq: 0, Payload: make([]byte, 12)}
	enc, err := f.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	enc[len(enc)-1] ^= 0xFF // corrupt the CRC
	if _, err := nc.Write(enc); err != nil {
		t.Fatal(err)
	}
	sc := radio.NewScannerLimit(nc, radio.MaxPayloadExt)
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	rf, err := sc.Next()
	if err != nil {
		t.Fatalf("expected a condemnation notice, got %v", err)
	}
	if rf.Type != TypeErr || getU16(rf.Payload) != fatalStream || rf.Payload[2] != CodeProtocol {
		t.Fatalf("unexpected notice: type %#x payload % x", rf.Type, rf.Payload)
	}
	if _, err := sc.Next(); err == nil {
		t.Fatal("connection stayed open after a CRC error")
	}
}

// TestEventQueueBounded pins the egress backpressure contract at the
// unit level: a subscriber queue never grows past its bound — overflow
// is dropped and counted, and a worker emitting into it never blocks.
func TestEventQueueBounded(t *testing.T) {
	dev := testDevice(t)
	g := New(dev, Config{EventQueue: 2, Session: session.Config{Workers: 1}})
	defer g.Close()
	p1, p2 := net.Pipe()
	defer p1.Close()
	defer p2.Close()
	c := newConn(g, p1) // writer never started: the queue cannot drain
	for i := 0; i < 5; i++ {
		c.sendEvent(event.Event{Kind: event.KindBeat, Session: 1})
	}
	if got := g.Stats().EventsOut; got != 2 {
		t.Fatalf("queued %d events, want the bound 2", got)
	}
	if got := g.Stats().EventsDropped; got != 3 {
		t.Fatalf("dropped %d events, want 3", got)
	}
	// Post-teardown emits (a worker racing a disconnect) are dropped,
	// never a panic on the closed queue.
	c.outMu.Lock()
	c.outClosed = true
	close(c.out)
	c.outMu.Unlock()
	c.sendEvent(event.Event{Kind: event.KindBeat, Session: 1})
	if got := g.Stats().EventsDropped; got != 4 {
		t.Fatalf("post-close emit not drop-counted: %d", got)
	}
}

// TestConnDropFlushesSessions pins disconnect semantics: when a client
// vanishes mid-stream, the gateway flush-closes its sessions (remaining
// subscribers see the final events) instead of leaking them.
func TestConnDropFlushesSessions(t *testing.T) {
	dev := testDevice(t)
	ids := []uint64{77}
	streams := testStreams(t, dev, ids, 4.0)
	g := New(dev, Config{Session: session.Config{Workers: 1, MaxPending: 8}})
	defer g.Close()
	addr := startGateway(t, g)

	watcher, err := Dial(addr, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer watcher.Close()

	c, err := Dial(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := c.Open(1, 77, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := watcher.Subscribe(77); err != nil {
		t.Fatal(err)
	}
	in := streams[77]
	if err := cs.Push(in[0], in[1]); err != nil {
		t.Fatal(err)
	}
	c.Close() // vanish without CloseStream

	deadline := time.After(10 * time.Second)
	for {
		var closed bool
		select {
		case e, ok := <-watcher.Events():
			if !ok {
				t.Fatal("watcher connection died")
			}
			closed = e.Kind == event.KindSessionClosed && e.Session == 77
		case <-deadline:
			t.Fatalf("session not flush-closed after disconnect; %d still open", g.SessionsOpen())
		}
		if closed {
			break
		}
	}
	if n := g.SessionsOpen(); n != 0 {
		t.Fatalf("%d sessions still open after disconnect flush", n)
	}
}
