// Package gateway is the network ingest layer of the serving stack: a
// TCP server speaking a compact chunk protocol built on the repaired
// radio framing (internal/hw/radio), multiplexing many device streams
// per connection into session.Engine shards chosen by consistent
// hashing, and fanning each session's typed event stream back out to
// its subscribers.
//
// Wire protocol. Every message is one radio frame — sync byte, type,
// seq, one-byte length, payload, CRC16 — read through a strict
// radio.Scanner: TCP is a reliable transport, so any framing error
// (bad CRC, oversized length, sequence gap) means a broken or
// malicious peer and kills the connection rather than resyncing.
// Payloads use the format's full 255-byte range (radio.MaxPayloadExt),
// not the BLE ATT limit. All integers are big-endian.
//
//	TypeHello    [ver:1][flags:1][stream:2][session:8]  open a session
//	TypeHelloAck [stream:2][code:1]                     result
//	TypeChunk    [stream:2][n:1][n×ecg Δ][n×z Δ]        samples; Frame.Seq = per-stream counter
//	TypeCloseStream [stream:2]                          flush + close
//	TypeCloseAck [stream:2][code:1]                     after final events delivered
//	TypeSub      [session:8]                            join a live session's event stream
//	TypeSubAck   [session:8][code:1]                    result
//	TypeEvent    [event:204]                            one event, canonical wal codec
//	TypeErr      [stream:2][code:1]                     stream notice; stream 0xFFFF = fatal
//
// Sample encoding (TypeChunk) is LOSSLESS: each channel is an
// XOR-delta chain over the raw IEEE-754 bits, uvarint-encoded —
// consecutive physiological samples share sign/exponent/high-mantissa
// bits, so deltas are short, and a decoded stream is bit-identical to
// the pushed one, which is what lets the loopback determinism proof
// demand hash-identical event streams. Delta state persists across
// frames per stream; Frame.Seq increments per chunk frame and wraps at
// 256, so a single lost or reordered frame is detected as a sequence
// gap (ErrSeqGap) before the broken delta chain can corrupt samples.
//
// Backpressure is per connection and unbounded-queue-free in both
// directions: ingest applies it by blocking — the connection's reader
// calls Session.PushOwned, which blocks once that session's bounded
// backlog (session.Config.MaxPending) is full, so the kernel's TCP
// flow control pushes back to the device; egress never blocks a
// session worker — events go through a bounded per-connection queue
// and are dropped (counted, Stats.EventsDropped) when a subscriber
// falls behind, per the event-sink contract.
package gateway

import (
	"encoding/binary"
	"errors"
	"math"

	"repro/internal/hw/radio"
)

// Gateway frame types (disjoint from the BLE beat-link types).
const (
	TypeHello       = 0x10
	TypeHelloAck    = 0x11
	TypeChunk       = 0x12
	TypeCloseStream = 0x13
	TypeCloseAck    = 0x14
	TypeSub         = 0x15
	TypeSubAck      = 0x16
	TypeEvent       = 0x17
	TypeErr         = 0x18
)

// ProtocolVersion is the Hello version byte this implementation speaks.
const ProtocolVersion = 1

// HelloSubscribe (Hello flags bit 0) subscribes the opening connection
// to the session's event stream.
const HelloSubscribe = 0x01

// Ack / error codes.
const (
	CodeOK            = 0
	CodeDuplicate     = 1 // session ID already open on its shard
	CodeQuarantined   = 2 // inside the post-eviction cool-down
	CodeEngineClosed  = 3
	CodeBadVersion    = 4
	CodeUnknownStream = 5
	CodeEvicted       = 6 // session was evicted mid-stream
	CodeNotFound      = 7 // Sub for a session that is not live
	CodeLimit         = 8 // per-connection stream cap reached
	CodeProtocol      = 9 // malformed frame / sequence gap (fatal)
)

// fatalStream marks a TypeErr frame that condemns the whole connection.
const fatalStream = 0xFFFF

// Protocol errors.
var (
	ErrSeqGap       = errors.New("gateway: chunk sequence gap")
	ErrBadPayload   = errors.New("gateway: malformed frame payload")
	ErrStreamClosed = errors.New("gateway: stream closed")
	ErrRejected     = errors.New("gateway: request rejected")
)

// deltaState is one channel's XOR-delta chain position.
type deltaState struct{ prev uint64 }

// appendDelta appends v's uvarint XOR-delta and advances the chain.
func (d *deltaState) appendDelta(dst []byte, v float64) []byte {
	bits := math.Float64bits(v)
	x := bits ^ d.prev
	d.prev = bits
	return binary.AppendUvarint(dst, x)
}

// deltaLen returns the encoded size of v's delta WITHOUT advancing the
// chain — the packer's fit check.
func (d *deltaState) deltaLen(v float64) int {
	x := math.Float64bits(v) ^ d.prev
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// readDelta decodes one delta from b and advances the chain.
func (d *deltaState) readDelta(b []byte) (float64, int, error) {
	x, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, ErrBadPayload
	}
	d.prev ^= x
	return math.Float64frombits(d.prev), n, nil
}

// chunkHeader is the fixed prefix of a TypeChunk payload: stream id and
// sample count.
const chunkHeader = 3

// maxChunkBody is the delta-byte budget of one chunk frame.
const maxChunkBody = radio.MaxPayloadExt - chunkHeader

// putU16/putU64 append big-endian integers.
func putU16(dst []byte, v uint16) []byte { return append(dst, byte(v>>8), byte(v)) }
func putU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func getU16(b []byte) uint16 { return binary.BigEndian.Uint16(b) }
func getU64(b []byte) uint64 { return binary.BigEndian.Uint64(b) }

// chunkEncoder packs one stream's samples into chunk frames: greedy
// fill up to the frame payload budget, delta state continuous across
// frame boundaries, per-stream seq stamped on each frame. The ECG and
// Z delta runs are contiguous inside a frame's payload, so pairs are
// encoded into two scratch runs that the frame assembly concatenates.
type chunkEncoder struct {
	stream  uint16
	seq     byte
	ecg, z  deltaState
	runE    []byte
	runZ    []byte
	payload []byte
}

// appendChunks encodes len(ecg) sample pairs (equal-length channels)
// into as many chunk frames as the payload budget needs, appending the
// encoded frames to dst and returning the extended slice.
func (c *chunkEncoder) appendChunks(dst []byte, ecg, z []float64) ([]byte, error) {
	i := 0
	for i < len(ecg) {
		c.runE, c.runZ = c.runE[:0], c.runZ[:0]
		n := 0
		for i < len(ecg) && n < 255 {
			need := c.ecg.deltaLen(ecg[i]) + c.z.deltaLen(z[i])
			if n > 0 && len(c.runE)+len(c.runZ)+need > maxChunkBody {
				break // frame full; the pair opens the next one
			}
			c.runE = c.ecg.appendDelta(c.runE, ecg[i])
			c.runZ = c.z.appendDelta(c.runZ, z[i])
			n++
			i++
		}
		c.payload = c.payload[:0]
		c.payload = putU16(c.payload, c.stream)
		c.payload = append(c.payload, byte(n))
		c.payload = append(c.payload, c.runE...)
		c.payload = append(c.payload, c.runZ...)
		f := radio.Frame{Type: TypeChunk, Seq: c.seq, Payload: c.payload}
		var err error
		dst, err = f.AppendTo(dst)
		if err != nil {
			return dst, err
		}
		c.seq++
	}
	return dst, nil
}

// chunkDecoder is the receiving half: per-stream delta chains and the
// expected sequence byte.
type chunkDecoder struct {
	seq    byte
	ecg, z deltaState
}

// decodeChunk validates one chunk frame against the stream's expected
// seq and decodes its sample pairs into a single freshly-owned buffer:
// ecg is out[:n], z is out[n:2n] — exactly the shape
// session.Session.PushOwned takes ownership of (zero further copies).
func (d *chunkDecoder) decodeChunk(f *radio.Frame) (ecg, z []float64, err error) {
	if f.Seq != d.seq {
		return nil, nil, ErrSeqGap
	}
	d.seq++
	if len(f.Payload) < chunkHeader {
		return nil, nil, ErrBadPayload
	}
	n := int(f.Payload[2])
	body := f.Payload[chunkHeader:]
	out := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		v, c, err := d.ecg.readDelta(body)
		if err != nil {
			return nil, nil, err
		}
		out[i] = v
		body = body[c:]
	}
	for i := 0; i < n; i++ {
		v, c, err := d.z.readDelta(body)
		if err != nil {
			return nil, nil, err
		}
		out[n+i] = v
		body = body[c:]
	}
	if len(body) != 0 {
		return nil, nil, ErrBadPayload
	}
	return out[:n:n], out[n:], nil
}
