package gateway

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"repro/internal/hw/radio"
)

// testSamples derives a deterministic pseudo-physiological pair of
// channels: smooth-ish floats whose consecutive bit patterns share high
// bits (the case the XOR-delta codec is built for), salted by seed.
func testSamples(seed uint64, n int) (ecg, z []float64) {
	ecg = make([]float64, n)
	z = make([]float64, n)
	x := seed
	for i := 0; i < n; i++ {
		x = splitmix64(x)
		jitter := float64(x%1000) * 1e-6
		ecg[i] = math.Sin(float64(i)*0.07) + jitter
		z[i] = 42 + 0.3*math.Sin(float64(i)*0.011) + jitter/3
	}
	return ecg, z
}

// decodeStream scans every chunk frame out of an encoded byte stream
// and decodes it through one chunkDecoder, returning the concatenated
// channels and the number of frames.
func decodeStream(t *testing.T, stream []byte) (ecg, z []float64, frames int) {
	t.Helper()
	sc := radio.NewScannerLimit(bytes.NewReader(stream), radio.MaxPayloadExt)
	var dec chunkDecoder
	for {
		f, err := sc.Next()
		if err == io.EOF {
			return ecg, z, frames
		}
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		if f.Type != TypeChunk {
			t.Fatalf("unexpected frame type %#x", f.Type)
		}
		if len(f.Payload) > radio.MaxPayloadExt {
			t.Fatalf("frame payload %d exceeds budget", len(f.Payload))
		}
		e, zz, err := dec.decodeChunk(f)
		if err != nil {
			t.Fatalf("decode frame %d: %v", frames, err)
		}
		ecg = append(ecg, e...)
		z = append(z, zz...)
		frames++
	}
}

// TestChunkCodecRoundTrip pins the codec's losslessness: any push
// pattern — including 1-sample pushes and enough frames to wrap the
// seq byte several times — decodes to bit-identical channels.
func TestChunkCodecRoundTrip(t *testing.T) {
	for _, chunk := range []int{1, 3, 7, 50, 113} {
		enc := chunkEncoder{stream: 7}
		const total = 700 // 700 one-sample frames wraps seq twice
		ecg, z := testSamples(uint64(chunk), total)
		var stream []byte
		for i := 0; i < total; i += chunk {
			end := i + chunk
			if end > total {
				end = total
			}
			var err error
			stream, err = enc.appendChunks(stream, ecg[i:end], z[i:end])
			if err != nil {
				t.Fatal(err)
			}
		}
		gotE, gotZ, frames := decodeStream(t, stream)
		if len(gotE) != total || len(gotZ) != total {
			t.Fatalf("chunk %d: decoded %d/%d samples, want %d", chunk, len(gotE), len(gotZ), total)
		}
		for i := range gotE {
			if math.Float64bits(gotE[i]) != math.Float64bits(ecg[i]) ||
				math.Float64bits(gotZ[i]) != math.Float64bits(z[i]) {
				t.Fatalf("chunk %d: sample %d not bit-identical", chunk, i)
			}
		}
		if chunk == 1 && frames != total {
			t.Fatalf("1-sample pushes must emit one frame each, got %d for %d", frames, total)
		}
	}
}

// TestChunkCodecWorstCase feeds bit-noise (every delta near 10 bytes)
// and checks the packer splits frames without ever busting the payload
// budget, still losslessly.
func TestChunkCodecWorstCase(t *testing.T) {
	const total = 300
	ecg := make([]float64, total)
	z := make([]float64, total)
	x := uint64(99)
	for i := range ecg {
		x = splitmix64(x)
		ecg[i] = math.Float64frombits(x)
		x = splitmix64(x)
		z[i] = math.Float64frombits(x)
	}
	enc := chunkEncoder{stream: 1}
	stream, err := enc.appendChunks(nil, ecg, z)
	if err != nil {
		t.Fatal(err)
	}
	gotE, gotZ, frames := decodeStream(t, stream)
	if frames < 2 {
		t.Fatalf("worst-case deltas must split frames, got %d", frames)
	}
	for i := range gotE {
		if math.Float64bits(gotE[i]) != math.Float64bits(ecg[i]) ||
			math.Float64bits(gotZ[i]) != math.Float64bits(z[i]) {
			t.Fatalf("sample %d not bit-identical", i)
		}
	}
	if len(gotE) != total {
		t.Fatalf("decoded %d samples, want %d", len(gotE), total)
	}
}

// TestChunkCodecSeqGap pins gap detection: dropping one frame out of a
// stream trips ErrSeqGap on the next (the delta chain is broken, so
// decoding must refuse rather than emit garbage samples).
func TestChunkCodecSeqGap(t *testing.T) {
	enc := chunkEncoder{stream: 2}
	ecg, z := testSamples(5, 9)
	var frames [][]byte
	for i := 0; i < 9; i += 3 {
		b, err := enc.appendChunks(nil, ecg[i:i+3], z[i:i+3])
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, b)
	}
	// Frame 0 then frame 2: the decoder must flag the gap.
	stream := append(append([]byte(nil), frames[0]...), frames[2]...)
	sc := radio.NewScannerLimit(bytes.NewReader(stream), radio.MaxPayloadExt)
	var dec chunkDecoder
	f, err := sc.Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dec.decodeChunk(f); err != nil {
		t.Fatalf("first frame: %v", err)
	}
	f, err = sc.Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dec.decodeChunk(f); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("skipped frame decoded with err=%v, want ErrSeqGap", err)
	}
}

// TestChunkCodecMalformed pins the decoder's refusal of truncated and
// padded bodies.
func TestChunkCodecMalformed(t *testing.T) {
	enc := chunkEncoder{stream: 3}
	ecg, z := testSamples(1, 4)
	stream, err := enc.appendChunks(nil, ecg, z)
	if err != nil {
		t.Fatal(err)
	}
	sc := radio.NewScannerLimit(bytes.NewReader(stream), radio.MaxPayloadExt)
	f, err := sc.Next()
	if err != nil {
		t.Fatal(err)
	}
	trunc := *f
	trunc.Payload = f.Payload[:len(f.Payload)-1]
	if _, _, err := (&chunkDecoder{}).decodeChunk(&trunc); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("truncated body: err=%v, want ErrBadPayload", err)
	}
	padded := *f
	padded.Payload = append(append([]byte(nil), f.Payload...), 0)
	if _, _, err := (&chunkDecoder{}).decodeChunk(&padded); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("padded body: err=%v, want ErrBadPayload", err)
	}
	short := *f
	short.Payload = f.Payload[:2]
	if _, _, err := (&chunkDecoder{}).decodeChunk(&short); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("short header: err=%v, want ErrBadPayload", err)
	}
}

// TestJumpHashConsistency pins the consistent-hash property the shard
// map depends on: adding a bucket moves keys ONLY into the new bucket,
// and roughly 1/(K+1) of them; everything else stays put.
func TestJumpHashConsistency(t *testing.T) {
	const keys = 20000
	counts := make([]int, 4)
	moved := 0
	for i := 0; i < keys; i++ {
		k := splitmix64(uint64(i))
		b4 := jumpHash(k, 4)
		if b4 < 0 || b4 > 3 {
			t.Fatalf("bucket %d out of range", b4)
		}
		counts[b4]++
		b5 := jumpHash(k, 5)
		if b5 != b4 {
			if b5 != 4 {
				t.Fatalf("key %d moved %d→%d, not to the new bucket", i, b4, b5)
			}
			moved++
		}
	}
	mean := keys / 4
	for b, c := range counts {
		if c < mean*8/10 || c > mean*12/10 {
			t.Fatalf("bucket %d holds %d of %d keys (mean %d): not uniform", b, c, keys, mean)
		}
	}
	frac := float64(moved) / keys
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("4→5 buckets moved %.3f of keys, want ≈0.20", frac)
	}
}

// BenchmarkChunkCodec measures the wire codec round trip per 50-sample
// push: delta-encode into frames plus scan-and-decode back out — the
// per-chunk CPU cost the gateway adds over an in-process PushOwned.
func BenchmarkChunkCodec(b *testing.B) {
	ecg, z := testSamples(1, 50)
	enc := chunkEncoder{stream: 1}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = enc.appendChunks(buf[:0], ecg, z)
		if err != nil {
			b.Fatal(err)
		}
		var dec chunkDecoder
		dec.seq = enc.seq - byte((len(buf)+radio.MaxPayloadExt)/radio.MaxPayloadExt) // align to first frame
		sc := radio.NewScannerLimit(bytes.NewReader(buf), radio.MaxPayloadExt)
		for {
			f, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := dec.decodeChunk(f); err != nil {
				b.Fatal(err)
			}
		}
	}
}
