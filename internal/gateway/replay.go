package gateway

import (
	"bytes"
	"io"

	"repro/internal/hw/radio"
	"repro/internal/session"
)

// ReplayChunks pushes the channels into an in-process session through
// the EXACT chunk framing the network path applies: chunkSize-sample
// pushes encoded into chunk frames, scanned back out, delta-decoded and
// delivered by PushOwned. The codec is lossless and its frame packing
// depends only on the sample bits, so this is the reference half of the
// gateway's loopback determinism proof: a session driven over TCP must
// produce an event stream hash-identical to the same channels replayed
// here into an identically-configured engine.
func ReplayChunks(s *session.Session, ecg, z []float64, chunkSize int) error {
	if chunkSize < 1 {
		chunkSize = 1
	}
	enc := chunkEncoder{stream: 1}
	var dec chunkDecoder
	var buf []byte
	for i := 0; i < len(ecg); i += chunkSize {
		end := i + chunkSize
		if end > len(ecg) {
			end = len(ecg)
		}
		var err error
		buf, err = enc.appendChunks(buf[:0], ecg[i:end], z[i:end])
		if err != nil {
			return err
		}
		sc := radio.NewScannerLimit(bytes.NewReader(buf), radio.MaxPayloadExt)
		for {
			f, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			e, zz, err := dec.decodeChunk(f)
			if err != nil {
				return err
			}
			if err := s.PushOwned(e, zz); err != nil {
				return err
			}
		}
	}
	return nil
}
