// Package goldentest holds the golden beat-trace format shared by the
// core and session golden regression tests: one formatter and one block
// reader, so the two tests can never drift apart and silently compare
// different encodings of the same committed file
// (internal/core/testdata/golden_subject*.txt; regenerate with
// `go test ./internal/core/ -run TestGolden -update`).
package goldentest

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/hemo"
)

// Line formats one beat as a golden-file line: R index, then LVET, PEP,
// SVKub and Quality as hex floats (%x — bit-exact and locale-proof),
// then Accepted as 0/1. R is recovered from TimeS*fs (TimeS is R/fs by
// construction, exact in binary floating point).
func Line(fs float64, b hemo.BeatParams) string {
	acc := 0
	if b.Accepted {
		acc = 1
	}
	return fmt.Sprintf("%d %x %x %x %x %d",
		int(math.Round(b.TimeS*fs)), b.LVET, b.PEP, b.SVKub, b.Quality, acc)
}

// ReadBlock returns the raw lines of the named block ("batch" or
// "stream") of a golden file.
func ReadBlock(path, name string) ([]string, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	sc := bufio.NewScanner(fh)
	var lines []string
	remaining := -1
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		if remaining > 0 {
			lines = append(lines, line)
			remaining--
			continue
		}
		if remaining == 0 {
			break
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("goldentest: bad block header %q: %v", line, err)
			}
			remaining = n
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if remaining != 0 {
		return nil, fmt.Errorf("goldentest: block %q not found or truncated in %s", name, path)
	}
	return lines, nil
}
