package hemo

// Thoracic fluid status classification. The introduction of the paper
// motivates the device with early CHF-decompensation detection: fluid
// accumulates in the thoracic cavity, Z0 falls and TFC = 1000/Z0 rises.
// The bands below follow the impedance-cardiography literature for adult
// TFC (1/kOhm).

// FluidStatus grades the thoracic fluid content.
type FluidStatus int

// Fluid status grades.
const (
	FluidLow      FluidStatus = iota // dehydration range
	FluidNormal                      // euvolemic
	FluidElevated                    // trending toward congestion
	FluidHigh                        // decompensation range
)

// String names the grade.
func (f FluidStatus) String() string {
	switch f {
	case FluidLow:
		return "low"
	case FluidNormal:
		return "normal"
	case FluidElevated:
		return "elevated"
	case FluidHigh:
		return "high"
	default:
		return "unknown"
	}
}

// TFC classification thresholds (1/kOhm).
const (
	tfcLow      = 20.0
	tfcElevated = 35.0
	tfcHigh     = 45.0
)

// ClassifyTFC grades a thoracic fluid content value.
func ClassifyTFC(tfc float64) FluidStatus {
	switch {
	case tfc < tfcLow:
		return FluidLow
	case tfc < tfcElevated:
		return FluidNormal
	case tfc < tfcHigh:
		return FluidElevated
	default:
		return FluidHigh
	}
}

// FluidTrend summarizes a TFC time series (one sample per day, typically).
type FluidTrend struct {
	Status    FluidStatus // grade of the latest measurement
	SlopePerN float64     // TFC change per sample (linear fit)
	Alert     bool        // sustained accumulation detected
}

// AssessFluidTrend classifies the latest value and flags a sustained
// upward trend (slope above minSlope per sample over at least minN
// samples).
func AssessFluidTrend(tfcs []float64, minSlope float64, minN int) FluidTrend {
	tr := FluidTrend{}
	if len(tfcs) == 0 {
		return tr
	}
	tr.Status = ClassifyTFC(tfcs[len(tfcs)-1])
	if tr.Status == FluidHigh {
		tr.Alert = true
	}
	if len(tfcs) < 2 {
		return tr
	}
	// Least-squares slope.
	n := float64(len(tfcs))
	var sx, sy, sxx, sxy float64
	for i, v := range tfcs {
		x := float64(i)
		sx += x
		sy += v
		sxx += x * x
		sxy += x * v
	}
	den := n*sxx - sx*sx
	if den != 0 {
		tr.SlopePerN = (n*sxy - sx*sy) / den
	}
	if len(tfcs) >= minN && tr.SlopePerN >= minSlope {
		tr.Alert = true
	}
	if tr.Status == FluidHigh {
		tr.Alert = true
	}
	return tr
}
