// Package hemo estimates hemodynamic parameters from the detected ICG
// characteristic points, following Section IV-B of the paper: the systolic
// time intervals LVET (B to X) and PEP (ECG R to ICG B), heart rate, and —
// via the Kubicek and Sramek-Bernstein formulas the paper cites [25, 26] —
// stroke volume and cardiac output. The thoracic fluid content (TFC)
// completes the CHF-monitoring parameter set motivated in the
// introduction.
package hemo

import (
	"errors"
	"math"

	"repro/internal/dsp"
	"repro/internal/icg"
	"repro/internal/quality"
)

// BodyConstants carries the anthropometric constants of the stroke-volume
// formulas.
type BodyConstants struct {
	BloodResistivity float64 // rho, Ohm*cm (classically 135)
	ElectrodeDist    float64 // L, cm: distance between voltage electrodes
	Height           float64 // subject height (cm) for Sramek-Bernstein
}

// DefaultBody returns textbook constants for an adult male.
func DefaultBody() BodyConstants {
	return BodyConstants{BloodResistivity: 135, ElectrodeDist: 30, Height: 178}
}

// KubicekSV computes stroke volume (mL) from the Kubicek formula:
// SV = rho * (L/Z0)^2 * LVET * (dZ/dt)max.
func KubicekSV(b BodyConstants, z0, lvet, dzdtMax float64) float64 {
	if z0 <= 0 {
		return 0
	}
	ratio := b.ElectrodeDist / z0
	return b.BloodResistivity * ratio * ratio * lvet * dzdtMax
}

// SramekSV computes stroke volume (mL) from the Sramek-Bernstein formula:
// SV = ((0.17*H)^3 / 4.25) * (dZ/dt)max / Z0 * LVET.
func SramekSV(b BodyConstants, z0, lvet, dzdtMax float64) float64 {
	if z0 <= 0 {
		return 0
	}
	vept := math.Pow(0.17*b.Height, 3) / 4.25 // volume of electrically participating tissue
	return vept * dzdtMax / z0 * lvet
}

// TFC returns the thoracic fluid content 1000/Z0 (1/kOhm), the fluid
// status indicator used for CHF decompensation monitoring.
func TFC(z0 float64) float64 {
	if z0 <= 0 {
		return 0
	}
	return 1000 / z0
}

// Calibration maps touch-path (hand-to-hand) measurements onto the
// thoracic quantities the stroke-volume formulas were derived for: the
// hand-to-hand base impedance is dominated by the arms and contacts, and
// only a fraction of the thoracic dZ/dt couples into the finger
// measurement. A per-device calibration against a reference system (the
// comparison the paper lists as future work) yields the two constants.
type Calibration struct {
	Z0Scale   float64 // measured Z0 -> equivalent thoracic Z0
	DZdtScale float64 // measured (dZ/dt)max -> equivalent thoracic value
}

// IdentityCal is the calibration of a direct thoracic measurement.
func IdentityCal() Calibration { return Calibration{Z0Scale: 1, DZdtScale: 1} }

// TouchCal returns the default hand-to-hand calibration of the simulated
// device: the body model's thorax/arm geometry puts the thoracic share of
// the touch-path impedance near 4.5%, and 62% of the thoracic dZ/dt
// couples into the finger measurement.
func TouchCal() Calibration { return Calibration{Z0Scale: 0.045, DZdtScale: 1 / 0.62} }

// apply returns the thoracic-equivalent z0 and dzdt.
func (c Calibration) apply(z0, dzdt float64) (float64, float64) {
	zs := c.Z0Scale
	ds := c.DZdtScale
	if zs == 0 {
		zs = 1
	}
	if ds == 0 {
		ds = 1
	}
	return z0 * zs, dzdt * ds
}

// BeatParams is the per-beat hemodynamic parameter set; the fields
// {Z0, LVET, PEP, HR} are exactly what the device transmits (Section V).
type BeatParams struct {
	TimeS      float64 // time of the anchoring R peak (s)
	RR         float64 // RR interval (s)
	HR         float64 // instantaneous heart rate (bpm)
	PEP        float64 // pre-ejection period (s)
	LVET       float64 // left ventricular ejection time (s)
	STR        float64 // systolic time ratio PEP/LVET
	Z0         float64 // measured base impedance of the path (Ohm)
	Z0Thoracic float64 // calibrated thoracic-equivalent base impedance (Ohm)
	DZdtMax    float64 // measured C-point amplitude (Ohm/s)
	SVKub      float64 // stroke volume, Kubicek (mL)
	SVSram     float64 // stroke volume, Sramek-Bernstein (mL)
	CO         float64 // cardiac output, Kubicek (L/min)
	TFC        float64 // thoracic fluid content (1/kOhm)
	// Quality is the composite per-beat signal-quality score in [0,1]
	// (quality.BeatSQI.Score) and Accepted the gate's decision; ungated
	// paths emit Quality 1 / Accepted true so the zero-configuration
	// behavior is accept-all.
	Quality  float64
	Accepted bool
}

// ErrNoBeats is returned when no analyzable beats are available.
var ErrNoBeats = errors.New("hemo: no analyzable beats")

// FromPoints converts detected beat points into hemodynamic parameters.
// z0 is the mean measured base impedance of the recording; rNext is the
// next beat's R peak (for the RR interval); cal maps the measurement to
// thoracic equivalents for the volume formulas.
func FromPoints(p *icg.BeatPoints, rNext int, z0, fs float64, body BodyConstants, cal Calibration) BeatParams {
	rr := float64(rNext-p.R) / fs
	hr := 0.0
	if rr > 0 {
		hr = 60 / rr
	}
	pep := float64(p.B-p.R) / fs
	lvet := float64(p.X-p.B) / fs
	str := 0.0
	if lvet > 0 {
		str = pep / lvet
	}
	z0Th, dzdtTh := cal.apply(z0, p.CAmp)
	svK := KubicekSV(body, z0Th, lvet, dzdtTh)
	svS := SramekSV(body, z0Th, lvet, dzdtTh)
	return BeatParams{
		TimeS:      float64(p.R) / fs,
		RR:         rr,
		HR:         hr,
		PEP:        pep,
		LVET:       lvet,
		STR:        str,
		Z0:         z0,
		Z0Thoracic: z0Th,
		DZdtMax:    p.CAmp,
		SVKub:      svK,
		SVSram:     svS,
		CO:         svK * hr / 1000,
		TFC:        TFC(z0Th),
		Quality:    1,
		Accepted:   true,
	}
}

// Series converts a beat sequence into parameters, skipping failed beats.
func Series(beats []icg.BeatAnalysis, rPeaks []int, z0, fs float64, body BodyConstants, cal Calibration) ([]BeatParams, error) {
	return SeriesWith(nil, beats, nil, rPeaks, z0, fs, body, cal)
}

// SeriesWith is Series writing into dst (a caller buffer reused across
// calls; nil allocates exactly once at the analyzable-beat count). sqis,
// when non-nil, must be aligned with beats (quality.BeatGate.Apply
// order) and stamps each emitted beat's Quality and Accepted fields;
// when nil every beat is emitted as Quality 1 / Accepted true.
func SeriesWith(dst []BeatParams, beats []icg.BeatAnalysis, sqis []quality.BeatSQI, rPeaks []int, z0, fs float64, body BodyConstants, cal Calibration) ([]BeatParams, error) {
	n := 0
	for i, b := range beats {
		if b.Err == nil && b.Points != nil && i+1 < len(rPeaks) {
			n++
		}
	}
	if n == 0 {
		return nil, ErrNoBeats
	}
	if cap(dst) < n {
		dst = make([]BeatParams, 0, n)
	} else {
		dst = dst[:0]
	}
	for i, b := range beats {
		if b.Err != nil || b.Points == nil {
			continue
		}
		if i+1 >= len(rPeaks) {
			break
		}
		bp := FromPoints(b.Points, rPeaks[i+1], z0, fs, body, cal)
		if sqis != nil && i < len(sqis) {
			bp.Quality = sqis[i].Score
			bp.Accepted = sqis[i].Accepted
		}
		dst = append(dst, bp)
	}
	return dst, nil
}

// Field extracts one named series from beat parameters.
func Field(params []BeatParams, get func(BeatParams) float64) []float64 {
	out := make([]float64, len(params))
	for i, p := range params {
		out[i] = get(p)
	}
	return out
}

// RejectOutliers removes beats whose PEP or LVET deviates from the median
// by more than k median-absolute-deviations; physiological series use k=4.
func RejectOutliers(params []BeatParams, k float64) []BeatParams {
	if len(params) < 4 {
		return params
	}
	peps := Field(params, func(p BeatParams) float64 { return p.PEP })
	lvets := Field(params, func(p BeatParams) float64 { return p.LVET })
	mp, dp := medianMAD(peps)
	ml, dl := medianMAD(lvets)
	var out []BeatParams
	for _, p := range params {
		if dp > 0 && math.Abs(p.PEP-mp) > k*dp {
			continue
		}
		if dl > 0 && math.Abs(p.LVET-ml) > k*dl {
			continue
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return params
	}
	return out
}

func medianMAD(x []float64) (median, mad float64) {
	median = dsp.Median(x)
	dev := make([]float64, len(x))
	for i, v := range x {
		dev[i] = math.Abs(v - median)
	}
	return median, dsp.Median(dev)
}

// Summary aggregates a parameter series.
type Summary struct {
	Beats    int
	HR       dsp.Summary
	PEP      dsp.Summary
	LVET     dsp.Summary
	Z0       float64
	SVKub    dsp.Summary
	COKub    dsp.Summary
	MeanTFC  float64
	MeanSTR  float64
	DZdtMean float64
}

// Summarize computes descriptive statistics over the beats.
func Summarize(params []BeatParams) Summary {
	if len(params) == 0 {
		return Summary{}
	}
	return summarizeWhere(make([]float64, 0, len(params)), params,
		func(BeatParams) bool { return true })
}

// WeightedMean returns the quality-weighted mean of one field over the
// accepted beats — the beat-parameter analogue of ensemble averaging,
// where cleaner beats count for more. It falls back to the unweighted
// accepted mean when all weights are zero, and 0 with no accepted beats.
func WeightedMean(params []BeatParams, get func(BeatParams) float64) float64 {
	var ws, s, us float64
	n := 0
	for _, p := range params {
		if !p.Accepted {
			continue
		}
		v := get(p)
		ws += p.Quality
		s += p.Quality * v
		us += v
		n++
	}
	if ws > 0 {
		return s / ws
	}
	if n > 0 {
		return us / float64(n)
	}
	return 0
}

// GatedSummary pairs the raw and the quality-gated views of a beat
// series: Raw aggregates every analyzable beat, Gated only the beats
// the per-beat quality gate accepted (additionally MAD-screened, see
// SummarizeGated), and the W* fields are quality-weighted means over
// the accepted beats.
type GatedSummary struct {
	Raw        Summary
	Gated      Summary
	AcceptRate float64 // accepted / analyzable
	// Quality-weighted means over the accepted beats.
	WHR, WPEP, WLVET, WSVKub float64
}

// SummarizeGated aggregates a flagged beat series: the Raw summary over
// every beat, and the Gated summary over the accepted beats with a
// final k-MAD screen on PEP and LVET (k <= 0 disables it). This
// replaces the blunt MAD-only RejectOutliers path for gated pipelines:
// the gate removes signal-quality failures with per-beat evidence, and
// the MAD screen only sweeps up the residual delineation flukes among
// accepted beats. The whole aggregation reuses one scratch buffer, so
// it allocates O(1) regardless of the field count.
func SummarizeGated(params []BeatParams, k float64) GatedSummary {
	if len(params) == 0 {
		return GatedSummary{}
	}
	scratch := make([]float64, 0, len(params))
	all := func(BeatParams) bool { return true }
	acc := func(p BeatParams) bool { return p.Accepted }

	// The final MAD screen over the accepted beats' STIs.
	keep := acc
	if k > 0 {
		mp, dp := fieldMedianMAD(scratch, params, acc, func(p BeatParams) float64 { return p.PEP })
		ml, dl := fieldMedianMAD(scratch, params, acc, func(p BeatParams) float64 { return p.LVET })
		keep = func(p BeatParams) bool {
			if !p.Accepted {
				return false
			}
			if dp > 0 && math.Abs(p.PEP-mp) > k*dp {
				return false
			}
			if dl > 0 && math.Abs(p.LVET-ml) > k*dl {
				return false
			}
			return true
		}
		// A gate+screen combination that rejects everything degrades to
		// the plain accepted set (mirrors RejectOutliers' fallback).
		n := 0
		for _, p := range params {
			if keep(p) {
				n++
			}
		}
		if n == 0 {
			keep = acc
		}
	}

	g := GatedSummary{
		Raw:    summarizeWhere(scratch, params, all),
		Gated:  summarizeWhere(scratch, params, keep),
		WHR:    WeightedMean(params, func(p BeatParams) float64 { return p.HR }),
		WPEP:   WeightedMean(params, func(p BeatParams) float64 { return p.PEP }),
		WLVET:  WeightedMean(params, func(p BeatParams) float64 { return p.LVET }),
		WSVKub: WeightedMean(params, func(p BeatParams) float64 { return p.SVKub }),
	}
	nAcc := 0
	for _, p := range params {
		if p.Accepted {
			nAcc++
		}
	}
	g.AcceptRate = float64(nAcc) / float64(len(params))
	return g
}

// summarizeWhere computes the Summary over the beats passing pred,
// gathering each field into the shared scratch buffer.
func summarizeWhere(scratch []float64, params []BeatParams, pred func(BeatParams) bool) Summary {
	gather := func(get func(BeatParams) float64) []float64 {
		scratch = scratch[:0]
		for _, p := range params {
			if pred(p) {
				scratch = append(scratch, get(p))
			}
		}
		return scratch
	}
	stat := func(get func(BeatParams) float64) dsp.Summary {
		x := gather(get)
		s := dsp.Summary{N: len(x), Mean: dsp.Mean(x), Std: dsp.Std(x)}
		s.Min, s.Max = dsp.MinMax(x)
		s.Median = dsp.MedianInPlace(x)
		return s
	}
	var out Summary
	out.HR = stat(func(p BeatParams) float64 { return p.HR })
	out.Beats = out.HR.N
	if out.Beats == 0 {
		return Summary{}
	}
	out.PEP = stat(func(p BeatParams) float64 { return p.PEP })
	out.LVET = stat(func(p BeatParams) float64 { return p.LVET })
	out.SVKub = stat(func(p BeatParams) float64 { return p.SVKub })
	out.COKub = stat(func(p BeatParams) float64 { return p.CO })
	out.Z0 = dsp.Mean(gather(func(p BeatParams) float64 { return p.Z0 }))
	out.MeanTFC = dsp.Mean(gather(func(p BeatParams) float64 { return p.TFC }))
	out.MeanSTR = dsp.Mean(gather(func(p BeatParams) float64 { return p.STR }))
	out.DZdtMean = dsp.Mean(gather(func(p BeatParams) float64 { return p.DZdtMax }))
	return out
}

// fieldMedianMAD computes median and MAD of one field over the beats
// passing pred, using the shared scratch buffer.
func fieldMedianMAD(scratch []float64, params []BeatParams, pred func(BeatParams) bool, get func(BeatParams) float64) (median, mad float64) {
	x := scratch[:0]
	for _, p := range params {
		if pred(p) {
			x = append(x, get(p))
		}
	}
	if len(x) == 0 {
		return 0, 0
	}
	median = dsp.MedianInPlace(x)
	for i, v := range x {
		x[i] = math.Abs(v - median)
	}
	return median, dsp.MedianInPlace(x)
}
