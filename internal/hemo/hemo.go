// Package hemo estimates hemodynamic parameters from the detected ICG
// characteristic points, following Section IV-B of the paper: the systolic
// time intervals LVET (B to X) and PEP (ECG R to ICG B), heart rate, and —
// via the Kubicek and Sramek-Bernstein formulas the paper cites [25, 26] —
// stroke volume and cardiac output. The thoracic fluid content (TFC)
// completes the CHF-monitoring parameter set motivated in the
// introduction.
package hemo

import (
	"errors"
	"math"

	"repro/internal/dsp"
	"repro/internal/icg"
)

// BodyConstants carries the anthropometric constants of the stroke-volume
// formulas.
type BodyConstants struct {
	BloodResistivity float64 // rho, Ohm*cm (classically 135)
	ElectrodeDist    float64 // L, cm: distance between voltage electrodes
	Height           float64 // subject height (cm) for Sramek-Bernstein
}

// DefaultBody returns textbook constants for an adult male.
func DefaultBody() BodyConstants {
	return BodyConstants{BloodResistivity: 135, ElectrodeDist: 30, Height: 178}
}

// KubicekSV computes stroke volume (mL) from the Kubicek formula:
// SV = rho * (L/Z0)^2 * LVET * (dZ/dt)max.
func KubicekSV(b BodyConstants, z0, lvet, dzdtMax float64) float64 {
	if z0 <= 0 {
		return 0
	}
	ratio := b.ElectrodeDist / z0
	return b.BloodResistivity * ratio * ratio * lvet * dzdtMax
}

// SramekSV computes stroke volume (mL) from the Sramek-Bernstein formula:
// SV = ((0.17*H)^3 / 4.25) * (dZ/dt)max / Z0 * LVET.
func SramekSV(b BodyConstants, z0, lvet, dzdtMax float64) float64 {
	if z0 <= 0 {
		return 0
	}
	vept := math.Pow(0.17*b.Height, 3) / 4.25 // volume of electrically participating tissue
	return vept * dzdtMax / z0 * lvet
}

// TFC returns the thoracic fluid content 1000/Z0 (1/kOhm), the fluid
// status indicator used for CHF decompensation monitoring.
func TFC(z0 float64) float64 {
	if z0 <= 0 {
		return 0
	}
	return 1000 / z0
}

// Calibration maps touch-path (hand-to-hand) measurements onto the
// thoracic quantities the stroke-volume formulas were derived for: the
// hand-to-hand base impedance is dominated by the arms and contacts, and
// only a fraction of the thoracic dZ/dt couples into the finger
// measurement. A per-device calibration against a reference system (the
// comparison the paper lists as future work) yields the two constants.
type Calibration struct {
	Z0Scale   float64 // measured Z0 -> equivalent thoracic Z0
	DZdtScale float64 // measured (dZ/dt)max -> equivalent thoracic value
}

// IdentityCal is the calibration of a direct thoracic measurement.
func IdentityCal() Calibration { return Calibration{Z0Scale: 1, DZdtScale: 1} }

// TouchCal returns the default hand-to-hand calibration of the simulated
// device: the body model's thorax/arm geometry puts the thoracic share of
// the touch-path impedance near 4.5%, and 62% of the thoracic dZ/dt
// couples into the finger measurement.
func TouchCal() Calibration { return Calibration{Z0Scale: 0.045, DZdtScale: 1 / 0.62} }

// apply returns the thoracic-equivalent z0 and dzdt.
func (c Calibration) apply(z0, dzdt float64) (float64, float64) {
	zs := c.Z0Scale
	ds := c.DZdtScale
	if zs == 0 {
		zs = 1
	}
	if ds == 0 {
		ds = 1
	}
	return z0 * zs, dzdt * ds
}

// BeatParams is the per-beat hemodynamic parameter set; the fields
// {Z0, LVET, PEP, HR} are exactly what the device transmits (Section V).
type BeatParams struct {
	TimeS      float64 // time of the anchoring R peak (s)
	RR         float64 // RR interval (s)
	HR         float64 // instantaneous heart rate (bpm)
	PEP        float64 // pre-ejection period (s)
	LVET       float64 // left ventricular ejection time (s)
	STR        float64 // systolic time ratio PEP/LVET
	Z0         float64 // measured base impedance of the path (Ohm)
	Z0Thoracic float64 // calibrated thoracic-equivalent base impedance (Ohm)
	DZdtMax    float64 // measured C-point amplitude (Ohm/s)
	SVKub      float64 // stroke volume, Kubicek (mL)
	SVSram     float64 // stroke volume, Sramek-Bernstein (mL)
	CO         float64 // cardiac output, Kubicek (L/min)
	TFC        float64 // thoracic fluid content (1/kOhm)
}

// ErrNoBeats is returned when no analyzable beats are available.
var ErrNoBeats = errors.New("hemo: no analyzable beats")

// FromPoints converts detected beat points into hemodynamic parameters.
// z0 is the mean measured base impedance of the recording; rNext is the
// next beat's R peak (for the RR interval); cal maps the measurement to
// thoracic equivalents for the volume formulas.
func FromPoints(p *icg.BeatPoints, rNext int, z0, fs float64, body BodyConstants, cal Calibration) BeatParams {
	rr := float64(rNext-p.R) / fs
	hr := 0.0
	if rr > 0 {
		hr = 60 / rr
	}
	pep := float64(p.B-p.R) / fs
	lvet := float64(p.X-p.B) / fs
	str := 0.0
	if lvet > 0 {
		str = pep / lvet
	}
	z0Th, dzdtTh := cal.apply(z0, p.CAmp)
	svK := KubicekSV(body, z0Th, lvet, dzdtTh)
	svS := SramekSV(body, z0Th, lvet, dzdtTh)
	return BeatParams{
		TimeS:      float64(p.R) / fs,
		RR:         rr,
		HR:         hr,
		PEP:        pep,
		LVET:       lvet,
		STR:        str,
		Z0:         z0,
		Z0Thoracic: z0Th,
		DZdtMax:    p.CAmp,
		SVKub:      svK,
		SVSram:     svS,
		CO:         svK * hr / 1000,
		TFC:        TFC(z0Th),
	}
}

// Series converts a beat sequence into parameters, skipping failed beats.
func Series(beats []icg.BeatAnalysis, rPeaks []int, z0, fs float64, body BodyConstants, cal Calibration) ([]BeatParams, error) {
	var out []BeatParams
	for i, b := range beats {
		if b.Err != nil || b.Points == nil {
			continue
		}
		if i+1 >= len(rPeaks) {
			break
		}
		out = append(out, FromPoints(b.Points, rPeaks[i+1], z0, fs, body, cal))
	}
	if len(out) == 0 {
		return nil, ErrNoBeats
	}
	return out, nil
}

// Field extracts one named series from beat parameters.
func Field(params []BeatParams, get func(BeatParams) float64) []float64 {
	out := make([]float64, len(params))
	for i, p := range params {
		out[i] = get(p)
	}
	return out
}

// RejectOutliers removes beats whose PEP or LVET deviates from the median
// by more than k median-absolute-deviations; physiological series use k=4.
func RejectOutliers(params []BeatParams, k float64) []BeatParams {
	if len(params) < 4 {
		return params
	}
	peps := Field(params, func(p BeatParams) float64 { return p.PEP })
	lvets := Field(params, func(p BeatParams) float64 { return p.LVET })
	mp, dp := medianMAD(peps)
	ml, dl := medianMAD(lvets)
	var out []BeatParams
	for _, p := range params {
		if dp > 0 && math.Abs(p.PEP-mp) > k*dp {
			continue
		}
		if dl > 0 && math.Abs(p.LVET-ml) > k*dl {
			continue
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return params
	}
	return out
}

func medianMAD(x []float64) (median, mad float64) {
	median = dsp.Median(x)
	dev := make([]float64, len(x))
	for i, v := range x {
		dev[i] = math.Abs(v - median)
	}
	return median, dsp.Median(dev)
}

// Summary aggregates a parameter series.
type Summary struct {
	Beats    int
	HR       dsp.Summary
	PEP      dsp.Summary
	LVET     dsp.Summary
	Z0       float64
	SVKub    dsp.Summary
	COKub    dsp.Summary
	MeanTFC  float64
	MeanSTR  float64
	DZdtMean float64
}

// Summarize computes descriptive statistics over the beats.
func Summarize(params []BeatParams) Summary {
	if len(params) == 0 {
		return Summary{}
	}
	return Summary{
		Beats:    len(params),
		HR:       dsp.Summarize(Field(params, func(p BeatParams) float64 { return p.HR })),
		PEP:      dsp.Summarize(Field(params, func(p BeatParams) float64 { return p.PEP })),
		LVET:     dsp.Summarize(Field(params, func(p BeatParams) float64 { return p.LVET })),
		Z0:       dsp.Mean(Field(params, func(p BeatParams) float64 { return p.Z0 })),
		SVKub:    dsp.Summarize(Field(params, func(p BeatParams) float64 { return p.SVKub })),
		COKub:    dsp.Summarize(Field(params, func(p BeatParams) float64 { return p.CO })),
		MeanTFC:  dsp.Mean(Field(params, func(p BeatParams) float64 { return p.TFC })),
		MeanSTR:  dsp.Mean(Field(params, func(p BeatParams) float64 { return p.STR })),
		DZdtMean: dsp.Mean(Field(params, func(p BeatParams) float64 { return p.DZdtMax })),
	}
}
