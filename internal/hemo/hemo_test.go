package hemo

import (
	"math"
	"testing"

	"repro/internal/icg"
	"repro/internal/quality"
)

func TestKubicekSVKnownValue(t *testing.T) {
	b := DefaultBody()
	// rho=135, L=30, Z0=30, LVET=0.3, dZdt=1.5:
	// SV = 135*(30/30)^2*0.3*1.5 = 60.75 mL.
	sv := KubicekSV(b, 30, 0.3, 1.5)
	if math.Abs(sv-60.75) > 1e-9 {
		t.Errorf("SV = %g, want 60.75", sv)
	}
	if KubicekSV(b, 0, 0.3, 1.5) != 0 {
		t.Error("Z0=0 should give 0")
	}
}

func TestSramekSVKnownValue(t *testing.T) {
	b := DefaultBody()
	// H=178: VEPT = (0.17*178)^3/4.25 = 30.26^3/4.25.
	vept := math.Pow(0.17*178, 3) / 4.25
	want := vept * 1.5 / 30 * 0.3
	sv := SramekSV(b, 30, 0.3, 1.5)
	if math.Abs(sv-want) > 1e-9 {
		t.Errorf("SV = %g, want %g", sv, want)
	}
}

func TestSVPhysiologicalRange(t *testing.T) {
	// Across the physiological parameter grid both formulas stay within
	// the range the ICG literature reports (~25-200 mL; typical values
	// near 60-100 mL land mid-range).
	b := DefaultBody()
	for _, z0 := range []float64{22, 28, 35} {
		for _, lvet := range []float64{0.26, 0.31} {
			for _, dz := range []float64{1.1, 1.6, 2.0} {
				k := KubicekSV(b, z0, lvet, dz)
				s := SramekSV(b, z0, lvet, dz)
				if k < 25 || k > 200 {
					t.Errorf("Kubicek SV = %g out of plausible range (z0=%g)", k, z0)
				}
				if s < 25 || s > 200 {
					t.Errorf("Sramek SV = %g out of plausible range (z0=%g)", s, z0)
				}
			}
		}
	}
	// The canonical operating point lands in the textbook 60-100 mL band.
	if sv := KubicekSV(b, 27, 0.30, 1.5); sv < 60 || sv > 110 {
		t.Errorf("typical Kubicek SV = %g", sv)
	}
}

func TestTFC(t *testing.T) {
	if got := TFC(25); math.Abs(got-40) > 1e-12 {
		t.Errorf("TFC = %g", got)
	}
	if TFC(0) != 0 {
		t.Error("Z0=0 guard")
	}
}

func TestFromPoints(t *testing.T) {
	fs := 250.0
	p := &icg.BeatPoints{R: 1000, B: 1025, C: 1050, X: 1100, CAmp: 1.5}
	bp := FromPoints(p, 1250, 28, fs, DefaultBody(), IdentityCal())
	if math.Abs(bp.PEP-0.1) > 1e-12 {
		t.Errorf("PEP = %g", bp.PEP)
	}
	if math.Abs(bp.LVET-0.3) > 1e-12 {
		t.Errorf("LVET = %g", bp.LVET)
	}
	if math.Abs(bp.RR-1.0) > 1e-12 || math.Abs(bp.HR-60) > 1e-9 {
		t.Errorf("RR/HR = %g/%g", bp.RR, bp.HR)
	}
	if math.Abs(bp.STR-1.0/3) > 1e-9 {
		t.Errorf("STR = %g", bp.STR)
	}
	if bp.SVKub <= 0 || bp.CO <= 0 {
		t.Error("SV/CO must be positive")
	}
	// CO = SV * HR / 1000.
	if math.Abs(bp.CO-bp.SVKub*60/1000) > 1e-9 {
		t.Errorf("CO inconsistency")
	}
}

func TestSeriesSkipsFailedBeats(t *testing.T) {
	fs := 250.0
	beats := []icg.BeatAnalysis{
		{Points: &icg.BeatPoints{R: 0, B: 20, C: 40, X: 90, CAmp: 1.2}},
		{Err: icg.ErrNoCPoint},
		{Points: &icg.BeatPoints{R: 500, B: 522, C: 545, X: 595, CAmp: 1.3}},
	}
	rPeaks := []int{0, 250, 500, 750}
	params, err := Series(beats, rPeaks, 30, fs, DefaultBody(), IdentityCal())
	if err != nil {
		t.Fatal(err)
	}
	if len(params) != 2 {
		t.Fatalf("params = %d, want 2", len(params))
	}
	if _, err := Series([]icg.BeatAnalysis{{Err: icg.ErrNoCPoint}}, rPeaks, 30, fs, DefaultBody(), IdentityCal()); err != ErrNoBeats {
		t.Errorf("all-failed: %v", err)
	}
}

func TestRejectOutliers(t *testing.T) {
	mk := func(pep, lvet float64) BeatParams {
		return BeatParams{PEP: pep, LVET: lvet}
	}
	params := []BeatParams{
		mk(0.095, 0.300), mk(0.100, 0.305), mk(0.097, 0.298),
		mk(0.102, 0.303), mk(0.099, 0.301), mk(0.101, 0.299),
		mk(0.300, 0.300), // PEP outlier
		mk(0.098, 0.600), // LVET outlier
	}
	kept := RejectOutliers(params, 4)
	if len(kept) != 6 {
		t.Fatalf("kept %d, want 6", len(kept))
	}
	for _, p := range kept {
		if p.PEP > 0.2 || p.LVET > 0.5 {
			t.Error("outlier survived")
		}
	}
	// Small series pass through untouched.
	small := params[:3]
	if len(RejectOutliers(small, 4)) != 3 {
		t.Error("small series should not be filtered")
	}
}

func TestSummarize(t *testing.T) {
	params := []BeatParams{
		{HR: 60, PEP: 0.1, LVET: 0.3, Z0: 30, SVKub: 60, CO: 3.6, TFC: 33.3, STR: 0.33, DZdtMax: 1.5},
		{HR: 62, PEP: 0.102, LVET: 0.304, Z0: 30, SVKub: 62, CO: 3.8, TFC: 33.3, STR: 0.33, DZdtMax: 1.6},
	}
	s := Summarize(params)
	if s.Beats != 2 {
		t.Errorf("beats = %d", s.Beats)
	}
	if math.Abs(s.HR.Mean-61) > 1e-9 {
		t.Errorf("HR mean = %g", s.HR.Mean)
	}
	if math.Abs(s.Z0-30) > 1e-12 {
		t.Errorf("Z0 = %g", s.Z0)
	}
	empty := Summarize(nil)
	if empty.Beats != 0 {
		t.Error("empty summary")
	}
}

func TestFieldExtraction(t *testing.T) {
	params := []BeatParams{{HR: 60}, {HR: 70}}
	hr := Field(params, func(p BeatParams) float64 { return p.HR })
	if len(hr) != 2 || hr[1] != 70 {
		t.Errorf("field = %v", hr)
	}
}

func TestClassifyTFC(t *testing.T) {
	cases := map[float64]FluidStatus{
		15: FluidLow,
		25: FluidNormal,
		40: FluidElevated,
		50: FluidHigh,
	}
	for tfc, want := range cases {
		if got := ClassifyTFC(tfc); got != want {
			t.Errorf("ClassifyTFC(%g) = %v, want %v", tfc, got, want)
		}
	}
	if FluidNormal.String() != "normal" || FluidStatus(99).String() != "unknown" {
		t.Error("status names")
	}
}

func TestAssessFluidTrend(t *testing.T) {
	// Rising TFC above the slope threshold triggers the alert.
	rising := []float64{30, 30.5, 31, 31.6, 32.1, 32.8, 33.2}
	tr := AssessFluidTrend(rising, 0.3, 5)
	if !tr.Alert {
		t.Errorf("rising trend should alert: %+v", tr)
	}
	if tr.SlopePerN <= 0 {
		t.Errorf("slope = %g", tr.SlopePerN)
	}
	// Stable TFC: no alert.
	stable := []float64{30, 30.1, 29.9, 30.0, 30.05, 29.95}
	if tr := AssessFluidTrend(stable, 0.3, 5); tr.Alert {
		t.Errorf("stable trend should not alert: %+v", tr)
	}
	// A single very high value alerts regardless of trend.
	if tr := AssessFluidTrend([]float64{50}, 0.3, 5); !tr.Alert || tr.Status != FluidHigh {
		t.Errorf("high TFC should alert: %+v", tr)
	}
	if tr := AssessFluidTrend(nil, 0.3, 5); tr.Alert {
		t.Error("empty series")
	}
}

func TestSeriesWithCallerBufferAndSQIs(t *testing.T) {
	fs := 250.0
	beats := []icg.BeatAnalysis{
		{Points: &icg.BeatPoints{R: 0, B: 20, C: 40, X: 90, CAmp: 1.2}},
		{Err: icg.ErrNoCPoint},
		{Points: &icg.BeatPoints{R: 500, B: 522, C: 545, X: 595, CAmp: 1.3}},
	}
	rPeaks := []int{0, 250, 500, 750}
	sqis := []quality.BeatSQI{
		{Score: 0.9, Accepted: true},
		{}, // failed beat slot
		{Score: 0.2, Accepted: false},
	}
	buf := make([]BeatParams, 0, 8)
	params, err := SeriesWith(buf, beats, sqis, rPeaks, 30, fs, DefaultBody(), IdentityCal())
	if err != nil {
		t.Fatal(err)
	}
	if len(params) != 2 {
		t.Fatalf("params = %d, want 2", len(params))
	}
	if &params[0] != &buf[:1][0] {
		t.Error("SeriesWith did not reuse the caller buffer")
	}
	if params[0].Quality != 0.9 || !params[0].Accepted {
		t.Errorf("beat 0 flags: %+v", params[0])
	}
	if params[1].Quality != 0.2 || params[1].Accepted {
		t.Errorf("beat 1 flags: %+v", params[1])
	}
	// nil sqis = accept-all defaults.
	params, err = SeriesWith(nil, beats, nil, rPeaks, 30, fs, DefaultBody(), IdentityCal())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range params {
		if !p.Accepted || p.Quality != 1 {
			t.Fatalf("ungated defaults wrong: %+v", p)
		}
	}
}

func TestWeightedMean(t *testing.T) {
	params := []BeatParams{
		{HR: 60, Quality: 1, Accepted: true},
		{HR: 90, Quality: 0.5, Accepted: true},
		{HR: 300, Quality: 1, Accepted: false}, // rejected: ignored
	}
	got := WeightedMean(params, func(p BeatParams) float64 { return p.HR })
	want := (60*1 + 90*0.5) / 1.5
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("weighted mean = %g, want %g", got, want)
	}
	// Zero weights fall back to the unweighted accepted mean.
	zw := []BeatParams{{HR: 50, Accepted: true}, {HR: 70, Accepted: true}}
	if got := WeightedMean(zw, func(p BeatParams) float64 { return p.HR }); math.Abs(got-60) > 1e-12 {
		t.Errorf("zero-weight fallback = %g", got)
	}
	if WeightedMean(nil, func(p BeatParams) float64 { return p.HR }) != 0 {
		t.Error("empty weighted mean")
	}
}

func TestSummarizeGated(t *testing.T) {
	mk := func(hr, pep, lvet, q float64, acc bool) BeatParams {
		return BeatParams{HR: hr, PEP: pep, LVET: lvet, Quality: q, Accepted: acc}
	}
	params := []BeatParams{
		mk(60, 0.100, 0.300, 0.9, true),
		mk(61, 0.101, 0.302, 0.9, true),
		mk(62, 0.099, 0.298, 0.8, true),
		mk(60, 0.102, 0.301, 0.9, true),
		mk(61, 0.098, 0.299, 0.9, true),
		mk(200, 0.020, 0.100, 0.1, false), // gate-rejected garbage
		mk(61, 0.400, 0.300, 0.9, true),   // accepted but a PEP outlier: MAD screen catches it
	}
	g := SummarizeGated(params, 4)
	if g.Raw.Beats != 7 {
		t.Errorf("raw beats = %d", g.Raw.Beats)
	}
	if g.Gated.Beats != 5 {
		t.Errorf("gated beats = %d, want 5 (gate + MAD)", g.Gated.Beats)
	}
	if math.Abs(g.AcceptRate-6.0/7) > 1e-12 {
		t.Errorf("accept rate = %g", g.AcceptRate)
	}
	if g.Gated.PEP.Max > 0.2 {
		t.Errorf("MAD screen missed the PEP outlier: max %g", g.Gated.PEP.Max)
	}
	if g.Raw.HR.Max < 200 {
		t.Error("raw summary should include the garbage beat")
	}
	if g.WHR < 60 || g.WHR > 62 {
		t.Errorf("weighted HR = %g", g.WHR)
	}
	// k <= 0 disables the MAD screen: all accepted beats survive.
	g = SummarizeGated(params, 0)
	if g.Gated.Beats != 6 {
		t.Errorf("screen-disabled gated beats = %d, want 6", g.Gated.Beats)
	}
	if SummarizeGated(nil, 4).Raw.Beats != 0 {
		t.Error("empty gated summary")
	}
	// All-rejected degrades to an empty gated view, not a panic.
	allRej := []BeatParams{mk(60, 0.1, 0.3, 0, false), mk(61, 0.1, 0.3, 0, false)}
	g = SummarizeGated(allRej, 4)
	if g.Gated.Beats != 0 || g.AcceptRate != 0 {
		t.Errorf("all-rejected: %+v", g.Gated)
	}
}
