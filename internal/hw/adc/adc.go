// Package adc models the analog-to-digital conversion stage of the
// acquisition front ends. The device's ECG AFE (ADS1291-class) offers up
// to 16-bit resolution and the STM32L151's internal ADC offers 12 bits;
// sampling rates are programmable from 125 Hz to 16 kHz (Section III-A).
package adc

import (
	"errors"
	"math"
)

// Config describes a bipolar ADC with full scale +-FullScale.
type Config struct {
	Bits      int     // resolution, 1..24
	FullScale float64 // input full scale (units of the signal, e.g. mV)
}

// Errors returned by Validate.
var (
	ErrBadBits      = errors.New("adc: bits must be in 1..24")
	ErrBadFullScale = errors.New("adc: full scale must be positive")
)

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Bits < 1 || c.Bits > 24 {
		return ErrBadBits
	}
	if c.FullScale <= 0 {
		return ErrBadFullScale
	}
	return nil
}

// Levels returns the number of quantization levels (2^Bits).
func (c Config) Levels() int {
	return 1 << uint(c.Bits)
}

// LSB returns the quantization step.
func (c Config) LSB() float64 {
	return 2 * c.FullScale / float64(c.Levels())
}

// TheoreticalSNR returns the ideal quantization SNR in dB
// (6.02*bits + 1.76).
func (c Config) TheoreticalSNR() float64 {
	return 6.02*float64(c.Bits) + 1.76
}

// Quantize converts one sample: clamp to full scale, round to the nearest
// code, return the reconstructed value.
func (c Config) Quantize(v float64) float64 {
	fs := c.FullScale
	if v > fs {
		v = fs
	}
	if v < -fs {
		v = -fs
	}
	lsb := c.LSB()
	code := math.Round(v / lsb)
	max := float64(c.Levels()/2) - 1
	if code > max {
		code = max
	}
	if code < -max-1 {
		code = -max - 1
	}
	return code * lsb
}

// QuantizeSlice converts a whole signal, returning a new slice and the
// number of clipped samples.
func (c Config) QuantizeSlice(x []float64) ([]float64, int) {
	y := make([]float64, len(x))
	clipped := 0
	for i, v := range x {
		if v > c.FullScale || v < -c.FullScale {
			clipped++
		}
		y[i] = c.Quantize(v)
	}
	return y, clipped
}

// Saturated reports whether the code for v sits at either rail.
func (c Config) Saturated(v float64) bool {
	lsb := c.LSB()
	max := (float64(c.Levels()/2) - 1) * lsb
	min := -float64(c.Levels()/2) * lsb
	q := c.Quantize(v)
	return q >= max || q <= min
}
