package adc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	good := Config{Bits: 12, FullScale: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	if err := (Config{Bits: 0, FullScale: 1}).Validate(); err != ErrBadBits {
		t.Errorf("bits=0: %v", err)
	}
	if err := (Config{Bits: 25, FullScale: 1}).Validate(); err != ErrBadBits {
		t.Errorf("bits=25: %v", err)
	}
	if err := (Config{Bits: 12, FullScale: 0}).Validate(); err != ErrBadFullScale {
		t.Errorf("fs=0: %v", err)
	}
}

func TestLevelsAndLSB(t *testing.T) {
	c := Config{Bits: 12, FullScale: 1}
	if c.Levels() != 4096 {
		t.Errorf("levels = %d", c.Levels())
	}
	want := 2.0 / 4096
	if math.Abs(c.LSB()-want) > 1e-15 {
		t.Errorf("LSB = %g, want %g", c.LSB(), want)
	}
}

func TestTheoreticalSNR(t *testing.T) {
	c := Config{Bits: 16, FullScale: 1}
	if got := c.TheoreticalSNR(); math.Abs(got-98.08) > 0.01 {
		t.Errorf("SNR = %g", got)
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	c := Config{Bits: 12, FullScale: 1}
	// Quantization error bounded by LSB/2 in the linear range.
	for _, v := range []float64{0, 0.1, -0.37, 0.9, -0.99} {
		q := c.Quantize(v)
		if math.Abs(q-v) > c.LSB()/2+1e-15 {
			t.Errorf("quantize(%g) = %g, error too large", v, q)
		}
	}
}

func TestQuantizeClips(t *testing.T) {
	c := Config{Bits: 8, FullScale: 1}
	hi := c.Quantize(5)
	lo := c.Quantize(-5)
	if hi > 1 || lo < -1 {
		t.Errorf("clipping out of range: %g, %g", hi, lo)
	}
	if !c.Saturated(5) || !c.Saturated(-5) {
		t.Error("rails should report saturated")
	}
	if c.Saturated(0) {
		t.Error("midscale should not be saturated")
	}
}

func TestQuantizeSliceCountsClipped(t *testing.T) {
	c := Config{Bits: 8, FullScale: 1}
	y, clipped := c.QuantizeSlice([]float64{0, 2, -3, 0.5})
	if clipped != 2 {
		t.Errorf("clipped = %d, want 2", clipped)
	}
	if len(y) != 4 {
		t.Errorf("len = %d", len(y))
	}
}

func TestQuantizeMonotoneProperty(t *testing.T) {
	c := Config{Bits: 10, FullScale: 2}
	f := func(a, b float64) bool {
		a = math.Mod(a, 4)
		b = math.Mod(b, 4)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return c.Quantize(a) <= c.Quantize(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeIdempotentProperty(t *testing.T) {
	c := Config{Bits: 12, FullScale: 1}
	f := func(v float64) bool {
		v = math.Mod(v, 2)
		if math.IsNaN(v) {
			return true
		}
		q := c.Quantize(v)
		return c.Quantize(q) == q
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
