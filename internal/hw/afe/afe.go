// Package afe models the two analog front ends of the touch device
// (Section III-A): an ADS1291-class ECG front end and the proprietary ICG
// sensor, which injects an adjustable-frequency carrier current and
// recovers the body impedance by synchronous (lock-in) demodulation.
package afe

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/dsp"
	"repro/internal/hw/adc"
)

// ECGConfig describes the ECG acquisition chain.
type ECGConfig struct {
	Gain       float64    // amplifier gain applied before the ADC
	SampleRate float64    // Hz, 125..16000 per the datasheet range
	NoiseStd   float64    // input-referred noise (same unit as input, mV)
	ADC        adc.Config // quantizer
}

// DefaultECG returns an ADS1291-like configuration for a +-5 mV ECG input
// range sampled at 250 Hz with 16-bit resolution.
func DefaultECG() ECGConfig {
	return ECGConfig{
		Gain:       1,
		SampleRate: 250,
		NoiseStd:   0.002,
		ADC:        adc.Config{Bits: 16, FullScale: 5},
	}
}

// Errors returned by the front ends.
var (
	ErrBadSampleRate = errors.New("afe: sample rate out of the 125 Hz..16 kHz range")
	ErrBadCarrier    = errors.New("afe: carrier frequency must be positive")
)

// Validate checks the configuration against the hardware limits.
func (c ECGConfig) Validate() error {
	if c.SampleRate < 125 || c.SampleRate > 16000 {
		return ErrBadSampleRate
	}
	return c.ADC.Validate()
}

// Acquire passes the analog ECG through gain, input-referred noise and
// quantization. The input is assumed already sampled at SampleRate.
func (c ECGConfig) Acquire(x []float64, rng *rand.Rand) []float64 {
	y := make([]float64, len(x))
	for i, v := range x {
		s := v
		if c.NoiseStd > 0 && rng != nil {
			s += rng.NormFloat64() * c.NoiseStd
		}
		y[i] = c.ADC.Quantize(s * c.Gain)
	}
	return y
}

// ICGConfig describes the impedance acquisition chain. Like classic
// impedance-cardiography front ends, the demodulated signal is split into
// a DC path (the base impedance Z0, digitized at full range) and a
// high-gain AC path (the cardiac/respiratory variation dZ, digitized with
// sub-milliohm resolution): differentiating a coarsely quantized Z would
// otherwise bury the ~1 Ohm/s C wave in quantization noise.
type ICGConfig struct {
	CarrierFreq float64    // injected current frequency (Hz), e.g. 50 kHz
	CarrierAmp  float64    // injected current amplitude (mA)
	SampleRate  float64    // demodulated output rate (Hz)
	NoiseStd    float64    // demodulator residual noise after its output filter (Ohm)
	DCADC       adc.Config // quantizer of the base-impedance path
	ACADC       adc.Config // quantizer of the high-gain variation path
}

// DefaultICG returns the 50 kHz configuration used for hemodynamic
// parameters (Section IV-B), demodulated to 250 Hz.
func DefaultICG() ICGConfig {
	return ICGConfig{
		CarrierFreq: 50e3,
		CarrierAmp:  0.4,
		SampleRate:  250,
		NoiseStd:    0.004,
		DCADC:       adc.Config{Bits: 16, FullScale: 2048},
		ACADC:       adc.Config{Bits: 16, FullScale: 8},
	}
}

// Validate checks the configuration.
func (c ICGConfig) Validate() error {
	if c.CarrierFreq <= 0 {
		return ErrBadCarrier
	}
	if c.SampleRate < 125 || c.SampleRate > 16000 {
		return ErrBadSampleRate
	}
	if err := c.DCADC.Validate(); err != nil {
		return err
	}
	return c.ACADC.Validate()
}

// Acquire converts a demodulated impedance track (Ohm, sampled at
// SampleRate) into quantized values: the track mean goes through the DC
// path, the variation through the high-gain AC path, and the two are
// recombined. This is the behavioral model used by the study harness;
// SimulateLockIn below validates the demodulation against a carrier-level
// simulation.
func (c ICGConfig) Acquire(z []float64, rng *rand.Rand) []float64 {
	if len(z) == 0 {
		return nil
	}
	mean := 0.0
	for _, v := range z {
		mean += v
	}
	mean /= float64(len(z))
	z0 := c.DCADC.Quantize(mean)
	y := make([]float64, len(z))
	for i, v := range z {
		s := v - mean
		if c.NoiseStd > 0 && rng != nil {
			s += rng.NormFloat64() * c.NoiseStd
		}
		y[i] = z0 + c.ACADC.Quantize(s)
	}
	return y
}

// SimulateLockIn runs a carrier-level simulation of the synchronous
// demodulator: the impedance track z (sampled at fsZ) modulates a carrier
// at fc, the product signal is sampled at fsSim, multiplied by the
// reference carrier, low-pass filtered and decimated back to fsZ. The
// returned track should approximate z; tests use it to validate the
// behavioral Acquire path. fsSim must be at least 4*fc.
func SimulateLockIn(z []float64, fsZ, fc, fsSim float64) ([]float64, error) {
	if fc <= 0 {
		return nil, ErrBadCarrier
	}
	if fsSim < 4*fc {
		return nil, errors.New("afe: simulation rate must be >= 4x carrier")
	}
	if len(z) == 0 {
		return nil, nil
	}
	nSim := int(float64(len(z)) * fsSim / fsZ)
	// Body voltage = Z(t) * sin(2*pi*fc*t); demodulate with 2*sin.
	demod := make([]float64, nSim)
	for i := 0; i < nSim; i++ {
		t := float64(i) / fsSim
		// Linear interpolation of z at time t.
		pos := t * fsZ
		lo := int(pos)
		var zv float64
		if lo >= len(z)-1 {
			zv = z[len(z)-1]
		} else {
			frac := pos - float64(lo)
			zv = z[lo]*(1-frac) + z[lo+1]*frac
		}
		carrier := math.Sin(2 * math.Pi * fc * t)
		demod[i] = zv * carrier * 2 * carrier // v(t) * 2*sin(wt)
	}
	// Low-pass well below the carrier to keep only the baseband.
	cutoff := math.Min(fc/10, fsZ/2*0.8)
	sos, err := dsp.DesignButterLowPass(4, cutoff, fsSim)
	if err != nil {
		return nil, err
	}
	base := sos.FiltFilt(demod)
	// Decimate back to fsZ.
	k := int(fsSim / fsZ)
	out := make([]float64, 0, len(z))
	for i := 0; i < len(base) && len(out) < len(z); i += k {
		out = append(out, base[i])
	}
	for len(out) < len(z) {
		out = append(out, base[len(base)-1])
	}
	return out, nil
}
