package afe

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dsp"
)

func TestECGConfigValidate(t *testing.T) {
	c := DefaultECG()
	if err := c.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	c.SampleRate = 100
	if err := c.Validate(); err != ErrBadSampleRate {
		t.Errorf("low rate: %v", err)
	}
	c.SampleRate = 20000
	if err := c.Validate(); err != ErrBadSampleRate {
		t.Errorf("high rate: %v", err)
	}
}

func TestECGAcquirePreservesSignal(t *testing.T) {
	c := DefaultECG()
	c.NoiseStd = 0
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 500)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 10 * float64(i) / 250)
	}
	y := c.Acquire(x, rng)
	if r := dsp.Pearson(x, y); r < 0.9999 {
		t.Errorf("correlation after acquisition = %g", r)
	}
	// Quantization error bounded by LSB.
	if e := dsp.RMSE(x, y); e > c.ADC.LSB() {
		t.Errorf("rmse = %g exceeds LSB %g", e, c.ADC.LSB())
	}
}

func TestECGAcquireAddsConfiguredNoise(t *testing.T) {
	c := DefaultECG()
	c.NoiseStd = 0.05
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 20000)
	y := c.Acquire(x, rng)
	if s := dsp.Std(y); math.Abs(s-0.05) > 0.005 {
		t.Errorf("noise std = %g, want ~0.05", s)
	}
}

func TestICGConfigValidate(t *testing.T) {
	c := DefaultICG()
	if err := c.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	c.CarrierFreq = 0
	if err := c.Validate(); err != ErrBadCarrier {
		t.Errorf("carrier=0: %v", err)
	}
}

func TestICGAcquireQuantizes(t *testing.T) {
	c := DefaultICG()
	c.NoiseStd = 0
	x := []float64{480.123456, 481.5, 479.9}
	y := c.Acquire(x, nil)
	tol := c.DCADC.LSB() + c.ACADC.LSB()
	for i := range x {
		if math.Abs(y[i]-x[i]) > tol {
			t.Errorf("sample %d error %g", i, y[i]-x[i])
		}
	}
	// The AC path must resolve sub-milliohm steps: two samples 1 mOhm
	// apart must not collapse to the same code.
	fine := c.Acquire([]float64{480.000, 480.001, 480.002}, nil)
	if fine[0] == fine[2] {
		t.Error("AC path resolution too coarse")
	}
	if c.Acquire(nil, nil) != nil {
		t.Error("empty input")
	}
}

func TestSimulateLockInRecoversImpedance(t *testing.T) {
	// A slow impedance ripple on a 2 kHz carrier, simulated at 16 kHz,
	// must be recovered by the synchronous demodulator.
	fsZ := 250.0
	fc := 2000.0
	fsSim := 16000.0
	n := 500
	z := make([]float64, n)
	for i := range z {
		ti := float64(i) / fsZ
		z[i] = 480 + 0.5*math.Sin(2*math.Pi*1.2*ti)
	}
	got, err := SimulateLockIn(z, fsZ, fc, fsSim)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("len = %d, want %d", len(got), n)
	}
	// Compare interior samples (edges carry filter transients).
	if e := dsp.RMSE(got[50:n-50], z[50:n-50]); e > 1.0 {
		t.Errorf("lock-in recovery rmse = %g Ohm", e)
	}
	// The ripple must survive: correlation of the AC parts.
	gotAC := dsp.Offset(got[50:n-50], -dsp.Mean(got[50:n-50]))
	zAC := dsp.Offset(z[50:n-50], -dsp.Mean(z[50:n-50]))
	if r := dsp.Pearson(gotAC, zAC); r < 0.95 {
		t.Errorf("ripple correlation = %g", r)
	}
}

func TestSimulateLockInValidatesInput(t *testing.T) {
	if _, err := SimulateLockIn([]float64{1}, 250, 0, 1000); err != ErrBadCarrier {
		t.Errorf("carrier=0: %v", err)
	}
	if _, err := SimulateLockIn([]float64{1}, 250, 2000, 4000); err == nil {
		t.Error("undersampled simulation accepted")
	}
	got, err := SimulateLockIn(nil, 250, 2000, 16000)
	if err != nil || got != nil {
		t.Error("empty input should return nil, nil")
	}
}

func TestSimulateLockInAt50kHz(t *testing.T) {
	// The hemodynamic carrier: 50 kHz demodulated at 400 kHz simulation
	// rate over a short window.
	fsZ := 250.0
	fc := 50e3
	fsSim := 400e3
	n := 125 // 0.5 s
	z := make([]float64, n)
	for i := range z {
		ti := float64(i) / fsZ
		z[i] = 30 + 0.2*math.Sin(2*math.Pi*2*ti)
	}
	got, err := SimulateLockIn(z, fsZ, fc, fsSim)
	if err != nil {
		t.Fatal(err)
	}
	if e := dsp.RMSE(got[20:n-20], z[20:n-20]); e > 0.5 {
		t.Errorf("50 kHz lock-in rmse = %g Ohm", e)
	}
}
