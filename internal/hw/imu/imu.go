// Package imu models the device's accelerometer and gyroscope, which the
// paper uses "to distinguish different positions" (Section III-A): the
// three protocol arm positions have distinct gravity orientations in the
// device frame, and motion episodes show up as gyroscope activity.
package imu

import (
	"math"
	"math/rand"

	"repro/internal/bioimp"
)

// Sample is one 6-axis IMU reading.
type Sample struct {
	Ax, Ay, Az float64 // accelerometer (m/s^2), includes gravity
	Gx, Gy, Gz float64 // gyroscope (rad/s)
}

// G is standard gravity.
const G = 9.80665

// gravity returns the nominal gravity vector in the device frame for each
// protocol position:
//
//	position 1 (device held to the chest): device Y axis points up
//	position 2 (arms stretched forward):   device Z axis points up
//	position 3 (arms down by the sides):   device X axis points up
func gravity(pos bioimp.Position) (x, y, z float64) {
	switch pos {
	case bioimp.Position1:
		return 0, -G, 0
	case bioimp.Position2:
		return 0, 0, -G
	case bioimp.Position3:
		return -G, 0, 0
	default:
		return 0, -G, 0
	}
}

// Config parameterizes the synthesizer.
type Config struct {
	FS          float64 // sampling rate (Hz)
	AccelNoise  float64 // accelerometer noise std (m/s^2)
	GyroNoise   float64 // gyroscope noise std (rad/s)
	TremorAmp   float64 // physiological tremor acceleration amplitude (m/s^2)
	TremorFreq  float64 // tremor frequency (Hz), typically 8-12
	TiltWander  float64 // slow orientation wander amplitude (rad)
	MotionLevel float64 // extra motion multiplier (position-dependent)
}

// DefaultConfig returns a typical wearable-IMU configuration at 100 Hz.
func DefaultConfig() Config {
	return Config{
		FS:         100,
		AccelNoise: 0.03,
		GyroNoise:  0.005,
		TremorAmp:  0.08,
		TremorFreq: 10,
		TiltWander: 0.05,
	}
}

// Synthesize produces n samples of IMU data for a subject holding the
// device in the given position.
func Synthesize(rng *rand.Rand, cfg Config, pos bioimp.Position, n int) []Sample {
	gx, gy, gz := gravity(pos)
	out := make([]Sample, n)
	phase := rng.Float64() * 2 * math.Pi
	wanderPhase := rng.Float64() * 2 * math.Pi
	motion := 1 + cfg.MotionLevel
	for i := 0; i < n; i++ {
		t := float64(i) / cfg.FS
		// Slow tilt wander rotates gravity slightly about the device Z.
		tilt := cfg.TiltWander * math.Sin(2*math.Pi*0.08*t+wanderPhase) * motion
		cos, sin := math.Cos(tilt), math.Sin(tilt)
		ax := gx*cos - gy*sin
		ay := gx*sin + gy*cos
		az := gz
		// Tremor.
		tr := cfg.TremorAmp * motion * math.Sin(2*math.Pi*cfg.TremorFreq*t+phase)
		out[i] = Sample{
			Ax: ax + tr + rng.NormFloat64()*cfg.AccelNoise,
			Ay: ay + rng.NormFloat64()*cfg.AccelNoise,
			Az: az + tr*0.5 + rng.NormFloat64()*cfg.AccelNoise,
			Gx: rng.NormFloat64()*cfg.GyroNoise + 0.02*motion*math.Sin(2*math.Pi*0.3*t),
			Gy: rng.NormFloat64() * cfg.GyroNoise,
			Gz: rng.NormFloat64()*cfg.GyroNoise + tilt*0.1,
		}
	}
	return out
}

// MeanAccel returns the average acceleration vector of a window.
func MeanAccel(s []Sample) (x, y, z float64) {
	if len(s) == 0 {
		return 0, 0, 0
	}
	for _, v := range s {
		x += v.Ax
		y += v.Ay
		z += v.Az
	}
	n := float64(len(s))
	return x / n, y / n, z / n
}

// Classify estimates the arm position from a window of IMU samples by
// nearest-centroid matching of the mean gravity direction. The boolean is
// false when the best match is too far from any centroid (e.g. free fall
// or vigorous motion).
func Classify(s []Sample) (bioimp.Position, bool) {
	if len(s) == 0 {
		return bioimp.Position1, false
	}
	mx, my, mz := MeanAccel(s)
	norm := math.Sqrt(mx*mx + my*my + mz*mz)
	if norm < G/2 || norm > 2*G {
		return bioimp.Position1, false
	}
	best := bioimp.Position1
	bestDot := math.Inf(-1)
	for _, pos := range bioimp.Positions() {
		gx, gy, gz := gravity(pos)
		dot := (mx*gx + my*gy + mz*gz) / (norm * G)
		if dot > bestDot {
			bestDot = dot
			best = pos
		}
	}
	// Require reasonable alignment (within ~45 degrees).
	if bestDot < math.Cos(math.Pi/4) {
		return best, false
	}
	return best, true
}

// MotionRMS returns the gyroscope RMS of a window, the device's motion
// indicator used to flag unstable measurements.
func MotionRMS(s []Sample) float64 {
	if len(s) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s {
		sum += v.Gx*v.Gx + v.Gy*v.Gy + v.Gz*v.Gz
	}
	return math.Sqrt(sum / float64(len(s)))
}
