package imu

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bioimp"
)

func TestClassifyAllPositions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultConfig()
	for _, pos := range bioimp.Positions() {
		s := Synthesize(rng, cfg, pos, 200)
		got, ok := Classify(s)
		if !ok {
			t.Errorf("%v: classification not confident", pos)
		}
		if got != pos {
			t.Errorf("classified %v as %v", pos, got)
		}
	}
}

func TestClassifyRobustToNoiseAndMotion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultConfig()
	cfg.AccelNoise = 0.2
	cfg.MotionLevel = 1.5
	correct := 0
	trials := 60
	for i := 0; i < trials; i++ {
		pos := bioimp.Positions()[i%3]
		s := Synthesize(rng, cfg, pos, 150)
		if got, ok := Classify(s); ok && got == pos {
			correct++
		}
	}
	if acc := float64(correct) / float64(trials); acc < 0.9 {
		t.Errorf("accuracy under noise = %g, want >= 0.9", acc)
	}
}

func TestClassifyRejectsDegenerateInput(t *testing.T) {
	if _, ok := Classify(nil); ok {
		t.Error("empty window accepted")
	}
	// Free fall: no gravity.
	ff := make([]Sample, 50)
	if _, ok := Classify(ff); ok {
		t.Error("free fall accepted")
	}
	// Excessive acceleration.
	big := make([]Sample, 50)
	for i := range big {
		big[i] = Sample{Ax: 50}
	}
	if _, ok := Classify(big); ok {
		t.Error("crash acceleration accepted")
	}
}

func TestMeanAccelGravityMagnitude(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := Synthesize(rng, DefaultConfig(), bioimp.Position2, 500)
	x, y, z := MeanAccel(s)
	norm := math.Sqrt(x*x + y*y + z*z)
	if math.Abs(norm-G) > 0.5 {
		t.Errorf("gravity magnitude = %g, want ~%g", norm, G)
	}
}

func TestMotionRMSGrowsWithMotionLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	calm := DefaultConfig()
	busy := DefaultConfig()
	busy.MotionLevel = 3
	sc := Synthesize(rng, calm, bioimp.Position1, 400)
	sb := Synthesize(rng, busy, bioimp.Position1, 400)
	if MotionRMS(sb) <= MotionRMS(sc) {
		t.Error("motion RMS should grow with motion level")
	}
	if MotionRMS(nil) != 0 {
		t.Error("empty window RMS should be 0")
	}
}

func TestSynthesizeDistinctGravityAxes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := DefaultConfig()
	// The dominant gravity axis must differ between protocol positions.
	axes := make(map[int]bool)
	for _, pos := range bioimp.Positions() {
		s := Synthesize(rng, cfg, pos, 300)
		x, y, z := MeanAccel(s)
		ax := 0
		m := math.Abs(x)
		if math.Abs(y) > m {
			ax, m = 1, math.Abs(y)
		}
		if math.Abs(z) > m {
			ax = 2
		}
		if axes[ax] {
			t.Errorf("%v shares its gravity axis with another position", pos)
		}
		axes[ax] = true
	}
}
