// Package mcu models the STM32L151 microcontroller of the device
// (Section III-A): a 32 MHz Cortex-M3 with 48 KB RAM, 384 KB flash and no
// hardware FPU, so floating-point arithmetic runs in software. The package
// prices the signal-processing pipeline in CPU cycles and converts it to
// the duty-cycle figure the paper reports (40-50% for the full chain).
package mcu

import (
	"fmt"
	"sort"
	"strings"
)

// Op enumerates the operation classes of the cost model.
type Op int

// Operation classes.
const (
	OpFloatAdd Op = iota // software float add/sub
	OpFloatMul           // software float multiply
	OpFloatDiv           // software float divide
	OpFloatCmp           // software float compare
	OpIntALU             // integer add/sub/logic
	OpIntMul             // integer multiply
	OpMemory             // load/store
	OpBranch             // taken branch
	opCount
)

// String names the operation class.
func (o Op) String() string {
	switch o {
	case OpFloatAdd:
		return "fadd"
	case OpFloatMul:
		return "fmul"
	case OpFloatDiv:
		return "fdiv"
	case OpFloatCmp:
		return "fcmp"
	case OpIntALU:
		return "ialu"
	case OpIntMul:
		return "imul"
	case OpMemory:
		return "mem"
	case OpBranch:
		return "branch"
	default:
		return "op?"
	}
}

// CostModel maps operation classes to cycle costs.
type CostModel [opCount]float64

// CortexM3SoftFloat returns cycle costs for single-precision soft-float
// emulation on a Cortex-M3 (no FPU), in line with published
// __aeabi_fadd/fmul/fdiv figures.
func CortexM3SoftFloat() CostModel {
	var m CostModel
	m[OpFloatAdd] = 55
	m[OpFloatMul] = 65
	m[OpFloatDiv] = 190
	m[OpFloatCmp] = 30
	m[OpIntALU] = 1
	m[OpIntMul] = 2
	m[OpMemory] = 2
	m[OpBranch] = 3
	return m
}

// CortexM4FPU returns cycle costs with a single-precision hardware FPU
// (used as the ablation point: what the duty cycle would be on an M4F).
func CortexM4FPU() CostModel {
	var m CostModel
	m[OpFloatAdd] = 1
	m[OpFloatMul] = 1
	m[OpFloatDiv] = 14
	m[OpFloatCmp] = 1
	m[OpIntALU] = 1
	m[OpIntMul] = 1
	m[OpMemory] = 2
	m[OpBranch] = 3
	return m
}

// STM32L151 describes the microcontroller of Table I.
type STM32L151 struct {
	ClockHz          float64
	ActiveCurrentMA  float64
	StandbyCurrentMA float64
	RAMBytes         int
	FlashBytes       int
	// OverheadFactor multiplies algorithmic cycles to account for
	// interrupt service, buffer management, RTOS ticks and flash wait
	// states; calibrated against the paper's reported 40-50% duty cycle
	// (see EXPERIMENTS.md, experiment E8).
	OverheadFactor float64
}

// DefaultSTM32L151 returns the datasheet configuration used in Table I.
func DefaultSTM32L151() STM32L151 {
	return STM32L151{
		ClockHz:          32e6,
		ActiveCurrentMA:  10.5,
		StandbyCurrentMA: 0.020,
		RAMBytes:         48 * 1024,
		FlashBytes:       384 * 1024,
		OverheadFactor:   3.7,
	}
}

// Counter accumulates operation counts, grouped by pipeline stage.
type Counter struct {
	stages map[string]*[opCount]int64
	order  []string
}

// NewCounter returns an empty counter.
func NewCounter() *Counter {
	return &Counter{stages: make(map[string]*[opCount]int64)}
}

// Add records n operations of class op attributed to the named stage.
func (c *Counter) Add(stage string, op Op, n int64) {
	s, ok := c.stages[stage]
	if !ok {
		s = new([opCount]int64)
		c.stages[stage] = s
		c.order = append(c.order, stage)
	}
	s[op] += n
}

// AddAll merges another counter into this one.
func (c *Counter) AddAll(other *Counter) {
	for _, stage := range other.order {
		src := other.stages[stage]
		for op := Op(0); op < opCount; op++ {
			if src[op] != 0 {
				c.Add(stage, op, src[op])
			}
		}
	}
}

// Cycles prices the accumulated operations with the model.
func (c *Counter) Cycles(m CostModel) float64 {
	total := 0.0
	for _, s := range c.stages {
		for op := Op(0); op < opCount; op++ {
			total += float64(s[op]) * m[op]
		}
	}
	return total
}

// StageCycles returns per-stage cycle totals sorted by descending cost.
func (c *Counter) StageCycles(m CostModel) []StageCost {
	out := make([]StageCost, 0, len(c.stages))
	for _, name := range c.order {
		s := c.stages[name]
		cycles := 0.0
		for op := Op(0); op < opCount; op++ {
			cycles += float64(s[op]) * m[op]
		}
		out = append(out, StageCost{Stage: name, Cycles: cycles})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cycles > out[j].Cycles })
	return out
}

// StageCost is one row of the per-stage cycle report.
type StageCost struct {
	Stage  string
	Cycles float64
}

// DutyCycle converts cycles consumed over a signal window of the given
// duration into the CPU duty-cycle fraction, including the firmware
// overhead factor.
func (s STM32L151) DutyCycle(cycles, windowSeconds float64) float64 {
	if windowSeconds <= 0 || s.ClockHz <= 0 {
		return 0
	}
	return cycles * s.OverheadFactor / (s.ClockHz * windowSeconds)
}

// RawDutyCycle is DutyCycle without the overhead factor (the purely
// algorithmic lower bound).
func (s STM32L151) RawDutyCycle(cycles, windowSeconds float64) float64 {
	if windowSeconds <= 0 || s.ClockHz <= 0 {
		return 0
	}
	return cycles / (s.ClockHz * windowSeconds)
}

// AverageCurrentMA returns the MCU average current at the given duty
// cycle, duty in [0,1].
func (s STM32L151) AverageCurrentMA(duty float64) float64 {
	if duty < 0 {
		duty = 0
	}
	if duty > 1 {
		duty = 1
	}
	return duty*s.ActiveCurrentMA + (1-duty)*s.StandbyCurrentMA
}

// FitsRAM reports whether a working set of the given bytes fits the RAM.
func (s STM32L151) FitsRAM(bytes int) bool { return bytes <= s.RAMBytes }

// Report renders a human-readable per-stage cycle table.
func (c *Counter) Report(m CostModel, clockHz, window float64) string {
	var b strings.Builder
	rows := c.StageCycles(m)
	total := 0.0
	for _, r := range rows {
		total += r.Cycles
	}
	fmt.Fprintf(&b, "%-28s %14s %8s\n", "stage", "cycles", "share")
	for _, r := range rows {
		share := 0.0
		if total > 0 {
			share = r.Cycles / total * 100
		}
		fmt.Fprintf(&b, "%-28s %14.0f %7.1f%%\n", r.Stage, r.Cycles, share)
	}
	fmt.Fprintf(&b, "%-28s %14.0f %7.1f%%\n", "total", total, 100.0)
	if clockHz > 0 && window > 0 {
		fmt.Fprintf(&b, "algorithmic duty at %.0f MHz over %.0fs window: %.1f%%\n",
			clockHz/1e6, window, total/(clockHz*window)*100)
	}
	return b.String()
}
