package mcu

import (
	"math"
	"strings"
	"testing"
)

func TestCostModels(t *testing.T) {
	soft := CortexM3SoftFloat()
	hard := CortexM4FPU()
	// Soft float is much more expensive than hardware float.
	if soft[OpFloatMul] <= 10*hard[OpFloatMul] {
		t.Errorf("soft fmul %g vs hard %g", soft[OpFloatMul], hard[OpFloatMul])
	}
	if soft[OpFloatDiv] <= soft[OpFloatMul] {
		t.Error("div should cost more than mul")
	}
	if soft[OpIntALU] != 1 {
		t.Error("int ALU should be single cycle")
	}
}

func TestCounterCycles(t *testing.T) {
	c := NewCounter()
	c.Add("filter", OpFloatMul, 100)
	c.Add("filter", OpFloatAdd, 100)
	c.Add("detect", OpFloatCmp, 50)
	m := CortexM3SoftFloat()
	want := 100*m[OpFloatMul] + 100*m[OpFloatAdd] + 50*m[OpFloatCmp]
	if got := c.Cycles(m); math.Abs(got-want) > 1e-9 {
		t.Errorf("cycles = %g, want %g", got, want)
	}
}

func TestCounterStageBreakdown(t *testing.T) {
	c := NewCounter()
	c.Add("cheap", OpIntALU, 10)
	c.Add("expensive", OpFloatDiv, 1000)
	rows := c.StageCycles(CortexM3SoftFloat())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Stage != "expensive" {
		t.Errorf("expected descending order, got %v", rows)
	}
}

func TestCounterAddAll(t *testing.T) {
	a := NewCounter()
	a.Add("s1", OpFloatAdd, 5)
	b := NewCounter()
	b.Add("s1", OpFloatAdd, 7)
	b.Add("s2", OpIntALU, 3)
	a.AddAll(b)
	m := CortexM3SoftFloat()
	want := 12*m[OpFloatAdd] + 3*m[OpIntALU]
	if got := a.Cycles(m); math.Abs(got-want) > 1e-9 {
		t.Errorf("merged cycles = %g, want %g", got, want)
	}
}

func TestDutyCycle(t *testing.T) {
	s := DefaultSTM32L151()
	// 16 M cycles of work over 1 s at 32 MHz = 50% raw duty.
	if d := s.RawDutyCycle(16e6, 1); math.Abs(d-0.5) > 1e-12 {
		t.Errorf("raw duty = %g", d)
	}
	// The overhead factor scales the raw figure.
	if d := s.DutyCycle(16e6, 1); math.Abs(d-0.5*s.OverheadFactor) > 1e-12 {
		t.Errorf("duty = %g", d)
	}
	if s.DutyCycle(1e6, 0) != 0 {
		t.Error("zero window should give 0")
	}
}

func TestAverageCurrent(t *testing.T) {
	s := DefaultSTM32L151()
	// Table I figures: 50% duty -> 5.26 mA.
	if got := s.AverageCurrentMA(0.5); math.Abs(got-5.26) > 1e-9 {
		t.Errorf("avg current = %g, want 5.26", got)
	}
	if got := s.AverageCurrentMA(-1); got != s.StandbyCurrentMA {
		t.Errorf("negative duty should clamp: %g", got)
	}
	if got := s.AverageCurrentMA(2); got != s.ActiveCurrentMA {
		t.Errorf("duty > 1 should clamp: %g", got)
	}
}

func TestFitsRAM(t *testing.T) {
	s := DefaultSTM32L151()
	if !s.FitsRAM(48 * 1024) {
		t.Error("exact fit rejected")
	}
	if s.FitsRAM(48*1024 + 1) {
		t.Error("overflow accepted")
	}
}

func TestReportContainsStagesAndDuty(t *testing.T) {
	c := NewCounter()
	c.Add("ecg-filter", OpFloatMul, 1000)
	c.Add("qrs", OpFloatCmp, 100)
	rep := c.Report(CortexM3SoftFloat(), 32e6, 1)
	for _, want := range []string{"ecg-filter", "qrs", "total", "duty"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestOpString(t *testing.T) {
	if OpFloatAdd.String() != "fadd" || OpBranch.String() != "branch" {
		t.Error("op names")
	}
	if Op(99).String() != "op?" {
		t.Error("unknown op name")
	}
}
