package power

// Discharge tracks the battery state of charge over a simulated session,
// so the PMU policy can be exercised against realistic multi-day
// timelines (the paper's four-days-per-charge claim).
type Discharge struct {
	Battery      Battery
	RemainingMAh float64
}

// NewDischarge returns a fully charged battery state.
func NewDischarge(b Battery) *Discharge {
	return &Discharge{Battery: b, RemainingMAh: b.CapacityMAh}
}

// Step drains the battery according to the budget for the given number of
// hours and returns the charge actually consumed (clamped at empty).
func (d *Discharge) Step(b *Budget, hours float64) float64 {
	if hours <= 0 || d.RemainingMAh <= 0 {
		return 0
	}
	drain := b.EnergyMAh(hours)
	if drain > d.RemainingMAh {
		drain = d.RemainingMAh
	}
	d.RemainingMAh -= drain
	return drain
}

// Percent returns the state of charge in [0, 100].
func (d *Discharge) Percent() float64 {
	if d.Battery.CapacityMAh <= 0 {
		return 0
	}
	return d.RemainingMAh / d.Battery.CapacityMAh * 100
}

// Empty reports whether the battery is exhausted.
func (d *Discharge) Empty() bool { return d.RemainingMAh <= 1e-9 }

// HoursLeft estimates the remaining runtime at the given budget.
func (d *Discharge) HoursLeft(b *Budget) float64 {
	avg := b.AverageCurrentMA()
	if avg <= 0 {
		return 0
	}
	return d.RemainingMAh / avg
}
