// Package power reproduces the paper's power budget: the per-component
// current consumption of Table I and the battery-life computation of
// Sections V-VI (106 hours on a 710 mAh battery with the MCU at 50% duty
// cycle and the radio transmitting 1% of the time).
package power

import (
	"errors"
	"fmt"
	"strings"
)

// Component is one row of Table I: a part with an active and an
// idle/standby current.
type Component struct {
	Name      string
	ActiveMA  float64 // current while active (mA)
	StandbyMA float64 // current while idle (mA); 0 if the part is off
}

// Average returns the average current at the given active-duty fraction.
func (c Component) Average(duty float64) float64 {
	if duty < 0 {
		duty = 0
	}
	if duty > 1 {
		duty = 1
	}
	return duty*c.ActiveMA + (1-duty)*c.StandbyMA
}

// Canonical component names of the device.
const (
	ECGChip = "ecg-chip"
	ICGChip = "icg-chip"
	MCU     = "stm32l151"
	Radio   = "radio"
	IMU     = "gyro+accel"
)

// TableI returns the component catalogue with the paper's Table I
// currents (mA).
func TableI() []Component {
	return []Component{
		{Name: ECGChip, ActiveMA: 0.400, StandbyMA: 0},
		{Name: ICGChip, ActiveMA: 0.900, StandbyMA: 0},
		{Name: MCU, ActiveMA: 10.500, StandbyMA: 0.020},
		{Name: Radio, ActiveMA: 11.000, StandbyMA: 0.002},
		{Name: IMU, ActiveMA: 3.800, StandbyMA: 0},
	}
}

// Budget is a duty-cycle assignment over the component catalogue.
type Budget struct {
	Components []Component
	Duty       map[string]float64 // active fraction per component name
}

// NewBudget returns a budget over Table I with all duties zero.
func NewBudget() *Budget {
	return &Budget{Components: TableI(), Duty: make(map[string]float64)}
}

// Set assigns the duty fraction of a component and returns the budget for
// chaining. Unknown names are reported by Validate.
func (b *Budget) Set(name string, duty float64) *Budget {
	b.Duty[name] = duty
	return b
}

// ErrUnknownComponent reports a duty assignment without a catalogue entry.
var ErrUnknownComponent = errors.New("power: unknown component in duty map")

// Validate checks that every duty key names a known component and that
// all duties are in [0, 1].
func (b *Budget) Validate() error {
	known := make(map[string]bool, len(b.Components))
	for _, c := range b.Components {
		known[c.Name] = true
	}
	for name, d := range b.Duty {
		if !known[name] {
			return fmt.Errorf("%w: %q", ErrUnknownComponent, name)
		}
		if d < 0 || d > 1 {
			return fmt.Errorf("power: duty %g for %q outside [0,1]", d, name)
		}
	}
	return nil
}

// AverageCurrentMA returns the total average current of the budget.
// Components without an assigned duty are idle (standby current).
func (b *Budget) AverageCurrentMA() float64 {
	total := 0.0
	for _, c := range b.Components {
		total += c.Average(b.Duty[c.Name])
	}
	return total
}

// Battery is an ideal battery of the given capacity.
type Battery struct {
	CapacityMAh float64
}

// DeviceBattery returns the paper's 710 mAh battery.
func DeviceBattery() Battery { return Battery{CapacityMAh: 710} }

// LifetimeHours returns the runtime at the given average current.
func (bat Battery) LifetimeHours(avgMA float64) float64 {
	if avgMA <= 0 {
		return 0
	}
	return bat.CapacityMAh / avgMA
}

// PaperScenario returns the budget of the paper's battery-life claim:
// continuous monitoring with ECG and ICG chips always on, the MCU active
// 50% of the time, the radio transmitting 1% of the time, and the
// IMU off (Section VI).
func PaperScenario() *Budget {
	return NewBudget().
		Set(ECGChip, 1).
		Set(ICGChip, 1).
		Set(MCU, 0.50).
		Set(Radio, 0.01)
}

// Report renders the component table with duties and average currents.
func (b *Budget) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %9s %10s %6s %10s\n", "component", "active mA", "standby mA", "duty", "avg mA")
	for _, c := range b.Components {
		d := b.Duty[c.Name]
		fmt.Fprintf(&sb, "%-12s %9.3f %10.3f %5.1f%% %10.4f\n",
			c.Name, c.ActiveMA, c.StandbyMA, d*100, c.Average(d))
	}
	fmt.Fprintf(&sb, "%-12s %37s %10.4f\n", "total", "", b.AverageCurrentMA())
	return sb.String()
}

// EnergyMAh returns the charge consumed over the given number of hours.
func (b *Budget) EnergyMAh(hours float64) float64 {
	return b.AverageCurrentMA() * hours
}
