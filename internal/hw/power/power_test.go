package power

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTableIMatchesPaper(t *testing.T) {
	want := map[string][2]float64{
		ECGChip: {0.400, 0},
		ICGChip: {0.900, 0},
		MCU:     {10.500, 0.020},
		Radio:   {11.000, 0.002},
		IMU:     {3.800, 0},
	}
	comps := TableI()
	if len(comps) != len(want) {
		t.Fatalf("components = %d", len(comps))
	}
	for _, c := range comps {
		w, ok := want[c.Name]
		if !ok {
			t.Errorf("unexpected component %q", c.Name)
			continue
		}
		if c.ActiveMA != w[0] || c.StandbyMA != w[1] {
			t.Errorf("%s: %g/%g, want %g/%g", c.Name, c.ActiveMA, c.StandbyMA, w[0], w[1])
		}
	}
}

func TestComponentAverage(t *testing.T) {
	c := Component{Name: "x", ActiveMA: 10, StandbyMA: 1}
	if got := c.Average(0.5); math.Abs(got-5.5) > 1e-12 {
		t.Errorf("average = %g", got)
	}
	if got := c.Average(-1); got != 1 {
		t.Errorf("negative duty: %g", got)
	}
	if got := c.Average(2); got != 10 {
		t.Errorf("duty>1: %g", got)
	}
}

func TestPaperScenarioReproduces106Hours(t *testing.T) {
	// The headline claim of Sections V-VI: 710 mAh, MCU 50%, radio 1%,
	// ECG+ICG on, IMU off -> 106 hours.
	b := PaperScenario()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	avg := b.AverageCurrentMA()
	// 0.4 + 0.9 + (0.5*10.5+0.5*0.02) + (0.01*11+0.99*0.002) = 6.67198
	if math.Abs(avg-6.67198) > 1e-9 {
		t.Errorf("average current = %g mA, want 6.67198", avg)
	}
	hours := DeviceBattery().LifetimeHours(avg)
	if hours < 106 || hours > 107 {
		t.Errorf("battery life = %g h, want ~106", hours)
	}
}

func TestRadioDutyVariant(t *testing.T) {
	// With the 0.1% radio duty quoted in Section V the lifetime rises
	// slightly (~108 h); the budget must reflect it.
	b := PaperScenario().Set(Radio, 0.001)
	hours := DeviceBattery().LifetimeHours(b.AverageCurrentMA())
	if hours < 107.5 || hours > 109 {
		t.Errorf("battery life at 0.1%% radio = %g h, want ~108", hours)
	}
}

func TestIMUCostsBatteryLife(t *testing.T) {
	with := PaperScenario().Set(IMU, 1)
	without := PaperScenario()
	hw := DeviceBattery().LifetimeHours(with.AverageCurrentMA())
	ho := DeviceBattery().LifetimeHours(without.AverageCurrentMA())
	if hw >= ho {
		t.Error("IMU on should reduce battery life")
	}
	if hw > 70 {
		t.Errorf("IMU on: %g h, expected well below 70", hw)
	}
}

func TestValidateRejectsUnknownAndOutOfRange(t *testing.T) {
	b := NewBudget().Set("warp-core", 0.5)
	if err := b.Validate(); err == nil {
		t.Error("unknown component accepted")
	}
	b2 := NewBudget().Set(MCU, 1.5)
	if err := b2.Validate(); err == nil {
		t.Error("duty > 1 accepted")
	}
	b3 := NewBudget().Set(MCU, -0.1)
	if err := b3.Validate(); err == nil {
		t.Error("duty < 0 accepted")
	}
}

func TestLifetimeMonotoneInDutyProperty(t *testing.T) {
	// More MCU duty can never extend battery life.
	f := func(d1, d2 float64) bool {
		d1 = math.Abs(math.Mod(d1, 1))
		d2 = math.Abs(math.Mod(d2, 1))
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		b1 := PaperScenario().Set(MCU, d1)
		b2 := PaperScenario().Set(MCU, d2)
		l1 := DeviceBattery().LifetimeHours(b1.AverageCurrentMA())
		l2 := DeviceBattery().LifetimeHours(b2.AverageCurrentMA())
		return l1 >= l2-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLifetimeEdgeCases(t *testing.T) {
	if DeviceBattery().LifetimeHours(0) != 0 {
		t.Error("zero current should return 0 (undefined lifetime)")
	}
	if DeviceBattery().LifetimeHours(-5) != 0 {
		t.Error("negative current should return 0")
	}
}

func TestEnergyMAh(t *testing.T) {
	b := PaperScenario()
	e := b.EnergyMAh(10)
	if math.Abs(e-66.7198) > 1e-6 {
		t.Errorf("energy = %g", e)
	}
}

func TestReport(t *testing.T) {
	rep := PaperScenario().Report()
	for _, want := range []string{ECGChip, ICGChip, MCU, Radio, IMU, "total"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestDischargeBasics(t *testing.T) {
	d := NewDischarge(DeviceBattery())
	if d.Percent() != 100 {
		t.Errorf("fresh battery = %g%%", d.Percent())
	}
	b := PaperScenario()
	drained := d.Step(b, 10)
	if math.Abs(drained-66.7198) > 1e-3 {
		t.Errorf("drained = %g mAh", drained)
	}
	if d.Empty() {
		t.Error("not empty yet")
	}
	// Run it flat.
	for i := 0; i < 200 && !d.Empty(); i++ {
		d.Step(b, 1)
	}
	if !d.Empty() {
		t.Error("battery should be empty")
	}
	if d.Percent() > 1e-9 {
		t.Errorf("empty percent = %g", d.Percent())
	}
	if d.Step(b, 1) != 0 {
		t.Error("draining an empty battery should return 0")
	}
}

func TestDischargeHoursLeft(t *testing.T) {
	d := NewDischarge(DeviceBattery())
	b := PaperScenario()
	h := d.HoursLeft(b)
	if math.Abs(h-106.4) > 0.5 {
		t.Errorf("hours left = %g", h)
	}
	d.Step(b, 53.2) // half the lifetime
	if math.Abs(d.HoursLeft(b)-53.2) > 0.5 {
		t.Errorf("hours left after half = %g", d.HoursLeft(b))
	}
	zero := NewDischarge(Battery{})
	if zero.Percent() != 0 {
		t.Error("zero-capacity percent")
	}
}
