package radio

import "math"

// BLE connection-event scheduling. The nRF8001 transmits only at
// connection events spaced by the negotiated connection interval
// (7.5 ms-4 s); a beat record produced between events waits for the next
// one. The scheduler quantifies the resulting notification latency and
// the number of events actually used — the mechanism behind choosing a
// battery-friendly interval without losing the beat-to-beat property.

// ConnConfig is the negotiated link timing.
type ConnConfig struct {
	IntervalS float64 // connection interval (s); BLE allows 0.0075-4.0
	// SlaveLatency is the number of events the peripheral may skip when
	// it has nothing to send.
	SlaveLatency int
}

// DefaultConn returns a typical low-power setting (100 ms interval).
func DefaultConn() ConnConfig {
	return ConnConfig{IntervalS: 0.1, SlaveLatency: 4}
}

// Valid reports whether the interval is inside the BLE range.
func (c ConnConfig) Valid() bool {
	return c.IntervalS >= 0.0075 && c.IntervalS <= 4.0 && c.SlaveLatency >= 0
}

// ScheduleResult summarizes delivering a series of timestamped records
// over connection events.
type ScheduleResult struct {
	Records      int
	EventsUsed   int     // events that carried at least one record
	EventsTotal  int     // events elapsed over the session
	MeanLatency  float64 // mean wait from record creation to its event (s)
	WorstLatency float64 // worst wait (s)
}

// Schedule simulates delivery of records created at the given times (s,
// sorted ascending) over the connection-event grid. Multiple records
// share one event (they fit easily: BLE 4 allows several 20-byte
// notifications per event).
func Schedule(times []float64, cfg ConnConfig) ScheduleResult {
	res := ScheduleResult{Records: len(times)}
	if len(times) == 0 || !cfg.Valid() {
		return res
	}
	var sumLat float64
	lastEvent := -1
	for _, t := range times {
		// Next event at or after t.
		eventIdx := int(math.Ceil(t / cfg.IntervalS))
		eventTime := float64(eventIdx) * cfg.IntervalS
		lat := eventTime - t
		sumLat += lat
		if lat > res.WorstLatency {
			res.WorstLatency = lat
		}
		if eventIdx != lastEvent {
			res.EventsUsed++
			lastEvent = eventIdx
		}
	}
	res.MeanLatency = sumLat / float64(len(times))
	res.EventsTotal = int(math.Ceil(times[len(times)-1]/cfg.IntervalS)) + 1
	return res
}

// EventDuty returns the radio duty contributed by empty connection events
// (keep-alive) at the given interval: each event costs roughly eventAirS
// seconds of radio activity even with nothing to send.
func EventDuty(cfg ConnConfig, eventAirS float64) float64 {
	if !cfg.Valid() || eventAirS <= 0 {
		return 0
	}
	effInterval := cfg.IntervalS * float64(cfg.SlaveLatency+1)
	return eventAirS / effInterval
}
