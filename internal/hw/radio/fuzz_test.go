package radio

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzRadioDecode pins the codec laws on arbitrary bytes: Decode never
// panics; a successful decode consumes a frame that re-encodes to
// exactly the consumed prefix (decode∘encode bijection); every error
// except ErrShortFrame returns a positive in-range skip (the resync
// law); and a skip-consumed scan over the input always terminates.
func FuzzRadioDecode(f *testing.F) {
	valid, _ := (&Frame{Type: TypeBeat, Seq: 3, Payload: []byte{1, 2, 3}}).Encode()
	f.Add(valid)
	corrupt := append([]byte(nil), valid...)
	corrupt[5] ^= 1
	f.Add(corrupt)
	f.Add([]byte{syncByte, 0, 0, 255, 0, 0})
	f.Add([]byte{0, 1, 2, syncByte})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := Decode(data)
		if err == nil {
			if n < frameOverhead || n > len(data) {
				t.Fatalf("valid frame consumed %d of %d", n, len(data))
			}
			re, err := fr.Encode()
			if err != nil {
				t.Fatalf("re-encode of decoded frame: %v", err)
			}
			if !bytes.Equal(re, data[:n]) {
				t.Fatalf("decode∘encode not a bijection: % x vs % x", re, data[:n])
			}
		} else {
			if errors.Is(err, ErrShortFrame) {
				if n != 0 {
					t.Fatalf("short frame consumed %d", n)
				}
			} else if n <= 0 || n > len(data) {
				t.Fatalf("error %v consumed %d of %d, want positive skip", err, n, len(data))
			}
		}
		// Termination: a resync scan makes progress on every step.
		steps := 0
		for off := 0; off < len(data); {
			_, n, err := Decode(data[off:])
			if err != nil && n == 0 {
				break // short tail: needs more bytes that will never come
			}
			off += n
			if steps++; steps > len(data)+1 {
				t.Fatal("resync scan did not terminate")
			}
		}
	})
}

// FuzzRadioScanner drives the Scanner over an arbitrary interleaving of
// garbage and valid frames derived from the fuzz input: the scanner
// must never panic, must terminate, and must recover EVERY injected
// frame in order (the garbage is sanitized to contain no sync byte, so
// the injected frames are the only candidates).
func FuzzRadioScanner(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{0xFF, 0x00})
	f.Add([]byte{}, []byte{0xA5, 0xA5, 0xA5})
	f.Add(bytes.Repeat([]byte{0x42}, 64), bytes.Repeat([]byte{0x13}, 9))
	f.Fuzz(func(t *testing.T, payloads, garbage []byte) {
		// Raw pass: arbitrary bytes, tolerant loop, must terminate.
		raw := append(append([]byte(nil), garbage...), payloads...)
		s := NewScanner(bytes.NewReader(raw))
		for steps := 0; ; steps++ {
			_, err := s.Next()
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break
			}
			if steps > len(raw)+8 {
				t.Fatal("raw scan did not terminate")
			}
		}

		// Structured pass: frames carved from payloads, separated by
		// sync-free garbage runs.
		clean := append([]byte(nil), garbage...)
		for i, b := range clean {
			if b == syncByte {
				clean[i] = 0
			}
		}
		var stream []byte
		var want []byte // expected Seq sequence
		seq := byte(0)
		for off := 0; off < len(payloads); {
			plen := int(payloads[off]) % (MaxPayload + 1)
			off++
			if off+plen > len(payloads) {
				plen = len(payloads) - off
			}
			fr := &Frame{Type: TypeBeat, Seq: seq, Payload: payloads[off : off+plen]}
			off += plen
			enc, err := fr.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if len(clean) > 0 {
				stream = append(stream, clean[:1+int(seq)%len(clean)]...)
			}
			stream = append(stream, enc...)
			want = append(want, seq)
			seq++
		}
		stream = append(stream, clean...)

		s = NewScanner(bytes.NewReader(stream))
		var got []byte
		for {
			fr, err := s.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("structured stream must scan clean: %v", err)
			}
			got = append(got, fr.Seq)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("recovered seqs %v, want %v", got, want)
		}
	})
}
