// Package radio models the device's Bluetooth Low Energy link (nRF8001,
// Section III-A). The device does not stream raw waveforms: it processes
// signals locally and transmits only the per-beat results (Z0, LVET, PEP,
// HR), which is why the radio duty cycle stays in the 0.1-1% range used by
// the paper's battery-life computation.
package radio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
)

// BLE ATT payload limit used for framing (nRF8001-era 20-byte payloads).
const MaxPayload = 20

// Frame types.
const (
	TypeBeat   = 0x01 // one BeatRecord
	TypeStatus = 0x02 // device status (battery, duty cycle)
)

// Frame is one radio packet.
type Frame struct {
	Type    byte
	Seq     byte
	Payload []byte
}

// Codec errors.
var (
	ErrPayloadTooLarge = errors.New("radio: payload exceeds 20 bytes")
	ErrBadSync         = errors.New("radio: bad sync byte")
	ErrBadCRC          = errors.New("radio: CRC mismatch")
	ErrShortFrame      = errors.New("radio: truncated frame")
)

const syncByte = 0xA5

// crc16 computes CRC-16/CCITT-FALSE over data.
func crc16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// Encode serializes a frame: sync, type, seq, len, payload, crc16.
func (f *Frame) Encode() ([]byte, error) {
	if len(f.Payload) > MaxPayload {
		return nil, ErrPayloadTooLarge
	}
	buf := make([]byte, 0, 6+len(f.Payload))
	buf = append(buf, syncByte, f.Type, f.Seq, byte(len(f.Payload)))
	buf = append(buf, f.Payload...)
	crc := crc16(buf[1:]) // CRC over everything after the sync byte
	buf = binary.BigEndian.AppendUint16(buf, crc)
	return buf, nil
}

// Decode parses one frame from buf and returns it together with the
// number of bytes consumed.
func Decode(buf []byte) (*Frame, int, error) {
	if len(buf) < 6 {
		return nil, 0, ErrShortFrame
	}
	if buf[0] != syncByte {
		return nil, 0, ErrBadSync
	}
	plen := int(buf[3])
	total := 6 + plen
	if plen > MaxPayload {
		return nil, 0, ErrPayloadTooLarge
	}
	if len(buf) < total {
		return nil, 0, ErrShortFrame
	}
	want := binary.BigEndian.Uint16(buf[total-2 : total])
	if crc16(buf[1:total-2]) != want {
		return nil, 0, ErrBadCRC
	}
	f := &Frame{Type: buf[1], Seq: buf[2], Payload: append([]byte(nil), buf[4:4+plen]...)}
	return f, total, nil
}

// WriteFrame encodes and writes a frame to w.
func WriteFrame(w io.Writer, f *Frame) error {
	buf, err := f.Encode()
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one frame from r, resynchronizing on the sync byte.
func ReadFrame(r io.Reader) (*Frame, error) {
	one := make([]byte, 1)
	// Hunt for sync.
	for {
		if _, err := io.ReadFull(r, one); err != nil {
			return nil, err
		}
		if one[0] == syncByte {
			break
		}
	}
	head := make([]byte, 3)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, err
	}
	plen := int(head[2])
	if plen > MaxPayload {
		return nil, ErrPayloadTooLarge
	}
	rest := make([]byte, plen+2)
	if _, err := io.ReadFull(r, rest); err != nil {
		return nil, err
	}
	buf := append([]byte{syncByte}, head...)
	buf = append(buf, rest...)
	f, _, err := Decode(buf)
	return f, err
}

// BeatRecord is the per-beat result transmitted to the physician's side:
// exactly the parameter set listed in Section V (Z0, LVET, PEP, HR).
type BeatRecord struct {
	TimestampMs uint32  // time of the R peak since session start
	Z0          float64 // base impedance (Ohm)
	LVET        float64 // left ventricular ejection time (s)
	PEP         float64 // pre-ejection period (s)
	HR          float64 // heart rate (bpm)
}

// beatPayloadLen is the fixed encoded size of a BeatRecord.
const beatPayloadLen = 14

// Marshal encodes the record into a fixed 14-byte payload with
// fixed-point fields: Z0 in milliohm (uint32), LVET/PEP in 0.1 ms
// (uint16), HR in 0.1 bpm (uint16).
func (b *BeatRecord) Marshal() []byte {
	buf := make([]byte, beatPayloadLen)
	binary.BigEndian.PutUint32(buf[0:4], b.TimestampMs)
	binary.BigEndian.PutUint32(buf[4:8], uint32(clampNonNeg(b.Z0*1000)))
	binary.BigEndian.PutUint16(buf[8:10], uint16(clamp16(b.LVET*1e4)))
	binary.BigEndian.PutUint16(buf[10:12], uint16(clamp16(b.PEP*1e4)))
	binary.BigEndian.PutUint16(buf[12:14], uint16(clamp16(b.HR*10)))
	return buf
}

// UnmarshalBeat decodes a payload produced by Marshal.
func UnmarshalBeat(buf []byte) (*BeatRecord, error) {
	if len(buf) != beatPayloadLen {
		return nil, fmt.Errorf("radio: beat payload length %d, want %d", len(buf), beatPayloadLen)
	}
	return &BeatRecord{
		TimestampMs: binary.BigEndian.Uint32(buf[0:4]),
		Z0:          float64(binary.BigEndian.Uint32(buf[4:8])) / 1000,
		LVET:        float64(binary.BigEndian.Uint16(buf[8:10])) / 1e4,
		PEP:         float64(binary.BigEndian.Uint16(buf[10:12])) / 1e4,
		HR:          float64(binary.BigEndian.Uint16(buf[12:14])) / 10,
	}, nil
}

func clampNonNeg(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 4294967295 {
		return 4294967295
	}
	return v
}

func clamp16(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 65535 {
		return 65535
	}
	return v
}

// LinkConfig describes the simulated BLE link.
type LinkConfig struct {
	LossProb   float64 // per-transmission loss probability
	MaxRetries int     // retransmissions before giving up
	BitRate    float64 // air bit rate (1 Mbps for BLE 4)
	Overhead   int     // per-frame air overhead in bytes (preamble, headers)
}

// DefaultLink returns an nRF8001-like link.
func DefaultLink() LinkConfig {
	return LinkConfig{LossProb: 0.01, MaxRetries: 3, BitRate: 1e6, Overhead: 14}
}

// Link simulates transmissions and accounts airtime.
type Link struct {
	cfg LinkConfig
	rng *rand.Rand

	Sent      int
	Delivered int
	Dropped   int
	Retries   int
	AirtimeS  float64
}

// NewLink returns a link simulator with a deterministic seed.
func NewLink(cfg LinkConfig, seed int64) *Link {
	return &Link{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// airTime returns the on-air duration of one encoded frame.
func (l *Link) airTime(frameBytes int) float64 {
	if l.cfg.BitRate <= 0 {
		return 0
	}
	return float64(frameBytes+l.cfg.Overhead) * 8 / l.cfg.BitRate
}

// Send attempts delivery of a frame with retransmission. It returns
// whether the frame was delivered.
func (l *Link) Send(f *Frame) bool {
	buf, err := f.Encode()
	if err != nil {
		return false
	}
	l.Sent++
	attempts := 1 + l.cfg.MaxRetries
	for a := 0; a < attempts; a++ {
		l.AirtimeS += l.airTime(len(buf))
		if l.rng.Float64() >= l.cfg.LossProb {
			l.Delivered++
			if a > 0 {
				l.Retries += a
			}
			return true
		}
	}
	l.Dropped++
	l.Retries += l.cfg.MaxRetries
	return false
}

// DutyCycle returns the TX duty fraction over a session of the given
// duration.
func (l *Link) DutyCycle(sessionSeconds float64) float64 {
	if sessionSeconds <= 0 {
		return 0
	}
	return l.AirtimeS / sessionSeconds
}

// BeatStreamDuty computes the analytic TX duty cycle for beats arriving at
// hrBPM with the given link parameters: the paper's claim that sending
// only {Z0, LVET, PEP, HR} keeps the radio near 0.1-1% duty.
func BeatStreamDuty(hrBPM float64, cfg LinkConfig) float64 {
	if cfg.BitRate <= 0 {
		return 0
	}
	frameBytes := 6 + beatPayloadLen + cfg.Overhead
	perBeat := float64(frameBytes) * 8 / cfg.BitRate
	beatsPerSecond := hrBPM / 60
	return perBeat * beatsPerSecond
}
