// Package radio models the device's Bluetooth Low Energy link (nRF8001,
// Section III-A). The device does not stream raw waveforms: it processes
// signals locally and transmits only the per-beat results (Z0, LVET, PEP,
// HR), which is why the radio duty cycle stays in the 0.1-1% range used by
// the paper's battery-life computation.
package radio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
)

// BLE ATT payload limit used for framing (nRF8001-era 20-byte payloads).
const MaxPayload = 20

// MaxPayloadExt is the framing format's own payload ceiling: the length
// field is one byte. BLE links enforce MaxPayload; wired transports
// reusing the same framing (the network ingest gateway) may run the
// full range via AppendTo/NewScannerLimit.
const MaxPayloadExt = 255

// frameOverhead is the fixed per-frame byte cost: sync, type, seq,
// length, CRC16.
const frameOverhead = 6

// Frame types.
const (
	TypeBeat   = 0x01 // one BeatRecord
	TypeStatus = 0x02 // device status (battery, duty cycle)
)

// Frame is one radio packet.
type Frame struct {
	Type    byte
	Seq     byte
	Payload []byte
}

// Codec errors.
var (
	ErrPayloadTooLarge = errors.New("radio: payload exceeds 20 bytes")
	ErrBadSync         = errors.New("radio: bad sync byte")
	ErrBadCRC          = errors.New("radio: CRC mismatch")
	ErrShortFrame      = errors.New("radio: truncated frame")
)

const syncByte = 0xA5

// crcTable is the byte-at-a-time table for CRC-16/CCITT-FALSE
// (polynomial 0x1021). The bitwise loop was 93% of the gateway's frame
// encode cost — every byte CRCs on encode and again on scan, so the
// framing checksum is the hottest loop on the network path.
var crcTable = func() (t [256]uint16) {
	for i := range t {
		crc := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
		t[i] = crc
	}
	return
}()

// crc16 computes CRC-16/CCITT-FALSE over data.
func crc16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc = crc<<8 ^ crcTable[byte(crc>>8)^b]
	}
	return crc
}

// Encode serializes a frame: sync, type, seq, len, payload, crc16. The
// BLE payload limit applies; wired transports append with AppendTo.
func (f *Frame) Encode() ([]byte, error) {
	return f.appendTo(make([]byte, 0, frameOverhead+len(f.Payload)), MaxPayload)
}

// AppendTo appends the frame's encoding to dst and returns the extended
// slice — the allocation-free encode path. It accepts payloads up to
// MaxPayloadExt (the framing format's own ceiling), not just the BLE
// ATT limit: the network gateway runs the same framing over TCP with
// full-size payloads.
func (f *Frame) AppendTo(dst []byte) ([]byte, error) {
	return f.appendTo(dst, MaxPayloadExt)
}

func (f *Frame) appendTo(dst []byte, limit int) ([]byte, error) {
	if len(f.Payload) > limit {
		return dst, ErrPayloadTooLarge
	}
	start := len(dst)
	dst = append(dst, syncByte, f.Type, f.Seq, byte(len(f.Payload)))
	dst = append(dst, f.Payload...)
	crc := crc16(dst[start+1:]) // CRC over everything after the sync byte
	dst = binary.BigEndian.AppendUint16(dst, crc)
	return dst, nil
}

// Decode parses one frame from buf and returns it together with the
// number of bytes consumed.
//
// Error contract (the resync law): consumed is 0 only for ErrShortFrame
// — a plausible frame head that needs more bytes. Every other error
// returns a POSITIVE skip: the distance from buf[0] to the next
// candidate sync byte inside the span the decoder examined (or past the
// span when it holds none), so a skip-consumed resync loop always makes
// progress and never walks past an embedded valid frame. The old
// contract returned 0 for ErrBadCRC/ErrPayloadTooLarge too, which
// looped such scanners forever.
func Decode(buf []byte) (*Frame, int, error) {
	f, n, err := decodeInto(buf, MaxPayload)
	if err != nil {
		return nil, n, err
	}
	f.Payload = append([]byte(nil), f.Payload...)
	return &f, n, nil
}

// decodeInto is Decode without the payload copy: the returned frame's
// payload aliases buf and is valid only while buf is. limit is the
// payload ceiling in force (MaxPayload on BLE, up to MaxPayloadExt on
// wired transports).
func decodeInto(buf []byte, limit int) (Frame, int, error) {
	if len(buf) == 0 {
		return Frame{}, 0, ErrShortFrame
	}
	if buf[0] != syncByte {
		return Frame{}, resyncSkip(buf, len(buf)), ErrBadSync
	}
	if len(buf) < frameOverhead {
		return Frame{}, 0, ErrShortFrame
	}
	plen := int(buf[3])
	if plen > limit {
		// Only the 4 header bytes were examined; skip within them.
		return Frame{}, resyncSkip(buf, 4), ErrPayloadTooLarge
	}
	total := frameOverhead + plen
	if len(buf) < total {
		return Frame{}, 0, ErrShortFrame
	}
	want := binary.BigEndian.Uint16(buf[total-2 : total])
	if crc16(buf[1:total-2]) != want {
		return Frame{}, resyncSkip(buf, total), ErrBadCRC
	}
	return Frame{Type: buf[1], Seq: buf[2], Payload: buf[4 : 4+plen : 4+plen]}, total, nil
}

// resyncSkip returns how many bytes a resync scanner should skip after
// a failed decode at buf[0]: the distance to the next candidate sync
// byte inside the examined span buf[1:span], or the whole span when it
// holds none. Always at least 1 — errors must consume.
func resyncSkip(buf []byte, span int) int {
	if span > len(buf) {
		span = len(buf)
	}
	for i := 1; i < span; i++ {
		if buf[i] == syncByte {
			return i
		}
	}
	if span < 1 {
		return 1
	}
	return span
}

// WriteFrame encodes and writes a frame to w.
func WriteFrame(w io.Writer, f *Frame) error {
	buf, err := f.Encode()
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads the next valid frame from r, resynchronizing on the
// sync byte. It is a thin wrapper over Scanner in exact-read mode: a
// corrupt frame's bytes are rescanned for an embedded sync instead of
// being discarded (the old implementation threw them away, permanently
// desyncing the stream), and only io errors are surfaced — corrupt
// candidates are skipped. Streaming consumers should hold a Scanner
// instead: it keeps one persistent buffer across calls (0 allocs/frame
// steady-state) where this per-call wrapper cannot.
func ReadFrame(r io.Reader) (*Frame, error) {
	s := newScanner(r, MaxPayload, true)
	for {
		f, err := s.Next()
		if err == nil {
			return &Frame{Type: f.Type, Seq: f.Seq, Payload: append([]byte(nil), f.Payload...)}, nil
		}
		if errors.Is(err, ErrBadCRC) || errors.Is(err, ErrPayloadTooLarge) {
			continue // resynchronize past the corrupt candidate
		}
		return nil, err
	}
}

// BeatRecord is the per-beat result transmitted to the physician's side:
// exactly the parameter set listed in Section V (Z0, LVET, PEP, HR).
type BeatRecord struct {
	TimestampMs uint32  // time of the R peak since session start
	Z0          float64 // base impedance (Ohm)
	LVET        float64 // left ventricular ejection time (s)
	PEP         float64 // pre-ejection period (s)
	HR          float64 // heart rate (bpm)
}

// beatPayloadLen is the fixed encoded size of a BeatRecord.
const beatPayloadLen = 14

// Marshal encodes the record into a fixed 14-byte payload with
// fixed-point fields: Z0 in milliohm (uint32), LVET/PEP in 0.1 ms
// (uint16), HR in 0.1 bpm (uint16).
func (b *BeatRecord) Marshal() []byte {
	buf := make([]byte, beatPayloadLen)
	binary.BigEndian.PutUint32(buf[0:4], b.TimestampMs)
	binary.BigEndian.PutUint32(buf[4:8], uint32(clampNonNeg(b.Z0*1000)))
	binary.BigEndian.PutUint16(buf[8:10], uint16(clamp16(b.LVET*1e4)))
	binary.BigEndian.PutUint16(buf[10:12], uint16(clamp16(b.PEP*1e4)))
	binary.BigEndian.PutUint16(buf[12:14], uint16(clamp16(b.HR*10)))
	return buf
}

// UnmarshalBeat decodes a payload produced by Marshal.
func UnmarshalBeat(buf []byte) (*BeatRecord, error) {
	if len(buf) != beatPayloadLen {
		return nil, fmt.Errorf("radio: beat payload length %d, want %d", len(buf), beatPayloadLen)
	}
	return &BeatRecord{
		TimestampMs: binary.BigEndian.Uint32(buf[0:4]),
		Z0:          float64(binary.BigEndian.Uint32(buf[4:8])) / 1000,
		LVET:        float64(binary.BigEndian.Uint16(buf[8:10])) / 1e4,
		PEP:         float64(binary.BigEndian.Uint16(buf[10:12])) / 1e4,
		HR:          float64(binary.BigEndian.Uint16(buf[12:14])) / 10,
	}, nil
}

func clampNonNeg(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 4294967295 {
		return 4294967295
	}
	return v
}

func clamp16(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 65535 {
		return 65535
	}
	return v
}

// LinkConfig describes the simulated BLE link.
type LinkConfig struct {
	LossProb   float64 // per-transmission loss probability
	MaxRetries int     // retransmissions before giving up
	BitRate    float64 // air bit rate (1 Mbps for BLE 4)
	Overhead   int     // per-frame air overhead in bytes (preamble, headers)
}

// DefaultLink returns an nRF8001-like link.
func DefaultLink() LinkConfig {
	return LinkConfig{LossProb: 0.01, MaxRetries: 3, BitRate: 1e6, Overhead: 14}
}

// Link simulates transmissions and accounts airtime.
type Link struct {
	cfg LinkConfig
	rng *rand.Rand

	Sent      int
	Delivered int
	Dropped   int
	Retries   int
	AirtimeS  float64
}

// NewLink returns a link simulator with a deterministic seed.
func NewLink(cfg LinkConfig, seed int64) *Link {
	return &Link{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// airTime returns the on-air duration of one encoded frame.
func (l *Link) airTime(frameBytes int) float64 {
	if l.cfg.BitRate <= 0 {
		return 0
	}
	return float64(frameBytes+l.cfg.Overhead) * 8 / l.cfg.BitRate
}

// Send attempts delivery of a frame with retransmission. It returns
// whether the frame was delivered.
func (l *Link) Send(f *Frame) bool {
	buf, err := f.Encode()
	if err != nil {
		return false
	}
	l.Sent++
	attempts := 1 + l.cfg.MaxRetries
	for a := 0; a < attempts; a++ {
		l.AirtimeS += l.airTime(len(buf))
		if l.rng.Float64() >= l.cfg.LossProb {
			l.Delivered++
			if a > 0 {
				l.Retries += a
			}
			return true
		}
	}
	l.Dropped++
	l.Retries += l.cfg.MaxRetries
	return false
}

// DutyCycle returns the TX duty fraction over a session of the given
// duration.
func (l *Link) DutyCycle(sessionSeconds float64) float64 {
	if sessionSeconds <= 0 {
		return 0
	}
	return l.AirtimeS / sessionSeconds
}

// ExpectedTransmissions returns the mean number of times one frame goes
// on air under the link's loss/retry policy: Link.Send retries up to
// MaxRetries times, stopping at the first success, so the expectation
// is the partial geometric sum Σ p^a over a = 0..MaxRetries.
func ExpectedTransmissions(cfg LinkConfig) float64 {
	p := cfg.LossProb
	attempts := 1 + cfg.MaxRetries
	if attempts < 1 {
		attempts = 1
	}
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		return float64(attempts)
	}
	return (1 - math.Pow(p, float64(attempts))) / (1 - p)
}

// BeatStreamDuty computes the analytic TX duty cycle for beats arriving at
// hrBPM with the given link parameters: the paper's claim that sending
// only {Z0, LVET, PEP, HR} keeps the radio near 0.1-1% duty. Per-beat
// airtime is scaled by the expected transmissions under the link's
// loss/retry policy, so the figure matches Link.Send's airtime
// accounting in expectation — the old formula priced every beat at
// exactly one transmission and understated the duty on lossy links.
func BeatStreamDuty(hrBPM float64, cfg LinkConfig) float64 {
	if cfg.BitRate <= 0 {
		return 0
	}
	frameBytes := frameOverhead + beatPayloadLen + cfg.Overhead
	perBeat := float64(frameBytes) * 8 / cfg.BitRate * ExpectedTransmissions(cfg)
	beatsPerSecond := hrBPM / 60
	return perBeat * beatsPerSecond
}
