package radio

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	f := &Frame{Type: TypeBeat, Seq: 42, Payload: []byte{1, 2, 3, 4}}
	buf, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d, want %d", n, len(buf))
	}
	if got.Type != f.Type || got.Seq != f.Seq || !bytes.Equal(got.Payload, f.Payload) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestFrameRoundTripQuick(t *testing.T) {
	f := func(typ, seq byte, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		fr := &Frame{Type: typ, Seq: seq, Payload: payload}
		buf, err := fr.Encode()
		if err != nil {
			return false
		}
		got, _, err := Decode(buf)
		if err != nil {
			return false
		}
		return got.Type == typ && got.Seq == seq && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEncodeRejectsOversizedPayload(t *testing.T) {
	f := &Frame{Type: TypeBeat, Payload: make([]byte, 21)}
	if _, err := f.Encode(); err != ErrPayloadTooLarge {
		t.Errorf("err = %v", err)
	}
}

func TestDecodeDetectsCorruption(t *testing.T) {
	f := &Frame{Type: TypeBeat, Seq: 1, Payload: []byte{9, 9, 9}}
	buf, _ := f.Encode()
	// Flip one payload bit: CRC must catch it.
	buf[5] ^= 0x01
	if _, _, err := Decode(buf); err != ErrBadCRC {
		t.Errorf("corrupted frame: err = %v, want ErrBadCRC", err)
	}
	// Bad sync byte.
	buf2, _ := f.Encode()
	buf2[0] = 0x00
	if _, _, err := Decode(buf2); err != ErrBadSync {
		t.Errorf("bad sync: %v", err)
	}
	// Truncated.
	buf3, _ := f.Encode()
	if _, _, err := Decode(buf3[:4]); err != ErrShortFrame {
		t.Errorf("short frame: %v", err)
	}
}

func TestCRCDetectsAllSingleBitFlipsProperty(t *testing.T) {
	f := &Frame{Type: TypeBeat, Seq: 7, Payload: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	buf, _ := f.Encode()
	for byteIdx := 1; byteIdx < len(buf); byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			cp := append([]byte(nil), buf...)
			cp[byteIdx] ^= 1 << uint(bit)
			if _, _, err := Decode(cp); err == nil {
				// A flip in the length byte may truncate; everything else
				// must fail CRC.
				t.Errorf("undetected flip at byte %d bit %d", byteIdx, bit)
			}
		}
	}
}

// TestCRC16KnownAnswer pins the checksum to the CRC-16/CCITT-FALSE
// specification. The roundtrip and fuzz tests only prove encode and
// decode agree with EACH OTHER — a wrong-but-self-consistent checksum
// (the classic table-generation bug) would sail through them, so the
// table-driven implementation is checked against the published check
// value and against the definitional bitwise form.
func TestCRC16KnownAnswer(t *testing.T) {
	// The standard check input for every CRC catalogue entry.
	if got := crc16([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("crc16(123456789) = %#04x, want 0x29B1", got)
	}
	if got := crc16(nil); got != 0xFFFF {
		t.Fatalf("crc16(empty) = %#04x, want init value 0xFFFF", got)
	}
	bitwise := func(data []byte) uint16 {
		crc := uint16(0xFFFF)
		for _, b := range data {
			crc ^= uint16(b) << 8
			for i := 0; i < 8; i++ {
				if crc&0x8000 != 0 {
					crc = crc<<1 ^ 0x1021
				} else {
					crc <<= 1
				}
			}
		}
		return crc
	}
	data := make([]byte, 1024)
	x := uint32(1)
	for i := range data {
		x = x*1664525 + 1013904223
		data[i] = byte(x >> 24)
	}
	for _, n := range []int{0, 1, 2, 3, 7, 20, 255, 1024} {
		if got, want := crc16(data[:n]), bitwise(data[:n]); got != want {
			t.Fatalf("len %d: table crc %#04x != bitwise %#04x", n, got, want)
		}
	}
}

func TestStreamReadWrite(t *testing.T) {
	var buf bytes.Buffer
	frames := []*Frame{
		{Type: TypeBeat, Seq: 1, Payload: []byte{1}},
		{Type: TypeStatus, Seq: 2, Payload: []byte{2, 2}},
		{Type: TypeBeat, Seq: 3, Payload: []byte{3, 3, 3}},
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Seq != want.Seq || !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("frame %d mismatch", i)
		}
	}
}

func TestReadFrameResynchronizes(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0x00, 0x13, 0x77}) // garbage before the frame
	f := &Frame{Type: TypeBeat, Seq: 9, Payload: []byte{42}}
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 9 || got.Payload[0] != 42 {
		t.Errorf("resync failed: %+v", got)
	}
}

func TestBeatRecordRoundTrip(t *testing.T) {
	b := &BeatRecord{
		TimestampMs: 123456,
		Z0:          481.25,
		LVET:        0.2952,
		PEP:         0.0861,
		HR:          64.3,
	}
	buf := b.Marshal()
	if len(buf) != beatPayloadLen {
		t.Fatalf("payload len = %d", len(buf))
	}
	got, err := UnmarshalBeat(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TimestampMs != b.TimestampMs {
		t.Errorf("timestamp %d", got.TimestampMs)
	}
	if math.Abs(got.Z0-b.Z0) > 0.001 {
		t.Errorf("Z0 = %g", got.Z0)
	}
	if math.Abs(got.LVET-b.LVET) > 0.0001 {
		t.Errorf("LVET = %g", got.LVET)
	}
	if math.Abs(got.PEP-b.PEP) > 0.0001 {
		t.Errorf("PEP = %g", got.PEP)
	}
	if math.Abs(got.HR-b.HR) > 0.1 {
		t.Errorf("HR = %g", got.HR)
	}
}

func TestBeatRecordQuick(t *testing.T) {
	f := func(ts uint32, z0, lvet, pep, hr float64) bool {
		b := &BeatRecord{
			TimestampMs: ts,
			Z0:          math.Abs(math.Mod(z0, 4000)),
			LVET:        math.Abs(math.Mod(lvet, 0.5)),
			PEP:         math.Abs(math.Mod(pep, 0.3)),
			HR:          math.Abs(math.Mod(hr, 250)),
		}
		got, err := UnmarshalBeat(b.Marshal())
		if err != nil {
			return false
		}
		return math.Abs(got.Z0-b.Z0) <= 0.001 &&
			math.Abs(got.LVET-b.LVET) <= 0.0001 &&
			math.Abs(got.PEP-b.PEP) <= 0.0001 &&
			math.Abs(got.HR-b.HR) <= 0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalBeatRejectsBadLength(t *testing.T) {
	if _, err := UnmarshalBeat(make([]byte, 5)); err == nil {
		t.Error("short payload accepted")
	}
}

func TestLinkDelivery(t *testing.T) {
	cfg := DefaultLink()
	cfg.LossProb = 0
	l := NewLink(cfg, 1)
	f := &Frame{Type: TypeBeat, Payload: (&BeatRecord{}).Marshal()}
	for i := 0; i < 100; i++ {
		if !l.Send(f) {
			t.Fatal("lossless link dropped a frame")
		}
	}
	if l.Delivered != 100 || l.Dropped != 0 {
		t.Errorf("delivered=%d dropped=%d", l.Delivered, l.Dropped)
	}
	if l.AirtimeS <= 0 {
		t.Error("no airtime accounted")
	}
}

func TestLinkRetransmitsOnLoss(t *testing.T) {
	cfg := DefaultLink()
	cfg.LossProb = 0.3
	cfg.MaxRetries = 5
	l := NewLink(cfg, 7)
	f := &Frame{Type: TypeBeat, Payload: []byte{1}}
	n := 2000
	for i := 0; i < n; i++ {
		l.Send(f)
	}
	if l.Retries == 0 {
		t.Error("no retries at 30% loss")
	}
	// With 5 retries at p=0.3, delivery is ~1-0.3^6 ~ 99.93%.
	rate := float64(l.Delivered) / float64(n)
	if rate < 0.995 {
		t.Errorf("delivery rate = %g", rate)
	}
}

func TestLinkDutyCycle(t *testing.T) {
	cfg := DefaultLink()
	cfg.LossProb = 0
	l := NewLink(cfg, 3)
	f := &Frame{Type: TypeBeat, Payload: (&BeatRecord{}).Marshal()}
	// One beat per second for 60 s.
	for i := 0; i < 60; i++ {
		l.Send(f)
	}
	duty := l.DutyCycle(60)
	// ~34 bytes on air per beat at 1 Mbps ~ 0.027% duty: far below the
	// paper's 1% budget.
	if duty <= 0 || duty > 0.01 {
		t.Errorf("duty = %g, want (0, 1%%]", duty)
	}
}

func TestBeatStreamDutyMatchesPaperClaim(t *testing.T) {
	// Sending only {Z0, LVET, PEP, HR} at 60-180 bpm keeps the radio
	// well below 1% duty (Section V: "we use just 0.1% of the duty
	// cycle of the Radio").
	for _, hr := range []float64{60, 90, 180} {
		d := BeatStreamDuty(hr, DefaultLink())
		if d <= 0 || d > 0.001 {
			t.Errorf("HR=%g: duty = %g, want <= 0.1%%", hr, d)
		}
	}
	if BeatStreamDuty(60, LinkConfig{}) != 0 {
		t.Error("zero bitrate should return 0")
	}
}

func TestLinkDeterministic(t *testing.T) {
	cfg := DefaultLink()
	cfg.LossProb = 0.2
	f := &Frame{Type: TypeBeat, Payload: []byte{1, 2}}
	a := NewLink(cfg, 99)
	b := NewLink(cfg, 99)
	for i := 0; i < 500; i++ {
		if a.Send(f) != b.Send(f) {
			t.Fatal("link nondeterministic for equal seeds")
		}
	}
}

func TestConnConfigValid(t *testing.T) {
	if !DefaultConn().Valid() {
		t.Error("default invalid")
	}
	if (ConnConfig{IntervalS: 0.001}).Valid() {
		t.Error("below BLE minimum accepted")
	}
	if (ConnConfig{IntervalS: 5}).Valid() {
		t.Error("above BLE maximum accepted")
	}
	if (ConnConfig{IntervalS: 0.1, SlaveLatency: -1}).Valid() {
		t.Error("negative latency accepted")
	}
}

func TestScheduleLatencyBounds(t *testing.T) {
	cfg := ConnConfig{IntervalS: 0.1}
	// Beats at ~1 Hz for 30 s.
	var times []float64
	for i := 0; i < 30; i++ {
		times = append(times, float64(i)+0.037)
	}
	res := Schedule(times, cfg)
	if res.Records != 30 {
		t.Errorf("records = %d", res.Records)
	}
	// Latency is bounded by one interval.
	if res.WorstLatency > cfg.IntervalS+1e-12 {
		t.Errorf("worst latency %g exceeds the interval", res.WorstLatency)
	}
	if res.MeanLatency <= 0 || res.MeanLatency > cfg.IntervalS {
		t.Errorf("mean latency = %g", res.MeanLatency)
	}
	if res.EventsUsed != 30 {
		t.Errorf("events used = %d", res.EventsUsed)
	}
	if res.EventsTotal < res.EventsUsed {
		t.Error("total events below used events")
	}
}

func TestScheduleSharedEvents(t *testing.T) {
	// Two records inside the same interval share one event.
	cfg := ConnConfig{IntervalS: 1.0}
	res := Schedule([]float64{0.1, 0.2, 1.4}, cfg)
	if res.EventsUsed != 2 {
		t.Errorf("events used = %d, want 2", res.EventsUsed)
	}
}

func TestScheduleDegenerate(t *testing.T) {
	if res := Schedule(nil, DefaultConn()); res.Records != 0 {
		t.Error("empty schedule")
	}
	if res := Schedule([]float64{1}, ConnConfig{IntervalS: 99}); res.EventsUsed != 0 {
		t.Error("invalid config should schedule nothing")
	}
}

func TestEventDuty(t *testing.T) {
	cfg := ConnConfig{IntervalS: 0.1, SlaveLatency: 4}
	// 0.5 ms of air per event, events every 0.5 s with latency 4.
	d := EventDuty(cfg, 0.0005)
	if math.Abs(d-0.001) > 1e-12 {
		t.Errorf("event duty = %g, want 0.001", d)
	}
	if EventDuty(ConnConfig{}, 0.0005) != 0 {
		t.Error("invalid config duty should be 0")
	}
}
