package radio

import (
	"errors"
	"io"
)

// Scanner extracts frames from a byte stream with one persistent
// buffer: no per-frame allocations in steady state, and no byte is ever
// discarded unexamined — a corrupt frame re-enters the sync hunt at the
// next candidate sync byte inside its own span, so an embedded valid
// frame (or the stream that resumes mid-garbage) is recovered instead
// of lost. This is the streaming replacement for the old ReadFrame,
// which allocated three buffers per frame and threw corrupt in-flight
// bytes away, permanently desyncing on a single flipped length byte.
//
// Garbage between frames is skipped silently (counted in Stats);
// ErrBadCRC/ErrPayloadTooLarge are returned once per corrupt candidate
// AFTER the scanner has already advanced past it, so a tolerant caller
// just calls Next again, and a strict one (the network gateway, where a
// reliable transport means corruption is a broken peer) can abort.
type Scanner struct {
	r     io.Reader
	limit int // payload ceiling in force
	buf   []byte
	start int // first unconsumed byte
	end   int // one past the last buffered byte
	frame Frame
	// exact makes every fill read only what the current parse state
	// strictly needs (ReadFrame wrapper: a per-call scanner must not
	// consume reader bytes beyond the frame it returns).
	exact bool

	frames  uint64
	resyncs uint64
	skipped uint64
}

// scannerBlock is the read granularity of a streaming scanner.
const scannerBlock = 4096

// NewScanner returns a scanner over BLE-limit frames (MaxPayload).
func NewScanner(r io.Reader) *Scanner { return newScanner(r, MaxPayload, false) }

// NewScannerLimit returns a scanner accepting payloads up to limit
// (clamped to [0, MaxPayloadExt]) — the gateway runs the framing over
// TCP at the format's full payload range.
func NewScannerLimit(r io.Reader, limit int) *Scanner {
	if limit < 0 {
		limit = 0
	}
	if limit > MaxPayloadExt {
		limit = MaxPayloadExt
	}
	return newScanner(r, limit, false)
}

func newScanner(r io.Reader, limit int, exact bool) *Scanner {
	size := frameOverhead + limit
	if !exact && size < scannerBlock {
		size = scannerBlock
	}
	return &Scanner{r: r, limit: limit, buf: make([]byte, size), exact: exact}
}

// ScanStats is the scanner's running tally.
type ScanStats struct {
	Frames  uint64 // valid frames returned
	Resyncs uint64 // corrupt candidates skipped (CRC/length failures)
	Skipped uint64 // bytes discarded hunting for sync
}

// Stats returns the running tally.
func (s *Scanner) Stats() ScanStats {
	return ScanStats{Frames: s.frames, Resyncs: s.resyncs, Skipped: s.skipped}
}

// Next returns the next frame. The returned frame's Payload aliases the
// scanner's buffer and is valid only until the following Next call —
// copy it to retain it (that aliasing is the 0 allocs/frame contract).
//
// Errors: ErrBadCRC and ErrPayloadTooLarge report a corrupt candidate
// the scanner has ALREADY resynchronized past — call Next again to
// continue. io.EOF means the stream ended cleanly (trailing garbage,
// if any, was discarded); io.ErrUnexpectedEOF means it ended inside a
// partial frame. Other errors are the reader's.
func (s *Scanner) Next() (*Frame, error) {
	for {
		// Hunt: drop bytes up to the next candidate sync.
		for s.start < s.end && s.buf[s.start] != syncByte {
			s.start++
			s.skipped++
		}
		if err := s.fill(frameOverhead); err != nil {
			return nil, s.eofState(err)
		}
		f, n, err := decodeInto(s.buf[s.start:s.end], s.limit)
		switch {
		case err == nil:
			s.start += n
			s.frames++
			s.frame = f
			return &s.frame, nil
		case errors.Is(err, ErrShortFrame):
			// Sync seen, body still in flight: extend to the claimed
			// total and retry. plen ≤ limit here (a too-large length
			// fails before ErrShortFrame), so the buffer always fits it.
			plen := int(s.buf[s.start+3])
			if err := s.fill(frameOverhead + plen); err != nil {
				return nil, s.eofState(err)
			}
		case errors.Is(err, ErrBadSync):
			// Freshly filled garbage ahead of the next sync: skip
			// silently and re-enter the hunt.
			s.start += n
			s.skipped += uint64(n)
		default:
			// Corrupt candidate: resynchronize to the next sync byte
			// inside its span and report it once.
			s.start += n
			s.skipped += uint64(n)
			s.resyncs++
			return nil, err
		}
	}
}

// fill ensures at least need unconsumed bytes are buffered, compacting
// the buffer when the tail lacks room. need never exceeds
// frameOverhead+limit, which the buffer is sized for.
func (s *Scanner) fill(need int) error {
	if s.end-s.start >= need {
		return nil
	}
	if s.start+need > len(s.buf) {
		copy(s.buf, s.buf[s.start:s.end])
		s.end -= s.start
		s.start = 0
	}
	for s.end-s.start < need {
		lim := len(s.buf)
		if s.exact {
			lim = s.start + need
		}
		n, err := s.r.Read(s.buf[s.end:lim])
		s.end += n
		if err != nil {
			if s.end-s.start >= need {
				return nil
			}
			return err
		}
	}
	return nil
}

// eofState classifies a fill failure: trailing garbage is discarded and
// a clean EOF stays clean; bytes that begin a frame that can never
// complete turn it into io.ErrUnexpectedEOF.
func (s *Scanner) eofState(err error) error {
	for s.start < s.end && s.buf[s.start] != syncByte {
		s.start++
		s.skipped++
	}
	if err == io.EOF && s.start < s.end {
		return io.ErrUnexpectedEOF
	}
	return err
}
