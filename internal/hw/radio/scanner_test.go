package radio

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

// mustEncode builds a valid frame encoding for tests.
func mustEncode(t *testing.T, typ, seq byte, payload []byte) []byte {
	t.Helper()
	buf, err := (&Frame{Type: typ, Seq: seq, Payload: payload}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// Regression (pre-fix: Decode returned consumed == 0 on ErrBadCRC and
// ErrPayloadTooLarge, looping any skip-consumed resync scanner
// forever): every decode error except a plausible short frame must
// return a positive skip.
func TestDecodeErrorsConsumePositive(t *testing.T) {
	valid := mustEncode(t, TypeBeat, 1, []byte{9, 9, 9})

	corrupt := append([]byte(nil), valid...)
	corrupt[5] ^= 0x01 // payload bit flip: CRC failure
	if _, n, err := Decode(corrupt); !errors.Is(err, ErrBadCRC) || n <= 0 {
		t.Errorf("bad CRC: n=%d err=%v, want positive skip", n, err)
	}

	tooLarge := append([]byte(nil), valid...)
	tooLarge[3] = MaxPayload + 1 // corrupt length byte
	if _, n, err := Decode(tooLarge); !errors.Is(err, ErrPayloadTooLarge) || n <= 0 {
		t.Errorf("payload too large: n=%d err=%v, want positive skip", n, err)
	}

	badSync := append([]byte{0x00, 0x13}, valid...)
	if _, n, err := Decode(badSync); !errors.Is(err, ErrBadSync) || n != 2 {
		t.Errorf("bad sync: n=%d err=%v, want skip 2 to the embedded sync", n, err)
	}

	// A plausible frame head that merely needs more bytes must NOT
	// skip: the caller is expected to extend the window.
	if _, n, err := Decode(valid[:4]); !errors.Is(err, ErrShortFrame) || n != 0 {
		t.Errorf("short frame: n=%d err=%v, want 0", n, err)
	}
}

// Regression: the error skip must land exactly on a sync byte embedded
// in the corrupt candidate's span, so a valid frame hiding inside a
// corrupt one (a flipped length byte swallowing the next frame) is
// recovered, not jumped over.
func TestDecodeSkipLandsOnEmbeddedFrame(t *testing.T) {
	inner := mustEncode(t, TypeStatus, 7, []byte{1, 2})
	// Outer candidate: claims a payload long enough to swallow inner,
	// with junk where its CRC would be — guaranteed CRC failure.
	outer := []byte{syncByte, TypeBeat, 3, byte(len(inner) + 2)}
	outer = append(outer, inner...)
	outer = append(outer, 0xDE, 0xAD, 0x13, 0x37) // junk + bogus CRC
	_, n, err := Decode(outer)
	if !errors.Is(err, ErrBadCRC) {
		t.Fatalf("err = %v, want ErrBadCRC", err)
	}
	if n != 4 {
		t.Fatalf("skip = %d, want 4 (offset of the embedded sync)", n)
	}
	got, _, err := Decode(outer[n:])
	if err != nil {
		t.Fatalf("embedded frame not recovered: %v", err)
	}
	if got.Type != TypeStatus || got.Seq != 7 || !bytes.Equal(got.Payload, []byte{1, 2}) {
		t.Errorf("embedded frame mismatch: %+v", got)
	}
}

// A resync loop over a corrupt-then-valid stream must terminate and
// find every valid frame (pre-fix it spun forever on the first error).
func TestDecodeResyncLoopTerminates(t *testing.T) {
	var stream []byte
	stream = append(stream, 0x10, 0x20, 0x30) // leading garbage
	bad := mustEncode(t, TypeBeat, 1, []byte{5})
	bad[len(bad)-1] ^= 0xFF // corrupt CRC
	stream = append(stream, bad...)
	stream = append(stream, mustEncode(t, TypeBeat, 2, []byte{6})...)
	stream = append(stream, 0x00) // trailing garbage

	var got []*Frame
	steps := 0
	for off := 0; off < len(stream); {
		f, n, err := Decode(stream[off:])
		if err != nil {
			if n <= 0 {
				n = 1 // ErrShortFrame tail: nothing more can decode
			}
			off += n
		} else {
			got = append(got, f)
			off += n
		}
		if steps++; steps > 10*len(stream) {
			t.Fatal("resync loop did not terminate")
		}
	}
	if len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("recovered %d frames, want the valid Seq=2 frame", len(got))
	}
}

func TestAppendToRoundTripWidePayload(t *testing.T) {
	payload := make([]byte, 200) // beyond the BLE limit, within the format's
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	f := &Frame{Type: 0x11, Seq: 9, Payload: payload}
	buf, err := f.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := decodeInto(buf, MaxPayloadExt)
	if err != nil || n != len(buf) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if got.Type != f.Type || got.Seq != f.Seq || !bytes.Equal(got.Payload, payload) {
		t.Error("wide round trip mismatch")
	}
	// The BLE-limit decoder must reject it as oversized, with a skip.
	if _, n, err := Decode(buf); !errors.Is(err, ErrPayloadTooLarge) || n <= 0 {
		t.Errorf("BLE decode: n=%d err=%v", n, err)
	}
}

// Regression (pre-fix: ReadFrame discarded a corrupt frame's in-flight
// bytes without rescanning them, permanently desyncing the stream): a
// valid frame embedded in a corrupt candidate's claimed span must
// still be read.
func TestReadFrameRecoversEmbeddedFrame(t *testing.T) {
	inner := mustEncode(t, TypeBeat, 42, []byte{8, 8})
	outer := []byte{syncByte, TypeBeat, 3, byte(len(inner) + 2)}
	outer = append(outer, inner...)
	outer = append(outer, 0xDE, 0xAD, 0x13, 0x37)
	got, err := ReadFrame(bytes.NewReader(outer))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if got.Seq != 42 || !bytes.Equal(got.Payload, []byte{8, 8}) {
		t.Errorf("embedded frame lost: %+v", got)
	}
}

// ReadFrame now skips corrupt candidates instead of surfacing them:
// corrupt, garbage, then valid must return the valid frame.
func TestReadFrameSkipsCorruption(t *testing.T) {
	var stream bytes.Buffer
	bad := mustEncode(t, TypeBeat, 1, []byte{1, 2, 3})
	bad[4] ^= 0x40
	stream.Write(bad)
	stream.Write([]byte{0x99, 0x00})
	stream.Write(mustEncode(t, TypeStatus, 2, []byte{4}))
	got, err := ReadFrame(&stream)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if got.Type != TypeStatus || got.Seq != 2 {
		t.Errorf("got %+v", got)
	}
	if _, err := ReadFrame(&stream); err != io.EOF {
		t.Errorf("tail err = %v, want io.EOF", err)
	}
}

// ReadFrame must not consume reader bytes beyond the frame it returns
// (exact-read mode): back-to-back frames read via repeated per-call
// ReadFrame all arrive.
func TestReadFrameExactConsumption(t *testing.T) {
	var stream bytes.Buffer
	for i := 0; i < 20; i++ {
		stream.Write(mustEncode(t, TypeBeat, byte(i), []byte{byte(i)}))
	}
	for i := 0; i < 20; i++ {
		f, err := ReadFrame(&stream)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Seq != byte(i) {
			t.Fatalf("frame %d: seq %d", i, f.Seq)
		}
	}
}

func TestScannerRecoversAcrossCorruption(t *testing.T) {
	var stream bytes.Buffer
	stream.Write([]byte{0x01, 0x02, 0x03}) // leading garbage
	stream.Write(mustEncode(t, TypeBeat, 1, []byte{0xAA}))
	bad := mustEncode(t, TypeBeat, 2, []byte{0xBB, 0xBC})
	bad[5] ^= 0x80 // corrupt
	stream.Write(bad)
	stream.Write([]byte{0x44}) // mid garbage
	stream.Write(mustEncode(t, TypeStatus, 3, []byte{0xCC, 0xCD, 0xCE}))
	stream.Write([]byte{0x55, 0x66}) // trailing garbage

	s := NewScanner(&stream)
	var seqs []byte
	var corrupt int
	for {
		f, err := s.Next()
		if err == io.EOF {
			break
		}
		if errors.Is(err, ErrBadCRC) || errors.Is(err, ErrPayloadTooLarge) {
			corrupt++
			continue
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		seqs = append(seqs, f.Seq)
	}
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 3 {
		t.Fatalf("recovered seqs %v, want [1 3]", seqs)
	}
	if corrupt != 1 {
		t.Errorf("corrupt candidates = %d, want 1", corrupt)
	}
	st := s.Stats()
	if st.Frames != 2 || st.Resyncs != 1 || st.Skipped == 0 {
		t.Errorf("stats = %+v", st)
	}
}

// A truncated final frame is a hard io.ErrUnexpectedEOF; pure trailing
// garbage stays a clean io.EOF.
func TestScannerEOFClassification(t *testing.T) {
	full := mustEncode(t, TypeBeat, 5, []byte{1, 2, 3})
	s := NewScanner(bytes.NewReader(full[:len(full)-2]))
	if _, err := s.Next(); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated frame: err = %v, want io.ErrUnexpectedEOF", err)
	}
	s = NewScanner(bytes.NewReader([]byte{0x01, 0x02, 0x03}))
	if _, err := s.Next(); err != io.EOF {
		t.Errorf("trailing garbage: err = %v, want io.EOF", err)
	}
}

// loopReader replays a byte pattern forever — an endless frame stream
// for the steady-state allocation test.
type loopReader struct {
	data []byte
	pos  int
}

func (l *loopReader) Read(p []byte) (int, error) {
	n := copy(p, l.data[l.pos:])
	l.pos += n
	if l.pos == len(l.data) {
		l.pos = 0
	}
	return n, nil
}

// The Scanner hot path is allocation-free in steady state — the
// property the old ReadFrame (three allocations per frame) lacked.
func TestScannerZeroAllocSteadyState(t *testing.T) {
	var pattern []byte
	pattern = append(pattern, mustEncode(t, TypeBeat, 1, bytes.Repeat([]byte{7}, 14))...)
	pattern = append(pattern, 0x31, 0x41) // inter-frame garbage
	pattern = append(pattern, mustEncode(t, TypeStatus, 2, []byte{1})...)
	s := NewScanner(&loopReader{data: pattern})
	// Warm up (first fills may grow nothing, but be safe).
	for i := 0; i < 64; i++ {
		if _, err := s.Next(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.Next(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Scanner.Next allocates %.1f/frame in steady state, want 0", allocs)
	}
}

// Regression (pre-fix: BeatStreamDuty priced every beat at exactly one
// transmission): the analytic duty must match a long simulated Link
// run's airtime accounting in expectation on a lossy link.
func TestBeatStreamDutyMatchesLinkSimulation(t *testing.T) {
	for _, tc := range []struct {
		loss    float64
		retries int
	}{
		{0, 3},
		{0.1, 3},
		{0.3, 5},
	} {
		cfg := LinkConfig{LossProb: tc.loss, MaxRetries: tc.retries, BitRate: 1e6, Overhead: 14}
		l := NewLink(cfg, 42)
		f := &Frame{Type: TypeBeat, Payload: (&BeatRecord{}).Marshal()}
		const beats = 200000
		hr := 72.0
		for i := 0; i < beats; i++ {
			l.Send(f)
		}
		sessionS := beats / (hr / 60)
		sim := l.DutyCycle(sessionS)
		analytic := BeatStreamDuty(hr, cfg)
		if rel := math.Abs(sim-analytic) / sim; rel > 0.02 {
			t.Errorf("loss=%g retries=%d: analytic %.6g vs simulated %.6g (rel err %.3f)",
				tc.loss, tc.retries, analytic, sim, rel)
		}
	}
}

func TestExpectedTransmissions(t *testing.T) {
	if got := ExpectedTransmissions(LinkConfig{LossProb: 0, MaxRetries: 3}); got != 1 {
		t.Errorf("lossless = %g", got)
	}
	if got := ExpectedTransmissions(LinkConfig{LossProb: 1, MaxRetries: 3}); got != 4 {
		t.Errorf("total loss = %g, want every attempt spent", got)
	}
	// p=0.5, retries=2: 1 + 0.5 + 0.25 = 1.75.
	if got := ExpectedTransmissions(LinkConfig{LossProb: 0.5, MaxRetries: 2}); math.Abs(got-1.75) > 1e-12 {
		t.Errorf("geometric sum = %g, want 1.75", got)
	}
}

func BenchmarkReadFrame(b *testing.B) {
	pattern := mustEncodeB(b, TypeBeat, 1, bytes.Repeat([]byte{7}, 14))
	r := &loopReader{data: pattern}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ReadFrame(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScannerNext(b *testing.B) {
	pattern := mustEncodeB(b, TypeBeat, 1, bytes.Repeat([]byte{7}, 14))
	s := NewScanner(&loopReader{data: pattern})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

func mustEncodeB(b *testing.B, typ, seq byte, payload []byte) []byte {
	b.Helper()
	buf, err := (&Frame{Type: typ, Seq: seq, Payload: payload}).Encode()
	if err != nil {
		b.Fatal(err)
	}
	return buf
}
