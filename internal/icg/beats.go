package icg

import (
	"math"

	"repro/internal/dsp"
)

// Beat segmentation and whole-recording analysis: the ICG between two
// consecutive ECG R peaks is fed to the characteristic-point detector, on
// a beat-to-beat basis (Section IV-C).

// ShapeBins is the fixed length of the per-beat shape signature: the
// conditioned beat segment bin-averaged to this many points, mean-
// removed and scaled to unit variance. The per-beat quality gate
// (internal/quality) correlates these signatures against its running
// ensemble template.
const ShapeBins = 64

// BeatAnalysis is the outcome of analyzing one beat. Quality is the
// morphology score of the detected points (MorphScore, in [0,1]) and
// Shape the normalized conditioned-beat signature (valid when ShapeOK);
// both are emitted identically by the batch detector and the streaming
// Delineator, and the per-beat quality gate folds them into the
// composite acceptance decision.
type BeatAnalysis struct {
	Points  *BeatPoints
	Quality float64
	Shape   [ShapeBins]float64
	ShapeOK bool
	Err     error
}

// BeatShapeOf computes the shape signature of the conditioned segment
// x[lo:hi]: ShapeBins equal-width bin means (smoothing and resampling
// in one pass), mean-removed and scaled to unit variance. ok is false
// for degenerate (too-short or constant) segments.
func BeatShapeOf(x []float64, lo, hi int) (shape [ShapeBins]float64, ok bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > len(x) {
		hi = len(x)
	}
	m := hi - lo
	if m < ShapeBins/4 {
		return shape, false
	}
	seg := x[lo:hi]
	var sum float64
	for i := 0; i < ShapeBins; i++ {
		a, b := i*m/ShapeBins, (i+1)*m/ShapeBins
		if b <= a {
			b = a + 1
		}
		s := 0.0
		for j := a; j < b; j++ {
			s += seg[j]
		}
		shape[i] = s / float64(b-a)
		sum += shape[i]
	}
	mean := sum / ShapeBins
	var ss float64
	for i := range shape {
		shape[i] -= mean
		ss += shape[i] * shape[i]
	}
	if ss <= 0 {
		return shape, false
	}
	k := 1 / math.Sqrt(ss/ShapeBins)
	for i := range shape {
		shape[i] *= k
	}
	return shape, true
}

// DetectAll runs the beat detector on every RR segment. tPeaks may be nil
// (required only for the Carvalho X variant); rPeaks must be sorted.
func DetectAll(icg []float64, rPeaks []int, tPeaks []int, cfg DetectConfig) []BeatAnalysis {
	return DetectAllWith(nil, icg, rPeaks, tPeaks, cfg)
}

// DetectAllWith is DetectAll drawing every per-beat intermediate from
// an arena (nil falls back to the heap); the BeatAnalysis records and
// their BeatPoints are heap-allocated (one block for the whole
// recording) and safe to retain. The arena is not reset between beats,
// so its footprint converges to the beat loop's peak after the first
// recording.
func DetectAllWith(a *dsp.Arena, icg []float64, rPeaks []int, tPeaks []int, cfg DetectConfig) []BeatAnalysis {
	if len(rPeaks) < 2 {
		return nil
	}
	out := make([]BeatAnalysis, 0, len(rPeaks)-1)
	block := make([]BeatPoints, len(rPeaks)-1) //icg:allow hotalloc -- retained: one backing block of BeatPoints pointed into by the returned analyses, never arena scratch
	for i := 0; i+1 < len(rPeaks); i++ {
		tp := -1
		if tPeaks != nil && i < len(tPeaks) {
			tp = tPeaks[i]
		}
		err := DetectBeatInto(&block[i], a, icg, rPeaks[i], rPeaks[i+1], tp, cfg)
		ba := BeatAnalysis{Err: err}
		if err == nil {
			ba.Points = &block[i]
			ba.Quality = MorphScore(icg, ba.Points, rPeaks[i+1], cfg.FS)
			ba.Shape, ba.ShapeOK = BeatShapeOf(icg, rPeaks[i], rPeaks[i+1])
		}
		out = append(out, ba)
	}
	return out
}

// GoodBeats filters successful detections.
func GoodBeats(beats []BeatAnalysis) []*BeatPoints {
	var out []*BeatPoints
	for _, b := range beats {
		if b.Err == nil && b.Points != nil {
			out = append(out, b.Points)
		}
	}
	return out
}

// YieldRate returns the fraction of beats that were analyzed successfully.
func YieldRate(beats []BeatAnalysis) float64 {
	if len(beats) == 0 {
		return 0
	}
	good := 0
	for _, b := range beats {
		if b.Err == nil {
			good++
		}
	}
	return float64(good) / float64(len(beats))
}

// EnsembleAligned averages fixed-duration windows anchored at each R peak
// without resampling, preserving the absolute time axis so intervals
// measured on the averaged beat (PEP, LVET) remain meaningful. length is
// the window in samples; windows extending past the signal are skipped.
func EnsembleAligned(icg []float64, rPeaks []int, length int) []float64 {
	if len(rPeaks) < 2 || length < 2 {
		return nil
	}
	acc := make([]float64, length)
	count := 0
	for _, r := range rPeaks {
		if r < 0 || r+length > len(icg) {
			continue
		}
		for j := 0; j < length; j++ {
			acc[j] += icg[r+j]
		}
		count++
	}
	if count == 0 {
		return nil
	}
	for j := range acc {
		acc[j] /= float64(count)
	}
	return acc
}

// EnsembleAverage aligns the ICG beats at their R peaks, resamples each RR
// segment to a common length and averages them. The time axis is
// normalized to the cardiac phase (use EnsembleAligned when absolute
// intervals must survive); this variant is the right tool for
// shape-consistency metrics.
func EnsembleAverage(icg []float64, rPeaks []int, length int) []float64 {
	if len(rPeaks) < 2 || length < 2 {
		return nil
	}
	acc := make([]float64, length)
	count := 0
	for i := 0; i+1 < len(rPeaks); i++ {
		lo, hi := rPeaks[i], rPeaks[i+1]
		if lo < 0 || hi > len(icg) || hi-lo < 2 {
			continue
		}
		beat := dsp.ResampleN(icg[lo:hi], length)
		for j := range acc {
			acc[j] += beat[j]
		}
		count++
	}
	if count == 0 {
		return nil
	}
	for j := range acc {
		acc[j] /= float64(count)
	}
	return acc
}
