package icg

import (
	"testing"

	"repro/internal/dsp"
	"repro/internal/physio"
)

// benchBeats prepares a clean recording plus its filtered ICG for the
// per-beat delineation benchmarks.
func benchBeats(b *testing.B) (*physio.Recording, []float64) {
	b.Helper()
	s, ok := physio.SubjectByID(1)
	if !ok {
		b.Fatal("no subject 1")
	}
	rec := s.Generate(physio.DefaultGenConfig())
	filt, err := DefaultFilter(rec.FS).Apply(rec.ICG)
	if err != nil {
		b.Fatal(err)
	}
	return rec, filt
}

// BenchmarkDetectBeat measures one full delineation (detrend, fused
// smooth+derivative kernel, B/C/X rules) per iteration, cycling through
// the recording's beats with a shared warmed arena — the steady state
// of the batch pipeline's beat loop.
func BenchmarkDetectBeat(b *testing.B) {
	rec, filt := benchBeats(b)
	tr := rec.Truth
	a := new(dsp.Arena)
	var bp BeatPoints
	run := func(b *testing.B, cfg DetectConfig) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := i % (tr.Beats() - 1)
			a.Reset()
			if err := DetectBeatInto(&bp, a, filt, tr.RPeaks[j], tr.RPeaks[j+1], -1, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("movavg", func(b *testing.B) { run(b, DefaultDetect(rec.FS)) })
	b.Run("savgol", func(b *testing.B) {
		cfg := DefaultDetect(rec.FS)
		cfg.UseSavGol = true
		run(b, cfg)
	})
}

// TestDetectBeatAllocBudget pins the per-beat allocation count of the
// warmed steady state at zero: with an arena that has converged to the
// loop's peak footprint and the Savitzky-Golay kernel cache populated,
// a delineation performs no heap allocation in either smoothing mode.
// (PR 8: the fused kernel plus the alloc-free sign-pattern matcher,
// median scratch and line-fit scratch got this from ~8 to 0.)
func TestDetectBeatAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting in -short")
	}
	s, _ := physio.SubjectByID(1)
	rec := s.Generate(physio.DefaultGenConfig())
	filt, err := DefaultFilter(rec.FS).Apply(rec.ICG)
	if err != nil {
		t.Fatal(err)
	}
	tr := rec.Truth
	a := new(dsp.Arena)
	var bp BeatPoints
	for _, mode := range []struct {
		name   string
		savgol bool
	}{{"movavg", false}, {"savgol", true}} {
		cfg := DefaultDetect(rec.FS)
		cfg.UseSavGol = mode.savgol
		// Warm the arena and kernel cache over every beat first: the
		// budget governs the steady state, not the first pass.
		for j := 0; j+1 < tr.Beats(); j++ {
			a.Reset()
			_ = DetectBeatInto(&bp, a, filt, tr.RPeaks[j], tr.RPeaks[j+1], -1, cfg)
		}
		j := 0
		got := testing.AllocsPerRun(50, func() {
			a.Reset()
			_ = DetectBeatInto(&bp, a, filt, tr.RPeaks[j], tr.RPeaks[j+1], -1, cfg)
			j = (j + 1) % (tr.Beats() - 1)
		})
		if got > 0 {
			t.Errorf("%s: %.1f allocs per warmed DetectBeatInto, budget 0", mode.name, got)
		}
	}
}
