// Package icg implements the paper's beat-to-beat ICG analysis (Sections
// IV-B and IV-C): the zero-phase 20 Hz Butterworth low-pass, beat
// segmentation between consecutive ECG R peaks, and the detection of the
// characteristic points — C (dZ/dt maximum), B (aortic valve opening) and
// X (aortic valve closure) — with both the paper's rules and the original
// Carvalho et al. variant as a baseline.
package icg

import "repro/internal/dsp"

// FilterConfig parameterizes the ICG conditioning chain: the paper's
// zero-phase 20 Hz Butterworth low-pass (Section IV-A.2) plus a gentle
// high-pass at the lower edge of the ICG band — the signal spans
// 0.8-20 Hz (Section II) while respiration sits at 0.04-2 Hz with most of
// its energy below 0.5 Hz, so the high-pass suppresses the respiratory
// component of -dZ/dt that would otherwise tilt the per-beat baseline.
type FilterConfig struct {
	FS       float64
	Order    int     // low-pass Butterworth order (default 4)
	Cutoff   float64 // low-pass cut-off (Hz); the paper uses 20 Hz
	HPOrder  int     // high-pass order (default 2)
	HPCutoff float64 // high-pass cut-off (Hz); default 0.7, 0 disables
}

// DefaultFilter returns the paper's configuration plus a 0.5 Hz
// second-order band-edge high-pass: it sits below the lowest beat
// fundamental (so the B-C-X morphology is preserved) yet suppresses the
// 0.2-0.35 Hz respiratory component of -dZ/dt by ~9x after the
// forward-backward pass. Ablation A3 quantifies the choice.
func DefaultFilter(fs float64) FilterConfig {
	return FilterConfig{FS: fs, Order: 4, Cutoff: 20, HPOrder: 2, HPCutoff: 0.5}
}

// Design builds the conditioning cascades once: the low-pass Butterworth
// and, when HPCutoff > 0, the band-edge high-pass (hp is nil otherwise).
// Caching the designed sections (core.Device does this at construction)
// removes the pole placement and bilinear transform from every window.
func (c FilterConfig) Design() (lp, hp dsp.SOS, err error) {
	order := c.Order
	if order <= 0 {
		order = 4
	}
	cutoff := c.Cutoff
	if cutoff <= 0 {
		cutoff = 20
	}
	lp, err = dsp.DesignButterLowPass(order, cutoff, c.FS)
	if err != nil {
		return nil, nil, err
	}
	if c.HPCutoff > 0 {
		hpOrder := c.HPOrder
		if hpOrder <= 0 {
			hpOrder = 2
		}
		hp, err = dsp.DesignButterHighPass(hpOrder, c.HPCutoff, c.FS)
		if err != nil {
			return nil, nil, err
		}
	}
	return lp, hp, nil
}

// Apply conditions x zero-phase.
func (c FilterConfig) Apply(x []float64) ([]float64, error) {
	return c.ApplyWith(nil, x)
}

// ApplyWith is Apply drawing its filtering scratch from an arena (nil
// falls back to the heap); the result is arena-owned when a is non-nil.
func (c FilterConfig) ApplyWith(a *dsp.Arena, x []float64) ([]float64, error) {
	lp, hp, err := c.Design()
	if err != nil {
		return nil, err
	}
	return ApplyDesigned(a, lp, hp, x), nil
}

// ApplyDesigned runs the zero-phase conditioning with pre-designed
// cascades (hp may be nil). One arena-aware path serves both modes:
// FiltFiltWith returns a sub-slice of its padded scratch with no
// trailing copy, so a nil arena is no longer more expensive than the
// heap path it used to fork to.
func ApplyDesigned(a *dsp.Arena, lp, hp dsp.SOS, x []float64) []float64 {
	y := lp.FiltFiltWith(a, x)
	if hp != nil {
		y = hp.FiltFiltWith(a, y)
	}
	return y
}
