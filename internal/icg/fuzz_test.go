package icg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dsp"
)

// FuzzDetectBeatFusedParity pins the delineator's fused smooth+deriv
// kernel (dsp.SmoothDeriv3MovAvgWith / SmoothDeriv3SavGolWith) against
// the literal legacy composition — smooth, then three DerivativeTo
// passes — under fuzzing: for fuzz-chosen signals, lengths, window
// widths and both smoothing modes the two must be bit-identical, so
// switching DetectBeatInto to the fused pass cannot move a single
// detected point. The alloc-free sign-pattern matcher is held to its
// run-list reference the same way, and a full DetectBeatInto call on
// the fuzzed segment must stay panic-free and deterministic.
func FuzzDetectBeatFusedParity(f *testing.F) {
	f.Add(int64(1), uint8(4), false, uint16(300))
	f.Add(int64(-7), uint8(0), true, uint16(75))
	f.Add(int64(99), uint8(31), true, uint16(2))
	f.Add(int64(1234), uint8(9), false, uint16(1000))
	f.Fuzz(func(t *testing.T, seed int64, widthSel uint8, savgol bool, nSel uint16) {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nSel)%1200
		x := make([]float64, n)
		for i := range x {
			x[i] = 2*rng.Float64() - 1
		}
		fs := 250.0

		cmp := func(name string, got, want []float64) {
			t.Helper()
			if len(got) != len(want) {
				t.Fatalf("%s: len %d, want %d", name, len(got), len(want))
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%s[%d]: %v != %v", name, i, got[i], want[i])
				}
			}
		}

		// Legacy composition, exactly as DetectBeatInto ran it pre-fusion.
		var sm []float64
		var g1, g2, g3 []float64
		a := new(dsp.Arena)
		if savgol {
			m := int(widthSel)/2 + 1
			sm = dsp.SavGolSmooth(x, m)
			g1, g2, g3 = dsp.SmoothDeriv3SavGolWith(a, x, m, fs)
		} else {
			k := int(widthSel)%32 + 1
			sm = dsp.MovingAverageWith(nil, x, k)
			g1, g2, g3 = dsp.SmoothDeriv3MovAvgWith(a, x, k, fs)
		}
		w1 := dsp.DerivativeTo(make([]float64, len(sm)), sm, fs)
		w2 := dsp.DerivativeTo(make([]float64, len(w1)), w1, fs)
		w3 := dsp.DerivativeTo(make([]float64, len(w2)), w2, fs)
		cmp("d1", g1, w1)
		cmp("d2", g2, w2)
		cmp("d3", g3, w3)

		// Sign-pattern matcher vs the run-list reference on the fuzzed d2.
		lo := int(widthSel) % (n + 4)
		hi := lo + int(nSel)%(n+8)
		if got, want := hasSignPattern(w2, lo, hi), refSignPattern(w2, lo, hi); got != want {
			t.Fatalf("hasSignPattern(%d,%d) = %v, reference %v", lo, hi, got, want)
		}

		// The full delineator must not panic on fuzzed input and must be
		// deterministic: two runs (fresh arena each) agree exactly.
		cfg := DefaultDetect(fs)
		cfg.UseSavGol = savgol
		var bpA, bpB BeatPoints
		errA := DetectBeatInto(&bpA, new(dsp.Arena), x, 0, n, -1, cfg)
		errB := DetectBeatInto(&bpB, new(dsp.Arena), x, 0, n, -1, cfg)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("nondeterministic error: %v vs %v", errA, errB)
		}
		if errA == nil && bpA != bpB {
			t.Fatalf("nondeterministic points: %+v vs %+v", bpA, bpB)
		}
	})
}

// refSignPattern is the original run-list form of hasSignPattern, kept
// as the fuzz oracle for the streaming matcher.
func refSignPattern(d2 []float64, lo, hi int) bool {
	lo = dsp.ClampInt(lo, 0, len(d2))
	hi = dsp.ClampInt(hi, 0, len(d2))
	var runs []int
	runLen := 0
	cur := 0
	for i := lo; i < hi; i++ {
		s := 0
		if d2[i] > 0 {
			s = 1
		} else if d2[i] < 0 {
			s = -1
		}
		if s == 0 {
			continue
		}
		if s == cur {
			runLen++
			continue
		}
		if cur != 0 && runLen >= 2 {
			runs = append(runs, cur)
		}
		cur = s
		runLen = 1
	}
	if cur != 0 && runLen >= 2 {
		runs = append(runs, cur)
	}
	want := []int{1, -1, 1, -1}
	w := 0
	for _, r := range runs {
		if r == want[w] {
			w++
			if w == len(want) {
				return true
			}
		}
	}
	return false
}
