package icg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
	"repro/internal/physio"
)

// prep generates a recording and returns the filtered ICG plus truth.
func prep(t *testing.T, id int, cfg physio.GenConfig) (*physio.Recording, []float64) {
	t.Helper()
	s, ok := physio.SubjectByID(id)
	if !ok {
		t.Fatalf("no subject %d", id)
	}
	rec := s.Generate(cfg)
	filt, err := DefaultFilter(rec.FS).Apply(rec.ICG)
	if err != nil {
		t.Fatal(err)
	}
	return rec, filt
}

func TestFilterRemovesHighFrequency(t *testing.T) {
	fs := 250.0
	n := 4096
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / fs
		x[i] = math.Sin(2*math.Pi*5*ti) + math.Sin(2*math.Pi*45*ti)
	}
	y, err := DefaultFilter(fs).Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	if hi := dsp.BandPower(y, fs, 40, 50); hi > 0.01*dsp.BandPower(x, fs, 40, 50) {
		t.Errorf("45 Hz not removed: %g", hi)
	}
	if lo := dsp.BandPower(y, fs, 4, 6); lo < 0.8*dsp.BandPower(x, fs, 4, 6) {
		t.Errorf("5 Hz damaged: %g", lo)
	}
}

func TestFilterZeroConfigDefaults(t *testing.T) {
	c := FilterConfig{FS: 250}
	x := make([]float64, 500)
	if _, err := c.Apply(x); err != nil {
		t.Fatalf("defaults should work: %v", err)
	}
}

func TestDetectBeatCleanAccuracy(t *testing.T) {
	cfg := physio.DefaultGenConfig()
	cfg.ICGNoiseStd = 0.005
	rec, filt := prep(t, 1, cfg)
	tr := rec.Truth
	dcfg := DefaultDetect(rec.FS)

	tolC := 3                   // 12 ms for the C peak
	tolB := int(0.020 * rec.FS) // 20 ms for B
	tolX := int(0.025 * rec.FS) // 25 ms for X
	nb := 0
	okC, okB, okX := 0, 0, 0
	for i := 0; i+1 < tr.Beats(); i++ {
		pts, err := DetectBeat(filt, tr.RPeaks[i], tr.RPeaks[i+1], -1, dcfg)
		if err != nil {
			continue
		}
		nb++
		if iabs(pts.C-tr.CPoints[i]) <= tolC {
			okC++
		}
		if iabs(pts.B-tr.BPoints[i]) <= tolB {
			okB++
		}
		if iabs(pts.X-tr.XPoints[i]) <= tolX {
			okX++
		}
	}
	if nb < tr.Beats()-3 {
		t.Fatalf("analyzed only %d of %d beats", nb, tr.Beats())
	}
	if f := frac(okC, nb); f < 0.95 {
		t.Errorf("C accuracy = %.2f", f)
	}
	if f := frac(okB, nb); f < 0.85 {
		t.Errorf("B accuracy = %.2f", f)
	}
	if f := frac(okX, nb); f < 0.85 {
		t.Errorf("X accuracy = %.2f", f)
	}
}

func TestDetectBeatOrderingInvariant(t *testing.T) {
	// Whatever the input, successful detections must satisfy
	// R <= B < C < X within the beat.
	for _, id := range []int{1, 2, 3, 4, 5} {
		rec, filt := prep(t, id, physio.DefaultGenConfig())
		tr := rec.Truth
		for i := 0; i+1 < tr.Beats(); i++ {
			pts, err := DetectBeat(filt, tr.RPeaks[i], tr.RPeaks[i+1], -1, DefaultDetect(rec.FS))
			if err != nil {
				continue
			}
			if !(pts.R <= pts.B && pts.B < pts.C && pts.C < pts.X) {
				t.Fatalf("subject %d beat %d: ordering R=%d B=%d C=%d X=%d",
					id, i, pts.R, pts.B, pts.C, pts.X)
			}
			if pts.CAmp <= 0 {
				t.Fatalf("non-positive C amplitude")
			}
		}
	}
}

func TestDetectBeatPEPLVETAccuracy(t *testing.T) {
	// The derived systolic time intervals must track the ground truth on
	// average (the per-beat tolerance is wider than the mean tolerance).
	cfg := physio.DefaultGenConfig()
	rec, filt := prep(t, 3, cfg)
	tr := rec.Truth
	var dPEP, dLVET []float64
	for i := 0; i+1 < tr.Beats(); i++ {
		pts, err := DetectBeat(filt, tr.RPeaks[i], tr.RPeaks[i+1], -1, DefaultDetect(rec.FS))
		if err != nil {
			continue
		}
		pep := float64(pts.B-pts.R) / rec.FS
		lvet := float64(pts.X-pts.B) / rec.FS
		dPEP = append(dPEP, pep-tr.PEP[i])
		dLVET = append(dLVET, lvet-tr.LVET[i])
	}
	if len(dPEP) < 20 {
		t.Fatalf("too few beats: %d", len(dPEP))
	}
	if m := math.Abs(dsp.Mean(dPEP)); m > 0.015 {
		t.Errorf("mean PEP bias = %.4f s", m)
	}
	if m := math.Abs(dsp.Mean(dLVET)); m > 0.020 {
		t.Errorf("mean LVET bias = %.4f s", m)
	}
}

func TestDetectBeatErrors(t *testing.T) {
	x := make([]float64, 1000)
	if _, err := DetectBeat(x, 0, 20, -1, DefaultDetect(250)); err != ErrBeatTooShort {
		t.Errorf("short beat: %v", err)
	}
	if _, err := DetectBeat(x, -5, 400, -1, DefaultDetect(250)); err != ErrBeatTooShort {
		t.Errorf("negative lo: %v", err)
	}
	// A flat beat has no C point above baseline.
	if _, err := DetectBeat(x, 0, 400, -1, DefaultDetect(250)); err == nil {
		t.Error("flat beat should fail")
	}
}

func TestDetectAllAndYield(t *testing.T) {
	rec, filt := prep(t, 2, physio.DefaultGenConfig())
	beats := DetectAll(filt, rec.Truth.RPeaks, nil, DefaultDetect(rec.FS))
	if len(beats) != rec.Truth.Beats()-1 {
		t.Fatalf("beats = %d", len(beats))
	}
	if y := YieldRate(beats); y < 0.9 {
		t.Errorf("yield = %g", y)
	}
	good := GoodBeats(beats)
	if len(good) == 0 {
		t.Fatal("no good beats")
	}
	if DetectAll(filt, []int{100}, nil, DefaultDetect(rec.FS)) != nil {
		t.Error("single R peak should give nil")
	}
	if YieldRate(nil) != 0 {
		t.Error("empty yield should be 0")
	}
}

func TestXVariantsBothWork(t *testing.T) {
	rec, filt := prep(t, 1, physio.DefaultGenConfig())
	tr := rec.Truth
	// T peaks approximated from the truth RR series.
	tPeaks := make([]int, tr.Beats())
	for i, r := range tr.RPeaks {
		tPeaks[i] = r + int(physio.TPeakOffset(tr.RR[i])*rec.FS)
	}
	carv := DefaultDetect(rec.FS)
	carv.XRule = XCarvalho
	okPaper, okCarv, n := 0, 0, 0
	tolX := int(0.03 * rec.FS)
	for i := 0; i+1 < tr.Beats(); i++ {
		p1, err1 := DetectBeat(filt, tr.RPeaks[i], tr.RPeaks[i+1], -1, DefaultDetect(rec.FS))
		p2, err2 := DetectBeat(filt, tr.RPeaks[i], tr.RPeaks[i+1], tPeaks[i], carv)
		if err1 != nil || err2 != nil {
			continue
		}
		n++
		if iabs(p1.X-tr.XPoints[i]) <= tolX {
			okPaper++
		}
		if iabs(p2.X-tr.XPoints[i]) <= tolX {
			okCarv++
		}
	}
	if n < 20 {
		t.Fatalf("too few beats: %d", n)
	}
	if f := frac(okPaper, n); f < 0.85 {
		t.Errorf("paper X accuracy = %.2f", f)
	}
	if f := frac(okCarv, n); f < 0.6 {
		t.Errorf("carvalho X accuracy = %.2f", f)
	}
}

func TestBVariantsOrdering(t *testing.T) {
	// All three B rules should produce a B before C; the paper rule
	// should be at least as accurate as the raw line fit.
	rec, filt := prep(t, 1, physio.DefaultGenConfig())
	tr := rec.Truth
	rules := []BVariant{BPaper, BZeroCrossOnly, BLineFitOnly}
	acc := make([]int, len(rules))
	n := 0
	tolB := int(0.02 * rec.FS)
	for i := 0; i+1 < tr.Beats(); i++ {
		allOK := true
		var pts [3]*BeatPoints
		for ri, rule := range rules {
			cfg := DefaultDetect(rec.FS)
			cfg.BRule = rule
			p, err := DetectBeat(filt, tr.RPeaks[i], tr.RPeaks[i+1], -1, cfg)
			if err != nil {
				allOK = false
				break
			}
			pts[ri] = p
		}
		if !allOK {
			continue
		}
		n++
		for ri := range rules {
			if pts[ri].B >= pts[ri].C {
				t.Fatalf("rule %d: B >= C", ri)
			}
			if iabs(pts[ri].B-tr.BPoints[i]) <= tolB {
				acc[ri]++
			}
		}
	}
	if n < 20 {
		t.Fatalf("too few beats analyzed: %d", n)
	}
	if acc[0] < acc[2] {
		t.Errorf("paper B rule (%d/%d) worse than raw line fit (%d/%d)",
			acc[0], n, acc[2], n)
	}
}

func TestEnsembleAverageSharpensSNR(t *testing.T) {
	cfg := physio.DefaultGenConfig()
	cfg.ICGNoiseStd = 0.15
	rec, filt := prep(t, 2, cfg)
	avg := EnsembleAverage(filt, rec.Truth.RPeaks, 200)
	if len(avg) != 200 {
		t.Fatalf("len = %d", len(avg))
	}
	// The averaged beat must show the C wave prominently: max well above
	// the noise level of a single beat segment.
	_, hi := dsp.MinMax(avg)
	if hi < 0.5 {
		t.Errorf("ensemble C amplitude = %g", hi)
	}
	if EnsembleAverage(filt, []int{1}, 100) != nil {
		t.Error("single peak should give nil")
	}
	if EnsembleAverage(filt, rec.Truth.RPeaks, 1) != nil {
		t.Error("length 1 should give nil")
	}
}

func TestHasSignPattern(t *testing.T) {
	// Construct a d2 sequence with runs +,+,-,-,+,+,-,-.
	d2 := []float64{1, 1, -1, -1, 1, 1, -1, -1}
	if !hasSignPattern(d2, 0, len(d2)) {
		t.Error("pattern missed")
	}
	// Only two runs.
	d2b := []float64{1, 1, 1, -1, -1, -1}
	if hasSignPattern(d2b, 0, len(d2b)) {
		t.Error("false pattern")
	}
	// Runs of length 1 are ignored.
	d2c := []float64{1, -1, 1, -1}
	if hasSignPattern(d2c, 0, len(d2c)) {
		t.Error("noise runs should not count")
	}
}

func iabs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func TestDetectBeatNeverPanicsOnRandomInput(t *testing.T) {
	// Fuzz-style robustness: arbitrary signals may fail with an error but
	// must never panic, and successful detections must keep the point
	// ordering invariant.
	f := func(seed int64, lenRaw uint16) bool {
		n := 100 + int(lenRaw)%2000
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 2
		}
		hi := n - 1
		if hi < 80 {
			return true
		}
		pts, err := DetectBeat(x, 0, hi, -1, DefaultDetect(250))
		if err != nil {
			return true // errors are acceptable; panics are not
		}
		return pts.R <= pts.B && pts.B < pts.C && pts.C < pts.X && pts.X <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestDetectBeatExtremeAmplitudes(t *testing.T) {
	// Scaling the signal by huge/small factors must not break detection
	// (the rules are ratio-based).
	rec, filt := prep(t, 1, physio.DefaultGenConfig())
	tr := rec.Truth
	for _, scale := range []float64{1e-6, 1e6} {
		scaled := dsp.Scale(filt, scale)
		ok := 0
		for i := 0; i+1 < tr.Beats(); i++ {
			pts, err := DetectBeat(scaled, tr.RPeaks[i], tr.RPeaks[i+1], -1, DefaultDetect(rec.FS))
			if err != nil {
				continue
			}
			if iabs(pts.C-tr.CPoints[i]) <= 3 {
				ok++
			}
		}
		if frac := float64(ok) / float64(tr.Beats()-1); frac < 0.9 {
			t.Errorf("scale %g: C accuracy %.2f", scale, frac)
		}
	}
}

func TestEnsembleAligned(t *testing.T) {
	rec, filt := prep(t, 1, physio.DefaultGenConfig())
	length := int(0.8 * rec.FS)
	avg := EnsembleAligned(filt, rec.Truth.RPeaks, length)
	if len(avg) != length {
		t.Fatalf("len = %d", len(avg))
	}
	// The averaged beat keeps absolute timing: its C peak must sit near
	// the mean C latency of the truth.
	var meanC float64
	for i, c := range rec.Truth.CPoints {
		meanC += float64(c - rec.Truth.RPeaks[i])
	}
	meanC /= float64(rec.Truth.Beats())
	peak := dsp.ArgMax(avg, 0, len(avg))
	if d := float64(peak) - meanC; d < -5 || d > 5 {
		t.Errorf("ensemble C at %d, mean truth latency %.1f", peak, meanC)
	}
	if EnsembleAligned(filt, []int{1}, 100) != nil {
		t.Error("single peak")
	}
	if EnsembleAligned(filt, rec.Truth.RPeaks, 1) != nil {
		t.Error("length 1")
	}
}

func TestSavGolSmoothingVariant(t *testing.T) {
	// Both smoothing engines must detect the points; SavGol should be at
	// least comparable on C accuracy.
	cfg := physio.DefaultGenConfig()
	rec, filt := prep(t, 1, cfg)
	tr := rec.Truth
	for _, sg := range []bool{false, true} {
		dcfg := DefaultDetect(rec.FS)
		dcfg.UseSavGol = sg
		ok, n := 0, 0
		for i := 0; i+1 < tr.Beats(); i++ {
			pts, err := DetectBeat(filt, tr.RPeaks[i], tr.RPeaks[i+1], -1, dcfg)
			if err != nil {
				continue
			}
			n++
			if iabs(pts.C-tr.CPoints[i]) <= 3 {
				ok++
			}
		}
		if f := frac(ok, n); f < 0.9 {
			t.Errorf("savgol=%v: C accuracy %.2f", sg, f)
		}
	}
}
