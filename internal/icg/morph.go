package icg

import "repro/internal/dsp"

// MorphScore grades the physiological plausibility of a delineated beat
// in [0,1]: the systolic time intervals implied by the detected points
// must land in (generous) physiological windows and the C point must
// stand out of the beat's amplitude range. It is computed by both the
// batch detector (DetectAllWith) and the streaming Delineator on the
// conditioned segment, so the two engines grade beats identically, and
// feeds the per-beat quality gate (internal/quality) as the
// morphology component of the composite score.
//
// x is the conditioned ICG signal the points index into and rHi the
// beat's closing R peak on the same clock.
func MorphScore(x []float64, pts *BeatPoints, rHi int, fs float64) float64 {
	if pts == nil {
		return 0
	}
	if fs <= 0 {
		fs = 250 // the same fallback rate as DetectBeatInto
	}
	pep := float64(pts.B-pts.R) / fs
	lvet := float64(pts.X-pts.B) / fs
	s := trapezoid(pep, 0.01, 0.04, 0.20, 0.30) *
		trapezoid(lvet, 0.06, 0.12, 0.50, 0.65)
	if s == 0 {
		return 0
	}
	lo := pts.R
	hi := rHi
	if lo < 0 {
		lo = 0
	}
	if hi > len(x) {
		hi = len(x)
	}
	if hi-lo < 2 {
		return 0
	}
	segLo, segHi := dsp.MinMax(x[lo:hi])
	span := segHi - segLo
	if span <= 0 || pts.CAmp <= 0 {
		return 0
	}
	return s * dsp.Clamp(pts.CAmp/(0.25*span), 0, 1)
}

// trapezoid maps v onto [0,1]: 0 outside [z0, z1], 1 inside [f0, f1],
// linear in between.
func trapezoid(v, z0, f0, f1, z1 float64) float64 {
	switch {
	case v <= z0 || v >= z1:
		return 0
	case v >= f0 && v <= f1:
		return 1
	case v < f0:
		return (v - z0) / (f0 - z0)
	default:
		return (z1 - v) / (z1 - f1)
	}
}
