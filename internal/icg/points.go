package icg

import (
	"errors"

	"repro/internal/dsp"
)

// Characteristic-point detection, following Section IV-C of the paper
// (based on Carvalho et al., "Robust Characteristic Points for ICG"):
//
//   - C point: maximum of the ICG inside the beat.
//   - B point: an initial estimate B0 is the intersection of the line
//     fitted to the ICG samples between 40% and 80% of the C amplitude
//     with the horizontal axis. If the (+,-,+,-) second-derivative sign
//     pattern is present left of C, B is the first minimum of the third
//     derivative left of B0; otherwise B is the first zero crossing of the
//     first derivative left of B0.
//   - X point: the initial estimate X0 is the lowest negative minimum
//     right of C (the paper's adjustment); X is the local minimum of the
//     third derivative left of X0. The original Carvalho variant instead
//     takes X0 as the lowest minimum inside [RT, 1.75*RT] after R.

// XVariant selects the X0 search rule.
type XVariant int

// X-point rule variants.
const (
	// XPaper: lowest ICG negative minimum to the right of C (the rule the
	// paper adopts because T-wave ends are unreliable).
	XPaper XVariant = iota
	// XCarvalho: lowest minimum in the window [RT, 1.75*RT] after the R
	// peak, where RT is the R-to-T-peak interval.
	XCarvalho
)

// BVariant selects the B refinement rule (ablation A1).
type BVariant int

// B-point rule variants.
const (
	// BPaper: the full second-derivative-pattern rule of Section IV-C.
	BPaper BVariant = iota
	// BZeroCrossOnly: always use the first-derivative zero crossing.
	BZeroCrossOnly
	// BLineFitOnly: use the raw B0 line-fit intersection.
	BLineFitOnly
)

// DetectConfig parameterizes the beat-level detector.
type DetectConfig struct {
	FS       float64
	XRule    XVariant
	BRule    BVariant
	SmoothMS float64 // smoothing window before derivatives (ms)
	// UseSavGol selects quadratic Savitzky-Golay smoothing instead of the
	// moving average; it preserves peak shapes better at equal window
	// length (at a higher multiply count on the MCU).
	UseSavGol bool
}

// DefaultDetect returns the paper's configuration.
func DefaultDetect(fs float64) DetectConfig {
	return DetectConfig{FS: fs, XRule: XPaper, BRule: BPaper, SmoothMS: 16}
}

// BeatPoints holds the detected characteristic points of one beat, as
// absolute sample indices into the analyzed signal.
type BeatPoints struct {
	R    int     // anchoring R peak
	B    int     // aortic valve opening
	C    int     // dZ/dt maximum
	X    int     // aortic valve closure
	B0   float64 // initial line-fit estimate (fractional samples)
	X0   int     // initial X estimate
	CAmp float64 // C amplitude above the beat baseline (Ohm/s)
	// Pattern reports whether the (+,-,+,-) second-derivative pattern was
	// found (selects the 3rd-derivative B rule).
	Pattern bool
}

// Detection errors.
var (
	ErrBeatTooShort = errors.New("icg: beat segment too short")
	ErrNoCPoint     = errors.New("icg: no usable C point in beat")
	ErrNoUpstroke   = errors.New("icg: no 40-80% upstroke region before C")
)

// DetectBeat analyzes the ICG between two consecutive R peaks (sample
// indices rLo < rHi). tPeak is the T-wave apex index for the Carvalho
// variant (ignored by the paper rule; pass -1 when unknown).
func DetectBeat(icg []float64, rLo, rHi, tPeak int, cfg DetectConfig) (*BeatPoints, error) {
	return DetectBeatWith(nil, icg, rLo, rHi, tPeak, cfg)
}

// DetectBeatWith is DetectBeat drawing every per-beat intermediate (the
// detrended segment copy, smoothing, the three derivatives, the robust
// refit scratch) from an arena; nil falls back to the heap. The
// returned BeatPoints is always heap-allocated and safe to retain. The
// arena is not reset here — callers sharing one arena across a beat
// loop converge to the loop's peak footprint after the first pass.
func DetectBeatWith(a *dsp.Arena, icg []float64, rLo, rHi, tPeak int, cfg DetectConfig) (*BeatPoints, error) {
	bp := new(BeatPoints)
	if err := DetectBeatInto(bp, a, icg, rLo, rHi, tPeak, cfg); err != nil {
		return nil, err
	}
	return bp, nil
}

// DetectBeatInto is DetectBeatWith writing the result into a
// caller-provided BeatPoints (e.g. one slot of a block allocated for a
// whole recording); bp is only valid when the returned error is nil.
func DetectBeatInto(bp *BeatPoints, a *dsp.Arena, icg []float64, rLo, rHi, tPeak int, cfg DetectConfig) error {
	fs := cfg.FS
	if fs <= 0 {
		fs = 250
	}
	if rLo < 0 || rHi > len(icg) || rHi-rLo < int(0.3*fs) {
		return ErrBeatTooShort
	}
	seg := arenaF64(a, rHi-rLo)
	copy(seg, icg[rLo:rHi])
	// Per-beat baseline: the respiratory and motion components of -dZ/dt
	// drift through the beat, so the "horizontal axis" of the B0 rule is
	// re-established per beat: a line anchored on the two quiet windows
	// of the cycle (just after R, before the upstroke, and in late
	// diastole), polished by a robust refit that ignores the systolic
	// complex.
	detrendAnchored(a, seg, fs)
	smoothK := int(cfg.SmoothMS / 1000 * fs)
	if smoothK < 1 {
		smoothK = 1
	}
	// The point rules only consume derivatives of the smoothed beat, so
	// the smoothed track itself is never materialized: the fused kernel
	// emits d1/d2/d3 in one pipelined pass (bit-identical to the legacy
	// smooth -> DerivativeTo x3 chain; see dsp/fused.go).
	var d1, d2, d3 []float64
	if cfg.UseSavGol {
		d1, d2, d3 = dsp.SmoothDeriv3SavGolWith(a, seg, smoothK/2+1, fs)
	} else {
		d1, d2, d3 = dsp.SmoothDeriv3MovAvgWith(a, seg, smoothK, fs)
	}

	// --- C point: maximum of the ICG inside the beat, searched within
	// the physiological systolic window after R (PEP of 40-160 ms plus
	// ~0.38 LVET puts the dZ/dt maximum 80-360 ms past R); without the
	// bound, diastolic motion-artifact bumps can top a weak C wave.
	guard := int(0.06 * fs)
	cLo := int(0.08 * fs)
	cHi := int(0.36 * fs)
	if max := len(seg) - guard; cHi > max {
		cHi = max
	}
	if cLo >= cHi {
		cLo = guard
		cHi = len(seg) - guard
	}
	c := dsp.ArgMax(seg, cLo, cHi)
	if c < 0 || seg[c] <= 0 {
		return ErrNoCPoint
	}
	cAmp := seg[c]

	*bp = BeatPoints{R: rLo, C: rLo + c, CAmp: cAmp}

	// Physiological X-search window: the aortic valve closes within
	// ~0.06-0.32 s after the dZ/dt maximum (LVET is 0.18-0.42 s and C
	// sits ~0.38 LVET past B). Searching the whole diastole instead
	// would latch onto motion-artifact troughs.
	xLo := c + int(0.06*fs)
	xHi := c + int(0.32*fs)
	if max := len(seg) - guard; xHi > max {
		xHi = max
	}
	if xLo >= xHi {
		xLo = c + 1
	}

	// --- B point.
	b, b0, pattern, err := detectB(a, seg, d1, d2, d3, c, cAmp, fs, cfg.BRule)
	if err != nil {
		return err
	}
	bp.B = rLo + b
	bp.B0 = float64(rLo) + b0
	bp.Pattern = pattern

	// --- X point.
	x0 := -1
	switch cfg.XRule {
	case XCarvalho:
		if tPeak >= 0 && tPeak > rLo {
			rt := tPeak - rLo
			lo := rLo + rt
			hi := rLo + int(1.75*float64(rt))
			if hi > rHi {
				hi = rHi
			}
			if lo < hi {
				x0 = dsp.ArgMin(icg, lo, hi) - rLo
			}
		}
		if x0 < 0 { // fall back to the paper rule
			x0 = dsp.ArgMin(seg, xLo, xHi)
		}
	default: // XPaper
		x0 = dsp.ArgMin(seg, xLo, xHi)
	}
	if x0 < 0 {
		x0 = len(seg) - guard - 1
	}
	bp.X0 = rLo + x0
	// X is the local minimum of the 3rd derivative left of X0. The search
	// is bounded to a 40 ms proximity window: the rule targets the
	// incisura inflection right before the trough, and on smooth beats
	// (where the nearest d3 minimum drifts far left) X0 itself is the
	// closure point.
	floor := maxInt(x0-int(0.04*fs), c+1)
	x := prevLocalMinAfter(d3, x0, floor)
	if x < 0 {
		x = x0
	}
	bp.X = rLo + x

	return nil
}

// detectB implements the three B rules. It returns the B index within the
// segment, the fractional B0 estimate, and whether the second-derivative
// pattern was found.
func detectB(a *dsp.Arena, seg, d1, d2, d3 []float64, c int, cAmp, fs float64, rule BVariant) (int, float64, bool, error) {
	// Locate the upstroke foot: the nearest sample left of C that drops
	// below 15% of the C amplitude (searched within 250 ms). Bounding the
	// 40-80% collection at the foot keeps the fitted line on the true
	// upstroke even when a respiratory tilt raises the far baseline above
	// the 40% threshold.
	footFloor := maxInt(1, c-int(0.25*fs))
	foot := footFloor
	for i := c; i >= footFloor; i-- {
		if seg[i] < 0.15*cAmp {
			foot = i
			break
		}
	}
	// Collect the 40-80% band of the upstroke between foot and C.
	lo40 := 0.4 * cAmp
	hi80 := 0.8 * cAmp
	idx := arenaInts(a, c-foot+1)[:0]
	for i := c; i >= foot; i-- {
		v := seg[i]
		if v < lo40 {
			break
		}
		if v <= hi80 {
			idx = append(idx, i)
		}
	}
	if len(idx) < 2 {
		return 0, 0, false, ErrNoUpstroke
	}
	// Reverse into ascending order for the fit.
	for i, j := 0, len(idx)-1; i < j; i, j = i+1, j-1 {
		idx[i], idx[j] = idx[j], idx[i]
	}
	line, ok := dsp.FitLineIndicesWith(a, seg, idx)
	if !ok {
		return 0, 0, false, ErrNoUpstroke
	}
	// The "horizontal axis" the paper intersects is the pre-upstroke
	// baseline. Re-measuring it locally (median of the 50 ms right
	// before the foot) keeps B0 insensitive to the residual wiggles the
	// per-beat detrend can leave at the segment head.
	baseLo := maxInt(foot-int(0.05*fs), 0)
	localBase := 0.0
	if foot > baseLo+2 {
		scratch := arenaF64(a, foot-baseLo)
		copy(scratch, seg[baseLo:foot])
		localBase = dsp.MedianInPlace(scratch)
	}
	if localBase > 0.3*cAmp { // implausible baseline: fall back to zero
		localBase = 0
	}
	b0f, ok := line.XAtY(localBase)
	if !ok {
		return 0, 0, false, ErrNoUpstroke
	}
	b0 := int(b0f + 0.5)
	minB := c - int(0.20*fs) // B cannot precede C by more than 200 ms
	if minB < 0 {
		minB = 0
	}
	b0 = dsp.ClampInt(b0, minB, c-1)

	if rule == BLineFitOnly {
		return b0, b0f, false, nil
	}

	// Look for the (+,-,+,-) second-derivative sign pattern left of C.
	pattern := hasSignPattern(d2, maxInt(minB-int(0.04*fs), 0), c)

	if rule == BPaper && pattern {
		// B = first minimum of the 3rd derivative to the left of B0. The
		// scan is bounded to a 40 ms proximity window: the rule targets
		// the B notch adjacent to the upstroke foot, and an unbounded
		// scan would wander into the quiet pre-B region on beats whose
		// notch was smoothed away.
		floor := maxInt(b0-int(0.04*fs), minB)
		if b := prevLocalMinAfter(d3, b0, floor); b >= 0 {
			return b, b0f, true, nil
		}
	}
	// Fallback (and BZeroCrossOnly): first zero crossing of the first
	// derivative to the left of B0 — the foot of the upstroke. The
	// crossing must be persistent (the slope stays non-positive for two
	// samples on its left) so that noise wiggles right next to B0 do not
	// stop the scan early.
	if z := prevPersistentZeroCross(d1, b0+1, minB); z >= 0 {
		return z, b0f, pattern, nil
	}
	if z := dsp.PrevZeroCrossing(d1[:c+1], b0+1); z >= 0 && z >= minB {
		return z, b0f, pattern, nil
	}
	return b0, b0f, pattern, nil
}

// prevPersistentZeroCross scans left from start for a downward-to-upward
// slope transition where d1 is non-positive for at least two consecutive
// samples before turning positive; returns -1 if none is found above
// floor.
func prevPersistentZeroCross(d1 []float64, start, floor int) int {
	start = dsp.ClampInt(start, 0, len(d1)-1)
	if floor < 1 {
		floor = 1
	}
	for i := start - 1; i >= floor; i-- {
		if d1[i] <= 0 && i+1 < len(d1) && d1[i+1] > 0 && d1[i-1] <= 0 {
			return i
		}
	}
	return -1
}

// hasSignPattern reports whether the sign-run sequence of d2 inside
// [lo, hi) contains the subsequence +,-,+,- (runs shorter than 2 samples
// are ignored as noise).
func hasSignPattern(d2 []float64, lo, hi int) bool {
	lo = dsp.ClampInt(lo, 0, len(d2))
	hi = dsp.ClampInt(hi, 0, len(d2))
	// Streaming subsequence matcher: each completed run (>= 2 samples)
	// is tested against the next wanted sign the moment it ends, so no
	// run list is materialized — this runs once per candidate beat and
	// used to be the only per-beat heap allocation of the B rule.
	want := [4]int{1, -1, 1, -1}
	w := 0
	runLen := 0
	cur := 0
	for i := lo; i < hi; i++ {
		s := 0
		if d2[i] > 0 {
			s = 1
		} else if d2[i] < 0 {
			s = -1
		}
		if s == 0 {
			continue
		}
		if s == cur {
			runLen++
			continue
		}
		if cur != 0 && runLen >= 2 && cur == want[w] {
			w++
			if w == len(want) {
				return true
			}
		}
		cur = s
		runLen = 1
	}
	if cur != 0 && runLen >= 2 && cur == want[w] {
		w++
	}
	return w == len(want)
}

// prevLocalMinAfter returns the nearest local-minimum index of x strictly
// left of start but not before floor; -1 if none.
func prevLocalMinAfter(x []float64, start, floor int) int {
	start = dsp.ClampInt(start, 0, len(x)-1)
	floor = dsp.ClampInt(floor, 1, len(x)-1)
	for i := start - 1; i >= floor; i-- {
		if i+1 < len(x) && x[i] < x[i-1] && x[i] < x[i+1] {
			return i
		}
	}
	return -1
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// detrendAnchored removes a linear baseline from seg in place. The
// initial line passes through the medians of the two quiet windows of
// the cardiac cycle — the 40 ms right after the R peak (before the B
// upstroke: PEP is at least 40 ms) and the last 120 ms of the beat (late
// diastole) — and is then polished by a robust refit that keeps only the
// samples whose residuals fall below the 60th percentile, dropping the
// systolic complex.
func detrendAnchored(a *dsp.Arena, seg []float64, fs float64) {
	n := len(seg)
	if n < 16 {
		return
	}
	headLen := int(0.04 * fs)
	if headLen < 2 {
		headLen = 2
	}
	if headLen > n/4 {
		headLen = n / 4
	}
	tailLen := int(0.12 * fs)
	if tailLen < 2 {
		tailLen = 2
	}
	if tailLen > n/3 {
		tailLen = n / 3
	}
	// All per-beat storage — the two anchor-median scratch copies and,
	// per refit iteration, the residuals, their sorted copy for the
	// percentile, and the kept points — shares one scratch block: this
	// runs on every beat of every window and dominated the pipeline's
	// small-object churn.
	buf := arenaF64(a, 4*n)
	sorted := buf[n : 2*n]
	copy(sorted, seg[:headLen])
	headMed := dsp.MedianInPlace(sorted[:headLen])
	copy(sorted, seg[n-tailLen:])
	tailMed := dsp.MedianInPlace(sorted[:tailLen])
	x1 := float64(headLen-1) / 2
	x2 := float64(n-1) - float64(tailLen-1)/2
	line := dsp.Line{}
	if x2 > x1 {
		line.Slope = (tailMed - headMed) / (x2 - x1)
		line.Intercept = headMed - line.Slope*x1
	}
	// Robust refit: keep low-residual samples (the baseline), ignore the
	// systolic deflections. The refit is quadratic so the in-beat
	// curvature of the respiratory -dZ/dt component is captured, not just
	// its mean slope.
	res := buf[:n]
	kx := buf[2*n : 2*n : 3*n]
	ky := buf[3*n : 3*n : 4*n]
	quad := dsp.Quad{B: line.Slope, C: line.Intercept} // A = 0: the anchor line
	for iter := 0; iter < 2; iter++ {
		for i, v := range seg {
			r := v - quad.YAt(float64(i))
			if r < 0 {
				r = -r
			}
			res[i] = r
		}
		copy(sorted, res)
		thresh := dsp.PercentileInPlace(sorted, 60)
		kx, ky = kx[:0], ky[:0]
		for i, v := range seg {
			if res[i] <= thresh {
				kx = append(kx, float64(i))
				ky = append(ky, v)
			}
		}
		if len(kx) < 12 {
			break
		}
		if q, ok2 := dsp.FitQuad(kx, ky); ok2 {
			quad = q
		}
	}
	for i := range seg {
		seg[i] -= quad.YAt(float64(i))
	}
}

// arenaF64 allocates from a when non-nil and from the heap otherwise.
func arenaF64(a *dsp.Arena, n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	return a.F64(n)
}

// arenaInts allocates from a when non-nil and from the heap otherwise.
func arenaInts(a *dsp.Arena, n int) []int {
	if a == nil {
		return make([]int, n)
	}
	return a.Ints(n)
}
