package icg

import "repro/internal/dsp"

// Delineator is the incremental beat delineator: it consumes the
// streamed -dZ/dt samples and confirmed ECG R peaks as they appear, and
// runs the characteristic-point detector on each completed RR segment
// exactly once — the streaming counterpart of DetectAll, with O(beat)
// work per beat instead of re-analyzing a whole window per hop.
//
// The paper's ICG conditioning is a zero-phase Butterworth cascade,
// which no causal stream can reproduce (a one-pass causal filter has
// |H| instead of |H|^2 and a dispersive phase that visibly moves the B
// and X points). The delineator therefore applies the cascade
// forward-backward over each beat segment plus a bounded context on
// both sides: the cascade's transients decay well inside the context,
// so the segment interior matches the batch whole-recording filtfilt,
// while the cost stays O(beat + context) per beat. Pass nil filters to
// skip refiltering (the causal-ablation chain conditions the stream
// itself, sample for sample equal to its batch form).
//
// align shifts the ICG clock: the delineator treats ICG sample r+align
// as simultaneous with ECG sample r (non-zero only when the stream
// comes from an uncompensated causal chain).
//
// Rolling filtfilt cache: the dominant per-beat cost used to be the
// high-pass forward-backward pass over segment + 2*ctxN samples, where
// consecutive beats' windows overlap by almost the full context — the
// same samples were forward-filtered again for every beat. The default
// mode instead runs the high-pass *forward* pass exactly once per
// sample, as a persistent causal stream (zi-primed at the stream start,
// the same steady-state initialization filtfilt uses), and caches its
// output in the history ring. Per beat only the *backward* pass remains,
// over [segLo-guard, segHi+ctxN): its transient enters at the right
// edge and dies inside the trailing context, so the segment interior
// matches; the leading context is not needed at all, because the cached
// forward pass has no left-edge transient. The result is the same
// zero-phase |H|^2 conditioning at roughly a third of the
// biquad-samples per beat. SetLegacyRefilter restores the windowed
// per-beat filtfilt for A/B comparison.
type Delineator struct {
	cfg    DetectConfig
	lp, hp dsp.SOS
	align  int
	ctxN   int
	legacy bool           // windowed per-beat hp filtfilt instead of the rolling cache
	fwd    *dsp.SOSStream // persistent causal hp forward pass (rolling mode)
	pad    int            // filtfilt's reflect-pad length for hp
	warmed bool           // forward pass started (reflected prefix consumed)
	warm   []float64      // samples buffered before the forward pass starts

	icg     *dsp.Ring // raw -dZ/dt, or its cached hp-forward pass in rolling mode
	arena   dsp.Arena // per-beat refiltering scratch
	pushBuf []float64 // forward-pass input scratch per push, reused
	fltBuf  []float64 // forward-pass output scratch per push, reused
	lastR   int       // previous confirmed R peak (ECG clock), -1 before the first
	queue   []beatJob // R pairs waiting for their ICG samples
}

type beatJob struct {
	rLo, rHi int
}

// NewDelineator builds a delineator. lp and hp (either may be nil) are
// the pre-designed conditioning cascades applied zero-phase per beat;
// ctxSeconds is the transient-settling context on each side of the
// segment. maxBeatSeconds bounds the longest analyzable RR interval;
// longer "beats" are reported as failures rather than stalling the
// queue.
func NewDelineator(cfg DetectConfig, lp, hp dsp.SOS, align int, ctxSeconds, maxBeatSeconds float64) *Delineator {
	fs := cfg.FS
	if fs <= 0 {
		fs = 250
	}
	if maxBeatSeconds <= 0 {
		maxBeatSeconds = 3
	}
	if ctxSeconds < 0 {
		ctxSeconds = 0
	}
	ctxN := 0
	if lp != nil || hp != nil {
		ctxN = int(ctxSeconds * fs)
	}
	n := int(maxBeatSeconds*fs) + 2*ctxN + align + 2
	d := &Delineator{
		cfg:   cfg,
		lp:    lp,
		hp:    hp,
		align: align,
		ctxN:  ctxN,
		icg:   dsp.NewRing(n),
		lastR: -1,
	}
	if hp != nil {
		d.fwd = dsp.NewSOSStream(hp, 0, true)
		d.pad = 3 * (2*len(hp) + 1) // FiltFilt's reflect-pad formula
	}
	return d
}

// SetLegacyRefilter selects the windowed per-beat high-pass filtfilt
// (the pre-cache engine) instead of the rolling forward-pass cache. It
// must be called before the first PushICG: the two modes store different
// signals in the history ring.
func (d *Delineator) SetLegacyRefilter(on bool) { d.legacy = on }

// rolling reports whether the forward-pass cache is active.
func (d *Delineator) rolling() bool { return d.hp != nil && !d.legacy }

// Lookahead returns how many ICG samples past a beat's closing R peak
// must arrive before the beat can be analyzed (the refiltering context).
func (d *Delineator) Lookahead() int { return d.ctxN }

// PushICG appends newly streamed ICG samples (on the filter-output
// clock) and returns the beats they complete, appended to out. In
// rolling mode each sample passes through the persistent high-pass
// forward filter exactly once here, and the ring caches the result.
func (d *Delineator) PushICG(out []BeatAnalysis, x []float64) []BeatAnalysis {
	if d.rolling() {
		d.pushRolling(x, false)
	} else {
		d.icg.Append(x)
	}
	return d.drain(out, false)
}

// pushRolling feeds samples through the persistent forward filter into
// the ring. The first pad+1 samples are buffered so the filter can start
// on an odd-reflected prefix of the stream head — the same left-edge
// treatment, zi priming and therefore the same startup transient as the
// batch filtfilt forward pass; the cached forward signal then matches
// the batch one over the whole session, not just in steady state. last
// clamps the pad for a sub-pad-length session the way FiltFilt clamps
// on short inputs.
func (d *Delineator) pushRolling(x []float64, last bool) {
	if d.warmed {
		if len(x) > 0 {
			d.fltBuf = d.fwd.Push(d.fltBuf[:0], x)
			d.icg.Append(d.fltBuf)
		}
		return
	}
	d.warm = append(d.warm, x...)
	if len(d.warm) == 0 {
		return
	}
	pad := d.pad
	if last && pad >= len(d.warm) {
		pad = len(d.warm) - 1
	}
	if pad >= len(d.warm) {
		return // still buffering the reflected prefix
	}
	d.pushBuf = d.pushBuf[:0]
	for i := pad; i >= 1; i-- {
		d.pushBuf = append(d.pushBuf, 2*d.warm[0]-d.warm[i])
	}
	d.pushBuf = append(d.pushBuf, d.warm...)
	d.fltBuf = d.fwd.Push(d.fltBuf[:0], d.pushBuf)
	d.icg.Append(d.fltBuf[pad:])
	d.warmed = true
	d.warm = d.warm[:0]
}

// PushR registers the next confirmed R peak (ECG clock) and returns any
// beats it completes, appended to out. R peaks must arrive in strictly
// increasing order; a non-increasing peak is ignored (defense in depth —
// the incremental QRS detector already guarantees ordering).
func (d *Delineator) PushR(out []BeatAnalysis, r int) []BeatAnalysis {
	if r <= d.lastR {
		return d.drain(out, false)
	}
	if d.lastR >= 0 {
		d.queue = append(d.queue, beatJob{rLo: d.lastR, rHi: r})
	}
	d.lastR = r
	return d.drain(out, false)
}

// Flush analyzes the queued beats against whatever ICG samples arrived
// (end of session), clamping the trailing context like the batch
// filter clamps at the recording's end.
func (d *Delineator) Flush(out []BeatAnalysis) []BeatAnalysis {
	if d.rolling() && !d.warmed {
		d.pushRolling(nil, true) // drain a sub-pad-length session's buffer
	}
	return d.drain(out, true)
}

// drain runs the detector on every queued RR pair whose aligned ICG
// samples (segment plus trailing context) are available.
func (d *Delineator) drain(out []BeatAnalysis, last bool) []BeatAnalysis {
	done := 0
	for _, j := range d.queue {
		hi := j.rHi + d.align + d.ctxN
		if hi > d.icg.N() {
			if !last {
				break
			}
			hi = d.icg.N()
		}
		segLo := j.rLo + d.align // absolute segment bounds on the ICG clock
		segHi := j.rHi + d.align
		var lo int
		if d.rolling() {
			// The cached forward pass has no left-edge transient, so the
			// window starts at the low-pass guard instead of the full
			// high-pass context.
			lo = segLo - lpGuardSamples(d.cfg.FS)
		} else {
			lo = j.rLo + d.align - d.ctxN
		}
		if lo < 0 {
			lo = 0
		}
		if segHi > hi {
			segHi = hi
		}
		if lo < d.icg.Start() || segLo >= segHi {
			// Beat longer than the history ring (or starved stream):
			// report it as unanalyzable rather than stalling the queue.
			out = append(out, BeatAnalysis{Err: ErrBeatTooShort})
			done++
			continue
		}
		d.arena.Reset()
		buf := d.icg.CopyTo(d.arena.F64(hi - lo)[:0], lo, hi)
		cond, trim := d.refilter(buf, segLo-lo, segHi-lo)
		relLo := segLo - lo - trim
		pts, err := DetectBeatWith(&d.arena, cond, relLo, segHi-lo-trim, -1, d.cfg)
		if err != nil {
			out = append(out, BeatAnalysis{Err: err})
			done++
			continue
		}
		// Morphology quality and shape signature on the conditioned
		// segment, before the points leave its clock — the same calls
		// the batch detector makes on the whole-recording conditioned
		// signal.
		ba := BeatAnalysis{Points: pts}
		ba.Quality = MorphScore(cond, pts, segHi-lo-trim, d.cfg.FS)
		ba.Shape, ba.ShapeOK = BeatShapeOf(cond, relLo, segHi-lo-trim)
		// Back onto the ECG clock: conditioned index relLo == ECG index rLo.
		off := j.rLo - relLo
		pts.R += off
		pts.B += off
		pts.C += off
		pts.X += off
		pts.X0 += off
		pts.B0 += float64(off)
		out = append(out, ba)
		done++
	}
	if done > 0 {
		d.queue = append(d.queue[:0], d.queue[done:]...)
	}
	return out
}

// refilter applies the conditioning cascades zero-phase over the
// context-padded segment (no-op when the stream is already
// conditioned). It returns the conditioned buffer and the offset of
// buf[0] within it (the low-pass runs over a trimmed sub-span).
//
// The slow filter — the band-edge high-pass, whose transients motivate
// the long context — runs first over the whole padded window; the
// low-pass's transients die within tens of milliseconds, so it runs
// over just the segment plus a short guard. The order swap relative to
// the batch lp-then-hp is exact for LTI cascades up to edge transients,
// which both contexts absorb.
func (d *Delineator) refilter(buf []float64, segLo, segHi int) ([]float64, int) {
	if d.rolling() {
		// buf already holds the cached forward pass; only the backward
		// pass remains. Its zi-primed transient enters at the right edge
		// and is absorbed by the trailing context before the segment.
		dsp.Reverse(buf)
		d.hp.FilterZiInPlace(buf)
		dsp.Reverse(buf)
	} else if d.hp != nil {
		buf = d.hp.FiltFiltWith(&d.arena, buf)
	}
	if d.lp == nil {
		return buf, 0
	}
	guard := lpGuardSamples(d.cfg.FS)
	lo := segLo - guard
	if lo < 0 {
		lo = 0
	}
	hi := segHi + guard
	if hi > len(buf) {
		hi = len(buf)
	}
	return d.lp.FiltFiltWith(&d.arena, buf[lo:hi]), lo
}

// lpGuardSamples is the low-pass settling guard (~0.3 s): dozens of
// time constants of a 20 Hz Butterworth.
func lpGuardSamples(fs float64) int {
	if fs <= 0 {
		fs = 250
	}
	return int(0.3 * fs)
}

// Pending returns how many confirmed beats are still waiting for ICG
// samples.
func (d *Delineator) Pending() int { return len(d.queue) }

// Reset returns the delineator to its initial state, keeping buffers.
func (d *Delineator) Reset() {
	d.icg.Reset()
	d.arena.Reset()
	if d.fwd != nil {
		d.fwd.Reset()
	}
	d.warmed = false
	d.warm = d.warm[:0]
	d.lastR = -1
	d.queue = d.queue[:0]
}
