package icg

import "repro/internal/dsp"

// Delineator is the incremental beat delineator: it consumes the
// streamed -dZ/dt samples and confirmed ECG R peaks as they appear, and
// runs the characteristic-point detector on each completed RR segment
// exactly once — the streaming counterpart of DetectAll, with O(beat)
// work per beat instead of re-analyzing a whole window per hop.
//
// The paper's ICG conditioning is a zero-phase Butterworth cascade,
// which no causal stream can reproduce (a one-pass causal filter has
// |H| instead of |H|^2 and a dispersive phase that visibly moves the B
// and X points). The delineator therefore applies the cascade
// forward-backward over each beat segment plus a bounded context on
// both sides: the cascade's transients decay well inside the context,
// so the segment interior matches the batch whole-recording filtfilt,
// while the cost stays O(beat + context) per beat. Pass nil filters to
// skip refiltering (the causal-ablation chain conditions the stream
// itself, sample for sample equal to its batch form).
//
// align shifts the ICG clock: the delineator treats ICG sample r+align
// as simultaneous with ECG sample r (non-zero only when the stream
// comes from an uncompensated causal chain).
type Delineator struct {
	cfg    DetectConfig
	lp, hp dsp.SOS
	align  int
	ctxN   int

	icg   *dsp.Ring
	arena dsp.Arena // per-beat refiltering scratch
	lastR int       // previous confirmed R peak (ECG clock), -1 before the first
	queue []beatJob // R pairs waiting for their ICG samples
}

type beatJob struct {
	rLo, rHi int
}

// NewDelineator builds a delineator. lp and hp (either may be nil) are
// the pre-designed conditioning cascades applied zero-phase per beat;
// ctxSeconds is the transient-settling context on each side of the
// segment. maxBeatSeconds bounds the longest analyzable RR interval;
// longer "beats" are reported as failures rather than stalling the
// queue.
func NewDelineator(cfg DetectConfig, lp, hp dsp.SOS, align int, ctxSeconds, maxBeatSeconds float64) *Delineator {
	fs := cfg.FS
	if fs <= 0 {
		fs = 250
	}
	if maxBeatSeconds <= 0 {
		maxBeatSeconds = 3
	}
	if ctxSeconds < 0 {
		ctxSeconds = 0
	}
	ctxN := 0
	if lp != nil || hp != nil {
		ctxN = int(ctxSeconds * fs)
	}
	n := int(maxBeatSeconds*fs) + 2*ctxN + align + 2
	return &Delineator{
		cfg:   cfg,
		lp:    lp,
		hp:    hp,
		align: align,
		ctxN:  ctxN,
		icg:   dsp.NewRing(n),
		lastR: -1,
	}
}

// Lookahead returns how many ICG samples past a beat's closing R peak
// must arrive before the beat can be analyzed (the refiltering context).
func (d *Delineator) Lookahead() int { return d.ctxN }

// PushICG appends newly streamed ICG samples (on the filter-output
// clock) and returns the beats they complete, appended to out.
func (d *Delineator) PushICG(out []BeatAnalysis, x []float64) []BeatAnalysis {
	d.icg.Append(x)
	return d.drain(out, false)
}

// PushR registers the next confirmed R peak (ECG clock) and returns any
// beats it completes, appended to out. R peaks must arrive in strictly
// increasing order; a non-increasing peak is ignored (defense in depth —
// the incremental QRS detector already guarantees ordering).
func (d *Delineator) PushR(out []BeatAnalysis, r int) []BeatAnalysis {
	if r <= d.lastR {
		return d.drain(out, false)
	}
	if d.lastR >= 0 {
		d.queue = append(d.queue, beatJob{rLo: d.lastR, rHi: r})
	}
	d.lastR = r
	return d.drain(out, false)
}

// Flush analyzes the queued beats against whatever ICG samples arrived
// (end of session), clamping the trailing context like the batch
// filter clamps at the recording's end.
func (d *Delineator) Flush(out []BeatAnalysis) []BeatAnalysis {
	return d.drain(out, true)
}

// drain runs the detector on every queued RR pair whose aligned ICG
// samples (segment plus trailing context) are available.
func (d *Delineator) drain(out []BeatAnalysis, last bool) []BeatAnalysis {
	done := 0
	for _, j := range d.queue {
		hi := j.rHi + d.align + d.ctxN
		if hi > d.icg.N() {
			if !last {
				break
			}
			hi = d.icg.N()
		}
		lo := j.rLo + d.align - d.ctxN
		if lo < 0 {
			lo = 0
		}
		segLo := j.rLo + d.align // absolute segment bounds on the ICG clock
		segHi := j.rHi + d.align
		if segHi > hi {
			segHi = hi
		}
		if lo < d.icg.Start() || segLo >= segHi {
			// Beat longer than the history ring (or starved stream):
			// report it as unanalyzable rather than stalling the queue.
			out = append(out, BeatAnalysis{Err: ErrBeatTooShort})
			done++
			continue
		}
		d.arena.Reset()
		buf := d.icg.CopyTo(d.arena.F64(hi - lo)[:0], lo, hi)
		cond, trim := d.refilter(buf, segLo-lo, segHi-lo)
		relLo := segLo - lo - trim
		pts, err := DetectBeatWith(&d.arena, cond, relLo, segHi-lo-trim, -1, d.cfg)
		if err != nil {
			out = append(out, BeatAnalysis{Err: err})
			done++
			continue
		}
		// Morphology quality and shape signature on the conditioned
		// segment, before the points leave its clock — the same calls
		// the batch detector makes on the whole-recording conditioned
		// signal.
		ba := BeatAnalysis{Points: pts}
		ba.Quality = MorphScore(cond, pts, segHi-lo-trim, d.cfg.FS)
		ba.Shape, ba.ShapeOK = BeatShapeOf(cond, relLo, segHi-lo-trim)
		// Back onto the ECG clock: conditioned index relLo == ECG index rLo.
		off := j.rLo - relLo
		pts.R += off
		pts.B += off
		pts.C += off
		pts.X += off
		pts.X0 += off
		pts.B0 += float64(off)
		out = append(out, ba)
		done++
	}
	if done > 0 {
		d.queue = append(d.queue[:0], d.queue[done:]...)
	}
	return out
}

// refilter applies the conditioning cascades zero-phase over the
// context-padded segment (no-op when the stream is already
// conditioned). It returns the conditioned buffer and the offset of
// buf[0] within it (the low-pass runs over a trimmed sub-span).
//
// The slow filter — the band-edge high-pass, whose transients motivate
// the long context — runs first over the whole padded window; the
// low-pass's transients die within tens of milliseconds, so it runs
// over just the segment plus a short guard. The order swap relative to
// the batch lp-then-hp is exact for LTI cascades up to edge transients,
// which both contexts absorb.
func (d *Delineator) refilter(buf []float64, segLo, segHi int) ([]float64, int) {
	if d.hp != nil {
		buf = d.hp.FiltFiltWith(&d.arena, buf)
	}
	if d.lp == nil {
		return buf, 0
	}
	guard := lpGuardSamples(d.cfg.FS)
	lo := segLo - guard
	if lo < 0 {
		lo = 0
	}
	hi := segHi + guard
	if hi > len(buf) {
		hi = len(buf)
	}
	return d.lp.FiltFiltWith(&d.arena, buf[lo:hi]), lo
}

// lpGuardSamples is the low-pass settling guard (~0.3 s): dozens of
// time constants of a 20 Hz Butterworth.
func lpGuardSamples(fs float64) int {
	if fs <= 0 {
		fs = 250
	}
	return int(0.3 * fs)
}

// Pending returns how many confirmed beats are still waiting for ICG
// samples.
func (d *Delineator) Pending() int { return len(d.queue) }

// Reset returns the delineator to its initial state, keeping buffers.
func (d *Delineator) Reset() {
	d.icg.Reset()
	d.arena.Reset()
	d.lastR = -1
	d.queue = d.queue[:0]
}
