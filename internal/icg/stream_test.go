package icg

import (
	"math"
	"testing"
)

// synthICG builds a clean-ish -dZ/dt beat train with known R anchors.
func synthICG(nBeats int, fs float64) (sig []float64, rPeaks []int) {
	period := int(0.8 * fs)
	n := (nBeats + 1) * period
	sig = make([]float64, n)
	for b := 0; b <= nBeats; b++ {
		r := b * period
		rPeaks = append(rPeaks, r)
		// Systolic wave: B at ~r+0.05s, C peak at ~r+0.15s, X trough at
		// ~r+0.35s, shaped by two Gaussians.
		for i := 0; i < period && r+i < n; i++ {
			t := float64(i) / fs
			c := math.Exp(-(t - 0.15) * (t - 0.15) / (2 * 0.03 * 0.03))
			x := -0.35 * math.Exp(-(t-0.35)*(t-0.35)/(2*0.02*0.02))
			sig[r+i] += 1.2*c + x
		}
	}
	rPeaks = rPeaks[:nBeats]
	return sig, rPeaks
}

func TestDelineatorMatchesDetectAll(t *testing.T) {
	fs := 250.0
	sig, rPeaks := synthICG(20, fs)
	cfg := DefaultDetect(fs)
	want := DetectAll(sig, rPeaks, nil, cfg)

	// R peaks are delivered as their sample time passes, so the chunk
	// size also bounds how far the ICG stream runs ahead of the R
	// stream; keep it inside the delineator's 3 s history ring (the
	// overlong-beat test covers the starved case).
	for _, chunk := range []int{1, 7, 250, 600} {
		d := NewDelineator(cfg, nil, nil, 0, 0, 3)
		var got []BeatAnalysis
		pos := 0
		nextR := 0
		for pos < len(sig) {
			end := pos + chunk
			if end > len(sig) {
				end = len(sig)
			}
			got = d.PushICG(got, sig[pos:end])
			pos = end
			// Deliver R peaks as soon as their sample time has passed,
			// like the QRS detector would.
			for nextR < len(rPeaks) && rPeaks[nextR] < pos {
				got = d.PushR(got, rPeaks[nextR])
				nextR++
			}
		}
		got = d.Flush(got)
		if len(got) != len(want) {
			t.Fatalf("chunk %d: %d beats, want %d", chunk, len(got), len(want))
		}
		for i := range want {
			w, g := want[i], got[i]
			if (w.Err == nil) != (g.Err == nil) {
				t.Fatalf("chunk %d beat %d: err %v vs %v", chunk, i, g.Err, w.Err)
			}
			if w.Err != nil {
				continue
			}
			if g.Points.B != w.Points.B || g.Points.C != w.Points.C || g.Points.X != w.Points.X {
				t.Errorf("chunk %d beat %d: B/C/X %d/%d/%d vs %d/%d/%d",
					chunk, i, g.Points.B, g.Points.C, g.Points.X,
					w.Points.B, w.Points.C, w.Points.X)
			}
		}
	}
}

func TestDelineatorAlignmentShift(t *testing.T) {
	fs := 250.0
	sig, rPeaks := synthICG(10, fs)
	cfg := DefaultDetect(fs)
	want := DetectAll(sig, rPeaks, nil, cfg)

	// Delay the ICG stream by a fake group delay; with align set the
	// results must come back on the original clock.
	shift := 7
	delayed := make([]float64, len(sig)+shift)
	copy(delayed[shift:], sig)
	d := NewDelineator(cfg, nil, nil, shift, 0, 3)
	var got []BeatAnalysis
	got = d.PushICG(got, delayed)
	for _, r := range rPeaks {
		got = d.PushR(got, r)
	}
	got = d.Flush(got)
	if len(got) != len(want) {
		t.Fatalf("%d beats, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].Err != nil || got[i].Err != nil {
			continue
		}
		if got[i].Points.C != want[i].Points.C {
			t.Errorf("beat %d: C %d vs %d", i, got[i].Points.C, want[i].Points.C)
		}
	}
}

func TestDelineatorOverlongBeatDoesNotStall(t *testing.T) {
	fs := 250.0
	cfg := DefaultDetect(fs)
	d := NewDelineator(cfg, nil, nil, 0, 0, 2) // 2 s ring
	long := make([]float64, int(10*fs))
	var got []BeatAnalysis
	got = d.PushICG(got, long)
	got = d.PushR(got, 0)
	got = d.PushR(got, int(8*fs)) // 8 s "beat" exceeds the ring
	got = d.PushR(got, int(8.8*fs))
	got = d.Flush(got)
	if len(got) != 2 {
		t.Fatalf("%d beats reported, want 2", len(got))
	}
	if got[0].Err == nil {
		t.Error("overlong beat should fail, not stall")
	}
	if d.Pending() != 0 {
		t.Errorf("%d beats still pending", d.Pending())
	}
}

func TestDelineatorReset(t *testing.T) {
	fs := 250.0
	sig, rPeaks := synthICG(8, fs)
	cfg := DefaultDetect(fs)
	d := NewDelineator(cfg, nil, nil, 0, 0, 3)
	run := func() []BeatAnalysis {
		var got []BeatAnalysis
		got = d.PushICG(got, sig)
		for _, r := range rPeaks {
			got = d.PushR(got, r)
		}
		return d.Flush(got)
	}
	first := run()
	d.Reset()
	second := run()
	if len(first) != len(second) {
		t.Fatalf("Reset changes beat count: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if (first[i].Err == nil) != (second[i].Err == nil) {
			t.Fatalf("beat %d differs after Reset", i)
		}
		if first[i].Err == nil && first[i].Points.C != second[i].Points.C {
			t.Fatalf("beat %d C differs after Reset", i)
		}
	}
}

// Per-beat zero-phase refiltering with bounded context must agree with
// conditioning the whole recording at once (the batch path), away from
// the recording edges.
func TestDelineatorRefilterMatchesWholeRecording(t *testing.T) {
	fs := 250.0
	sig, rPeaks := synthICG(24, fs)
	// Add band-limited wiggle so the filters have work to do.
	for i := range sig {
		sig[i] += 0.08*math.Sin(2*math.Pi*27*float64(i)/fs) +
			0.2*math.Sin(2*math.Pi*0.28*float64(i)/fs)
	}
	lp, hp, err := DefaultFilter(fs).Design()
	if err != nil {
		t.Fatal(err)
	}
	whole := ApplyDesigned(nil, lp, hp, sig)
	cfg := DefaultDetect(fs)
	want := DetectAll(whole, rPeaks, nil, cfg)

	d := NewDelineator(cfg, lp, hp, 0, 1.0, 3)
	var got []BeatAnalysis
	pos, nextR := 0, 0
	for pos < len(sig) {
		end := pos + 125
		if end > len(sig) {
			end = len(sig)
		}
		got = d.PushICG(got, sig[pos:end])
		pos = end
		for nextR < len(rPeaks) && rPeaks[nextR] < pos {
			got = d.PushR(got, rPeaks[nextR])
			nextR++
		}
	}
	got = d.Flush(got)
	if len(got) != len(want) {
		t.Fatalf("%d beats, want %d", len(got), len(want))
	}
	okErr, close := 0, 0
	for i := range want {
		if (want[i].Err == nil) == (got[i].Err == nil) {
			okErr++
		}
		if want[i].Err != nil || got[i].Err != nil {
			continue
		}
		db := got[i].Points.B - want[i].Points.B
		dx := got[i].Points.X - want[i].Points.X
		if db >= -2 && db <= 2 && dx >= -2 && dx <= 2 {
			close++
		}
	}
	if okErr < len(want)-1 {
		t.Errorf("success/failure pattern differs on %d beats", len(want)-okErr)
	}
	if close < len(want)-2 {
		t.Errorf("only %d/%d beats within 2 samples of batch", close, len(want))
	}
}
