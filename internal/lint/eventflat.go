package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// EventFlat pins the event contract's representation law: every type
// that reaches the WAL codec — event.Event and everything it embeds by
// value, transitively and across packages — must stay a flat,
// pointer-free, fixed-size struct. The wal codec (EncodeEvent /
// DecodeEvent) is a hand-written fixed-width bijection over exactly
// that shape; a slice, string, map, pointer, interface, channel or
// function field would compile cleanly and silently break both the
// codec and the zero-allocation ring sinks.
//
// Root types are declared with an `//icg:wal` marker in their doc
// comment; <module>/internal/event.Event is always a root. The check is
// structural (go/types), so renaming or wrapping a field cannot dodge
// it.
var EventFlat = &Analyzer{
	Name: "eventflat",
	Doc:  "types reaching the WAL codec must be flat, pointer-free, fixed-size structs",
	Run:  runEventFlat,
}

const walMarker = "icg:wal"

func runEventFlat(pass *Pass) {
	backstop := pass.ModPath + "/internal/event.Event"
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				marked := hasMarker(gd.Doc, walMarker) || hasMarker(ts.Doc, walMarker) || hasMarker(ts.Comment, walMarker)
				if !marked && typeName(obj.Type()) != backstop {
					continue
				}
				seen := make(map[*types.Named]bool)
				checkFlat(pass, obj.Name(), "", ts.Pos(), obj.Type(), seen)
			}
		}
	}
}

func hasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == marker {
			return true
		}
	}
	return false
}

// checkFlat walks the value representation of t, reporting every
// non-flat component at the declaration of the offending field (which
// may live in another package — positions stay valid because the whole
// module is loaded into one FileSet). pos anchors findings for
// components that have no own declaration, e.g. array elements.
func checkFlat(pass *Pass, root, path string, pos token.Pos, t types.Type, seen map[*types.Named]bool) {
	if bad := flatViolation(t); bad != "" {
		name := path
		if name == "" {
			name = root
		}
		pass.Reportf(pos,
			"%s reaches the WAL codec but field %s is %s: wal codec types must stay flat, pointer-free and fixed-size (see internal/wal/codec.go)",
			root, name, bad)
		return
	}
	if n, ok := t.(*types.Named); ok {
		if seen[n] {
			return
		}
		seen[n] = true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			fpath := f.Name()
			if path != "" {
				fpath = path + "." + f.Name()
			}
			checkFlat(pass, root, fpath, f.Pos(), f.Type(), seen)
		}
	case *types.Array:
		checkFlat(pass, root, path+"[...]", pos, u.Elem(), seen)
	}
}

// flatViolation names the representation problem of a field type, or
// returns "" when the type is flat at this level (containers of the
// type are still descended into separately).
func flatViolation(t types.Type) string {
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return fmt.Sprintf("a pointer (%s)", types.TypeString(t, nil))
	case *types.Slice:
		return fmt.Sprintf("a slice (%s)", types.TypeString(t, nil))
	case *types.Map:
		return fmt.Sprintf("a map (%s)", types.TypeString(t, nil))
	case *types.Chan:
		return fmt.Sprintf("a channel (%s)", types.TypeString(t, nil))
	case *types.Signature:
		return fmt.Sprintf("a function (%s)", types.TypeString(t, nil))
	case *types.Interface:
		return fmt.Sprintf("an interface (%s)", types.TypeString(t, nil))
	case *types.Basic:
		switch {
		case u.Info()&types.IsString != 0:
			return "a string (variable-size, pointer-backed)"
		case u.Kind() == types.UnsafePointer:
			return "an unsafe.Pointer"
		case u.Kind() == types.Uintptr:
			return "a uintptr (address-carrying)"
		case u.Kind() == types.Int || u.Kind() == types.Uint:
			// Platform-width ints are tolerated: the codec pins them to
			// 64-bit on the wire (see EncodeEvent), which every
			// supported platform round-trips.
			return ""
		}
	}
	return ""
}
