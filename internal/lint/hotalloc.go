package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc pins the perf-hygiene convention: the arena/dst function
// families (`*With(a *dsp.Arena, ...)`, `*To(dst, ...)`) and anything
// annotated `//icg:hotpath` are the zero-allocation hot paths whose
// alloc budgets CI enforces after the fact; this analyzer rejects the
// allocation sources at review time instead. Inside a hot function:
//
//   - no fmt calls (every fmt call allocates and boxes),
//   - no `new`, and no `make`, outside the sanctioned idioms — the
//     arena-nil heap fallback (a branch of an `if` whose condition
//     mentions the *Arena parameter), cap-guarded amortized growth (a
//     branch of an `if` whose condition calls cap or len), and
//     retained results (an allocation the function returns: callers
//     keep it, so it must be heap memory, never arena scratch),
//   - no append to a slice variable born nil in this function (`var x
//     []T` then append guarantees a heap grow per call — take a dst or
//     draw from the arena),
//   - no closures that capture locals (an escaping capture allocates
//     the closure and the variable),
//   - no explicit conversions of concrete values to interface types
//     (boxing allocates).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "hot-path functions (*With/*To, //icg:hotpath) must not introduce allocation sources",
	Run:  runHotAlloc,
}

const hotMarker = "icg:hotpath"

func runHotAlloc(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !isHotFunc(pass, fn) {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
}

// isHotFunc reports whether fn is bound by the hot-path convention: an
// explicit //icg:hotpath annotation, or the *With/*To naming hygiene
// backed by its signature (an *Arena parameter or a dst parameter —
// a name suffix alone is not enough, so e.g. session.finishWith, which
// takes neither, is not conscripted).
func isHotFunc(pass *Pass, fn *ast.FuncDecl) bool {
	if hasMarker(fn.Doc, hotMarker) {
		return true
	}
	name := fn.Name.Name
	if !strings.HasSuffix(name, "With") && !strings.HasSuffix(name, "To") {
		return false
	}
	for _, field := range fn.Type.Params.List {
		for _, pname := range field.Names {
			if pname.Name == "dst" {
				return true
			}
		}
		if tv, ok := pass.Info.Types[field.Type]; ok {
			if ptr, ok := tv.Type.(*types.Pointer); ok {
				if n, ok := ptr.Elem().(*types.Named); ok && n.Obj().Name() == "Arena" {
					return true
				}
			}
		}
	}
	return false
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	freshNil := freshNilSlices(pass, fn)
	retained := retainedAllocs(pass, fn)
	var walk func(n ast.Node, guarded bool)
	inspect := func(n ast.Node, guarded bool) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			g := guarded || guardsAllocation(pass, n.Cond)
			if n.Init != nil {
				walk(n.Init, guarded)
			}
			walk(n.Cond, guarded)
			walk(n.Body, g)
			if n.Else != nil {
				walk(n.Else, g)
			}
			return false
		case *ast.CallExpr:
			checkHotCall(pass, fn, n, guarded, freshNil, retained)
		case *ast.FuncLit:
			if capt := captured(pass, fn, n); capt != "" {
				pass.Reportf(n.Pos(),
					"closure capturing %q in hot function %s: escaping captures allocate — pass state explicitly or hoist the function",
					capt, fn.Name.Name)
			}
		case *ast.SelectorExpr:
			if obj, ok := pass.Info.Uses[n.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
				pass.Reportf(n.Pos(),
					"fmt.%s in hot function %s: fmt formats through reflection and boxes every operand — hot paths must not call fmt",
					obj.Name(), fn.Name.Name)
			}
		}
		return true
	}
	walk = func(n ast.Node, guarded bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil {
				return false
			}
			return inspect(m, guarded)
		})
	}
	walk(fn.Body, false)
}

func checkHotCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr, guarded bool, freshNil map[types.Object]bool, retained map[*ast.CallExpr]bool) {
	// Explicit conversion to an interface type: boxing.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface && len(call.Args) == 1 {
			if atv, ok := pass.Info.Types[call.Args[0]]; ok {
				if _, argIface := atv.Type.Underlying().(*types.Interface); !argIface {
					pass.Reportf(call.Pos(),
						"conversion to interface %s in hot function %s: boxing a concrete value allocates",
						types.TypeString(tv.Type, nil), fn.Name.Name)
				}
			}
		}
		return
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return
	}
	if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
		switch b.Name() {
		case "make":
			if !guarded && !retained[call] {
				pass.Reportf(call.Pos(),
					"make in hot function %s outside the sanctioned idioms: draw scratch from the arena, or guard the allocation with the arena-nil fallback / cap-growth check",
					fn.Name.Name)
			}
		case "new":
			if !retained[call] {
				pass.Reportf(call.Pos(),
					"new in hot function %s: hot paths allocate scratch through the arena or caller-provided dst, never new",
					fn.Name.Name)
			}
		case "append":
			if len(call.Args) == 0 {
				return
			}
			if aid, ok := call.Args[0].(*ast.Ident); ok {
				if obj := pass.Info.Uses[aid]; obj != nil && freshNil[obj] {
					pass.Reportf(call.Pos(),
						"append to %s, which is born nil in hot function %s: every call re-grows from zero — append into a caller-provided dst or preallocate with known cap",
						aid.Name, fn.Name.Name)
				}
			}
		}
	}
}

// guardsAllocation reports whether an if-condition sanctions allocation
// beneath it: it mentions an *Arena value (the documented heap fallback
// for a nil arena) or measures cap/len (amortized growth).
func guardsAllocation(pass *Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if tv, ok := pass.Info.Types[n]; ok {
				if ptr, ok := tv.Type.(*types.Pointer); ok {
					if nm, ok := ptr.Elem().(*types.Named); ok && nm.Obj().Name() == "Arena" {
						found = true
					}
				}
			}
			if b, ok := pass.Info.Uses[n].(*types.Builtin); ok && (b.Name() == "cap" || b.Name() == "len") {
				found = true
			}
		}
		return !found
	})
	return found
}

// retainedAllocs collects the make/new call expressions whose result
// the function returns — directly (`return make(...)`) or through a
// variable that reaches a return statement (plain, sliced or
// address-taken). A retained result is the one thing a hot function
// must NOT draw from the arena (the arena is reused scratch), so heap
// allocation there is the convention, not a violation.
func retainedAllocs(pass *Pass, fn *ast.FuncDecl) map[*ast.CallExpr]bool {
	returned := make(map[types.Object]bool)
	// Named results are retained by definition.
	if fn.Type.Results != nil {
		for _, f := range fn.Type.Results.List {
			for _, n := range f.Names {
				if obj := pass.Info.Defs[n]; obj != nil {
					returned[obj] = true
				}
			}
		}
	}
	mark := func(e ast.Expr) {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[e]; obj != nil {
				returned[obj] = true
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						returned[obj] = true
					}
				}
			}
		case *ast.SliceExpr:
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					returned[obj] = true
				}
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A return inside a literal returns from the literal, not
			// from fn.
			return false
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				mark(r)
			}
		}
		return true
	})
	// Fixed point over field stores: a value assigned into a field (or
	// element) of a retained object is itself retained — the
	// `res.RPeaks = qrs; return res` shape.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				base := baseIdent(ast.Unparen(lhs))
				if base == nil || ast.Unparen(lhs) == ast.Expr(base) {
					continue // plain ident stores are handled by mark
				}
				if obj := pass.Info.Uses[base]; obj == nil || !returned[obj] {
					continue
				}
				if id, ok := ast.Unparen(as.Rhs[i]).(*ast.Ident); ok {
					if o := pass.Info.Uses[id]; o != nil && !returned[o] {
						returned[o] = true
						changed = true
					}
				}
			}
			return true
		})
	}

	out := make(map[*ast.CallExpr]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj != nil && returned[obj] {
					out[call] = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
					out[call] = true
				}
			}
		}
		return true
	})
	return out
}

// baseIdent walks selector/index/star/paren chains down to the root
// identifier (nil when the expression is not rooted in one).
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// freshNilSlices collects the function's `var x []T` declarations: the
// locals guaranteed to start nil, so appending to them allocates.
func freshNilSlices(pass *Pass, fn *ast.FuncDecl) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		decl, ok := n.(*ast.DeclStmt)
		if !ok {
			return true
		}
		gd, ok := decl.Decl.(*ast.GenDecl)
		if !ok {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) != 0 {
				continue
			}
			for _, name := range vs.Names {
				obj := pass.Info.Defs[name]
				if obj == nil {
					continue
				}
				if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
					fresh[obj] = true
				}
			}
		}
		return true
	})
	return fresh
}

// captured returns the name of a local of the enclosing function that
// the func literal closes over ("" when it captures nothing).
func captured(pass *Pass, fn *ast.FuncDecl, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Pos() >= fn.Pos() && obj.Pos() < fn.End() &&
			!(obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()) {
			name = id.Name
		}
		return true
	})
	return name
}
