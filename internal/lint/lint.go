// Package lint is the repo's static-enforcement layer: a suite of
// analyzers that pin the conventions in ROADMAP.md ("Pinned
// conventions") at compile-review time instead of minutes later in a
// fuzzer or an alloc budget. Each analyzer encodes one law:
//
//   - eventflat: types reaching the WAL codec (event.Event and
//     everything it embeds by value) stay flat, pointer-free and
//     fixed-size, so the canonical byte codec stays a bijection.
//   - nodeterm: the determinism-law package set (session, core, dsp,
//     quality, wal) may not read the wall clock, use the global
//     math/rand source, or emit output ordered by a map iteration.
//   - hotalloc: `*With(arena)` / `*To(dst)` functions and
//     `//icg:hotpath`-annotated functions may not allocate outside the
//     sanctioned idioms (arena-nil heap fallback, cap-guarded amortized
//     growth), call fmt, build closures over locals, or box values into
//     interfaces.
//   - sinksafe: event.Sink implementations are non-blocking — no bare
//     channel operations, no I/O, no sleeping, and no dynamic callback
//     invoked while a sync lock is held.
//   - stagepure: core.Stage implementations are immutable — methods
//     never write the stage's own fields; mutable state belongs in the
//     StageStream.
//   - unsafeguard: the `unsafe` package is importable only from an
//     explicit safelist of files whose aliasing invariants are
//     documented in place.
//
// The suite is a deliberate, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis shape (Analyzer/Pass/Diagnostic, an
// analysistest-style fixture harness in linttest, and a go vet
// -vettool driver in cmd/icglint): the build environment pins the repo
// to the standard library, so the framework is vendored in spirit, not
// in bytes. Findings are suppressed line-by-line with
//
//	//icg:allow <analyzer>[,<analyzer>...] -- <reason>
//
// where the reason is mandatory and surfaced in the CI summary; an
// allow that suppresses nothing is itself a finding, so the safelist
// can only shrink.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static check: a name (the suppression key), a doc
// string, and a Run function invoked once per package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one package's syntax and type information to an
// analyzer, mirroring golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package's parsed syntax, non-test files only: the
	// pinned laws govern production code (tests exercise wall clocks
	// and ad-hoc allocation legitimately).
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// ModPath and ModRoot describe the enclosing module ("" when
	// analyzing a fixture tree).
	ModPath string
	ModRoot string
	report  func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one raw finding, before suppression filtering.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a resolved diagnostic: position flattened to
// file/line/column and stamped with the analyzer that produced it.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the conventional file:line:col: analyzer: message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzers returns the full suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		EventFlat,
		NoDeterm,
		HotAlloc,
		SinkSafe,
		StagePure,
		UnsafeGuard,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// typeName returns the fully qualified name of a named type or "" for
// unnamed types; the analyzers use it to anchor checks on well-known
// contract types without importing their packages.
func typeName(t types.Type) string {
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
