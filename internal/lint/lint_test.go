package lint_test

import (
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func fixtureRoot(t *testing.T) string {
	t.Helper()
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Join(filepath.Dir(self), "testdata", "src")
}

func TestEventFlat(t *testing.T) {
	linttest.Run(t, fixtureRoot(t), "eventflat", lint.EventFlat)
}

func TestNoDeterm(t *testing.T) {
	linttest.Run(t, fixtureRoot(t), "nodeterm", lint.NoDeterm)
}

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, fixtureRoot(t), "hotalloc", lint.HotAlloc)
}

func TestSinkSafe(t *testing.T) {
	linttest.Run(t, fixtureRoot(t), "sinksafe", lint.SinkSafe)
}

func TestStagePure(t *testing.T) {
	linttest.Run(t, fixtureRoot(t), "stagepure", lint.StagePure)
}

func TestUnsafeGuard(t *testing.T) {
	linttest.Run(t, fixtureRoot(t), "unsafeguard", lint.UnsafeGuard)
}

// TestSuiteNames pins the analyzer names: they are the suppression
// vocabulary in //icg:allow comments and the CI summary, so a rename is
// a breaking change to every annotation in the tree.
func TestSuiteNames(t *testing.T) {
	want := []string{"eventflat", "nodeterm", "hotalloc", "sinksafe", "stagepure", "unsafeguard"}
	got := lint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d named %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc", a.Name)
		}
		if lint.ByName(want[i]) != a {
			t.Errorf("ByName(%q) does not round-trip", want[i])
		}
	}
	if lint.ByName("nope") != nil {
		t.Error("ByName of unknown name should be nil")
	}
}

// TestRepoClean is the gate itself: the full suite over the full module
// must produce zero unsuppressed findings. CI runs the icglint binary
// too, but this keeps `go test ./...` sufficient to catch a violation
// (and keeps the gate alive on machines without the vettool wired).
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	root := filepath.Join(filepath.Dir(self), "..", "..")
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	paths, err := loader.ModulePackages()
	if err != nil {
		t.Fatalf("enumerate: %v", err)
	}
	if len(paths) < 20 {
		t.Fatalf("module enumeration found only %d packages: %v", len(paths), paths)
	}
	res, err := lint.Run(loader, paths, lint.Analyzers(), true)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, te := range res.TypeErrors {
		t.Errorf("type error: %s", te)
	}
	for _, f := range res.Findings {
		t.Errorf("unsuppressed finding: %s", f)
	}
	// Every live suppression must carry its reason (collectAllows
	// enforces the syntax; this pins that the inventory survives to the
	// summary).
	for _, a := range res.Allows {
		if a.Reason == "" {
			t.Errorf("allow at %s:%d with empty reason escaped the parser", a.File, a.Line)
		}
	}
}
