// Package linttest is the fixture harness for the icglint analyzers —
// the stdlib stand-in for golang.org/x/tools/go/analysis/analysistest.
// A fixture is a package under a testdata/src root; expected findings
// are `// want "regexp"` comments on the offending line. The harness
// loads the fixture through the real loader and driver (so //icg:allow
// suppression, reason enforcement and unused-allow detection behave
// exactly as in CI), then diffs findings against the want comments.
package linttest

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

// want comments accept double-quoted or backquoted regexp patterns,
// like analysistest: // want "pattern" `pattern`
var wantRE = regexp.MustCompile("//\\s*want\\s+((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")
var wantArgRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// Run loads srcRoot/<pkg> and applies the analyzers, comparing the
// driver's output (after suppression) against the fixture's want
// comments.
func Run(t *testing.T, srcRoot, pkg string, analyzers ...*lint.Analyzer) {
	t.Helper()
	loader, err := lint.NewLoader(srcRoot)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	loader.ExtraRoot = srcRoot
	res, err := lint.Run(loader, []string{pkg}, analyzers, true)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.TypeErrors) > 0 {
		t.Fatalf("fixture %s does not type-check: %v", pkg, res.TypeErrors)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	wantSrc := make(map[key][]string)
	// Wants are collected recursively: a fixture may include
	// sub-packages (e.g. eventflat descending into an embedded struct
	// from another package) whose files carry their own want comments.
	dir := filepath.Join(srcRoot, filepath.FromSlash(pkg))
	err = filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ".go") {
			return err
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			k := key{d.Name(), i + 1}
			for _, qm := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
				pat := qm[2]
				if qm[1] != "" || qm[2] == "" {
					pat = strings.ReplaceAll(qm[1], `\"`, `"`)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", d.Name(), i+1, pat, err)
				}
				wants[k] = append(wants[k], re)
				wantSrc[k] = append(wantSrc[k], pat)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("fixture walk: %v", err)
	}

	matched := make(map[key][]bool)
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, f := range res.Findings {
		k := key{filepath.Base(f.File), f.Line}
		hit := false
		for i, re := range wants[k] {
			if !matched[k][i] && re.MatchString(f.Message) {
				matched[k][i] = true
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("unexpected finding at %s:%d: %s: %s", k.file, k.line, f.Analyzer, f.Message)
		}
	}
	for k, ms := range matched {
		for i, ok := range ms {
			if !ok {
				t.Errorf("missing finding at %s:%d: want match for %q", k.file, k.line, wantSrc[k][i])
			}
		}
	}
}
