package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the analysis unit.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checker complaints for module packages;
	// analysis still runs on the partial information, and drivers
	// decide whether to surface them.
	TypeErrors []error
}

// Loader parses and type-checks packages from source with no
// dependencies outside the standard library. Resolution order for an
// import path: the fixture tree (ExtraRoot), the enclosing module, then
// GOROOT/src. Standard-library dependencies are checked with function
// bodies ignored (declarations are all the analyzers need), module
// packages fully. One Loader shares one FileSet and one package cache,
// so type identities agree across every package it loads.
type Loader struct {
	Fset    *token.FileSet
	ModPath string
	ModRoot string
	// ExtraRoot, when set, is a directory of fixture packages (the
	// linttest "src" root) consulted before the module and GOROOT.
	ExtraRoot string

	ctx  build.Context
	pkgs map[string]*pkgEntry
}

type pkgEntry struct {
	pkg     *Package
	err     error
	loading bool
}

// NewLoader returns a loader rooted at the module containing dir (dir
// itself when no go.mod is found upward of it).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modRoot, modPath := findModule(abs)
	ctx := build.Default
	// Cgo-free file selection: the source type-checker cannot expand
	// import "C", and every package in this repo (and the std
	// declarations the analyzers need) has a pure-Go form.
	ctx.CgoEnabled = false
	return &Loader{
		Fset:    token.NewFileSet(),
		ModPath: modPath,
		ModRoot: modRoot,
		ctx:     ctx,
		pkgs:    make(map[string]*pkgEntry),
	}, nil
}

// findModule walks up from dir looking for go.mod, returning the module
// root and path ("", "" when absent).
func findModule(dir string) (root, path string) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest)
				}
			}
			return d, ""
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", ""
		}
		d = parent
	}
}

// ModulePackages enumerates the import paths of every package in the
// module (the "./..." pattern): directories under ModRoot holding at
// least one non-test Go file, skipping testdata, vendor and hidden
// trees.
func (l *Loader) ModulePackages() ([]string, error) {
	if l.ModRoot == "" {
		return nil, fmt.Errorf("lint: no module root (go.mod not found)")
	}
	var paths []string
	err := filepath.WalkDir(l.ModRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range ents {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				rel, err := filepath.Rel(l.ModRoot, p)
				if err != nil {
					return err
				}
				if rel == "." {
					paths = append(paths, l.ModPath)
				} else {
					paths = append(paths, l.ModPath+"/"+filepath.ToSlash(rel))
				}
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// Load returns the type-checked package for an import path.
func (l *Loader) Load(path string) (*Package, error) {
	if e, ok := l.pkgs[path]; ok {
		if e.loading {
			return nil, fmt.Errorf("lint: import cycle through %q", path)
		}
		return e.pkg, e.err
	}
	e := &pkgEntry{loading: true}
	l.pkgs[path] = e
	e.pkg, e.err = l.loadUncached(path)
	e.loading = false
	return e.pkg, e.err
}

// LoadFiles type-checks an explicitly listed set of files as the
// package at path (the go vet unit-config mode, where the go command
// names the files). Test files in the list are ignored.
func (l *Loader) LoadFiles(path, dir string, files []string) (*Package, error) {
	var keep []string
	for _, f := range files {
		if !strings.HasSuffix(f, "_test.go") {
			keep = append(keep, f)
		}
	}
	pkg, err := l.check(path, dir, keep, false)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = &pkgEntry{pkg: pkg}
	return pkg, nil
}

func (l *Loader) loadUncached(path string) (*Package, error) {
	if path == "unsafe" {
		return &Package{Path: path, Types: types.Unsafe}, nil
	}
	dir, std, err := l.resolve(path)
	if err != nil {
		return nil, err
	}
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	names := make([]string, 0, len(bp.GoFiles))
	for _, f := range bp.GoFiles {
		names = append(names, filepath.Join(dir, f))
	}
	return l.check(path, dir, names, std)
}

// resolve maps an import path to its source directory; std reports a
// GOROOT package.
func (l *Loader) resolve(path string) (dir string, std bool, err error) {
	if l.ExtraRoot != "" {
		d := filepath.Join(l.ExtraRoot, filepath.FromSlash(path))
		if hasGoFiles(d) {
			return d, false, nil
		}
	}
	if l.ModPath != "" {
		if path == l.ModPath {
			return l.ModRoot, false, nil
		}
		if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
			d := filepath.Join(l.ModRoot, filepath.FromSlash(rest))
			if hasGoFiles(d) {
				return d, false, nil
			}
			return "", false, fmt.Errorf("lint: no Go files in module package %q", path)
		}
	}
	d := filepath.Join(l.ctx.GOROOT, "src", filepath.FromSlash(path))
	if hasGoFiles(d) {
		return d, true, nil
	}
	// Std packages import their vendored dependencies by unprefixed path
	// (net → golang.org/x/net/dns/dnsmessage lives in GOROOT/src/vendor).
	d = filepath.Join(l.ctx.GOROOT, "src", "vendor", filepath.FromSlash(path))
	if hasGoFiles(d) {
		return d, true, nil
	}
	return "", false, fmt.Errorf("lint: cannot resolve import %q (not in fixtures, module or GOROOT)", path)
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// check parses and type-checks one package. Standard-library packages
// are checked declarations-only and without AST/Info retention; module
// and fixture packages keep full syntax, comments and type facts for
// the analyzers.
func (l *Loader) check(path, dir string, filenames []string, std bool) (*Package, error) {
	mode := parser.ParseComments
	if std {
		mode = parser.SkipObjectResolution
	}
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.Fset, name, nil, mode)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", path, err)
		}
		files = append(files, f)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files}
	var info *types.Info
	if !std {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
	}
	cfg := types.Config{
		Importer:         importerFunc(func(p string) (*types.Package, error) { return l.importTypes(p) }),
		IgnoreFuncBodies: std,
	}
	if std {
		// A std declaration that fails to check is a loader bug, not a
		// finding; fail loudly.
	} else {
		cfg.Error = func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) }
	}
	tpkg, err := cfg.Check(path, l.Fset, files, info)
	if std && err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	if std {
		pkg.Files = nil // declarations only; free the syntax
	}
	return pkg, nil
}

func (l *Loader) importTypes(path string) (*types.Package, error) {
	p, err := l.Load(path)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
