package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoDeterm pins the determinism law: inside the deterministic package
// set (internal/session, internal/core, internal/dsp, internal/quality,
// internal/wal — the packages whose per-session output must be a pure
// function of the input chunks in arrival order), code may not
//
//   - read the wall clock (time.Now / Since / Until) or arm wall-clock
//     timers (time.After / Tick / NewTimer / NewTicker / AfterFunc),
//   - draw from the global math/rand source (seeded *rand.Rand values
//     threaded explicitly are fine — they are part of the input),
//   - emit ordered output from a map iteration (append, channel send,
//     or an Emit/Write/Push/Encode call inside `for range m`): map
//     order is randomized per run, so any output it orders is
//     nondeterministic by construction. The one sanctioned shape is
//     collect-then-sort: an append whose slice is passed to a
//     sort/slices sorting call later in the same function is the remedy,
//     not the disease.
//
// Fixture packages opt in with an `//icg:deterministic` comment.
var NoDeterm = &Analyzer{
	Name: "nodeterm",
	Doc:  "deterministic packages must not read wall clocks, global rand, or map order",
	Run:  runNoDeterm,
}

const determMarker = "icg:deterministic"

// determPkgs are the module-relative package paths bound by the
// determinism law (ROADMAP "Determinism law").
var determPkgs = []string{
	"internal/session",
	"internal/core",
	"internal/dsp",
	"internal/quality",
	"internal/wal",
}

// wallClock are the time-package functions that observe or schedule
// wall time. Referencing one (not just calling it — assigning time.Now
// to a field smuggles the clock just as well) is a finding.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// globalRand are the package-level math/rand (and v2) functions backed
// by the shared global source.
var globalRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true, "Int63": true, "Int63n": true,
	"Uint32": true, "Uint64": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 spellings.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64": true, "Int64N": true,
	"Uint": true, "UintN": true, "Uint32N": true, "Uint64N": true, "Uint16": true, "Uint8": true,
}

func runNoDeterm(pass *Pass) {
	if !inDetermSet(pass) {
		return
	}
	for _, file := range pass.Files {
		// Sort calls are collected per file: a map-range append is
		// sanctioned when its slice reaches a sorting call afterwards.
		sorted := sortCallSites(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				fn, ok := pass.Info.Uses[n.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // method, e.g. (*rand.Rand).Intn: explicit source, fine
				}
				switch fn.Pkg().Path() {
				case "time":
					if wallClock[fn.Name()] {
						pass.Reportf(n.Pos(),
							"time.%s in deterministic package %s: per-session output must be a pure function of the input chunks (inject a clock at the boundary if wall time is genuinely needed)",
							fn.Name(), pass.Pkg.Path())
					}
				case "math/rand", "math/rand/v2":
					if globalRand[fn.Name()] {
						pass.Reportf(n.Pos(),
							"global %s.%s in deterministic package %s: draw from an explicitly seeded *rand.Rand threaded through the call instead",
							fn.Pkg().Name(), fn.Name(), pass.Pkg.Path())
					}
				}
			case *ast.RangeStmt:
				checkMapRange(pass, n, sorted)
			}
			return true
		})
	}
}

// sortOK is the set of sort-package functions that actually sort their
// argument (sort.Search, for one, does not).
var sortOK = map[string]bool{
	"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	"Strings": true, "Ints": true, "Float64s": true,
}

// sortCallSites maps each object passed (anywhere in an argument) to a
// sorting call from package sort or slices, to the positions of those
// calls. checkMapRange uses it to recognize the collect-then-sort idiom.
func sortCallSites(pass *Pass, file *ast.File) map[types.Object][]token.Pos {
	sites := make(map[types.Object][]token.Pos)
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort":
			if !sortOK[fn.Name()] {
				return true
			}
		case "slices":
			if !strings.HasPrefix(fn.Name(), "Sort") {
				return true
			}
		default:
			return true
		}
		for _, a := range call.Args {
			ast.Inspect(a, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						sites[obj] = append(sites[obj], call.Pos())
					}
				}
				return true
			})
		}
		return true
	})
	return sites
}

func inDetermSet(pass *Pass) bool {
	if pass.ModPath != "" {
		for _, p := range determPkgs {
			if pass.Pkg.Path() == pass.ModPath+"/"+p {
				return true
			}
		}
	}
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			if hasMarker(cg, determMarker) {
				return true
			}
		}
	}
	return false
}

// checkMapRange flags `for range m` over a map whose body produces
// ordered output. Order-insensitive bodies (sums, counts, building
// another map, deleting) pass: the law is about ordered output, not
// about touching maps. An append collecting into a slice that is sorted
// after the loop (the canonical remedy) is sanctioned.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, sorted map[types.Object][]token.Pos) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send inside a map range: map iteration order is randomized, so the receiver observes a nondeterministic sequence — iterate sorted keys instead")
			return true
		case *ast.CallExpr:
			name := calleeName(n)
			switch {
			case name == "append":
				if len(n.Args) > 0 {
					if id, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
						if obj := pass.Info.Uses[id]; obj != nil {
							for _, p := range sorted[obj] {
								if p > rng.End() {
									return true // collect-then-sort idiom
								}
							}
						}
					}
				}
				pass.Reportf(n.Pos(),
					"append inside a map range: map iteration order is randomized, so the slice order is nondeterministic — collect then sort, or iterate sorted keys")
			case strings.HasPrefix(name, "Emit") || strings.HasPrefix(name, "Write") ||
				strings.HasPrefix(name, "Push") || strings.HasPrefix(name, "Encode") ||
				strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") ||
				strings.HasPrefix(name, "Append"):
				pass.Reportf(n.Pos(),
					"%s call inside a map range: map iteration order is randomized, so the emitted sequence is nondeterministic — iterate sorted keys instead", name)
			}
		}
		return true
	})
}

// calleeName extracts the bare called identifier (append, Emit, x.Write)
// for the map-range heuristic.
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}
