package lint

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"strings"
)

// Result is one driver run: what fired, what an allow absorbed, and the
// live suppression inventory for the CI summary.
type Result struct {
	// Findings are the unsuppressed violations, sorted by position; a
	// non-empty list fails the gate.
	Findings []Finding `json:"findings"`
	// Suppressed are the findings //icg:allow comments absorbed,
	// with their stated reasons.
	Suppressed []Suppressed `json:"suppressed"`
	// Allows is every parsed suppression comment (used or not).
	Allows []*Allow `json:"allows"`
	// TypeErrors are module-package type-check failures; analysis still
	// ran on partial information.
	TypeErrors []string `json:"type_errors,omitempty"`
}

// Run loads the packages at the given import paths and applies the
// analyzers, resolving //icg:allow suppressions across every loaded
// module file. When the full suite runs (checkUnused), an allow that
// suppressed nothing is itself a finding — with a single analyzer
// selected that would misfire, so it is the caller's choice.
func Run(l *Loader, paths []string, analyzers []*Analyzer, checkUnused bool) (*Result, error) {
	res := &Result{}
	valid := make(map[string]bool)
	for _, a := range Analyzers() {
		valid[a.Name] = true
	}
	var raw []Finding
	seenFile := make(map[string]bool)
	var allFiles []*ast.File
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		for _, te := range pkg.TypeErrors {
			res.TypeErrors = append(res.TypeErrors, te.Error())
		}
		for _, f := range pkg.Files {
			name := l.Fset.Position(f.Package).Filename
			if !seenFile[name] {
				seenFile[name] = true
				allFiles = append(allFiles, f)
			}
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     l.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				ModPath:  l.ModPath,
				ModRoot:  l.ModRoot,
			}
			pass.report = func(d Diagnostic) {
				p := l.Fset.Position(d.Pos)
				raw = append(raw, Finding{
					File: p.Filename, Line: p.Line, Col: p.Column,
					Analyzer: a.Name, Message: d.Message,
				})
			}
			a.Run(pass)
		}
	}
	// A finding can anchor in a file of another loaded package (e.g.
	// eventflat descending into an embedded struct), so allows are
	// collected from every module file the loader has seen.
	for _, e := range l.pkgs {
		if e.pkg == nil {
			continue
		}
		for _, f := range e.pkg.Files {
			name := l.Fset.Position(f.Package).Filename
			if !seenFile[name] {
				seenFile[name] = true
				allFiles = append(allFiles, f)
			}
		}
	}
	allows, badAllows := collectAllows(l.Fset, allFiles, valid)
	kept, suppressed := applyAllows(raw, allows)
	kept = append(kept, badAllows...)
	if checkUnused {
		for _, a := range allows {
			if !a.Used {
				kept = append(kept, Finding{
					File: a.File, Line: a.Line, Col: 1, Analyzer: "icglint",
					Message: fmt.Sprintf("unused //icg:allow %s: nothing to suppress here, delete it",
						strings.Join(a.Analyzers, ",")),
				})
			}
		}
	}
	res.Findings = relativize(kept, l.ModRoot)
	res.Suppressed = relativizeSuppressed(suppressed, l.ModRoot)
	res.Allows = allows
	for _, a := range res.Allows {
		a.File = relPath(a.File, l.ModRoot)
	}
	sortFindings(res.Findings)
	return res, nil
}

func relPath(name, root string) string {
	if root == "" {
		return name
	}
	if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return name
}

func relativize(fs []Finding, root string) []Finding {
	for i := range fs {
		fs[i].File = relPath(fs[i].File, root)
	}
	return fs
}

func relativizeSuppressed(fs []Suppressed, root string) []Suppressed {
	for i := range fs {
		fs[i].File = relPath(fs[i].File, root)
	}
	return fs
}
