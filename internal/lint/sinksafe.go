package lint

import (
	"go/ast"
	"go/types"
)

// SinkSafe pins the event contract's delivery law: Sink.Emit is
// synchronous, non-blocking and runs on the producer's worker
// goroutine, so an implementation that blocks stalls the session hot
// path for every session behind that worker. Inside an Emit
// method with an event.Event parameter — and everything it calls in
// the same package — the analyzer rejects:
//
//   - bare channel sends or receives (use select with default: a full
//     consumer must cost a counted drop, never a stall),
//   - blocking select statements (every select needs a default),
//   - I/O (os, net, io, bufio, syscall, fmt.Fprint*, log): file and
//     socket writes block arbitrarily — put them behind a bounded
//     drop-counting sink on a consumer goroutine,
//   - time.Sleep and sync waits (WaitGroup.Wait, Cond.Wait),
//   - dynamic calls (func values, interface methods) made while a sync
//     lock is held: a user callback under the sink's lock can deadlock
//     the producer against its own consumer.
var SinkSafe = &Analyzer{
	Name: "sinksafe",
	Doc:  "event.Sink implementations must be non-blocking: no bare channel ops, no I/O, no callback under a lock",
	Run:  runSinkSafe,
}

// ioPkgs are packages whose package-level functions and methods mean
// the sink is doing I/O or blocking.
var ioPkgs = map[string]bool{
	"os": true, "net": true, "io": true, "bufio": true,
	"syscall": true, "os/exec": true, "log": true,
}

func runSinkSafe(pass *Pass) {
	decls := packageFuncDecls(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isSinkEmit(pass, fn) {
				continue
			}
			recvName := types.TypeString(recvType(pass, fn), types.RelativeTo(pass.Pkg))
			visited := make(map[*ast.FuncDecl]bool)
			checkSinkFunc(pass, fn, recvName, decls, visited)
		}
	}
}

// isSinkEmit reports whether fn is an Emit method taking a single
// event.Event-shaped parameter — the structural signature of the Sink
// contract (checking by shape instead of types.Implements keeps the
// analyzer anchored even on fixture stubs).
func isSinkEmit(pass *Pass, fn *ast.FuncDecl) bool {
	if fn.Recv == nil || fn.Name.Name != "Emit" {
		return false
	}
	params := fn.Type.Params.List
	if len(params) != 1 || len(params[0].Names) > 1 {
		return false
	}
	tv, ok := pass.Info.Types[params[0].Type]
	if !ok {
		return false
	}
	n, ok := tv.Type.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == "Event" && n.Obj().Pkg().Name() == "event"
}

func recvType(pass *Pass, fn *ast.FuncDecl) types.Type {
	tv, ok := pass.Info.Types[fn.Recv.List[0].Type]
	if !ok {
		return types.Typ[types.Invalid]
	}
	return tv.Type
}

// packageFuncDecls indexes the package's function declarations by their
// type-checker object, so the checker can follow same-package calls
// from Emit into helpers.
func packageFuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	m := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok {
					m[obj] = fn
				}
			}
		}
	}
	return m
}

// checkSinkFunc walks one function reachable from a Sink's Emit,
// tracking whether a sync lock is held across each statement.
func checkSinkFunc(pass *Pass, fn *ast.FuncDecl, sink string, decls map[*types.Func]*ast.FuncDecl, visited map[*ast.FuncDecl]bool) {
	if visited[fn] {
		return
	}
	visited[fn] = true
	locked := false
	var walk func(n ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SendStmt:
				pass.Reportf(n.Pos(),
					"blocking channel send in event.Sink %s (via %s): Emit must not block — send under select with default and count the drop",
					sink, fn.Name.Name)
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" {
					pass.Reportf(n.Pos(),
						"blocking channel receive in event.Sink %s (via %s): Emit must not block",
						sink, fn.Name.Name)
				}
			case *ast.SelectStmt:
				hasDefault := false
				for _, cl := range n.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					pass.Reportf(n.Pos(),
						"select without default in event.Sink %s (via %s): Emit must not block — add a default that counts the drop",
						sink, fn.Name.Name)
				}
				// Comm clauses are the sanctioned non-blocking channel
				// ops; walk only the clause bodies.
				for _, cl := range n.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok {
						for _, st := range cc.Body {
							walk(st)
						}
					}
				}
				return false
			case *ast.DeferStmt:
				// defer mu.Unlock() does not release for the rest of
				// the body; the lock state stands. Other defers are
				// walked normally.
				if isLockCall(pass, n.Call, "Unlock", "RUnlock") {
					return false
				}
			case *ast.CallExpr:
				checkSinkCall(pass, n, fn, sink, &locked, decls, visited, walk)
				return false
			}
			return true
		})
	}
	walk(fn.Body)
}

func checkSinkCall(pass *Pass, call *ast.CallExpr, fn *ast.FuncDecl, sink string, locked *bool, decls map[*types.Func]*ast.FuncDecl, visited map[*ast.FuncDecl]bool, walk func(ast.Node)) {
	// Walk arguments first (they may contain nested calls/closures),
	// and the receiver chain of a method call (x.f().Emit(...)).
	for _, a := range call.Args {
		walk(a)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		walk(sel.X)
	}
	// Builtins (len, cap, append, ...) and type conversions are not
	// calls that can block or call back into user code.
	if tv, ok := pass.Info.Types[call.Fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return
	}
	switch {
	case isLockCall(pass, call, "Lock", "RLock"):
		*locked = true
		return
	case isLockCall(pass, call, "Unlock", "RUnlock"):
		*locked = false
		return
	}
	if obj := staticCallee(pass, call); obj != nil {
		if pkg := obj.Pkg(); pkg != nil {
			if ioPkgs[pkg.Path()] {
				pass.Reportf(call.Pos(),
					"%s.%s in event.Sink %s (via %s): I/O blocks arbitrarily — move it behind a bounded drop-counting sink on a consumer goroutine",
					pkg.Name(), obj.Name(), sink, fn.Name.Name)
				return
			}
			if pkg.Path() == "time" && obj.Name() == "Sleep" {
				pass.Reportf(call.Pos(),
					"time.Sleep in event.Sink %s (via %s): Emit must not block", sink, fn.Name.Name)
				return
			}
			if pkg.Path() == "fmt" && len(obj.Name()) >= 6 && obj.Name()[:6] == "Fprint" {
				pass.Reportf(call.Pos(),
					"fmt.%s in event.Sink %s (via %s): writer I/O blocks arbitrarily — buffer through a bounded sink instead",
					obj.Name(), sink, fn.Name.Name)
				return
			}
			if pkg.Path() == "sync" && obj.Name() == "Wait" {
				pass.Reportf(call.Pos(),
					"sync %s.Wait in event.Sink %s (via %s): Emit must not block", recvOf(obj), sink, fn.Name.Name)
				return
			}
		}
		// Same-package helper: follow it so the law cannot be dodged by
		// one level of indirection.
		if callee, ok := decls[obj]; ok {
			checkSinkFunc(pass, callee, sink, decls, visited)
		}
		return
	}
	// Dynamic call: a func value or interface method. Fine on its own
	// (that is how sinks compose, e.g. Tee fanning out to Sinks) — but
	// never while holding a lock.
	if *locked {
		pass.Reportf(call.Pos(),
			"dynamic call while a sync lock is held in event.Sink %s (via %s): a callback under the sink's lock can deadlock producer against consumer — release the lock first",
			sink, fn.Name.Name)
	}
}

func recvOf(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "?"
	}
	return types.TypeString(sig.Recv().Type(), func(p *types.Package) string { return "" })
}

// staticCallee resolves a call to its static *types.Func target, or nil
// for dynamic calls (func values, interface methods).
func staticCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[f]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				// An interface method selection is a dynamic call.
				if _, iface := sel.Recv().Underlying().(*types.Interface); iface {
					return nil
				}
				return fn
			}
			return nil
		}
		if fn, ok := pass.Info.Uses[f.Sel].(*types.Func); ok {
			return fn // package-qualified call
		}
	}
	return nil
}

// isLockCall reports whether call is one of the named methods on a sync
// type (sync.Mutex.Lock, sync.RWMutex.RUnlock, ...), including through
// embedding.
func isLockCall(pass *Pass, call *ast.CallExpr, names ...string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}
