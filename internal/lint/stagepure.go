package lint

import (
	"go/ast"
	"go/types"
)

// StagePure pins the Stage contract's state rule: a core.Stage is
// immutable after construction and safe for concurrent Apply — all
// mutable per-stream state lives in the StageStream it returns. A Stage
// method that writes its own fields compiles cleanly and works in every
// single-threaded test, then corrupts state the first time two sessions
// share the device's chain. The analyzer finds every type in the
// package with both an Apply and a NewStream method (the structural
// Stage shape, so fixture stubs anchor it too) and rejects any method
// on it that assigns through the receiver.
var StagePure = &Analyzer{
	Name: "stagepure",
	Doc:  "core.Stage implementations must not write their own fields; mutable state belongs in the StageStream",
	Run:  runStagePure,
}

func runStagePure(pass *Pass) {
	stages := stageTypes(pass)
	if len(stages) == 0 {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil || len(fn.Recv.List) == 0 {
				continue
			}
			named := namedRecv(pass, fn)
			if named == nil || !stages[named.Obj()] {
				continue
			}
			var recvObjs []types.Object
			for _, name := range fn.Recv.List[0].Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					recvObjs = append(recvObjs, obj)
				}
			}
			if len(recvObjs) == 0 {
				continue
			}
			checkStageMethod(pass, fn, named.Obj().Name(), recvObjs)
		}
	}
}

// stageTypes collects the package's named types whose method set has
// both Apply and NewStream — the structural shape of core.Stage.
func stageTypes(pass *Pass) map[*types.TypeName]bool {
	stages := make(map[*types.TypeName]bool)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		ms := types.NewMethodSet(types.NewPointer(named))
		hasApply, hasNewStream := false, false
		for i := 0; i < ms.Len(); i++ {
			switch ms.At(i).Obj().Name() {
			case "Apply":
				hasApply = true
			case "NewStream":
				hasNewStream = true
			}
		}
		if hasApply && hasNewStream {
			stages[tn] = true
		}
	}
	return stages
}

func namedRecv(pass *Pass, fn *ast.FuncDecl) *types.Named {
	tv, ok := pass.Info.Types[fn.Recv.List[0].Type]
	if !ok {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// checkStageMethod flags writes through the receiver: direct field
// assignment, compound assignment, ++/--, and whole-receiver
// overwrites. Writes through a field's pointed-to or indexed storage
// (st.buf[i] = v) are flagged too: sharing mutable storage through an
// immutable struct is the same law broken one dereference later.
func checkStageMethod(pass *Pass, fn *ast.FuncDecl, stage string, recvObjs []types.Object) {
	report := func(n ast.Node, what string) {
		pass.Reportf(n.Pos(),
			"%s in Stage method (%s).%s: a Stage is immutable after construction and shared by every session — move mutable state into the StageStream (ROADMAP: Stage contract)",
			what, stage, fn.Name.Name)
	}
	rootedInRecv := func(e ast.Expr) bool {
		for {
			switch x := e.(type) {
			case *ast.Ident:
				obj := pass.Info.Uses[x]
				for _, r := range recvObjs {
					if obj == r {
						return true
					}
				}
				return false
			case *ast.SelectorExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			default:
				return false
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if rootedInRecv(lhs) {
					report(lhs, "receiver write")
				}
			}
		case *ast.IncDecStmt:
			if rootedInRecv(n.X) {
				report(n.X, "receiver write")
			}
		case *ast.UnaryExpr:
			// &st.field escaping hands out a mutable window into the
			// shared stage.
			if n.Op.String() == "&" && rootedInRecv(n.X) {
				report(n, "address of receiver field")
			}
		}
		return true
	})
}
