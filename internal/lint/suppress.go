package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Allow is one parsed suppression comment:
//
//	//icg:allow <analyzer>[,<analyzer>...] -- <reason>
//
// It suppresses findings of the named analyzers on its own line and on
// the line directly below it (so it can trail the offending line or sit
// above it as its own comment line). The reason is mandatory and is
// surfaced verbatim in the CI summary; an allow that suppresses nothing
// is itself reported, so stale suppressions cannot accumulate.
type Allow struct {
	File      string   `json:"file"`
	Line      int      `json:"line"`
	Analyzers []string `json:"analyzers"`
	Reason    string   `json:"reason"`
	Used      bool     `json:"used"`
}

const allowPrefix = "//icg:allow"

// collectAllows parses every suppression comment in the files. Malformed
// allows (missing reason, unknown analyzer name) are reported as
// findings under the "icglint" pseudo-analyzer: a suppression that does
// not say why, or names a check that does not exist, is a hole in the
// gate, not a suppression.
func collectAllows(fset *token.FileSet, files []*ast.File, valid map[string]bool) (allows []*Allow, bad []Finding) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				mk := func(msg string) {
					bad = append(bad, Finding{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Analyzer: "icglint", Message: msg,
					})
				}
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // some other icg:allow-prefixed marker
				}
				names, reason, hasReason := strings.Cut(rest, " -- ")
				if !hasReason || strings.TrimSpace(reason) == "" {
					mk("//icg:allow without a reason: write `//icg:allow <analyzer> -- <why this line may break the law>`")
					continue
				}
				var list []string
				for _, n := range strings.Split(names, ",") {
					n = strings.TrimSpace(n)
					if n == "" {
						continue
					}
					if !valid[n] {
						mk("//icg:allow names unknown analyzer \"" + n + "\"")
						continue
					}
					list = append(list, n)
				}
				if len(list) == 0 {
					mk("//icg:allow lists no analyzer: write `//icg:allow <analyzer> -- <reason>`")
					continue
				}
				allows = append(allows, &Allow{
					File: pos.Filename, Line: pos.Line,
					Analyzers: list, Reason: strings.TrimSpace(reason),
				})
			}
		}
	}
	return allows, bad
}

// applyAllows partitions findings into kept and suppressed, marking the
// allows that fired.
func applyAllows(findings []Finding, allows []*Allow) (kept []Finding, suppressed []Suppressed) {
	type key struct {
		file string
		line int
	}
	idx := make(map[key][]*Allow)
	for _, a := range allows {
		idx[key{a.File, a.Line}] = append(idx[key{a.File, a.Line}], a)
		idx[key{a.File, a.Line + 1}] = append(idx[key{a.File, a.Line + 1}], a)
	}
	for _, f := range findings {
		var hit *Allow
		for _, a := range idx[key{f.File, f.Line}] {
			for _, name := range a.Analyzers {
				if name == f.Analyzer {
					hit = a
					break
				}
			}
			if hit != nil {
				break
			}
		}
		if hit != nil {
			hit.Used = true
			suppressed = append(suppressed, Suppressed{Finding: f, Reason: hit.Reason})
		} else {
			kept = append(kept, f)
		}
	}
	return kept, suppressed
}

// Suppressed is a finding an //icg:allow comment absorbed, paired with
// the stated reason for the CI summary.
type Suppressed struct {
	Finding
	Reason string `json:"reason"`
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
