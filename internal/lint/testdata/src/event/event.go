// Package event is the fixture stand-in for the repo's internal/event:
// the sinksafe analyzer anchors on the Emit(event.Event) method shape.
package event

// Event mirrors the flat tagged union.
type Event struct {
	Kind    uint8
	Session uint64
	TimeS   float64
}

// Sink is the delivery contract under test.
type Sink interface {
	Emit(e Event)
}
