// Package eventflat is the eventflat analyzer fixture: wal-marked
// types must stay flat, pointer-free and fixed-size.
package eventflat

import "eventflat/sub"

// Event is the fixture's wal-codec root.
//
//icg:wal
type Event struct {
	Kind    uint8
	Session uint64
	Beat    int
	TimeS   float64
	Fixed   [4]float64

	Name    string            // want "field Name is a string"
	Samples []float64         // want "field Samples is a slice"
	Tags    map[string]int    // want "field Tags is a map"
	Next    *Event            // want "field Next is a pointer"
	Done    chan struct{}     // want "field Done is a channel"
	OnEmit  func()            // want "field OnEmit is a function"
	Any     interface{ M() }  // want "field Any is an interface"
	Raw     [2][]byte         // want `field Raw\[\.\.\.\] is a slice`
	Nested  nested            // the struct itself is fine; its bad field is flagged below
	Sub     sub.Payload       // cross-package descent: flagged in sub/sub.go
	Legacy  map[uint64]string //icg:allow eventflat -- inherited debug field, scheduled for removal, never encoded
}

// nested is reached by value from Event, so its fields are checked too.
type nested struct {
	OK  float64
	Ptr *int // want "field Nested.Ptr is a pointer"
}

// Flat is wal-marked and fully flat: no findings.
//
//icg:wal
type Flat struct {
	A, B float64
	C    [8]uint32
	D    bool
}

// Unmarked is not a codec type: anything goes.
type Unmarked struct {
	S []string
	M map[int]int
}
