// Package sub holds a struct embedded by value in the fixture's
// wal-marked Event, proving the flatness check crosses package
// boundaries (the real-tree analogue: hemo.BeatParams inside
// event.Event).
package sub

// Payload rides inside eventflat.Event.
type Payload struct {
	Value float64
	Hist  []float64 // want "field Sub.Hist is a slice"
}
