// Package hotalloc is the hotalloc analyzer fixture: *With/*To
// functions and //icg:hotpath annotations pin the zero-allocation
// rules.
package hotalloc

import "fmt"

// Arena mimics dsp.Arena for the fixture (detection is by type name,
// matching the repo's single arena type).
type Arena struct{ bufs [][]float64 }

// F64 checks out a buffer.
func (a *Arena) F64(n int) []float64 {
	// Not a hot-named function: the arena's own amortized growth is the
	// sanctioned allocation site.
	return make([]float64, n)
}

// SmoothWith is a hot function by naming + arena parameter.
func SmoothWith(a *Arena, x []float64) []float64 {
	var y []float64
	if a != nil {
		y = a.F64(len(x))
	} else {
		y = make([]float64, len(x)) // arena-nil fallback: sanctioned
	}
	copy(y, x)
	return y
}

// GrowTo is hot via the dst parameter; cap-guarded growth is sanctioned.
func GrowTo(dst, x []float64) []float64 {
	if cap(dst) < len(x) {
		dst = make([]float64, len(x)) // cap-guarded: sanctioned
	}
	copy(dst[:len(x)], x)
	return dst[:len(x)]
}

// BadMakeWith allocates scratch it never returns: that is what the
// arena is for.
func BadMakeWith(a *Arena, x []float64) float64 {
	scratch := make([]float64, len(x)) // want "make in hot function BadMakeWith"
	copy(scratch, x)
	sum := 0.0
	for _, v := range scratch {
		sum += v
	}
	return sum
}

// BadNewTo news per-call scratch.
func BadNewTo(dst []float64) float64 {
	p := new(float64) // want "new in hot function BadNewTo"
	for _, v := range dst {
		*p += v
	}
	return *p
}

// BadFmtWith formats in the hot path.
func BadFmtWith(a *Arena, v float64) string {
	return fmt.Sprintf("%v", v) // want "fmt.Sprintf in hot function BadFmtWith"
}

// BadAppendWith grows a nil local every call.
func BadAppendWith(a *Arena, x []float64) []float64 {
	var out []float64
	for _, v := range x {
		out = append(out, v*2) // want "append to out, which is born nil in hot function BadAppendWith"
	}
	return out
}

// BadClosureWith builds a capturing closure.
func BadClosureWith(a *Arena, x []float64) func() float64 {
	total := 0.0
	return func() float64 { // want `closure capturing "x" in hot function BadClosureWith`
		for _, v := range x {
			total += v
		}
		return total
	}
}

// BadBoxWith boxes into an interface.
func BadBoxWith(a *Arena, v float64) any {
	return any(v) // want "conversion to interface any in hot function BadBoxWith"
}

// hot is annotated, so the rules apply despite the name.
//
//icg:hotpath
func hot(x []float64) float64 {
	y := make([]float64, len(x)) // want "make in hot function hot"
	copy(y, x)
	return y[0]
}

// finishWith has the suffix but neither an arena nor a dst parameter:
// not conscripted (mirrors session.finishWith).
func finishWith(reason int) []float64 {
	out := make([]float64, reason)
	for i := range out {
		out[i] = float64(reason)
	}
	return out
}

// ResultWith heap-allocates its returned slice: callers retain it, so
// arena scratch would be a use-after-reset bug — the retained-result
// exception, not a violation.
func ResultWith(a *Arena, x []float64) []float64 {
	out := make([]float64, 0, len(x))
	for _, v := range x {
		if v > 0 {
			out = append(out, v)
		}
	}
	return out
}

// NewStateWith returns a heap record the caller keeps (mirrors
// icg.DetectBeatWith returning *BeatPoints).
func NewStateWith(a *Arena, v float64) *float64 {
	p := new(float64)
	*p = v
	return p
}

// record mimics a result struct whose fields are built up before
// returning.
type record struct{ vals []float64 }

// FillWith stores its allocation into a field of the returned record:
// retained through the field, so heap allocation is the convention.
func FillWith(a *Arena, x []float64) *record {
	r := &record{}
	vals := make([]float64, len(x))
	copy(vals, x)
	r.vals = vals
	return r
}

// AllowedWith documents its one-off scratch allocation.
func AllowedWith(a *Arena, n int) float64 {
	tmp := make([]float64, n) //icg:allow hotalloc -- fixture: documented construction-time scratch, called once per session
	return float64(len(tmp))
}
