// Package nodeterm is the nodeterm analyzer fixture: a package in the
// determinism set must not read wall clocks, the global rand source, or
// order output by map iteration.
//
//icg:deterministic
package nodeterm

import (
	"math/rand"
	"sort"
	"time"
)

// Clock smuggling: references are findings, not just calls.
var bootTime = time.Now() // want `time\.Now in deterministic package`

type engine struct {
	now func() time.Time
}

func newEngine() *engine {
	return &engine{now: time.Now} // want `time\.Now in deterministic package`
}

func elapsed(t0 time.Time) float64 {
	return time.Since(t0).Seconds() // want `time\.Since in deterministic package`
}

func delay() <-chan time.Time {
	return time.After(time.Second) // want `time\.After in deterministic package`
}

func jitter() float64 {
	return rand.Float64() // want `global rand\.Float64 in deterministic package`
}

func pick(n int) int {
	return rand.Intn(n) // want `global rand\.Intn in deterministic package`
}

// Seeded sources threaded explicitly are part of the input: fine.
func seeded(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// Durations and time arithmetic without a wall-clock read: fine.
func window(d time.Duration) float64 { return d.Seconds() }

func emitAll(m map[uint64]float64, out []float64) []float64 {
	for _, v := range m {
		out = append(out, v) // want "append inside a map range"
	}
	return out
}

func sendAll(m map[uint64]float64, ch chan float64) {
	for _, v := range m {
		ch <- v // want "channel send inside a map range"
	}
}

type sink struct{}

func (sink) Emit(float64) {}

func emitEach(m map[uint64]float64, s sink) {
	for _, v := range m {
		s.Emit(v) // want "Emit call inside a map range"
	}
}

// Order-insensitive map use: fine.
func total(m map[uint64]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

// The sanctioned pattern: collect, sort, then emit. The collect append
// is recognized because keys reaches sort.Slice after the loop.
func emitSorted(m map[uint64]float64, out []float64) []float64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// Collecting without sorting is still a finding: the sort must come
// after the loop, sorting a different slice does not help.
func emitUnsorted(m map[uint64]float64, other []float64) []float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v) // want "append inside a map range"
	}
	sort.Float64s(other)
	return vals
}

func quarantine(clock func() time.Time) time.Time {
	if clock == nil {
		clock = time.Now //icg:allow nodeterm -- injected wall clock default; quarantine windows are wall time by contract
	}
	return clock()
}
