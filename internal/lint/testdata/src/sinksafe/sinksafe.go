// Package sinksafe is the sinksafe analyzer fixture: Sink.Emit
// implementations must be non-blocking.
package sinksafe

import (
	"fmt"
	"os"
	"sync"
	"time"

	"event"
)

// GoodChan is the sanctioned non-blocking bridge.
type GoodChan struct {
	C       chan event.Event
	dropped uint64
}

func (c *GoodChan) Emit(e event.Event) {
	select {
	case c.C <- e:
	default:
		c.dropped++
	}
}

// GoodRing locks only around its own ring state: fine.
type GoodRing struct {
	mu   sync.Mutex
	ring []event.Event
	n    int
}

func (b *GoodRing) Emit(e event.Event) {
	b.mu.Lock()
	if b.n < len(b.ring) {
		b.ring[b.n] = e
		b.n++
	}
	b.mu.Unlock()
}

// GoodTee fans out through dynamic calls with no lock held: that is how
// sinks compose.
type GoodTee []event.Sink

func (t GoodTee) Emit(e event.Event) {
	for _, s := range t {
		s.Emit(e)
	}
}

// BadSend blocks on a bare channel send.
type BadSend struct{ C chan event.Event }

func (s *BadSend) Emit(e event.Event) {
	s.C <- e // want "blocking channel send in event.Sink"
}

// BadRecv blocks on a receive.
type BadRecv struct{ ready chan struct{} }

func (s *BadRecv) Emit(e event.Event) {
	<-s.ready // want "blocking channel receive in event.Sink"
}

// BadSelect has no default.
type BadSelect struct{ a, b chan event.Event }

func (s *BadSelect) Emit(e event.Event) {
	select { // want "select without default in event.Sink"
	case s.a <- e:
	case s.b <- e:
	}
}

// BadFile does file I/O on the producer's worker.
type BadFile struct{ f *os.File }

func (s *BadFile) Emit(e event.Event) {
	fmt.Fprintf(s.f, "%v\n", e) // want "fmt.Fprintf in event.Sink"
}

// BadSleep throttles by sleeping.
type BadSleep struct{}

func (BadSleep) Emit(e event.Event) {
	time.Sleep(time.Millisecond) // want "time.Sleep in event.Sink"
}

// BadCallback invokes a user callback with its lock held.
type BadCallback struct {
	mu sync.Mutex
	fn func(event.Event)
}

func (s *BadCallback) Emit(e event.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fn(e) // want "dynamic call while a sync lock is held in event.Sink"
}

// GoodCallback releases the lock before calling out.
type GoodCallback struct {
	mu sync.Mutex
	fn func(event.Event)
	n  int
}

func (s *GoodCallback) Emit(e event.Event) {
	s.mu.Lock()
	s.n++
	fn := s.fn
	s.mu.Unlock()
	fn(e)
}

// BadHelper hides the blocking send one call deep: the checker follows
// same-package calls.
type BadHelper struct{ C chan event.Event }

func (s *BadHelper) Emit(e event.Event) {
	s.deliver(e)
}

func (s *BadHelper) deliver(e event.Event) {
	s.C <- e // want "blocking channel send in event.Sink"
}

// BadWait blocks on a WaitGroup.
type BadWait struct{ wg sync.WaitGroup }

func (s *BadWait) Emit(e event.Event) {
	s.wg.Wait() // want `sync .?WaitGroup.Wait in event.Sink`
}

// AllowedStderr documents why its write is tolerable.
type AllowedStderr struct{}

func (AllowedStderr) Emit(e event.Event) {
	os.Stderr.WriteString("x") //icg:allow sinksafe -- crash-path diagnostic sink, never armed in production engines
}
