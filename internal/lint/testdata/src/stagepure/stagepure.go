// Package stagepure is the stagepure analyzer fixture: types with the
// Stage shape (Apply + NewStream) must not write their own fields.
package stagepure

// Stream is the mutable per-stream state: mutation here is the design.
type Stream struct {
	hist []float64
	n    int
}

func (s *Stream) Push(dst, x []float64) []float64 {
	s.hist = append(s.hist, x...) // StageStream state: fine
	s.n += len(x)
	return append(dst, x...)
}

func (s *Stream) Reset() { s.n = 0 }

// GoodStage is immutable: Apply only reads, NewStream builds state.
type GoodStage struct {
	taps []float64
}

func (st GoodStage) Apply(x []float64) []float64 {
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = v * st.taps[0]
	}
	return y
}

func (st GoodStage) NewStream() *Stream { return &Stream{} }

// BadStage caches into its own fields from Apply.
type BadStage struct {
	scratch []float64
	calls   int
}

func (st *BadStage) Apply(x []float64) []float64 {
	st.calls++ // want "receiver write in Stage method"
	if cap(st.scratch) < len(x) {
		st.scratch = make([]float64, len(x)) // want "receiver write in Stage method"
	}
	copy(st.scratch, x)
	return st.scratch[:len(x)]
}

func (st *BadStage) NewStream() *Stream { return &Stream{} }

// BadAlias hands out a mutable window into the shared stage.
type BadAlias struct {
	state [4]float64
}

func (st *BadAlias) Apply(x []float64) []float64 {
	p := &st.state[0] // want "address of receiver field in Stage method"
	*p = x[0]
	return x
}

func (st *BadAlias) NewStream() *Stream { return &Stream{} }

// BadValueRecv writes through a value receiver: mutates a copy, which
// is its own bug — flagged all the same.
type BadValueRecv struct{ n int }

func (st BadValueRecv) Apply(x []float64) []float64 {
	st.n = len(x) // want "receiver write in Stage method"
	return x
}

func (st BadValueRecv) NewStream() *Stream { return &Stream{} }

// AllowedStage documents a sanctioned lazy init.
type AllowedStage struct{ cached []float64 }

func (st *AllowedStage) Apply(x []float64) []float64 {
	st.cached = x //icg:allow stagepure -- fixture: documents the suppression path for a sanctioned write
	return x
}

func (st *AllowedStage) NewStream() *Stream { return &Stream{} }
