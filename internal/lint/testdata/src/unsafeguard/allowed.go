package unsafeguard

// The suppression path: a justified unsafe import outside the safelist.

import (
	"unsafe" //icg:allow unsafeguard -- fixture: pinned-buffer aliasing documented at the use site
)

// Align uses the import so the fixture compiles.
func Align(x uint32) uintptr { return unsafe.Alignof(x) }
