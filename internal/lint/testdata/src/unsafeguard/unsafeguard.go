// Package unsafeguard is the unsafeguard analyzer fixture: unsafe
// imports outside the documented aliasing safelist are findings.
package unsafeguard

import "unsafe" // want `import "unsafe" outside the aliasing safelist`

// Size uses the import so the fixture compiles.
func Size(x uint64) uintptr { return unsafe.Sizeof(x) }
