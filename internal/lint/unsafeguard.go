package lint

import "strconv"

// UnsafeGuard pins the aliasing safelist: the `unsafe` package may be
// imported only from the files whose aliasing/lifetime invariants are
// documented in place — internal/gateway/conn.go (wire payloads alias
// the connection's scanner buffer) and internal/dsp/stream.go (ring
// views alias the persistent ring storage). Any new unsafe import
// lands here first: either the file joins the safelist in the same
// change that documents its invariants, or the import goes.
var UnsafeGuard = &Analyzer{
	Name: "unsafeguard",
	Doc:  "unsafe imports are allowed only in the documented aliasing safelist files",
	Run:  runUnsafeGuard,
}

// unsafeSafelist holds the module-relative files with documented
// aliasing invariants (satellite of the zero-copy ingest and streaming
// kernels). Keep this list in lockstep with the invariant comments in
// the files themselves.
var unsafeSafelist = map[string]bool{
	"internal/gateway/conn.go": true,
	"internal/dsp/stream.go":   true,
}

func runUnsafeGuard(pass *Pass) {
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path != "unsafe" {
				continue
			}
			fname := relPath(pass.Fset.Position(imp.Pos()).Filename, pass.ModRoot)
			if unsafeSafelist[fname] {
				continue
			}
			pass.Reportf(imp.Pos(),
				"import \"unsafe\" outside the aliasing safelist (%s): document the aliasing invariant in place and add the file to unsafeSafelist in internal/lint/unsafeguard.go, or drop the import",
				fname)
		}
	}
}
