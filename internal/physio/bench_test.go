package physio

import "testing"

// Generator benchmarks: WhiteNoise is the raw Gaussian source, BandNoise
// the RNG + biquad shape that dominates the study sweep (one call per
// subject x frequency x position cell), Generate the full recording
// synthesis.

func BenchmarkWhiteNoise30s(b *testing.B) {
	rng := NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WhiteNoise(rng, 7500, 0.02)
	}
}

func BenchmarkBandNoise30s(b *testing.B) {
	rng := NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BandNoise(rng, 7500, 250, 0.5, 8, 0.02)
	}
}

func BenchmarkGenerate30s(b *testing.B) {
	s := Subjects()[0]
	cfg := DefaultGenConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Generate(cfg)
	}
}
