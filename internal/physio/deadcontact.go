package physio

// DeadContact synthesizes n samples of what a lifted finger feeds the
// front end: the impedance channel flat at the open-circuit value with
// sub-quantization dither, and an ECG lead carrying only noise.
// Deterministic per seed. It is the shared lifted-finger model — the
// session engine's eviction tests and the cmd/icgstream fleet benchmark
// must stress the health policy with the SAME signal, or the published
// shedding numbers drift from what the tests pin.
func DeadContact(seed int64, n int) (ecg, z []float64) {
	rng := NewRNG(seed*13 + 7)
	ecg = make([]float64, n)
	z = make([]float64, n)
	for i := range ecg {
		ecg[i] = 0.02 * rng.NormFloat64()
		z[i] = 400 + 1e-4*rng.NormFloat64()
	}
	return ecg, z
}
