package physio

import "math"

// ECG waveform synthesis. Each beat is a sum of Gaussian wave templates
// (P, Q, R, S, T) positioned relative to the R peak; wave latencies and
// the QT interval scale with sqrt(RR) following Bazett's correction, as in
// the ECGSYN morphology of McSharry et al.

// ECGWave describes one wave of the beat template.
type ECGWave struct {
	Name      string
	Amplitude float64 // mV
	Offset    float64 // center relative to R (s) at RR = 1 s
	Width     float64 // Gaussian sigma (s) at RR = 1 s
	ScaleRR   bool    // whether the offset scales with sqrt(RR)
}

// DefaultECGWaves returns the standard beat template (amplitudes in mV for
// a chest lead; the touch measurement scales this down).
func DefaultECGWaves() []ECGWave {
	return []ECGWave{
		{Name: "P", Amplitude: 0.12, Offset: -0.18, Width: 0.022, ScaleRR: true},
		{Name: "Q", Amplitude: -0.10, Offset: -0.025, Width: 0.008, ScaleRR: false},
		{Name: "R", Amplitude: 1.00, Offset: 0, Width: 0.009, ScaleRR: false},
		{Name: "S", Amplitude: -0.18, Offset: 0.028, Width: 0.009, ScaleRR: false},
		{Name: "T", Amplitude: 0.32, Offset: 0.30, Width: 0.045, ScaleRR: true},
	}
}

// ecgBeatValue evaluates the beat template at time dt relative to the R
// peak of a beat with the given RR interval (s).
func ecgBeatValue(waves []ECGWave, dt, rr float64) float64 {
	scale := math.Sqrt(rr)
	v := 0.0
	for _, w := range waves {
		off := w.Offset
		width := w.Width
		if w.ScaleRR {
			off *= scale
			width *= scale
		}
		d := (dt - off) / width
		if d > -6 && d < 6 {
			v += w.Amplitude * math.Exp(-d*d/2)
		}
	}
	return v
}

// synthesizeECG renders the ECG track for R peaks at rTimes with the
// corresponding RR intervals into a signal of n samples at rate fs.
// ampScale scales the whole template (touch leads are smaller than chest
// leads); ampJitter is the per-beat multiplicative amplitude jitter
// already sampled by the caller (one value per beat).
func synthesizeECG(waves []ECGWave, rTimes, rr []float64, ampJitter []float64, n int, fs float64) []float64 {
	ecg := make([]float64, n)
	// Each beat only influences samples within a window around its R
	// peak; render beat by beat for O(beats * window).
	for b, tr := range rTimes {
		rrB := 1.0
		if b < len(rr) {
			rrB = rr[b]
		}
		amp := 1.0
		if b < len(ampJitter) {
			amp = ampJitter[b]
		}
		// Template support: P wave starts ~0.3 s before R; T wave ends
		// ~0.55*sqrt(rr) s after.
		lo := int((tr - 0.35) * fs)
		hi := int((tr + 0.65*math.Sqrt(rrB)) * fs)
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		for i := lo; i <= hi; i++ {
			dt := float64(i)/fs - tr
			ecg[i] += amp * ecgBeatValue(waves, dt, rrB)
		}
	}
	return ecg
}

// TPeakOffset returns the nominal T-peak latency after R for an RR
// interval (used by the Carvalho X-point variant, which searches near the
// end of the T wave).
func TPeakOffset(rr float64) float64 {
	return 0.30 * math.Sqrt(rr)
}
