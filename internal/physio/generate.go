package physio

import (
	"math"

	"repro/internal/dsp"
)

// Generate synthesizes a complete simultaneous ECG/ICG recording for the
// subject with exact ground-truth annotations, following the acquisition
// flow of the paper's Fig 3 from the body's side: cardiac electrical
// activity (ECG), the mechanical impedance response (-dZ/dt and its
// integral), respiration, and configurable artifacts.
func (s *Subject) Generate(cfg GenConfig) *Recording {
	if cfg.FS <= 0 {
		cfg.FS = 250
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 30
	}
	rng := NewRNG(s.Seed)
	fs := cfg.FS
	n := int(cfg.Duration * fs)

	// 1. RR tachogram: draw enough beats to cover the recording.
	maxBeats := int(cfg.Duration/0.35) + 4
	tc := TachogramConfig{MeanRR: s.MeanRR(), StdRR: s.HRStd, LFHF: s.LFHF}
	rrAll := RRTachogram(rng, tc, maxBeats)
	// Ectopy: a premature beat shortens its RR and the next beat absorbs
	// a compensatory pause, keeping the two-beat span constant.
	if cfg.EctopicProb > 0 {
		for i := 0; i+1 < len(rrAll); i++ {
			if rng.Float64() < cfg.EctopicProb {
				frac := 0.55 + 0.20*rng.Float64()
				cut := rrAll[i] * (1 - frac)
				rrAll[i] *= frac
				rrAll[i+1] += cut
				i++ // do not stack ectopics back to back
			}
		}
	}
	// Keep beats whose full template (R-0.35s .. R+0.9s) fits.
	start := 0.45
	var rTimes, rr []float64
	t := start
	for _, v := range rrAll {
		if t+0.9 > cfg.Duration {
			break
		}
		rTimes = append(rTimes, t)
		rr = append(rr, v)
		t += v
	}
	nb := len(rTimes)

	// 2. Per-beat systolic time intervals and ICG template timing.
	beats := make([]icgBeat, nb)
	truth := Annotations{
		RPeaks:  make([]int, nb),
		BPoints: make([]int, nb),
		CPoints: make([]int, nb),
		XPoints: make([]int, nb),
		RR:      make([]float64, nb),
		PEP:     make([]float64, nb),
		LVET:    make([]float64, nb),
	}
	ampJitter := make([]float64, nb)
	for i := 0; i < nb; i++ {
		hr := 60 / rr[i]
		pep := WeisslerPEP(hr) + (s.STI.PEPBias+rng.NormFloat64()*s.STI.PEPJitter)/1000
		lvet := WeisslerLVET(hr) + (s.STI.LVETBias+rng.NormFloat64()*s.STI.LVETJit)/1000
		pep = dsp.Clamp(pep, 0.040, 0.160)
		lvet = dsp.Clamp(lvet, 0.180, 0.420)
		amp := s.DZdtMax * (1 + 0.05*rng.NormFloat64())
		tR := rTimes[i]
		tB := tR + pep
		tC := tB + 0.38*lvet
		tX := tB + lvet
		beats[i] = icgBeat{tR: tR, tB: tB, tC: tC, tX: tX, amp: amp, rr: rr[i]}
		truth.RPeaks[i] = int(tR*fs + 0.5)
		truth.BPoints[i] = int(tB*fs + 0.5)
		truth.CPoints[i] = int(tC*fs + 0.5)
		truth.XPoints[i] = int(tX*fs + 0.5)
		truth.RR[i] = rr[i]
		truth.PEP[i] = pep
		truth.LVET[i] = lvet
		ampJitter[i] = s.ECGScale * (1 + 0.03*rng.NormFloat64())
	}

	// 3. Clean tracks.
	ecg := synthesizeECG(DefaultECGWaves(), rTimes, rr, ampJitter, n, fs)
	icg := synthesizeICG(beats, n, fs)
	balanceBeats(icg, beats, fs)

	// 4. Cardiac impedance variation: dZ/dt = -ICG.
	dz := dsp.Integrate(dsp.Scale(icg, -1), fs)
	// Remove the residual mean so DZ oscillates around zero.
	dz = dsp.Offset(dz, -dsp.Mean(dz))

	// 5. Respiration.
	resp := Respiration(rng, RespConfig{Rate: s.RespRate, DepthOhm: s.RespDepth}, n, fs)

	// 6. Artifacts on the measured tracks. The white components share one
	// scratch buffer (WhiteNoiseTo) and sum into the tracks in place —
	// same draws, same sums, three fewer full-length slices per
	// recording.
	var scratch []float64
	if cfg.ECGBaselineDrift > 0 {
		ecg = dsp.Add(ecg, BaselineWander(rng, n, fs, cfg.ECGBaselineDrift))
	}
	if cfg.PowerlineAmp > 0 {
		ecg = dsp.Add(ecg, Powerline(rng, n, fs, cfg.PowerlineAmp))
	}
	if cfg.ECGNoiseStd > 0 {
		scratch = WhiteNoiseTo(scratch, rng, n, cfg.ECGNoiseStd)
		for i := range ecg {
			ecg[i] += scratch[i]
		}
	}
	if cfg.MotionBurstRate > 0 && cfg.MotionBurstAmp > 0 {
		ecg = dsp.Add(ecg, MotionBursts(rng, n, fs, cfg.MotionBurstRate, cfg.MotionBurstAmp))
		icg = dsp.Add(icg, MotionBursts(rng, n, fs, cfg.MotionBurstRate, cfg.MotionBurstAmp))
	}
	if cfg.ICGNoiseStd > 0 {
		scratch = WhiteNoiseTo(scratch, rng, n, cfg.ICGNoiseStd)
		for i := range icg {
			icg[i] += scratch[i]
		}
	}

	return &Recording{
		FS:    fs,
		ECG:   ecg,
		ICG:   icg,
		DZ:    dz,
		Resp:  resp,
		Truth: truth,
	}
}

// HeartRateSeries returns the per-beat instantaneous heart rate (bpm) of
// the ground truth.
func (a *Annotations) HeartRateSeries() []float64 {
	hr := make([]float64, len(a.RR))
	for i, rr := range a.RR {
		if rr > 0 {
			hr[i] = 60 / rr
		}
	}
	return hr
}

// MeanHR returns the mean ground-truth heart rate in bpm.
func (a *Annotations) MeanHR() float64 {
	if len(a.RR) == 0 {
		return 0
	}
	return dsp.Mean(a.HeartRateSeries())
}

// NearestBeat returns the index of the annotated R peak nearest to the
// given sample index, and the distance in samples.
func (a *Annotations) NearestBeat(sample int) (beat, dist int) {
	if len(a.RPeaks) == 0 {
		return -1, math.MaxInt32
	}
	best, bestD := 0, abs(a.RPeaks[0]-sample)
	for i, r := range a.RPeaks {
		if d := abs(r - sample); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
