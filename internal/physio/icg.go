package physio

import "math"

// ICG waveform synthesis. Each beat renders the classic -dZ/dt morphology:
// a small atrial A wave, the B notch at aortic valve opening, the steep
// systolic upstroke to the C peak, the fall to the X trough at aortic
// valve closure, and the diastolic O wave. Timing is driven by the
// per-beat PEP and LVET; amplitude by the subject's (dZ/dt)max.
//
// Systolic time intervals follow the Weissler regressions against heart
// rate with per-subject biases:
//
//	PEP  = 131 - 0.4*HR  (ms)
//	LVET = 413 - 1.7*HR  (ms)

// STIConfig parameterizes the systolic-time-interval model.
type STIConfig struct {
	PEPBias   float64 // added to the Weissler PEP (ms)
	LVETBias  float64 // added to the Weissler LVET (ms)
	PEPJitter float64 // per-beat Gaussian jitter (ms)
	LVETJit   float64 // per-beat Gaussian jitter (ms)
}

// WeisslerPEP returns the regression pre-ejection period (s) at the given
// heart rate (bpm).
func WeisslerPEP(hr float64) float64 {
	return (131 - 0.4*hr) / 1000
}

// WeisslerLVET returns the regression left-ventricular ejection time (s)
// at the given heart rate (bpm).
func WeisslerLVET(hr float64) float64 {
	return (413 - 1.7*hr) / 1000
}

// skewGauss evaluates an asymmetric Gaussian with separate left/right
// widths.
func skewGauss(dt, sigmaL, sigmaR float64) float64 {
	s := sigmaR
	if dt < 0 {
		s = sigmaL
	}
	d := dt / s
	if d < -6 || d > 6 {
		return 0
	}
	return math.Exp(-d * d / 2)
}

// icgBeat holds the resolved per-beat template timing (absolute seconds).
type icgBeat struct {
	tR, tB, tC, tX float64
	amp            float64 // (dZ/dt)max in Ohm/s
	rr             float64
}

// value evaluates the ICG template at absolute time t.
func (b *icgBeat) value(t float64) float64 {
	a := b.amp
	v := 0.0
	// A wave: small negative deflection from atrial systole before B.
	v += -0.08 * a * skewGauss(t-(b.tR-0.035), 0.018, 0.018)
	// B notch: a narrow dip right before the upstroke; it produces the
	// (+,-,+,-) second-derivative pattern the detector looks for.
	v += -0.06 * a * skewGauss(t-(b.tB-0.010), 0.007, 0.007)
	// C wave: steep rise from B, slower fall toward X.
	sigL := (b.tC - b.tB) / 2.6
	sigR := (b.tX - b.tC) / 2.1
	v += a * skewGauss(t-b.tC, sigL, sigR)
	// X trough at aortic valve closure: a sharp, V-like incisura (its
	// sharpness is what makes the 3rd-derivative refinement of the
	// detector land next to the trough, as in real recordings).
	xSigL := (b.tX - b.tC) / 3.4
	if xSigL > 0.026 {
		xSigL = 0.026
	}
	v += -0.42 * a * skewGauss(t-b.tX, xSigL, 0.017)
	// O wave: diastolic positive wave (mitral opening / rapid filling).
	v += 0.20 * a * skewGauss(t-(b.tX+0.12), 0.030, 0.045)
	return v
}

// support returns the time span influenced by this beat's template.
func (b *icgBeat) support() (lo, hi float64) {
	return b.tR - 0.15, b.tX + 0.35
}

// synthesizeICG renders the clean cardiac ICG (-dZ/dt, Ohm/s) and fills
// the B/C/X ground truth. beats must carry resolved timing.
func synthesizeICG(beats []icgBeat, n int, fs float64) []float64 {
	icg := make([]float64, n)
	for i := range beats {
		lo, hi := beats[i].support()
		iLo := int(lo * fs)
		iHi := int(hi * fs)
		if iLo < 0 {
			iLo = 0
		}
		if iHi > n-1 {
			iHi = n - 1
		}
		for s := iLo; s <= iHi; s++ {
			icg[s] += beats[i].value(float64(s) / fs)
		}
	}
	return icg
}

// balanceBeats applies a smooth per-beat correction so the ICG integrates
// to ~zero over every beat, keeping Z(t) bounded. Physically the thoracic
// impedance recovers continuously (venous return runs throughout the
// cycle), so the correction is a shallow negative offset spread over the
// whole beat with tapered edges — never deep enough to compete with the X
// trough, leaving the B-C-X morphology intact.
func balanceBeats(icg []float64, beats []icgBeat, fs float64) {
	n := len(icg)
	taper := int(0.06 * fs) // 60 ms raised-cosine edges
	for i := range beats {
		var endT float64
		if i+1 < len(beats) {
			endT = beats[i+1].tR - 0.10
		} else {
			endT = beats[i].tX + 0.40
		}
		startT := beats[i].tR - 0.10
		iLo := int(startT * fs)
		iHi := int(endT * fs)
		if iLo < 0 {
			iLo = 0
		}
		if iHi > n-1 {
			iHi = n - 1
		}
		if iHi-iLo < 4*taper {
			continue
		}
		// Integral of this beat's span (in Ohm).
		var integral float64
		for s := iLo; s <= iHi; s++ {
			integral += icg[s]
		}
		integral /= fs
		// Tapered-constant weight profile: 1 in the middle, raised-cosine
		// edges; scaled so the correction integrates to exactly integral.
		m := iHi - iLo + 1
		var wsum float64
		weight := func(j int) float64 {
			switch {
			case j < taper:
				return 0.5 - 0.5*mCos(float64(j)/float64(taper))
			case j >= m-taper:
				return 0.5 - 0.5*mCos(float64(m-1-j)/float64(taper))
			default:
				return 1
			}
		}
		for j := 0; j < m; j++ {
			wsum += weight(j)
		}
		if wsum == 0 {
			continue
		}
		k := integral * fs / wsum
		for j := 0; j < m; j++ {
			icg[iLo+j] -= k * weight(j)
		}
	}
}

// mCos is cos(pi*x) for the raised-cosine taper.
func mCos(x float64) float64 { return math.Cos(math.Pi * x) }

func hannAt(j, m int) float64 {
	if m <= 1 {
		return 1
	}
	return 0.5 - 0.5*math.Cos(2*math.Pi*float64(j)/float64(m-1))
}
