package physio

import (
	"math"
	"math/rand"

	"repro/internal/dsp"
)

// Artifact and noise generators. The ICG literature (and the paper's
// Section II) places respiration at 0.04-2 Hz and motion artifacts at
// 0.1-10 Hz, overlapping the 0.8-20 Hz ICG band; the generators below
// reproduce those bands.

// WhiteNoise returns n samples of Gaussian noise with the given standard
// deviation. The variates come from the ziggurat sampler in ziggurat.go,
// seeded by a single draw from rng, so the output is still a fixed
// function of the caller's seed and call order.
func WhiteNoise(rng *rand.Rand, n int, std float64) []float64 {
	return WhiteNoiseTo(make([]float64, n), rng, n, std)
}

// WhiteNoiseTo is WhiteNoise writing into dst (grown when shorter than
// n): draw-for-draw identical to WhiteNoise, including leaving rng
// untouched when std is 0, so swapping one for the other cannot move a
// seeded recording.
func WhiteNoiseTo(dst []float64, rng *rand.Rand, n int, std float64) []float64 {
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	if std == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	z := newZigRand(rng)
	for i := range dst {
		dst[i] = z.Norm() * std
	}
	return dst
}

// PinkNoise returns n samples of approximately 1/f noise with the given
// standard deviation, produced by the Paul Kellet IIR shaping filter.
func PinkNoise(rng *rand.Rand, n int, std float64) []float64 {
	if n == 0 {
		return nil
	}
	white := WhiteNoise(rng, n, 1)
	b := []float64{0.049922035, -0.095993537, 0.050612699, -0.004408786}
	a := []float64{1, -2.494956002, 2.017265875, -0.522189400}
	pink := dsp.Lfilter(b, a, white)
	return rescaleStd(pink, std)
}

// BandNoise returns n samples of Gaussian noise band-limited to [f1, f2]
// Hz at sampling rate fs, rescaled to the given standard deviation. It is
// the model for position-dependent contact and motion artifacts, whose
// energy overlaps the signal band and therefore survives the acquisition
// filters.
func BandNoise(rng *rand.Rand, n int, fs, f1, f2, std float64) []float64 {
	if n == 0 {
		return nil
	}
	return BandNoiseTo(make([]float64, n), rng, n, fs, f1, f2, std)
}

// BandNoiseTo is BandNoise writing into dst (grown when shorter than
// n), value-identical to BandNoise for the same rng state. The shaping
// filter comes from bandDesignCache and the white draws, the in-place
// SOS pass and the exact-std rescale all happen in dst, so a reused
// buffer makes the call allocation-free.
func BandNoiseTo(dst []float64, rng *rand.Rand, n int, fs, f1, f2, std float64) []float64 {
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	if n == 0 {
		return dst
	}
	if std == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	dst = WhiteNoiseTo(dst, rng, n, 1)
	sos, err := bandDesign(f1, f2, fs)
	if err != nil {
		return rescaleStd(dst, std)
	}
	return rescaleStd(sos.FilterTo(dst, dst), std)
}

// BaselineWander returns a slow drift built from a few random sinusoids in
// 0.05-0.45 Hz, with peak amplitude approximately amp.
func BaselineWander(rng *rand.Rand, n int, fs, amp float64) []float64 {
	x := make([]float64, n)
	if amp == 0 {
		return x
	}
	comps := 3
	for c := 0; c < comps; c++ {
		f := 0.05 + rng.Float64()*0.40
		phase := rng.Float64() * 2 * math.Pi
		a := amp * (0.4 + 0.6*rng.Float64()) / float64(comps)
		for i := range x {
			x[i] += a * math.Sin(2*math.Pi*f*float64(i)/fs+phase)
		}
	}
	return x
}

// Powerline returns 50 Hz interference with slowly varying amplitude.
func Powerline(rng *rand.Rand, n int, fs, amp float64) []float64 {
	x := make([]float64, n)
	if amp == 0 {
		return x
	}
	phase := rng.Float64() * 2 * math.Pi
	modPhase := rng.Float64() * 2 * math.Pi
	for i := range x {
		t := float64(i) / fs
		mod := 1 + 0.3*math.Sin(2*math.Pi*0.1*t+modPhase)
		x[i] = amp * mod * math.Sin(2*math.Pi*50*t+phase)
	}
	return x
}

// MotionBursts returns sparse motion-artifact epochs: Poisson arrivals at
// ratePerMin, each a 0.3-1.2 s burst of band-limited (0.5-8 Hz) noise
// with a raised-cosine envelope of the given amplitude.
func MotionBursts(rng *rand.Rand, n int, fs, ratePerMin, amp float64) []float64 {
	x := make([]float64, n)
	if ratePerMin <= 0 || amp == 0 || n == 0 {
		return x
	}
	dur := float64(n) / fs
	expected := ratePerMin * dur / 60
	bursts := poisson(rng, expected)
	for b := 0; b < bursts; b++ {
		center := rng.Float64() * dur
		width := 0.3 + rng.Float64()*0.9
		lo := int((center - width/2) * fs)
		hi := int((center + width/2) * fs)
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		if hi <= lo {
			continue
		}
		m := hi - lo + 1
		noise := BandNoise(rng, m, fs, 0.5, 8, amp)
		for j := 0; j < m; j++ {
			x[lo+j] += noise[j] * hannAt(j, m)
		}
	}
	return x
}

// poisson draws a Poisson-distributed count with the given mean.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k
		}
	}
}

// rescaleStd rescales x to have exactly the requested standard deviation
// (and zero mean).
// rescaleStd centers x and rescales it to the requested standard
// deviation, in place.
func rescaleStd(x []float64, std float64) []float64 {
	cur := dsp.Std(x)
	if cur == 0 {
		for i := range x {
			x[i] = 0
		}
		return x
	}
	mean := dsp.Mean(x)
	k := std / cur
	for i, v := range x {
		x[i] = (v - mean) * k
	}
	return x
}
