// Package physio synthesizes physiologically plausible ECG and ICG signals
// with known ground truth. It substitutes for the five human subjects of
// Sopic et al. (DATE 2016), whose recordings were never released: the
// synthesizer produces the same morphology, spectra, beat-to-beat
// variability and artifact content the paper's embedded pipeline has to
// survive, plus exact annotations (R, B, C, X, PEP, LVET) that human
// recordings cannot provide.
//
// The ECG is built from per-beat Gaussian wave templates (P, Q, R, S, T)
// on an RR tachogram with the standard bimodal LF/HF spectral structure;
// the ICG (-dZ/dt) is built from per-beat A/B/C/X/O wave templates whose
// systolic-time-interval timing follows the Weissler regressions
// (PEP = 131 - 0.4 HR ms, LVET = 413 - 1.7 HR ms) with per-subject biases.
package physio

import "math/rand"

// Annotations carries the ground truth of a synthesized recording. All
// indices are sample positions at the recording's sampling rate.
type Annotations struct {
	RPeaks  []int     // R-peak sample indices
	BPoints []int     // aortic valve opening (ICG B point)
	CPoints []int     // dZ/dt maximum (ICG C point)
	XPoints []int     // aortic valve closure (ICG X point)
	RR      []float64 // RR interval per beat (s); RR[i] = t(R[i+1]) - t(R[i])
	PEP     []float64 // pre-ejection period per beat (s)
	LVET    []float64 // left ventricular ejection time per beat (s)
}

// Beats returns the number of annotated beats.
func (a *Annotations) Beats() int { return len(a.RPeaks) }

// Recording is a synthesized simultaneous ECG/ICG acquisition.
type Recording struct {
	FS    float64   // sampling rate (Hz)
	ECG   []float64 // electrocardiogram (mV)
	ICG   []float64 // impedance cardiogram -dZ/dt (Ohm/s)
	DZ    []float64 // cardiac impedance variation around Z0 (Ohm)
	Resp  []float64 // respiratory impedance component (Ohm)
	Truth Annotations
}

// Duration returns the recording length in seconds.
func (r *Recording) Duration() float64 {
	return float64(len(r.ECG)) / r.FS
}

// GenConfig controls recording synthesis.
type GenConfig struct {
	Duration float64 // seconds
	FS       float64 // sampling rate (Hz); the study uses 250 Hz

	// Artifact switches; amplitudes are relative to the clean signals.
	ECGNoiseStd      float64 // white sensor noise on the ECG (mV)
	ECGBaselineDrift float64 // amplitude of slow ECG baseline wander (mV)
	PowerlineAmp     float64 // 50 Hz interference on the ECG (mV)
	ICGNoiseStd      float64 // white sensor noise on the ICG (Ohm/s)
	MotionBurstRate  float64 // expected motion bursts per minute (0 = off)
	MotionBurstAmp   float64 // burst amplitude (mV on ECG, Ohm/s on ICG)
	// EctopicProb is the per-beat probability of a premature ectopic
	// beat (the "irregular heartbeat" CHF symptom of the introduction):
	// the affected RR shortens to 55-75% and the following beat carries a
	// compensatory pause.
	EctopicProb float64
}

// DefaultGenConfig returns the configuration used by the study harness:
// 30-second recordings at 250 Hz with mild sensor noise, matching the
// paper's protocol (Section V).
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Duration:         30,
		FS:               250,
		ECGNoiseStd:      0.01,
		ECGBaselineDrift: 0.15,
		PowerlineAmp:     0.02,
		ICGNoiseStd:      0.02,
	}
}

// NewRNG returns the deterministic random source used by all generators.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
