package physio

import (
	"math"
	"testing"

	"repro/internal/dsp"
)

func TestRRTachogramStatistics(t *testing.T) {
	rng := NewRNG(1)
	cfg := TachogramConfig{MeanRR: 0.8, StdRR: 0.04, LFHF: 1}
	rr := RRTachogram(rng, cfg, 600)
	if len(rr) != 600 {
		t.Fatalf("len = %d", len(rr))
	}
	if m := dsp.Mean(rr); math.Abs(m-0.8) > 0.01 {
		t.Errorf("mean RR = %g, want ~0.8", m)
	}
	if s := dsp.Std(rr); math.Abs(s-0.04) > 0.01 {
		t.Errorf("std RR = %g, want ~0.04", s)
	}
	for i, v := range rr {
		if v < 0.35 || v > 2.2 {
			t.Fatalf("rr[%d] = %g outside physiological clamp", i, v)
		}
	}
}

func TestRRTachogramDeterministic(t *testing.T) {
	cfg := DefaultTachogram()
	a := RRTachogram(NewRNG(42), cfg, 100)
	b := RRTachogram(NewRNG(42), cfg, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
	c := RRTachogram(NewRNG(43), cfg, 100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical tachograms")
	}
}

func TestRRTachogramSpectralContent(t *testing.T) {
	// With a large LF/HF ratio the LF band should dominate, and vice
	// versa. Spectra are compared on the beat-sampled series.
	rng := NewRNG(7)
	mk := func(lfhf float64) (lf, hf float64) {
		cfg := TachogramConfig{MeanRR: 0.8, StdRR: 0.05, LFHF: lfhf}
		rr := RRTachogram(rng, cfg, 2048)
		fsT := 1 / 0.8
		lf = dsp.BandPower(rr, fsT, 0.06, 0.14)
		hf = dsp.BandPower(rr, fsT, 0.20, 0.30)
		return lf, hf
	}
	lf1, hf1 := mk(4)
	if lf1 <= hf1 {
		t.Errorf("LFHF=4: LF=%g should exceed HF=%g", lf1, hf1)
	}
	lf2, hf2 := mk(0.25)
	if hf2 <= lf2 {
		t.Errorf("LFHF=0.25: HF=%g should exceed LF=%g", hf2, lf2)
	}
}

func TestRRTachogramEdgeCases(t *testing.T) {
	if RRTachogram(NewRNG(1), DefaultTachogram(), 0) != nil {
		t.Error("n=0 should return nil")
	}
	rr := RRTachogram(NewRNG(1), TachogramConfig{}, 10)
	if len(rr) != 10 {
		t.Fatal("zero config should use defaults")
	}
	for _, v := range rr {
		if v <= 0 {
			t.Fatal("non-positive RR")
		}
	}
}

func TestRTimes(t *testing.T) {
	rr := []float64{0.8, 0.9, 1.0}
	times := RTimes(rr, 0.5)
	want := []float64{0.5, 1.3, 2.2}
	for i := range want {
		if math.Abs(times[i]-want[i]) > 1e-12 {
			t.Errorf("times[%d] = %g, want %g", i, times[i], want[i])
		}
	}
}

func TestECGBeatTemplateShape(t *testing.T) {
	waves := DefaultECGWaves()
	// R peak dominates at dt=0.
	r := ecgBeatValue(waves, 0, 1)
	if r < 0.9 {
		t.Errorf("R amplitude = %g, want ~1", r)
	}
	// Q and S are negative deflections around R.
	if q := ecgBeatValue(waves, -0.025, 1); q > r {
		t.Error("Q should be below R")
	}
	// T wave is positive and smaller than R.
	tv := ecgBeatValue(waves, 0.30, 1)
	if tv < 0.2 || tv > 0.5 {
		t.Errorf("T amplitude = %g", tv)
	}
	// Baseline far from the beat is ~0.
	if b := ecgBeatValue(waves, 0.8, 1); math.Abs(b) > 0.01 {
		t.Errorf("baseline = %g", b)
	}
}

func TestWeisslerRegressions(t *testing.T) {
	// At 60 bpm: PEP = 107 ms, LVET = 311 ms.
	if pep := WeisslerPEP(60); math.Abs(pep-0.107) > 1e-9 {
		t.Errorf("PEP(60) = %g", pep)
	}
	if lvet := WeisslerLVET(60); math.Abs(lvet-0.311) > 1e-9 {
		t.Errorf("LVET(60) = %g", lvet)
	}
	// Both shorten as HR rises.
	if WeisslerPEP(90) >= WeisslerPEP(60) {
		t.Error("PEP should shorten with HR")
	}
	if WeisslerLVET(90) >= WeisslerLVET(60) {
		t.Error("LVET should shorten with HR")
	}
}

func TestSubjectsCalibrationTable(t *testing.T) {
	subs := Subjects()
	if len(subs) != 5 {
		t.Fatalf("subjects = %d, want 5", len(subs))
	}
	// Paper Tables II-IV, column by column.
	wantCorr := [5][3]float64{
		{0.9081, 0.9747, 0.9737},
		{0.9471, 0.9497, 0.9377},
		{0.9827, 0.9938, 0.9908},
		{0.8451, 0.9033, 0.8531},
		{0.9251, 0.8461, 0.6919},
	}
	for i, s := range subs {
		if s.ID != i+1 {
			t.Errorf("subject %d has ID %d", i, s.ID)
		}
		for p := 0; p < 3; p++ {
			if s.PosCorrTarget[p] != wantCorr[i][p] {
				t.Errorf("subject %d pos %d target = %g, want %g",
					s.ID, p+1, s.PosCorrTarget[p], wantCorr[i][p])
			}
		}
		// Mean-scale calibration: pos2 > pos3 >= pos1 = 1, and the
		// implied relative errors stay below 20%.
		if s.PosMeanScale[0] != 1 {
			t.Errorf("subject %d: pos1 scale must be 1", s.ID)
		}
		if s.PosMeanScale[1] <= s.PosMeanScale[2] {
			t.Errorf("subject %d: pos2 scale should exceed pos3", s.ID)
		}
		e21 := (s.PosMeanScale[1] - 1) / s.PosMeanScale[1]
		if e21 <= 0 || e21 >= 0.20 {
			t.Errorf("subject %d: implied e21 = %g outside (0, 0.20)", s.ID, e21)
		}
		if s.HeartRate < 45 || s.HeartRate > 100 {
			t.Errorf("subject %d: HR = %g implausible", s.ID, s.HeartRate)
		}
		if s.ThoraxR0 <= s.ThoraxRInf {
			t.Errorf("subject %d: Cole R0 must exceed Rinf", s.ID)
		}
		if s.ArmR0 <= s.ArmRInf {
			t.Errorf("subject %d: arm Cole R0 must exceed Rinf", s.ID)
		}
	}
}

func TestSubjectByID(t *testing.T) {
	s, ok := SubjectByID(3)
	if !ok || s.ID != 3 {
		t.Fatalf("SubjectByID(3) = %+v, %v", s, ok)
	}
	if _, ok := SubjectByID(9); ok {
		t.Error("SubjectByID(9) should fail")
	}
	if rr := s.MeanRR(); math.Abs(rr-60.0/58) > 1e-12 {
		t.Errorf("MeanRR = %g", rr)
	}
}

func TestGenerateBasicProperties(t *testing.T) {
	s, _ := SubjectByID(1)
	rec := s.Generate(DefaultGenConfig())
	n := int(30 * 250)
	if len(rec.ECG) != n || len(rec.ICG) != n || len(rec.DZ) != n || len(rec.Resp) != n {
		t.Fatalf("track lengths: %d %d %d %d", len(rec.ECG), len(rec.ICG), len(rec.DZ), len(rec.Resp))
	}
	if rec.Duration() != 30 {
		t.Errorf("duration = %g", rec.Duration())
	}
	nb := rec.Truth.Beats()
	// ~64 bpm for 30 s => ~30-32 beats (minus edge trimming).
	if nb < 25 || nb > 35 {
		t.Errorf("beats = %d, want ~30", nb)
	}
	if dsp.HasNaN(rec.ECG) || dsp.HasNaN(rec.ICG) || dsp.HasNaN(rec.DZ) {
		t.Fatal("NaN in generated tracks")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s, _ := SubjectByID(2)
	a := s.Generate(DefaultGenConfig())
	b := s.Generate(DefaultGenConfig())
	for i := range a.ECG {
		if a.ECG[i] != b.ECG[i] || a.ICG[i] != b.ICG[i] {
			t.Fatalf("nondeterministic generation at %d", i)
		}
	}
}

func TestGenerateTruthOrdering(t *testing.T) {
	s, _ := SubjectByID(3)
	rec := s.Generate(DefaultGenConfig())
	tr := rec.Truth
	for i := 0; i < tr.Beats(); i++ {
		if !(tr.RPeaks[i] < tr.BPoints[i] && tr.BPoints[i] < tr.CPoints[i] && tr.CPoints[i] < tr.XPoints[i]) {
			t.Fatalf("beat %d: ordering R=%d B=%d C=%d X=%d", i,
				tr.RPeaks[i], tr.BPoints[i], tr.CPoints[i], tr.XPoints[i])
		}
		if i > 0 && tr.RPeaks[i] <= tr.RPeaks[i-1] {
			t.Fatalf("R peaks not increasing at %d", i)
		}
		// PEP and LVET in physiological ranges.
		if tr.PEP[i] < 0.04 || tr.PEP[i] > 0.16 {
			t.Errorf("beat %d: PEP = %g", i, tr.PEP[i])
		}
		if tr.LVET[i] < 0.18 || tr.LVET[i] > 0.42 {
			t.Errorf("beat %d: LVET = %g", i, tr.LVET[i])
		}
	}
}

func TestGenerateRPeaksAreECGMaxima(t *testing.T) {
	s, _ := SubjectByID(1)
	cfg := DefaultGenConfig()
	cfg.ECGBaselineDrift = 0
	cfg.PowerlineAmp = 0
	cfg.ECGNoiseStd = 0
	rec := s.Generate(cfg)
	for i, r := range rec.Truth.RPeaks {
		// The annotated R peak should be within 2 samples of the local
		// ECG maximum.
		lo, hi := r-5, r+6
		m := dsp.ArgMax(rec.ECG, lo, hi)
		if d := m - r; d < -2 || d > 2 {
			t.Errorf("beat %d: R annotation off by %d samples", i, d)
		}
	}
}

func TestGenerateCPointsAreICGMaxima(t *testing.T) {
	s, _ := SubjectByID(1)
	cfg := DefaultGenConfig()
	cfg.ICGNoiseStd = 0
	rec := s.Generate(cfg)
	for i, c := range rec.Truth.CPoints {
		lo, hi := c-8, c+9
		m := dsp.ArgMax(rec.ICG, lo, hi)
		if d := m - c; d < -3 || d > 3 {
			t.Errorf("beat %d: C annotation off by %d samples", i, d)
		}
	}
}

func TestGenerateICGIntegralBounded(t *testing.T) {
	// The per-beat balance keeps the impedance excursion DZ bounded
	// (no drift): max |DZ| should stay well under 1 Ohm.
	s, _ := SubjectByID(4)
	cfg := DefaultGenConfig()
	cfg.ICGNoiseStd = 0
	rec := s.Generate(cfg)
	lo, hi := dsp.MinMax(rec.DZ)
	if hi-lo > 1.0 {
		t.Errorf("DZ peak-to-peak = %g Ohm, drift suspected", hi-lo)
	}
}

func TestGenerateRespirationBand(t *testing.T) {
	s, _ := SubjectByID(5)
	rec := s.Generate(DefaultGenConfig())
	f := dsp.DominantFrequency(rec.Resp, rec.FS, 0.05)
	if math.Abs(f-s.RespRate) > 0.08 {
		t.Errorf("respiration dominant frequency = %g, want ~%g", f, s.RespRate)
	}
}

func TestGenerateHeartRateMatchesConfig(t *testing.T) {
	for _, s := range Subjects() {
		cfg := DefaultGenConfig()
		cfg.Duration = 60
		rec := s.Generate(cfg)
		hr := rec.Truth.MeanHR()
		if math.Abs(hr-s.HeartRate) > 4 {
			t.Errorf("%s: mean HR = %g, want ~%g", s.Name, hr, s.HeartRate)
		}
	}
}

func TestNearestBeat(t *testing.T) {
	a := Annotations{RPeaks: []int{100, 300, 500}}
	b, d := a.NearestBeat(310)
	if b != 1 || d != 10 {
		t.Errorf("nearest = %d, %d", b, d)
	}
	empty := Annotations{}
	if b, _ := empty.NearestBeat(0); b != -1 {
		t.Error("empty annotations should return -1")
	}
}

func TestMotionBurstsSparse(t *testing.T) {
	rng := NewRNG(9)
	n := 250 * 60
	x := MotionBursts(rng, n, 250, 4, 0.5)
	// Bursts are sparse: most samples are exactly zero.
	zero := 0
	for _, v := range x {
		if v == 0 {
			zero++
		}
	}
	if frac := float64(zero) / float64(n); frac < 0.7 {
		t.Errorf("zero fraction = %g, bursts not sparse", frac)
	}
	if MotionBursts(rng, n, 250, 0, 1)[0] != 0 {
		t.Error("rate 0 should produce silence")
	}
}

func TestNoiseGeneratorsStd(t *testing.T) {
	rng := NewRNG(3)
	n := 50000
	if s := dsp.Std(WhiteNoise(rng, n, 0.5)); math.Abs(s-0.5) > 0.02 {
		t.Errorf("white std = %g", s)
	}
	if s := dsp.Std(PinkNoise(rng, n, 0.5)); math.Abs(s-0.5) > 0.02 {
		t.Errorf("pink std = %g", s)
	}
	if s := dsp.Std(BandNoise(rng, n, 250, 0.5, 8, 0.3)); math.Abs(s-0.3) > 0.02 {
		t.Errorf("band noise std = %g", s)
	}
}

func TestPinkNoiseSpectrumFallsOff(t *testing.T) {
	rng := NewRNG(13)
	x := PinkNoise(rng, 1<<15, 1)
	lo := dsp.BandPower(x, 250, 1, 5)
	hi := dsp.BandPower(x, 250, 60, 100)
	if lo <= hi {
		t.Errorf("pink noise should concentrate at low frequencies: %g vs %g", lo, hi)
	}
}

func TestBandNoiseIsBandLimited(t *testing.T) {
	rng := NewRNG(17)
	x := BandNoise(rng, 1<<15, 250, 2, 8, 1)
	in := dsp.BandPower(x, 250, 2, 8)
	out := dsp.BandPower(x, 250, 40, 100)
	if in < 10*out {
		t.Errorf("band noise not band-limited: in=%g out=%g", in, out)
	}
}

func TestPowerlineFrequency(t *testing.T) {
	rng := NewRNG(23)
	x := Powerline(rng, 1<<14, 250, 0.1)
	f := dsp.DominantFrequency(x, 250, 10)
	if math.Abs(f-50) > 1 {
		t.Errorf("powerline at %g Hz", f)
	}
}

func TestBaselineWanderIsSlow(t *testing.T) {
	rng := NewRNG(29)
	x := BaselineWander(rng, 1<<14, 250, 0.5)
	slow := dsp.BandPower(x, 250, 0.01, 0.6)
	fast := dsp.BandPower(x, 250, 5, 50)
	if slow < 100*fast {
		t.Errorf("baseline wander has fast content: %g vs %g", slow, fast)
	}
}

func TestPoissonMean(t *testing.T) {
	rng := NewRNG(31)
	total := 0
	n := 3000
	for i := 0; i < n; i++ {
		total += poisson(rng, 2.5)
	}
	mean := float64(total) / float64(n)
	if math.Abs(mean-2.5) > 0.15 {
		t.Errorf("poisson mean = %g, want ~2.5", mean)
	}
	if poisson(rng, 0) != 0 {
		t.Error("poisson(0) should be 0")
	}
}

func TestTPeakOffsetScalesWithRR(t *testing.T) {
	if TPeakOffset(1.0) <= TPeakOffset(0.6) {
		t.Error("T peak latency should grow with RR")
	}
}

func TestEctopicBeatsInjection(t *testing.T) {
	s, _ := SubjectByID(1)
	cfg := DefaultGenConfig()
	cfg.Duration = 60
	cfg.EctopicProb = 0.15
	rec := s.Generate(cfg)
	rr := rec.Truth.RR
	// Irregularity: some RR intervals must be clearly premature (< 80% of
	// the mean) with a compensatory longer successor.
	m := dsp.Mean(rr)
	short := 0
	for i := 0; i+1 < len(rr); i++ {
		if rr[i] < 0.8*m {
			short++
			if rr[i+1] < m {
				t.Errorf("ectopic at %d lacks compensatory pause: %.3f -> %.3f", i, rr[i], rr[i+1])
			}
		}
	}
	if short == 0 {
		t.Error("no ectopic beats injected at 15% probability over 60 s")
	}
	// The annotations must stay ordered.
	for i := 1; i < rec.Truth.Beats(); i++ {
		if rec.Truth.RPeaks[i] <= rec.Truth.RPeaks[i-1] {
			t.Fatal("R peaks out of order under ectopy")
		}
	}
	// Without the flag the rhythm stays regular.
	cfg2 := DefaultGenConfig()
	cfg2.Duration = 60
	rec2 := s.Generate(cfg2)
	short2 := 0
	m2 := dsp.Mean(rec2.Truth.RR)
	for _, v := range rec2.Truth.RR {
		if v < 0.8*m2 {
			short2++
		}
	}
	if short2 > 0 {
		t.Errorf("%d premature beats without ectopy enabled", short2)
	}
}
