package physio

import (
	"math"
	"math/rand"
)

// Respiration model. Breathing modulates the thoracic impedance by a few
// hundred milliohms at 0.15-0.35 Hz; the paper cites (0.04-2) Hz as the
// respiratory artifact band. The model is a slightly anharmonic
// oscillation with slow frequency and depth wander.

// RespConfig parameterizes the respiration generator.
type RespConfig struct {
	Rate     float64 // breaths per second (Hz), typically 0.2-0.3
	DepthOhm float64 // peak impedance excursion (Ohm)
}

// Respiration returns the respiratory impedance component (Ohm) for n
// samples at rate fs.
func Respiration(rng *rand.Rand, cfg RespConfig, n int, fs float64) []float64 {
	x := make([]float64, n)
	if cfg.DepthOhm == 0 || cfg.Rate <= 0 {
		return x
	}
	phase := rng.Float64() * 2 * math.Pi
	// Slow wander of the instantaneous rate (+-8%) via a random phase
	// modulation.
	wanderPhase := rng.Float64() * 2 * math.Pi
	for i := range x {
		t := float64(i) / fs
		inst := 2*math.Pi*cfg.Rate*t + 0.5*math.Sin(2*math.Pi*0.02*t+wanderPhase)
		// Fundamental plus a second harmonic: expiration is faster than
		// inspiration.
		x[i] = cfg.DepthOhm * (math.Sin(inst+phase) + 0.25*math.Sin(2*(inst+phase)+0.6))
	}
	return x
}
